(* tfmcc-sim: run any of the paper's experiments from the command line. *)

open Cmdliner

let mode_of_full full = if full then Experiments.Scenario.Full else Experiments.Scenario.Quick

let print_series ~csv series =
  List.iter
    (fun s ->
      if csv then print_string (Experiments.Series.to_csv s)
      else Format.printf "%a@." Experiments.Series.pp s)
    series

let list_cmd =
  let doc = "List the available experiments (one per paper figure)." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-7s %-10s %s\n" e.Experiments.Registry.id
          e.Experiments.Registry.figure e.Experiments.Registry.title)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let full_arg =
  let doc = "Run at the paper's full scale (receiver counts, durations)." in
  Arg.(value & flag & info [ "full" ] ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc ~docv:"SEED")

let csv_arg =
  let doc = "Emit CSV instead of aligned tables." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let json_arg =
  let doc =
    "Emit one JSON document (series, metric snapshot, protocol journal) \
     instead of tables."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let metrics_out_arg =
  let doc =
    "Write the run's metric snapshot and protocol journal as JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~doc ~docv:"FILE")

let strict_arg =
  let doc =
    "Run under the runtime invariant checker in strict mode: the first \
     violated invariant aborts with exit code 2 and the offending journal \
     window on stderr."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

(* Run one experiment with a fresh sink installed, so every engine the
   experiment builds reports into it; with [strict] a fresh strict
   invariant checker rides along. *)
let run_with_sink ?(strict = false) e ~mode ~seed =
  let sink = Obs.Sink.create () in
  let series =
    Experiments.Scenario.with_obs sink (fun () ->
        if strict then
          let checker = Check.Invariant.create ~strict:true () in
          Experiments.Scenario.with_checks checker (fun () ->
              e.Experiments.Registry.run ~mode ~seed)
        else e.Experiments.Registry.run ~mode ~seed)
  in
  (sink, series)

let handle_violation f =
  try f () with
  | Check.Invariant.Violation msg ->
      Printf.eprintf "invariant violation:\n%s\n%!" msg;
      exit 2

let write_metrics_out ~file sink =
  let oc = open_out file in
  output_string oc (Obs.Json.to_string (Obs.Sink.to_json sink));
  output_char oc '\n';
  close_out oc

let json_document ~id sink series =
  Obs.Json.Obj
    [
      ("experiment", Obs.Json.Str id);
      ( "series",
        Obs.Json.Arr (List.map Experiments.Series.to_json series) );
      ("metrics", Obs.Metrics.to_json sink.Obs.Sink.metrics);
      ("journal", Obs.Journal.to_json sink.Obs.Sink.journal);
    ]

let run_cmd =
  let doc = "Run one experiment by id (e.g. fig09)." in
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"experiment id")
  in
  let plot_arg =
    let doc = "Also render each series' first column as a terminal plot." in
    Arg.(value & flag & info [ "plot" ] ~doc)
  in
  let run id full seed csv plot json metrics_out strict =
    match Experiments.Registry.find id with
    | None ->
        Printf.eprintf "unknown experiment %s; try `tfmcc-sim list'\n" id;
        exit 1
    | Some e ->
        let sink, series =
          handle_violation (fun () ->
              run_with_sink ~strict e ~mode:(mode_of_full full) ~seed)
        in
        if json then
          print_endline (Obs.Json.to_string (json_document ~id sink series))
        else begin
          print_series ~csv series;
          if plot then
            List.iter
              (fun s -> print_string (Experiments.Series.render_ascii s ~col:(List.length s.Experiments.Series.ylabels - 1)))
              series
        end;
        match metrics_out with
        | Some file -> write_metrics_out ~file sink
        | None -> ()
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ id_arg $ full_arg $ seed_arg $ csv_arg $ plot_arg
          $ json_arg $ metrics_out_arg $ strict_arg)

let sweep_cmd =
  let doc =
    "Run experiments fanned out over a pool of OCaml domains.  Output is \
     deterministic: for a given seed it is byte-identical whatever $(b,-j) \
     is (timings go to stderr)."
  in
  let jobs_arg =
    let doc = "Worker domains (1 = serial in the calling domain)." in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~doc ~docv:"N")
  in
  let seeds_arg =
    let doc =
      "Replicate seeds per experiment (seed, seed+1, …).  With K > 1 each \
       experiment reports the per-cell mean/stddev aggregate across seeds."
    in
    Arg.(value & opt int 1 & info [ "seeds" ] ~doc ~docv:"K")
  in
  let schedule_arg =
    let doc =
      "Task schedule: $(b,fifo) (grid order, one shared queue), $(b,lpt) \
       (longest figure first, by measured serial cost) or $(b,steal) \
       (per-worker deques with work stealing).  Pure wall-clock policy: \
       output is byte-identical whichever is chosen."
    in
    let sched_conv =
      Arg.enum
        [
          ("fifo", Experiments.Sweep.Fifo);
          ("lpt", Experiments.Sweep.Lpt);
          ("steal", Experiments.Sweep.Steal);
        ]
    in
    Arg.(value & opt sched_conv Experiments.Sweep.Fifo
         & info [ "schedule" ] ~doc ~docv:"SCHED")
  in
  let replicates_arg =
    let doc = "With --seeds, also print every per-seed series." in
    Arg.(value & flag & info [ "replicates" ] ~doc)
  in
  let ids_arg =
    let doc = "Experiment ids to sweep (default: all)." in
    Arg.(value & pos_all string [] & info [] ~doc ~docv:"ID")
  in
  let task_timeout_arg =
    let doc =
      "Per-attempt wall-clock budget in seconds.  Enforced cooperatively by \
       the engine watchdog; an overrunning task is cancelled and reported, \
       not killed."
    in
    Arg.(value & opt (some float) None & info [ "task-timeout" ] ~doc ~docv:"SECS")
  in
  let retries_arg =
    let doc = "Extra attempts per task after a crash/timeout/stall (0 = fail fast)." in
    Arg.(value & opt int 0 & info [ "retries" ] ~doc ~docv:"N")
  in
  let retry_delay_arg =
    let doc = "Base backoff before a retry; doubles per attempt." in
    Arg.(value & opt float 0. & info [ "retry-delay" ] ~doc ~docv:"SECS")
  in
  let stall_events_arg =
    let doc =
      "Abort a task after this many engine events without simulated-time \
       progress (livelock detection)."
    in
    Arg.(value
         & opt int Experiments.Sweep.default_policy.Experiments.Sweep.stall_events
         & info [ "stall-events" ] ~doc ~docv:"N")
  in
  let max_events_arg =
    let doc = "Abort a task after this many engine events in one attempt (event-storm cap)." in
    Arg.(value & opt (some int) None & info [ "max-events" ] ~doc ~docv:"N")
  in
  let checkpoint_arg =
    let doc = "Persist each completed task into $(docv) as it finishes." in
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~doc ~docv:"DIR")
  in
  let resume_arg =
    let doc =
      "Load completed tasks from $(docv) (skipping them) and keep \
       checkpointing new completions there.  Output is byte-identical to an \
       uninterrupted run."
    in
    Arg.(value & opt (some string) None & info [ "resume" ] ~doc ~docv:"DIR")
  in
  let task_budget_arg =
    let doc =
      "Run at most $(docv) tasks and skip the rest (exit 3).  Deterministic \
       mid-sweep interruption, for testing --resume."
    in
    Arg.(value & opt (some int) None & info [ "task-budget" ] ~doc ~docv:"N")
  in
  let failure_report_arg =
    let doc = "Write the sweep report (failures, summary, series) as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "failure-report" ] ~doc ~docv:"FILE")
  in
  let run full seed csv jobs seeds schedule replicates strict json task_timeout
      retries retry_delay stall_events max_events checkpoint resume task_budget
      failure_report ids =
    if jobs < 1 then begin
      Printf.eprintf "sweep: -j must be >= 1\n";
      exit 1
    end;
    if seeds < 1 then begin
      Printf.eprintf "sweep: --seeds must be >= 1\n";
      exit 1
    end;
    if retries < 0 then begin
      Printf.eprintf "sweep: --retries must be >= 0\n";
      exit 1
    end;
    let experiments =
      match ids with
      | [] -> Experiments.Registry.all
      | ids ->
          List.map
            (fun id ->
              match Experiments.Registry.find id with
              | Some e -> e
              | None ->
                  Printf.eprintf "unknown experiment %s; try `tfmcc-sim list'\n" id;
                  exit 1)
            ids
    in
    let policy =
      {
        Experiments.Sweep.task_timeout;
        retries;
        retry_delay;
        stall_events;
        max_events;
        checkpoint = (match resume with Some dir -> Some dir | None -> checkpoint);
        resume = resume <> None;
        budget = task_budget;
      }
    in
    let t0 = Unix.gettimeofday () in
    let report =
      Experiments.Sweep.run_supervised ~experiments ~strict ~policy ~schedule
        ~jobs ~mode:(mode_of_full full) ~seed ~seeds ()
    in
    let wall = Unix.gettimeofday () -. t0 in
    if json then
      print_endline (Obs.Json.to_string (Experiments.Sweep.report_to_json report))
    else
      print_string
        (Experiments.Sweep.render ~csv ~replicates ~seeds
           report.Experiments.Sweep.results);
    (match failure_report with
    | Some file ->
        let oc = open_out file in
        output_string oc
          (Obs.Json.to_string (Experiments.Sweep.report_to_json report));
        output_char oc '\n';
        close_out oc
    | None -> ());
    if report.Experiments.Sweep.failures <> [] then
      prerr_string (Experiments.Sweep.render_failures report);
    Printf.eprintf
      "sweep: %d experiments x %d seed(s), -j %d (%s): %.1fs wall\n%!"
      (List.length experiments) seeds jobs
      (Experiments.Sweep.schedule_label schedule)
      wall;
    if report.Experiments.Sweep.resumed > 0 then
      Printf.eprintf "sweep: %d task(s) resumed from checkpoints\n%!"
        report.Experiments.Sweep.resumed;
    if report.Experiments.Sweep.skipped > 0 then
      Printf.eprintf "sweep: %d task(s) skipped (task budget)\n%!"
        report.Experiments.Sweep.skipped;
    if report.Experiments.Sweep.failures <> [] then
      Printf.eprintf "sweep: %d of %d task(s) failed\n%!"
        (List.length report.Experiments.Sweep.failures)
        report.Experiments.Sweep.tasks;
    let code = Experiments.Sweep.exit_code report in
    if code <> 0 then exit code
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(const run $ full_arg $ seed_arg $ csv_arg $ jobs_arg $ seeds_arg
          $ schedule_arg $ replicates_arg $ strict_arg $ json_arg
          $ task_timeout_arg $ retries_arg $ retry_delay_arg $ stall_events_arg
          $ max_events_arg $ checkpoint_arg $ resume_arg $ task_budget_arg
          $ failure_report_arg $ ids_arg)

let verify_golden_cmd =
  let doc =
    "Verify every experiment's output digest against the checked-in golden \
     file (or regenerate it with $(b,--regen)).  Digests cover each \
     figure's series CSVs and observability snapshot at quick scale; the \
     determinism contract makes them byte-identical for any $(b,-j)."
  in
  let jobs_arg =
    let doc = "Worker domains (1 = serial in the calling domain)." in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~doc ~docv:"N")
  in
  let regen_arg =
    let doc = "Rewrite the golden file from this run instead of comparing." in
    Arg.(value & flag & info [ "regen" ] ~doc)
  in
  let file_arg =
    let doc = "Golden digest file." in
    Arg.(value & opt string "test/golden/digests.txt" & info [ "file" ] ~doc ~docv:"FILE")
  in
  let run seed jobs regen file =
    if jobs < 1 then begin
      Printf.eprintf "verify-golden: -j must be >= 1\n";
      exit 1
    end;
    let actual =
      Experiments.Golden.compute ~jobs ~mode:Experiments.Scenario.Quick ~seed ()
    in
    if regen then begin
      let oc = open_out file in
      output_string oc (Experiments.Golden.to_file_format actual);
      close_out oc;
      Printf.printf "verify-golden: wrote %d digests to %s\n"
        (List.length actual) file
    end
    else begin
      let expected =
        match open_in file with
        | ic ->
            let len = in_channel_length ic in
            let text = really_input_string ic len in
            close_in ic;
            Experiments.Golden.parse_file_format text
        | exception Sys_error msg ->
            Printf.eprintf
              "verify-golden: cannot read %s (%s); run with --regen first\n"
              file msg;
            exit 1
      in
      match Experiments.Golden.diff ~expected ~actual with
      | [] ->
          Printf.printf "verify-golden: %d digests OK (seed %d)\n"
            (List.length expected) seed
      | diffs ->
          List.iter
            (fun (id, what) ->
              match what with
              | `Missing ->
                  Printf.eprintf "verify-golden: %s: recorded but not produced\n" id
              | `Extra ->
                  Printf.eprintf
                    "verify-golden: %s: produced but not recorded (--regen to add)\n" id
              | `Mismatch (want, got) ->
                  Printf.eprintf
                    "verify-golden: %s: digest mismatch (recorded %s, got %s)\n"
                    id want got)
            diffs;
          Printf.eprintf
            "verify-golden: %d of %d digests differ — behavioural change; \
             fix the regression or re-record with --regen\n"
            (List.length diffs) (List.length actual);
          exit 1
    end
  in
  Cmd.v (Cmd.info "verify-golden" ~doc)
    Term.(const run $ seed_arg $ jobs_arg $ regen_arg $ file_arg)

let all_cmd =
  let doc = "Run every experiment in figure order." in
  let run full seed csv =
    List.iter
      (fun e ->
        Printf.printf "--- %s: %s ---\n%!" e.Experiments.Registry.figure
          e.Experiments.Registry.title;
        let series = e.Experiments.Registry.run ~mode:(mode_of_full full) ~seed in
        print_series ~csv series)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run $ full_arg $ seed_arg $ csv_arg)

let chaos_cmd =
  let doc =
    "Run the robustness suite back to back: fault injection (rob01 CLR \
     crash, rob02 partition, rob03 corruption), the Byzantine-receiver \
     attacks (rob04 understater, rob05 rtt-liar, rob06 spammer), and the \
     rob07 defense-ablation scorecard of per-attack honest-goodput \
     degradation with defenses off vs on."
  in
  let plot_arg =
    let doc = "Also render each series' rate column as a terminal plot." in
    Arg.(value & flag & info [ "plot" ] ~doc)
  in
  let run full seed csv plot =
    let mode = mode_of_full full in
    List.iter
      (fun id ->
        match Experiments.Registry.find id with
        | None -> assert false
        | Some e ->
            Printf.printf "--- %s: %s ---\n%!" id e.Experiments.Registry.title;
            let sink, series = run_with_sink e ~mode ~seed in
            print_series ~csv series;
            if plot then
              List.iter
                (fun s -> print_string (Experiments.Series.render_ascii s ~col:0))
                series;
            (* Damage summary straight from the shared registry/journal. *)
            let metrics = sink.Obs.Sink.metrics in
            let journal = sink.Obs.Sink.journal in
            Printf.printf "[obs] %s\n"
              (Obs.Metrics.describe ~prefix:"netsim_fault_" metrics);
            Printf.printf
              "[obs] drops: %d queue, %d loss, %d link-down; malformed \
               rejected: %d reports + %d data\n"
              (Obs.Metrics.sum_counters metrics "netsim_link_drop_queue_total")
              (Obs.Metrics.sum_counters metrics "netsim_link_drop_loss_total")
              (Obs.Metrics.sum_counters metrics "netsim_link_drop_down_total")
              (Obs.Metrics.sum_counters metrics
                 "tfmcc_sender_malformed_drops_total")
              (Obs.Metrics.sum_counters metrics
                 "tfmcc_receiver_malformed_drops_total");
            Printf.printf
              "[obs] journal: %d events recorded, %d retained (%d at warn or \
               above)\n%!"
              (Obs.Journal.total_recorded journal)
              (Obs.Journal.count journal ())
              (Obs.Journal.count journal ~min_severity:Obs.Journal.Warn ()))
      [ "rob01"; "rob02"; "rob03" ];
    (* Byzantine attacks run per-cell on private sinks (so defense
       counters never mix between cells); their series notes carry the
       per-run summaries, and the scorecard below is the rollup. *)
    List.iter
      (fun id ->
        match Experiments.Registry.find id with
        | None -> assert false
        | Some e ->
            Printf.printf "--- %s: %s ---\n%!" id e.Experiments.Registry.title;
            let _, series = run_with_sink e ~mode ~seed in
            print_series ~csv series;
            if plot then
              List.iter
                (fun s -> print_string (Experiments.Series.render_ascii s ~col:0))
                series)
      [ "rob04"; "rob05"; "rob06" ];
    Printf.printf "--- rob07: chaos scorecard (defense ablation) ---\n%!";
    let sc = Experiments.Rob_common.scorecard ~mode ~seed in
    let lines = Experiments.Rob_common.scorecard_lines sc in
    if List.length lines < 2 + List.length Experiments.Rob_common.attacks
    then begin
      Printf.eprintf "chaos: scorecard came back empty\n";
      exit 1
    end;
    List.iter print_endline lines
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(const run $ full_arg $ seed_arg $ csv_arg $ plot_arg)

let scatter_cmd =
  let doc = "Dump the raw (time, value, sent) scatter of Fig. 2." in
  let n_arg =
    Arg.(value & opt int 2000 & info [ "n" ] ~docv:"N" ~doc:"receiver count")
  in
  let bias_arg =
    let bias_conv =
      Arg.enum
        [
          ("unbiased", Tfmcc_core.Config.Unbiased);
          ("offset", Tfmcc_core.Config.Offset);
          ("modified-offset", Tfmcc_core.Config.Modified_offset);
          ("modified-n", Tfmcc_core.Config.Modified_n);
        ]
    in
    Arg.(value & opt bias_conv Tfmcc_core.Config.Offset & info [ "bias" ] ~docv:"BIAS")
  in
  let run n bias seed =
    Printf.printf "time,value,sent\n";
    Array.iter
      (fun (t, v, sent) -> Printf.printf "%.6g,%.6g,%d\n" t v (Bool.to_int sent))
      (Experiments.Fig02_time_value.scatter ~seed ~n ~bias)
  in
  Cmd.v (Cmd.info "fig02-scatter" ~doc) Term.(const run $ n_arg $ bias_arg $ seed_arg)

let trace_cmd =
  let doc =
    "Run a small TFMCC session and dump an ns-2-style packet trace of its \
     bottleneck link."
  in
  let duration_arg =
    Arg.(value & opt float 5. & info [ "duration" ] ~docv:"SECONDS")
  in
  let run seed duration =
    let e = Netsim.Engine.create ~seed () in
    let topo = Netsim.Topology.create e in
    let sender = Netsim.Topology.add_node topo in
    let rx = Netsim.Topology.add_node topo in
    let ab, ba =
      Netsim.Topology.connect topo ~bandwidth_bps:400e3 ~delay_s:0.02 sender rx
    in
    let tracer = Netsim.Trace.create () in
    Netsim.Trace.attach tracer ab;
    Netsim.Trace.attach tracer ba;
    let session =
      Netsim_env.Session.create topo ~session:1 ~sender_node:sender
        ~receiver_nodes:[ rx ] ()
    in
    Tfmcc_core.Session.start session ~at:0.;
    Netsim.Engine.run ~until:duration e;
    print_string (Netsim.Trace.to_text tracer);
    Printf.eprintf
      "# %d events (+ tx, d queue-drop, x loss-drop, t ttl-drop, r deliver); \
       columns: kind time src dst flow size uid\n"
      (Netsim.Trace.total_recorded tracer)
  in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const run $ seed_arg $ duration_arg)

let dot_cmd =
  let doc = "Emit a generated topology as Graphviz DOT (for inspection)." in
  let kind_arg =
    let kind_conv = Arg.enum [ ("transit-stub", `Ts); ("tree", `Tree); ("star", `Star) ] in
    Arg.(value & opt kind_conv `Ts & info [ "kind" ] ~docv:"KIND")
  in
  let size_arg = Arg.(value & opt int 20 & info [ "size" ] ~docv:"N") in
  let run kind size seed =
    let e = Netsim.Engine.create ~seed () in
    let topo = Netsim.Topology.create e in
    let rng = Stats.Rng.create seed in
    let nodes =
      match kind with
      | `Ts ->
          let ts =
            Netsim.Topo_gen.transit_stub topo rng
              ~stubs_per_transit:(Stdlib.max 1 (size / 8))
              ()
          in
          Array.concat
            [ ts.Netsim.Topo_gen.transits; ts.Netsim.Topo_gen.stubs; ts.Netsim.Topo_gen.hosts ]
      | `Tree -> Netsim.Topo_gen.random_tree topo rng ~n:size ()
      | `Star ->
          let hub, leaves = Netsim.Topo_gen.star topo ~leaves:size () in
          Array.append [| hub |] leaves
    in
    print_endline "graph topology {";
    print_endline "  node [shape=circle fontsize=9];";
    let n = Array.length nodes in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        match Netsim.Topology.link_between topo nodes.(i) nodes.(j) with
        | Some link ->
            Printf.printf "  n%d -- n%d [label=\"%.0fM/%.0fms\" fontsize=7];\n"
              (Netsim.Node.id nodes.(i))
              (Netsim.Node.id nodes.(j))
              (Netsim.Link.bandwidth_bps link /. 1e6)
              (Netsim.Link.delay_s link *. 1000.)
        | None -> ()
      done
    done;
    print_endline "}"
  in
  Cmd.v (Cmd.info "dot" ~doc) Term.(const run $ kind_arg $ size_arg $ seed_arg)

let loopback_cmd =
  let doc =
    "Drive concurrent TFMCC sessions over the real-time runtime (event loop + \
     byte codec + loopback datagram fabric) instead of the simulator."
  in
  let sessions_arg =
    let doc = "Concurrent TFMCC sessions (one sender each)." in
    Arg.(value & opt int 4 & info [ "sessions" ] ~docv:"N" ~doc)
  in
  let receivers_arg =
    let doc = "Receivers per session." in
    Arg.(value & opt int 1 & info [ "receivers" ] ~docv:"N" ~doc)
  in
  let duration_arg =
    let doc = "Run length in loop-seconds (virtual time unless $(b,--realtime))." in
    Arg.(value & opt float 8. & info [ "duration" ] ~docv:"SECONDS" ~doc)
  in
  let loss_arg =
    let doc = "Impairment shim: per-frame loss probability." in
    Arg.(value & opt float 0.02 & info [ "loss" ] ~docv:"P" ~doc)
  in
  let delay_arg =
    let doc = "Impairment shim: one-way delay, seconds." in
    Arg.(value & opt float 0.025 & info [ "delay" ] ~docv:"SECONDS" ~doc)
  in
  let jitter_arg =
    let doc = "Impairment shim: uniform extra delay width, seconds." in
    Arg.(value & opt float 0.005 & info [ "jitter" ] ~docv:"SECONDS" ~doc)
  in
  let warmup_arg =
    let doc =
      "Impairment shim: hold the loss dice for this many initial seconds so \
       slowstart establishes before loss begins (netem-style staged \
       impairment)."
    in
    Arg.(value & opt float 2. & info [ "warmup" ] ~docv:"SECONDS" ~doc)
  in
  let realtime_arg =
    let doc = "Run against the wall clock (default: turbo virtual time)." in
    Arg.(value & flag & info [ "realtime" ] ~doc)
  in
  let udp_arg =
    let doc =
      "Use real UDP sockets on 127.0.0.1 (implies $(b,--realtime); one fd per \
       endpoint, so keep the session count small)."
    in
    Arg.(value & flag & info [ "udp" ] ~doc)
  in
  let epoch_arg =
    let doc = "Initial loop-clock value, seconds (the protocol must not care)." in
    Arg.(value & opt float 0. & info [ "epoch" ] ~docv:"SECONDS" ~doc)
  in
  let rtt_initial_arg =
    let doc =
      "Initial RTT estimate handed to the protocol (paper §2.4: deployments \
       tune this towards the real path RTT; the conservative 0.5 s default \
       makes slowstart crawl on a 100 ms path)."
    in
    Arg.(value & opt float 0.15 & info [ "rtt-initial" ] ~docv:"SECONDS" ~doc)
  in
  let run sessions receivers duration loss delay jitter warmup realtime udp
      epoch rtt_initial seed json metrics_out =
    let cfg = { Tfmcc_core.Config.default with rtt_initial } in
    let hc =
      {
        Rt.Harness.default with
        Rt.Harness.sessions;
        receivers;
        duration;
        impair = Rt.Net.impairment ~loss ~delay ~jitter ~warmup ();
        cfg;
        mode = (if realtime || udp then Rt.Loop.Realtime else Rt.Loop.Turbo);
        transport = (if udp then Rt.Harness.Udp_sockets else Rt.Harness.Loopback);
        epoch;
        seed;
      }
    in
    let sink = Obs.Sink.create () in
    let r = Rt.Harness.run ~obs:sink hc in
    (match metrics_out with
    | Some file -> write_metrics_out ~file sink
    | None -> ());
    let rates = List.map (fun s -> s.Rt.Harness.rate) r.Rt.Harness.stats in
    let n = float_of_int (List.length rates) in
    let mean = List.fold_left ( +. ) 0. rates /. n in
    let min_r = List.fold_left Float.min infinity rates in
    let max_r = List.fold_left Float.max neg_infinity rates in
    let conv =
      List.length (List.filter (Rt.Harness.converged ~cfg) r.Rt.Harness.stats)
    in
    if json then
      let stat_json s =
        Obs.Json.Obj
          [
            ("session", Obs.Json.Int s.Rt.Harness.session);
            ("rate_bytes_per_s", Obs.Json.Float s.Rt.Harness.rate);
            ("packets", Obs.Json.Int s.Rt.Harness.packets);
            ("reports", Obs.Json.Int s.Rt.Harness.reports);
            ("starved", Obs.Json.Bool s.Rt.Harness.starved);
            ("loss_event_rate", Obs.Json.Float s.Rt.Harness.loss_rate);
            ("rtt", Obs.Json.Float s.Rt.Harness.rtt);
            ("converged", Obs.Json.Bool (Rt.Harness.converged s ~cfg));
          ]
      in
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [
                ("sessions", Obs.Json.Int sessions);
                ("receivers", Obs.Json.Int receivers);
                ("duration_s", Obs.Json.Float duration);
                ("wall_s", Obs.Json.Float r.Rt.Harness.wall_s);
                ("timers_fired", Obs.Json.Int r.Rt.Harness.timers_fired);
                ("clock_anomalies", Obs.Json.Int r.Rt.Harness.clock_anomalies);
                ("frames_sent", Obs.Json.Int r.Rt.Harness.frames_sent);
                ("frames_delivered", Obs.Json.Int r.Rt.Harness.frames_delivered);
                ("frames_lost", Obs.Json.Int r.Rt.Harness.frames_lost);
                ("encode_drops", Obs.Json.Int r.Rt.Harness.encode_drops);
                ("decode_errors", Obs.Json.Int r.Rt.Harness.decode_errors);
                ("converged_sessions", Obs.Json.Int conv);
                ("rate_min", Obs.Json.Float min_r);
                ("rate_mean", Obs.Json.Float mean);
                ("rate_max", Obs.Json.Float max_r);
                ("stats", Obs.Json.Arr (List.map stat_json r.Rt.Harness.stats));
                ("metrics", Obs.Metrics.to_json sink.Obs.Sink.metrics);
              ]))
    else begin
      Printf.printf
        "loopback: %d session(s) x %d receiver(s), %.1f loop-s in %.2f wall-s \
         (%s)\n"
        sessions receivers duration r.Rt.Harness.wall_s
        (if udp then "udp/realtime" else if realtime then "realtime" else "turbo");
      Printf.printf
        "frames: %d sent, %d delivered, %d lost, %d encode-drop, %d \
         decode-err; %d timers, %d clock anomalies\n"
        r.Rt.Harness.frames_sent r.Rt.Harness.frames_delivered
        r.Rt.Harness.frames_lost r.Rt.Harness.encode_drops
        r.Rt.Harness.decode_errors r.Rt.Harness.timers_fired
        r.Rt.Harness.clock_anomalies;
      Printf.printf "rates (kbit/s): min %.1f  mean %.1f  max %.1f; converged %d/%d\n"
        (min_r *. 8. /. 1000.) (mean *. 8. /. 1000.) (max_r *. 8. /. 1000.)
        conv sessions;
      if sessions <= 16 then
        List.iter
          (fun s ->
            Printf.printf
              "  session %3d: %8.1f kbit/s, %5d pkts, %3d reports, p=%.4f, \
               rtt=%.0f ms%s%s\n"
              s.Rt.Harness.session
              (s.Rt.Harness.rate *. 8. /. 1000.)
              s.Rt.Harness.packets s.Rt.Harness.reports s.Rt.Harness.loss_rate
              (s.Rt.Harness.rtt *. 1000.)
              (if s.Rt.Harness.starved then " STARVED" else "")
              (if Rt.Harness.converged s ~cfg then "" else " (not converged)"))
          r.Rt.Harness.stats
    end
  in
  Cmd.v
    (Cmd.info "loopback" ~doc)
    Term.(
      const run $ sessions_arg $ receivers_arg $ duration_arg $ loss_arg
      $ delay_arg $ jitter_arg $ warmup_arg $ realtime_arg $ udp_arg
      $ epoch_arg $ rtt_initial_arg $ seed_arg $ json_arg $ metrics_out_arg)

let chaos_rt_cmd =
  let doc =
    "Soak many TFMCC sessions on the real-time runtime under a chaos plan \
     (CLR partition mid-slowstart, fabric flap, receiver churn, optional \
     session kill) and assert convergence and post-fault recovery — the rt \
     twin of $(b,chaos).  Turbo loopback only: two runs with the same seed \
     are byte-identical."
  in
  let sessions_arg =
    let doc = "Concurrent TFMCC sessions." in
    Arg.(value & opt int 200 & info [ "sessions" ] ~docv:"N" ~doc)
  in
  let receivers_arg =
    let doc = "Receivers per session (the CLR needs someone to fail over to)." in
    Arg.(value & opt int 4 & info [ "receivers" ] ~docv:"N" ~doc)
  in
  let duration_arg =
    let doc =
      "Run length in virtual loop-seconds.  Leave several seconds after the \
       last fault: recovery from the starvation decay is deliberately slow \
       (paper §4), and the convergence bar judges the final state."
    in
    Arg.(value & opt float 20. & info [ "duration" ] ~docv:"SECONDS" ~doc)
  in
  let loss_arg =
    let doc = "Baseline impairment: per-frame loss probability." in
    Arg.(value & opt float 0.02 & info [ "loss" ] ~docv:"P" ~doc)
  in
  let delay_arg =
    let doc = "Baseline impairment: one-way delay, seconds." in
    Arg.(value & opt float 0.025 & info [ "delay" ] ~docv:"SECONDS" ~doc)
  in
  let jitter_arg =
    let doc = "Baseline impairment: uniform extra delay width, seconds." in
    Arg.(value & opt float 0.005 & info [ "jitter" ] ~docv:"SECONDS" ~doc)
  in
  let warmup_arg =
    let doc = "Baseline impairment: hold the loss dice this many seconds." in
    Arg.(value & opt float 2. & info [ "warmup" ] ~docv:"SECONDS" ~doc)
  in
  let clr_at_arg =
    let doc =
      "Partition every session's current CLR at this time (mid-slowstart by \
       default); heal at $(b,--clr-partition-heal)."
    in
    Arg.(value & opt float 3. & info [ "clr-partition-at" ] ~docv:"SECONDS" ~doc)
  in
  let clr_heal_arg =
    let doc =
      "Heal the CLR partition.  A heal time at or before \
       $(b,--clr-partition-at) disables the fault."
    in
    Arg.(value & opt float 6. & info [ "clr-partition-heal" ] ~docv:"SECONDS" ~doc)
  in
  let flap_at_arg =
    let doc = "Flap the whole fabric down at this time; up at $(b,--flap-up)." in
    Arg.(value & opt float 7. & info [ "flap-at" ] ~docv:"SECONDS" ~doc)
  in
  let flap_up_arg =
    let doc =
      "Bring the fabric back up.  An up time at or before $(b,--flap-at) \
       disables the flap."
    in
    Arg.(value & opt float 7.4 & info [ "flap-up" ] ~docv:"SECONDS" ~doc)
  in
  let churn_arg =
    let doc =
      "Receiver churn: fraction of each session's joined receivers taken \
       down per cycle (0 disables)."
    in
    Arg.(value & opt float 0.2 & info [ "churn" ] ~docv:"FRACTION" ~doc)
  in
  let churn_from_arg =
    Arg.(value & opt float 4. & info [ "churn-from" ] ~docv:"SECONDS"
           ~doc:"Churn window start.")
  in
  let churn_until_arg =
    Arg.(value & opt float 10. & info [ "churn-until" ] ~docv:"SECONDS"
           ~doc:"Churn window end.")
  in
  let churn_period_arg =
    Arg.(value & opt float 1.5 & info [ "churn-period" ] ~docv:"SECONDS"
           ~doc:"Seconds between churn cycles.")
  in
  let churn_down_arg =
    Arg.(value & opt float 0.6 & info [ "churn-down" ] ~docv:"SECONDS"
           ~doc:"How long each churned receiver stays unreachable.")
  in
  let kill_session_arg =
    let doc =
      "Inject a crash into this session's timer path (0 disables) — proves \
       crash isolation: the other sessions must converge as if nothing \
       happened."
    in
    Arg.(value & opt int 0 & info [ "kill-session" ] ~docv:"N" ~doc)
  in
  let kill_at_arg =
    Arg.(value & opt float 2. & info [ "kill-at" ] ~docv:"SECONDS"
           ~doc:"When to inject the kill.")
  in
  let min_converged_arg =
    let doc = "Fail unless at least this fraction of sessions converges." in
    Arg.(value & opt float 0.95 & info [ "min-converged" ] ~docv:"FRACTION" ~doc)
  in
  let rtt_initial_arg =
    Arg.(value & opt float 0.15 & info [ "rtt-initial" ] ~docv:"SECONDS"
           ~doc:"Initial RTT estimate handed to the protocol.")
  in
  let run sessions receivers duration loss delay jitter warmup clr_at clr_heal
      flap_at flap_up churn churn_from churn_until churn_period churn_down
      kill_session kill_at min_converged rtt_initial seed json metrics_out =
    let cfg = { Tfmcc_core.Config.default with rtt_initial } in
    let plan =
      (if flap_up > flap_at then
         [ Rt.Chaos.Flap { down_at = flap_at; up_at = flap_up } ]
       else [])
      @
      if churn > 0. then
        [
          Rt.Chaos.Churn
            {
              sessions = [];
              fraction = churn;
              from_ = churn_from;
              until = churn_until;
              period = churn_period;
              down_for = churn_down;
            };
        ]
      else []
    in
    let faults =
      (if clr_heal > clr_at then
         [ Rt.Harness.Partition_clr { at = clr_at; until = clr_heal } ]
       else [])
      @
      if kill_session > 0 then
        [ Rt.Harness.Kill_session { session = kill_session; at = kill_at } ]
      else []
    in
    let hc =
      {
        Rt.Harness.default with
        Rt.Harness.sessions;
        receivers;
        duration;
        impair = Rt.Net.impairment ~loss ~delay ~jitter ~warmup ();
        cfg;
        seed;
        chaos = plan;
        faults;
      }
    in
    let sink = Obs.Sink.create () in
    let r = Rt.Harness.run ~obs:sink hc in
    (match metrics_out with
    | Some file -> write_metrics_out ~file sink
    | None -> ());
    let ok_stats =
      List.filter_map
        (fun (_, o) -> match o with Par.Ok s -> Some s | _ -> None)
        r.Rt.Harness.outcomes
    in
    let conv =
      List.length (List.filter (Rt.Harness.converged ~cfg) ok_stats)
    in
    let ratio = float_of_int conv /. float_of_int sessions in
    let failovers =
      List.fold_left (fun a s -> a + s.Rt.Harness.failovers) 0 r.Rt.Harness.stats
    in
    let chaos_counts =
      Obs.Metrics.labelled_values sink.Obs.Sink.metrics
        "tfmcc_rt_chaos_events_total"
    in
    let rates = List.map (fun s -> s.Rt.Harness.rate) ok_stats in
    let rate_min = List.fold_left Float.min infinity rates in
    let rate_max = List.fold_left Float.max neg_infinity rates in
    let rate_mean =
      if rates = [] then 0.
      else List.fold_left ( +. ) 0. rates /. float_of_int (List.length rates)
    in
    (* Assertions: nothing escaped the session guards, the fleet
       converged despite the plan, and — when the CLR partition ran —
       the senders demonstrably failed over. *)
    let failures = ref [] in
    let check cond msg = if not cond then failures := msg :: !failures in
    check (r.Rt.Harness.loop_exceptions = 0)
      (Printf.sprintf "%d exception(s) hit the loop backstop"
         r.Rt.Harness.loop_exceptions);
    check (ratio >= min_converged)
      (Printf.sprintf "converged %d/%d (%.1f%% < %.1f%%)" conv sessions
         (100. *. ratio) (100. *. min_converged));
    if clr_heal > clr_at then begin
      check (r.Rt.Harness.clr_partitioned > 0) "CLR partition never fired";
      check (failovers > 0) "no CLR failover under partition"
    end;
    if json then
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [
                ("sessions", Obs.Json.Int sessions);
                ("receivers", Obs.Json.Int receivers);
                ("duration_s", Obs.Json.Float duration);
                ("seed", Obs.Json.Int seed);
                ("plan", Obs.Json.Str (Rt.Chaos.describe plan));
                ("timers_fired", Obs.Json.Int r.Rt.Harness.timers_fired);
                ("frames_sent", Obs.Json.Int r.Rt.Harness.frames_sent);
                ("frames_delivered", Obs.Json.Int r.Rt.Harness.frames_delivered);
                ("frames_lost", Obs.Json.Int r.Rt.Harness.frames_lost);
                ("frames_blocked", Obs.Json.Int r.Rt.Harness.frames_blocked);
                ("converged_sessions", Obs.Json.Int conv);
                ("converged_ratio", Obs.Json.Float ratio);
                ("clr_partitioned", Obs.Json.Int r.Rt.Harness.clr_partitioned);
                ("failovers", Obs.Json.Int failovers);
                ("crashes", Obs.Json.Int r.Rt.Harness.crashes);
                ("restarts", Obs.Json.Int r.Rt.Harness.restarts);
                ("stalls", Obs.Json.Int r.Rt.Harness.stalls);
                ("sessions_failed", Obs.Json.Int r.Rt.Harness.sessions_failed);
                ("loop_exceptions", Obs.Json.Int r.Rt.Harness.loop_exceptions);
                ( "chaos_events",
                  Obs.Json.Obj
                    (List.map
                       (fun (labels, v) ->
                         ( (match labels with
                           | [ (_, kind) ] -> kind
                           | _ -> "unknown"),
                           Obs.Json.Int v ))
                       chaos_counts) );
                ("rate_min", Obs.Json.Float rate_min);
                ("rate_mean", Obs.Json.Float rate_mean);
                ("rate_max", Obs.Json.Float rate_max);
                ( "outcomes",
                  Obs.Json.Arr
                    (List.map
                       (fun (sid, o) ->
                         Obs.Json.Obj
                           [
                             ("session", Obs.Json.Int sid);
                             ("outcome", Obs.Json.Str (Par.outcome_label o));
                             ( "converged",
                               Obs.Json.Bool
                                 (match o with
                                 | Par.Ok s -> Rt.Harness.converged s ~cfg
                                 | _ -> false) );
                           ])
                       r.Rt.Harness.outcomes) );
                ( "ok",
                  Obs.Json.Bool (!failures = []) );
              ]))
    else begin
      Printf.printf "chaos-rt: %d session(s) x %d receiver(s), %.1f loop-s, seed %d\n"
        sessions receivers duration seed;
      Printf.printf "plan: %s\n"
        (if plan = [] then "(none)" else Rt.Chaos.describe plan);
      Printf.printf
        "faults: clr-partition %s, kill-session %s\n"
        (if clr_heal > clr_at then
           Printf.sprintf "%g..%gs (%d partitioned)" clr_at clr_heal
             r.Rt.Harness.clr_partitioned
         else "off")
        (if kill_session > 0 then
           Printf.sprintf "#%d@%gs" kill_session kill_at
         else "off");
      Printf.printf
        "frames: %d sent, %d delivered, %d lost, %d blocked (partition/flap)\n"
        r.Rt.Harness.frames_sent r.Rt.Harness.frames_delivered
        r.Rt.Harness.frames_lost r.Rt.Harness.frames_blocked;
      List.iter
        (fun (labels, v) ->
          match labels with
          | [ (_, kind) ] -> Printf.printf "chaos event: %-16s %d\n" kind v
          | _ -> ())
        chaos_counts;
      Printf.printf
        "supervision: %d crash(es), %d restart(s), %d stall(s), %d failed, %d \
         loop exception(s)\n"
        r.Rt.Harness.crashes r.Rt.Harness.restarts r.Rt.Harness.stalls
        r.Rt.Harness.sessions_failed r.Rt.Harness.loop_exceptions;
      Printf.printf
        "converged %d/%d (%.1f%%), %d CLR failover(s); rates (kbit/s) min \
         %.1f mean %.1f max %.1f\n"
        conv sessions (100. *. ratio) failovers
        (rate_min *. 8. /. 1000.)
        (rate_mean *. 8. /. 1000.)
        (rate_max *. 8. /. 1000.)
    end;
    Printf.eprintf "chaos-rt: %.2f wall-s\n%!" r.Rt.Harness.wall_s;
    if !failures <> [] then begin
      List.iter (Printf.eprintf "chaos-rt: FAIL: %s\n") (List.rev !failures);
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "chaos-rt" ~doc)
    Term.(
      const run $ sessions_arg $ receivers_arg $ duration_arg $ loss_arg
      $ delay_arg $ jitter_arg $ warmup_arg $ clr_at_arg $ clr_heal_arg
      $ flap_at_arg $ flap_up_arg $ churn_arg $ churn_from_arg
      $ churn_until_arg $ churn_period_arg $ churn_down_arg $ kill_session_arg
      $ kill_at_arg $ min_converged_arg $ rtt_initial_arg $ seed_arg $ json_arg
      $ metrics_out_arg)

let () =
  let doc = "TFMCC (SIGCOMM 2001) reproduction: experiment runner" in
  let info = Cmd.info "tfmcc-sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; all_cmd; sweep_cmd; verify_golden_cmd;
            chaos_cmd; scatter_cmd; trace_cmd; dot_cmd; loopback_cmd;
            chaos_rt_cmd ]))
