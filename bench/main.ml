(* Benchmark harness.

   Two sections:
   1. Bechamel micro-benchmarks of the hot primitives (event queue, PRNG,
      control equation, WALI update, feedback-timer draw, and the cost of
      one simulated second of a live TFMCC session).
   2. The full experiment sweep: one harness per figure of the paper,
      printing the series the figure plots (quick scale by default;
      `--full` for the paper-scale parameters). *)

let full_mode = Array.exists (fun a -> a = "--full") Sys.argv

let micro_only = Array.exists (fun a -> a = "--micro-only") Sys.argv

let figures_only = Array.exists (fun a -> a = "--figures-only") Sys.argv

(* `-j N`: also run the figure sweep fanned out over N domains and record
   its wall clock next to the serial one. *)
let jobs =
  let rec find i =
    if i >= Array.length Sys.argv then 1
    else if Sys.argv.(i) = "-j" && i + 1 < Array.length Sys.argv then
      match int_of_string_opt Sys.argv.(i + 1) with
      | Some j when j >= 1 -> j
      | _ -> failwith "bench: -j expects a positive integer"
    else find (i + 1)
  in
  find 1

(* ------------------------------------------------------ micro-benchmarks *)

let bench_event_heap () =
  let h = Netsim.Event_heap.create () in
  for i = 0 to 255 do
    ignore (Netsim.Event_heap.add h ~time:(float_of_int ((i * 7919) mod 1009)) ignore)
  done;
  let rec drain () = match Netsim.Event_heap.pop h with Some _ -> drain () | None -> () in
  drain ()

let bench_rng =
  let rng = Stats.Rng.create 1 in
  fun () -> ignore (Stats.Rng.uniform rng)

let bench_padhye () = ignore (Tcp_model.Padhye.throughput ~s:1000 ~rtt:0.1 0.01)

let bench_padhye_inverse () =
  ignore (Tcp_model.Padhye.inverse_loss ~s:1000 ~rtt:0.1 125_000.)

let bench_wali =
  let h = Tfrc.Loss_history.create () in
  let seq = ref 0 and now = ref 0. in
  fun () ->
    (* every 50th packet lost *)
    incr seq;
    if !seq mod 50 = 0 then incr seq;
    now := !now +. 0.01;
    Tfrc.Loss_history.on_packet h ~seq:!seq ~now:!now ~rtt:0.05;
    ignore (Tfrc.Loss_history.loss_event_rate h)

let bench_timer_draw =
  let rng = Stats.Rng.create 2 in
  fun () ->
    ignore
      (Tfmcc_core.Feedback_timer.draw rng ~bias:Tfmcc_core.Config.Modified_offset
         ~t_max:3. ~delta:(1. /. 3.) ~n_estimate:10_000 ~ratio:0.7)

let bench_expected_messages () =
  ignore
    (Tfmcc_core.Feedback_timer.expected_messages ~n:1000 ~n_estimate:10_000
       ~delay:1. ~t_suppress:4.)

let bench_feedback_round =
  let rng = Stats.Rng.create 3 in
  let params =
    {
      Tfmcc_core.Feedback_process.n_estimate = 10_000;
      t_max = 6.;
      delay = 1.;
      bias = Tfmcc_core.Config.Modified_offset;
      delta = 1. /. 3.;
      cancel = Tfmcc_core.Feedback_process.Rate_threshold 0.1;
    }
  in
  fun () ->
    let values = Tfmcc_core.Feedback_process.uniform_values rng ~n:100 ~lo:0.3 ~hi:0.9 in
    ignore (Tfmcc_core.Feedback_process.run_round rng params ~values)

(* One simulated second of a live 4-receiver TFMCC session at ~1 Mbit/s:
   the end-to-end cost of the whole stack.  The null sink keeps the
   number comparable with pre-observability baselines; the second
   variant runs the identical session with collection enabled, so the
   pair bounds the cost of the observability layer itself. *)
let simulated_second_session ~obs =
  let st =
    Experiments.Scenario.star ~seed:77 ~obs ~link_bps:1e6
      ~link_delays:(Array.make 4 0.02) ()
  in
  Tfmcc_core.Session.start st.Experiments.Scenario.s_session ~at:0.;
  Experiments.Scenario.run_until st.Experiments.Scenario.s_sc 30.;
  let now = ref 30. in
  fun () ->
    now := !now +. 1.;
    Experiments.Scenario.run_until st.Experiments.Scenario.s_sc !now

let bench_simulated_second = simulated_second_session ~obs:Obs.Sink.null

let bench_simulated_second_obs =
  simulated_second_session ~obs:(Obs.Sink.create ())

let bench_jain =
  let rng = Stats.Rng.create 5 in
  let xs = Array.init 64 (fun _ -> Stats.Rng.uniform rng) in
  fun () -> ignore (Stats.Descriptive.jain_index xs)

let bench_trace_event =
  let tr = Netsim.Trace.create ~capacity:1024 () in
  let e = Netsim.Engine.create () in
  let topo = Netsim.Topology.create e in
  let a = Netsim.Topology.add_node topo in
  let b = Netsim.Topology.add_node topo in
  let ab, _ = Netsim.Topology.connect topo ~bandwidth_bps:1e6 ~delay_s:0.001 a b in
  Netsim.Trace.attach tr ab;
  let p =
    Netsim.Packet.make ~flow:1 ~size:100 ~src:0 ~dst:(Netsim.Packet.Unicast 1)
      ~created:0. (Netsim.Packet.Raw 0)
  in
  fun () ->
    (* The packet is reused across iterations, so reset its hop count:
       otherwise after [Packet.ttl_limit] iterations every send takes the
       TTL-drop path and the bench stops measuring the tx+deliver pair it
       is named for. *)
    Netsim.Packet.set_hops p 0;
    Netsim.Link.send ab p;
    Netsim.Engine.run e

let bench_topo_gen () =
  let e = Netsim.Engine.create () in
  let topo = Netsim.Topology.create e in
  let rng = Stats.Rng.create 6 in
  ignore
    (Netsim.Topo_gen.transit_stub topo rng ~transits:3 ~stubs_per_transit:2
       ~hosts_per_stub:3 ())

let bench_layered_second =
  let e = Netsim.Engine.create ~seed:7 () in
  let topo = Netsim.Topology.create e in
  let sender = Netsim.Topology.add_node topo in
  let rx = Netsim.Topology.add_node topo in
  ignore (Netsim.Topology.connect topo ~bandwidth_bps:1e6 ~delay_s:0.02 sender rx);
  let snd = Layered.Sender.create topo ~session:1 ~node:sender () in
  let r = Layered.Receiver.create topo ~session:1 ~node:rx () in
  Layered.Receiver.join r;
  Layered.Sender.start snd ~at:0.;
  Netsim.Engine.run ~until:10. e;
  let now = ref 10. in
  fun () ->
    now := !now +. 1.;
    Netsim.Engine.run ~until:!now e

(* One datagram through the real-time loopback fabric: Env.send ->
   codec encode (+pad to packet size) -> impairment shim -> wheel timer
   -> decode -> deliver hook.  The rt counterpart of "trace: tx+deliver
   event pair"; the pair bounds the per-packet overhead of running
   TFMCC over the runtime instead of the simulator. *)
let bench_rt_frame_pair =
  let loop = Rt.Loop.create () in
  let net = Rt.Net.create loop () in
  let a = Rt.Net.endpoint net ~session:1 in
  let b = Rt.Net.endpoint net ~session:1 in
  Rt.Net.set_deliver b (fun ~size:_ _ -> ());
  let env_a = Rt.Net.env a in
  let dst = Rt.Net.endpoint_id b in
  let data =
    {
      Tfmcc_core.Wire.session = 1;
      seq = 0;
      ts = 0.;
      rate = 1e5;
      round = 1;
      round_duration = 0.5;
      max_rtt = 0.05;
      clr = -1;
      in_slowstart = false;
      echo = None;
      fb = None;
      app = -1;
    }
  in
  fun () ->
    env_a.Tfmcc_core.Env.send ~dest:(Tfmcc_core.Env.To_node dst) ~flow:1
      ~size:1000 (Tfmcc_core.Wire.Data data);
    Rt.Loop.run loop

(* One simulated second of a live 4-receiver TFMCC session hosted on the
   real-time runtime (turbo clock, loopback fabric, 1% loss): the
   end-to-end rt cost to hold against "full stack: 1 simulated second"
   above, which runs the identical protocol over the simulator. *)
let bench_rt_simulated_second =
  let loop = Rt.Loop.create ~seed:77 () in
  let net =
    Rt.Net.create loop
      ~impair:(Rt.Net.impairment ~loss:0.01 ~delay:0.02 ~warmup:2. ())
      ()
  in
  let cfg = Tfmcc_core.Config.default in
  let s_ep = Rt.Net.endpoint net ~session:1 in
  let rx_eps = List.init 4 (fun _ -> Rt.Net.endpoint net ~session:1) in
  let s =
    Tfmcc_core.Session.create ~sender_env:(Rt.Net.env s_ep) ~cfg ~session:1
      ~receiver_envs:(List.map Rt.Net.env rx_eps) ()
  in
  let snd = Tfmcc_core.Session.sender s in
  Rt.Net.set_deliver s_ep (fun ~size:_ msg -> Tfmcc_core.Sender.deliver snd msg);
  List.iter2
    (fun ep r ->
      Rt.Net.set_deliver ep (fun ~size msg ->
          Tfmcc_core.Receiver.deliver r ~size msg))
    rx_eps
    (Tfmcc_core.Session.receivers s);
  Tfmcc_core.Session.start s ~at:0.;
  Rt.Loop.run ~until:30. loop;
  let now = ref 30. in
  fun () ->
    now := !now +. 1.;
    Rt.Loop.run ~until:!now loop

(* Identical star session, but with a chaos plan applied whose only
   event lies far beyond the measured window.  The pair quantifies the
   per-frame cost of the chaos hooks on the fabric send path (fabric_up
   check + blocked-endpoint guard) when no impairment is active — the
   bench guard holds the two keys to the same relative tolerance, so an
   idle-overhead regression fails CI. *)
let bench_rt_simulated_second_chaos =
  let loop = Rt.Loop.create ~seed:77 () in
  let net =
    Rt.Net.create loop
      ~impair:(Rt.Net.impairment ~loss:0.01 ~delay:0.02 ~warmup:2. ())
      ()
  in
  let cfg = Tfmcc_core.Config.default in
  let s_ep = Rt.Net.endpoint net ~session:1 in
  let rx_eps = List.init 4 (fun _ -> Rt.Net.endpoint net ~session:1) in
  let s =
    Tfmcc_core.Session.create ~sender_env:(Rt.Net.env s_ep) ~cfg ~session:1
      ~receiver_envs:(List.map Rt.Net.env rx_eps) ()
  in
  let snd = Tfmcc_core.Session.sender s in
  Rt.Net.set_deliver s_ep (fun ~size:_ msg -> Tfmcc_core.Sender.deliver snd msg);
  List.iter2
    (fun ep r ->
      Rt.Net.set_deliver ep (fun ~size msg ->
          Tfmcc_core.Receiver.deliver r ~size msg))
    rx_eps
    (Tfmcc_core.Session.receivers s);
  Tfmcc_core.Session.start s ~at:0.;
  let _chaos =
    Rt.Chaos.apply net [ Rt.Chaos.Flap { down_at = 1e6; up_at = 1e6 +. 1. } ]
  in
  Rt.Loop.run ~until:30. loop;
  let now = ref 30. in
  fun () ->
    now := !now +. 1.;
    Rt.Loop.run ~until:!now loop

(* Allocation rate of the full stack, measured directly rather than via
   bechamel (we count words, not nanoseconds): minor-heap words allocated
   per simulated second of the same warmed-up star session as "full
   stack: 1 simulated second".  This is the number the zero-alloc engine
   work (packet arena, pooled events, batched dispatch) drives down;
   wall-clock benchmarks alone can hide an allocation regression behind
   CPU noise, and minor words are exactly reproducible. *)
let measure_minor_words_per_simsec () =
  let step = simulated_second_session ~obs:Obs.Sink.null in
  (* One settling step so any remaining lazy initialization (table
     growth, pool warm-up) lands outside the measured window. *)
  step ();
  let w0 = Gc.minor_words () in
  for _ = 1 to 60 do
    step ()
  done;
  let w1 = Gc.minor_words () in
  (w1 -. w0) /. 60.

let micro_tests =
  let t name fn = Bechamel.Test.make ~name (Bechamel.Staged.stage fn) in
  [
    t "event_heap: 256 add+pop" bench_event_heap;
    t "rng: uniform draw" bench_rng;
    t "padhye: throughput" bench_padhye;
    t "padhye: inverse (bisection)" bench_padhye_inverse;
    t "wali: packet + rate query" bench_wali;
    t "feedback timer: one draw" bench_timer_draw;
    t "E[M]: numerical integral" bench_expected_messages;
    t "feedback round: 100 receivers" bench_feedback_round;
    t "jain index: 64 flows" bench_jain;
    t "trace: tx+deliver event pair" bench_trace_event;
    t "topo_gen: 27-node transit-stub" bench_topo_gen;
    t "layered: 1 simulated second" bench_layered_second;
    t "full stack: 1 simulated second" bench_simulated_second;
    t "full stack +obs: 1 simulated second" bench_simulated_second_obs;
    t "rt loopback: tx+deliver frame pair" bench_rt_frame_pair;
    t "rt loopback: 1 simulated second" bench_rt_simulated_second;
    t "rt loopback +chaos: 1 simulated second" bench_rt_simulated_second_chaos;
  ]

let results_file = "BENCH_results.json"

(* Flat name -> ns object, machine-readable for CI trend tracking.
   Sections of the harness run in separate invocations (--micro-only,
   --figures-only), so merge into whatever the file already holds
   instead of clobbering it: existing keys are kept unless this run
   re-measured them. *)
let write_results results =
  let fields = List.rev_map (fun (name, ns) -> (name, Obs.Json.Float ns)) results in
  let existing =
    if not (Sys.file_exists results_file) then []
    else begin
      let ic = open_in_bin results_file in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Obs.Json.of_string text with
      | Ok (Obs.Json.Obj old) ->
          List.filter (fun (k, _) -> not (List.mem_assoc k fields)) old
      | Ok _ | Error _ -> []
    end
  in
  let fields = existing @ fields in
  let oc = open_out results_file in
  output_string oc (Obs.Json.to_string (Obs.Json.Obj fields));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d entries)\n%!" results_file (List.length fields)

let run_micro () =
  print_endline "=== Micro-benchmarks (Bechamel, monotonic clock) ===";
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let collected = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"" [ test ]) in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some [ e ] ->
                collected := (name, e) :: !collected;
                Printf.sprintf "%12.1f ns/run" e
            | _ -> "(no estimate)"
          in
          Printf.printf "%-40s %s\n%!" name estimate)
        analyzed)
    micro_tests;
  let alloc = measure_minor_words_per_simsec () in
  Printf.printf "%-40s %12.1f minor words/simsec\n%!"
    "full stack: minor words/simsec" alloc;
  collected := ("full stack: minor words/simsec", alloc) :: !collected;
  write_results !collected

(* ------------------------------------------------------ figure harnesses *)

(* The macro path of the perf trajectory: the serial pass prints every
   figure's series and records its wall clock; with [-j N] a second,
   silent pass runs the identical sweep fanned out over N domains so
   BENCH_results.json carries both ends of the speedup. *)
let run_figures () =
  let mode = if full_mode then Experiments.Scenario.Full else Experiments.Scenario.Quick in
  Printf.printf "=== Paper figures (%s scale) ===\n%!"
    (if full_mode then "full" else "quick");
  let timings = ref [] in
  let record name ns = timings := (name, ns) :: !timings in
  let t_serial0 = Unix.gettimeofday () in
  List.iter
    (fun e ->
      let t0 = Unix.gettimeofday () in
      let series = e.Experiments.Registry.run ~mode ~seed:42 in
      let dt = Unix.gettimeofday () -. t0 in
      record (Printf.sprintf "sweep %s: wall" e.Experiments.Registry.id) (dt *. 1e9);
      Printf.printf "--- %s: %s (%.1fs) ---\n%!" e.Experiments.Registry.figure
        e.Experiments.Registry.title dt;
      List.iter (fun s -> Format.printf "%a@." Experiments.Series.pp s) series)
    Experiments.Registry.all;
  let serial_wall = Unix.gettimeofday () -. t_serial0 in
  (* The per-figure dts above exclude the stdout pretty-printing of each
     figure's series, but [serial_wall] includes it — and the parallel
     pass below prints nothing.  Comparing the parallel wall against the
     print-inclusive total mis-attributed rendering I/O to "serial
     compute" and could make a -j 2 sweep look slower than serial.  The
     speedup baseline is therefore the compute-only sum; the inclusive
     number is still recorded separately. *)
  let figure_cost id =
    match List.assoc_opt (Printf.sprintf "sweep %s: wall" id) !timings with
    | Some ns -> ns
    | None -> 0.
  in
  let serial_compute =
    List.fold_left
      (fun acc e -> acc +. figure_cost e.Experiments.Registry.id)
      0. Experiments.Registry.all
    /. 1e9
  in
  record "sweep: serial total wall" (serial_compute *. 1e9);
  record "sweep: serial total wall incl. printing" (serial_wall *. 1e9);
  Printf.printf "sweep (serial): %.1fs compute (%.1fs incl. printing)\n%!"
    serial_compute serial_wall;
  if jobs > 1 then begin
    (* Longest-job-first: the pool hands tasks out in list order, so in
       registry order a heavyweight figure drawn last runs alone while
       the other domains sit idle — at -j 2 that tail can eat the whole
       speedup.  Scheduling the figures by descending measured serial
       cost bounds the tail by the longest single figure.  Results stay
       deterministic (order only affects scheduling, not output). *)
    let by_cost =
      List.stable_sort
        (fun a b ->
          compare
            (figure_cost b.Experiments.Registry.id)
            (figure_cost a.Experiments.Registry.id))
        Experiments.Registry.all
    in
    let t0 = Unix.gettimeofday () in
    let results =
      Experiments.Sweep.run ~experiments:by_cost ~jobs ~mode ~seed:42 ()
    in
    let parallel_wall = Unix.gettimeofday () -. t0 in
    ignore results;
    record "sweep: parallel total wall" (parallel_wall *. 1e9);
    record "sweep: parallel jobs" (float_of_int jobs);
    record "sweep: parallel speedup"
      (if parallel_wall > 0. then serial_compute /. parallel_wall else 0.);
    (* A speedup below 1 with jobs > cores is not a regression: extra
       domains on an oversubscribed machine only add stop-the-world GC
       synchronization.  Record the hardware limit so trend tooling can
       tell "pool got slower" apart from "ran on a smaller box". *)
    let cores = Domain.recommended_domain_count () in
    record "sweep: recommended domains" (float_of_int cores);
    Printf.printf "sweep (-j %d): %.1fs wall (%.2fx vs serial compute)%s\n%!"
      jobs parallel_wall
      (if parallel_wall > 0. then serial_compute /. parallel_wall else 0.)
      (if jobs > cores then
         Printf.sprintf " [oversubscribed: %d domain(s) on %d core(s)]" jobs
           cores
       else "")
  end;
  (* Oldest-first, like the micro section. *)
  write_results !timings

let () =
  if not figures_only then run_micro ();
  if not micro_only then run_figures ()
