(* Unit tests for the adversarial-receiver defense layer (Defense), plus
   the fixed-seed ablation acceptance test from the robustness suite:
   with defenses on, a single understater / rtt-liar among 32 honest
   receivers costs < 20% honest goodput; with defenses off it costs
   > 70%. *)

open Tfmcc_core

let cfg = { Config.default with Config.defense_enabled = true }

let rd = 0.1 (* round duration used throughout the unit tests *)

let make () =
  let obs = Obs.Sink.create () in
  Defense.create ~cfg ~obs ~session:1 ~node:0 ()

(* An honest report: rate consistent with the TCP equation at (rtt, p),
   modest x_recv, plausible claimed RTT. *)
let honest_rate ~rtt ~p =
  Tcp_model.Padhye.throughput ~b:cfg.Config.b ~s:cfg.Config.packet_size ~rtt p

let screen ?(now = 1.) ?(sender_rate = 1e5) ?(sender_round = 1) ?(rx = 3)
    ?rate ?(have_rtt = true) ?(rtt = 0.1) ?(p = 0.01) ?x_recv
    ?(has_loss = true) ?(echo_delay = 0.01) ?(rtt_sample = Some 0.1)
    ?(is_clr = false) d =
  let rate = match rate with Some r -> r | None -> honest_rate ~rtt ~p in
  let x_recv = match x_recv with Some x -> x | None -> sender_rate in
  Defense.screen d ~now ~round_duration:rd ~sender_rate ~sender_round ~rx
    ~rate ~have_rtt ~rtt ~p ~x_recv ~has_loss ~echo_delay ~rtt_sample ~is_clr

let check_reject what = function
  | Some r ->
      Alcotest.(check string) "reject kind" what (Defense.reject_name r)
  | None -> Alcotest.fail (Printf.sprintf "expected %s reject, got pass" what)

let check_pass = function
  | None -> ()
  | Some r ->
      Alcotest.fail ("expected pass, got reject " ^ Defense.reject_name r)

let test_screen_honest_passes () =
  let d = make () in
  check_pass (screen d);
  Alcotest.(check int) "no rejects" 0 (Defense.implausible_rejects d)

let test_screen_rtt_floor () =
  let d = make () in
  (* Sender-side sample says the round trip took 100 ms; claiming 1 ms is
     physically impossible. *)
  check_reject "implausible-rtt"
    (screen d ~rtt:0.001 ~rate:(honest_rate ~rtt:0.001 ~p:0.01));
  Alcotest.(check int) "counted" 1 (Defense.implausible_rejects d);
  (* Without a sender-side sample the floor cannot fire. *)
  let d = make () in
  check_pass
    (screen d ~rtt:0.001 ~rtt_sample:None
       ~rate:(honest_rate ~rtt:0.001 ~p:0.01))

let test_screen_xrecv_ceiling () =
  let d = make () in
  check_reject "implausible-xrecv" (screen d ~x_recv:1e7 ~sender_rate:1e5)

let test_screen_equation () =
  let d = make () in
  (* Claimed calculated rate 100x what the TCP model gives at the claimed
     (rtt, p): self-inconsistent. *)
  check_reject "implausible-rate"
    (screen d ~rate:(100. *. honest_rate ~rtt:0.1 ~p:0.01));
  check_reject "implausible-rate"
    (screen d ~rate:(honest_rate ~rtt:0.1 ~p:0.01 /. 100.));
  (* No-loss reports are receive-rate based, not equation based: exempt. *)
  let d = make () in
  check_pass (screen d ~rate:1. ~has_loss:false ~p:0.)

let test_screen_echo_delay () =
  let d = make () in
  check_reject "implausible-echo-delay" (screen d ~echo_delay:(100. *. rd))

let test_screen_spam_non_clr () =
  let d = make () in
  let budget = cfg.Config.defense_max_reports_per_round in
  for i = 1 to budget do
    check_pass (screen d ~now:(1. +. (0.001 *. float_of_int i)))
  done;
  check_reject "spam" (screen d ~now:1.9);
  Alcotest.(check int) "spam counted" 1 (Defense.spam_drops d);
  (* Fresh round: budget resets. *)
  check_pass (screen d ~now:2. ~sender_round:2)

let test_screen_spam_clr_spacing () =
  let d = make () in
  (* CLR with a 100 ms RTT may report about once per RTT; back-to-back
     reports 10 ms apart violate the half-RTT spacing. *)
  check_pass (screen d ~now:1. ~is_clr:true);
  check_reject "spam" (screen d ~now:1.01 ~is_clr:true);
  check_pass (screen d ~now:1.2 ~is_clr:true);
  (* A forged tiny claimed RTT must not widen the budget: the sender-side
     sample dominates. *)
  check_reject "spam" (screen d ~now:1.21 ~is_clr:true ~rtt:0.001
     ~rate:(honest_rate ~rtt:0.001 ~p:0.01))

let test_quarantine_cycle () =
  let d = make () in
  (* Suspicion threshold is 3: three implausible reports trigger
     quarantine. *)
  for i = 1 to 3 do
    check_reject "implausible-xrecv"
      (screen d ~now:(float_of_int i *. 0.01) ~x_recv:1e9)
  done;
  Alcotest.(check int) "quarantined once" 1 (Defense.quarantines d);
  Alcotest.(check bool) "flagged" true (Defense.is_quarantined d ~now:0.1 3);
  (* While quarantined, even honest-looking reports are dropped. *)
  check_reject "quarantined" (screen d ~now:0.1);
  Alcotest.(check int) "drop counted" 1 (Defense.quarantined_drops d);
  (* Quarantine expires after defense_quarantine_rounds rounds... *)
  let release = 0.03 +. (cfg.Config.defense_quarantine_rounds *. rd) +. 0.01 in
  Alcotest.(check bool) "released" false
    (Defense.is_quarantined d ~now:release 3);
  check_pass (screen d ~now:release);
  (* ...but CLR candidacy stays barred for the probation tail. *)
  Alcotest.(check bool) "still on probation" false
    (Defense.may_lead d ~now:release ~round_duration:rd 3);
  let after_probation =
    release +. (cfg.Config.defense_quarantine_rounds *. rd) +. 0.01
  in
  Alcotest.(check bool) "probation over" true
    (Defense.may_lead d ~now:after_probation ~round_duration:rd 3)

let test_admit_quorum_outlier () =
  let d = make () in
  (* Build a quorum window: four receivers near 100 kB/s. *)
  List.iteri
    (fun i rate ->
      let rx = 10 + i in
      check_pass (screen d ~rx ~rate ~now:1.);
      Alcotest.(check bool) "honest admitted" true
        (Defense.admit d ~now:1. ~round_duration:rd ~sender_rate:1e5 ~rx ~rate))
    [ 0.9e5; 1.0e5; 1.1e5; 1.2e5 ];
  (* An equation-consistent but absurdly low claim is a log10 outlier. *)
  Alcotest.(check bool) "outlier rejected" false
    (Defense.admit d ~now:1. ~round_duration:rd ~sender_rate:1e5 ~rx:3
       ~rate:10.);
  Alcotest.(check int) "outlier counted" 1 (Defense.outlier_rejects d);
  (* A merely degraded receiver within the band is believed. *)
  Alcotest.(check bool) "degraded admitted" true
    (Defense.admit d ~now:1. ~round_duration:rd ~sender_rate:1e5 ~rx:4
       ~rate:0.5e5)

let test_admit_below_quorum_fallback () =
  let d = make () in
  (* No window yet: the ratio fallback against the sending-rate ceiling
     applies. 30x below the ceiling is dropped, 10x below is kept. *)
  Alcotest.(check bool) "ratio outlier" false
    (Defense.admit d ~now:1. ~round_duration:rd ~sender_rate:1e5 ~rx:3
       ~rate:(1e5 /. 100.));
  Alcotest.(check bool) "ratio pass" true
    (Defense.admit d ~now:1. ~round_duration:rd ~sender_rate:1e5 ~rx:3
       ~rate:(1e5 /. 10.))

let test_may_lead_first_utterance () =
  let d = make () in
  (* Never-heard-from receiver cannot lead at all. *)
  Alcotest.(check bool) "unknown blocked" false
    (Defense.may_lead d ~now:5. ~round_duration:rd 7);
  (* First contact now: still blocked for most of a round... *)
  check_pass (screen d ~rx:7 ~now:5.);
  Alcotest.(check bool) "first utterance blocked" false
    (Defense.may_lead d ~now:5. ~round_duration:rd 7);
  (* ...then allowed once the track record is a round old. *)
  Alcotest.(check bool) "veteran allowed" true
    (Defense.may_lead d ~now:(5. +. rd) ~round_duration:rd 7)

let test_may_switch_hysteresis () =
  let d = make () in
  (* Undercutting by less than the hysteresis margin is damped. *)
  Alcotest.(check bool) "within margin damped" false
    (Defense.may_switch d ~now:1. ~sender_rate:1e5 ~candidate_rate:0.99e5
       ~rx:3);
  Alcotest.(check int) "damped counted" 1 (Defense.clr_switches_damped d);
  Alcotest.(check bool) "real undercut allowed" true
    (Defense.may_switch d ~now:1. ~sender_rate:1e5 ~candidate_rate:0.5e5
       ~rx:3)

let test_may_switch_holddown () =
  let d = make () in
  let ok now =
    Defense.may_switch d ~now ~sender_rate:1e5 ~candidate_rate:0.5e5 ~rx:3
  in
  Alcotest.(check bool) "first switch allowed" true (ok 1.);
  Defense.note_switch d ~now:1. ~round_duration:rd;
  (* Inside the hold-down window every further switch is damped. *)
  Alcotest.(check bool) "inside hold-down damped" false (ok 1.05);
  let after = 1. +. (cfg.Config.defense_holddown_rounds *. rd) +. 0.01 in
  Alcotest.(check bool) "after hold-down allowed" true (ok after);
  (* A switch landing right after the previous window doubles the next
     hold-down, so the same spacing is now damped. *)
  Defense.note_switch d ~now:after ~round_duration:rd;
  Alcotest.(check bool) "doubled hold-down damps" false
    (ok (after +. (cfg.Config.defense_holddown_rounds *. rd) +. 0.01))

let test_suspicion_decay () =
  let d = make () in
  check_reject "implausible-xrecv" (screen d ~now:0.01 ~x_recv:1e9);
  Alcotest.(check (float 1e-9)) "one point" 1. (Defense.suspicion d 3);
  Defense.on_round d ~now:0.1 ~round_duration:rd ~sender_rate:1e5;
  Alcotest.(check (float 1e-9)) "decayed" cfg.Config.defense_suspicion_decay
    (Defense.suspicion d 3)

(* ------------------------------------------------- config validation *)

let bad_defense_cfg name c =
  match Config.validate c with
  | Ok () -> Alcotest.fail (name ^ ": nonsensical config accepted")
  | Error _ -> ()

let test_validate_defense_knobs () =
  let d = Config.default in
  bad_defense_cfg "equation_slack"
    { d with Config.defense_equation_slack = 1. };
  bad_defense_cfg "rtt_floor" { d with Config.defense_rtt_floor_fraction = 0. };
  bad_defense_cfg "rtt_floor>1"
    { d with Config.defense_rtt_floor_fraction = 1.5 };
  bad_defense_cfg "xrecv_slack" { d with Config.defense_xrecv_slack = 0.5 };
  bad_defense_cfg "echo_delay" { d with Config.defense_echo_delay_rounds = 0.5 };
  bad_defense_cfg "mad_threshold" { d with Config.defense_mad_threshold = 0. };
  bad_defense_cfg "mad_floor" { d with Config.defense_mad_floor = 0. };
  bad_defense_cfg "mad_min_reports"
    { d with Config.defense_mad_min_reports = 1 };
  bad_defense_cfg "drop_ratio" { d with Config.defense_drop_ratio = 1. };
  bad_defense_cfg "report_horizon"
    { d with Config.defense_report_horizon_rounds = 0.25 };
  (* A hold-down shorter than one feedback round cannot damp anything:
     feedback arrives at most once per round. *)
  bad_defense_cfg "holddown" { d with Config.defense_holddown_rounds = 0.5 };
  bad_defense_cfg "holddown_max"
    { d with Config.defense_holddown_max_rounds = 0.5 };
  bad_defense_cfg "hysteresis" { d with Config.defense_clr_hysteresis = 1. };
  bad_defense_cfg "max_reports"
    { d with Config.defense_max_reports_per_round = 0 };
  bad_defense_cfg "suspicion_threshold"
    { d with Config.defense_suspicion_threshold = 0. };
  bad_defense_cfg "suspicion_decay"
    { d with Config.defense_suspicion_decay = 1. };
  bad_defense_cfg "quarantine" { d with Config.defense_quarantine_rounds = 0. };
  match Config.validate { d with Config.defense_enabled = true } with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("defaults with defenses on rejected: " ^ e)

(* --------------------------------------------- ablation acceptance *)

(* The ISSUE acceptance criterion, pinned to a fixed seed: in the
   fig09-style 32-receiver topology, a single understater or rtt-liar
   degrades honest goodput by < 20% with defenses on and > 70% with
   defenses off. *)
let test_ablation_acceptance () =
  let open Experiments in
  let mode = Scenario.Quick and seed = 7 in
  let base_off = Rob_common.run_cell ~mode ~seed ~defense:false () in
  let base_on = Rob_common.run_cell ~mode ~seed ~defense:true () in
  List.iter
    (fun attack ->
      let name = Rob_common.attack_name attack in
      let off = Rob_common.run_cell ~mode ~seed ~attack ~defense:false () in
      let on = Rob_common.run_cell ~mode ~seed ~attack ~defense:true () in
      let off_deg = Rob_common.degradation ~baseline:base_off off in
      let on_deg = Rob_common.degradation ~baseline:base_on on in
      if off_deg <= 70. then
        Alcotest.fail
          (Printf.sprintf "%s: only %.1f%% degradation with defenses off"
             name off_deg);
      if on_deg >= 20. then
        Alcotest.fail
          (Printf.sprintf "%s: %.1f%% degradation despite defenses" name
             on_deg))
    [ Rob_common.Understater; Rob_common.Rtt_liar ]

let () =
  Alcotest.run "tfmcc_defense"
    [
      ( "screen",
        [
          Alcotest.test_case "honest passes" `Quick test_screen_honest_passes;
          Alcotest.test_case "rtt floor" `Quick test_screen_rtt_floor;
          Alcotest.test_case "xrecv ceiling" `Quick test_screen_xrecv_ceiling;
          Alcotest.test_case "equation consistency" `Quick test_screen_equation;
          Alcotest.test_case "echo delay" `Quick test_screen_echo_delay;
          Alcotest.test_case "spam budget" `Quick test_screen_spam_non_clr;
          Alcotest.test_case "CLR spacing" `Quick test_screen_spam_clr_spacing;
        ] );
      ( "suspicion",
        [
          Alcotest.test_case "quarantine cycle" `Quick test_quarantine_cycle;
          Alcotest.test_case "decay" `Quick test_suspicion_decay;
        ] );
      ( "admit",
        [
          Alcotest.test_case "quorum outlier" `Quick test_admit_quorum_outlier;
          Alcotest.test_case "ratio fallback" `Quick
            test_admit_below_quorum_fallback;
        ] );
      ( "leadership",
        [
          Alcotest.test_case "first utterance" `Quick
            test_may_lead_first_utterance;
          Alcotest.test_case "hysteresis" `Quick test_may_switch_hysteresis;
          Alcotest.test_case "hold-down" `Quick test_may_switch_holddown;
        ] );
      ( "config",
        [
          Alcotest.test_case "defense knobs" `Quick test_validate_defense_knobs;
        ] );
      ( "ablation",
        [ Alcotest.test_case "acceptance" `Slow test_ablation_acceptance ] );
    ]
