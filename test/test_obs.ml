(* Unit tests for the observability plane: metrics registry, protocol
   journal, JSON rendering, and the netsim clients of the plane (trace
   rotation bookkeeping, monitor delay-ring wrap). *)

(* --------------------------------------------------------------- metrics *)

let test_counter_basics () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "requests_total" in
  Obs.Metrics.Counter.inc c;
  Obs.Metrics.Counter.add c 4;
  Alcotest.(check int) "handle value" 5 (Obs.Metrics.Counter.value c);
  Alcotest.(check int) "registry lookup" 5
    (Obs.Metrics.counter_value m "requests_total");
  (* Looking the same name+labels up again returns the same instrument. *)
  let c' = Obs.Metrics.counter m "requests_total" in
  Obs.Metrics.Counter.inc c';
  Alcotest.(check int) "shared instrument" 6 (Obs.Metrics.Counter.value c)

let test_labels_distinguish () =
  let m = Obs.Metrics.create () in
  let a = Obs.Metrics.counter m ~labels:[ ("session", "1") ] "pkts_total" in
  let b = Obs.Metrics.counter m ~labels:[ ("session", "2") ] "pkts_total" in
  Obs.Metrics.Counter.add a 3;
  Obs.Metrics.Counter.add b 7;
  Alcotest.(check int) "label set 1" 3
    (Obs.Metrics.counter_value m ~labels:[ ("session", "1") ] "pkts_total");
  Alcotest.(check int) "label set 2" 7
    (Obs.Metrics.counter_value m ~labels:[ ("session", "2") ] "pkts_total");
  Alcotest.(check int) "sum over labels" 10
    (Obs.Metrics.sum_counters m "pkts_total");
  (* Label order must not matter. *)
  let a' =
    Obs.Metrics.counter m
      ~labels:[ ("session", "1"); ("node", "0") ]
      "tagged_total"
  in
  let a'' =
    Obs.Metrics.counter m
      ~labels:[ ("node", "0"); ("session", "1") ]
      "tagged_total"
  in
  Obs.Metrics.Counter.inc a';
  Alcotest.(check int) "order-insensitive labels" 1
    (Obs.Metrics.Counter.value a'')

let test_gauge_histogram () =
  let m = Obs.Metrics.create () in
  let g = Obs.Metrics.gauge m "rate_bps" in
  Obs.Metrics.Gauge.set g 125_000.;
  Alcotest.(check (float 1e-9)) "gauge" 125_000. (Obs.Metrics.Gauge.value g);
  let h = Obs.Metrics.histogram m "delay_s" in
  Obs.Metrics.Histogram.observe h 0.1;
  Obs.Metrics.Histogram.observe h 0.3;
  Alcotest.(check int) "hist count" 2 (Obs.Metrics.Histogram.count h);
  Alcotest.(check (float 1e-9)) "hist sum" 0.4 (Obs.Metrics.Histogram.sum h);
  Alcotest.(check (float 1e-9)) "hist mean" 0.2 (Obs.Metrics.Histogram.mean h);
  Alcotest.(check (float 1e-9)) "hist min" 0.1
    (Obs.Metrics.Histogram.min_value h);
  Alcotest.(check (float 1e-9)) "hist max" 0.3
    (Obs.Metrics.Histogram.max_value h)

let test_kind_mismatch () =
  let m = Obs.Metrics.create () in
  ignore (Obs.Metrics.counter m "x_total");
  Alcotest.check_raises "same name, different kind"
    (Invalid_argument "Metrics: x_total already registered as a counter")
    (fun () -> ignore (Obs.Metrics.gauge m "x_total"))

let test_null_registry () =
  let m = Obs.Metrics.null in
  Alcotest.(check bool) "disabled" false (Obs.Metrics.enabled m);
  (* Handles from the null registry are valid, cheap and unregistered. *)
  let c = Obs.Metrics.counter m "ghost_total" in
  Obs.Metrics.Counter.inc c;
  let g = Obs.Metrics.gauge m "ghost" in
  Obs.Metrics.Gauge.set g 1.;
  let h = Obs.Metrics.histogram m "ghost_s" in
  Obs.Metrics.Histogram.observe h 1.;
  Alcotest.(check int) "empty snapshot" 0
    (List.length (Obs.Metrics.snapshot m));
  Alcotest.(check int) "lookup is 0" 0
    (Obs.Metrics.counter_value m "ghost_total")

let test_snapshot_sorted () =
  let m = Obs.Metrics.create () in
  ignore (Obs.Metrics.counter m "b_total");
  ignore (Obs.Metrics.counter m "a_total");
  ignore (Obs.Metrics.gauge m "c");
  let names =
    List.map (fun s -> s.Obs.Metrics.name) (Obs.Metrics.snapshot m)
  in
  Alcotest.(check (list string)) "sorted by name" [ "a_total"; "b_total"; "c" ]
    names

(* --------------------------------------------------------------- journal *)

let scope = Obs.Journal.scope ~session:1 ~node:3 "test.component"

let test_journal_order_and_rotation () =
  let j = Obs.Journal.create ~capacity:4 () in
  for i = 1 to 6 do
    Obs.Journal.record j ~time:(float_of_int i) scope
      (Obs.Journal.Note (Printf.sprintf "e%d" i))
  done;
  Alcotest.(check int) "total recorded" 6 (Obs.Journal.total_recorded j);
  Alcotest.(check int) "dropped by rotation" 2 (Obs.Journal.dropped j);
  let notes =
    List.map
      (fun e ->
        match e.Obs.Journal.event with Obs.Journal.Note s -> s | _ -> "?")
      (Obs.Journal.entries j)
  in
  Alcotest.(check (list string)) "oldest-first window"
    [ "e3"; "e4"; "e5"; "e6" ] notes

let test_journal_clear () =
  let j = Obs.Journal.create ~capacity:4 () in
  for i = 1 to 9 do
    Obs.Journal.record j ~time:(float_of_int i) scope Obs.Journal.Join
  done;
  Obs.Journal.clear j;
  Alcotest.(check int) "retained after clear" 0
    (List.length (Obs.Journal.entries j));
  Alcotest.(check int) "total reset" 0 (Obs.Journal.total_recorded j);
  Alcotest.(check int) "dropped reset" 0 (Obs.Journal.dropped j);
  (* And the ring keeps working after a clear. *)
  Obs.Journal.record j ~time:10. scope Obs.Journal.Join;
  Alcotest.(check int) "records again" 1 (Obs.Journal.total_recorded j)

let test_journal_filters () =
  let j = Obs.Journal.create () in
  let other = Obs.Journal.scope "other" in
  Obs.Journal.record j ~time:1. scope Obs.Journal.Join;
  Obs.Journal.record j ~time:2. ~severity:Obs.Journal.Warn scope
    (Obs.Journal.Timeout { what = "clr" });
  Obs.Journal.record j ~time:3. ~severity:Obs.Journal.Error other
    (Obs.Journal.Fault { kind = "partition"; detail = "" });
  Alcotest.(check int) "all" 3 (Obs.Journal.count j ());
  Alcotest.(check int) "by component" 2
    (Obs.Journal.count j ~component:"test.component" ());
  Alcotest.(check int) "warn and above" 2
    (Obs.Journal.count j ~min_severity:Obs.Journal.Warn ());
  Alcotest.(check int) "both filters" 1
    (Obs.Journal.count j ~component:"test.component"
       ~min_severity:Obs.Journal.Warn ());
  Alcotest.(check int) "by event" 1
    (Obs.Journal.count_events j (function
      | Obs.Journal.Timeout _ -> true
      | _ -> false))

let test_journal_null () =
  let j = Obs.Journal.null in
  Alcotest.(check bool) "disabled" false (Obs.Journal.enabled j);
  Obs.Journal.record j ~time:1. scope Obs.Journal.Join;
  Alcotest.(check int) "no-op record" 0 (Obs.Journal.total_recorded j);
  Alcotest.(check int) "nothing retained" 0
    (List.length (Obs.Journal.entries j))

(* ------------------------------------------------------------------ json *)

let test_json_rendering () =
  let open Obs.Json in
  Alcotest.(check string) "scalars" "[null,true,42,1.5]"
    (to_string (Arr [ Null; Bool true; Int 42; Float 1.5 ]));
  Alcotest.(check string) "string escaping" {|"a\"b\\c\nd"|}
    (to_string (Str "a\"b\\c\nd"));
  Alcotest.(check string) "object" {|{"k":"v","n":0}|}
    (to_string (Obj [ ("k", Str "v"); ("n", Int 0) ]));
  (* Non-finite floats have no JSON form: rendered as null. *)
  Alcotest.(check string) "nan is null" "[null,null]"
    (to_string (Arr [ Float nan; Float infinity ]))

let test_json_parse_roundtrip () =
  let open Obs.Json in
  let doc =
    Obj
      [
        ("name", Str "bench \"x\"\n");
        ("ns", Float 25419.2);
        ("count", Int 256);
        ("ok", Bool true);
        ("gap", Null);
        ("rows", Arr [ Int 1; Float 2.5; Arr []; Obj [] ]);
      ]
  in
  (match of_string (to_string doc) with
  | Ok parsed ->
      Alcotest.(check string) "roundtrip" (to_string doc) (to_string parsed)
  | Error e -> Alcotest.fail ("roundtrip parse failed: " ^ e));
  (match of_string "  [1, -2.5e3, \"\\u00e9\"]  " with
  | Ok (Arr [ Int 1; Float f; Str s ]) ->
      Alcotest.(check (float 1e-9)) "exponent" (-2500.) f;
      Alcotest.(check string) "unicode escape" "\xc3\xa9" s
  | Ok _ -> Alcotest.fail "unexpected shape"
  | Error e -> Alcotest.fail e);
  let bad s =
    match of_string s with
    | Ok _ -> Alcotest.fail ("accepted invalid JSON: " ^ s)
    | Error _ -> ()
  in
  List.iter bad [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

let test_sink_to_json () =
  let sink = Obs.Sink.create () in
  let c = Obs.Metrics.counter sink.Obs.Sink.metrics "n_total" in
  Obs.Metrics.Counter.inc c;
  Obs.Sink.event sink ~time:1.5 scope (Obs.Journal.Note "hi");
  let s = Obs.Json.to_string (Obs.Sink.to_json sink) in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has metrics key" true (contains {|"metrics"|});
  Alcotest.(check bool) "has journal key" true (contains {|"journal"|});
  Alcotest.(check bool) "metric sample present" true (contains {|"n_total"|});
  Alcotest.(check bool) "journal entry present" true (contains {|"note"|})

(* -------------------------------------------------- trace ring bookkeeping *)

(* Drive a real link so Tx/Deliver events hit the tracer, with a capacity
   small enough that the ring rotates: per-kind counts must track the
   retained window, clear must reset both counts and total_recorded. *)
let test_trace_rotation_and_clear () =
  let e = Netsim.Engine.create () in
  let topo = Netsim.Topology.create e in
  let a = Netsim.Topology.add_node topo in
  let b = Netsim.Topology.add_node topo in
  let ab, _ =
    Netsim.Topology.connect topo ~bandwidth_bps:1e6 ~delay_s:0.001 a b
  in
  let tr = Netsim.Trace.create ~capacity:6 () in
  Netsim.Trace.attach tr ab;
  for _ = 1 to 10 do
    Netsim.Link.send ab
      (Netsim.Packet.make ~flow:1 ~size:100 ~src:0 ~dst:(Netsim.Packet.Unicast 1)
         ~created:(Netsim.Engine.now e) (Netsim.Packet.Raw 0))
  done;
  Netsim.Engine.run e;
  (* 10 packets -> 10 Tx + 10 Deliver recorded, 6 retained. *)
  Alcotest.(check int) "total recorded" 20 (Netsim.Trace.total_recorded tr);
  let retained = List.length (Netsim.Trace.events tr) in
  Alcotest.(check int) "ring capacity bounds window" 6 retained;
  let by_kind k = Netsim.Trace.count tr ~kind:k in
  Alcotest.(check int) "per-kind counts track the window" retained
    (by_kind Netsim.Trace.Tx + by_kind Netsim.Trace.Deliver
   + by_kind Netsim.Trace.Drop_queue
   + by_kind Netsim.Trace.Drop_loss);
  (* The O(1) counts must agree with recounting the retained events. *)
  let recount k =
    List.length
      (List.filter (fun ev -> ev.Netsim.Trace.kind = k) (Netsim.Trace.events tr))
  in
  List.iter
    (fun k ->
      Alcotest.(check int) "count = recount" (recount k) (by_kind k))
    [ Netsim.Trace.Tx; Netsim.Trace.Deliver; Netsim.Trace.Drop_queue;
      Netsim.Trace.Drop_loss ];
  Netsim.Trace.clear tr;
  Alcotest.(check int) "clear empties window" 0
    (List.length (Netsim.Trace.events tr));
  Alcotest.(check int) "clear resets total_recorded" 0
    (Netsim.Trace.total_recorded tr);
  Alcotest.(check int) "clear resets per-kind counts" 0
    (by_kind Netsim.Trace.Tx + by_kind Netsim.Trace.Deliver);
  (* Tracing continues after clear. *)
  Netsim.Link.send ab
    (Netsim.Packet.make ~flow:1 ~size:100 ~src:0 ~dst:(Netsim.Packet.Unicast 1)
       ~created:(Netsim.Engine.now e) (Netsim.Packet.Raw 0));
  Netsim.Engine.run e;
  Alcotest.(check int) "records again" 2 (Netsim.Trace.total_recorded tr)

let test_trace_registry_counters () =
  let sink = Obs.Sink.create () in
  let e = Netsim.Engine.create ~obs:sink () in
  let topo = Netsim.Topology.create e in
  let a = Netsim.Topology.add_node topo in
  let b = Netsim.Topology.add_node topo in
  let ab, _ =
    Netsim.Topology.connect topo ~bandwidth_bps:1e6 ~delay_s:0.001 a b
  in
  let tr = Netsim.Trace.create ~capacity:4 ~sink () in
  Netsim.Trace.attach tr ab;
  for _ = 1 to 8 do
    Netsim.Link.send ab
      (Netsim.Packet.make ~flow:1 ~size:100 ~src:0 ~dst:(Netsim.Packet.Unicast 1)
         ~created:(Netsim.Engine.now e) (Netsim.Packet.Raw 0))
  done;
  Netsim.Engine.run e;
  Netsim.Trace.clear tr;
  (* Registry counters are monotonic: rotation and clear never rewind them. *)
  Alcotest.(check int) "tx counter survives clear" 8
    (Obs.Metrics.counter_value sink.Obs.Sink.metrics
       ~labels:[ ("kind", "tx") ] "netsim_trace_events_total");
  Alcotest.(check int) "deliver counter survives clear" 8
    (Obs.Metrics.counter_value sink.Obs.Sink.metrics
       ~labels:[ ("kind", "deliver") ] "netsim_trace_events_total")

(* ------------------------------------------------- monitor delay-ring wrap *)

let test_monitor_delay_ring_wrap () =
  let e = Netsim.Engine.create () in
  let mon = Netsim.Monitor.create e in
  let cap = 100_000 in
  let n = cap + 5_000 in
  (* Engine time stays 0; a packet created at -i has one-way delay i. *)
  for i = 1 to n do
    Netsim.Monitor.tap mon
      (Netsim.Packet.make ~flow:9 ~size:10 ~src:0 ~dst:(Netsim.Packet.Unicast 1)
         ~created:(-.float_of_int i) (Netsim.Packet.Raw 0))
  done;
  Alcotest.(check int) "all packets counted" n
    (Netsim.Monitor.packets mon ~flow:9);
  let d = Netsim.Monitor.delays mon ~flow:9 in
  Alcotest.(check int) "ring caps retained samples" cap (Array.length d);
  (* The most recent [cap] samples survive, in arrival order: delays
     n-cap+1 .. n. *)
  Alcotest.(check (float 1e-9)) "oldest retained" (float_of_int (n - cap + 1))
    d.(0);
  Alcotest.(check (float 1e-9)) "newest retained" (float_of_int n)
    d.(cap - 1);
  Alcotest.(check (float 1e-9)) "mid window monotonic"
    (d.(1000) -. d.(999)) 1.

let test_monitor_delay_below_cap () =
  let e = Netsim.Engine.create () in
  let mon = Netsim.Monitor.create e in
  for i = 1 to 300 do
    Netsim.Monitor.tap mon
      (Netsim.Packet.make ~flow:2 ~size:10 ~src:0 ~dst:(Netsim.Packet.Unicast 1)
         ~created:(-.float_of_int i) (Netsim.Packet.Raw 0))
  done;
  let d = Netsim.Monitor.delays mon ~flow:2 in
  Alcotest.(check int) "all retained below cap" 300 (Array.length d);
  Alcotest.(check (float 1e-9)) "arrival order" 1. d.(0);
  Alcotest.(check (float 1e-9)) "last sample" 300. d.(299)

(* --------------------------------------------- end-to-end session journal *)

let test_session_publishes () =
  let sink = Obs.Sink.create () in
  let st =
    Experiments.Scenario.star ~seed:11 ~obs:sink ~link_bps:1e6
      ~link_delays:[| 0.02; 0.03 |] ()
  in
  Tfmcc_core.Session.start st.Experiments.Scenario.s_session ~at:0.;
  Experiments.Scenario.run_until st.Experiments.Scenario.s_sc 10.;
  let j = sink.Obs.Sink.journal in
  let has ev = Obs.Journal.count_events j ev > 0 in
  Alcotest.(check bool) "receivers journal joins" true
    (has (function Obs.Journal.Join -> true | _ -> false));
  Alcotest.(check bool) "sender journals feedback rounds" true
    (has (function Obs.Journal.Round_start _ -> true | _ -> false));
  Alcotest.(check bool) "sender journals rate changes" true
    (has (function Obs.Journal.Rate_change _ -> true | _ -> false));
  Alcotest.(check bool) "sender journals a CLR election" true
    (has (function Obs.Journal.Clr_change _ -> true | _ -> false));
  let m = sink.Obs.Sink.metrics in
  Alcotest.(check bool) "sender data counter moved" true
    (Obs.Metrics.sum_counters m "tfmcc_sender_packets_sent_total" > 0);
  Alcotest.(check bool) "receiver data counter moved" true
    (Obs.Metrics.sum_counters m "tfmcc_receiver_packets_received_total" > 0);
  Alcotest.(check bool) "link counters moved" true
    (Obs.Metrics.sum_counters m "netsim_link_tx_total" > 0)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "labels distinguish" `Quick test_labels_distinguish;
          Alcotest.test_case "gauge and histogram" `Quick test_gauge_histogram;
          Alcotest.test_case "kind mismatch raises" `Quick test_kind_mismatch;
          Alcotest.test_case "null registry" `Quick test_null_registry;
          Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted;
        ] );
      ( "journal",
        [
          Alcotest.test_case "order and rotation" `Quick
            test_journal_order_and_rotation;
          Alcotest.test_case "clear resets" `Quick test_journal_clear;
          Alcotest.test_case "count filters" `Quick test_journal_filters;
          Alcotest.test_case "null journal" `Quick test_journal_null;
        ] );
      ( "json",
        [
          Alcotest.test_case "rendering" `Quick test_json_rendering;
          Alcotest.test_case "parse roundtrip" `Quick test_json_parse_roundtrip;
          Alcotest.test_case "sink document" `Quick test_sink_to_json;
        ] );
      ( "trace",
        [
          Alcotest.test_case "rotation and clear" `Quick
            test_trace_rotation_and_clear;
          Alcotest.test_case "registry counters monotonic" `Quick
            test_trace_registry_counters;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "delay ring wrap past cap" `Quick
            test_monitor_delay_ring_wrap;
          Alcotest.test_case "delay ring below cap" `Quick
            test_monitor_delay_below_cap;
        ] );
      ( "session",
        [
          Alcotest.test_case "agents publish through the sink" `Quick
            test_session_publishes;
        ] );
    ]
