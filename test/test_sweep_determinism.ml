(* Determinism of the parallel sweep: for a fixed seed the fan-out over
   domains must be invisible in the output.  Serial (jobs=1) and parallel
   (jobs=4) full-registry sweeps, repeated parallel runs, and multi-seed
   aggregates must all produce byte-identical CSV for every series. *)

let csv_of_result (r : Experiments.Sweep.result) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (rep : Experiments.Sweep.replicate) ->
      Buffer.add_string buf (Printf.sprintf "== seed %d ==\n" rep.seed);
      List.iter
        (fun s -> Buffer.add_string buf (Experiments.Series.to_csv s))
        rep.series)
    r.replicates;
  (match r.aggregate with
  | None -> ()
  | Some series ->
      Buffer.add_string buf "== aggregate ==\n";
      List.iter
        (fun s -> Buffer.add_string buf (Experiments.Series.to_csv s))
        series);
  Buffer.contents buf

let run ?experiments ~jobs ?seeds () =
  Experiments.Sweep.run ?experiments ~jobs ~mode:Experiments.Scenario.Quick
    ~seed:42 ?seeds ()

(* A cheap subset for the repeated-run checks: the full registry takes
   tens of seconds per pass, so reserve it for the single serial-vs-
   parallel comparison below. *)
let cheap_subset () =
  List.filter
    (fun e ->
      List.mem e.Experiments.Registry.id [ "fig01"; "fig04"; "rob03" ])
    Experiments.Registry.all

let check_same_results msg (a : Experiments.Sweep.result list)
    (b : Experiments.Sweep.result list) =
  Alcotest.(check int)
    (msg ^ ": experiment count")
    (List.length a) (List.length b);
  List.iter2
    (fun ra rb ->
      Alcotest.(check string)
        (msg ^ ": order " ^ ra.Experiments.Sweep.experiment.Experiments.Registry.id)
        ra.Experiments.Sweep.experiment.Experiments.Registry.id
        rb.Experiments.Sweep.experiment.Experiments.Registry.id;
      Alcotest.(check string)
        (msg ^ ": " ^ ra.Experiments.Sweep.experiment.Experiments.Registry.id)
        (csv_of_result ra) (csv_of_result rb))
    a b

let test_full_registry_serial_vs_parallel () =
  let serial = run ~jobs:1 () in
  let parallel = run ~jobs:4 () in
  check_same_results "serial vs -j 4" serial parallel

let test_repeated_parallel_runs () =
  let experiments = cheap_subset () in
  let first = run ~experiments ~jobs:3 () in
  let second = run ~experiments ~jobs:3 () in
  let third = run ~experiments ~jobs:2 () in
  check_same_results "-j 3 run 1 vs run 2" first second;
  check_same_results "-j 3 vs -j 2" first third

let test_multi_seed_aggregate () =
  let experiments = cheap_subset () in
  let serial = run ~experiments ~jobs:1 ~seeds:2 () in
  let parallel = run ~experiments ~jobs:4 ~seeds:2 () in
  List.iter
    (fun (r : Experiments.Sweep.result) ->
      Alcotest.(check int)
        ("two replicates: " ^ r.experiment.Experiments.Registry.id)
        2
        (List.length r.replicates);
      Alcotest.(check bool)
        ("aggregate present: " ^ r.experiment.Experiments.Registry.id)
        true (r.aggregate <> None))
    serial;
  check_same_results "seeds=2 serial vs -j 4" serial parallel

(* Scheduler invariance: fifo, lpt and steal reorder execution only, so
   the rendered sweep — the exact bytes `tfmcc-sim sweep` prints — must
   be identical across every (schedule, jobs) combination.  The subset
   mixes the costliest and cheapest figures in the cost table so LPT's
   permutation and steal's deque dealing actually differ from grid
   order. *)
let sched_subset () =
  List.filter
    (fun e ->
      List.mem e.Experiments.Registry.id
        [ "fig01"; "fig17"; "rob03"; "chk02"; "abl05" ])
    Experiments.Registry.all

let test_schedules_byte_identical () =
  let experiments = sched_subset () in
  let render schedule jobs =
    let report =
      Experiments.Sweep.run_supervised ~experiments ~schedule ~jobs
        ~mode:Experiments.Scenario.Quick ~seed:42 ~seeds:2 ()
    in
    Alcotest.(check int)
      (Printf.sprintf "no failures (%s, -j %d)"
         (Experiments.Sweep.schedule_label schedule)
         jobs)
      0
      (List.length report.Experiments.Sweep.failures);
    Experiments.Sweep.render ~csv:true ~replicates:true ~seeds:2
      report.Experiments.Sweep.results
  in
  let reference = render Experiments.Sweep.Fifo 1 in
  Alcotest.(check bool) "reference output non-empty" true (reference <> "");
  List.iter
    (fun schedule ->
      List.iter
        (fun jobs ->
          Alcotest.(check string)
            (Printf.sprintf "%s -j %d vs fifo -j 1"
               (Experiments.Sweep.schedule_label schedule)
               jobs)
            reference (render schedule jobs))
        [ 1; 4 ])
    [ Experiments.Sweep.Fifo; Experiments.Sweep.Lpt; Experiments.Sweep.Steal ]

let test_schedules_unsupervised_identical () =
  let experiments = sched_subset () in
  let reference = run ~experiments ~jobs:1 () in
  List.iter
    (fun schedule ->
      let got =
        Experiments.Sweep.run ~experiments ~schedule ~jobs:4
          ~mode:Experiments.Scenario.Quick ~seed:42 ()
      in
      check_same_results
        (Experiments.Sweep.schedule_label schedule ^ " -j 4 vs fifo -j 1")
        reference got)
    [ Experiments.Sweep.Lpt; Experiments.Sweep.Steal ]

let () =
  Alcotest.run "sweep determinism"
    [
      ( "determinism",
        [
          Alcotest.test_case "full registry: serial vs parallel" `Slow
            test_full_registry_serial_vs_parallel;
          Alcotest.test_case "repeated parallel runs" `Quick
            test_repeated_parallel_runs;
          Alcotest.test_case "multi-seed aggregate" `Quick
            test_multi_seed_aggregate;
          Alcotest.test_case "schedules render byte-identically" `Quick
            test_schedules_byte_identical;
          Alcotest.test_case "schedules: unsupervised run identical" `Quick
            test_schedules_unsupervised_identical;
        ] );
    ]
