(* Tests for the NAK-based repair layer over TFMCC. *)

(* ------------------------------------------------- wire-level unit rig *)

type rig = {
  engine : Netsim.Engine.t;
  topo : Netsim.Topology.t;
  sender_node : Netsim.Node.t;
  rx_node : Netsim.Node.t;
}

let make_rig () =
  let engine = Netsim.Engine.create ~seed:97 () in
  let topo = Netsim.Topology.create engine in
  let sender_node = Netsim.Topology.add_node topo in
  let rx_node = Netsim.Topology.add_node topo in
  ignore
    (Netsim.Topology.connect topo ~bandwidth_bps:1e7 ~delay_s:0.005 sender_node rx_node);
  { engine; topo; sender_node; rx_node }

let forge_data rig ~seq ~app =
  let now = Netsim.Engine.now rig.engine in
  let payload =
    Netsim_env.Data
      {
        session = 1;
        seq;
        ts = now;
        rate = 50_000.;
        round = 0;
        round_duration = 1.;
        max_rtt = 0.5;
        clr = -1;
        in_slowstart = false;
        echo = None;
        fb = None;
        app;
      }
  in
  let p =
    Netsim.Packet.make ~flow:1 ~size:1000
      ~src:(Netsim.Node.id rig.sender_node)
      ~dst:(Netsim.Packet.Multicast 1) ~created:now payload
  in
  Netsim.Node.deliver_local rig.rx_node p

let make_rx rig ~blocks =
  let r =
    Netsim_env.Receiver.create rig.topo ~cfg:Tfmcc_core.Config.default
      ~session:1 ~node:rig.rx_node ~sender:rig.sender_node ()
  in
  Tfmcc_core.Receiver.join r;
  let rep =
    Repair.Receiver.create rig.topo r ~sender:rig.sender_node ~session:1
      ~blocks ~nak_interval:0.2 ()
  in
  (r, rep)

let run_for rig dt =
  Netsim.Engine.run ~until:(Netsim.Engine.now rig.engine +. dt) rig.engine

let test_receiver_tracks_blocks () =
  let rig = make_rig () in
  let _, rep = make_rx rig ~blocks:5 in
  forge_data rig ~seq:0 ~app:0;
  forge_data rig ~seq:1 ~app:1;
  forge_data rig ~seq:2 ~app:(-1) (* filler does not count *);
  forge_data rig ~seq:3 ~app:1 (* duplicate does not double-count *);
  run_for rig 0.01;
  Alcotest.(check int) "two blocks" 2 (Repair.Receiver.received_blocks rep);
  Alcotest.(check bool) "not complete" false (Repair.Receiver.complete rep);
  Alcotest.(check (list int)) "missing" [ 2; 3; 4 ] (Repair.Receiver.missing rep)

let test_receiver_naks_observed_hole () =
  let rig = make_rig () in
  let naks = ref [] in
  Netsim.Node.attach rig.sender_node (fun p ->
      match p.Netsim.Packet.payload with
      | Repair.Nak { missing; _ } -> naks := missing :: !naks
      | _ -> ());
  let _, rep = make_rx rig ~blocks:5 in
  ignore rep;
  forge_data rig ~seq:0 ~app:0;
  forge_data rig ~seq:1 ~app:2 (* block 1 missing, provably transmitted *);
  run_for rig 0.6;
  Alcotest.(check bool) "a NAK went out" true (!naks <> []);
  Alcotest.(check bool) "it asks for block 1" true
    (List.exists (fun l -> List.mem 1 l) !naks)

let test_receiver_naks_tail_when_stalled () =
  let rig = make_rig () in
  let naks = ref [] in
  Netsim.Node.attach rig.sender_node (fun p ->
      match p.Netsim.Packet.payload with
      | Repair.Nak { missing; _ } -> naks := missing :: !naks
      | _ -> ());
  let _, rep = make_rx rig ~blocks:3 in
  ignore rep;
  forge_data rig ~seq:0 ~app:0;
  forge_data rig ~seq:1 ~app:1;
  (* block 2 never arrives and nothing else does either: after the stall
     threshold the tail must be NAKed although it was never observed. *)
  run_for rig 2.0;
  Alcotest.(check bool) "tail NAKed" true (List.exists (fun l -> List.mem 2 l) !naks)

let test_completion () =
  let rig = make_rig () in
  let _, rep = make_rx rig ~blocks:3 in
  forge_data rig ~seq:0 ~app:0;
  forge_data rig ~seq:1 ~app:1;
  forge_data rig ~seq:2 ~app:2;
  run_for rig 0.01;
  Alcotest.(check bool) "complete" true (Repair.Receiver.complete rep);
  Alcotest.(check bool) "completion time set" true
    (Repair.Receiver.completion_time rep <> None);
  Alcotest.(check (list int)) "nothing missing" [] (Repair.Receiver.missing rep);
  let naks0 = Repair.Receiver.naks_sent rep in
  run_for rig 3.;
  Alcotest.(check int) "no NAKs after completion" naks0 (Repair.Receiver.naks_sent rep)

(* ----------------------------------------------------------- property *)

let prop_missing_is_complement =
  QCheck.Test.make ~name:"missing = exactly the undelivered blocks" ~count:50
    QCheck.(pair (int_range 1 60) (list_of_size Gen.(int_range 0 30) (int_range 0 59)))
    (fun (n, dropped) ->
      let dropped = List.sort_uniq compare (List.filter (fun b -> b < n) dropped) in
      let rig = make_rig () in
      let _, rep = make_rx rig ~blocks:n in
      let seq = ref 0 in
      for b = 0 to n - 1 do
        if not (List.mem b dropped) then begin
          forge_data rig ~seq:!seq ~app:b;
          incr seq
        end
      done;
      run_for rig 0.01;
      Repair.Receiver.missing rep = dropped
      && Repair.Receiver.received_blocks rep = n - List.length dropped
      && Repair.Receiver.complete rep = (dropped = []))

(* ------------------------------------------------------ end-to-end run *)

let test_reliable_transfer_over_lossy_link () =
  let e = Netsim.Engine.create ~seed:101 () in
  let topo = Netsim.Topology.create e in
  let sn = Netsim.Topology.add_node topo in
  let rn = Netsim.Topology.add_node topo in
  ignore
    (Netsim.Topology.connect topo
       ~loss_ab:(Netsim.Loss_model.bernoulli ~rng:(Netsim.Engine.split_rng e) ~p:0.05)
       ~bandwidth_bps:2e6 ~delay_s:0.02 sn rn);
  let session =
    Netsim_env.Session.create topo ~session:1 ~sender_node:sn ~receiver_nodes:[ rn ] ()
  in
  let blocks = 400 in
  let rsnd =
    Repair.Sender.create (Tfmcc_core.Session.sender session) ~node:sn ~session:1
      ~blocks
  in
  let rx = List.hd (Tfmcc_core.Session.receivers session) in
  let rrcv = Repair.Receiver.create topo rx ~sender:sn ~session:1 ~blocks () in
  Tfmcc_core.Session.start session ~at:0.;
  Netsim.Engine.run ~until:120. e;
  Alcotest.(check bool)
    (Printf.sprintf "transfer complete (%d/%d)"
       (Repair.Receiver.received_blocks rrcv)
       blocks)
    true
    (Repair.Receiver.complete rrcv);
  Alcotest.(check bool) "losses forced repairs" true (Repair.Sender.repairs_sent rsnd > 0);
  Alcotest.(check bool) "NAKs flowed" true (Repair.Sender.naks_received rsnd > 0);
  Alcotest.(check bool) "first pass finished" true (Repair.Sender.first_pass_done rsnd)

let test_multi_receiver_all_complete () =
  let e = Netsim.Engine.create ~seed:103 () in
  let topo = Netsim.Topology.create e in
  let sn = Netsim.Topology.add_node topo in
  let hub = Netsim.Topology.add_node topo in
  ignore (Netsim.Topology.connect topo ~bandwidth_bps:5e6 ~delay_s:0.005 sn hub);
  let rns =
    List.init 4 (fun i ->
        let rn = Netsim.Topology.add_node topo in
        ignore
          (Netsim.Topology.connect topo
             ~loss_ab:
               (Netsim.Loss_model.bernoulli ~rng:(Netsim.Engine.split_rng e)
                  ~p:(0.01 +. (0.01 *. float_of_int i)))
             ~bandwidth_bps:5e6 ~delay_s:0.02 hub rn);
        rn)
  in
  let session =
    Netsim_env.Session.create topo ~session:1 ~sender_node:sn ~receiver_nodes:rns ()
  in
  let blocks = 300 in
  let _rsnd =
    Repair.Sender.create (Tfmcc_core.Session.sender session) ~node:sn ~session:1 ~blocks
  in
  let reps =
    List.map
      (fun rx -> Repair.Receiver.create topo rx ~sender:sn ~session:1 ~blocks ())
      (Tfmcc_core.Session.receivers session)
  in
  Tfmcc_core.Session.start session ~at:0.;
  Netsim.Engine.run ~until:200. e;
  List.iteri
    (fun i rep ->
      Alcotest.(check bool)
        (Printf.sprintf "receiver %d complete (%d/%d)" i
           (Repair.Receiver.received_blocks rep)
           blocks)
        true
        (Repair.Receiver.complete rep))
    reps

let () =
  Alcotest.run "repair"
    [
      ( "unit",
        [
          Alcotest.test_case "tracks blocks" `Quick test_receiver_tracks_blocks;
          Alcotest.test_case "NAKs observed hole" `Quick test_receiver_naks_observed_hole;
          Alcotest.test_case "NAKs stalled tail" `Quick test_receiver_naks_tail_when_stalled;
          Alcotest.test_case "completion" `Quick test_completion;
        ] );
      ("property", List.map QCheck_alcotest.to_alcotest [ prop_missing_is_complement ]);
      ( "end-to-end",
        [
          Alcotest.test_case "lossy link transfer" `Slow test_reliable_transfer_over_lossy_link;
          Alcotest.test_case "multi-receiver sync" `Slow test_multi_receiver_all_complete;
        ] );
    ]
