(* Tests for the domain-pool fan-out layer: result ordering, exception
   propagation, the jobs=1 degenerate case, nested-submit rejection and
   pool lifecycle. *)

exception Boom of int

let test_map_preserves_order () =
  let tasks = List.init 50 (fun i () -> i * i) in
  Alcotest.(check (list int))
    "results in input order"
    (List.init 50 (fun i -> i * i))
    (Par.map ~jobs:4 tasks)

let test_pool_map_preserves_order () =
  let pool = Par.Pool.create ~jobs:3 () in
  Fun.protect
    ~finally:(fun () -> Par.Pool.shutdown pool)
    (fun () ->
      Alcotest.(check int) "jobs" 3 (Par.Pool.jobs pool);
      let tasks = List.init 20 (fun i () -> string_of_int i) in
      Alcotest.(check (list string))
        "pool results in input order"
        (List.init 20 string_of_int)
        (Par.Pool.map pool tasks);
      (* The pool is reusable across batches. *)
      Alcotest.(check (list int)) "second batch" [ 1; 2; 3 ]
        (Par.Pool.map pool [ (fun () -> 1); (fun () -> 2); (fun () -> 3) ]))

let test_exception_propagates_lowest_index () =
  let ran = Atomic.make 0 in
  let tasks =
    List.init 10 (fun i () ->
        Atomic.incr ran;
        if i = 3 || i = 7 then raise (Boom i);
        i)
  in
  (match Par.map ~jobs:4 tasks with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i ->
      Alcotest.(check int) "lowest failing index wins" 3 i);
  (* Every task still ran to completion before the raise. *)
  Alcotest.(check int) "all tasks ran" 10 (Atomic.get ran)

let test_jobs_one_runs_in_caller () =
  (* jobs=1 must not spawn domains: tasks see the caller's domain. *)
  let caller = Domain.self () in
  let domains = Par.map ~jobs:1 (List.init 5 (fun _ () -> Domain.self ())) in
  List.iter
    (fun d -> Alcotest.(check bool) "ran in calling domain" true (d = caller))
    domains;
  (* Same run-everything-then-raise semantics as the pool path. *)
  let ran = Atomic.make 0 in
  let tasks =
    List.init 4 (fun i () ->
        Atomic.incr ran;
        if i = 1 then raise (Boom i))
  in
  (match Par.map ~jobs:1 tasks with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> Alcotest.(check int) "index" 1 i);
  Alcotest.(check int) "all tasks ran" 4 (Atomic.get ran)

let test_nested_submit_rejected () =
  let pool = Par.Pool.create ~jobs:2 () in
  Fun.protect
    ~finally:(fun () -> Par.Pool.shutdown pool)
    (fun () ->
      match
        Par.Pool.map pool
          [ (fun () -> Par.Pool.map pool [ (fun () -> 0) ]) ]
      with
      | _ -> Alcotest.fail "nested submit should raise"
      | exception Invalid_argument _ -> ())

let test_empty_and_shutdown () =
  Alcotest.(check (list int)) "empty batch" [] (Par.map ~jobs:4 []);
  let pool = Par.Pool.create ~jobs:2 () in
  Alcotest.(check (list int)) "empty pool batch" [] (Par.Pool.map pool []);
  Par.Pool.shutdown pool;
  Par.Pool.shutdown pool;
  (* idempotent *)
  match Par.Pool.map pool [ (fun () -> 1) ] with
  | _ -> Alcotest.fail "map after shutdown should raise"
  | exception Invalid_argument _ -> ()

let test_steal_mode_order_and_reuse () =
  (* Steal mode must have identical observable semantics: every task runs
     exactly once, results come back in submission-slot order, the pool
     is reusable across batches.  Uneven sleeps force actual stealing
     (worker 0's deque gets the long tasks under round-robin dealing). *)
  let pool = Par.Pool.create ~mode:Par.Steal ~jobs:3 () in
  Fun.protect
    ~finally:(fun () -> Par.Pool.shutdown pool)
    (fun () ->
      Alcotest.(check bool) "mode" true (Par.Pool.mode pool = Par.Steal);
      let ran = Atomic.make 0 in
      let tasks =
        List.init 24 (fun i () ->
            Atomic.incr ran;
            if i mod 3 = 0 then Unix.sleepf 0.02;
            i * 7)
      in
      Alcotest.(check (list int))
        "steal results in input order"
        (List.init 24 (fun i -> i * 7))
        (Par.Pool.map pool tasks);
      Alcotest.(check int) "each task ran exactly once" 24 (Atomic.get ran);
      Alcotest.(check (list int)) "second batch" [ 9; 8 ]
        (Par.Pool.map pool [ (fun () -> 9); (fun () -> 8) ]))

let test_steal_mode_exceptions () =
  let tasks =
    List.init 12 (fun i () -> if i = 2 || i = 9 then raise (Boom i) else i)
  in
  (match Par.map ~mode:Par.Steal ~jobs:4 tasks with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> Alcotest.(check int) "lowest failing slot wins" 2 i);
  (* Supervised variant: outcomes in slot order, failures captured. *)
  let outcomes =
    Par.map_outcomes ~mode:Par.Steal ~jobs:4
      (List.init 12 (fun i _control -> if i = 5 then raise (Boom i) else i))
  in
  List.iteri
    (fun i o ->
      match o with
      | Par.Ok v -> Alcotest.(check int) "slot value" i v
      | Par.Failed { exn = Boom 5; _ } when i = 5 -> ()
      | _ -> Alcotest.fail (Printf.sprintf "unexpected outcome in slot %d" i))
    outcomes

let test_create_validates_jobs () =
  (match Par.Pool.create ~jobs:0 () with
  | _ -> Alcotest.fail "jobs=0 should raise"
  | exception Invalid_argument _ -> ());
  match Par.Pool.create ~jobs:1000 () with
  | _ -> Alcotest.fail "jobs=1000 should raise"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map order" `Quick test_map_preserves_order;
          Alcotest.test_case "pool map order + reuse" `Quick
            test_pool_map_preserves_order;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates_lowest_index;
          Alcotest.test_case "jobs=1 degenerate" `Quick test_jobs_one_runs_in_caller;
          Alcotest.test_case "nested submit rejected" `Quick
            test_nested_submit_rejected;
          Alcotest.test_case "empty batch + shutdown" `Quick test_empty_and_shutdown;
          Alcotest.test_case "steal mode: order + reuse" `Quick
            test_steal_mode_order_and_reuse;
          Alcotest.test_case "steal mode: exceptions + outcomes" `Quick
            test_steal_mode_exceptions;
          Alcotest.test_case "create validates jobs" `Quick test_create_validates_jobs;
        ] );
    ]
