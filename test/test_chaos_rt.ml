(* Chaos + supervision tests for the real-time runtime (ISSUE 9): the
   Chaos plan primitives on the loopback fabric, the Loop exception
   backstop, session crash isolation / restart / stall supervision in
   the harness, the rt mirror of the simulator's
   CLR-partition-mid-slowstart scenario, and the UDP error taxonomy.
   Everything runs in turbo mode with fixed seeds — every run here is
   deterministic, and two of the tests assert exactly that. *)

open Rt

let cfg = Tfmcc_core.Config.default

let invalid f = try f (); false with Invalid_argument _ -> true

let mk_data ~session ~seq =
  Tfmcc_core.Wire.Data
    {
      Tfmcc_core.Wire.session;
      seq;
      ts = 0.1;
      rate = 1000.;
      round = 1;
      round_duration = 0.5;
      max_rtt = 0.1;
      clr = -1;
      in_slowstart = false;
      echo = None;
      fb = None;
      app = -1;
    }

(* ------------------------------------------------------------------ *)
(* Chaos plan validation                                               *)
(* ------------------------------------------------------------------ *)

let test_plan_validation () =
  let ok plan = Chaos.validate plan in
  ok [ Chaos.Flap { down_at = 1.; up_at = 2. } ];
  ok
    [
      Chaos.Churn
        {
          sessions = [];
          fraction = 0.5;
          from_ = 1.;
          until = 5.;
          period = 1.;
          down_for = 0.4;
        };
    ];
  Alcotest.(check bool)
    "flap window inverted" true
    (invalid (fun () -> Chaos.validate [ Chaos.Flap { down_at = 2.; up_at = 2. } ]));
  Alcotest.(check bool)
    "empty partition" true
    (invalid (fun () ->
         Chaos.validate [ Chaos.Partition { endpoints = []; from_ = 1.; until = 2. } ]));
  Alcotest.(check bool)
    "loss out of range" true
    (invalid (fun () ->
         Chaos.validate [ Chaos.Loss_burst { from_ = 1.; until = 2.; loss = 1.5 } ]));
  Alcotest.(check bool)
    "churn fraction 0" true
    (invalid (fun () ->
         Chaos.validate
           [
             Chaos.Churn
               {
                 sessions = [];
                 fraction = 0.;
                 from_ = 1.;
                 until = 2.;
                 period = 1.;
                 down_for = 0.5;
               };
           ]));
  Alcotest.(check bool)
    "NaN time" true
    (invalid (fun () ->
         Chaos.validate [ Chaos.Flap { down_at = Float.nan; up_at = 2. } ]))

(* ------------------------------------------------------------------ *)
(* Fabric chaos primitives                                             *)
(* ------------------------------------------------------------------ *)

(* One raw sender endpoint streaming a data frame every 10 ms to one
   joined receiver, so drop windows are visible in the counters without
   protocol machinery on top. *)
let raw_pair ~plan ~until ~impair =
  let loop = Loop.create ~mode:Loop.Turbo ~seed:3 () in
  let net = Net.create loop ~impair () in
  let tx = Net.endpoint net ~session:1 in
  let rx = Net.endpoint net ~session:1 in
  let rx_env = Net.env rx in
  rx_env.Tfmcc_core.Env.join ();
  let got = ref [] in
  Net.set_deliver rx (fun ~size:_ _ -> got := Loop.now loop :: !got);
  let tx_env = Net.env tx in
  let seq = ref 0 in
  let rec tick () =
    incr seq;
    tx_env.Tfmcc_core.Env.send ~dest:Tfmcc_core.Env.To_group ~flow:0 ~size:100
      (mk_data ~session:1 ~seq:!seq);
    if Loop.now loop < until then
      tx_env.Tfmcc_core.Env.after_unit ~delay:0.01 tick
  in
  tick ();
  let chaos = Chaos.apply net plan in
  Loop.run ~until loop;
  (net, chaos, List.rev !got, rx)

let test_flap_window () =
  let net, chaos, got, _ =
    raw_pair
      ~plan:[ Chaos.Flap { down_at = 1.; up_at = 2. } ]
      ~until:3. ~impair:(Net.impairment ())
  in
  Alcotest.(check int) "one flap" 1 (Chaos.flaps chaos);
  Alcotest.(check bool) "fabric back up" true (Net.fabric_up net);
  Alcotest.(check bool) "frames dropped while down" true (Net.flap_drops net > 50);
  let in_window =
    List.exists (fun t -> t > 1.05 && t < 1.95) got
  in
  Alcotest.(check bool) "nothing landed mid-flap" false in_window;
  Alcotest.(check bool)
    "delivery resumed after up" true
    (List.exists (fun t -> t > 2.05) got)

let test_loss_burst_window () =
  let net, chaos, _, _ =
    raw_pair
      ~plan:[ Chaos.Loss_burst { from_ = 1.; until = 2.; loss = 1.0 } ]
      ~until:3. ~impair:(Net.impairment ())
  in
  Alcotest.(check int) "one shift" 1 (Chaos.profile_shifts chaos);
  Alcotest.(check bool) "losses inside the burst" true (Net.frames_lost net > 50);
  Alcotest.(check (float 1e-9))
    "base loss restored" 0. (Net.current_impair net).Net.loss

let test_partition_spec () =
  let net, chaos, got, rx =
    raw_pair
      ~plan:
        [ Chaos.Partition { endpoints = [ 1 ]; from_ = 1.; until = 2. } ]
      ~until:3. ~impair:(Net.impairment ())
  in
  Alcotest.(check int) "rx endpoint id" 1 (Net.endpoint_id rx);
  Alcotest.(check int) "one partition" 1 (Chaos.partitions chaos);
  Alcotest.(check bool) "partition drops" true (Net.partition_drops net > 50);
  Alcotest.(check int) "healed" 0 (Net.blocked_count net);
  Alcotest.(check bool)
    "delivery resumed after heal" true
    (List.exists (fun t -> t > 2.05) got)

let test_block_refcount () =
  let loop = Loop.create ~mode:Loop.Turbo ~seed:1 () in
  let net = Net.create loop () in
  Alcotest.(check bool) "initially unblocked" false (Net.is_blocked net 7);
  Net.block net 7;
  Net.block net 7;
  Alcotest.(check bool) "blocked" true (Net.is_blocked net 7);
  Alcotest.(check int) "distinct count" 1 (Net.blocked_count net);
  Net.unblock net 7;
  Alcotest.(check bool) "still blocked (refcount 1)" true (Net.is_blocked net 7);
  Net.unblock net 7;
  Alcotest.(check bool) "fully unblocked" false (Net.is_blocked net 7);
  Alcotest.(check int) "count zero" 0 (Net.blocked_count net);
  Net.unblock net 7 (* below zero: no-op *);
  Alcotest.(check int) "no underflow" 0 (Net.blocked_count net)

(* ------------------------------------------------------------------ *)
(* Loop: periodic timers and the exception backstop                    *)
(* ------------------------------------------------------------------ *)

let test_loop_every () =
  let loop = Loop.create ~mode:Loop.Turbo ~seed:1 () in
  let fired = ref 0 in
  let timer = Loop.every loop ~interval:0.1 (fun () -> incr fired) in
  Loop.run ~until:1.05 loop;
  Alcotest.(check int) "ten firings" 10 !fired;
  timer.Tfmcc_core.Env.cancel ();
  Loop.run ~until:2.0 loop;
  Alcotest.(check int) "cancelled: no more" 10 !fired;
  Alcotest.(check bool)
    "bad interval rejected" true
    (invalid (fun () -> ignore (Loop.every loop ~interval:0. (fun () -> ()))))

let test_loop_backstop () =
  let loop = Loop.create ~mode:Loop.Turbo ~seed:1 () in
  let handled = ref 0 in
  Loop.set_exn_handler loop (fun _ _ -> incr handled);
  let survivors = ref 0 in
  (* Same-tick sibling must survive the crash of the timer before it. *)
  ignore (Loop.after loop ~delay:0.1 (fun () -> failwith "boom"));
  ignore (Loop.after loop ~delay:0.1 (fun () -> incr survivors));
  let chain = ref 0 in
  ignore
    (Loop.every loop ~interval:0.05 (fun () ->
         incr chain;
         if !chain <= 2 then failwith "periodic boom"));
  Loop.run ~until:0.30 loop;
  Alcotest.(check int) "handler saw the one-shot + 2 periodic crashes" 3 !handled;
  Alcotest.(check int) "sibling timer survived" 1 !survivors;
  Alcotest.(check bool) "periodic chain survived its crashes" true (!chain >= 5);
  Alcotest.(check int) "counted" 3 (Loop.exceptions_caught loop)

(* ------------------------------------------------------------------ *)
(* UDP error taxonomy                                                  *)
(* ------------------------------------------------------------------ *)

let test_udp_classify () =
  let check_class name err expect =
    Alcotest.(check bool) name true (Udp.classify err = expect)
  in
  check_class "EAGAIN transient" Unix.EAGAIN Udp.Transient;
  check_class "ENOBUFS transient" Unix.ENOBUFS Udp.Transient;
  check_class "EINTR transient" Unix.EINTR Udp.Transient;
  check_class "ECONNREFUSED degraded" Unix.ECONNREFUSED Udp.Degraded;
  check_class "EHOSTUNREACH degraded" Unix.EHOSTUNREACH Udp.Degraded;
  check_class "EMSGSIZE degraded" Unix.EMSGSIZE Udp.Degraded;
  check_class "EBADF fatal" Unix.EBADF Udp.Fatal;
  check_class "EINVAL fatal" Unix.EINVAL Udp.Fatal;
  Alcotest.(check string) "eagain label" "eagain" (Udp.kind_of_error Unix.EAGAIN);
  Alcotest.(check string) "enobufs label" "enobufs" (Udp.kind_of_error Unix.ENOBUFS);
  Alcotest.(check string) "fatal label" "fatal" (Udp.kind_of_error Unix.EBADF)

(* ------------------------------------------------------------------ *)
(* rt mirror of the simulator's CLR-partition-mid-slowstart test       *)
(* ------------------------------------------------------------------ *)

(* test_faults.ml runs this on the simulator: partition the only
   receiver (the CLR) mid-slowstart, watch the sender starve and decay,
   heal, watch it fail over back to a CLR and recover.  Here the same
   story plays out on the loopback fabric in turbo mode with a fixed
   seed.  Warmup 3 s holds the loss dice, so at t=2.5 the sender is
   still provably in slowstart when the partition lands. *)
let test_clr_partition_mid_slowstart_rt () =
  let loop = Loop.create ~mode:Loop.Turbo ~seed:5 () in
  let net =
    Net.create loop
      ~impair:(Net.impairment ~loss:0.02 ~delay:0.025 ~jitter:0.005 ~warmup:3. ())
      ()
  in
  let tx = Net.endpoint net ~session:1 in
  let rx = Net.endpoint net ~session:1 in
  let s =
    Tfmcc_core.Session.create ~sender_env:(Net.env tx) ~cfg ~session:1
      ~receiver_envs:[ Net.env rx ] ()
  in
  let snd = Tfmcc_core.Session.sender s in
  Net.set_deliver tx (fun ~size:_ msg -> Tfmcc_core.Sender.deliver snd msg);
  (match Tfmcc_core.Session.receivers s with
  | [ r ] -> Net.set_deliver rx (fun ~size msg -> Tfmcc_core.Receiver.deliver r ~size msg)
  | _ -> assert false);
  Tfmcc_core.Session.start s ~at:0.;
  let t_cut = 2.5 and t_heal = 12.0 in
  let pre_slowstart = ref false and pre_clr = ref None and pre_rate = ref 0. in
  ignore
    (Loop.at loop ~time:(t_cut -. 0.05) (fun () ->
         pre_slowstart := Tfmcc_core.Sender.in_slowstart snd;
         pre_clr := Tfmcc_core.Sender.clr snd;
         pre_rate := Tfmcc_core.Sender.rate_bytes_per_s snd));
  ignore (Loop.at loop ~time:t_cut (fun () -> Net.block net (Net.endpoint_id rx)));
  let outage_starved = ref false
  and outage_clr = ref None
  and outage_rate = ref 0.
  and outage_timeouts = ref 0 in
  ignore
    (Loop.at loop ~time:(t_heal -. 0.5) (fun () ->
         outage_starved := Tfmcc_core.Sender.is_starved snd;
         outage_clr := Tfmcc_core.Sender.clr snd;
         outage_rate := Tfmcc_core.Sender.rate_bytes_per_s snd;
         outage_timeouts := Tfmcc_core.Sender.clr_timeouts snd));
  ignore (Loop.at loop ~time:t_heal (fun () -> Net.unblock net (Net.endpoint_id rx)));
  Loop.run ~until:(t_heal +. 10.) loop;
  (* Before the cut: slowstart, with a CLR elected. *)
  Alcotest.(check bool) "mid-slowstart at the cut" true !pre_slowstart;
  Alcotest.(check bool) "CLR elected before the cut" true (!pre_clr <> None);
  (* During the outage: starved, decayed, CLR dropped. *)
  Alcotest.(check bool) "starved during outage" true !outage_starved;
  Alcotest.(check bool)
    "rate decayed below 75% of pre-cut" true
    (!outage_rate < 0.75 *. !pre_rate);
  Alcotest.(check (option int)) "CLR dropped during outage" None !outage_clr;
  Alcotest.(check bool) "CLR timeout observed" true (!outage_timeouts >= 1);
  (* After the heal: failover, starvation cleared, rate recovered. *)
  Alcotest.(check bool)
    "failover after heal" true
    (Tfmcc_core.Sender.clr_failovers snd >= 1);
  Alcotest.(check bool) "not starved at end" false (Tfmcc_core.Sender.is_starved snd);
  Alcotest.(check bool)
    "CLR re-elected" true
    (Tfmcc_core.Sender.clr snd <> None);
  Alcotest.(check bool)
    "rate recovered well above outage floor" true
    (Tfmcc_core.Sender.rate_bytes_per_s snd > 4. *. !outage_rate)

(* ------------------------------------------------------------------ *)
(* Harness supervision                                                 *)
(* ------------------------------------------------------------------ *)

(* Lossless, jitter-free fabric: with no shared impairment RNG draws,
   sessions are fully independent, so the *unaffected* sessions of a
   chaos run must match a clean run bit for bit.  The rate cap stands
   in for link capacity — without loss the fabric never ends slowstart,
   and an uncapped doubling rate would flood the wheel. *)
let iso_config =
  {
    Harness.default with
    Harness.sessions = 3;
    receivers = 1;
    duration = 10.;
    impair = Net.impairment ~delay:0.025 ();
    cfg = { Tfmcc_core.Config.default with Tfmcc_core.Config.max_rate = 125_000. };
    seed = 11;
  }

let test_crash_isolation () =
  let clean = Harness.run iso_config in
  let chaotic =
    Harness.run
      { iso_config with Harness.faults = [ Harness.Kill_session { session = 2; at = 2. } ] }
  in
  Alcotest.(check int) "one crash" 1 chaotic.Harness.crashes;
  Alcotest.(check int) "one restart" 1 chaotic.Harness.restarts;
  Alcotest.(check int) "nothing failed" 0 chaotic.Harness.sessions_failed;
  Alcotest.(check int) "nothing hit the backstop" 0 chaotic.Harness.loop_exceptions;
  let stat r sid = List.find (fun s -> s.Harness.session = sid) r.Harness.stats in
  (* Bit-identical bystanders: crash isolation means sessions 1 and 3
     cannot tell the difference. *)
  List.iter
    (fun sid ->
      Alcotest.(check bool)
        (Printf.sprintf "session %d unaffected by the kill" sid)
        true
        (stat clean sid = stat chaotic sid))
    [ 1; 3 ];
  (* And the killed session came back and converged. *)
  let s2 = stat chaotic 2 in
  Alcotest.(check bool) "killed session converged after restart" true
    (Harness.converged s2 ~cfg);
  List.iter
    (fun (sid, o) ->
      Alcotest.(check string)
        (Printf.sprintf "outcome %d ok" sid)
        "ok" (Par.outcome_label o))
    chaotic.Harness.outcomes

let test_persistent_crash_fails () =
  let r =
    Harness.run
      {
        iso_config with
        Harness.sessions = 2;
        duration = 12.;
        supervise =
          {
            Harness.default_supervision with
            Harness.max_restarts = 2;
            restart_backoff = 0.1;
          };
        faults =
          [
            Harness.Kill_session_every
              { session = 1; at = 1.; period = 0.5; until = 12. };
          ];
      }
  in
  Alcotest.(check int) "restarts exhausted" 2 r.Harness.restarts;
  Alcotest.(check int) "crashes = restarts + 1" 3 r.Harness.crashes;
  Alcotest.(check int) "one session failed" 1 r.Harness.sessions_failed;
  (match List.assoc 1 r.Harness.outcomes with
  | Par.Failed _ -> ()
  | o -> Alcotest.failf "expected Failed, got %s" (Par.outcome_label o));
  (match List.assoc 2 r.Harness.outcomes with
  | Par.Ok s ->
      Alcotest.(check bool) "bystander converged" true (Harness.converged s ~cfg)
  | o -> Alcotest.failf "expected Ok, got %s" (Par.outcome_label o));
  Alcotest.(check int) "backstop untouched" 0 r.Harness.loop_exceptions

let test_stall_watchdog () =
  let r =
    Harness.run
      {
        iso_config with
        Harness.sessions = 2;
        duration = 12.;
        supervise =
          {
            Harness.default_supervision with
            Harness.probe_interval = 0.25;
            stall_probes = 4;
            restart_backoff = 0.1;
          };
        faults = [ Harness.Stop_sender { session = 1; at = 2. } ];
      }
  in
  Alcotest.(check bool) "stall detected" true (r.Harness.stalls >= 1);
  Alcotest.(check bool) "restarted" true (r.Harness.restarts >= 1);
  Alcotest.(check int) "no crash involved" 0 r.Harness.crashes;
  (match List.assoc 1 r.Harness.outcomes with
  | Par.Ok s ->
      Alcotest.(check bool)
        "stalled session recovered and converged" true (Harness.converged s ~cfg)
  | o -> Alcotest.failf "expected Ok after restart, got %s" (Par.outcome_label o));
  Alcotest.(check int) "backstop untouched" 0 r.Harness.loop_exceptions

(* Stalls are still counted when restart_on_stall is off, but nothing
   is torn down. *)
let test_stall_no_restart () =
  let r =
    Harness.run
      {
        iso_config with
        Harness.sessions = 1;
        duration = 8.;
        supervise =
          {
            Harness.default_supervision with
            Harness.probe_interval = 0.25;
            stall_probes = 4;
            restart_on_stall = false;
          };
        faults = [ Harness.Stop_sender { session = 1; at = 2. } ];
      }
  in
  Alcotest.(check bool) "stalls counted" true (r.Harness.stalls >= 1);
  Alcotest.(check int) "no restart" 0 r.Harness.restarts

(* ------------------------------------------------------------------ *)
(* Chaos soak: determinism and survival                                *)
(* ------------------------------------------------------------------ *)

let soak_config =
  {
    Harness.default with
    Harness.sessions = 20;
    receivers = 4;
    duration = 20.;
    (* Same initial-RTT tuning as the chaos-rt CLI: a 0.5 s prior makes
       post-fault slowstart recovery crawl on a 25 ms path. *)
    cfg = { Tfmcc_core.Config.default with Tfmcc_core.Config.rtt_initial = 0.15 };
    seed = 7;
    chaos =
      [
        Chaos.Flap { down_at = 7.; up_at = 7.4 };
        Chaos.Churn
          {
            sessions = [];
            fraction = 0.2;
            from_ = 4.;
            until = 10.;
            period = 1.5;
            down_for = 0.6;
          };
      ];
    faults = [ Harness.Partition_clr { at = 3.; until = 6. } ];
  }

let strip_wall r = { r with Harness.wall_s = 0. }

let test_chaos_determinism () =
  let a = strip_wall (Harness.run soak_config) in
  let b = strip_wall (Harness.run soak_config) in
  (* The result records contain only floats/ints/lists — structural
     equality is bit-identity.  [chaos] holds a mutable handle, compare
     its counters separately. *)
  let counts r =
    match r.Harness.chaos with
    | Some c -> (Chaos.flaps c, Chaos.partitions c, Chaos.churn_blocks c)
    | None -> (0, 0, 0)
  in
  Alcotest.(check bool)
    "two runs bit-identical" true
    ({ a with Harness.chaos = None } = { b with Harness.chaos = None });
  Alcotest.(check bool) "chaos counters identical" true (counts a = counts b);
  Alcotest.(check bool) "chaos actually ran" true (counts a > (0, 0, 0))

let test_chaos_soak_survives () =
  let r = Harness.run soak_config in
  Alcotest.(check int) "nothing hit the backstop" 0 r.Harness.loop_exceptions;
  Alcotest.(check int) "no session failed" 0 r.Harness.sessions_failed;
  Alcotest.(check int) "every CLR was partitioned" 20 r.Harness.clr_partitioned;
  Alcotest.(check bool) "chaos drops happened" true (r.Harness.frames_blocked > 0);
  let conv =
    List.length (List.filter (Harness.converged ~cfg) r.Harness.stats)
  in
  Alcotest.(check bool)
    (Printf.sprintf "most sessions converged (%d/20)" conv)
    true (conv >= 16);
  let failovers =
    List.fold_left (fun a s -> a + s.Harness.failovers) 0 r.Harness.stats
  in
  Alcotest.(check bool) "failovers under CLR partition" true (failovers >= 1)

let () =
  Alcotest.run "chaos-rt"
    [
      ( "chaos plans",
        [
          Alcotest.test_case "validation" `Quick test_plan_validation;
          Alcotest.test_case "flap window" `Quick test_flap_window;
          Alcotest.test_case "loss burst window" `Quick test_loss_burst_window;
          Alcotest.test_case "partition window" `Quick test_partition_spec;
          Alcotest.test_case "block refcount" `Quick test_block_refcount;
        ] );
      ( "loop hardening",
        [
          Alcotest.test_case "every" `Quick test_loop_every;
          Alcotest.test_case "exception backstop" `Quick test_loop_backstop;
        ] );
      ( "udp errors",
        [ Alcotest.test_case "classification" `Quick test_udp_classify ] );
      ( "clr partition",
        [
          Alcotest.test_case "mid-slowstart partition, failover, recovery"
            `Quick test_clr_partition_mid_slowstart_rt;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "crash isolation" `Quick test_crash_isolation;
          Alcotest.test_case "persistent crash fails" `Quick
            test_persistent_crash_fails;
          Alcotest.test_case "stall watchdog restart" `Quick test_stall_watchdog;
          Alcotest.test_case "stall without restart" `Quick test_stall_no_restart;
        ] );
      ( "soak",
        [
          Alcotest.test_case "determinism" `Quick test_chaos_determinism;
          Alcotest.test_case "survival under chaos" `Quick test_chaos_soak_survives;
        ] );
    ]
