(* Conformance checklist: precise, paper-section-referenced behaviours of
   the TFMCC implementation, checked at the wire level (forged packets,
   deterministic timing).  Complements the per-module unit tests. *)

let cfg = Tfmcc_core.Config.default

type rig = {
  engine : Netsim.Engine.t;
  topo : Netsim.Topology.t;
  sender_node : Netsim.Node.t;
  rx1 : Netsim.Node.t;
  rx2 : Netsim.Node.t;
  rx3 : Netsim.Node.t;
}

let make_rig () =
  let engine = Netsim.Engine.create ~seed:111 () in
  let topo = Netsim.Topology.create engine in
  let sender_node = Netsim.Topology.add_node topo in
  let rx1 = Netsim.Topology.add_node topo in
  let rx2 = Netsim.Topology.add_node topo in
  let rx3 = Netsim.Topology.add_node topo in
  ignore (Netsim.Topology.connect topo ~bandwidth_bps:1e8 ~delay_s:0.001 sender_node rx1);
  ignore (Netsim.Topology.connect topo ~bandwidth_bps:1e8 ~delay_s:0.001 sender_node rx2);
  ignore (Netsim.Topology.connect topo ~bandwidth_bps:1e8 ~delay_s:0.001 sender_node rx3);
  { engine; topo; sender_node; rx1; rx2; rx3 }

let run_for rig dt =
  Netsim.Engine.run ~until:(Netsim.Engine.now rig.engine +. dt) rig.engine

let forge_report rig ~rx_id ?(rate = 50_000.) ?(have_rtt = true) ?(rtt = 0.05)
    ?(x_recv = 50_000.) ?(round = 0) ?(has_loss = true) () =
  let now = Netsim.Engine.now rig.engine in
  let payload =
    Netsim_env.Report
      {
        session = 1;
        rx_id;
        ts = now;
        echo_ts = now -. 0.02;
        echo_delay = 0.;
        rate;
        have_rtt;
        rtt;
        p = 0.01;
        x_recv;
        round;
        has_loss;
        leaving = false;
      }
  in
  Netsim.Node.deliver_local rig.sender_node
    (Netsim.Packet.make ~flow:(-1) ~size:40 ~src:rx_id
       ~dst:(Netsim.Packet.Unicast (Netsim.Node.id rig.sender_node))
       ~created:now payload)

(* Collect the echoes the sender puts on its outgoing data packets. *)
let watch_echoes rig =
  let echoes = ref [] in
  let watch node =
    Netsim.Node.attach node (fun p ->
        match p.Netsim.Packet.payload with
        | Netsim_env.Data { echo = Some e; _ } ->
            if not (List.mem e.Tfmcc_core.Wire.rx_id !echoes) then
              echoes := e.Tfmcc_core.Wire.rx_id :: !echoes
        | _ -> ())
  in
  watch rig.rx1;
  (* multicast: one copy is enough, but rx2's copy is identical *)
  echoes

(* --------------------------------------------------------------- checks *)

(* §2.1: the control equation at a reference point.  With b = 2,
   s = 1000 B, R = 100 ms, p = 1 %:
   denominator = R(sqrt(2bp/3) + 12 sqrt(3bp/8) p (1+32p²))
               = 0.1(0.115470 + 12·0.0866025·0.01·1.0032) = 0.0125897...
   T = 1000 / that = 79,430 B/s (±1). *)
let test_equation_reference_point () =
  let t = Tcp_model.Padhye.throughput ~b:2. ~s:1000 ~rtt:0.1 0.01 in
  Alcotest.(check (float 5.)) "Eq.(1) reference value" 79430.7 t

(* §2.1: the equation is used with the receiver's own measurements: a
   receiver with a larger RTT must calculate a proportionally smaller
   rate (T ∝ 1/R exactly, since t_RTO = 4R). *)
let test_equation_inverse_rtt_scaling () =
  let a = Tcp_model.Padhye.throughput ~b:2. ~s:1000 ~rtt:0.05 0.01 in
  let b = Tcp_model.Padhye.throughput ~b:2. ~s:1000 ~rtt:0.2 0.01 in
  Alcotest.(check (float 1e-6)) "T scales exactly as 1/R" 4. (a /. b)

(* §2.4.2: echo priority — "receivers that have not yet measured their
   RTT" come before "non-CLR receivers with previous RTT measurements".
   With an established CLR, two non-CLR reports arrive back-to-back; the
   no-RTT receiver must be echoed before the measured one. *)
let test_echo_priority_no_rtt_first () =
  let rig = make_rig () in
  Netsim.Topology.join rig.topo ~group:1 rig.rx1;
  let echoes = watch_echoes rig in
  let snd =
    Netsim_env.Sender.create rig.topo ~cfg ~session:1 ~node:rig.sender_node
      ~initial_rate:20_000. ()
  in
  Tfmcc_core.Sender.start snd ~at:0.;
  run_for rig 0.2;
  (* rx1 becomes CLR (lowest rate). *)
  forge_report rig ~rx_id:(Netsim.Node.id rig.rx1) ~rate:10_000. ~have_rtt:true ();
  run_for rig 0.3;
  (* Non-CLR reports: rx3 measured, rx2 not. *)
  forge_report rig ~rx_id:(Netsim.Node.id rig.rx3) ~rate:90_000. ~have_rtt:true ();
  forge_report rig ~rx_id:(Netsim.Node.id rig.rx2) ~rate:95_000. ~have_rtt:false ();
  echoes := [];
  run_for rig 1.0;
  let order = List.rev !echoes in
  let pos id =
    let rec find i = function
      | [] -> max_int
      | x :: rest -> if x = id then i else find (i + 1) rest
    in
    find 0 order
  in
  Alcotest.(check (option int)) "CLR established"
    (Some (Netsim.Node.id rig.rx1))
    (Tfmcc_core.Sender.clr snd);
  Alcotest.(check bool)
    (Printf.sprintf "no-RTT rx echoed before measured rx (order: %s)"
       (String.concat "," (List.map string_of_int order)))
    true
    (pos (Netsim.Node.id rig.rx2) < pos (Netsim.Node.id rig.rx3))

(* §2.6: the slowstart target is d = 2 times the MINIMUM reported receive
   rate: with receivers reporting 10 kB/s and 50 kB/s, the rate must not
   ramp beyond ~2 x 10 kB/s. *)
let test_slowstart_cap_two_times_min () =
  let rig = make_rig () in
  let snd =
    Netsim_env.Sender.create rig.topo ~cfg ~session:1 ~node:rig.sender_node
      ~initial_rate:5_000. ()
  in
  Tfmcc_core.Sender.start snd ~at:0.;
  run_for rig 0.1;
  for round = 0 to 30 do
    forge_report rig ~rx_id:(Netsim.Node.id rig.rx1) ~has_loss:false
      ~x_recv:10_000. ~round ();
    forge_report rig ~rx_id:(Netsim.Node.id rig.rx2) ~has_loss:false
      ~x_recv:50_000. ~round ();
    run_for rig 0.3
  done;
  Alcotest.(check bool) "still in slowstart" true (Tfmcc_core.Sender.in_slowstart snd);
  let x = Tfmcc_core.Sender.rate_bytes_per_s snd in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.0f <= 2 x min x_recv (20000)" x)
    true
    (x <= 21_000.)

(* §2.6: slowstart terminates on the first loss report and never
   restarts. *)
let test_slowstart_terminates_once () =
  let rig = make_rig () in
  let snd =
    Netsim_env.Sender.create rig.topo ~cfg ~session:1 ~node:rig.sender_node ()
  in
  Tfmcc_core.Sender.start snd ~at:0.;
  run_for rig 0.1;
  forge_report rig ~rx_id:(Netsim.Node.id rig.rx1) ~has_loss:true ~rate:30_000. ();
  run_for rig 0.05;
  Alcotest.(check bool) "terminated" false (Tfmcc_core.Sender.in_slowstart snd);
  (* A later no-loss report cannot re-enter slowstart. *)
  forge_report rig ~rx_id:(Netsim.Node.id rig.rx2) ~has_loss:false ~x_recv:90_000. ();
  run_for rig 0.05;
  Alcotest.(check bool) "stays terminated" false (Tfmcc_core.Sender.in_slowstart snd)

(* App. B: after the first loss event at receive rate r, the receiver's
   loss event rate must match the inverse of the simplified equation at
   r/2 (using its current — initial — RTT). *)
let test_appendix_b_initialization () =
  let rig = make_rig () in
  let rx =
    Netsim_env.Receiver.create rig.topo ~cfg ~session:1 ~node:rig.rx1
      ~sender:rig.sender_node ()
  in
  Tfmcc_core.Receiver.join rx;
  Netsim.Topology.join rig.topo ~group:1 rig.rx1;
  (* Steady 50 packets/s = 50 kB/s for 2 s, then a gap. *)
  let seq = ref 0 in
  let forge_at t s =
    ignore
      (Netsim.Engine.at rig.engine ~time:t (fun () ->
           let payload =
             Netsim_env.Data
               {
                 session = 1;
                 seq = s;
                 ts = t;
                 rate = 50_000.;
                 round = 0;
                 round_duration = 3.;
                 max_rtt = 0.5;
                 clr = -1;
                 in_slowstart = false;
                 echo = None;
                 fb = None;
                 app = -1;
               }
           in
           Netsim.Node.deliver_local rig.rx1
             (Netsim.Packet.make ~flow:1 ~size:1000
                ~src:(Netsim.Node.id rig.sender_node)
                ~dst:(Netsim.Packet.Multicast 1) ~created:t payload)))
  in
  for i = 0 to 99 do
    forge_at (0.02 *. float_of_int i) !seq;
    incr seq
  done;
  (* one lost packet *)
  incr seq;
  forge_at 2.02 !seq;
  Netsim.Engine.run rig.engine;
  let p = Tfmcc_core.Receiver.loss_event_rate rx in
  (* x_recv at the loss ~ 50 kB/s; expected p = inverse Mathis at 25 kB/s
     with the initial 500 ms RTT. *)
  let expected =
    Tcp_model.Mathis.inverse_loss ~s:1000 ~rtt:0.5 ~rate:25_000.
  in
  Alcotest.(check bool)
    (Printf.sprintf "p (%.5f) within 2x of App. B seed (%.5f)" p expected)
    true
    (p > expected /. 2. && p < expected *. 2.)

(* §2.5: the CLR is exempt from suppression — echoed feedback must not
   stop its periodic reports. *)
let test_clr_exempt_from_suppression () =
  let rig = make_rig () in
  let rx =
    Netsim_env.Receiver.create rig.topo ~cfg ~session:1 ~node:rig.rx1
      ~sender:rig.sender_node ()
  in
  Tfmcc_core.Receiver.join rx;
  let forge ~fb =
    let now = Netsim.Engine.now rig.engine in
    let payload =
      Netsim_env.Data
        {
          session = 1;
          seq = 0;
          ts = now;
          rate = 50_000.;
          round = 0;
          round_duration = 1.;
          max_rtt = 0.5;
          clr = Netsim.Node.id rig.rx1;
          in_slowstart = false;
          echo = None;
          fb;
          app = -1;
        }
    in
    Netsim.Node.deliver_local rig.rx1
      (Netsim.Packet.make ~flow:1 ~size:1000
         ~src:(Netsim.Node.id rig.sender_node)
         ~dst:(Netsim.Packet.Multicast 1) ~created:now payload)
  in
  forge ~fb:None;
  run_for rig 0.1;
  Alcotest.(check bool) "is CLR" true (Tfmcc_core.Receiver.is_clr rx);
  let before = Tfmcc_core.Receiver.reports_sent rx in
  forge ~fb:(Some { Tfmcc_core.Wire.fb_rx_id = 999; fb_rate = 1.; fb_has_loss = true });
  run_for rig 2.;
  Alcotest.(check bool) "CLR kept reporting despite echo" true
    (Tfmcc_core.Receiver.reports_sent rx > before + 1)

(* §2.4.1: synchronized-clock RTT initialization — with clocks in sync
   to within eps, the first packet seeds RTT = 2·(oneway + eps); a real
   measurement later replaces it. *)
let test_ntp_initialization_unit () =
  let est = Tfmcc_core.Rtt_estimator.create ~cfg ~clock_offset:0. () in
  Tfmcc_core.Rtt_estimator.init_from_oneway est ~oneway:0.03 ~max_error:0.02;
  Alcotest.(check (float 1e-9)) "2(d+eps)" 0.1 (Tfmcc_core.Rtt_estimator.estimate est);
  Alcotest.(check bool) "flagged" true (Tfmcc_core.Rtt_estimator.ntp_initialized est);
  (* A looser estimate must not replace a tighter one. *)
  Tfmcc_core.Rtt_estimator.init_from_oneway est ~oneway:0.2 ~max_error:0.1;
  Alcotest.(check (float 1e-9)) "keeps the tighter value" 0.1
    (Tfmcc_core.Rtt_estimator.estimate est);
  (* A real measurement takes over entirely. *)
  Tfmcc_core.Rtt_estimator.on_echo est ~local_now:1.06 ~rx_ts:1.0 ~echo_delay:0.
    ~pkt_ts:1.03 ~is_clr:true;
  Alcotest.(check (float 1e-9)) "real measurement wins" 0.06
    (Tfmcc_core.Rtt_estimator.estimate est)

let test_ntp_initialization_receiver () =
  let rig = make_rig () in
  let rx =
    Netsim_env.Receiver.create rig.topo ~cfg ~session:1 ~node:rig.rx1
      ~sender:rig.sender_node ~ntp_error:0.03 ()
  in
  Tfmcc_core.Receiver.join rx;
  let now = Netsim.Engine.now rig.engine in
  (* A data packet stamped 25 ms ago: oneway 25 ms, eps 30 ms ->
     initial RTT = 2(0.025+0.03) = 0.11 instead of 0.5. *)
  let payload =
    Netsim_env.Data
      {
        session = 1;
        seq = 0;
        ts = now -. 0.025;
        rate = 50_000.;
        round = 0;
        round_duration = 1.;
        max_rtt = 0.5;
        clr = -1;
        in_slowstart = false;
        echo = None;
        fb = None;
        app = -1;
      }
  in
  Netsim.Node.deliver_local rig.rx1
    (Netsim.Packet.make ~flow:1 ~size:1000
       ~src:(Netsim.Node.id rig.sender_node)
       ~dst:(Netsim.Packet.Multicast 1) ~created:now payload);
  run_for rig 0.01;
  Alcotest.(check (float 1e-6)) "NTP-seeded initial RTT" 0.11
    (Tfmcc_core.Receiver.rtt rx);
  Alcotest.(check bool) "still no real measurement" false
    (Tfmcc_core.Receiver.has_rtt_measurement rx)

(* §2.2: the CLR-loss timeout constant is 10 feedback delays. *)
let test_clr_timeout_constant () =
  Alcotest.(check (float 1e-9)) "10 feedback delays" 10.
    cfg.Tfmcc_core.Config.clr_timeout_rounds

(* §2.4.1: before any report, the sender's R_max is the 500 ms initial
   value (and so are the first feedback rounds: T = 6 x 0.5 = 3 s). *)
let test_initial_round_duration () =
  let rig = make_rig () in
  let snd =
    Netsim_env.Sender.create rig.topo ~cfg ~session:1 ~node:rig.sender_node ()
  in
  Tfmcc_core.Sender.start snd ~at:0.;
  run_for rig 0.05;
  Alcotest.(check (float 1e-9)) "R_max = initial" 0.5 (Tfmcc_core.Sender.max_rtt snd);
  Alcotest.(check (float 1e-6)) "T = 6 R_max" 3. (Tfmcc_core.Sender.round_duration snd)

let () =
  Alcotest.run "conformance"
    [
      ( "paper-sections",
        [
          Alcotest.test_case "2.1 equation reference value" `Quick test_equation_reference_point;
          Alcotest.test_case "2.1 T ~ 1/R exactly" `Quick test_equation_inverse_rtt_scaling;
          Alcotest.test_case "2.4.2 echo priority" `Quick test_echo_priority_no_rtt_first;
          Alcotest.test_case "2.6 slowstart cap 2x min" `Quick test_slowstart_cap_two_times_min;
          Alcotest.test_case "2.6 slowstart terminates once" `Quick test_slowstart_terminates_once;
          Alcotest.test_case "App B loss-history seed" `Quick test_appendix_b_initialization;
          Alcotest.test_case "2.5 CLR exempt from suppression" `Quick test_clr_exempt_from_suppression;
          Alcotest.test_case "2.4.1 NTP init (estimator)" `Quick test_ntp_initialization_unit;
          Alcotest.test_case "2.4.1 NTP init (receiver)" `Quick test_ntp_initialization_receiver;
          Alcotest.test_case "2.2 CLR timeout constant" `Quick test_clr_timeout_constant;
          Alcotest.test_case "2.4.1 initial round duration" `Quick test_initial_round_duration;
        ] );
    ]
