(* Fault-injection layer and TFMCC hardening: scripted link failures,
   partitions, packet corruption, and the sender/receiver behaviour under
   them — CLR crash failover, feedback-starvation decay and recovery, and
   validation of malformed wire fields. *)

let cfg = Tfmcc_core.Config.default

(* --------------------------------------------------- netsim fault layer *)

type net = {
  engine : Netsim.Engine.t;
  topo : Netsim.Topology.t;
  a : Netsim.Node.t;
  b : Netsim.Node.t;
  ab : Netsim.Link.t;
  ba : Netsim.Link.t;
}

let two_nodes ?(seed = 11) () =
  let engine = Netsim.Engine.create ~seed () in
  let topo = Netsim.Topology.create engine in
  let a = Netsim.Topology.add_node topo in
  let b = Netsim.Topology.add_node topo in
  let ab, ba = Netsim.Topology.connect topo ~bandwidth_bps:1e7 ~delay_s:0.001 a b in
  { engine; topo; a; b; ab; ba }

let send_at net ~time ~tag =
  ignore
    (Netsim.Engine.at net.engine ~time (fun () ->
         Netsim.Topology.inject net.topo
           (Netsim.Packet.make ~flow:1 ~size:100 ~src:(Netsim.Node.id net.a)
              ~dst:(Netsim.Packet.Unicast (Netsim.Node.id net.b))
              ~created:time (Netsim.Packet.Raw tag))))

let arrivals net =
  let seen = ref [] in
  Netsim.Node.attach net.b (fun p ->
      match p.Netsim.Packet.payload with
      | Netsim.Packet.Raw tag -> seen := tag :: !seen
      | _ -> ());
  fun () -> List.rev !seen

let test_flap_drops_then_recovers () =
  let net = two_nodes () in
  let f = Netsim.Fault.create net.engine in
  let got = arrivals net in
  Netsim.Fault.flap f net.ab ~down_at:0.1 ~up_at:0.2;
  send_at net ~time:0.05 ~tag:1;
  send_at net ~time:0.15 ~tag:2;
  (* swallowed by the outage *)
  send_at net ~time:0.25 ~tag:3;
  Netsim.Engine.run ~until:1. net.engine;
  Alcotest.(check (list int)) "packet during outage lost" [ 1; 3 ] (got ());
  Alcotest.(check int) "one down transition" 1 (Netsim.Fault.link_flaps f);
  Alcotest.(check bool) "link back up" true (Netsim.Link.is_up net.ab)

let test_flap_every_cycles () =
  let net = two_nodes () in
  let f = Netsim.Fault.create net.engine in
  Netsim.Fault.flap_every f net.ab ~first_down:0.1 ~period:0.2 ~down_for:0.05
    ~until:0.8;
  Netsim.Engine.run ~until:1. net.engine;
  Alcotest.(check int) "four outages" 4 (Netsim.Fault.link_flaps f);
  Alcotest.(check bool) "ends up" true (Netsim.Link.is_up net.ab)

let test_partition_blocks_both_directions () =
  let net = two_nodes () in
  let f = Netsim.Fault.create net.engine in
  let got = arrivals net in
  Netsim.Fault.partition f ~links:[ net.ab; net.ba ] ~from_:0.1 ~until:0.3;
  send_at net ~time:0.2 ~tag:1;
  send_at net ~time:0.35 ~tag:2;
  Netsim.Engine.run ~until:1. net.engine;
  Alcotest.(check (list int)) "only post-heal packet" [ 2 ] (got ());
  Alcotest.(check int) "one partition" 1 (Netsim.Fault.partitions f);
  Alcotest.(check int) "both links flapped" 2 (Netsim.Fault.link_flaps f);
  Alcotest.(check bool) "healed" true
    (Netsim.Link.is_up net.ab && Netsim.Link.is_up net.ba)

let test_duplicate_injector () =
  let net = two_nodes () in
  let f = Netsim.Fault.create net.engine in
  let got = arrivals net in
  Netsim.Fault.duplicate f net.ab ~rate:1.0 ();
  for i = 1 to 5 do
    send_at net ~time:(0.01 *. float_of_int i) ~tag:i
  done;
  Netsim.Engine.run ~until:1. net.engine;
  Alcotest.(check int) "every packet doubled" 10 (List.length (got ()));
  Alcotest.(check int) "counted" 5 (Netsim.Fault.duplications f)

let test_drop_injector () =
  let net = two_nodes () in
  let f = Netsim.Fault.create net.engine in
  let got = arrivals net in
  Netsim.Fault.drop f net.ab ~rate:1.0 ();
  for i = 1 to 5 do
    send_at net ~time:(0.01 *. float_of_int i) ~tag:i
  done;
  Netsim.Engine.run ~until:1. net.engine;
  Alcotest.(check (list int)) "nothing through" [] (got ());
  Alcotest.(check int) "counted" 5 (Netsim.Fault.drops_injected f)

let test_corrupt_injector_replaces () =
  let net = two_nodes () in
  let f = Netsim.Fault.create net.engine in
  let got = arrivals net in
  (* The mangle's replacement travels in the original's place. *)
  Netsim.Fault.corrupt f net.ab ~rate:1.0
    ~mangle:(fun _rng p -> Netsim.Packet.with_payload p (Netsim.Packet.Raw 999))
    ();
  send_at net ~time:0.01 ~tag:1;
  Netsim.Engine.run ~until:1. net.engine;
  Alcotest.(check (list int)) "replacement delivered" [ 999 ] (got ());
  Alcotest.(check int) "counted" 1 (Netsim.Fault.corruptions f)

let test_reorder_injector () =
  let net = two_nodes () in
  let f = Netsim.Fault.create net.engine in
  let got = arrivals net in
  (* Delay only even-tagged packets: odd ones overtake them. *)
  Netsim.Fault.reorder f net.ab ~rate:1.0 ~extra_delay:1.0 ~from_:0.015 ~until:0.025 ();
  for i = 1 to 4 do
    send_at net ~time:(0.01 *. float_of_int i) ~tag:i
  done;
  Netsim.Engine.run ~until:2. net.engine;
  let seen = got () in
  Alcotest.(check int) "all delivered" 4 (List.length seen);
  Alcotest.(check bool)
    (Printf.sprintf "order changed (%s)"
       (String.concat "," (List.map string_of_int seen)))
    true
    (seen <> [ 1; 2; 3; 4 ]);
  Alcotest.(check int) "window limited the injector" 1 (Netsim.Fault.reorderings f)

let test_injector_window_and_clear () =
  let net = two_nodes () in
  let f = Netsim.Fault.create net.engine in
  let got = arrivals net in
  Netsim.Fault.drop f net.ab ~rate:1.0 ~from_:0.1 ~until:0.2 ();
  send_at net ~time:0.05 ~tag:1;
  send_at net ~time:0.15 ~tag:2;
  send_at net ~time:0.25 ~tag:3;
  ignore
    (Netsim.Engine.at net.engine ~time:0.3 (fun () ->
         Netsim.Fault.clear_injectors f net.ab;
         (* a fresh injector after clear must not see stale chain state *)
         Netsim.Fault.drop f net.ab ~rate:0. ()));
  send_at net ~time:0.35 ~tag:4;
  Netsim.Engine.run ~until:1. net.engine;
  Alcotest.(check (list int)) "only windowed packet lost" [ 1; 3; 4 ] (got ());
  Alcotest.(check int) "one injected drop" 1 (Netsim.Fault.drops_injected f)

let test_churn_counters () =
  let net = two_nodes () in
  let f = Netsim.Fault.create net.engine in
  let crash_seen = ref false and graceful_seen = ref false in
  Netsim.Fault.churn f ~at:0.1 ~kind:Netsim.Fault.Crash (fun _ ->
      crash_seen := true);
  Netsim.Fault.churn f ~at:0.2 ~kind:Netsim.Fault.Graceful (fun _ ->
      graceful_seen := true);
  Netsim.Engine.run ~until:1. net.engine;
  Alcotest.(check bool) "both callbacks ran" true (!crash_seen && !graceful_seen);
  Alcotest.(check int) "crashes" 1 (Netsim.Fault.crashes f);
  Alcotest.(check int) "graceful leaves" 1 (Netsim.Fault.graceful_leaves f)

let test_engine_every () =
  let e = Netsim.Engine.create ~seed:1 () in
  let ticks = ref 0 in
  Netsim.Engine.every e ~until:0.55 ~interval:0.1 (fun () -> incr ticks);
  Netsim.Engine.run ~until:2. e;
  Alcotest.(check int) "ticks at 0.1..0.5" 5 !ticks

(* --------------------------------------------------- TFMCC wire hardening *)

(* Same rig idiom as test_tfmcc_wire: forged packets delivered locally. *)
type rig = {
  r_engine : Netsim.Engine.t;
  r_topo : Netsim.Topology.t;
  sender_node : Netsim.Node.t;
  rx_node : Netsim.Node.t;
  rx2_node : Netsim.Node.t;
}

let make_rig () =
  let r_engine = Netsim.Engine.create ~seed:71 () in
  let r_topo = Netsim.Topology.create r_engine in
  let sender_node = Netsim.Topology.add_node r_topo in
  let rx_node = Netsim.Topology.add_node r_topo in
  let rx2_node = Netsim.Topology.add_node r_topo in
  ignore
    (Netsim.Topology.connect r_topo ~bandwidth_bps:1e7 ~delay_s:0.01 sender_node rx_node);
  ignore
    (Netsim.Topology.connect r_topo ~bandwidth_bps:1e7 ~delay_s:0.01 sender_node rx2_node);
  { r_engine; r_topo; sender_node; rx_node; rx2_node }

let run_for rig dt =
  Netsim.Engine.run ~until:(Netsim.Engine.now rig.r_engine +. dt) rig.r_engine

let report_payload rig ~rx_id ?(session = 1) ?(rate = 50_000.) ?(rtt = 0.05)
    ?(p = 0.01) ?(x_recv = 50_000.) ?(round = 0) ?(ts = nan) ?(echo_delay = 0.)
    ?(has_loss = true) ?(leaving = false) () =
  let now = Netsim.Engine.now rig.r_engine in
  let ts = if Float.is_nan ts then now else ts in
  Netsim_env.Report
    {
      session;
      rx_id;
      ts;
      echo_ts = now -. 0.02;
      echo_delay;
      rate;
      have_rtt = true;
      rtt;
      p;
      x_recv;
      round;
      has_loss;
      leaving;
    }

let deliver_report rig payload =
  let now = Netsim.Engine.now rig.r_engine in
  Netsim.Node.deliver_local rig.sender_node
    (Netsim.Packet.make ~flow:(-1) ~size:40 ~src:99
       ~dst:(Netsim.Packet.Unicast (Netsim.Node.id rig.sender_node))
       ~created:now payload)

let started_sender ?(cfg = cfg) ?initial_rate rig =
  let snd =
    Netsim_env.Sender.create rig.r_topo ~cfg ~session:1 ~node:rig.sender_node
      ?initial_rate ()
  in
  Tfmcc_core.Sender.start snd ~at:0.;
  run_for rig 0.1;
  snd

let sender_fingerprint snd =
  ( Tfmcc_core.Sender.rate_bytes_per_s snd,
    Tfmcc_core.Sender.clr snd,
    Tfmcc_core.Sender.reports_received snd )

let test_sender_rejects_bad_fields () =
  let rig = make_rig () in
  let snd = started_sender ~initial_rate:100_000. rig in
  let rx = Netsim.Node.id rig.rx_node in
  (* Establish a healthy baseline first. *)
  deliver_report rig (report_payload rig ~rx_id:rx ~rate:30_000. ());
  run_for rig 0.01;
  let baseline = sender_fingerprint snd in
  let bad =
    [
      report_payload rig ~rx_id:rx ~rate:nan ();
      report_payload rig ~rx_id:rx ~rate:(-5_000.) ();
      report_payload rig ~rx_id:rx ~rtt:(-0.1) ();
      report_payload rig ~rx_id:rx ~rtt:nan ();
      report_payload rig ~rx_id:rx ~p:1.5 ();
      report_payload rig ~rx_id:rx ~p:(-0.2) ();
      report_payload rig ~rx_id:rx ~p:nan ();
      report_payload rig ~rx_id:rx ~x_recv:neg_infinity ();
      report_payload rig ~rx_id:rx ~ts:infinity ();
      report_payload rig ~rx_id:rx ~echo_delay:(-1.) ();
      report_payload rig ~rx_id:(-3) ();
      report_payload rig ~rx_id:rx ~round:(-7) ();
    ]
  in
  List.iter (deliver_report rig) bad;
  run_for rig 0.01;
  Alcotest.(check (triple (float 1e-9) (option int) int))
    "state untouched by malformed reports" baseline (sender_fingerprint snd);
  Alcotest.(check int) "every malformed report counted" (List.length bad)
    (Tfmcc_core.Sender.malformed_reports_dropped snd)

let test_sender_rejects_unknown_session () =
  let rig = make_rig () in
  let snd = started_sender ~initial_rate:100_000. rig in
  deliver_report rig
    (report_payload rig ~rx_id:(Netsim.Node.id rig.rx_node) ~session:42 ());
  run_for rig 0.01;
  Alcotest.(check int) "not accepted" 0 (Tfmcc_core.Sender.reports_received snd);
  Alcotest.(check int) "counted" 1 (Tfmcc_core.Sender.malformed_reports_dropped snd)

let test_sender_rejects_implausible_rounds () =
  let rig = make_rig () in
  (* stale window = ceil(clr_timeout_rounds) = 1 round *)
  let cfg' = { cfg with Tfmcc_core.Config.clr_timeout_rounds = 1. } in
  let snd = started_sender ~cfg:cfg' ~initial_rate:100_000. rig in
  while Tfmcc_core.Sender.round snd < 2 do
    run_for rig 0.5
  done;
  let r = Tfmcc_core.Sender.round snd in
  let rx = Netsim.Node.id rig.rx_node in
  deliver_report rig (report_payload rig ~rx_id:rx ~round:(r - 2) ());
  run_for rig 0.01;
  Alcotest.(check int) "stale round dropped" 1
    (Tfmcc_core.Sender.malformed_reports_dropped snd);
  deliver_report rig (report_payload rig ~rx_id:rx ~round:r ());
  run_for rig 0.01;
  Alcotest.(check int) "current round accepted" 1
    (Tfmcc_core.Sender.reports_received snd)

let test_sender_fuzz_corrupted_reports () =
  let rig = make_rig () in
  let snd = started_sender ~initial_rate:100_000. rig in
  let rx = Netsim.Node.id rig.rx_node in
  deliver_report rig (report_payload rig ~rx_id:rx ~rate:30_000. ());
  run_for rig 0.01;
  let rng = Stats.Rng.create 1234 in
  let n = 300 in
  for i = 1 to n do
    let now = Netsim.Engine.now rig.r_engine in
    let valid =
      Netsim.Packet.make ~flow:(-1) ~size:40 ~src:rx
        ~dst:(Netsim.Packet.Unicast (Netsim.Node.id rig.sender_node))
        ~created:now
        (report_payload rig ~rx_id:rx ~round:(Tfmcc_core.Sender.round snd) ())
    in
    Netsim.Node.deliver_local rig.sender_node
      (Netsim_env.corrupt_packet rng valid);
    if i mod 50 = 0 then run_for rig 0.05;
    let rate = Tfmcc_core.Sender.rate_bytes_per_s snd in
    if not (Float.is_finite rate && rate > 0.) then
      Alcotest.failf "rate went bad after %d corrupted reports: %f" i rate
  done;
  run_for rig 0.1;
  Alcotest.(check int) "every corrupted report rejected" n
    (Tfmcc_core.Sender.malformed_reports_dropped snd);
  Alcotest.(check bool) "rate finite and positive" true
    (let r = Tfmcc_core.Sender.rate_bytes_per_s snd in
     Float.is_finite r && r > 0.)

let test_receiver_rejects_bad_data () =
  let rig = make_rig () in
  let r =
    Netsim_env.Receiver.create rig.r_topo ~cfg ~session:1 ~node:rig.rx_node
      ~sender:rig.sender_node ()
  in
  Tfmcc_core.Receiver.join r;
  let deliver_data ?(rate = 50_000.) ?(round_duration = 1.) ?(ts = nan)
      ?(max_rtt = 0.5) ?(seq = 0) () =
    let now = Netsim.Engine.now rig.r_engine in
    let ts = if Float.is_nan ts then now else ts in
    Netsim.Node.deliver_local rig.rx_node
      (Netsim.Packet.make ~flow:1 ~size:1000
         ~src:(Netsim.Node.id rig.sender_node)
         ~dst:(Netsim.Packet.Multicast 1) ~created:now
         (Netsim_env.Data
            {
              session = 1;
              seq;
              ts;
              rate;
              round = 0;
              round_duration;
              max_rtt;
              clr = -1;
              in_slowstart = false;
              echo = None;
              fb = None;
              app = -1;
            }))
  in
  deliver_data ();
  run_for rig 0.01;
  Alcotest.(check int) "valid data accepted" 1 (Tfmcc_core.Receiver.packets_received r);
  deliver_data ~rate:nan ();
  deliver_data ~rate:(-100.) ();
  deliver_data ~round_duration:(-1.) ();
  deliver_data ~ts:infinity ();
  deliver_data ~max_rtt:nan ();
  deliver_data ~seq:(-4) ();
  run_for rig 0.01;
  Alcotest.(check int) "malformed data not counted as received" 1
    (Tfmcc_core.Receiver.packets_received r);
  Alcotest.(check int) "all dropped at validation" 6
    (Tfmcc_core.Receiver.malformed_data_dropped r)

let test_receiver_fuzz_corrupted_data () =
  let rig = make_rig () in
  let r =
    Netsim_env.Receiver.create rig.r_topo ~cfg ~session:1 ~node:rig.rx_node
      ~sender:rig.sender_node ()
  in
  Tfmcc_core.Receiver.join r;
  let rng = Stats.Rng.create 99 in
  for seq = 0 to 299 do
    let now = Netsim.Engine.now rig.r_engine in
    let valid =
      Netsim.Packet.make ~flow:1 ~size:1000
        ~src:(Netsim.Node.id rig.sender_node)
        ~dst:(Netsim.Packet.Multicast 1) ~created:now
        (Netsim_env.Data
           {
             session = 1;
             seq;
             ts = now;
             rate = 50_000.;
             round = 0;
             round_duration = 1.;
             max_rtt = 0.5;
             clr = -1;
             in_slowstart = false;
             echo = None;
             fb = None;
             app = -1;
           })
    in
    Netsim.Node.deliver_local rig.rx_node (Netsim_env.corrupt_packet rng valid);
    if seq mod 50 = 0 then run_for rig 0.01
  done;
  run_for rig 0.1;
  (* Wrong-session corruptions are invisible to this receiver; everything
     else must have been rejected at validation, not absorbed. *)
  Alcotest.(check int) "no corrupted packet accepted" 0
    (Tfmcc_core.Receiver.packets_received r);
  Alcotest.(check bool) "drops counted" true
    (Tfmcc_core.Receiver.malformed_data_dropped r > 0);
  let p = Tfmcc_core.Receiver.loss_event_rate r in
  Alcotest.(check bool) "loss rate still sane" true (Float.is_finite p && p >= 0.)

(* ------------------------------------------- starvation, crash, failover *)

let test_starvation_decay_to_floor_and_recovery () =
  let rig = make_rig () in
  let snd = started_sender ~initial_rate:100_000. rig in
  let rx = Netsim.Node.id rig.rx_node in
  let rx2 = Netsim.Node.id rig.rx2_node in
  deliver_report rig (report_payload rig ~rx_id:rx ~rate:20_000. ());
  run_for rig 0.01;
  Alcotest.(check (option int)) "CLR elected" (Some rx) (Tfmcc_core.Sender.clr snd);
  (* Total silence: no receiver reports at all.  The sender must starve,
     drop the dead CLR, and decay to the one-packet floor.  Rounds (and
     with them the decay steps) stretch as the rate falls — the last
     halvings take hundreds of simulated seconds each. *)
  run_for rig 700.;
  let floor = float_of_int cfg.Tfmcc_core.Config.packet_size /. 64. in
  Alcotest.(check bool) "starved" true (Tfmcc_core.Sender.is_starved snd);
  Alcotest.(check int) "one starvation episode" 1
    (Tfmcc_core.Sender.feedback_starvations snd);
  Alcotest.(check (option int)) "dead CLR dropped" None (Tfmcc_core.Sender.clr snd);
  Alcotest.(check int) "counted as timeout" 1 (Tfmcc_core.Sender.clr_timeouts snd);
  Alcotest.(check (float 1e-6)) "rate at the floor" floor
    (Tfmcc_core.Sender.rate_bytes_per_s snd);
  (* Heal: a surviving receiver reports.  Starvation must end at once,
     the reporter become the failover CLR, and the rate climb again. *)
  deliver_report rig
    (report_payload rig ~rx_id:rx2 ~rate:50_000.
       ~round:(Tfmcc_core.Sender.round snd) ());
  run_for rig 0.01;
  Alcotest.(check bool) "recovered from starvation" false
    (Tfmcc_core.Sender.is_starved snd);
  Alcotest.(check (option int)) "failover CLR installed" (Some rx2)
    (Tfmcc_core.Sender.clr snd);
  Alcotest.(check int) "failover counted" 1 (Tfmcc_core.Sender.clr_failovers snd);
  (* Bounded recovery: with CLR feedback flowing the capped increase must
     lift the rate well off the floor within a few RTTs. *)
  for _ = 1 to 50 do
    run_for rig 0.1;
    deliver_report rig
      (report_payload rig ~rx_id:rx2 ~rate:50_000.
         ~round:(Tfmcc_core.Sender.round snd) ())
  done;
  run_for rig 0.01;
  let rate = Tfmcc_core.Sender.rate_bytes_per_s snd in
  Alcotest.(check bool)
    (Printf.sprintf "rate recovered (got %.1f)" rate)
    true (rate > 10. *. floor)

let test_starvation_report_prevents () =
  let rig = make_rig () in
  let snd = started_sender ~initial_rate:100_000. rig in
  let rx = Netsim.Node.id rig.rx_node in
  deliver_report rig (report_payload rig ~rx_id:rx ~rate:20_000. ());
  run_for rig 0.01;
  (* Keep the CLR talking: starvation must never trigger. *)
  for _ = 1 to 60 do
    run_for rig 0.5;
    deliver_report rig
      (report_payload rig ~rx_id:rx ~rate:20_000.
         ~round:(Tfmcc_core.Sender.round snd) ())
  done;
  Alcotest.(check int) "no starvation with live feedback" 0
    (Tfmcc_core.Sender.feedback_starvations snd);
  Alcotest.(check (option int)) "CLR kept" (Some rx) (Tfmcc_core.Sender.clr snd)

let test_graceful_leave_failover () =
  let rig = make_rig () in
  let snd = started_sender ~initial_rate:100_000. rig in
  let rx = Netsim.Node.id rig.rx_node in
  let rx2 = Netsim.Node.id rig.rx2_node in
  deliver_report rig (report_payload rig ~rx_id:rx ~rate:20_000. ());
  run_for rig 0.01;
  deliver_report rig (report_payload rig ~rx_id:rx ~leaving:true ());
  run_for rig 0.01;
  Alcotest.(check (option int)) "CLR gone" None (Tfmcc_core.Sender.clr snd);
  Alcotest.(check int) "no failover yet" 0 (Tfmcc_core.Sender.clr_failovers snd);
  deliver_report rig (report_payload rig ~rx_id:rx2 ~rate:25_000. ());
  run_for rig 0.01;
  Alcotest.(check (option int)) "replacement installed" (Some rx2)
    (Tfmcc_core.Sender.clr snd);
  Alcotest.(check int) "failover completed" 1 (Tfmcc_core.Sender.clr_failovers snd)

(* A loss-free receiver must volunteer a report when the sender advertises
   clr = -1 (lost CLR / starvation recovery), and stay silent otherwise. *)
let test_receiver_volunteers_on_lost_clr () =
  let volunteer ~clr =
    let rig = make_rig () in
    let r =
      Netsim_env.Receiver.create rig.r_topo ~cfg ~session:1 ~node:rig.rx_node
        ~sender:rig.sender_node ()
    in
    Tfmcc_core.Receiver.join r;
    let data ~seq ~round =
      let now = Netsim.Engine.now rig.r_engine in
      Netsim.Node.deliver_local rig.rx_node
        (Netsim.Packet.make ~flow:1 ~size:1000
           ~src:(Netsim.Node.id rig.sender_node)
           ~dst:(Netsim.Packet.Multicast 1) ~created:now
           (Netsim_env.Data
              {
                session = 1;
                seq;
                ts = now;
                rate = 50_000.;
                round;
                round_duration = 0.5;
                max_rtt = 0.5;
                clr;
                in_slowstart = false;
                echo = None;
                fb = None;
                app = -1;
              }))
    in
    data ~seq:0 ~round:0;
    run_for rig 0.05;
    data ~seq:1 ~round:1;
    run_for rig 1.0;
    Tfmcc_core.Receiver.reports_sent r
  in
  Alcotest.(check bool) "volunteers when clr = -1" true (volunteer ~clr:(-1) >= 1);
  Alcotest.(check int) "silent when another CLR exists" 0 (volunteer ~clr:12345)

(* Partition the CLR mid-slowstart on a real forwarded topology (not a
   locally-delivered rig): the sender must notice the silence, decay,
   drop the dead CLR, and — once the partition heals — fail over and
   recover, all within bounded feedback rounds. *)
let test_clr_partition_mid_slowstart () =
  let open Tfmcc_core in
  let open Experiments in
  let s = Scenario.star ~seed:5 ~link_bps:5e6 ~link_delays:[| 0.02 |] () in
  let sc = s.Scenario.s_sc in
  let engine = sc.Scenario.engine in
  let f = Netsim.Fault.create engine in
  Session.start s.Scenario.s_session ~at:0.;
  let snd = Session.sender s.Scenario.s_session in
  let t_partition = 5.0 and t_heal = 15.0 in
  let pre_rate = ref 0. and outage_rate = ref infinity in
  let partitioned = ref (-1) in
  ignore
    (Netsim.Engine.at engine ~time:t_partition (fun () ->
         Alcotest.(check bool) "mid-slowstart at partition time" true
           (Sender.in_slowstart snd);
         match Sender.clr snd with
         | None -> Alcotest.fail "no CLR elected before the partition"
         | Some rx ->
             partitioned := rx;
             pre_rate := Sender.rate_bytes_per_s snd;
             let idx = ref (-1) in
             Array.iteri
               (fun i n -> if Netsim.Node.id n = rx then idx := i)
               s.Scenario.s_rx_nodes;
             if !idx < 0 then Alcotest.fail "CLR is not a star receiver";
             let down, up = s.Scenario.s_rx_links.(!idx) in
             Netsim.Fault.partition f ~links:[ down; up ]
               ~from_:(t_partition +. 0.001) ~until:t_heal));
  (* Late in the outage: cutting the CLR's link silenced the session's
     only feedback source, so the sender must have starved, decayed its
     rate, and dropped the dead CLR so the data header advertises
     clr = -1. *)
  ignore
    (Netsim.Engine.at engine ~time:(t_heal -. 0.5) (fun () ->
         outage_rate := Sender.rate_bytes_per_s snd;
         Alcotest.(check bool) "starved during the partition" true
           (Sender.is_starved snd);
         Alcotest.(check bool) "rate decayed" true
           (!outage_rate < 0.75 *. !pre_rate);
         Alcotest.(check (option int)) "dead CLR dropped" None
           (Sender.clr snd);
         Alcotest.(check bool) "timeout counted" true
           (Sender.clr_timeouts snd >= 1)));
  Scenario.run_until sc (t_heal +. 10.);
  (* Bounded recovery: within a few feedback rounds of the heal a
     receiver volunteered, the failover completed, starvation ended and
     the rate climbed well off the decayed floor. *)
  Alcotest.(check bool) "starvation over after heal" false
    (Sender.is_starved snd);
  Alcotest.(check bool) "failover completed" true (Sender.clr_failovers snd >= 1);
  (match Sender.clr snd with
  | None -> Alcotest.fail "no CLR after recovery"
  | Some _ -> ());
  let rate = Sender.rate_bytes_per_s snd in
  Alcotest.(check bool)
    (Printf.sprintf "rate recovered (outage %.0f, now %.0f B/s)" !outage_rate
       rate)
    true
    (rate > 4. *. !outage_rate)

let () =
  Alcotest.run "faults"
    [
      ( "netsim",
        [
          Alcotest.test_case "flap" `Quick test_flap_drops_then_recovers;
          Alcotest.test_case "flap_every" `Quick test_flap_every_cycles;
          Alcotest.test_case "partition" `Quick test_partition_blocks_both_directions;
          Alcotest.test_case "duplicate" `Quick test_duplicate_injector;
          Alcotest.test_case "drop" `Quick test_drop_injector;
          Alcotest.test_case "corrupt" `Quick test_corrupt_injector_replaces;
          Alcotest.test_case "reorder" `Quick test_reorder_injector;
          Alcotest.test_case "window + clear" `Quick test_injector_window_and_clear;
          Alcotest.test_case "churn" `Quick test_churn_counters;
          Alcotest.test_case "engine every" `Quick test_engine_every;
        ] );
      ( "validation",
        [
          Alcotest.test_case "sender rejects bad fields" `Quick test_sender_rejects_bad_fields;
          Alcotest.test_case "sender rejects unknown session" `Quick test_sender_rejects_unknown_session;
          Alcotest.test_case "sender rejects bad rounds" `Quick test_sender_rejects_implausible_rounds;
          Alcotest.test_case "sender survives fuzzed reports" `Quick test_sender_fuzz_corrupted_reports;
          Alcotest.test_case "receiver rejects bad data" `Quick test_receiver_rejects_bad_data;
          Alcotest.test_case "receiver survives fuzzed data" `Quick test_receiver_fuzz_corrupted_data;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "starvation decay + recovery" `Quick
            test_starvation_decay_to_floor_and_recovery;
          Alcotest.test_case "live feedback prevents starvation" `Quick
            test_starvation_report_prevents;
          Alcotest.test_case "graceful leave failover" `Quick test_graceful_leave_failover;
          Alcotest.test_case "volunteer on lost CLR" `Quick
            test_receiver_volunteers_on_lost_clr;
          Alcotest.test_case "CLR partition mid-slowstart" `Quick
            test_clr_partition_mid_slowstart;
        ] );
    ]
