(* Unit tests for the Netsim substrate: event heap, engine, queues, links,
   topology routing and multicast trees. *)

let check_float = Alcotest.(check (float 1e-9))

(* ----------------------------------------------------------- Event_heap *)

let test_heap_order () =
  let h = Netsim.Event_heap.create () in
  let fired = ref [] in
  let add time tag =
    ignore (Netsim.Event_heap.add h ~time (fun () -> fired := tag :: !fired))
  in
  add 3.0 "c";
  add 1.0 "a";
  add 2.0 "b";
  let rec drain () =
    match Netsim.Event_heap.pop h with
    | None -> ()
    | Some (_, f) ->
        f ();
        drain ()
  in
  drain ();
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !fired)

let test_heap_fifo_ties () =
  let h = Netsim.Event_heap.create () in
  let fired = ref [] in
  for i = 0 to 9 do
    ignore (Netsim.Event_heap.add h ~time:1.0 (fun () -> fired := i :: !fired))
  done;
  let rec drain () =
    match Netsim.Event_heap.pop h with
    | None -> ()
    | Some (_, f) ->
        f ();
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "insertion order on ties" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !fired)

let test_heap_cancel () =
  let h = Netsim.Event_heap.create () in
  let fired = ref 0 in
  let keep = Netsim.Event_heap.add h ~time:1.0 (fun () -> incr fired) in
  let drop = Netsim.Event_heap.add h ~time:2.0 (fun () -> incr fired) in
  ignore keep;
  Netsim.Event_heap.cancel h drop;
  Alcotest.(check int) "live size after cancel" 1 (Netsim.Event_heap.size h);
  let rec drain () =
    match Netsim.Event_heap.pop h with
    | None -> ()
    | Some (_, f) ->
        f ();
        drain ()
  in
  drain ();
  Alcotest.(check int) "only live event fired" 1 !fired

let test_heap_cancel_idempotent () =
  let h = Netsim.Event_heap.create () in
  let e = Netsim.Event_heap.add h ~time:1.0 ignore in
  Netsim.Event_heap.cancel h e;
  Netsim.Event_heap.cancel h e;
  Alcotest.(check int) "size zero" 0 (Netsim.Event_heap.size h)

let test_heap_grows () =
  let h = Netsim.Event_heap.create () in
  for i = 0 to 999 do
    ignore (Netsim.Event_heap.add h ~time:(float_of_int (999 - i)) ignore)
  done;
  Alcotest.(check int) "all live" 1000 (Netsim.Event_heap.size h);
  let prev = ref neg_infinity in
  let rec drain n =
    match Netsim.Event_heap.pop h with
    | None -> n
    | Some (t, _) ->
        if t < !prev then Alcotest.fail "heap order violated";
        prev := t;
        drain (n + 1)
  in
  Alcotest.(check int) "popped all" 1000 (drain 0)

let test_heap_fast_path () =
  let h = Netsim.Event_heap.create () in
  Alcotest.(check bool) "empty -> nan" true (Float.is_nan (Netsim.Event_heap.next_time h));
  let fired = ref [] in
  let add time tag =
    ignore (Netsim.Event_heap.add h ~time (fun () -> fired := tag :: !fired))
  in
  add 2.0 "b";
  add 1.0 "a";
  check_float "next_time is min" 1.0 (Netsim.Event_heap.next_time h);
  (Netsim.Event_heap.pop_exn h) ();
  check_float "next_time after pop" 2.0 (Netsim.Event_heap.next_time h);
  (Netsim.Event_heap.pop_exn h) ();
  Alcotest.(check (list string)) "pop_exn order" [ "a"; "b" ] (List.rev !fired);
  Alcotest.(check bool) "drained -> nan" true
    (Float.is_nan (Netsim.Event_heap.next_time h));
  Alcotest.(check bool) "pop_exn on empty raises" true
    (try
       let (_ : unit -> unit) = Netsim.Event_heap.pop_exn h in
       false
     with Invalid_argument _ -> true)

let test_heap_next_time_skips_cancelled () =
  let h = Netsim.Event_heap.create () in
  let cancelled = Netsim.Event_heap.add h ~time:1.0 ignore in
  ignore (Netsim.Event_heap.add h ~time:2.0 ignore);
  Netsim.Event_heap.cancel h cancelled;
  check_float "cancelled root skipped" 2.0 (Netsim.Event_heap.next_time h);
  Alcotest.(check int) "one live" 1 (Netsim.Event_heap.size h)

(* --------------------------------------------------------------- Engine *)

let test_engine_time_advances () =
  let e = Netsim.Engine.create () in
  let seen = ref [] in
  ignore (Netsim.Engine.at e ~time:1.5 (fun () -> seen := Netsim.Engine.now e :: !seen));
  ignore (Netsim.Engine.at e ~time:0.5 (fun () -> seen := Netsim.Engine.now e :: !seen));
  Netsim.Engine.run e;
  Alcotest.(check (list (float 1e-9))) "times" [ 0.5; 1.5 ] (List.rev !seen)

let test_engine_until () =
  let e = Netsim.Engine.create () in
  let fired = ref 0 in
  ignore (Netsim.Engine.at e ~time:1.0 (fun () -> incr fired));
  ignore (Netsim.Engine.at e ~time:5.0 (fun () -> incr fired));
  Netsim.Engine.run ~until:2.0 e;
  Alcotest.(check int) "only first fired" 1 !fired;
  check_float "clock at until" 2.0 (Netsim.Engine.now e);
  Netsim.Engine.run e;
  Alcotest.(check int) "second fires on resume" 2 !fired

let test_engine_stop () =
  let e = Netsim.Engine.create () in
  let fired = ref 0 in
  ignore
    (Netsim.Engine.at e ~time:1.0 (fun () ->
         incr fired;
         Netsim.Engine.stop e));
  ignore (Netsim.Engine.at e ~time:2.0 (fun () -> incr fired));
  Netsim.Engine.run e;
  Alcotest.(check int) "stopped after first" 1 !fired

let test_engine_rejects_past () =
  let e = Netsim.Engine.create () in
  ignore (Netsim.Engine.at e ~time:1.0 ignore);
  Netsim.Engine.run e;
  Alcotest.(check bool) "raises on past schedule" true
    (try
       ignore (Netsim.Engine.at e ~time:0.5 ignore);
       false
     with Invalid_argument _ -> true)

let test_engine_nested_schedule () =
  let e = Netsim.Engine.create () in
  let log = ref [] in
  ignore
    (Netsim.Engine.at e ~time:1.0 (fun () ->
         log := "outer" :: !log;
         ignore (Netsim.Engine.after e ~delay:1.0 (fun () -> log := "inner" :: !log))));
  Netsim.Engine.run e;
  Alcotest.(check (list string)) "nested events run" [ "outer"; "inner" ] (List.rev !log);
  check_float "final time" 2.0 (Netsim.Engine.now e)

(* ----------------------------------------------------------- Queue_disc *)

let test_droptail_fifo () =
  let q = Netsim.Queue_disc.droptail ~capacity_pkts:10 in
  let mk i =
    Netsim.Packet.make ~flow:0 ~size:100 ~src:0 ~dst:(Netsim.Packet.Unicast 1)
      ~created:0. (Netsim.Packet.Raw i)
  in
  List.iter (fun i -> ignore (Netsim.Queue_disc.enqueue q (mk i))) [ 1; 2; 3 ];
  let pop () =
    match Netsim.Queue_disc.dequeue q with
    | Some { Netsim.Packet.payload = Netsim.Packet.Raw i; _ } -> i
    | _ -> Alcotest.fail "expected Raw packet"
  in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list int)) "FIFO order" [ 1; 2; 3 ] [ first; second; third ]

let test_droptail_capacity () =
  let q = Netsim.Queue_disc.droptail ~capacity_pkts:2 in
  let mk () =
    Netsim.Packet.make ~flow:0 ~size:100 ~src:0 ~dst:(Netsim.Packet.Unicast 1)
      ~created:0. (Netsim.Packet.Raw 0)
  in
  Alcotest.(check bool) "1st accepted" true (Netsim.Queue_disc.enqueue q (mk ()));
  Alcotest.(check bool) "2nd accepted" true (Netsim.Queue_disc.enqueue q (mk ()));
  Alcotest.(check bool) "3rd dropped" false (Netsim.Queue_disc.enqueue q (mk ()));
  Alcotest.(check int) "drop count" 1 (Netsim.Queue_disc.drops q);
  Alcotest.(check int) "length" 2 (Netsim.Queue_disc.length q)

let test_droptail_byte_accounting () =
  let q = Netsim.Queue_disc.droptail ~capacity_pkts:10 in
  let mk size =
    Netsim.Packet.make ~flow:0 ~size ~src:0 ~dst:(Netsim.Packet.Unicast 1)
      ~created:0. (Netsim.Packet.Raw 0)
  in
  ignore (Netsim.Queue_disc.enqueue q (mk 100));
  ignore (Netsim.Queue_disc.enqueue q (mk 250));
  Alcotest.(check int) "bytes" 350 (Netsim.Queue_disc.byte_length q);
  ignore (Netsim.Queue_disc.dequeue q);
  Alcotest.(check int) "bytes after dequeue" 250 (Netsim.Queue_disc.byte_length q)

let test_red_drops_under_sustained_load () =
  let rng = Stats.Rng.create 1 in
  let q = Netsim.Queue_disc.red ~rng ~capacity_pkts:20 () in
  let mk () =
    Netsim.Packet.make ~flow:0 ~size:100 ~src:0 ~dst:(Netsim.Packet.Unicast 1)
      ~created:0. (Netsim.Packet.Raw 0)
  in
  (* Fill and hold the queue deep; RED's average crosses min_thresh and
     early drops must appear even though the instantaneous queue never
     exceeds capacity. *)
  let early_drops = ref 0 in
  for _ = 1 to 2000 do
    if not (Netsim.Queue_disc.enqueue q (mk ())) then incr early_drops;
    if Netsim.Queue_disc.length q > 12 then ignore (Netsim.Queue_disc.dequeue q)
  done;
  Alcotest.(check bool) "RED produced drops" true (!early_drops > 0)

let test_red_accepts_when_empty () =
  let rng = Stats.Rng.create 2 in
  let q = Netsim.Queue_disc.red ~rng ~capacity_pkts:20 () in
  let mk () =
    Netsim.Packet.make ~flow:0 ~size:100 ~src:0 ~dst:(Netsim.Packet.Unicast 1)
      ~created:0. (Netsim.Packet.Raw 0)
  in
  Alcotest.(check bool) "accepts at low occupancy" true (Netsim.Queue_disc.enqueue q (mk ()))

(* ----------------------------------------------------------- Loss_model *)

let test_loss_none () =
  for _ = 1 to 100 do
    if Netsim.Loss_model.drops_packet Netsim.Loss_model.none then
      Alcotest.fail "none dropped a packet"
  done

let test_loss_bernoulli_rate () =
  let rng = Stats.Rng.create 3 in
  let m = Netsim.Loss_model.bernoulli ~rng ~p:0.2 in
  let drops = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Netsim.Loss_model.drops_packet m then incr drops
  done;
  Alcotest.(check (float 0.01)) "drop rate" 0.2 (float_of_int !drops /. float_of_int n)

let test_loss_gilbert_bursty () =
  let rng = Stats.Rng.create 4 in
  let m =
    Netsim.Loss_model.gilbert_elliott ~rng ~p_good_to_bad:0.01 ~p_bad_to_good:0.2
      ~loss_good:0. ~loss_bad:0.5
  in
  let drops = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Netsim.Loss_model.drops_packet m then incr drops
  done;
  let rate = float_of_int !drops /. float_of_int n in
  (* Stationary bad-state probability = 0.01/0.21; loss = 0.5 * that. *)
  Alcotest.(check (float 0.01)) "long-run loss" (0.5 *. (0.01 /. 0.21)) rate

let test_loss_gilbert_empirical_matches_hint () =
  (* Both states lossy: the empirical drop rate over 100k draws must
     match the stationary average that loss_rate_hint advertises. *)
  let rng = Stats.Rng.create 5 in
  let m =
    Netsim.Loss_model.gilbert_elliott ~rng ~p_good_to_bad:0.02 ~p_bad_to_good:0.1
      ~loss_good:0.01 ~loss_bad:0.5
  in
  let drops = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Netsim.Loss_model.drops_packet m then incr drops
  done;
  Alcotest.(check (float 0.01)) "empirical = hint"
    (Netsim.Loss_model.loss_rate_hint m)
    (float_of_int !drops /. float_of_int n)

let test_loss_gilbert_chain_transitions () =
  (* Deterministic chain: p_gb = p_bg = 1 alternates state every draw,
     starting in good. *)
  let rng = Stats.Rng.create 6 in
  let m =
    Netsim.Loss_model.gilbert_elliott ~rng ~p_good_to_bad:1. ~p_bad_to_good:1.
      ~loss_good:0. ~loss_bad:0.
  in
  Alcotest.(check bool) "starts good" false (Netsim.Loss_model.in_bad m);
  ignore (Netsim.Loss_model.drops_packet m);
  Alcotest.(check bool) "first draw flips to bad" true (Netsim.Loss_model.in_bad m);
  ignore (Netsim.Loss_model.drops_packet m);
  Alcotest.(check bool) "second draw flips back" false (Netsim.Loss_model.in_bad m)

let test_loss_gilbert_hint_degenerate () =
  let rng = Stats.Rng.create 7 in
  (* Frozen chain: both transition probabilities zero — the process never
     leaves its initial good state, so the hint is loss_good. *)
  let frozen =
    Netsim.Loss_model.gilbert_elliott ~rng ~p_good_to_bad:0. ~p_bad_to_good:0.
      ~loss_good:0.05 ~loss_bad:0.9
  in
  Alcotest.(check (float 1e-12)) "frozen chain" 0.05
    (Netsim.Loss_model.loss_rate_hint frozen);
  (* Absorbing bad state: p_bad_to_good = 0 with p_good_to_bad > 0. *)
  let absorbed =
    Netsim.Loss_model.gilbert_elliott ~rng ~p_good_to_bad:1. ~p_bad_to_good:0.
      ~loss_good:0.05 ~loss_bad:0.9
  in
  Alcotest.(check (float 1e-12)) "absorbed in bad" 0.9
    (Netsim.Loss_model.loss_rate_hint absorbed)

let test_loss_describe () =
  let rng = Stats.Rng.create 8 in
  Alcotest.(check string) "none" "none" (Netsim.Loss_model.describe Netsim.Loss_model.none);
  Alcotest.(check string) "bernoulli" "bernoulli(p=0.1)"
    (Netsim.Loss_model.describe (Netsim.Loss_model.bernoulli ~rng ~p:0.1));
  let ge =
    Netsim.Loss_model.gilbert_elliott ~rng ~p_good_to_bad:0.02 ~p_bad_to_good:0.1
      ~loss_good:0. ~loss_bad:0.5
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let s = Netsim.Loss_model.describe ge in
  List.iter
    (fun sub ->
      Alcotest.(check bool)
        (Printf.sprintf "%S mentions %S" s sub)
        true (contains s sub))
    [ "gilbert-elliott"; "p_gb=0.02"; "stationary=" ];
  let d = Netsim.Loss_model.describe (Netsim.Loss_model.dynamic ge) in
  Alcotest.(check bool) "dynamic wraps inner" true
    (String.length d > 8 && String.sub d 0 8 = "dynamic(")

let test_loss_dynamic_switch () =
  let rng = Stats.Rng.create 9 in
  let d = Netsim.Loss_model.dynamic Netsim.Loss_model.none in
  for _ = 1 to 50 do
    if Netsim.Loss_model.drops_packet d then Alcotest.fail "none must not drop"
  done;
  Netsim.Loss_model.set_dynamic d (Netsim.Loss_model.bernoulli ~rng ~p:1.);
  Alcotest.(check (float 1e-12)) "hint follows inner" 1.
    (Netsim.Loss_model.loss_rate_hint d);
  Alcotest.(check bool) "drops after switch" true (Netsim.Loss_model.drops_packet d);
  Alcotest.check_raises "non-dynamic target rejected"
    (Invalid_argument "Loss_model.set_dynamic: not a dynamic model") (fun () ->
      Netsim.Loss_model.set_dynamic Netsim.Loss_model.none Netsim.Loss_model.none);
  Alcotest.check_raises "nested dynamic rejected"
    (Invalid_argument "Loss_model.set_dynamic: nested dynamic model") (fun () ->
      Netsim.Loss_model.set_dynamic d (Netsim.Loss_model.dynamic Netsim.Loss_model.none))

(* ------------------------------------------------------ Link + Topology *)

let two_node_topo ?loss_ab ?(bandwidth_bps = 1e6) ?(delay_s = 0.01) () =
  let e = Netsim.Engine.create () in
  let topo = Netsim.Topology.create e in
  let a = Netsim.Topology.add_node topo in
  let b = Netsim.Topology.add_node topo in
  let _ =
    Netsim.Topology.connect topo ?loss_ab ~bandwidth_bps ~delay_s a b
  in
  (e, topo, a, b)

let test_link_ttl_drop_counted () =
  (* A packet that exceeded the TTL must be dropped *and* accounted:
     packets_lost, the registry counter, and the trace all see it. *)
  let sink = Obs.Sink.create () in
  let e = Netsim.Engine.create ~obs:sink () in
  let topo = Netsim.Topology.create e in
  let a = Netsim.Topology.add_node topo in
  let b = Netsim.Topology.add_node topo in
  let ab, _ = Netsim.Topology.connect topo ~bandwidth_bps:1e6 ~delay_s:0.01 a b in
  let tr = Netsim.Trace.create () in
  Netsim.Trace.attach tr ab;
  let delivered = ref 0 in
  Netsim.Node.attach b (fun _ -> incr delivered);
  let p =
    Netsim.Packet.make ~flow:1 ~size:100 ~src:(Netsim.Node.id a)
      ~dst:(Netsim.Packet.Unicast (Netsim.Node.id b))
      ~created:0. (Netsim.Packet.Raw 0)
  in
  Netsim.Packet.set_hops p Netsim.Packet.ttl_limit;
  (* Link.send bumps hops once more, pushing it over the limit. *)
  Netsim.Link.send ab p;
  Netsim.Engine.run e;
  Alcotest.(check int) "not delivered" 0 !delivered;
  Alcotest.(check int) "counted as lost" 1 (Netsim.Link.packets_lost ab);
  Alcotest.(check int) "registry counter" 1
    (Obs.Metrics.sum_counters sink.Obs.Sink.metrics "netsim_link_drop_ttl_total");
  Alcotest.(check int) "traced" 1
    (Netsim.Trace.count tr ~kind:Netsim.Trace.Drop_ttl)

let test_link_delivery_latency () =
  let e, topo, a, b = two_node_topo () in
  let arrival = ref nan in
  Netsim.Node.attach b (fun _ -> arrival := Netsim.Engine.now e);
  let p =
    Netsim.Packet.make ~flow:1 ~size:1000 ~src:(Netsim.Node.id a)
      ~dst:(Netsim.Packet.Unicast (Netsim.Node.id b))
      ~created:0. (Netsim.Packet.Raw 0)
  in
  Netsim.Topology.inject topo p;
  Netsim.Engine.run e;
  (* tx = 1000*8/1e6 = 8 ms; prop = 10 ms. *)
  check_float "latency = tx + prop" 0.018 !arrival

let test_link_serialization () =
  (* Two packets injected back-to-back: second arrives one tx-time later. *)
  let e, topo, a, b = two_node_topo () in
  let arrivals = ref [] in
  Netsim.Node.attach b (fun _ -> arrivals := Netsim.Engine.now e :: !arrivals);
  let mk () =
    Netsim.Packet.make ~flow:1 ~size:1000 ~src:(Netsim.Node.id a)
      ~dst:(Netsim.Packet.Unicast (Netsim.Node.id b))
      ~created:0. (Netsim.Packet.Raw 0)
  in
  Netsim.Topology.inject topo (mk ());
  Netsim.Topology.inject topo (mk ());
  Netsim.Engine.run e;
  match List.rev !arrivals with
  | [ t1; t2 ] ->
      check_float "first" 0.018 t1;
      check_float "second spaced by tx time" 0.026 t2
  | l -> Alcotest.failf "expected 2 arrivals, got %d" (List.length l)

let test_link_loss_applied () =
  let rng = Stats.Rng.create 9 in
  let e, topo, a, b =
    two_node_topo ~loss_ab:(Netsim.Loss_model.bernoulli ~rng ~p:1.0) ()
  in
  let got = ref 0 in
  Netsim.Node.attach b (fun _ -> incr got);
  let p =
    Netsim.Packet.make ~flow:1 ~size:1000 ~src:(Netsim.Node.id a)
      ~dst:(Netsim.Packet.Unicast (Netsim.Node.id b))
      ~created:0. (Netsim.Packet.Raw 0)
  in
  Netsim.Topology.inject topo p;
  Netsim.Engine.run e;
  Alcotest.(check int) "all lost" 0 !got;
  let link = Option.get (Netsim.Topology.link_between topo a b) in
  Alcotest.(check int) "loss counted" 1 (Netsim.Link.packets_lost link)

let chain_topo n =
  (* 0 - 1 - 2 - ... - (n-1) *)
  let e = Netsim.Engine.create () in
  let topo = Netsim.Topology.create e in
  let nodes = Netsim.Topology.add_nodes topo n in
  for i = 0 to n - 2 do
    ignore
      (Netsim.Topology.connect topo ~bandwidth_bps:1e7 ~delay_s:0.001 nodes.(i)
         nodes.(i + 1))
  done;
  (e, topo, nodes)

let test_unicast_multihop () =
  let e, topo, nodes = chain_topo 5 in
  let got = ref 0 in
  Netsim.Node.attach nodes.(4) (fun _ -> incr got);
  let p =
    Netsim.Packet.make ~flow:1 ~size:500 ~src:0 ~dst:(Netsim.Packet.Unicast 4)
      ~created:0. (Netsim.Packet.Raw 0)
  in
  Netsim.Topology.inject topo p;
  Netsim.Engine.run e;
  Alcotest.(check int) "delivered over 4 hops" 1 !got

let test_no_delivery_at_intermediate () =
  let e, topo, nodes = chain_topo 3 in
  let mid = ref 0 and final = ref 0 in
  Netsim.Node.attach nodes.(1) (fun _ -> incr mid);
  Netsim.Node.attach nodes.(2) (fun _ -> incr final);
  let p =
    Netsim.Packet.make ~flow:1 ~size:500 ~src:0 ~dst:(Netsim.Packet.Unicast 2)
      ~created:0. (Netsim.Packet.Raw 0)
  in
  Netsim.Topology.inject topo p;
  Netsim.Engine.run e;
  Alcotest.(check int) "not delivered at router" 0 !mid;
  Alcotest.(check int) "delivered at destination" 1 !final

let test_path_and_hops () =
  let _, topo, nodes = chain_topo 4 in
  (match Netsim.Topology.path topo ~src:nodes.(0) ~dst:nodes.(3) with
  | Some p ->
      Alcotest.(check (list int)) "path node ids" [ 0; 1; 2; 3 ]
        (List.map Netsim.Node.id p)
  | None -> Alcotest.fail "expected a path");
  Alcotest.(check (option int)) "hops" (Some 3)
    (Netsim.Topology.hop_count topo ~src:nodes.(0) ~dst:nodes.(3))

let star_topo n_leaves =
  let e = Netsim.Engine.create () in
  let topo = Netsim.Topology.create e in
  let hub = Netsim.Topology.add_node topo in
  let leaves = Netsim.Topology.add_nodes topo n_leaves in
  Array.iter
    (fun leaf ->
      ignore (Netsim.Topology.connect topo ~bandwidth_bps:1e7 ~delay_s:0.001 hub leaf))
    leaves;
  (e, topo, hub, leaves)

let test_multicast_fanout () =
  let e, topo, _hub, leaves = star_topo 5 in
  let group = 1 in
  let sender = leaves.(0) in
  let received = Array.make 5 0 in
  Array.iteri
    (fun i leaf ->
      Netsim.Topology.join topo ~group leaf;
      Netsim.Node.attach leaf (fun _ -> received.(i) <- received.(i) + 1))
    leaves;
  let p =
    Netsim.Packet.make ~flow:1 ~size:500 ~src:(Netsim.Node.id sender)
      ~dst:(Netsim.Packet.Multicast group) ~created:0. (Netsim.Packet.Raw 0)
  in
  Netsim.Topology.inject topo p;
  Netsim.Engine.run e;
  Alcotest.(check int) "sender does not hear itself" 0 received.(0);
  for i = 1 to 4 do
    Alcotest.(check int) (Printf.sprintf "leaf %d got one copy" i) 1 received.(i)
  done

let test_multicast_shared_link_single_copy () =
  (* sender - hub - {a, b}: the sender->hub link must carry ONE copy. *)
  let e, topo, hub, leaves = star_topo 3 in
  let group = 7 in
  let sender = leaves.(0) in
  Netsim.Topology.join topo ~group leaves.(1);
  Netsim.Topology.join topo ~group leaves.(2);
  let p =
    Netsim.Packet.make ~flow:1 ~size:500 ~src:(Netsim.Node.id sender)
      ~dst:(Netsim.Packet.Multicast group) ~created:0. (Netsim.Packet.Raw 0)
  in
  Netsim.Topology.inject topo p;
  Netsim.Engine.run e;
  let uplink = Option.get (Netsim.Topology.link_between topo sender hub) in
  Alcotest.(check int) "one copy on shared uplink" 1 (Netsim.Link.packets_sent uplink);
  let down1 = Option.get (Netsim.Topology.link_between topo hub leaves.(1)) in
  let down2 = Option.get (Netsim.Topology.link_between topo hub leaves.(2)) in
  Alcotest.(check int) "copy on branch 1" 1 (Netsim.Link.packets_sent down1);
  Alcotest.(check int) "copy on branch 2" 1 (Netsim.Link.packets_sent down2)

let test_multicast_join_leave () =
  let e, topo, _hub, leaves = star_topo 3 in
  let group = 2 in
  let sender = leaves.(0) in
  let got = ref 0 in
  Netsim.Topology.join topo ~group leaves.(1);
  Netsim.Node.attach leaves.(1) (fun _ -> incr got);
  let send () =
    let p =
      Netsim.Packet.make ~flow:1 ~size:500 ~src:(Netsim.Node.id sender)
        ~dst:(Netsim.Packet.Multicast group) ~created:(Netsim.Engine.now e)
        (Netsim.Packet.Raw 0)
    in
    Netsim.Topology.inject topo p
  in
  send ();
  Netsim.Engine.run e;
  Alcotest.(check int) "received while joined" 1 !got;
  Netsim.Topology.leave topo ~group leaves.(1);
  send ();
  Netsim.Engine.run e;
  Alcotest.(check int) "not received after leave" 1 !got

let test_multicast_membership_api () =
  let _, topo, _hub, leaves = star_topo 3 in
  Netsim.Topology.join topo ~group:5 leaves.(0);
  Netsim.Topology.join topo ~group:5 leaves.(2);
  Netsim.Topology.join topo ~group:5 leaves.(2);
  Alcotest.(check bool) "member" true (Netsim.Topology.is_member topo ~group:5 leaves.(0));
  Alcotest.(check bool) "non-member" false
    (Netsim.Topology.is_member topo ~group:5 leaves.(1));
  Alcotest.(check int) "join idempotent" 2
    (List.length (Netsim.Topology.members topo ~group:5))

(* -------------------------------------------------------------- Monitor *)

let test_monitor_accounting () =
  let e, topo, a, b = two_node_topo () in
  let mon = Netsim.Monitor.create e in
  Netsim.Monitor.watch_node mon b;
  let mk flow =
    Netsim.Packet.make ~flow ~size:1000 ~src:(Netsim.Node.id a)
      ~dst:(Netsim.Packet.Unicast (Netsim.Node.id b))
      ~created:0. (Netsim.Packet.Raw 0)
  in
  Netsim.Topology.inject topo (mk 1);
  Netsim.Topology.inject topo (mk 1);
  Netsim.Topology.inject topo (mk 2);
  Netsim.Engine.run e;
  Alcotest.(check int) "flow 1 bytes" 2000 (Netsim.Monitor.bytes mon ~flow:1);
  Alcotest.(check int) "flow 2 bytes" 1000 (Netsim.Monitor.bytes mon ~flow:2);
  Alcotest.(check int) "flow 1 packets" 2 (Netsim.Monitor.packets mon ~flow:1);
  Alcotest.(check (list int)) "flows" [ 1; 2 ] (Netsim.Monitor.flows mon)

(* ----------------------------------------------------------- Properties *)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 200) (float_bound_exclusive 1000.))
    (fun times ->
      let h = Netsim.Event_heap.create () in
      List.iter (fun t -> ignore (Netsim.Event_heap.add h ~time:t ignore)) times;
      let rec drain prev =
        match Netsim.Event_heap.pop h with
        | None -> true
        | Some (t, _) -> t >= prev && drain t
      in
      drain neg_infinity)

let prop_droptail_never_exceeds =
  QCheck.Test.make ~name:"droptail length never exceeds capacity" ~count:100
    QCheck.(pair (int_range 1 20) (list_of_size Gen.(int_range 0 100) bool))
    (fun (cap, ops) ->
      let q = Netsim.Queue_disc.droptail ~capacity_pkts:cap in
      let mk () =
        Netsim.Packet.make ~flow:0 ~size:10 ~src:0 ~dst:(Netsim.Packet.Unicast 1)
          ~created:0. (Netsim.Packet.Raw 0)
      in
      List.for_all
        (fun enq ->
          if enq then ignore (Netsim.Queue_disc.enqueue q (mk ()))
          else ignore (Netsim.Queue_disc.dequeue q);
          Netsim.Queue_disc.length q <= cap)
        ops)

let test_link_down_up () =
  let e, topo, a, b = two_node_topo () in
  let got = ref 0 in
  Netsim.Node.attach b (fun _ -> incr got);
  let link = Option.get (Netsim.Topology.link_between topo a b) in
  let send () =
    Netsim.Topology.inject topo
      (Netsim.Packet.make ~flow:1 ~size:100 ~src:(Netsim.Node.id a)
         ~dst:(Netsim.Packet.Unicast (Netsim.Node.id b))
         ~created:(Netsim.Engine.now e) (Netsim.Packet.Raw 0))
  in
  send ();
  Netsim.Engine.run e;
  Alcotest.(check int) "delivered while up" 1 !got;
  Netsim.Link.set_up link false;
  Alcotest.(check bool) "reports down" false (Netsim.Link.is_up link);
  send ();
  Netsim.Engine.run e;
  Alcotest.(check int) "blackholed while down" 1 !got;
  Alcotest.(check bool) "counted as lost" true (Netsim.Link.packets_lost link >= 1);
  Netsim.Link.set_up link true;
  send ();
  Netsim.Engine.run e;
  Alcotest.(check int) "resumes after up" 2 !got

let test_droptail_bytes () =
  let q = Netsim.Queue_disc.droptail_bytes ~capacity_bytes:2500 in
  let mk size =
    Netsim.Packet.make ~flow:0 ~size ~src:0 ~dst:(Netsim.Packet.Unicast 1)
      ~created:0. (Netsim.Packet.Raw 0)
  in
  Alcotest.(check bool) "1000 fits" true (Netsim.Queue_disc.enqueue q (mk 1000));
  Alcotest.(check bool) "another 1000 fits" true (Netsim.Queue_disc.enqueue q (mk 1000));
  Alcotest.(check bool) "third 1000 rejected" false (Netsim.Queue_disc.enqueue q (mk 1000));
  Alcotest.(check bool) "small packet still fits" true (Netsim.Queue_disc.enqueue q (mk 400));
  Alcotest.(check int) "byte accounting" 2400 (Netsim.Queue_disc.byte_length q)

(* ------------------------------------------------------------- Topo_gen *)

let test_topo_gen_chain () =
  let e = Netsim.Engine.create () in
  let topo = Netsim.Topology.create e in
  let nodes = Netsim.Topo_gen.chain topo ~n:5 () in
  Alcotest.(check int) "5 nodes" 5 (Array.length nodes);
  Alcotest.(check (option int)) "end-to-end hops" (Some 4)
    (Netsim.Topology.hop_count topo ~src:nodes.(0) ~dst:nodes.(4))

let test_topo_gen_star () =
  let e = Netsim.Engine.create () in
  let topo = Netsim.Topology.create e in
  let hub, leaves = Netsim.Topo_gen.star topo ~leaves:6 () in
  Alcotest.(check int) "6 leaves" 6 (Array.length leaves);
  Array.iter
    (fun leaf ->
      Alcotest.(check (option int)) "leaf adjacent to hub" (Some 1)
        (Netsim.Topology.hop_count topo ~src:hub ~dst:leaf))
    leaves

let test_topo_gen_binary_tree () =
  let e = Netsim.Engine.create () in
  let topo = Netsim.Topology.create e in
  let root, leaves = Netsim.Topo_gen.binary_tree topo ~depth:3 () in
  Alcotest.(check int) "8 leaves" 8 (Array.length leaves);
  Array.iter
    (fun leaf ->
      Alcotest.(check (option int)) "leaf at depth 3" (Some 3)
        (Netsim.Topology.hop_count topo ~src:root ~dst:leaf))
    leaves

let test_topo_gen_random_tree_connected () =
  let e = Netsim.Engine.create () in
  let topo = Netsim.Topology.create e in
  let rng = Stats.Rng.create 9 in
  let nodes = Netsim.Topo_gen.random_tree topo rng ~n:40 ~max_children:3 () in
  (* A tree on n nodes: all reachable from the root. *)
  Array.iter
    (fun nd ->
      match Netsim.Topology.hop_count topo ~src:nodes.(0) ~dst:nd with
      | Some _ -> ()
      | None -> Alcotest.fail "node unreachable from root")
    nodes

let test_topo_gen_transit_stub_shape () =
  let e = Netsim.Engine.create () in
  let topo = Netsim.Topology.create e in
  let rng = Stats.Rng.create 10 in
  let ts =
    Netsim.Topo_gen.transit_stub topo rng ~transits:3 ~stubs_per_transit:2
      ~hosts_per_stub:4 ()
  in
  Alcotest.(check int) "transits" 3 (Array.length ts.Netsim.Topo_gen.transits);
  Alcotest.(check int) "stubs" 6 (Array.length ts.Netsim.Topo_gen.stubs);
  Alcotest.(check int) "hosts" 24 (Array.length ts.Netsim.Topo_gen.hosts);
  (* Any host can reach any other host. *)
  let a = ts.Netsim.Topo_gen.hosts.(0) in
  let b = ts.Netsim.Topo_gen.hosts.(23) in
  Alcotest.(check bool) "hosts mutually reachable" true
    (Netsim.Topology.hop_count topo ~src:a ~dst:b <> None)

(* -------------------------------------------------------- Monitor delay *)

let test_monitor_delays () =
  let e, topo, a, b = two_node_topo () in
  let mon = Netsim.Monitor.create e in
  Netsim.Monitor.watch_node mon b;
  let mk () =
    Netsim.Packet.make ~flow:3 ~size:1000 ~src:(Netsim.Node.id a)
      ~dst:(Netsim.Packet.Unicast (Netsim.Node.id b))
      ~created:(Netsim.Engine.now e) (Netsim.Packet.Raw 0)
  in
  Netsim.Topology.inject topo (mk ());
  Netsim.Engine.run e;
  let d = Netsim.Monitor.delays mon ~flow:3 in
  Alcotest.(check int) "one delay sample" 1 (Array.length d);
  (* tx 8 ms + prop 10 ms *)
  check_float "delay = tx + prop" 0.018 d.(0);
  match Netsim.Monitor.delay_summary mon ~flow:3 with
  | Some s -> check_float "summary mean" 0.018 s.Stats.Descriptive.mean
  | None -> Alcotest.fail "expected a summary"

let test_monitor_delay_ring_bound () =
  let e, topo, a, b = two_node_topo ~bandwidth_bps:1e9 () in
  let mon = Netsim.Monitor.create e in
  Netsim.Monitor.watch_node mon b;
  for i = 1 to 600 do
    ignore
      (Netsim.Engine.at e
         ~time:(0.001 *. float_of_int i)
         (fun () ->
           let p =
             Netsim.Packet.make ~flow:3 ~size:100 ~src:(Netsim.Node.id a)
               ~dst:(Netsim.Packet.Unicast (Netsim.Node.id b))
               ~created:(Netsim.Engine.now e) (Netsim.Packet.Raw 0)
           in
           Netsim.Topology.inject topo p))
  done;
  Netsim.Engine.run e;
  Alcotest.(check int) "packets counted" 600 (Netsim.Monitor.packets mon ~flow:3);
  Alcotest.(check bool) "delays retained" true
    (Array.length (Netsim.Monitor.delays mon ~flow:3) = 600)

(* Random connected graphs: build n nodes, a random spanning tree plus
   extra random edges, then check routing and multicast invariants. *)
let random_topology rng ~n ~extra =
  let e = Netsim.Engine.create ~seed:(Stats.Rng.int rng 1_000_000) () in
  let topo = Netsim.Topology.create e in
  let nodes = Netsim.Topology.add_nodes topo n in
  for i = 1 to n - 1 do
    let parent = Stats.Rng.int rng i in
    ignore
      (Netsim.Topology.connect topo ~bandwidth_bps:1e8 ~delay_s:0.001
         nodes.(parent) nodes.(i))
  done;
  for _ = 1 to extra do
    let a = Stats.Rng.int rng n and b = Stats.Rng.int rng n in
    if a <> b && Netsim.Topology.link_between topo nodes.(a) nodes.(b) = None
    then
      ignore
        (Netsim.Topology.connect topo ~bandwidth_bps:1e8 ~delay_s:0.001
           nodes.(a) nodes.(b))
  done;
  (e, topo, nodes)

let prop_random_graph_all_reachable =
  QCheck.Test.make ~name:"random connected graph: every pair routable" ~count:40
    QCheck.(pair (int_range 2 25) (int_range 0 15))
    (fun (n, extra) ->
      let rng = Stats.Rng.create ((n * 1000) + extra) in
      let _, topo, nodes = random_topology rng ~n ~extra in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          match Netsim.Topology.hop_count topo ~src:nodes.(i) ~dst:nodes.(j) with
          | Some h -> if (i = j) <> (h = 0) then ok := false
          | None -> ok := false
        done
      done;
      !ok)

let prop_random_graph_unicast_delivery =
  QCheck.Test.make ~name:"random graph: unicast packet arrives exactly once"
    ~count:40
    QCheck.(triple (int_range 2 20) (int_range 0 10) (int_range 0 1_000_000))
    (fun (n, extra, seed) ->
      let rng = Stats.Rng.create seed in
      let e, topo, nodes = random_topology rng ~n ~extra in
      let src = Stats.Rng.int rng n in
      let dst = (src + 1 + Stats.Rng.int rng (n - 1)) mod n in
      let count = ref 0 in
      Netsim.Node.attach nodes.(dst) (fun _ -> incr count);
      let p =
        Netsim.Packet.make ~flow:1 ~size:100 ~src:(Netsim.Node.id nodes.(src))
          ~dst:(Netsim.Packet.Unicast (Netsim.Node.id nodes.(dst)))
          ~created:0. (Netsim.Packet.Raw 0)
      in
      Netsim.Topology.inject topo p;
      Netsim.Engine.run e;
      (src = dst && !count = 0) || !count = 1)

let prop_random_graph_multicast_exactly_once =
  QCheck.Test.make
    ~name:"random graph: multicast reaches every member exactly once" ~count:40
    QCheck.(triple (int_range 3 20) (int_range 0 10) (int_range 0 1_000_000))
    (fun (n, extra, seed) ->
      let rng = Stats.Rng.create seed in
      let e, topo, nodes = random_topology rng ~n ~extra in
      let src = Stats.Rng.int rng n in
      let counts = Array.make n 0 in
      let members =
        List.filter (fun i -> i <> src && Stats.Rng.bool rng) (List.init n Fun.id)
      in
      List.iter
        (fun i ->
          Netsim.Topology.join topo ~group:9 nodes.(i);
          Netsim.Node.attach nodes.(i) (fun _ -> counts.(i) <- counts.(i) + 1))
        members;
      let p =
        Netsim.Packet.make ~flow:1 ~size:100 ~src:(Netsim.Node.id nodes.(src))
          ~dst:(Netsim.Packet.Multicast 9) ~created:0. (Netsim.Packet.Raw 0)
      in
      Netsim.Topology.inject topo p;
      Netsim.Engine.run e;
      List.for_all (fun i -> counts.(i) = 1) members
      && Array.for_all (fun c -> c <= 1) counts)

(* --------------------------------------------- Packet-pool lifecycle *)

(* (flow, size, src, dst) for a random packet; size must be positive. *)
let packet_fields =
  QCheck.(quad (int_range 0 1000) (int_range 1 9000) small_nat (pair bool small_nat))

let mk_dst (mc, n) =
  if mc then Netsim.Packet.Multicast n else Netsim.Packet.Unicast n

let prop_pool_recycle_no_stale =
  QCheck.Test.make ~name:"recycled arena slot is fully re-initialized" ~count:200
    QCheck.(pair packet_fields packet_fields)
    (fun (fa, fb) ->
      let pl = Netsim.Packet.Pool.domain () in
      QCheck.assume (Netsim.Packet.Pool.free pl > 0);
      let alloc (flow, size, src, d) tag =
        Netsim.Packet.alloc ~flow ~size ~src ~dst:(mk_dst d)
          ~created:(float_of_int tag) (Netsim.Packet.Raw tag)
      in
      let a = alloc fa 1 in
      let uid_a = a.Netsim.Packet.uid in
      Netsim.Packet.set_hops a 5;
      Netsim.Packet.release a;
      let b = alloc fb 2 in
      let flow, size, src, d = fb in
      let ok =
        (* LIFO freelist: the released record itself is recycled... *)
        b == a
        (* ...and nothing of its previous life survives. *)
        && b.Netsim.Packet.uid <> uid_a
        && b.Netsim.Packet.flow = flow
        && b.Netsim.Packet.size = size
        && b.Netsim.Packet.src = src
        && b.Netsim.Packet.dst = mk_dst d
        && b.Netsim.Packet.created = 2.
        && b.Netsim.Packet.hops = 0
        && b.Netsim.Packet.payload = Netsim.Packet.Raw 2
        && Netsim.Packet.is_live b
      in
      Netsim.Packet.release b;
      ok)

let prop_pool_exhaustion_falls_back =
  QCheck.Test.make ~name:"arena exhaustion falls back to heap records" ~count:20
    QCheck.(int_range 1 50)
    (fun extra ->
      let pl = Netsim.Packet.Pool.domain () in
      let alloc tag =
        Netsim.Packet.alloc ~flow:7 ~size:100 ~src:1
          ~dst:(Netsim.Packet.Unicast 2) ~created:0. (Netsim.Packet.Raw tag)
      in
      let drained = ref [] in
      Fun.protect
        ~finally:(fun () -> List.iter Netsim.Packet.release !drained)
        (fun () ->
          while Netsim.Packet.Pool.free pl > 0 do
            drained := alloc 0 :: !drained
          done;
          let before = Netsim.Packet.Pool.exhausted pl in
          let fallbacks = List.init extra alloc in
          let after = Netsim.Packet.Pool.exhausted pl in
          after - before = extra
          && List.for_all
               (fun p ->
                 (not p.Netsim.Packet.pooled)
                 && Netsim.Packet.is_live p
                 && p.Netsim.Packet.flow = 7
                 &&
                 (* release on a heap fallback is a no-op: the record
                    stays live and never enters the arena *)
                 (Netsim.Packet.release p;
                  Netsim.Packet.is_live p && Netsim.Packet.Pool.free pl = 0))
               fallbacks))

let prop_pool_uaf_guard_fires =
  QCheck.Test.make ~name:"guard trips on a released arena packet" ~count:100
    packet_fields
    (fun (flow, size, src, d) ->
      let pl = Netsim.Packet.Pool.domain () in
      QCheck.assume (Netsim.Packet.Pool.free pl > 0);
      let p =
        Netsim.Packet.alloc ~flow ~size ~src ~dst:(mk_dst d) ~created:0.
          (Netsim.Packet.Raw 0)
      in
      Netsim.Packet.guard "live" p;
      (* a live packet passes *)
      Netsim.Packet.release p;
      (not (Netsim.Packet.is_live p))
      &&
      match Netsim.Packet.guard "released" p with
      | () -> false
      | exception Netsim.Packet.Use_after_free _ -> true)

let test_pool_debug_double_release () =
  let pl = Netsim.Packet.Pool.domain () in
  let was = Netsim.Packet.Pool.debug pl in
  Fun.protect
    ~finally:(fun () -> Netsim.Packet.Pool.set_debug pl was)
    (fun () ->
      Netsim.Packet.Pool.set_debug pl true;
      let p =
        Netsim.Packet.alloc ~flow:1 ~size:100 ~src:0
          ~dst:(Netsim.Packet.Unicast 1) ~created:0. (Netsim.Packet.Raw 0)
      in
      Alcotest.(check bool) "drawn from the arena" true p.Netsim.Packet.pooled;
      let uid = p.Netsim.Packet.uid in
      Netsim.Packet.release p;
      (* Debug mode poisons the scalars so a stale reader sees values no
         real packet carries. *)
      Alcotest.(check int) "size poisoned" min_int p.Netsim.Packet.size;
      Alcotest.(check int) "flow poisoned" min_int p.Netsim.Packet.flow;
      Alcotest.(check int) "hops poisoned" min_int p.Netsim.Packet.hops;
      Alcotest.check_raises "double release raises"
        (Netsim.Packet.Use_after_free
           (Printf.sprintf "double release of packet #%d" uid))
        (fun () -> Netsim.Packet.release p))

let () =
  Alcotest.run "netsim"
    [
      ( "event_heap",
        [
          Alcotest.test_case "time order" `Quick test_heap_order;
          Alcotest.test_case "FIFO on ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_heap_cancel;
          Alcotest.test_case "cancel idempotent" `Quick test_heap_cancel_idempotent;
          Alcotest.test_case "growth + order" `Quick test_heap_grows;
          Alcotest.test_case "allocation-free fast path" `Quick test_heap_fast_path;
          Alcotest.test_case "next_time skips cancelled" `Quick
            test_heap_next_time_skips_cancelled;
        ] );
      ( "engine",
        [
          Alcotest.test_case "time advances" `Quick test_engine_time_advances;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "stop" `Quick test_engine_stop;
          Alcotest.test_case "rejects past" `Quick test_engine_rejects_past;
          Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
        ] );
      ( "queue_disc",
        [
          Alcotest.test_case "droptail FIFO" `Quick test_droptail_fifo;
          Alcotest.test_case "droptail capacity" `Quick test_droptail_capacity;
          Alcotest.test_case "byte accounting" `Quick test_droptail_byte_accounting;
          Alcotest.test_case "RED early drops" `Quick test_red_drops_under_sustained_load;
          Alcotest.test_case "RED accepts when empty" `Quick test_red_accepts_when_empty;
          Alcotest.test_case "byte-mode droptail" `Quick test_droptail_bytes;
        ] );
      ( "loss_model",
        [
          Alcotest.test_case "none" `Quick test_loss_none;
          Alcotest.test_case "bernoulli rate" `Slow test_loss_bernoulli_rate;
          Alcotest.test_case "gilbert-elliott" `Slow test_loss_gilbert_bursty;
          Alcotest.test_case "gilbert empirical = hint" `Slow
            test_loss_gilbert_empirical_matches_hint;
          Alcotest.test_case "gilbert chain transitions" `Quick
            test_loss_gilbert_chain_transitions;
          Alcotest.test_case "gilbert degenerate hints" `Quick
            test_loss_gilbert_hint_degenerate;
          Alcotest.test_case "describe" `Quick test_loss_describe;
          Alcotest.test_case "dynamic switch" `Quick test_loss_dynamic_switch;
        ] );
      ( "link",
        [
          Alcotest.test_case "delivery latency" `Quick test_link_delivery_latency;
          Alcotest.test_case "serialization" `Quick test_link_serialization;
          Alcotest.test_case "stochastic loss" `Quick test_link_loss_applied;
          Alcotest.test_case "down/up" `Quick test_link_down_up;
          Alcotest.test_case "TTL drop counted" `Quick test_link_ttl_drop_counted;
        ] );
      ( "topology",
        [
          Alcotest.test_case "unicast multihop" `Quick test_unicast_multihop;
          Alcotest.test_case "router transparency" `Quick test_no_delivery_at_intermediate;
          Alcotest.test_case "path/hops" `Quick test_path_and_hops;
          Alcotest.test_case "multicast fanout" `Quick test_multicast_fanout;
          Alcotest.test_case "shared-link single copy" `Quick
            test_multicast_shared_link_single_copy;
          Alcotest.test_case "join/leave" `Quick test_multicast_join_leave;
          Alcotest.test_case "membership api" `Quick test_multicast_membership_api;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "per-flow accounting" `Quick test_monitor_accounting;
          Alcotest.test_case "delays" `Quick test_monitor_delays;
          Alcotest.test_case "delay ring bound" `Quick test_monitor_delay_ring_bound;
        ] );
      ( "topo_gen",
        [
          Alcotest.test_case "chain" `Quick test_topo_gen_chain;
          Alcotest.test_case "star" `Quick test_topo_gen_star;
          Alcotest.test_case "binary tree" `Quick test_topo_gen_binary_tree;
          Alcotest.test_case "random tree connected" `Quick test_topo_gen_random_tree_connected;
          Alcotest.test_case "transit-stub shape" `Quick test_topo_gen_transit_stub_shape;
        ] );
      ( "pool",
        Alcotest.test_case "debug poison + double release" `Quick
          test_pool_debug_double_release
        :: List.map QCheck_alcotest.to_alcotest
             [
               prop_pool_recycle_no_stale; prop_pool_exhaustion_falls_back;
               prop_pool_uaf_guard_fires;
             ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_heap_sorted; prop_droptail_never_exceeds;
            prop_random_graph_all_reachable; prop_random_graph_unicast_delivery;
            prop_random_graph_multicast_exactly_once;
          ] );
    ]
