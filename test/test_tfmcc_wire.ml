(* Wire-level unit tests of the TFMCC sender and receiver: hand-built
   packets are injected through a minimal topology so each §2 rule can be
   checked deterministically (no competing traffic, no loss randomness
   unless constructed). *)

let cfg = Tfmcc_core.Config.default

(* sender -- rx, plus a spare node for forged reports. *)
type rig = {
  engine : Netsim.Engine.t;
  topo : Netsim.Topology.t;
  sender_node : Netsim.Node.t;
  rx_node : Netsim.Node.t;
  rx2_node : Netsim.Node.t;
}

let make_rig ?(bandwidth_bps = 1e7) () =
  let engine = Netsim.Engine.create ~seed:71 () in
  let topo = Netsim.Topology.create engine in
  let sender_node = Netsim.Topology.add_node topo in
  let rx_node = Netsim.Topology.add_node topo in
  let rx2_node = Netsim.Topology.add_node topo in
  ignore (Netsim.Topology.connect topo ~bandwidth_bps ~delay_s:0.01 sender_node rx_node);
  ignore (Netsim.Topology.connect topo ~bandwidth_bps ~delay_s:0.01 sender_node rx2_node);
  { engine; topo; sender_node; rx_node; rx2_node }

(* Forge a receiver report and deliver it directly to the sender node. *)
let forge_report rig ~rx_id ?(rate = 50_000.) ?(have_rtt = true) ?(rtt = 0.05)
    ?(p = 0.01) ?(x_recv = 50_000.) ?(round = 1) ?(has_loss = true)
    ?(leaving = false) () =
  let now = Netsim.Engine.now rig.engine in
  let payload =
    Netsim_env.Report
      {
        session = 1;
        rx_id;
        ts = now;
        echo_ts = now -. 0.02;
        echo_delay = 0.;
        rate;
        have_rtt;
        rtt;
        p;
        x_recv;
        round;
        has_loss;
        leaving;
      }
  in
  let p =
    Netsim.Packet.make ~flow:(-1) ~size:40 ~src:rx_id
      ~dst:(Netsim.Packet.Unicast (Netsim.Node.id rig.sender_node))
      ~created:now payload
  in
  Netsim.Node.deliver_local rig.sender_node p

let run_for rig dt =
  Netsim.Engine.run ~until:(Netsim.Engine.now rig.engine +. dt) rig.engine

(* -------------------------------------------------------------- Sender *)

let started_sender ?initial_rate rig =
  let snd =
    Netsim_env.Sender.create rig.topo ~cfg ~session:1 ~node:rig.sender_node
      ?initial_rate ()
  in
  Tfmcc_core.Sender.start snd ~at:0.;
  (* let the first packet and round start *)
  run_for rig 0.1;
  snd

let test_sender_decreases_immediately () =
  let rig = make_rig () in
  let snd = started_sender ~initial_rate:100_000. rig in
  (* Out of slowstart via a loss report well below the current rate. *)
  forge_report rig ~rx_id:(Netsim.Node.id rig.rx_node) ~rate:20_000. ();
  run_for rig 0.01;
  Alcotest.(check bool) "slowstart ended" false (Tfmcc_core.Sender.in_slowstart snd);
  Alcotest.(check (float 1.)) "rate dropped to the report" 20_000.
    (Tfmcc_core.Sender.rate_bytes_per_s snd);
  Alcotest.(check (option int)) "reporter became CLR"
    (Some (Netsim.Node.id rig.rx_node))
    (Tfmcc_core.Sender.clr snd)

let test_sender_increase_capped () =
  let rig = make_rig () in
  let snd = started_sender ~initial_rate:100_000. rig in
  let clr = Netsim.Node.id rig.rx_node in
  forge_report rig ~rx_id:clr ~rate:20_000. ();
  run_for rig 0.01;
  (* CLR now asks for a much higher rate; the increase must be capped at
     ~1 packet per RTT per elapsed RTT. *)
  run_for rig 0.05 (* one RTT at rtt=0.05 *);
  forge_report rig ~rx_id:clr ~rate:1_000_000. ();
  run_for rig 0.01;
  let x = Tfmcc_core.Sender.rate_bytes_per_s snd in
  Alcotest.(check bool)
    (Printf.sprintf "bounded increase (got %.0f)" x)
    true
    (x < 20_000. +. (3. *. 1000.))

let test_sender_lower_report_steals_clr () =
  let rig = make_rig () in
  let snd = started_sender ~initial_rate:100_000. rig in
  forge_report rig ~rx_id:(Netsim.Node.id rig.rx_node) ~rate:50_000. ();
  run_for rig 0.01;
  forge_report rig ~rx_id:(Netsim.Node.id rig.rx2_node) ~rate:30_000. ();
  run_for rig 0.01;
  Alcotest.(check (option int)) "lower receiver takes over"
    (Some (Netsim.Node.id rig.rx2_node))
    (Tfmcc_core.Sender.clr snd);
  Alcotest.(check (float 1.)) "rate follows" 30_000.
    (Tfmcc_core.Sender.rate_bytes_per_s snd)

let test_sender_higher_non_clr_ignored () =
  let rig = make_rig () in
  let snd = started_sender ~initial_rate:100_000. rig in
  forge_report rig ~rx_id:(Netsim.Node.id rig.rx_node) ~rate:30_000. ();
  run_for rig 0.01;
  forge_report rig ~rx_id:(Netsim.Node.id rig.rx2_node) ~rate:80_000. ();
  run_for rig 0.01;
  Alcotest.(check (option int)) "CLR unchanged"
    (Some (Netsim.Node.id rig.rx_node))
    (Tfmcc_core.Sender.clr snd);
  Alcotest.(check (float 1.)) "rate unchanged" 30_000.
    (Tfmcc_core.Sender.rate_bytes_per_s snd)

let test_sender_leave_drops_clr () =
  let rig = make_rig () in
  let snd = started_sender ~initial_rate:100_000. rig in
  let clr = Netsim.Node.id rig.rx_node in
  forge_report rig ~rx_id:clr ~rate:30_000. ();
  run_for rig 0.01;
  forge_report rig ~rx_id:clr ~leaving:true ();
  run_for rig 0.01;
  Alcotest.(check (option int)) "CLR dropped" None (Tfmcc_core.Sender.clr snd);
  Alcotest.(check int) "counted as timeout/leave" 1 (Tfmcc_core.Sender.clr_timeouts snd)

let test_sender_no_rtt_report_rescaled () =
  let rig = make_rig () in
  let snd = started_sender ~initial_rate:100_000. rig in
  (* The forged report claims rate 10_000 computed with the 500 ms
     initial RTT; echo_ts is 20 ms ago, so the sender-side RTT is
     ~20 ms and the adjusted rate should be ~ 10_000 * 0.5/0.02 = 250_000
     — above the current rate, so the rate must NOT crash to 10_000. *)
  forge_report rig ~rx_id:(Netsim.Node.id rig.rx_node) ~rate:10_000.
    ~have_rtt:false ~rtt:0.5 ();
  run_for rig 0.01;
  Alcotest.(check bool)
    (Printf.sprintf "rate not crashed (got %.0f)"
       (Tfmcc_core.Sender.rate_bytes_per_s snd))
    true
    (Tfmcc_core.Sender.rate_bytes_per_s snd > 50_000.)

let test_sender_round_advances () =
  let rig = make_rig () in
  let snd = started_sender rig in
  let r0 = Tfmcc_core.Sender.round snd in
  run_for rig (2.5 *. Tfmcc_core.Sender.round_duration snd);
  Alcotest.(check bool) "rounds advance" true (Tfmcc_core.Sender.round snd >= r0 + 2)

(* ------------------------------------------------------------ Receiver *)

(* Deliver a forged data packet locally to the receiver. *)
let forge_data rig ~seq ?(rate = 50_000.) ?(round = 0) ?(round_duration = 1.)
    ?(clr = -1) ?(in_slowstart = false) ?echo ?fb () =
  let now = Netsim.Engine.now rig.engine in
  let payload =
    Netsim_env.Data
      {
        session = 1;
        seq;
        ts = now;
        rate;
        round;
        round_duration;
        max_rtt = 0.5;
        clr;
        in_slowstart;
        echo;
        fb;
        app = -1;
      }
  in
  let p =
    Netsim.Packet.make ~flow:1 ~size:1000
      ~src:(Netsim.Node.id rig.sender_node)
      ~dst:(Netsim.Packet.Multicast 1) ~created:now payload
  in
  Netsim.Node.deliver_local rig.rx_node p

let make_receiver rig =
  let r =
    Netsim_env.Receiver.create rig.topo ~cfg ~session:1 ~node:rig.rx_node
      ~sender:rig.sender_node ()
  in
  Tfmcc_core.Receiver.join r;
  r

let test_receiver_initial_rtt () =
  let rig = make_rig () in
  let r = make_receiver rig in
  forge_data rig ~seq:0 ();
  run_for rig 0.01;
  Alcotest.(check (float 1e-9)) "initial RTT" 0.5 (Tfmcc_core.Receiver.rtt r);
  Alcotest.(check bool) "no measurement" false
    (Tfmcc_core.Receiver.has_rtt_measurement r)

let test_receiver_echo_measures_rtt () =
  let rig = make_rig () in
  let r = make_receiver rig in
  forge_data rig ~seq:0 ();
  run_for rig 0.1;
  (* Echo a pretended report this receiver sent 60 ms ago. *)
  let now = Netsim.Engine.now rig.engine in
  forge_data rig ~seq:1
    ~echo:
      {
        Tfmcc_core.Wire.rx_id = Netsim.Node.id rig.rx_node;
        rx_ts = now -. 0.06;
        echo_delay = 0.01;
      }
    ();
  run_for rig 0.01;
  Alcotest.(check bool) "measured" true (Tfmcc_core.Receiver.has_rtt_measurement r);
  Alcotest.(check (float 1e-6)) "RTT = now - rx_ts - hold" 0.05
    (Tfmcc_core.Receiver.rtt r)

let test_receiver_echo_for_other_ignored () =
  let rig = make_rig () in
  let r = make_receiver rig in
  forge_data rig ~seq:0 ();
  run_for rig 0.1;
  let now = Netsim.Engine.now rig.engine in
  forge_data rig ~seq:1
    ~echo:{ Tfmcc_core.Wire.rx_id = 999; rx_ts = now -. 0.06; echo_delay = 0.01 }
    ();
  run_for rig 0.01;
  Alcotest.(check bool) "not measured" false
    (Tfmcc_core.Receiver.has_rtt_measurement r)

let test_receiver_detects_loss () =
  let rig = make_rig () in
  let r = make_receiver rig in
  forge_data rig ~seq:0 ();
  run_for rig 0.01;
  forge_data rig ~seq:1 ();
  run_for rig 0.01;
  forge_data rig ~seq:5 ();
  run_for rig 0.01;
  Alcotest.(check bool) "loss detected" true (Tfmcc_core.Receiver.has_loss r);
  Alcotest.(check bool) "p > 0" true (Tfmcc_core.Receiver.loss_event_rate r > 0.)

let test_receiver_becomes_clr_and_reports_periodically () =
  let rig = make_rig () in
  let r = make_receiver rig in
  forge_data rig ~seq:0 ~clr:(Netsim.Node.id rig.rx_node) ();
  run_for rig 0.01;
  Alcotest.(check bool) "knows it is CLR" true (Tfmcc_core.Receiver.is_clr r);
  let before = Tfmcc_core.Receiver.reports_sent r in
  (* CLR reports once per RTT (initially 500 ms). *)
  run_for rig 2.0;
  let sent = Tfmcc_core.Receiver.reports_sent r - before in
  Alcotest.(check bool)
    (Printf.sprintf "periodic CLR reports (%d in 2s)" sent)
    true
    (sent >= 3 && sent <= 6)

let test_receiver_demoted_clr_stops () =
  let rig = make_rig () in
  let r = make_receiver rig in
  forge_data rig ~seq:0 ~clr:(Netsim.Node.id rig.rx_node) ();
  run_for rig 0.6;
  forge_data rig ~seq:1 ~clr:12345 ();
  run_for rig 0.01;
  Alcotest.(check bool) "demoted" false (Tfmcc_core.Receiver.is_clr r);
  let before = Tfmcc_core.Receiver.reports_sent r in
  run_for rig 2.0;
  Alcotest.(check int) "no more periodic reports" before
    (Tfmcc_core.Receiver.reports_sent r)

let test_receiver_reports_during_slowstart_round () =
  let rig = make_rig () in
  let r = make_receiver rig in
  (* Slowstart data in round 0, then a new round 1 to arm the timer. *)
  forge_data rig ~seq:0 ~in_slowstart:true ();
  run_for rig 0.05;
  forge_data rig ~seq:1 ~in_slowstart:true ~round:1 ~round_duration:0.5 ();
  run_for rig 1.0;
  Alcotest.(check bool) "slowstart report sent" true
    (Tfmcc_core.Receiver.reports_sent r >= 1)

let test_receiver_suppressed_by_echo () =
  let rig = make_rig () in
  let r = make_receiver rig in
  (* Arm a slowstart round timer, then echo feedback: a rate report must
     cancel (slowstart reports cancel on any echo). *)
  forge_data rig ~seq:0 ~in_slowstart:true ();
  run_for rig 0.05;
  forge_data rig ~seq:1 ~in_slowstart:true ~round:1 ~round_duration:5. ();
  run_for rig 0.01;
  forge_data rig ~seq:2 ~in_slowstart:true ~round:1 ~round_duration:5.
    ~fb:{ Tfmcc_core.Wire.fb_rx_id = 999; fb_rate = 1.; fb_has_loss = false }
    ();
  run_for rig 6.;
  Alcotest.(check int) "timer was suppressed" 1
    (Tfmcc_core.Receiver.timers_suppressed r)

let test_receiver_not_suppressed_when_left () =
  let rig = make_rig () in
  let r = make_receiver rig in
  forge_data rig ~seq:0 ();
  Tfmcc_core.Receiver.leave r ();
  forge_data rig ~seq:1 ();
  run_for rig 0.1;
  Alcotest.(check int) "no packets counted after leave" 1
    (Tfmcc_core.Receiver.packets_received r)

(* ----------------------------------------------------------- Aggregator *)

(* Forge a report addressed to the aggregator node (rx_node hosts it). *)
let forge_report_to rig ~dst ~rx_id ~rate ~round ~has_loss ?(leaving = false) () =
  let now = Netsim.Engine.now rig.engine in
  let payload =
    Netsim_env.Report
      {
        session = 1;
        rx_id;
        ts = now;
        echo_ts = now -. 0.02;
        echo_delay = 0.;
        rate;
        have_rtt = true;
        rtt = 0.05;
        p = 0.01;
        x_recv = rate;
        round;
        has_loss;
        leaving;
      }
  in
  let p =
    Netsim.Packet.make ~flow:(-1) ~size:40 ~src:rx_id
      ~dst:(Netsim.Packet.Unicast (Netsim.Node.id dst))
      ~created:now payload
  in
  Netsim.Node.deliver_local dst p

let count_reports_at node =
  let n = ref 0 in
  Netsim.Node.attach node (fun p ->
      match p.Netsim.Packet.payload with
      | Netsim_env.Report _ -> incr n
      | _ -> ());
  n

let test_aggregator_forwards_minimum () =
  let rig = make_rig () in
  let agg =
    Netsim_env.Aggregator.create rig.topo ~session:1 ~node:rig.rx_node
      ~parent:rig.sender_node ~hold:0.1 ()
  in
  let seen = ref None in
  Netsim.Node.attach rig.sender_node (fun p ->
      match p.Netsim.Packet.payload with
      | Netsim_env.Report { rate; _ } -> seen := Some rate
      | _ -> ());
  forge_report_to rig ~dst:rig.rx_node ~rx_id:101 ~rate:50_000. ~round:1
    ~has_loss:true ();
  forge_report_to rig ~dst:rig.rx_node ~rx_id:102 ~rate:20_000. ~round:1
    ~has_loss:true ();
  forge_report_to rig ~dst:rig.rx_node ~rx_id:103 ~rate:80_000. ~round:1
    ~has_loss:true ();
  run_for rig 0.5;
  Alcotest.(check int) "three in" 3 (Tfmcc_core.Aggregator.reports_in agg);
  Alcotest.(check int) "one out" 1 (Tfmcc_core.Aggregator.reports_out agg);
  Alcotest.(check (option (float 1.))) "minimum forwarded" (Some 20_000.) !seen

let test_aggregator_loss_dominates () =
  let rig = make_rig () in
  let _agg =
    Netsim_env.Aggregator.create rig.topo ~session:1 ~node:rig.rx_node
      ~parent:rig.sender_node ~hold:0.1 ()
  in
  let seen = ref None in
  Netsim.Node.attach rig.sender_node (fun p ->
      match p.Netsim.Packet.payload with
      | Netsim_env.Report { rate; has_loss; _ } -> seen := Some (rate, has_loss)
      | _ -> ());
  (* a lower rate-only report must lose to a loss report *)
  forge_report_to rig ~dst:rig.rx_node ~rx_id:101 ~rate:10_000. ~round:1
    ~has_loss:false ();
  forge_report_to rig ~dst:rig.rx_node ~rx_id:102 ~rate:30_000. ~round:1
    ~has_loss:true ();
  run_for rig 0.5;
  Alcotest.(check (option (pair (float 1.) bool))) "loss report wins"
    (Some (30_000., true))
    !seen

let test_aggregator_one_per_round () =
  let rig = make_rig () in
  let agg =
    Netsim_env.Aggregator.create rig.topo ~session:1 ~node:rig.rx_node
      ~parent:rig.sender_node ~hold:0.05 ()
  in
  (* Ten reports of the same round from distinct receivers, spaced wider
     than the hold: only the first flush (plus more-restrictive upgrades)
     may pass. *)
  for i = 0 to 9 do
    ignore
      (Netsim.Engine.at rig.engine
         ~time:(0.2 *. float_of_int (i + 1))
         (fun () ->
           forge_report_to rig ~dst:rig.rx_node
             ~rx_id:(200 + i)
             ~rate:(50_000. +. (1000. *. float_of_int i))
             ~round:1 ~has_loss:true ()));
    ()
  done;
  run_for rig 3.;
  Alcotest.(check int) "ten in" 10 (Tfmcc_core.Aggregator.reports_in agg);
  Alcotest.(check bool)
    (Printf.sprintf "throttled to ~1 (got %d)" (Tfmcc_core.Aggregator.reports_out agg))
    true
    (Tfmcc_core.Aggregator.reports_out agg <= 2)

let test_aggregator_leave_passes_through () =
  let rig = make_rig () in
  let agg =
    Netsim_env.Aggregator.create rig.topo ~session:1 ~node:rig.rx_node
      ~parent:rig.sender_node ~hold:0.1 ()
  in
  let n = count_reports_at rig.sender_node in
  forge_report_to rig ~dst:rig.rx_node ~rx_id:101 ~rate:50_000. ~round:1
    ~has_loss:true ~leaving:true ();
  (* hold is 0.1 s: arrival well before it proves pass-through *)
  run_for rig 0.05;
  Alcotest.(check int) "forwarded immediately" 1 !n;
  Alcotest.(check int) "counted" 1 (Tfmcc_core.Aggregator.reports_out agg)

let test_aggregator_clr_passthrough () =
  let rig = make_rig () in
  let agg =
    Netsim_env.Aggregator.create rig.topo ~session:1 ~node:rig.rx_node
      ~parent:rig.sender_node ~hold:0.05 ()
  in
  (* Establish rx 101 as the subtree's spoken-for receiver... *)
  forge_report_to rig ~dst:rig.rx_node ~rx_id:101 ~rate:50_000. ~round:1
    ~has_loss:true ();
  run_for rig 0.2;
  let out0 = Tfmcc_core.Aggregator.reports_out agg in
  (* ...then its repeated same-round reports pass through unthrottled. *)
  for _ = 1 to 5 do
    forge_report_to rig ~dst:rig.rx_node ~rx_id:101 ~rate:51_000. ~round:1
      ~has_loss:true ();
    run_for rig 0.05
  done;
  Alcotest.(check int) "CLR reports pass" (out0 + 5)
    (Tfmcc_core.Aggregator.reports_out agg)

(* ------------------------------------------------------- Byte codec *)

module W = Tfmcc_core.Wire

(* The decode contract under fuzzing: never raise, and Ok implies the
   payload passes the field validators (no NaN, no negative rates, no
   out-of-range loss probability). *)
let decoded_report_ok = function
  | Ok
      (W.Report
        { rx_id; ts; echo_ts; echo_delay; rate; rtt; p; x_recv; round; _ }) ->
      W.report_fields_valid ~rx_id ~ts ~echo_ts ~echo_delay ~rate ~rtt ~p
        ~x_recv ~round
  | Ok _ -> false  (* decode_report must only ever produce Report *)
  | Error _ -> true

let decoded_data_ok = function
  | Ok
      (W.Data
        { seq; ts; rate; round; round_duration; max_rtt; clr; echo; fb; _ }) ->
      W.data_fields_valid ~seq ~ts ~rate ~round ~round_duration ~max_rtt ~clr
        ~echo ~fb
  | Ok _ -> false
  | Error _ -> true

let valid_report_bytes () =
  W.encode_report
    {
      W.session = 7;
      rx_id = 12;
      ts = 1.5;
      echo_ts = 1.4;
      echo_delay = 0.01;
      rate = 50_000.;
      have_rtt = true;
      rtt = 0.05;
      p = 0.01;
      x_recv = 48_000.;
      round = 3;
      has_loss = true;
      leaving = false;
    }

let valid_data_bytes () =
  W.encode_data
    {
      W.session = 7;
      seq = 99;
      ts = 2.5;
      rate = 125_000.;
      round = 4;
      round_duration = 0.5;
      max_rtt = 0.5;
      clr = 12;
      in_slowstart = false;
      echo = Some { W.rx_id = 12; rx_ts = 2.4; echo_delay = 0.02 };
      fb = Some { W.fb_rx_id = 31; fb_rate = 40_000.; fb_has_loss = true };
      app = -1;
    }

let test_codec_report_roundtrip () =
  match W.decode_report (valid_report_bytes ()) with
  | Ok (W.Report r) ->
      Alcotest.(check int) "session" 7 r.session;
      Alcotest.(check int) "rx_id" 12 r.rx_id;
      Alcotest.(check int) "round" 3 r.round;
      Alcotest.(check (float 0.)) "rate" 50_000. r.rate;
      Alcotest.(check (float 0.)) "rtt" 0.05 r.rtt;
      Alcotest.(check (float 0.)) "p" 0.01 r.p;
      Alcotest.(check bool) "have_rtt" true r.have_rtt;
      Alcotest.(check bool) "has_loss" true r.has_loss;
      Alcotest.(check bool) "leaving" false r.leaving
  | Ok _ -> Alcotest.fail "decoded to a non-report payload"
  | Error e -> Alcotest.fail ("valid encoding rejected: " ^ e)

let test_codec_data_roundtrip () =
  match W.decode_data (valid_data_bytes ()) with
  | Ok (W.Data d) ->
      Alcotest.(check int) "session" 7 d.session;
      Alcotest.(check int) "seq" 99 d.seq;
      Alcotest.(check int) "clr" 12 d.clr;
      Alcotest.(check (float 0.)) "rate" 125_000. d.rate;
      (match d.echo with
      | Some e -> Alcotest.(check int) "echo rx" 12 e.W.rx_id
      | None -> Alcotest.fail "echo lost");
      (match d.fb with
      | Some f ->
          Alcotest.(check (float 0.)) "fb rate" 40_000. f.W.fb_rate;
          Alcotest.(check bool) "fb loss" true f.W.fb_has_loss
      | None -> Alcotest.fail "fb lost")
  | Ok _ -> Alcotest.fail "decoded to a non-data payload"
  | Error e -> Alcotest.fail ("valid encoding rejected: " ^ e)

let test_codec_data_roundtrip_bare () =
  match
    W.decode_data
      (W.encode_data
         {
           W.session = 1;
           seq = 0;
           ts = 0.;
           rate = 1_000.;
           round = 0;
           round_duration = 0.5;
           max_rtt = 0.5;
           clr = -1;
           in_slowstart = true;
           echo = None;
           fb = None;
           app = -1;
         })
  with
  | Ok (W.Data d) ->
      Alcotest.(check bool) "in_slowstart" true d.in_slowstart;
      Alcotest.(check bool) "no echo" true (d.echo = None);
      Alcotest.(check bool) "no fb" true (d.fb = None)
  | Ok _ -> Alcotest.fail "decoded to a non-data payload"
  | Error e -> Alcotest.fail ("valid encoding rejected: " ^ e)

let test_codec_truncated_rejected () =
  let b = valid_report_bytes () in
  for len = 0 to Bytes.length b - 1 do
    match W.decode_report (Bytes.sub b 0 len) with
    | Ok _ -> Alcotest.fail (Printf.sprintf "truncated report (%d) decoded" len)
    | Error _ -> ()
  done;
  let d = valid_data_bytes () in
  for len = 0 to Bytes.length d - 1 do
    match W.decode_data (Bytes.sub d 0 len) with
    | Ok _ -> Alcotest.fail (Printf.sprintf "truncated data (%d) decoded" len)
    | Error _ -> ()
  done

let bytes_gen =
  QCheck.Gen.(
    sized_size (int_range 0 200) (fun n st ->
        Bytes.init n (fun _ -> Char.chr (int_range 0 255 st))))

let arbitrary_bytes =
  QCheck.make ~print:(fun b -> Printf.sprintf "%S" (Bytes.to_string b)) bytes_gen

let prop_decode_report_never_raises =
  QCheck.Test.make ~name:"random bytes: decode_report total and validated"
    ~count:2000 arbitrary_bytes (fun b -> decoded_report_ok (W.decode_report b))

let prop_decode_data_never_raises =
  QCheck.Test.make ~name:"random bytes: decode_data total and validated"
    ~count:2000 arbitrary_bytes (fun b -> decoded_data_ok (W.decode_data b))

(* Bit-flipped valid encodings: the nastiest corpus, because all but one
   bit is plausible.  Flips of float payload bytes can produce NaN /
   negative / huge values; the decoder must catch every one. *)
let prop_decode_report_bitflip =
  QCheck.Test.make ~name:"bit-flipped report: decode total and validated"
    ~count:2000
    QCheck.(pair (int_bound (82 * 8 - 1)) (int_bound 1000))
    (fun (bit, _salt) ->
      let b = valid_report_bytes () in
      let i = bit / 8 and m = 1 lsl (bit mod 8) in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor m));
      decoded_report_ok (W.decode_report b))

let prop_decode_data_bitflip =
  QCheck.Test.make ~name:"bit-flipped data: decode total and validated"
    ~count:2000
    QCheck.(pair (int_bound (114 * 8 - 1)) (int_bound 1000))
    (fun (bit, _salt) ->
      let b = valid_data_bytes () in
      let i = bit / 8 and m = 1 lsl (bit mod 8) in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor m));
      decoded_data_ok (W.decode_data b))

(* Extreme-value generator: finite floats spanning the full magnitude
   range plus every non-finite special.  The encoders must accept any
   all-finite assignment (decode-total contract unchanged) and raise
   Invalid_argument the moment one field is NaN or infinite — a
   non-finite value round-trips bit-exactly and would otherwise only
   surface as a decode rejection at every receiver. *)
let extreme_float_gen =
  QCheck.Gen.(
    oneof
      [
        return Float.nan;
        return Float.infinity;
        return Float.neg_infinity;
        return 0.;
        return (-0.);
        return Float.max_float;
        return (-.Float.max_float);
        return Float.min_float;
        return 1e308;
        return (-1e308);
        return 4.94e-324 (* subnormal *);
        float_range (-1e9) 1e9;
      ])

let extreme_float =
  QCheck.make ~print:(Printf.sprintf "%h") extreme_float_gen

let encode_report_with ~ts ~echo_ts ~echo_delay ~rate ~rtt ~p ~x_recv =
  W.encode_report
    {
      W.session = 7;
      rx_id = 12;
      ts;
      echo_ts;
      echo_delay;
      rate;
      have_rtt = true;
      rtt;
      p;
      x_recv;
      round = 3;
      has_loss = true;
      leaving = false;
    }

let encode_data_with ~ts ~rate ~round_duration ~max_rtt ~rx_ts ~e_delay
    ~fb_rate =
  W.encode_data
    {
      W.session = 7;
      seq = 99;
      ts;
      rate;
      round = 4;
      round_duration;
      max_rtt;
      clr = 12;
      in_slowstart = false;
      echo = Some { W.rx_id = 12; rx_ts; echo_delay = e_delay };
      fb = Some { W.fb_rx_id = 31; fb_rate; fb_has_loss = true };
      app = -1;
    }

let all_finite l = List.for_all Float.is_finite l

let prop_encode_report_finite_guard =
  QCheck.Test.make
    ~name:"extreme floats: encode_report accepts finite, rejects non-finite"
    ~count:2000
    QCheck.(
      tup7 extreme_float extreme_float extreme_float extreme_float
        extreme_float extreme_float extreme_float)
    (fun (ts, echo_ts, echo_delay, rate, rtt, p, x_recv) ->
      match encode_report_with ~ts ~echo_ts ~echo_delay ~rate ~rtt ~p ~x_recv with
      | b ->
          all_finite [ ts; echo_ts; echo_delay; rate; rtt; p; x_recv ]
          && Bytes.length b = W.encoded_report_size
          && decoded_report_ok (W.decode_report b)
      | exception Invalid_argument _ ->
          not (all_finite [ ts; echo_ts; echo_delay; rate; rtt; p; x_recv ]))

let prop_encode_data_finite_guard =
  QCheck.Test.make
    ~name:"extreme floats: encode_data accepts finite, rejects non-finite"
    ~count:2000
    QCheck.(
      tup7 extreme_float extreme_float extreme_float extreme_float
        extreme_float extreme_float extreme_float)
    (fun (ts, rate, round_duration, max_rtt, rx_ts, e_delay, fb_rate) ->
      match
        encode_data_with ~ts ~rate ~round_duration ~max_rtt ~rx_ts ~e_delay
          ~fb_rate
      with
      | b ->
          all_finite [ ts; rate; round_duration; max_rtt; rx_ts; e_delay; fb_rate ]
          && Bytes.length b = W.encoded_data_size
          && decoded_data_ok (W.decode_data b)
      | exception Invalid_argument _ ->
          not
            (all_finite
               [ ts; rate; round_duration; max_rtt; rx_ts; e_delay; fb_rate ]))

let test_encode_rejects_nonfinite () =
  let expect_invalid name f =
    match f () with
    | (_ : bytes) -> Alcotest.fail (name ^ ": non-finite field encoded")
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "report NaN rate" (fun () ->
      encode_report_with ~ts:1.5 ~echo_ts:1.4 ~echo_delay:0.01 ~rate:Float.nan
        ~rtt:0.05 ~p:0.01 ~x_recv:48_000.);
  expect_invalid "report inf x_recv" (fun () ->
      encode_report_with ~ts:1.5 ~echo_ts:1.4 ~echo_delay:0.01 ~rate:50_000.
        ~rtt:0.05 ~p:0.01 ~x_recv:Float.infinity);
  expect_invalid "data -inf ts" (fun () ->
      encode_data_with ~ts:Float.neg_infinity ~rate:125_000. ~round_duration:0.5
        ~max_rtt:0.5 ~rx_ts:2.4 ~e_delay:0.02 ~fb_rate:40_000.);
  expect_invalid "data NaN echo delay" (fun () ->
      encode_data_with ~ts:2.5 ~rate:125_000. ~round_duration:0.5 ~max_rtt:0.5
        ~rx_ts:2.4 ~e_delay:Float.nan ~fb_rate:40_000.);
  expect_invalid "data NaN fb rate" (fun () ->
      encode_data_with ~ts:2.5 ~rate:125_000. ~round_duration:0.5 ~max_rtt:0.5
        ~rx_ts:2.4 ~e_delay:0.02 ~fb_rate:Float.nan)

let () =
  Alcotest.run "tfmcc_wire"
    [
      ( "sender",
        [
          Alcotest.test_case "immediate decrease" `Quick test_sender_decreases_immediately;
          Alcotest.test_case "capped increase" `Quick test_sender_increase_capped;
          Alcotest.test_case "lower report steals CLR" `Quick test_sender_lower_report_steals_clr;
          Alcotest.test_case "higher non-CLR ignored" `Quick test_sender_higher_non_clr_ignored;
          Alcotest.test_case "leave drops CLR" `Quick test_sender_leave_drops_clr;
          Alcotest.test_case "no-RTT report rescaled" `Quick test_sender_no_rtt_report_rescaled;
          Alcotest.test_case "rounds advance" `Quick test_sender_round_advances;
        ] );
      ( "receiver",
        [
          Alcotest.test_case "initial RTT" `Quick test_receiver_initial_rtt;
          Alcotest.test_case "echo measures RTT" `Quick test_receiver_echo_measures_rtt;
          Alcotest.test_case "foreign echo ignored" `Quick test_receiver_echo_for_other_ignored;
          Alcotest.test_case "detects loss" `Quick test_receiver_detects_loss;
          Alcotest.test_case "CLR duty" `Quick test_receiver_becomes_clr_and_reports_periodically;
          Alcotest.test_case "CLR demotion" `Quick test_receiver_demoted_clr_stops;
          Alcotest.test_case "slowstart report" `Quick test_receiver_reports_during_slowstart_round;
          Alcotest.test_case "echo suppression" `Quick test_receiver_suppressed_by_echo;
          Alcotest.test_case "leave stops accounting" `Quick test_receiver_not_suppressed_when_left;
        ] );
      ( "aggregator",
        [
          Alcotest.test_case "forwards minimum" `Quick test_aggregator_forwards_minimum;
          Alcotest.test_case "loss dominates" `Quick test_aggregator_loss_dominates;
          Alcotest.test_case "one per round" `Quick test_aggregator_one_per_round;
          Alcotest.test_case "leave passthrough" `Quick test_aggregator_leave_passes_through;
          Alcotest.test_case "CLR passthrough" `Quick test_aggregator_clr_passthrough;
        ] );
      ( "codec",
        [
          Alcotest.test_case "report roundtrip" `Quick test_codec_report_roundtrip;
          Alcotest.test_case "data roundtrip" `Quick test_codec_data_roundtrip;
          Alcotest.test_case "bare data roundtrip" `Quick test_codec_data_roundtrip_bare;
          Alcotest.test_case "truncations rejected" `Quick test_codec_truncated_rejected;
          Alcotest.test_case "encode rejects non-finite" `Quick
            test_encode_rejects_nonfinite;
        ] );
      ( "codec fuzz",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_decode_report_never_raises;
            prop_decode_data_never_raises;
            prop_decode_report_bitflip;
            prop_decode_data_bitflip;
            prop_encode_report_finite_guard;
            prop_encode_data_finite_guard;
          ] );
    ]
