(* Supervised sweep execution (DESIGN.md §12): Par.Control semantics,
   structured task outcomes, the crash/timeout/stall fault-injection
   paths through Sweep.run_supervised, retry-with-backoff, the failure
   report's JSON shape, and serial/parallel agreement. *)

let quick = Experiments.Scenario.Quick

let find id =
  match Experiments.Registry.find id with
  | Some e -> e
  | None -> Alcotest.failf "registry should resolve %s" id

let policy = Experiments.Sweep.default_policy

(* ------------------------------------------------------------ control *)

let test_control_timeout () =
  let c = Par.Control.create ~timeout:0.005 () in
  Par.Control.check c;
  Unix.sleepf 0.02;
  (match Par.Control.check c with
  | () -> Alcotest.fail "expired deadline should raise"
  | exception Par.Cancelled (Par.Timeout t) ->
      Alcotest.(check (float 1e-9)) "carries the budget" 0.005 t);
  (* arm resets the deadline and clears the pending reason *)
  Par.Control.arm c ~timeout:10. ();
  Par.Control.check c

let test_control_cancel () =
  let c = Par.Control.create () in
  Par.Control.cancel c (Par.Stall "stuck");
  (match Par.Control.check c with
  | () -> Alcotest.fail "cancelled control should raise"
  | exception Par.Cancelled (Par.Stall r) ->
      Alcotest.(check string) "reason" "stuck" r);
  (* the inert control never fires, even when "cancelled" *)
  Par.Control.cancel Par.Control.none (Par.Stall "ignored");
  Par.Control.check Par.Control.none

(* ----------------------------------------------------------- outcomes *)

exception Boom of int

let test_map_outcomes_classifies () =
  List.iter
    (fun jobs ->
      let tasks =
        [
          (fun _ -> 10);
          (fun _ -> raise (Boom 1));
          (fun (c : Par.Control.t) ->
            Par.Control.cancel c (Par.Stall "no progress");
            Par.Control.check c;
            0);
          (fun _ -> 13);
        ]
      in
      match Par.map_outcomes ~jobs tasks with
      | [ Par.Ok a; Par.Failed { exn = Boom 1; _ }; Par.Stalled { reason }; Par.Ok b ]
        ->
          Alcotest.(check int) "first" 10 a;
          Alcotest.(check string) "stall reason" "no progress" reason;
          Alcotest.(check int) "last" 13 b
      | outcomes ->
          Alcotest.failf "jobs=%d: unexpected outcomes [%s]" jobs
            (String.concat "; " (List.map Par.outcome_label outcomes)))
    [ 1; 4 ]

let test_map_outcomes_timeout () =
  match
    Par.map_outcomes ~jobs:1 ~timeout:0.005
      [
        (fun (c : Par.Control.t) ->
          Unix.sleepf 0.02;
          Par.Control.check c;
          0);
      ]
  with
  | [ Par.Timed_out { after } ] ->
      Alcotest.(check (float 1e-9)) "budget" 0.005 after
  | outcomes ->
      Alcotest.failf "unexpected outcomes [%s]"
        (String.concat "; " (List.map Par.outcome_label outcomes))

let test_nested_submit_names_task () =
  let pool = Par.Pool.create ~jobs:2 () in
  Fun.protect
    ~finally:(fun () -> Par.Pool.shutdown pool)
    (fun () ->
      match
        Par.Pool.map pool
          [
            (fun () -> 0);
            (fun () -> Par.Pool.map pool [ (fun () -> 1) ] |> List.hd);
          ]
      with
      | _ -> Alcotest.fail "nested submit should raise"
      | exception Invalid_argument msg ->
          let mentions_index =
            let sub = "task #1" in
            let n = String.length msg and m = String.length sub in
            let rec scan i =
              i + m <= n && (String.sub msg i m = sub || scan (i + 1))
            in
            scan 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "message names the offending task: %S" msg)
            true mentions_index)

(* ------------------------------------------------- supervised failures *)

let supervised ?(policy = policy) ?(jobs = 1) ids =
  Experiments.Sweep.run_supervised ~experiments:(List.map find ids) ~policy
    ~jobs ~mode:quick ~seed:42 ()

let the_failure (r : Experiments.Sweep.report) =
  match r.failures with
  | [ f ] -> f
  | fs -> Alcotest.failf "expected exactly one failure, got %d" (List.length fs)

let test_crash_failure () =
  let r = supervised [ "xcrash" ] in
  let f = the_failure r in
  Alcotest.(check string) "cause" "crashed"
    (Experiments.Sweep.cause_label f.f_cause);
  Alcotest.(check string) "experiment" "xcrash" f.f_experiment;
  Alcotest.(check int) "seed" 42 f.f_seed;
  Alcotest.(check int) "fail fast" 1 f.f_attempts;
  Alcotest.(check int) "exit code" 3 (Experiments.Sweep.exit_code r);
  Alcotest.(check bool) "no results" true (r.results = [])

let test_crash_retries_exhausted () =
  let r = supervised ~policy:{ policy with retries = 2 } [ "xcrash" ] in
  let f = the_failure r in
  Alcotest.(check int) "all attempts consumed" 3 f.f_attempts;
  Alcotest.(check int) "retried twice" 2 r.retried

let test_flaky_succeeds_on_retry () =
  (* attempt 1 raises, attempt 2 succeeds: retry must converge and the
     series must be those of a clean attempt (seed-derived only) *)
  let r = supervised ~policy:{ policy with retries = 1 } [ "xflaky" ] in
  Alcotest.(check int) "no failures" 0 (List.length r.failures);
  Alcotest.(check int) "one retry" 1 r.retried;
  Alcotest.(check int) "exit code" 0 (Experiments.Sweep.exit_code r);
  match r.results with
  | [ { replicates = [ { seed; series } ]; _ } ] ->
      Alcotest.(check int) "seed" 42 seed;
      Alcotest.(check bool) "non-empty series" true (series <> [])
  | _ -> Alcotest.fail "expected one result with one replicate"

let test_flaky_fails_without_retry () =
  let r = supervised [ "xflaky" ] in
  let f = the_failure r in
  Alcotest.(check string) "cause" "crashed"
    (Experiments.Sweep.cause_label f.f_cause)

let test_stall_aborted () =
  let r = supervised ~policy:{ policy with stall_events = 10_000 } [ "xstall" ] in
  let f = the_failure r in
  Alcotest.(check string) "cause" "stalled"
    (Experiments.Sweep.cause_label f.f_cause);
  (* the watchdog's abort note is the journal window's last entry *)
  let has_watchdog_note =
    let msg = f.f_journal and sub = "netsim.watchdog" in
    let n = String.length msg and m = String.length sub in
    let rec scan i = i + m <= n && (String.sub msg i m = sub || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "journal window names the watchdog" true
    has_watchdog_note

let test_event_storm_aborted () =
  let r = supervised ~policy:{ policy with max_events = Some 5_000 } [ "xstall" ] in
  let f = the_failure r in
  Alcotest.(check string) "cause" "stalled"
    (Experiments.Sweep.cause_label f.f_cause)

let test_sleep_times_out () =
  let r = supervised ~policy:{ policy with task_timeout = Some 0.2 } [ "xsleep" ] in
  let f = the_failure r in
  Alcotest.(check string) "cause" "timeout"
    (Experiments.Sweep.cause_label f.f_cause)

let test_partial_sweep_keeps_successes () =
  (* one crashing and one stalling task must not cost the healthy
     figures: their rendered series are byte-identical to a clean sweep *)
  let p = { policy with stall_events = 10_000 } in
  let mixed = supervised ~policy:p [ "fig01"; "xcrash"; "xstall"; "fig04" ] in
  let clean = supervised [ "fig01"; "fig04" ] in
  Alcotest.(check int) "two failures" 2 (List.length mixed.failures);
  Alcotest.(check int) "exit code" 3 (Experiments.Sweep.exit_code mixed);
  let render (r : Experiments.Sweep.report) =
    Experiments.Sweep.render ~seeds:1 r.results
  in
  match
    Check.Oracle.first_divergence ~expected:(render clean) ~actual:(render mixed)
  with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "healthy figures diverged: %s" msg

let test_serial_parallel_agree () =
  let p = { policy with stall_events = 10_000; retries = 1 } in
  let ids = [ "fig01"; "xcrash"; "fig04"; "xstall" ] in
  let a = supervised ~policy:p ~jobs:1 ids in
  let b = supervised ~policy:p ~jobs:4 ids in
  let render (r : Experiments.Sweep.report) =
    Experiments.Sweep.render ~seeds:1 r.results
  in
  (match
     Check.Oracle.first_divergence ~expected:(render a) ~actual:(render b)
   with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "-j 1 vs -j 4 diverged: %s" msg);
  Alcotest.(check (list string)) "same failure causes"
    (List.map
       (fun (f : Experiments.Sweep.failure) ->
         Experiments.Sweep.cause_label f.f_cause)
       a.failures)
    (List.map
       (fun (f : Experiments.Sweep.failure) ->
         Experiments.Sweep.cause_label f.f_cause)
       b.failures)

(* -------------------------------------------------- report and metrics *)

let test_failure_report_json_shape () =
  let r =
    supervised ~policy:{ policy with retries = 1 } [ "fig04"; "xcrash" ]
  in
  match Experiments.Sweep.report_to_json r with
  | Obs.Json.Obj fields ->
      let get k =
        match List.assoc_opt k fields with
        | Some v -> v
        | None -> Alcotest.failf "report JSON lacks %S" k
      in
      (match get "failures" with
      | Obs.Json.Arr [ Obs.Json.Obj f ] ->
          let str k =
            match List.assoc_opt k f with
            | Some (Obs.Json.Str s) -> s
            | _ -> Alcotest.failf "failure JSON lacks string %S" k
          in
          let int k =
            match List.assoc_opt k f with
            | Some (Obs.Json.Int i) -> i
            | _ -> Alcotest.failf "failure JSON lacks int %S" k
          in
          Alcotest.(check string) "task" "xcrash/s42" (str "task");
          Alcotest.(check string) "experiment" "xcrash" (str "experiment");
          Alcotest.(check int) "seed" 42 (int "seed");
          Alcotest.(check int) "attempts" 2 (int "attempts");
          Alcotest.(check string) "cause" "crashed" (str "cause");
          Alcotest.(check bool) "detail non-empty" true (str "detail" <> "");
          ignore (str "journal_window")
      | _ -> Alcotest.fail "expected one failure object");
      (match get "summary" with
      | Obs.Json.Obj s ->
          Alcotest.(check bool) "summary has exit_code" true
            (List.assoc_opt "exit_code" s = Some (Obs.Json.Int 3))
      | _ -> Alcotest.fail "summary should be an object");
      (* the document must survive the serialize/parse round trip *)
      let text = Obs.Json.to_string (Experiments.Sweep.report_to_json r) in
      (match Obs.Json.of_string text with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "report JSON does not parse: %s" e)
  | _ -> Alcotest.fail "report should be a JSON object"

let test_exit_codes () =
  let f cause =
    {
      Experiments.Sweep.f_experiment = "x";
      f_seed = 1;
      f_attempts = 1;
      f_cause = cause;
      f_detail = "";
      f_journal = "";
    }
  in
  let base =
    {
      Experiments.Sweep.results = [];
      failures = [];
      tasks = 1;
      executed = 1;
      resumed = 0;
      skipped = 0;
      retried = 0;
    }
  in
  Alcotest.(check int) "clean" 0 (Experiments.Sweep.exit_code base);
  Alcotest.(check int) "failure" 3
    (Experiments.Sweep.exit_code
       { base with failures = [ f Experiments.Sweep.Crashed ] });
  Alcotest.(check int) "skipped" 3
    (Experiments.Sweep.exit_code { base with skipped = 1 });
  Alcotest.(check int) "violation wins" 2
    (Experiments.Sweep.exit_code
       {
         base with
         failures =
           [ f Experiments.Sweep.Crashed; f Experiments.Sweep.Violation ];
       })

let test_sweep_observability () =
  let obs = Obs.Sink.create () in
  let r =
    Experiments.Sweep.run_supervised
      ~experiments:[ find "fig04"; find "xcrash" ]
      ~policy ~obs ~jobs:1 ~mode:quick ~seed:42 ()
  in
  Alcotest.(check int) "one failure" 1 (List.length r.failures);
  Alcotest.(check int) "one sweep journal entry" 1
    (Obs.Journal.count obs.Obs.Sink.journal ~component:"sweep" ());
  let samples = Obs.Metrics.snapshot obs.Obs.Sink.metrics in
  let value name =
    List.fold_left
      (fun acc (s : Obs.Metrics.sample) ->
        if s.name = name then
          match s.value with Obs.Metrics.Counter_v n -> acc + n | _ -> acc
        else acc)
      0 samples
  in
  Alcotest.(check int) "tasks total" 2 (value "sweep_tasks_total");
  Alcotest.(check int) "ok total" 1 (value "sweep_task_ok_total");
  Alcotest.(check int) "failed total" 1 (value "sweep_task_failed_total")

let () =
  Alcotest.run "supervise"
    [
      ( "control",
        [
          Alcotest.test_case "deadline + arm" `Quick test_control_timeout;
          Alcotest.test_case "cancel + inert none" `Quick test_control_cancel;
        ] );
      ( "outcomes",
        [
          Alcotest.test_case "classification + order" `Quick
            test_map_outcomes_classifies;
          Alcotest.test_case "pool-level timeout" `Quick test_map_outcomes_timeout;
          Alcotest.test_case "nested submit names task" `Quick
            test_nested_submit_names_task;
        ] );
      ( "faults",
        [
          Alcotest.test_case "crash -> structured failure" `Quick
            test_crash_failure;
          Alcotest.test_case "crash exhausts retries" `Quick
            test_crash_retries_exhausted;
          Alcotest.test_case "flaky succeeds on attempt 2" `Quick
            test_flaky_succeeds_on_retry;
          Alcotest.test_case "flaky fails without retries" `Quick
            test_flaky_fails_without_retry;
          Alcotest.test_case "livelock stalled" `Quick test_stall_aborted;
          Alcotest.test_case "event storm stalled" `Quick
            test_event_storm_aborted;
          Alcotest.test_case "wall-clock timeout" `Quick test_sleep_times_out;
          Alcotest.test_case "partial sweep keeps successes" `Quick
            test_partial_sweep_keeps_successes;
          Alcotest.test_case "serial = parallel" `Quick
            test_serial_parallel_agree;
        ] );
      ( "report",
        [
          Alcotest.test_case "failure JSON shape" `Quick
            test_failure_report_json_shape;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
          Alcotest.test_case "counters + journal" `Quick
            test_sweep_observability;
        ] );
    ]
