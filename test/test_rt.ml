(* Real-time runtime tests: timer-wheel semantics, loop clock hardening,
   the time-translation-invariance property (ISSUE 7 satellite: shifting
   the epoch by +1e9 s must not change rate decisions), and loopback/UDP
   transport smokes. *)

open Rt

let cfg = Tfmcc_core.Config.default

(* ------------------------------------------------------------------ *)
(* Timer wheel                                                         *)
(* ------------------------------------------------------------------ *)

(* Callbacks fire in nondecreasing deadline order; ties break by
   insertion sequence. *)
let test_wheel_order () =
  let w = Wheel.create ~start:0. () in
  let fired = ref [] in
  let add tag at = ignore (Wheel.schedule w ~at (fun () -> fired := tag :: !fired)) in
  add "c" 0.030;
  add "a" 0.010;
  add "tie1" 0.020;
  add "tie2" 0.020;
  add "b" 0.015;
  Alcotest.(check int) "pending" 5 (Wheel.pending w);
  let n = Wheel.advance w ~now:1.0 () in
  Alcotest.(check int) "fired count" 5 n;
  Alcotest.(check (list string))
    "deadline order, ties by insertion"
    [ "a"; "b"; "tie1"; "tie2"; "c" ]
    (List.rev !fired);
  Alcotest.(check int) "none left" 0 (Wheel.pending w)

let test_wheel_cancel () =
  let w = Wheel.create ~start:0. () in
  let hits = ref 0 in
  let t1 = Wheel.schedule w ~at:0.01 (fun () -> incr hits) in
  let t2 = Wheel.schedule w ~at:0.02 (fun () -> incr hits) in
  Wheel.cancel t1;
  Wheel.cancel t1 (* idempotent *);
  ignore (Wheel.advance w ~now:0.05 ());
  Alcotest.(check int) "only t2 fired" 1 !hits;
  Wheel.cancel t2 (* after fire: no-op *);
  Alcotest.(check int) "fired total" 1 (Wheel.fired w)

(* Deadlines beyond the wheel horizon (~4 s at defaults) wait in the
   overflow heap and migrate in as the cursor approaches. *)
let test_wheel_overflow_migration () =
  let w = Wheel.create ~start:0. () in
  let fired = ref [] in
  let add tag at = ignore (Wheel.schedule w ~at (fun () -> fired := tag :: !fired)) in
  add "far" 10.0;
  add "farther" 100.0;
  add "near" 0.5;
  Alcotest.(check (option (float 1e-9))) "next_due is near" (Some 0.5) (Wheel.next_due w);
  ignore (Wheel.advance w ~now:1.0 ());
  Alcotest.(check (option (float 1e-9))) "then far" (Some 10.0) (Wheel.next_due w);
  ignore (Wheel.advance w ~now:50.0 ());
  ignore (Wheel.advance w ~now:200.0 ());
  Alcotest.(check (list string)) "all fired in order" [ "near"; "far"; "farther" ]
    (List.rev !fired);
  Alcotest.(check (option (float 1e-9))) "empty" None (Wheel.next_due w)

(* A cancelled overflow entry must not resurface as next_due. *)
let test_wheel_cancel_overflow () =
  let w = Wheel.create ~start:0. () in
  let t = Wheel.schedule w ~at:10.0 (fun () -> Alcotest.fail "cancelled timer fired") in
  ignore (Wheel.schedule w ~at:20.0 (fun () -> ()));
  Wheel.cancel t;
  Alcotest.(check (option (float 1e-9))) "heap tombstone skipped" (Some 20.0)
    (Wheel.next_due w);
  ignore (Wheel.advance w ~now:30.0 ());
  Alcotest.(check int) "one fired" 1 (Wheel.fired w)

(* Callbacks scheduling already-due timers: the chain fires within the
   same advance, after the batch that spawned it. *)
let test_wheel_zero_delay_chain () =
  let w = Wheel.create ~start:0. () in
  let depth = ref 0 in
  let rec chain n () =
    depth := n;
    if n < 5 then ignore (Wheel.schedule w ~at:0.01 (chain (n + 1)))
  in
  ignore (Wheel.schedule w ~at:0.01 (chain 1));
  let n = Wheel.advance w ~now:0.01 () in
  Alcotest.(check int) "whole chain fired in one advance" 5 n;
  Alcotest.(check int) "chain depth" 5 !depth

(* Deadlines already in the past fire on the next advance. *)
let test_wheel_past_deadline () =
  let w = Wheel.create ~start:100. () in
  let hit = ref false in
  ignore (Wheel.schedule w ~at:1.0 (fun () -> hit := true));
  ignore (Wheel.advance w ~now:100.0 ());
  Alcotest.(check bool) "past deadline fired" true !hit

let test_wheel_nan_deadline_rejected () =
  let w = Wheel.create ~start:0. () in
  Alcotest.check_raises "NaN deadline" (Invalid_argument "Wheel.schedule: NaN deadline")
    (fun () -> ignore (Wheel.schedule w ~at:Float.nan (fun () -> ())))

(* ------------------------------------------------------------------ *)
(* Turbo loop                                                          *)
(* ------------------------------------------------------------------ *)

let test_loop_turbo_until () =
  let loop = Loop.create () in
  let times = ref [] in
  ignore (Loop.after loop ~delay:0.5 (fun () -> times := Loop.now loop :: !times));
  ignore (Loop.at loop ~time:1.25 (fun () -> times := Loop.now loop :: !times));
  ignore (Loop.at loop ~time:99.0 (fun () -> Alcotest.fail "beyond until"));
  Loop.run ~until:2.0 loop;
  Alcotest.(check (list (float 1e-9))) "virtual clock jumped to deadlines"
    [ 0.5; 1.25 ] (List.rev !times);
  Alcotest.(check (float 1e-9)) "clock lands exactly on until" 2.0 (Loop.now loop);
  Alcotest.(check int) "one still pending" 1 (Loop.timers_pending loop)

(* Non-finite / negative delays are clamped to zero and counted instead
   of corrupting the wheel. *)
let test_loop_bad_delay () =
  let loop = Loop.create () in
  let hits = ref 0 in
  ignore (Loop.after loop ~delay:Float.nan (fun () -> incr hits));
  ignore (Loop.after loop ~delay:(-3.) (fun () -> incr hits));
  ignore (Loop.after loop ~delay:Float.infinity (fun () -> incr hits));
  Loop.run loop;
  Alcotest.(check int) "all clamped to immediate" 3 !hits;
  Alcotest.(check int) "anomalies counted" 3 (Loop.clock_anomalies loop)

(* ------------------------------------------------------------------ *)
(* Clock hardening (ISSUE 7 satellite: non-monotonic now, late timers)  *)
(* ------------------------------------------------------------------ *)

let test_monotonic_clock_clamps () =
  let samples = ref [ 1.0; 2.0; 1.5; 3.0 ] in
  let raw () =
    match !samples with
    | [] -> Alcotest.fail "raw clock exhausted"
    | x :: rest ->
        samples := rest;
        x
  in
  let backsteps = ref [] in
  let clock =
    Tfmcc_core.Env.monotonic_clock ~on_anomaly:(fun d -> backsteps := d :: !backsteps) raw
  in
  let out = List.init 4 (fun _ -> clock ()) in
  Alcotest.(check (list (float 1e-9))) "backward sample clamped to high-water"
    [ 1.0; 2.0; 2.0; 3.0 ] out;
  Alcotest.(check (list (float 1e-9))) "one anomaly, magnitude of the step" [ 0.5 ]
    !backsteps

let test_draw_clamped () =
  let anomalies = ref 0 in
  let on_anomaly () = incr anomalies in
  let draw t_max =
    Tfmcc_core.Feedback_timer.draw_clamped (Stats.Rng.create 5)
      ~on_anomaly ~bias:cfg.Tfmcc_core.Config.bias ~t_max ~delta:0.5
      ~n_estimate:10_000 ~ratio:0.8
  in
  List.iter
    (fun bad ->
      let t = draw bad in
      Alcotest.(check bool)
        (Printf.sprintf "finite non-negative for t_max=%h" bad)
        true
        (Float.is_finite t && t >= 0.))
    [ Float.nan; 0.; -1.; Float.neg_infinity ];
  Alcotest.(check int) "each bad t_max counted" 4 !anomalies;
  (* On valid input it is draw itself, RNG consumption included. *)
  let a = draw 2.0 in
  let b =
    Tfmcc_core.Feedback_timer.draw (Stats.Rng.create 5)
      ~bias:cfg.Tfmcc_core.Config.bias ~t_max:2.0 ~delta:0.5
      ~n_estimate:10_000 ~ratio:0.8
  in
  Alcotest.(check (float 0.)) "identical to draw on valid input" b a;
  Alcotest.(check int) "no anomaly on valid input" 4 !anomalies

let test_round_duration_clamped () =
  let anomalies = ref 0 in
  let on_anomaly () = incr anomalies in
  List.iter
    (fun (max_rtt, rate) ->
      let t =
        Tfmcc_core.Feedback_timer.round_duration_clamped ~on_anomaly ~cfg ~max_rtt ~rate
      in
      Alcotest.(check bool) "finite positive" true (Float.is_finite t && t > 0.))
    [ (Float.nan, 1000.); (0., 1000.); (0.1, Float.nan); (0.1, 0.); (-1., -1.) ];
  Alcotest.(check bool) "anomalies counted" true (!anomalies >= 5);
  let clean = ref 0 in
  let t =
    Tfmcc_core.Feedback_timer.round_duration_clamped
      ~on_anomaly:(fun () -> incr clean)
      ~cfg ~max_rtt:0.1 ~rate:10_000.
  in
  Alcotest.(check (float 0.)) "matches round_duration on valid input"
    (Tfmcc_core.Feedback_timer.round_duration ~cfg ~max_rtt:0.1 ~rate:10_000.)
    t;
  Alcotest.(check int) "no anomaly on valid input" 0 !clean

let test_rtt_estimator_nonmonotonic_now () =
  let e = Tfmcc_core.Rtt_estimator.create ~cfg ~clock_offset:0. () in
  Tfmcc_core.Rtt_estimator.on_echo e ~local_now:10.0 ~rx_ts:9.9 ~echo_delay:0.02
    ~pkt_ts:9.95 ~is_clr:true;
  Alcotest.(check int) "no anomaly yet" 0 (Tfmcc_core.Rtt_estimator.clock_anomalies e);
  (* The local clock steps backwards: the sample is clamped to the
     high-water mark, counted, and the estimate stays finite. *)
  Tfmcc_core.Rtt_estimator.on_data e ~local_now:5.0 ~pkt_ts:9.96;
  Alcotest.(check bool) "backstep counted" true
    (Tfmcc_core.Rtt_estimator.clock_anomalies e >= 1);
  let est = Tfmcc_core.Rtt_estimator.estimate e in
  Alcotest.(check bool) "estimate still sane" true (Float.is_finite est && est > 0.)

let test_rtt_estimator_bad_echo () =
  let e = Tfmcc_core.Rtt_estimator.create ~cfg ~clock_offset:0. () in
  (* Raw sample local_now - rx_ts - echo_delay is negative: clamped to
     the 1 ms floor, not discarded (the loop is proven closed). *)
  Tfmcc_core.Rtt_estimator.on_echo e ~local_now:1.0 ~rx_ts:2.0 ~echo_delay:0.
    ~pkt_ts:0.99 ~is_clr:true;
  Alcotest.(check int) "rejection counted" 1 (Tfmcc_core.Rtt_estimator.rejections e);
  Alcotest.(check bool) "measurement still recorded" true
    (Tfmcc_core.Rtt_estimator.has_measurement e);
  let est = Tfmcc_core.Rtt_estimator.estimate e in
  Alcotest.(check bool) "estimate finite positive" true (Float.is_finite est && est > 0.);
  (* NaN raw sample: dropped entirely. *)
  let e2 = Tfmcc_core.Rtt_estimator.create ~cfg ~clock_offset:0. () in
  Tfmcc_core.Rtt_estimator.on_echo e2 ~local_now:1.0 ~rx_ts:0.9 ~echo_delay:Float.nan
    ~pkt_ts:0.95 ~is_clr:true;
  Alcotest.(check int) "NaN rejected" 1 (Tfmcc_core.Rtt_estimator.rejections e2);
  Alcotest.(check bool) "NaN sample not a measurement" false
    (Tfmcc_core.Rtt_estimator.has_measurement e2);
  Alcotest.(check (float 1e-9)) "estimate untouched"
    cfg.Tfmcc_core.Config.rtt_initial
    (Tfmcc_core.Rtt_estimator.estimate e2)

(* ------------------------------------------------------------------ *)
(* Time-translation invariance (the satellite property)                 *)
(* ------------------------------------------------------------------ *)

let harness_at ~seed ~epoch =
  Harness.run
    { Harness.default with epoch; seed; sessions = 3; duration = 6. }

(* Shifting every absolute time by +1e9 s must leave the protocol's
   decisions untouched: packet/report/frame/timer counts identical,
   rates equal to double-precision quantization of the RTT terms
   (~1.2e-7 s resolution at 1e9). *)
let prop_time_translation =
  QCheck.Test.make ~name:"epoch shift +1e9 s leaves rate decisions unchanged"
    ~count:6
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let a = harness_at ~seed ~epoch:0. in
      let b = harness_at ~seed ~epoch:1e9 in
      if a.Harness.frames_sent <> b.Harness.frames_sent then
        QCheck.Test.fail_reportf "frames sent: %d vs %d" a.Harness.frames_sent
          b.Harness.frames_sent;
      if a.Harness.timers_fired <> b.Harness.timers_fired then
        QCheck.Test.fail_reportf "timers fired: %d vs %d" a.Harness.timers_fired
          b.Harness.timers_fired;
      List.iter2
        (fun (x : Harness.session_stat) (y : Harness.session_stat) ->
          if x.packets <> y.packets then
            QCheck.Test.fail_reportf "session %d packets: %d vs %d" x.session
              x.packets y.packets;
          if x.reports <> y.reports then
            QCheck.Test.fail_reportf "session %d reports: %d vs %d" x.session
              x.reports y.reports;
          if x.starved <> y.starved then
            QCheck.Test.fail_reportf "session %d starved flag differs" x.session;
          let rel =
            if x.rate = 0. then abs_float y.rate
            else abs_float (x.rate -. y.rate) /. abs_float x.rate
          in
          if rel > 1e-5 then
            QCheck.Test.fail_reportf "session %d rate: %.6f vs %.6f (rel %.3e)"
              x.session x.rate y.rate rel)
        a.Harness.stats b.Harness.stats;
      true)

(* Same config, same seed, run twice: bit-identical outcomes (the turbo
   loop is deterministic end to end). *)
let test_turbo_determinism () =
  let a = harness_at ~seed:42 ~epoch:0. in
  let b = harness_at ~seed:42 ~epoch:0. in
  Alcotest.(check int) "frames" a.Harness.frames_sent b.Harness.frames_sent;
  List.iter2
    (fun (x : Harness.session_stat) (y : Harness.session_stat) ->
      Alcotest.(check int) "packets" x.packets y.packets;
      Alcotest.(check (float 0.)) "rate bit-identical" x.rate y.rate;
      Alcotest.(check (float 0.)) "rtt bit-identical" x.rtt y.rtt)
    a.Harness.stats b.Harness.stats

(* ------------------------------------------------------------------ *)
(* Loopback transport                                                  *)
(* ------------------------------------------------------------------ *)

let test_loopback_convergence () =
  let r = Harness.run Harness.default in
  Alcotest.(check int) "no decode errors" 0 r.Harness.decode_errors;
  Alcotest.(check int) "no encode drops" 0 r.Harness.encode_drops;
  Alcotest.(check int) "no clock anomalies in turbo" 0 r.Harness.clock_anomalies;
  Alcotest.(check bool) "frames flowed" true (r.Harness.frames_delivered > 1000);
  Alcotest.(check bool) "losses occurred" true (r.Harness.frames_lost > 0);
  Alcotest.(check (float 1e-9)) "ran to the end" 8.0 r.Harness.end_time;
  List.iter
    (fun (s : Harness.session_stat) ->
      Alcotest.(check bool)
        (Printf.sprintf "session %d converged" s.session)
        true
        (Harness.converged s ~cfg);
      Alcotest.(check bool)
        (Printf.sprintf "session %d measured RTT" s.session)
        true s.rtt_measured)
    r.Harness.stats

(* The warmup field must hold the loss dice: a lossless-warmup run and
   a loss-from-t0 run at the same seed diverge only after warmup. *)
let test_loopback_warmup_holds_loss () =
  let run warmup =
    Harness.run
      {
        Harness.default with
        sessions = 1;
        duration = 1.5;
        impair = Net.impairment ~loss:0.5 ~delay:0.01 ~warmup ();
      }
  in
  let held = run 2.0 in
  let unleashed = run 0.0 in
  Alcotest.(check int) "no losses while the dice are held" 0 held.Harness.frames_lost;
  Alcotest.(check bool) "losses from t0 otherwise" true
    (unleashed.Harness.frames_lost > 0)

(* ------------------------------------------------------------------ *)
(* Realtime mode                                                       *)
(* ------------------------------------------------------------------ *)

let test_realtime_loopback_smoke () =
  let r =
    Harness.run
      { Harness.default with sessions = 2; duration = 1.0; mode = Loop.Realtime }
  in
  Alcotest.(check bool) "took about a wall second" true (r.Harness.wall_s >= 0.8);
  Alcotest.(check bool) "frames flowed" true (r.Harness.frames_delivered > 0);
  Alcotest.(check int) "no decode errors" 0 r.Harness.decode_errors

(* A callback that blocks the loop makes the next timer tardy beyond
   the tolerance: counted as a clock anomaly, not dropped. *)
let test_realtime_late_timer_counted () =
  let loop = Loop.create ~mode:Loop.Realtime ~late_tolerance_s:0.02 () in
  let fired = ref 0 in
  ignore (Loop.after loop ~delay:0.005 (fun () -> Unix.sleepf 0.08));
  ignore (Loop.after loop ~delay:0.01 (fun () -> incr fired));
  Loop.run loop;
  Alcotest.(check int) "late timer still fired" 1 !fired;
  Alcotest.(check bool) "tardiness counted" true (Loop.clock_anomalies loop >= 1)

let test_udp_smoke () =
  match
    Harness.run
      {
        Harness.default with
        sessions = 1;
        duration = 0.8;
        mode = Loop.Realtime;
        transport = Harness.Udp_sockets;
      }
  with
  | exception Unix.Unix_error (e, fn, _) ->
      (* Sandboxes without loopback sockets: report, don't fail. *)
      Printf.printf "udp smoke skipped: %s in %s\n%!" (Unix.error_message e) fn
  | r ->
      Alcotest.(check bool) "frames crossed the kernel" true
        (r.Harness.frames_delivered > 0);
      Alcotest.(check int) "no decode errors" 0 r.Harness.decode_errors;
      Alcotest.(check int) "no send errors" 0 r.Harness.encode_drops

(* Turbo mode must refuse kernel sockets: the virtual clock outruns
   any real fd. *)
let test_udp_rejects_turbo () =
  let loop = Loop.create ~mode:Loop.Turbo () in
  Alcotest.check_raises "turbo UDP rejected"
    (Invalid_argument "Udp.create: needs a realtime loop (virtual time outruns sockets)") (fun () ->
      ignore (Udp.create loop ()))

let () =
  Alcotest.run "rt"
    [
      ( "wheel",
        [
          Alcotest.test_case "deadline order with ties" `Quick test_wheel_order;
          Alcotest.test_case "cancel" `Quick test_wheel_cancel;
          Alcotest.test_case "overflow migration" `Quick test_wheel_overflow_migration;
          Alcotest.test_case "cancel in overflow" `Quick test_wheel_cancel_overflow;
          Alcotest.test_case "zero-delay chain" `Quick test_wheel_zero_delay_chain;
          Alcotest.test_case "past deadline" `Quick test_wheel_past_deadline;
          Alcotest.test_case "NaN deadline rejected" `Quick
            test_wheel_nan_deadline_rejected;
        ] );
      ( "loop",
        [
          Alcotest.test_case "turbo run until" `Quick test_loop_turbo_until;
          Alcotest.test_case "bad delays clamped" `Quick test_loop_bad_delay;
        ] );
      ( "clock hardening",
        [
          Alcotest.test_case "monotonic clock clamps" `Quick test_monotonic_clock_clamps;
          Alcotest.test_case "feedback draw clamped" `Quick test_draw_clamped;
          Alcotest.test_case "round duration clamped" `Quick
            test_round_duration_clamped;
          Alcotest.test_case "rtt estimator non-monotonic now" `Quick
            test_rtt_estimator_nonmonotonic_now;
          Alcotest.test_case "rtt estimator bad echo samples" `Quick
            test_rtt_estimator_bad_echo;
        ] );
      ( "time translation",
        [
          QCheck_alcotest.to_alcotest prop_time_translation;
          Alcotest.test_case "turbo determinism" `Quick test_turbo_determinism;
        ] );
      ( "loopback",
        [
          Alcotest.test_case "convergence smoke" `Quick test_loopback_convergence;
          Alcotest.test_case "warmup holds loss" `Quick test_loopback_warmup_holds_loss;
        ] );
      ( "realtime",
        [
          Alcotest.test_case "loopback smoke" `Quick test_realtime_loopback_smoke;
          Alcotest.test_case "late timer counted" `Quick
            test_realtime_late_timer_counted;
          Alcotest.test_case "udp smoke" `Quick test_udp_smoke;
          Alcotest.test_case "udp rejects turbo" `Quick test_udp_rejects_turbo;
        ] );
    ]
