(* Tests for the runtime invariant checker, the differential oracles and
   the digest machinery (lib/check, DESIGN.md §11). *)

module I = Check.Invariant

let ok_counts : I.link_counts =
  {
    offered = 100;
    drop_down = 2;
    drop_ttl = 1;
    drop_queue = 7;
    queued = 3;
    on_wire = 1;
    sent = 86;
    drop_loss = 4;
    in_flight = 2;
    delivered = 80;
  }

let check_ok name = function
  | Ok () -> ()
  | Error d -> Alcotest.fail (Printf.sprintf "%s: unexpected violation: %s" name d)

let check_err name = function
  | Ok () -> Alcotest.fail (Printf.sprintf "%s: violation not detected" name)
  | Error _ -> ()

(* ------------------------------------------------------- pure predicates *)

let test_link_conservation () =
  check_ok "balanced ledger" (I.check_link_conservation ok_counts);
  check_err "offered leak"
    (I.check_link_conservation { ok_counts with offered = 101 });
  check_err "sent-side leak"
    (I.check_link_conservation { ok_counts with delivered = 79 });
  check_ok "all zero"
    (I.check_link_conservation
       {
         offered = 0;
         drop_down = 0;
         drop_ttl = 0;
         drop_queue = 0;
         queued = 0;
         on_wire = 0;
         sent = 0;
         drop_loss = 0;
         in_flight = 0;
         delivered = 0;
       })

let test_loss_event_rate () =
  check_ok "zero" (I.check_loss_event_rate 0.);
  check_ok "one" (I.check_loss_event_rate 1.);
  check_ok "typical" (I.check_loss_event_rate 0.013);
  check_err "negative" (I.check_loss_event_rate (-0.01));
  check_err "above one" (I.check_loss_event_rate 1.01);
  check_err "NaN" (I.check_loss_event_rate Float.nan)

let test_rtt () =
  check_ok "typical" (I.check_rtt 0.06);
  check_err "zero" (I.check_rtt 0.);
  check_err "negative" (I.check_rtt (-0.1));
  check_err "infinite" (I.check_rtt Float.infinity);
  check_err "NaN" (I.check_rtt Float.nan)

let test_x_recv () =
  check_ok "zero" (I.check_x_recv 0.);
  check_ok "typical" (I.check_x_recv 125_000.);
  check_err "negative" (I.check_x_recv (-1.));
  check_err "infinite" (I.check_x_recv Float.infinity);
  check_err "NaN" (I.check_x_recv Float.nan)

let test_rate_bounds () =
  let chk = I.check_rate_bounds ~x_min:15.625 ~x_max:1e6 in
  check_ok "floor" (chk 15.625);
  check_ok "cap" (chk 1e6);
  check_ok "mid" (chk 50_000.);
  check_err "below floor" (chk 15.);
  check_err "above cap" (chk 1.1e6);
  check_err "NaN" (chk Float.nan);
  check_err "infinite" (chk Float.infinity)

let test_rate_ceiling () =
  let chk = I.check_rate_ceiling ~x_min:15.625 in
  check_ok "at the CLR rate"
    (chk ~in_slowstart:false ~starved:false ~clr_rate:(Some 40_000.)
       ~rate:40_000.);
  check_ok "below the CLR rate"
    (chk ~in_slowstart:false ~starved:false ~clr_rate:(Some 40_000.)
       ~rate:30_000.);
  check_err "above the CLR rate"
    (chk ~in_slowstart:false ~starved:false ~clr_rate:(Some 40_000.)
       ~rate:40_001.);
  check_ok "floor dominates a tiny CLR rate"
    (chk ~in_slowstart:false ~starved:false ~clr_rate:(Some 1.) ~rate:15.625);
  check_ok "vacuous in slowstart"
    (chk ~in_slowstart:true ~starved:false ~clr_rate:(Some 40_000.)
       ~rate:90_000.);
  check_ok "vacuous when starved"
    (chk ~in_slowstart:false ~starved:true ~clr_rate:(Some 40_000.)
       ~rate:90_000.);
  check_ok "vacuous without CLR"
    (chk ~in_slowstart:false ~starved:false ~clr_rate:None ~rate:90_000.)

let test_clr_defined () =
  check_ok "CLR present"
    (I.check_clr_defined ~round:10 ~reports:50 ~clr_changes:1 ~starved:false
       ~has_clr:true);
  check_ok "early rounds"
    (I.check_clr_defined ~round:2 ~reports:3 ~clr_changes:0 ~starved:false
       ~has_clr:false);
  check_ok "no reports yet"
    (I.check_clr_defined ~round:10 ~reports:0 ~clr_changes:0 ~starved:false
       ~has_clr:false);
  check_ok "starved senders excused"
    (I.check_clr_defined ~round:10 ~reports:50 ~clr_changes:0 ~starved:true
       ~has_clr:false);
  check_ok "had a CLR once"
    (I.check_clr_defined ~round:10 ~reports:50 ~clr_changes:2 ~starved:false
       ~has_clr:false);
  check_err "reports but never a CLR"
    (I.check_clr_defined ~round:10 ~reports:50 ~clr_changes:0 ~starved:false
       ~has_clr:false)

let test_time_monotonic () =
  check_ok "forward" (I.check_time_monotonic ~last:1.0 ~now:1.5);
  check_ok "equal" (I.check_time_monotonic ~last:1.0 ~now:1.0);
  check_err "backwards" (I.check_time_monotonic ~last:1.0 ~now:0.999)

(* ------------------------------------------------------ checker plumbing *)

let test_checker_counts_violations () =
  let sink = Obs.Sink.create () in
  let engine = Netsim.Engine.create ~obs:sink () in
  let t = I.create ~interval:0.1 () in
  let fail_after = ref 0. in
  I.watch_custom t engine ~id:"test_probe" (fun () ->
      if Netsim.Engine.now engine > !fail_after then Error "synthetic" else Ok ());
  fail_after := 0.55;
  ignore (Netsim.Engine.at engine ~time:1.0 (fun () -> ()));
  Netsim.Engine.run ~until:1.0 engine;
  (* Samples at 0.1 .. 1.0; violations from the first sample past 0.55. *)
  let v = I.violations t in
  Alcotest.(check bool) "violations counted"
    true
    (v >= 4 && v <= 6);
  Alcotest.(check int) "metric matches" v
    (Obs.Metrics.counter_value sink.Obs.Sink.metrics
       ~labels:[ ("invariant", "test_probe") ]
       "check_violations_total");
  Alcotest.(check bool) "samples counted" true
    (Obs.Metrics.counter_value sink.Obs.Sink.metrics "check_samples_total" >= 9);
  Alcotest.(check int) "journal notes" v
    (Obs.Journal.count sink.Obs.Sink.journal ~component:"check"
       ~min_severity:Obs.Journal.Error ())

let test_checker_strict_aborts_with_window () =
  let sink = Obs.Sink.create () in
  let engine = Netsim.Engine.create ~obs:sink () in
  Obs.Sink.event sink ~time:0. (Obs.Journal.scope "test")
    (Obs.Journal.Note "context before the violation");
  let t = I.create ~strict:true ~interval:0.1 () in
  I.watch_custom t engine ~id:"boom" (fun () -> Error "synthetic failure");
  ignore (Netsim.Engine.at engine ~time:1.0 (fun () -> ()));
  match Netsim.Engine.run ~until:1.0 engine with
  | () -> Alcotest.fail "strict checker did not abort"
  | exception I.Violation msg ->
      let contains needle =
        let rec go i =
          i + String.length needle <= String.length msg
          && (String.sub msg i (String.length needle) = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "names the invariant" true (contains "boom");
      Alcotest.(check bool) "carries the detail" true
        (contains "synthetic failure");
      Alcotest.(check bool) "attaches the journal window" true
        (contains "journal window");
      Alcotest.(check bool) "window holds prior context" true
        (contains "context before the violation")

let test_checker_clean_run_no_violations () =
  (* A healthy dumbbell under the full watch set: engine, bottleneck
     link, TFMCC session.  Nothing may fire. *)
  let t = I.create ~interval:0.25 () in
  let sink = Obs.Sink.create () in
  Experiments.Scenario.with_obs sink (fun () ->
      Experiments.Scenario.with_checks t (fun () ->
          let d =
            Experiments.Scenario.dumbbell ~bottleneck_bps:1e6 ~delay_s:0.04
              ~n_tfmcc_rx:3 ~n_tcp:1 ()
          in
          Tfmcc_core.Session.start d.Experiments.Scenario.session ~at:0.;
          Experiments.Scenario.run_until d.Experiments.Scenario.sc 30.));
  Alcotest.(check int) "no violations" 0 (I.violations t);
  Alcotest.(check bool) "checker sampled" true
    (Obs.Metrics.counter_value sink.Obs.Sink.metrics "check_samples_total" > 0)

let test_link_probe_detects_tampering () =
  (* Force a real violation through the public watch_link path by
     tampering with a link's counters... we can't — they're abstract.
     Instead check that a real run keeps the ledger balanced while a
     synthetic miscount trips the pure predicate (covered above), and
     that watch_link samples cleanly on live traffic. *)
  let t = I.create ~interval:0.1 () in
  let sc = Experiments.Scenario.base () in
  let a = Netsim.Topology.add_node sc.Experiments.Scenario.topo in
  let b = Netsim.Topology.add_node sc.Experiments.Scenario.topo in
  let ab, _ =
    Netsim.Topology.connect sc.Experiments.Scenario.topo ~queue_capacity:5
      ~bandwidth_bps:80_000. ~delay_s:0.01 a b
  in
  I.watch_link t sc.Experiments.Scenario.engine ~name:"ab" ab;
  (* Offer 3x the line rate so queue drops occur. *)
  let src =
    Netsim.Traffic.cbr sc.Experiments.Scenario.topo ~flow:9 ~src:a ~dst:b
      ~rate_bps:240_000. ~packet_size:500 ()
  in
  Netsim.Traffic.start src ~at:0.;
  Experiments.Scenario.run_until sc 6.;
  Alcotest.(check int) "ledger balanced under overload" 0 (I.violations t);
  Alcotest.(check bool) "queue actually dropped" true
    (Netsim.Link.drops_queue ab > 0)

(* ---------------------------------------------------------------- digest *)

let test_digest_known_vectors () =
  (* Published FNV-1a 64-bit vectors. *)
  Alcotest.(check string) "empty" "cbf29ce484222325" (Check.Digest.of_string "");
  Alcotest.(check string) "'a'" "af63dc4c8601ec8c" (Check.Digest.of_string "a");
  Alcotest.(check string) "'foobar'" "85944171f73967e8"
    (Check.Digest.of_string "foobar")

let test_digest_streaming_equals_oneshot () =
  let d = Check.Digest.create () in
  Check.Digest.add_string d "foo";
  Check.Digest.add_char d 'b';
  Check.Digest.add_string d "ar";
  Alcotest.(check string) "chunking irrelevant"
    (Check.Digest.of_string "foobar") (Check.Digest.to_hex d)

(* ---------------------------------------------------------------- oracle *)

let test_oracle_arithmetic () =
  Alcotest.(check (float 1e-12)) "exact" 0.
    (Check.Oracle.relative_error ~expected:100. ~actual:100.);
  Alcotest.(check (float 1e-12)) "ten percent" 0.1
    (Check.Oracle.relative_error ~expected:100. ~actual:110.);
  Alcotest.(check (float 1e-12)) "both zero" 0.
    (Check.Oracle.relative_error ~expected:0. ~actual:0.);
  Alcotest.(check bool) "within" true
    (Check.Oracle.within_tolerance ~tolerance:0.1 ~expected:100. ~actual:105.);
  Alcotest.(check bool) "outside" false
    (Check.Oracle.within_tolerance ~tolerance:0.1 ~expected:100. ~actual:115.);
  Alcotest.(check bool) "NaN never within" false
    (Check.Oracle.within_tolerance ~tolerance:0.5 ~expected:Float.nan
       ~actual:100.)

let test_equation_gap () =
  let b = 1. and s = 1000 and rtt = 0.05 and p = 0.01 in
  let model = Tcp_model.Padhye.throughput ~b ~s ~rtt p in
  Alcotest.(check (float 1e-9)) "zero at the model rate" 0.
    (Check.Oracle.equation_gap ~b ~s ~rtt ~p ~rate:model);
  Alcotest.(check (float 1e-9)) "relative gap" 0.5
    (Check.Oracle.equation_gap ~b ~s ~rtt ~p ~rate:(1.5 *. model));
  Alcotest.(check bool) "degenerate p" true
    (Check.Oracle.equation_gap ~b ~s ~rtt ~p:0. ~rate:1e5 = infinity);
  Alcotest.(check bool) "degenerate rtt" true
    (Check.Oracle.equation_gap ~b ~s ~rtt:0. ~p ~rate:1e5 = infinity)

(* -------------------------------------------- differential oracles (sim) *)

let test_differential_tfmcc_vs_tfrc () =
  let c =
    Experiments.Chk01_differential.compare_pair ~bottleneck_bps:1e6
      ~delay_s:0.03 ~t_end:60. ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "TFMCC %.0f ~ TFRC %.0f kbit/s (gap %.1f%%)"
       c.Experiments.Chk01_differential.tfmcc_kbps
       c.Experiments.Chk01_differential.tfrc_kbps
       (100. *. c.Experiments.Chk01_differential.rel_err))
    true
    (c.Experiments.Chk01_differential.rel_err
    <= Experiments.Chk01_differential.tolerance)

let test_equation_oracle_converges () =
  let samples = Experiments.Chk02_equation.measure ~t_end:60. () in
  let mg = Experiments.Chk02_equation.mean_gap samples in
  Alcotest.(check bool)
    (Printf.sprintf "mean equation gap %.3f within %.2f" mg
       Experiments.Chk02_equation.tolerance)
    true
    (mg <= Experiments.Chk02_equation.tolerance)

let prop_differential_oracle_random_topologies =
  QCheck.Test.make ~name:"differential oracle over random dumbbells" ~count:3
    QCheck.(pair (int_range 5 30) (int_range 10 60))
    (fun (bw_hundred_kbit, delay_ms) ->
      let c =
        Experiments.Chk01_differential.compare_pair
          ~bottleneck_bps:(1e5 *. float_of_int bw_hundred_kbit)
          ~delay_s:(float_of_int delay_ms /. 1000.)
          ~t_end:45. ()
      in
      (* Looser than the curated cells: short runs on arbitrary
         geometry; the oracle still has to stay in the same regime. *)
      Float.is_finite c.Experiments.Chk01_differential.rel_err
      && c.Experiments.Chk01_differential.rel_err <= 0.5)

let prop_equation_oracle_random_loss =
  QCheck.Test.make ~name:"equation oracle over random loss patterns" ~count:3
    QCheck.(pair (int_range 5 40) (int_range 10 80))
    (fun (loss_permille, delay_ms) ->
      let samples =
        Experiments.Chk02_equation.measure
          ~loss:(float_of_int loss_permille /. 1000.)
          ~delay:(float_of_int delay_ms /. 1000.)
          ~t_end:60. ()
      in
      let mg = Experiments.Chk02_equation.mean_gap samples in
      Float.is_finite mg && mg <= 0.5)

(* ------------------------------------------- feedback timer memo parity *)

let test_expected_messages_parity () =
  let module F = Tfmcc_core.Feedback_timer in
  let cases =
    [
      (* n, n_estimate, delay, t_suppress *)
      (1, 10_000, 0.05, 2.0);
      (1, 1, 0., 1.0);
      (10, 10_000, 0., 2.0) (* delay = 0 *);
      (10, 10_000, 2.0, 2.0) (* delay = T: no suppression at all *);
      (10, 10_000, 5.0, 2.0) (* delay > T *);
      (10_000, 1_000_000, 0.25, 2.0) (* huge N *);
      (500, 2, 0.1, 1.5) (* tiny estimate *);
    ]
  in
  List.iter
    (fun (n, n_estimate, delay, t_suppress) ->
      let label =
        Printf.sprintf "n=%d N=%d delay=%g T'=%g" n n_estimate delay t_suppress
      in
      let reference = F.expected_messages_uncached ~n ~n_estimate ~delay ~t_suppress in
      let first = F.expected_messages ~n ~n_estimate ~delay ~t_suppress in
      let second = F.expected_messages ~n ~n_estimate ~delay ~t_suppress in
      Alcotest.(check (float 0.)) (label ^ " (cold)") reference first;
      Alcotest.(check (float 0.)) (label ^ " (memoized)") reference second)
    cases

let () =
  Alcotest.run "check"
    [
      ( "predicates",
        [
          Alcotest.test_case "link conservation" `Quick test_link_conservation;
          Alcotest.test_case "loss event rate" `Quick test_loss_event_rate;
          Alcotest.test_case "rtt" `Quick test_rtt;
          Alcotest.test_case "x_recv" `Quick test_x_recv;
          Alcotest.test_case "rate bounds" `Quick test_rate_bounds;
          Alcotest.test_case "rate ceiling" `Quick test_rate_ceiling;
          Alcotest.test_case "clr defined" `Quick test_clr_defined;
          Alcotest.test_case "time monotonic" `Quick test_time_monotonic;
        ] );
      ( "checker",
        [
          Alcotest.test_case "counts violations" `Quick test_checker_counts_violations;
          Alcotest.test_case "strict aborts with journal window" `Quick
            test_checker_strict_aborts_with_window;
          Alcotest.test_case "clean dumbbell run" `Quick
            test_checker_clean_run_no_violations;
          Alcotest.test_case "link probe under overload" `Quick
            test_link_probe_detects_tampering;
        ] );
      ( "digest",
        [
          Alcotest.test_case "FNV-1a vectors" `Quick test_digest_known_vectors;
          Alcotest.test_case "streaming = one-shot" `Quick
            test_digest_streaming_equals_oneshot;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "arithmetic" `Quick test_oracle_arithmetic;
          Alcotest.test_case "equation gap" `Quick test_equation_gap;
          Alcotest.test_case "TFMCC(1rx) ~ TFRC" `Slow test_differential_tfmcc_vs_tfrc;
          Alcotest.test_case "equation oracle converges" `Slow
            test_equation_oracle_converges;
        ] );
      ( "oracle properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_differential_oracle_random_topologies;
            prop_equation_oracle_random_loss;
          ] );
      ( "feedback timer",
        [
          Alcotest.test_case "memo = uncached on boundary params" `Quick
            test_expected_messages_parity;
        ] );
    ]
