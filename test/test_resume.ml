(* Checkpoint/resume (DESIGN.md §12): a sweep killed mid-run (simulated
   deterministically with a task budget) and resumed from its checkpoint
   directory must render byte-identically to an uninterrupted run, with
   only the missing tasks re-executed.  Also covers checkpoint integrity:
   corrupted or misnamed files degrade to "missing". *)

let quick = Experiments.Scenario.Quick

let find id =
  match Experiments.Registry.find id with
  | Some e -> e
  | None -> Alcotest.failf "registry should resolve %s" id

let experiments = List.map find [ "fig01"; "fig04" ]

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tfmcc_resume_%d_%d" (Unix.getpid ()) !n)
    in
    (* stale leftovers from a killed earlier run would defeat the test *)
    if Sys.file_exists dir then
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
    dir

let supervised ?policy ?(seeds = 2) () =
  let policy =
    match policy with
    | Some p -> p
    | None -> Experiments.Sweep.default_policy
  in
  Experiments.Sweep.run_supervised ~experiments ~policy ~jobs:1 ~mode:quick
    ~seed:42 ~seeds ()

let render ?(seeds = 2) (r : Experiments.Sweep.report) =
  Experiments.Sweep.render ~seeds r.Experiments.Sweep.results

let check_identical ~what expected actual =
  match Check.Oracle.first_divergence ~expected ~actual with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s diverged: %s" what msg

(* --------------------------------------------------------- round trip *)

let test_interrupt_and_resume () =
  let uninterrupted = render (supervised ()) in
  let dir = fresh_dir () in
  let base = Experiments.Sweep.default_policy in
  (* "kill" after 2 of 4 tasks: the budget skips the rest, exit code 3 *)
  let partial =
    supervised
      ~policy:{ base with checkpoint = Some dir; budget = Some 2 }
      ()
  in
  Alcotest.(check int) "partial executed" 2 partial.executed;
  Alcotest.(check int) "partial skipped" 2 partial.skipped;
  Alcotest.(check int) "partial exit code" 3
    (Experiments.Sweep.exit_code partial);
  (* resume: only the missing tasks run, output converges byte-exactly *)
  let resumed =
    supervised
      ~policy:{ base with checkpoint = Some dir; resume = true }
      ()
  in
  Alcotest.(check int) "resumed from disk" 2 resumed.resumed;
  Alcotest.(check int) "re-executed" 2 resumed.executed;
  Alcotest.(check int) "resume exit code" 0
    (Experiments.Sweep.exit_code resumed);
  check_identical ~what:"resumed vs uninterrupted" uninterrupted
    (render resumed);
  (* a second resume runs nothing at all and still matches *)
  let settled =
    supervised
      ~policy:{ base with checkpoint = Some dir; resume = true }
      ()
  in
  Alcotest.(check int) "everything from disk" 4 settled.resumed;
  Alcotest.(check int) "nothing re-executed" 0 settled.executed;
  check_identical ~what:"settled vs uninterrupted" uninterrupted
    (render settled)

let test_corrupted_checkpoint_reruns () =
  let uninterrupted = render (supervised ()) in
  let dir = fresh_dir () in
  let base = Experiments.Sweep.default_policy in
  ignore (supervised ~policy:{ base with checkpoint = Some dir } ());
  (* truncate one checkpoint and scribble over another: both must
     degrade to "missing" and re-run, not crash or corrupt the output *)
  let f1 = Experiments.Checkpoint.task_file ~dir ~experiment:"fig01" ~seed:42 in
  let oc = open_out_bin f1 in
  close_out oc;
  let f2 = Experiments.Checkpoint.task_file ~dir ~experiment:"fig04" ~seed:43 in
  let oc = open_out_bin f2 in
  output_string oc "not a checkpoint";
  close_out oc;
  let resumed =
    supervised ~policy:{ base with checkpoint = Some dir; resume = true } ()
  in
  Alcotest.(check int) "intact tasks resumed" 2 resumed.resumed;
  Alcotest.(check int) "corrupted tasks re-run" 2 resumed.executed;
  check_identical ~what:"resume after corruption" uninterrupted
    (render resumed)

(* ------------------------------------------------------- module level *)

let test_checkpoint_roundtrip () =
  let dir = fresh_dir () in
  let series =
    [
      Experiments.Series.make ~title:"t" ~xlabel:"x" ~ylabels:[ "y" ]
        ~notes:[ "n" ]
        [ (0., [ 1.5 ]); (1., [ Float.nan ]) ];
    ]
  in
  Experiments.Checkpoint.save ~dir
    (Experiments.Checkpoint.make ~experiment:"fig99" ~seed:7 series);
  (match Experiments.Checkpoint.load ~dir ~experiment:"fig99" ~seed:7 with
  | None -> Alcotest.fail "round trip should load"
  | Some e ->
      Alcotest.(check string) "experiment" "fig99" e.c_experiment;
      Alcotest.(check int) "seed" 7 e.c_seed;
      Alcotest.(check string) "series survive byte-exactly"
        (Experiments.Series.to_csv (List.hd series))
        (Experiments.Series.to_csv (List.hd e.c_series)));
  (* identity is part of the integrity check *)
  Alcotest.(check bool) "wrong seed is a miss" true
    (Experiments.Checkpoint.load ~dir ~experiment:"fig99" ~seed:8 = None);
  Alcotest.(check bool) "wrong experiment is a miss" true
    (Experiments.Checkpoint.load ~dir ~experiment:"fig98" ~seed:7 = None)

let () =
  Alcotest.run "resume"
    [
      ( "resume",
        [
          Alcotest.test_case "interrupt + resume byte-identical" `Quick
            test_interrupt_and_resume;
          Alcotest.test_case "corrupted checkpoints re-run" `Quick
            test_corrupted_checkpoint_reruns;
          Alcotest.test_case "checkpoint round trip" `Quick
            test_checkpoint_roundtrip;
        ] );
    ]
