(* Integration tests: the full TFMCC protocol stack over the packet
   simulator — convergence, CLR dynamics, fairness, feedback scaling. *)

let cfg = Tfmcc_core.Config.default

(* A star with per-receiver links; returns the pieces used by most
   tests. *)
let make_star ?(seed = 21) ?(cfg = cfg) ?(link_bps = 1e6) ?(delays = [| 0.02 |])
    ?losses () =
  let st =
    Experiments.Scenario.star ~seed ~cfg ~link_bps ~link_delays:delays
      ?link_losses:losses ()
  in
  (st.Experiments.Scenario.s_sc, st)

let run sc t = Experiments.Scenario.run_until sc t

let test_converges_to_bottleneck () =
  let sc, st = make_star ~link_bps:1e6 ~delays:[| 0.02 |] () in
  Tfmcc_core.Session.start st.Experiments.Scenario.s_session ~at:0.;
  run sc 60.;
  let kbps =
    Experiments.Scenario.mean_throughput_kbps sc ~flow:Experiments.Scenario.tfmcc_flow
      ~t_start:20. ~t_end:60.
  in
  Alcotest.(check bool)
    (Printf.sprintf "utilization 70-105%% (got %.0f kbit/s)" kbps)
    true
    (kbps > 700. && kbps < 1050.)

let test_slowstart_overshoot_bounded () =
  let sc, st = make_star ~link_bps:1e6 ~delays:[| 0.02 |] () in
  let snd = Tfmcc_core.Session.sender st.Experiments.Scenario.s_session in
  Tfmcc_core.Session.start st.Experiments.Scenario.s_session ~at:0.;
  let peak = ref 0. in
  let rec poll t =
    if t < 60. then
      ignore
        (Netsim.Engine.at sc.Experiments.Scenario.engine ~time:t (fun () ->
             if Tfmcc_core.Sender.in_slowstart snd then begin
               peak := Float.max !peak (Tfmcc_core.Sender.rate_bytes_per_s snd);
               poll (t +. 0.05)
             end))
  in
  poll 0.05;
  run sc 60.;
  Alcotest.(check bool) "slowstart ended" false (Tfmcc_core.Sender.in_slowstart snd);
  (* d = 2 limits the overshoot to ~twice the bottleneck. *)
  Alcotest.(check bool)
    (Printf.sprintf "peak %.0f <= ~2.4x bottleneck" !peak)
    true
    (!peak <= 2.4 *. 125_000.)

let test_clr_is_worst_receiver () =
  let sc, st =
    make_star ~link_bps:50e6
      ~delays:[| 0.02; 0.02; 0.02 |]
      ~losses:[| 0.001; 0.05; 0.005 |]
      ()
  in
  Tfmcc_core.Session.start st.Experiments.Scenario.s_session ~at:0.;
  run sc 60.;
  let snd = Tfmcc_core.Session.sender st.Experiments.Scenario.s_session in
  let worst = Netsim.Node.id st.Experiments.Scenario.s_rx_nodes.(1) in
  (match Tfmcc_core.Sender.clr snd with
  | Some id -> Alcotest.(check int) "CLR = 5% loss receiver" worst id
  | None -> Alcotest.fail "no CLR elected");
  let rx1 =
    Tfmcc_core.Session.receiver st.Experiments.Scenario.s_session ~node_id:worst
  in
  Alcotest.(check bool) "worst receiver knows it is CLR" true
    (Tfmcc_core.Receiver.is_clr rx1)

let test_rate_tracks_worst_receiver_equation () =
  let sc, st =
    make_star ~link_bps:100e6 ~delays:[| 0.025 |] ~losses:[| 0.02 |] ()
  in
  Tfmcc_core.Session.start st.Experiments.Scenario.s_session ~at:0.;
  let rx = List.hd (Tfmcc_core.Session.receivers st.Experiments.Scenario.s_session) in
  let snd = Tfmcc_core.Session.sender st.Experiments.Scenario.s_session in
  (* The instantaneous estimate fluctuates; compare time averages. *)
  let p_acc = ref 0. and r_acc = ref 0. and samples = ref 0 in
  Experiments.Scenario.sample_every sc ~dt:1. ~t_end:120. (fun t ->
      if t >= 40. then begin
        p_acc := !p_acc +. Tfmcc_core.Receiver.loss_event_rate rx;
        r_acc := !r_acc +. Tfmcc_core.Sender.rate_bytes_per_s snd;
        incr samples
      end);
  run sc 120.;
  let p = !p_acc /. float_of_int !samples in
  Alcotest.(check bool)
    (Printf.sprintf "mean measured p near 2%% (got %.3f)" p)
    true
    (p > 0.008 && p < 0.04);
  let rate = !r_acc /. float_of_int !samples in
  let expect = Tcp_model.Padhye.throughput ~b:cfg.b ~s:1000 ~rtt:0.055 0.02 in
  Alcotest.(check bool)
    (Printf.sprintf "mean rate %.0f within 3x of equation %.0f" rate expect)
    true
    (rate > expect /. 3. && rate < expect *. 3.)

let test_join_drops_leave_recovers () =
  let sc, st =
    make_star ~link_bps:50e6
      ~delays:[| 0.02; 0.02 |]
      ~losses:[| 0.002; 0.08 |]
      ()
  in
  let session = st.Experiments.Scenario.s_session in
  let rx_good =
    Tfmcc_core.Session.receiver session
      ~node_id:(Netsim.Node.id st.Experiments.Scenario.s_rx_nodes.(0))
  in
  let rx_bad =
    Tfmcc_core.Session.receiver session
      ~node_id:(Netsim.Node.id st.Experiments.Scenario.s_rx_nodes.(1))
  in
  Tfmcc_core.Receiver.join rx_good;
  Tfmcc_core.Session.start ~join_receivers:false session ~at:0.;
  let eng = sc.Experiments.Scenario.engine in
  ignore (Netsim.Engine.at eng ~time:40. (fun () -> Tfmcc_core.Receiver.join rx_bad));
  ignore (Netsim.Engine.at eng ~time:80. (fun () -> Tfmcc_core.Receiver.leave rx_bad ()));
  run sc 130.;
  Alcotest.(check bool) "bad receiver left" false (Tfmcc_core.Receiver.joined rx_bad);
  Alcotest.(check bool) "good receiver still in" true (Tfmcc_core.Receiver.joined rx_good)

let test_rate_levels_around_join_leave () =
  let sc, st =
    make_star ~link_bps:50e6
      ~delays:[| 0.02; 0.02 |]
      ~losses:[| 0.002; 0.08 |]
      ()
  in
  let session = st.Experiments.Scenario.s_session in
  let rx_good =
    Tfmcc_core.Session.receiver session
      ~node_id:(Netsim.Node.id st.Experiments.Scenario.s_rx_nodes.(0))
  in
  let rx_bad =
    Tfmcc_core.Session.receiver session
      ~node_id:(Netsim.Node.id st.Experiments.Scenario.s_rx_nodes.(1))
  in
  Tfmcc_core.Receiver.join rx_good;
  Tfmcc_core.Session.start ~join_receivers:false session ~at:0.;
  let eng = sc.Experiments.Scenario.engine in
  let snd = Tfmcc_core.Session.sender session in
  let rate_before = ref 0. and rate_during = ref 0. and rate_after = ref 0. in
  ignore
    (Netsim.Engine.at eng ~time:40. (fun () ->
         rate_before := Tfmcc_core.Sender.rate_bytes_per_s snd;
         Tfmcc_core.Receiver.join rx_bad));
  ignore
    (Netsim.Engine.at eng ~time:80. (fun () ->
         rate_during := Tfmcc_core.Sender.rate_bytes_per_s snd;
         Tfmcc_core.Receiver.leave rx_bad ()));
  run sc 140.;
  rate_after := Tfmcc_core.Sender.rate_bytes_per_s snd;
  Alcotest.(check bool)
    (Printf.sprintf "8%%-loss join cuts rate (%.0f -> %.0f)" !rate_before !rate_during)
    true
    (!rate_during < 0.6 *. !rate_before);
  Alcotest.(check bool)
    (Printf.sprintf "leave recovers (%.0f -> %.0f)" !rate_during !rate_after)
    true
    (!rate_after > 2. *. !rate_during)

let test_clr_timeout_without_explicit_leave () =
  let sc, st =
    make_star ~link_bps:50e6
      ~delays:[| 0.02; 0.02 |]
      ~losses:[| 0.002; 0.08 |]
      ()
  in
  let session = st.Experiments.Scenario.s_session in
  Tfmcc_core.Session.start session ~at:0.;
  let eng = sc.Experiments.Scenario.engine in
  let snd = Tfmcc_core.Session.sender session in
  let rx_bad =
    Tfmcc_core.Session.receiver session
      ~node_id:(Netsim.Node.id st.Experiments.Scenario.s_rx_nodes.(1))
  in
  (* Crash (no leave report) at t = 60. *)
  ignore
    (Netsim.Engine.at eng ~time:60. (fun () ->
         Tfmcc_core.Receiver.leave rx_bad ~explicit_leave:false ()));
  run sc 200.;
  Alcotest.(check bool) "CLR timeout fired" true (Tfmcc_core.Sender.clr_timeouts snd >= 1);
  (match Tfmcc_core.Sender.clr snd with
  | Some id ->
      Alcotest.(check bool) "dead receiver no longer CLR" true
        (id <> Netsim.Node.id st.Experiments.Scenario.s_rx_nodes.(1))
  | None -> ());
  let rate = Tfmcc_core.Sender.rate_bytes_per_s snd in
  Alcotest.(check bool)
    (Printf.sprintf "rate recovered after timeout (%.0f)" rate)
    true
    (rate > 100_000.)

let test_partition_recovery () =
  (* The CLR's path fails outright (no leave report possible): the sender
     must time the CLR out and recover with the remaining receiver. *)
  let sc, st =
    make_star ~link_bps:50e6
      ~delays:[| 0.02; 0.02 |]
      ~losses:[| 0.002; 0.08 |]
      ()
  in
  let session = st.Experiments.Scenario.s_session in
  Tfmcc_core.Session.start session ~at:0.;
  let eng = sc.Experiments.Scenario.engine in
  let snd = Tfmcc_core.Session.sender session in
  ignore
    (Netsim.Engine.at eng ~time:60. (fun () ->
         let fwd, bwd = st.Experiments.Scenario.s_rx_links.(1) in
         Netsim.Link.set_up fwd false;
         Netsim.Link.set_up bwd false));
  run sc 220.;
  Alcotest.(check bool) "CLR timed out" true (Tfmcc_core.Sender.clr_timeouts snd >= 1);
  (match Tfmcc_core.Sender.clr snd with
  | Some id ->
      Alcotest.(check bool) "partitioned receiver is not CLR" true
        (id <> Netsim.Node.id st.Experiments.Scenario.s_rx_nodes.(1))
  | None -> ());
  Alcotest.(check bool)
    (Printf.sprintf "rate recovered (%.0f B/s)"
       (Tfmcc_core.Sender.rate_bytes_per_s snd))
    true
    (Tfmcc_core.Sender.rate_bytes_per_s snd > 100_000.)

let test_feedback_implosion_avoided () =
  (* Many receivers behind one bottleneck: reports per round must stay
     tiny compared to the group size. *)
  let n = 60 in
  let sc, st =
    make_star ~link_bps:1e6 ~delays:(Array.make n 0.02) ()
  in
  Tfmcc_core.Session.start st.Experiments.Scenario.s_session ~at:0.;
  run sc 40.;
  let snd = Tfmcc_core.Session.sender st.Experiments.Scenario.s_session in
  let rounds = Stdlib.max 1 (Tfmcc_core.Sender.round snd) in
  let reports = Tfmcc_core.Sender.reports_received snd in
  let per_round = float_of_int reports /. float_of_int rounds in
  Alcotest.(check bool)
    (Printf.sprintf "reports/round %.1f << n=%d" per_round n)
    true
    (per_round < float_of_int n /. 2.);
  (* And suppression actually fired somewhere. *)
  let suppressed =
    List.fold_left
      (fun acc r -> acc + Tfmcc_core.Receiver.timers_suppressed r)
      0
      (Tfmcc_core.Session.receivers st.Experiments.Scenario.s_session)
  in
  Alcotest.(check bool) "timers were suppressed" true (suppressed > 0)

let test_clock_skew_harmless () =
  (* One receiver's clock is an hour ahead; its RTT measurement and the
     protocol behaviour must be unaffected (§2.4.3). *)
  let e = Netsim.Engine.create ~seed:31 () in
  let topo = Netsim.Topology.create e in
  let sender = Netsim.Topology.add_node topo in
  let rx = Netsim.Topology.add_node topo in
  ignore (Netsim.Topology.connect topo ~bandwidth_bps:1e6 ~delay_s:0.02 sender rx);
  let session =
    Netsim_env.Session.create topo ~session:1 ~sender_node:sender
      ~receiver_nodes:[ rx ] ~clock_offsets:[ 3600. ] ()
  in
  Tfmcc_core.Session.start session ~at:0.;
  Netsim.Engine.run ~until:30. e;
  let r = List.hd (Tfmcc_core.Session.receivers session) in
  Alcotest.(check bool) "RTT measured" true (Tfmcc_core.Receiver.has_rtt_measurement r);
  let rtt = Tfmcc_core.Receiver.rtt r in
  Alcotest.(check bool)
    (Printf.sprintf "RTT plausible despite skew (%.3f)" rtt)
    true
    (rtt > 0.03 && rtt < 1.0)

let test_all_receivers_get_data () =
  let n = 10 in
  let sc, st = make_star ~link_bps:5e6 ~delays:(Array.make n 0.01) () in
  Tfmcc_core.Session.start st.Experiments.Scenario.s_session ~at:0.;
  run sc 20.;
  List.iter
    (fun r ->
      Alcotest.(check bool) "receiver got data" true
        (Tfmcc_core.Receiver.packets_received r > 100))
    (Tfmcc_core.Session.receivers st.Experiments.Scenario.s_session)

let test_sender_stop_halts () =
  let sc, st = make_star ~link_bps:1e6 ~delays:[| 0.02 |] () in
  Tfmcc_core.Session.start st.Experiments.Scenario.s_session ~at:0.;
  run sc 10.;
  Tfmcc_core.Session.stop st.Experiments.Scenario.s_session;
  let rx = List.hd (Tfmcc_core.Session.receivers st.Experiments.Scenario.s_session) in
  let at_stop = Tfmcc_core.Receiver.packets_received rx in
  run sc 20.;
  (* Packets already in flight at stop time may still arrive. *)
  let extra = Tfmcc_core.Receiver.packets_received rx - at_stop in
  Alcotest.(check bool)
    (Printf.sprintf "only in-flight packets after stop (%d)" extra)
    true (extra <= 5)

let test_fairness_with_tcp () =
  let d =
    Experiments.Scenario.dumbbell ~seed:23 ~bottleneck_bps:4e6 ~delay_s:0.02
      ~n_tfmcc_rx:1 ~n_tcp:3 ()
  in
  let sc = d.Experiments.Scenario.sc in
  Tfmcc_core.Session.start d.Experiments.Scenario.session ~at:0.;
  run sc 120.;
  let tfmcc =
    Experiments.Scenario.mean_throughput_kbps sc ~flow:Experiments.Scenario.tfmcc_flow
      ~t_start:40. ~t_end:120.
  in
  let tcp =
    List.fold_left
      (fun acc i ->
        acc
        +. Experiments.Scenario.mean_throughput_kbps sc
             ~flow:(Experiments.Scenario.tcp_flow i) ~t_start:40. ~t_end:120.)
      0. [ 0; 1; 2 ]
    /. 3.
  in
  let ratio = tfmcc /. tcp in
  Alcotest.(check bool)
    (Printf.sprintf "TCP-friendly (ratio %.2f)" ratio)
    true
    (ratio > 0.33 && ratio < 3.

)

let test_smoother_than_tcp () =
  let d =
    Experiments.Scenario.dumbbell ~seed:29 ~bottleneck_bps:4e6 ~delay_s:0.02
      ~n_tfmcc_rx:1 ~n_tcp:3 ()
  in
  let sc = d.Experiments.Scenario.sc in
  Tfmcc_core.Session.start d.Experiments.Scenario.session ~at:0.;
  run sc 120.;
  let cov flow =
    Experiments.Scenario.throughput_series sc ~flow ~bin:1. ~t_end:120.
    |> Array.to_list
    |> List.filter (fun (t, _) -> t >= 40.)
    |> List.map snd |> Array.of_list
    |> Stats.Descriptive.coefficient_of_variation
  in
  let c_tfmcc = cov Experiments.Scenario.tfmcc_flow in
  let c_tcp = cov (Experiments.Scenario.tcp_flow 0) in
  Alcotest.(check bool)
    (Printf.sprintf "TFMCC smoother (%.2f vs TCP %.2f)" c_tfmcc c_tcp)
    true (c_tfmcc < c_tcp)

let test_remember_clr_switchback () =
  (* App. C: with the previous-CLR memory on, a transient CLR switch
     flips back without waiting for new feedback; behaviour must stay
     sane and at least as conservative. *)
  let cfg_mem = { cfg with Tfmcc_core.Config.remember_clr = true } in
  let sc, st =
    make_star ~cfg:cfg_mem ~link_bps:50e6
      ~delays:[| 0.02; 0.02 |]
      ~losses:[| 0.01; 0.02 |]
      ()
  in
  Tfmcc_core.Session.start st.Experiments.Scenario.s_session ~at:0.;
  run sc 60.;
  let snd = Tfmcc_core.Session.sender st.Experiments.Scenario.s_session in
  Alcotest.(check bool) "protocol alive with remember_clr" true
    (Tfmcc_core.Sender.rate_bytes_per_s snd > 1000.);
  Alcotest.(check bool) "a CLR exists" true (Tfmcc_core.Sender.clr snd <> None)

let test_rtt_measurements_spread () =
  (* Several receivers obtain real RTT measurements through report echoes
     within a reasonable time (Fig. 12 mechanism). *)
  let n = 20 in
  let sc, st = make_star ~link_bps:1e6 ~delays:(Array.make n 0.02) () in
  Tfmcc_core.Session.start st.Experiments.Scenario.s_session ~at:0.;
  run sc 60.;
  let with_rtt =
    Tfmcc_core.Session.receivers_with_rtt st.Experiments.Scenario.s_session
  in
  Alcotest.(check bool)
    (Printf.sprintf "many receivers measured RTT (%d/%d)" with_rtt n)
    true
    (with_rtt >= n / 2)

let () =
  Alcotest.run "integration"
    [
      ( "tfmcc-protocol",
        [
          Alcotest.test_case "converges to bottleneck" `Quick test_converges_to_bottleneck;
          Alcotest.test_case "slowstart bounded" `Quick test_slowstart_overshoot_bounded;
          Alcotest.test_case "CLR = worst receiver" `Quick test_clr_is_worst_receiver;
          Alcotest.test_case "tracks equation rate" `Slow test_rate_tracks_worst_receiver_equation;
          Alcotest.test_case "join/leave membership" `Quick test_join_drops_leave_recovers;
          Alcotest.test_case "join drops, leave recovers" `Slow test_rate_levels_around_join_leave;
          Alcotest.test_case "CLR timeout" `Slow test_clr_timeout_without_explicit_leave;
          Alcotest.test_case "partition recovery" `Slow test_partition_recovery;
          Alcotest.test_case "no feedback implosion" `Slow test_feedback_implosion_avoided;
          Alcotest.test_case "clock skew harmless" `Quick test_clock_skew_harmless;
          Alcotest.test_case "multicast delivery" `Quick test_all_receivers_get_data;
          Alcotest.test_case "stop halts" `Quick test_sender_stop_halts;
          Alcotest.test_case "RTT measurements spread" `Slow test_rtt_measurements_spread;
        ] );
      ( "tcp-friendliness",
        [
          Alcotest.test_case "fair with TCP" `Slow test_fairness_with_tcp;
          Alcotest.test_case "smoother than TCP" `Slow test_smoother_than_tcp;
        ] );
      ( "extensions",
        [ Alcotest.test_case "remember_clr (App. C)" `Slow test_remember_clr_switchback ] );
    ]
