(* Unit tests for the TFMCC core: configuration, feedback timers, RTT
   estimation, the abstract feedback process and the scaling model. *)

let check_float = Alcotest.(check (float 1e-9))

let cfg = Tfmcc_core.Config.default

(* --------------------------------------------------------------- Config *)

let test_default_valid () =
  match Tfmcc_core.Config.validate cfg with
  | Ok () -> ()
  | Error e -> Alcotest.failf "default config invalid: %s" e

let test_validate_catches_bad () =
  let bad fields =
    match Tfmcc_core.Config.validate fields with
    | Ok () -> Alcotest.fail "expected invalid"
    | Error _ -> ()
  in
  bad { cfg with packet_size = 0 };
  bad { cfg with rtt_initial = -1. };
  bad { cfg with ewma_clr = 0. };
  bad { cfg with fb_delta = 1. };
  bad { cfg with zeta = 1.5 };
  bad { cfg with n_estimate = 1 };
  bad { cfg with slowstart_multiplier = 0.5 }

let test_default_follows_paper () =
  Alcotest.(check int) "s = 1000" 1000 cfg.packet_size;
  Alcotest.(check int) "8 loss intervals" 8 cfg.n_intervals;
  check_float "initial RTT 500ms" 0.5 cfg.rtt_initial;
  check_float "CLR EWMA 0.05" 0.05 cfg.ewma_clr;
  check_float "non-CLR EWMA 0.5" 0.5 cfg.ewma_other;
  Alcotest.(check int) "N = 10000" 10_000 cfg.n_estimate;
  check_float "zeta = 0.1" 0.1 cfg.zeta;
  check_float "suppression window = 4 RTTs" 4.
    ((1. -. cfg.fb_delta) *. cfg.round_rtt_factor)

(* ------------------------------------------------------- Feedback_timer *)

let draw_many ~bias ~ratio ~n =
  let rng = Stats.Rng.create 99 in
  Array.init n (fun _ ->
      Tfmcc_core.Feedback_timer.draw rng ~bias ~t_max:4. ~delta:0.5
        ~n_estimate:10_000 ~ratio)

let test_timer_bounds () =
  List.iter
    (fun bias ->
      let samples = draw_many ~bias ~ratio:0.5 ~n:5000 in
      Array.iter
        (fun t ->
          if t < 0. || t > 4. +. 1e-9 then
            Alcotest.failf "timer out of [0, T]: %f" t)
        samples)
    [ Tfmcc_core.Config.Unbiased; Offset; Modified_offset; Modified_n ]

let test_unbiased_has_atom_at_zero () =
  (* P(t = 0) = 1/N for the plain exponential timer. *)
  let samples = draw_many ~bias:Tfmcc_core.Config.Unbiased ~ratio:1. ~n:200_000 in
  let zeros = Array.fold_left (fun acc t -> if t = 0. then acc + 1 else acc) 0 samples in
  let frac = float_of_int zeros /. 200_000. in
  Alcotest.(check bool)
    (Printf.sprintf "P(t=0) ~ 1e-4 (got %.5f)" frac)
    true
    (frac > 0.2e-4 && frac < 3e-4)

let test_offset_shifts_low_ratio_early () =
  let early = draw_many ~bias:Offset ~ratio:0.0 ~n:5000 in
  let late = draw_many ~bias:Offset ~ratio:1.0 ~n:5000 in
  Alcotest.(check bool) "low ratio fires earlier on average" true
    (Stats.Descriptive.mean early < Stats.Descriptive.mean late);
  (* Ratio 1 has a hard offset floor of delta*T. *)
  Array.iter
    (fun t -> if t < 2. -. 1e-9 then Alcotest.fail "offset floor violated")
    late

let test_modified_offset_truncation () =
  check_float "r=0.5 maps to 0" 0. (Tfmcc_core.Feedback_timer.normalized_ratio 0.5);
  check_float "r=0.9 maps to 1" 1. (Tfmcc_core.Feedback_timer.normalized_ratio 0.9);
  check_float "r=0.7 maps to 0.5" 0.5 (Tfmcc_core.Feedback_timer.normalized_ratio 0.7);
  check_float "r below band saturates" 0. (Tfmcc_core.Feedback_timer.normalized_ratio 0.1);
  check_float "r above band saturates" 1. (Tfmcc_core.Feedback_timer.normalized_ratio 1.0)

let test_should_cancel_extremes () =
  let c = Tfmcc_core.Feedback_timer.should_cancel in
  (* zeta = 1: any echo cancels (echoed - own <= echoed). *)
  Alcotest.(check bool) "zeta=1 cancels" true (c ~zeta:1. ~own_rate:1. ~echoed_rate:100.);
  (* zeta = 0: only equal-or-lower echo cancels. *)
  Alcotest.(check bool) "zeta=0, lower echo cancels" true
    (c ~zeta:0. ~own_rate:10. ~echoed_rate:9.);
  Alcotest.(check bool) "zeta=0, higher echo does not" false
    (c ~zeta:0. ~own_rate:10. ~echoed_rate:11.);
  (* zeta = 0.1: cancel iff own >= 0.9 * echoed. *)
  Alcotest.(check bool) "within 10%" true (c ~zeta:0.1 ~own_rate:9.5 ~echoed_rate:10.);
  Alcotest.(check bool) "below 10%" false (c ~zeta:0.1 ~own_rate:8.5 ~echoed_rate:10.)

let test_round_duration_regimes () =
  let d_high =
    Tfmcc_core.Feedback_timer.round_duration ~cfg ~max_rtt:0.1 ~rate:1e6
  in
  check_float "RTT-dominated" (cfg.round_rtt_factor *. 0.1) d_high;
  let d_low =
    Tfmcc_core.Feedback_timer.round_duration ~cfg ~max_rtt:0.1 ~rate:100.
  in
  (* (k+1)*s/X = 4*1000/100 = 40 s dominates. *)
  check_float "rate-dominated (2.5.3 guard)" 40. d_low

let test_expected_messages_sanity () =
  let e ~n ~t' =
    Tfmcc_core.Feedback_timer.expected_messages ~n ~n_estimate:10_000 ~delay:1.
      ~t_suppress:t'
  in
  Alcotest.(check (float 1e-3)) "n=1 gives 1" 1. (e ~n:1 ~t':4.);
  Alcotest.(check bool) "larger T' fewer messages" true (e ~n:1000 ~t':6. < e ~n:1000 ~t':2.);
  Alcotest.(check bool) "monotone-ish in n at fixed T'" true (e ~n:10_000 ~t':4. >= e ~n:100 ~t':4.);
  (* Degenerate: delay >= T' means nobody can be suppressed. *)
  check_float "no suppression window" 50. (e ~n:50 ~t':0.5)

let test_expected_messages_memo_consistent () =
  (* Repeated and interleaved queries must agree with the uncached
     integral, including after enough distinct keys to force a cache
     reset. *)
  let check ~n ~t_suppress =
    let cached =
      Tfmcc_core.Feedback_timer.expected_messages ~n ~n_estimate:10_000
        ~delay:1. ~t_suppress
    in
    let fresh =
      Tfmcc_core.Feedback_timer.expected_messages_uncached ~n
        ~n_estimate:10_000 ~delay:1. ~t_suppress
    in
    Alcotest.(check (float 1e-12))
      (Printf.sprintf "memo matches integral (n=%d t'=%g)" n t_suppress)
      fresh cached
  in
  check ~n:1000 ~t_suppress:4.;
  check ~n:1000 ~t_suppress:4.;
  (* > memo_capacity distinct keys, then re-query the first. *)
  for i = 1 to 600 do
    check ~n:i ~t_suppress:4.
  done;
  check ~n:1000 ~t_suppress:4.

let test_expected_messages_matches_simulation () =
  (* Cross-check the integral against a Monte-Carlo of the same process. *)
  let n = 200 and t' = 4. and delay = 1. in
  let formula =
    Tfmcc_core.Feedback_timer.expected_messages ~n ~n_estimate:10_000 ~delay
      ~t_suppress:t'
  in
  let rng = Stats.Rng.create 4242 in
  let trials = 400 in
  let acc = ref 0 in
  for _ = 1 to trials do
    let timers =
      Array.init n (fun _ ->
          Tfmcc_core.Feedback_timer.draw rng ~bias:Tfmcc_core.Config.Unbiased
            ~t_max:t' ~delta:0. ~n_estimate:10_000 ~ratio:1.)
    in
    Array.sort compare timers;
    let t_min = timers.(0) in
    Array.iter (fun t -> if t <= t_min +. delay then incr acc) timers
  done;
  let simulated = float_of_int !acc /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "formula %.2f ~ simulated %.2f" formula simulated)
    true
    (abs_float (formula -. simulated) < 0.15 *. simulated)

(* -------------------------------------------------------- Rtt_estimator *)

let test_rtt_initial_value () =
  let r = Tfmcc_core.Rtt_estimator.create ~cfg ~clock_offset:0. () in
  check_float "initial estimate" 0.5 (Tfmcc_core.Rtt_estimator.estimate r);
  Alcotest.(check bool) "no measurement" false (Tfmcc_core.Rtt_estimator.has_measurement r)

let test_rtt_first_measurement_replaces () =
  let r = Tfmcc_core.Rtt_estimator.create ~cfg ~clock_offset:0. () in
  (* Report sent at 1.0, echo arrives at 1.08 with 20 ms sender hold:
     inst RTT = 60 ms; first measurement overrides the initial value. *)
  Tfmcc_core.Rtt_estimator.on_echo r ~local_now:1.08 ~rx_ts:1.0 ~echo_delay:0.02
    ~pkt_ts:1.05 ~is_clr:false;
  Alcotest.(check (float 1e-9)) "first measurement taken" 0.06
    (Tfmcc_core.Rtt_estimator.estimate r);
  Alcotest.(check int) "counted" 1 (Tfmcc_core.Rtt_estimator.measurements r)

let test_rtt_ewma_gains () =
  let measure ~is_clr =
    let r = Tfmcc_core.Rtt_estimator.create ~cfg ~clock_offset:0. () in
    Tfmcc_core.Rtt_estimator.on_echo r ~local_now:1.1 ~rx_ts:1.0 ~echo_delay:0.
      ~pkt_ts:1.05 ~is_clr;
    (* second instantaneous sample of 200 ms *)
    Tfmcc_core.Rtt_estimator.on_echo r ~local_now:2.2 ~rx_ts:2.0 ~echo_delay:0.
      ~pkt_ts:2.1 ~is_clr;
    Tfmcc_core.Rtt_estimator.estimate r
  in
  (* CLR gain 0.05: 0.05*0.2 + 0.95*0.1 = 0.105 *)
  Alcotest.(check (float 1e-9)) "CLR smoothing" 0.105 (measure ~is_clr:true);
  (* non-CLR gain 0.5: 0.5*0.2 + 0.5*0.1 = 0.15 *)
  Alcotest.(check (float 1e-9)) "non-CLR smoothing" 0.15 (measure ~is_clr:false)

let test_rtt_oneway_adjustment_tracks_change () =
  let r = Tfmcc_core.Rtt_estimator.create ~cfg ~clock_offset:0. () in
  (* Measurement: forward delay 30 ms, reverse 30 ms. *)
  Tfmcc_core.Rtt_estimator.on_echo r ~local_now:1.06 ~rx_ts:1.0 ~echo_delay:0.
    ~pkt_ts:1.03 ~is_clr:true;
  check_float "baseline 60ms" 0.06 (Tfmcc_core.Rtt_estimator.estimate r);
  (* Forward delay doubles to 60 ms: one-way adjustments should pull the
     estimate up over many packets. *)
  for i = 1 to 2000 do
    let t = 1.06 +. (0.01 *. float_of_int i) in
    Tfmcc_core.Rtt_estimator.on_data r ~local_now:t ~pkt_ts:(t -. 0.06)
  done;
  Alcotest.(check (float 0.005)) "converges to 90ms" 0.09
    (Tfmcc_core.Rtt_estimator.estimate r)

let test_rtt_clock_offset_cancels () =
  (* A receiver whose clock is 100 s ahead must measure the same RTT. *)
  let offset = 100. in
  let r = Tfmcc_core.Rtt_estimator.create ~cfg ~clock_offset:offset () in
  let local t = Tfmcc_core.Rtt_estimator.local_time r ~now:t in
  (* engine times: report at 1.0, echo back at 1.06 (RTT 60 ms). *)
  Tfmcc_core.Rtt_estimator.on_echo r ~local_now:(local 1.06) ~rx_ts:(local 1.0)
    ~echo_delay:0. ~pkt_ts:1.03 (* sender clock! *) ~is_clr:true;
  check_float "RTT unaffected by skew" 0.06 (Tfmcc_core.Rtt_estimator.estimate r);
  (* One-way adjustments also cancel the offset. *)
  for i = 1 to 500 do
    let t = 1.06 +. (0.01 *. float_of_int i) in
    Tfmcc_core.Rtt_estimator.on_data r ~local_now:(local t) ~pkt_ts:(t -. 0.03)
  done;
  Alcotest.(check (float 1e-6)) "stable under skew" 0.06
    (Tfmcc_core.Rtt_estimator.estimate r)

let test_rtt_skewed_clock_sample_clamped () =
  (* Regression: a corrupted echo (or clock skew not cancelling, e.g. a
     stale rx_ts after a clock step) can make the raw sample
     local_now - rx_ts - echo_delay non-positive.  Those samples used to
     be discarded silently, leaving the estimate stuck on the 500 ms
     initial value forever; now they are clamped to a 1 ms floor and
     counted. *)
  let r = Tfmcc_core.Rtt_estimator.create ~cfg ~clock_offset:0. () in
  (* rx_ts claims the report left *after* the echo arrived: raw = -0.5 *)
  Tfmcc_core.Rtt_estimator.on_echo r ~local_now:1.0 ~rx_ts:1.4 ~echo_delay:0.1
    ~pkt_ts:0.9 ~is_clr:false;
  Alcotest.(check bool) "measurement loop counted as closed" true
    (Tfmcc_core.Rtt_estimator.has_measurement r);
  Alcotest.(check int) "rejection counted" 1
    (Tfmcc_core.Rtt_estimator.rejections r);
  Alcotest.(check (float 1e-9)) "estimate clamped to the 1 ms floor" 0.001
    (Tfmcc_core.Rtt_estimator.estimate r);
  (* NaN samples (corrupted echo_delay) are dropped, not folded in. *)
  Tfmcc_core.Rtt_estimator.on_echo r ~local_now:2.0 ~rx_ts:1.9
    ~echo_delay:Float.nan ~pkt_ts:1.95 ~is_clr:false;
  Alcotest.(check int) "NaN rejected too" 2 (Tfmcc_core.Rtt_estimator.rejections r);
  Alcotest.(check (float 1e-9)) "estimate untouched by NaN" 0.001
    (Tfmcc_core.Rtt_estimator.estimate r);
  (* A subsequent sane sample recovers the estimate (non-CLR gain 0.5). *)
  Tfmcc_core.Rtt_estimator.on_echo r ~local_now:3.06 ~rx_ts:3.0 ~echo_delay:0.
    ~pkt_ts:3.03 ~is_clr:false;
  Alcotest.(check (float 1e-9)) "recovers once samples are sane"
    ((0.5 *. 0.06) +. (0.5 *. 0.001))
    (Tfmcc_core.Rtt_estimator.estimate r)

(* ------------------------------------------------------ Feedback_process *)

let process_params ?(cancel = Tfmcc_core.Feedback_process.On_any) ?(bias = Tfmcc_core.Config.Modified_offset) () =
  {
    Tfmcc_core.Feedback_process.n_estimate = 10_000;
    t_max = 6.;
    delay = 1.;
    bias;
    delta = 1. /. 3.;
    cancel;
  }

let test_process_single_receiver_always_responds () =
  let rng = Stats.Rng.create 1 in
  let o =
    Tfmcc_core.Feedback_process.run_round rng (process_params ()) ~values:[| 0.4 |]
  in
  Alcotest.(check int) "one response" 1 o.responses;
  check_float "best = own value" 0.4 o.best_value

let test_process_suppression_reduces_responses () =
  let rng = Stats.Rng.create 2 in
  let values = Tfmcc_core.Feedback_process.uniform_values rng ~n:1000 ~lo:0.3 ~hi:0.7 in
  let o = Tfmcc_core.Feedback_process.run_round rng (process_params ()) ~values in
  Alcotest.(check bool)
    (Printf.sprintf "far fewer than n responses (%d)" o.responses)
    true (o.responses < 100);
  Alcotest.(check bool) "at least one" true (o.responses >= 1)

let test_process_zeta_zero_hears_minimum () =
  let rng = Stats.Rng.create 3 in
  for _ = 1 to 20 do
    let values = Tfmcc_core.Feedback_process.uniform_values rng ~n:200 ~lo:0. ~hi:1. in
    let o =
      Tfmcc_core.Feedback_process.run_round rng
        (process_params ~cancel:(Tfmcc_core.Feedback_process.Rate_threshold 0.) ())
        ~values
    in
    check_float "true minimum always reported" o.true_min o.best_value
  done

let test_process_events_ordered () =
  let rng = Stats.Rng.create 4 in
  let values = Tfmcc_core.Feedback_process.uniform_values rng ~n:100 ~lo:0. ~hi:1. in
  let o = Tfmcc_core.Feedback_process.run_round rng (process_params ()) ~values in
  Array.iteri
    (fun i (e : Tfmcc_core.Feedback_process.event) ->
      if i > 0 && e.timer < o.events.(i - 1).timer then
        Alcotest.fail "events must be in timer order")
    o.events;
  Alcotest.(check int) "all receivers accounted" 100 (Array.length o.events)

let test_process_first_event_sent () =
  let rng = Stats.Rng.create 5 in
  let values = Tfmcc_core.Feedback_process.uniform_values rng ~n:50 ~lo:0. ~hi:1. in
  let o = Tfmcc_core.Feedback_process.run_round rng (process_params ()) ~values in
  Alcotest.(check bool) "earliest timer cannot be suppressed" true o.events.(0).sent

(* -------------------------------------------------------- Scaling_model *)

let test_scaling_constant_profile () =
  let rng = Stats.Rng.create 6 in
  let rates = Tfmcc_core.Scaling_model.assign_loss_rates rng ~n:50 ~profile:(Constant 0.1) in
  Array.iter (fun p -> check_float "constant" 0.1 p) rates

let test_scaling_realistic_profile_shape () =
  let rng = Stats.Rng.create 7 in
  let rates =
    Tfmcc_core.Scaling_model.assign_loss_rates rng ~n:1000
      ~profile:(Realistic { c = 1. })
  in
  let high = Array.to_list rates |> List.filter (fun p -> p >= 0.05) in
  let low = Array.to_list rates |> List.filter (fun p -> p < 0.02) in
  Alcotest.(check bool) "few high-loss receivers" true (List.length high <= 20);
  Alcotest.(check bool) "majority low loss" true (List.length low > 900);
  Array.iter
    (fun p -> if p < 0.005 || p > 0.10 then Alcotest.failf "rate out of range: %f" p)
    rates

let test_scaling_throughput_decreases () =
  let rng = Stats.Rng.create 8 in
  let t n =
    Tfmcc_core.Scaling_model.expected_throughput rng ~n ~profile:(Constant 0.1)
      ~rtt:0.05 ~s:1000 ~n_intervals:8 ~trials:200
  in
  let t1 = t 1 and t100 = t 100 in
  Alcotest.(check bool) "monotone degradation" true (t100 < t1);
  (* n=1 should be near the fair rate for p=0.1 (~300 kbit/s +- 30%). *)
  let kbit = t1 *. 8. /. 1000. in
  Alcotest.(check bool)
    (Printf.sprintf "n=1 near fair rate (got %.0f kbit)" kbit)
    true
    (kbit > 200. && kbit < 450.)

let test_scaling_realistic_degrades_less () =
  let rng = Stats.Rng.create 9 in
  let deg profile =
    let t n =
      Tfmcc_core.Scaling_model.expected_throughput rng ~n ~profile ~rtt:0.05
        ~s:1000 ~n_intervals:8 ~trials:150
    in
    t 1000 /. t 1
  in
  let d_const = deg (Tfmcc_core.Scaling_model.Constant 0.1) in
  let d_real = deg (Tfmcc_core.Scaling_model.Realistic { c = 1. }) in
  Alcotest.(check bool)
    (Printf.sprintf "realistic (%.2f) degrades less than constant (%.2f)" d_real d_const)
    true (d_real > d_const)

(* ----------------------------------------------------------- Properties *)

let prop_timer_in_range =
  QCheck.Test.make ~name:"feedback timer always in [0, T]" ~count:500
    QCheck.(triple (int_range 1 1_000_000) (float_range 0.01 100.) (float_bound_inclusive 1.))
    (fun (seed, t_max, ratio) ->
      let rng = Stats.Rng.create seed in
      List.for_all
        (fun bias ->
          let t =
            Tfmcc_core.Feedback_timer.draw rng ~bias ~t_max ~delta:0.4
              ~n_estimate:1000 ~ratio
          in
          t >= 0. && t <= t_max +. 1e-9)
        [ Tfmcc_core.Config.Unbiased; Offset; Modified_offset; Modified_n ])

let prop_normalized_ratio_in_unit =
  QCheck.Test.make ~name:"normalized ratio in [0,1]" ~count:500
    QCheck.(float_range (-10.) 10.)
    (fun r ->
      let v = Tfmcc_core.Feedback_timer.normalized_ratio r in
      v >= 0. && v <= 1.)

let prop_cancel_monotone_in_zeta =
  QCheck.Test.make ~name:"larger zeta cancels at least as often" ~count:500
    QCheck.(triple (float_range 0.01 10.) (float_range 0.01 10.) (pair (float_bound_inclusive 1.) (float_bound_inclusive 1.)))
    (fun (own, echoed, (z1, z2)) ->
      let zl = Float.min z1 z2 and zh = Float.max z1 z2 in
      let c z = Tfmcc_core.Feedback_timer.should_cancel ~zeta:z ~own_rate:own ~echoed_rate:echoed in
      (not (c zl)) || c zh)

let () =
  Alcotest.run "tfmcc"
    [
      ( "config",
        [
          Alcotest.test_case "default valid" `Quick test_default_valid;
          Alcotest.test_case "validate catches bad" `Quick test_validate_catches_bad;
          Alcotest.test_case "paper constants" `Quick test_default_follows_paper;
        ] );
      ( "feedback_timer",
        [
          Alcotest.test_case "bounds" `Quick test_timer_bounds;
          Alcotest.test_case "atom at zero" `Slow test_unbiased_has_atom_at_zero;
          Alcotest.test_case "offset ordering" `Quick test_offset_shifts_low_ratio_early;
          Alcotest.test_case "modified-offset truncation" `Quick test_modified_offset_truncation;
          Alcotest.test_case "cancellation rule" `Quick test_should_cancel_extremes;
          Alcotest.test_case "round duration" `Quick test_round_duration_regimes;
          Alcotest.test_case "E[M] sanity" `Quick test_expected_messages_sanity;
          Alcotest.test_case "E[M] memo consistent" `Quick
            test_expected_messages_memo_consistent;
          Alcotest.test_case "E[M] vs Monte-Carlo" `Slow test_expected_messages_matches_simulation;
        ] );
      ( "rtt_estimator",
        [
          Alcotest.test_case "initial value" `Quick test_rtt_initial_value;
          Alcotest.test_case "first measurement" `Quick test_rtt_first_measurement_replaces;
          Alcotest.test_case "EWMA gains" `Quick test_rtt_ewma_gains;
          Alcotest.test_case "one-way adjustment" `Quick test_rtt_oneway_adjustment_tracks_change;
          Alcotest.test_case "clock offset cancels" `Quick test_rtt_clock_offset_cancels;
          Alcotest.test_case "skewed-clock sample clamped" `Quick
            test_rtt_skewed_clock_sample_clamped;
        ] );
      ( "feedback_process",
        [
          Alcotest.test_case "single receiver" `Quick test_process_single_receiver_always_responds;
          Alcotest.test_case "suppression works" `Quick test_process_suppression_reduces_responses;
          Alcotest.test_case "zeta=0 hears minimum" `Quick test_process_zeta_zero_hears_minimum;
          Alcotest.test_case "events ordered" `Quick test_process_events_ordered;
          Alcotest.test_case "first event sent" `Quick test_process_first_event_sent;
        ] );
      ( "scaling_model",
        [
          Alcotest.test_case "constant profile" `Quick test_scaling_constant_profile;
          Alcotest.test_case "realistic profile shape" `Quick test_scaling_realistic_profile_shape;
          Alcotest.test_case "throughput decreases" `Slow test_scaling_throughput_decreases;
          Alcotest.test_case "realistic degrades less" `Slow test_scaling_realistic_degrades_less;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_timer_in_range; prop_normalized_ratio_in_unit; prop_cancel_monotone_in_zeta ] );
    ]
