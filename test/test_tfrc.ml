(* Tests for the TFRC substrate: WALI loss history, rate meter, and the
   unicast TFRC agents. *)

let check_float = Alcotest.(check (float 1e-9))

(* --------------------------------------------------------- Loss_history *)

let feed history ~rtt seqs =
  List.iteri
    (fun i seq ->
      Tfrc.Loss_history.on_packet history ~seq ~now:(0.01 *. float_of_int i) ~rtt)
    seqs

let range a b = List.init (b - a) (fun i -> a + i)

let test_no_loss () =
  let h = Tfrc.Loss_history.create () in
  feed h ~rtt:0.1 (range 0 100);
  check_float "p = 0 without loss" 0. (Tfrc.Loss_history.loss_event_rate h);
  Alcotest.(check bool) "no loss flag" false (Tfrc.Loss_history.has_loss h);
  Alcotest.(check int) "100 packets" 100 (Tfrc.Loss_history.packets_seen h)

let test_single_gap_is_loss () =
  let h = Tfrc.Loss_history.create () in
  feed h ~rtt:0.001 (range 0 10 @ range 11 20);
  Alcotest.(check bool) "loss detected" true (Tfrc.Loss_history.has_loss h);
  Alcotest.(check int) "one event" 1 (Tfrc.Loss_history.loss_events h);
  Alcotest.(check int) "one lost" 1 (Tfrc.Loss_history.packets_lost h)

let test_aggregation_within_rtt () =
  (* Three gaps arriving within one RTT = one loss event. *)
  let h = Tfrc.Loss_history.create () in
  let rtt = 10.0 (* larger than the whole feed *) in
  feed h ~rtt ([ 0; 1; 3; 5; 7 ] @ range 8 20);
  Alcotest.(check int) "aggregated into one event" 1 (Tfrc.Loss_history.loss_events h);
  Alcotest.(check int) "three packets lost" 3 (Tfrc.Loss_history.packets_lost h)

let test_separate_events_beyond_rtt () =
  let h = Tfrc.Loss_history.create () in
  let rtt = 0.001 (* smaller than inter-packet time *) in
  feed h ~rtt ([ 0; 1; 3 ] @ range 4 10 @ [ 11 ] @ range 12 20);
  Alcotest.(check int) "two events" 2 (Tfrc.Loss_history.loss_events h)

let test_interval_lengths () =
  let h = Tfrc.Loss_history.create ~first_interval:(fun () -> Some 50.) () in
  (* loss at 10 (synthetic first interval 50), loss at 25: closed interval
     of 15 packets. *)
  feed h ~rtt:0.001 (range 0 10 @ range 11 25 @ range 26 40);
  match Tfrc.Loss_history.closed_intervals h with
  | [ newest; synthetic ] ->
      check_float "newest interval = 15" 15. newest;
      check_float "synthetic = 50" 50. synthetic
  | l -> Alcotest.failf "expected 2 intervals, got %d" (List.length l)

let test_open_interval_reduces_p () =
  let h = Tfrc.Loss_history.create ~first_interval:(fun () -> Some 10.) () in
  feed h ~rtt:0.001 (range 0 10 @ range 11 20);
  let p_before = Tfrc.Loss_history.loss_event_rate h in
  (* A long loss-free run grows the open interval and must lower p. *)
  List.iteri
    (fun i seq ->
      Tfrc.Loss_history.on_packet h ~seq ~now:(1. +. (0.01 *. float_of_int i)) ~rtt:0.001)
    (range 20 200);
  let p_after = Tfrc.Loss_history.loss_event_rate h in
  Alcotest.(check bool)
    (Printf.sprintf "p decreased (%.4f -> %.4f)" p_before p_after)
    true (p_after < p_before)

let test_history_depth_bounded () =
  let h = Tfrc.Loss_history.create ~n_intervals:8 () in
  (* 20 well-separated loss events *)
  let seqs = List.concat_map (fun k -> range (20 * k) ((20 * k) + 19)) (range 0 20) in
  feed h ~rtt:0.0001 seqs;
  Alcotest.(check bool) "at most 8 intervals kept" true
    (List.length (Tfrc.Loss_history.closed_intervals h) <= 8)

let test_weights_shape () =
  let h = Tfrc.Loss_history.create ~n_intervals:8 () in
  let w = Tfrc.Loss_history.weights h in
  Alcotest.(check int) "8 weights" 8 (Array.length w);
  check_float "w0 = 1" 1. w.(0);
  check_float "w3 = 1" 1. w.(3);
  check_float "w4 = 0.8" 0.8 w.(4);
  check_float "w7 = 0.2" 0.2 w.(7);
  (* non-increasing *)
  for i = 1 to 7 do
    if w.(i) > w.(i - 1) then Alcotest.fail "weights must be non-increasing"
  done

let test_synthetic_fallback () =
  (* Without a first_interval callback the packet count seeds the
     history. *)
  let h = Tfrc.Loss_history.create () in
  feed h ~rtt:0.001 (range 0 30 @ range 31 40);
  match Tfrc.Loss_history.closed_intervals h with
  | [ synthetic ] -> check_float "synthetic = packets seen" 30. synthetic
  | l -> Alcotest.failf "expected 1 interval, got %d" (List.length l)

let test_rescale_synthetic () =
  let h = Tfrc.Loss_history.create ~first_interval:(fun () -> Some 100.) () in
  feed h ~rtt:0.001 (range 0 10 @ range 11 20);
  Tfrc.Loss_history.rescale_synthetic h ~factor:0.25;
  (match Tfrc.Loss_history.closed_intervals h with
  | [ synthetic ] -> check_float "rescaled" 25. synthetic
  | l -> Alcotest.failf "expected 1 interval, got %d" (List.length l));
  (* Second rescale is a no-op (already consumed). *)
  Tfrc.Loss_history.rescale_synthetic h ~factor:0.25;
  match Tfrc.Loss_history.closed_intervals h with
  | [ synthetic ] -> check_float "no double rescale" 25. synthetic
  | _ -> Alcotest.fail "unexpected"

let test_rescale_after_aging_is_noop () =
  let h = Tfrc.Loss_history.create ~n_intervals:2 ~first_interval:(fun () -> Some 100.) () in
  (* Push enough later events that the synthetic interval falls off. *)
  let seqs = List.concat_map (fun k -> range (20 * k) ((20 * k) + 19)) (range 0 5) in
  feed h ~rtt:0.0001 seqs;
  let before = Tfrc.Loss_history.closed_intervals h in
  Tfrc.Loss_history.rescale_synthetic h ~factor:100.;
  Alcotest.(check (list (float 1e-9))) "unchanged" before
    (Tfrc.Loss_history.closed_intervals h)

let test_late_join_sync () =
  (* A receiver joining mid-stream must not see the prefix as loss. *)
  let h = Tfrc.Loss_history.create () in
  feed h ~rtt:0.1 (range 5000 5100);
  check_float "no loss after late join" 0. (Tfrc.Loss_history.loss_event_rate h);
  Alcotest.(check int) "no lost packets" 0 (Tfrc.Loss_history.packets_lost h)

let test_duplicates_ignored () =
  let h = Tfrc.Loss_history.create () in
  feed h ~rtt:0.1 [ 0; 1; 2; 2; 1; 3 ];
  Alcotest.(check int) "duplicates not counted" 4 (Tfrc.Loss_history.packets_seen h);
  check_float "no loss" 0. (Tfrc.Loss_history.loss_event_rate h)

let test_p_matches_uniform_intervals () =
  (* Regular loss every k packets: p should converge to ~1/k. *)
  let k = 25 in
  let h = Tfrc.Loss_history.create () in
  let seqs =
    List.concat_map (fun ev -> range ((k * ev) + 1) (k * (ev + 1))) (range 0 20)
  in
  feed h ~rtt:0.0001 seqs;
  Alcotest.(check (float 0.01))
    "p ~ 1/25" (1. /. float_of_int k)
    (Tfrc.Loss_history.loss_event_rate h)

let test_remodel_merges_events () =
  (* Five gaps 0.1 s apart, aggregated with a tiny RTT: five events.
     Remodelling with a 1 s RTT must merge them into one. *)
  let h = Tfrc.Loss_history.create () in
  let seq = ref 0 in
  let deliver ~now k =
    for _ = 1 to k do
      Tfrc.Loss_history.on_packet h ~seq:!seq ~now ~rtt:0.001;
      incr seq
    done
  in
  deliver ~now:0. 10;
  for g = 1 to 5 do
    incr seq (* drop one *);
    deliver ~now:(0.1 *. float_of_int g) 5
  done;
  Alcotest.(check int) "five events under tiny RTT" 5 (Tfrc.Loss_history.loss_events h);
  let p_before = Tfrc.Loss_history.loss_event_rate h in
  Tfrc.Loss_history.remodel h ~rtt:1.0;
  let p_after = Tfrc.Loss_history.loss_event_rate h in
  Alcotest.(check bool)
    (Printf.sprintf "merging reduces p (%.4f -> %.4f)" p_before p_after)
    true (p_after < p_before);
  Alcotest.(check int) "one rebuilt interval set" 1
    (List.length (Tfrc.Loss_history.closed_intervals h) |> fun n ->
     if n >= 1 then 1 else n)

let test_remodel_splits_events () =
  (* Two gaps 0.2 s apart aggregated with a huge RTT: one event.
     Remodelling with a 50 ms RTT must split them into two. *)
  let h = Tfrc.Loss_history.create ~first_interval:(fun () -> Some 30.) () in
  let seq = ref 0 in
  let deliver ~now k =
    for _ = 1 to k do
      Tfrc.Loss_history.on_packet h ~seq:!seq ~now ~rtt:10.;
      incr seq
    done
  in
  deliver ~now:0. 10;
  incr seq;
  deliver ~now:0.1 10;
  incr seq;
  deliver ~now:0.3 10;
  Alcotest.(check int) "one event under huge RTT" 1 (Tfrc.Loss_history.loss_events h);
  Tfrc.Loss_history.remodel h ~rtt:0.05;
  Alcotest.(check bool) "split into more events" true
    (List.length (Tfrc.Loss_history.closed_intervals h) >= 1
    && Tfrc.Loss_history.loss_events h >= 2)

let test_remodel_noop_without_gaps () =
  let h = Tfrc.Loss_history.create () in
  feed h ~rtt:0.1 (range 0 50);
  Tfrc.Loss_history.remodel h ~rtt:0.05;
  check_float "still no loss" 0. (Tfrc.Loss_history.loss_event_rate h)

let test_remodel_preserves_uncovered_history () =
  (* Regression: the splice between the rebuilt intervals and the old
     history used to be approximated by list length, which dropped any
     old interval (here the App. B synthetic one) not actually covered
     by the retained gap log.  Build 3 gaps at seqs 10/20/30 where the
     first two aggregate under the initial 0.1 s RTT, then remodel with
     a 0.01 s RTT so they split: the rebuilt [10; 10] must splice in
     front of the synthetic 5-interval, not erase it. *)
  let h = Tfrc.Loss_history.create ~first_interval:(fun () -> Some 5.) () in
  let seq = ref 0 in
  let deliver ~now k =
    for _ = 1 to k do
      Tfrc.Loss_history.on_packet h ~seq:!seq ~now ~rtt:0.1;
      incr seq
    done
  in
  deliver ~now:0.9 10;
  incr seq (* lose 10 *);
  deliver ~now:1.0 9 (* 11..19; gap (10, 1.0) -> event 1, synthetic 5 *);
  incr seq (* lose 20 *);
  deliver ~now:1.05 9 (* 21..29; gap (20, 1.05) within RTT: same event *);
  incr seq (* lose 30 *);
  deliver ~now:2.0 2 (* 31..32; gap (30, 2.0) -> event 2, interval 20 *);
  Alcotest.(check (list (float 1e-9)))
    "before remodel: [closed 20; synthetic 5]" [ 20.; 5. ]
    (Tfrc.Loss_history.closed_intervals h);
  let p_before = Tfrc.Loss_history.loss_event_rate h in
  check_float "p before remodel (mean interval 12.5)" (1. /. 12.5) p_before;
  Tfrc.Loss_history.remodel h ~rtt:0.01;
  Alcotest.(check (list (float 1e-9)))
    "after remodel: rebuilt [10; 10] spliced before the synthetic 5"
    [ 10.; 10.; 5. ]
    (Tfrc.Loss_history.closed_intervals h);
  let p_after = Tfrc.Loss_history.loss_event_rate h in
  check_float "p after remodel (mean interval 25/3)" (3. /. 25.) p_after;
  (* The synthetic interval's position must survive the splice: App. B's
     first-RTT rescale still has to find it. *)
  Tfrc.Loss_history.rescale_synthetic h ~factor:2.;
  Alcotest.(check (list (float 1e-9)))
    "rescale_synthetic still reaches the synthetic interval"
    [ 10.; 10.; 10. ]
    (Tfrc.Loss_history.closed_intervals h)

(* ----------------------------------------------------------- Rate_meter *)

let test_meter_basic_rate () =
  let m = Tfrc.Rate_meter.create ~window:1.0 () in
  for i = 0 to 99 do
    Tfrc.Rate_meter.record m ~now:(0.01 *. float_of_int i) ~bytes:100
  done;
  (* 100 bytes every 10 ms = 10 kB/s *)
  Alcotest.(check (float 500.)) "rate ~ 10kB/s" 10_000.
    (Tfrc.Rate_meter.rate_bytes_per_s m ~now:1.0)

let test_meter_window_expiry () =
  let m = Tfrc.Rate_meter.create ~window:1.0 () in
  Tfrc.Rate_meter.record m ~now:0. ~bytes:10_000;
  let r_late = Tfrc.Rate_meter.rate_bytes_per_s m ~now:10. in
  check_float "old samples expire" 0. r_late

let test_meter_burst_floor () =
  (* Two back-to-back packets must not read as a huge rate. *)
  let m = Tfrc.Rate_meter.create ~window:1.0 () in
  Tfrc.Rate_meter.record m ~now:0. ~bytes:1000;
  Tfrc.Rate_meter.record m ~now:0.001 ~bytes:1000;
  let r = Tfrc.Rate_meter.rate_bytes_per_s m ~now:0.001 in
  Alcotest.(check bool)
    (Printf.sprintf "rate bounded by span floor (got %.0f)" r)
    true (r <= 4000.)

let test_meter_total () =
  let m = Tfrc.Rate_meter.create () in
  Tfrc.Rate_meter.record m ~now:0. ~bytes:5;
  Tfrc.Rate_meter.record m ~now:1. ~bytes:7;
  Alcotest.(check int) "total" 12 (Tfrc.Rate_meter.total_bytes m)

let test_meter_set_window () =
  let m = Tfrc.Rate_meter.create ~window:10. () in
  Tfrc.Rate_meter.record m ~now:0. ~bytes:1000;
  Tfrc.Rate_meter.record m ~now:5. ~bytes:1000;
  Tfrc.Rate_meter.set_window m 1.;
  (* With a 1s window only the recent sample counts. *)
  Alcotest.(check (float 1.)) "window shrink drops old mass" 1000.
    (Tfrc.Rate_meter.rate_bytes_per_s m ~now:5.5)

(* ------------------------------------------------------------ TFRC e2e *)

let tfrc_pair ~bottleneck_bps ~loss =
  let e = Netsim.Engine.create ~seed:11 () in
  let topo = Netsim.Topology.create e in
  let a = Netsim.Topology.add_node topo in
  let b = Netsim.Topology.add_node topo in
  let loss_ab =
    if loss > 0. then
      Some (Netsim.Loss_model.bernoulli ~rng:(Netsim.Engine.split_rng e) ~p:loss)
    else None
  in
  ignore
    (Netsim.Topology.connect topo ?loss_ab ~bandwidth_bps:bottleneck_bps
       ~delay_s:0.02 a b);
  let snd = Tfrc.Tfrc_sender.create topo ~conn:1 ~flow:1 ~src:a ~dst:b () in
  let rcv = Tfrc.Tfrc_receiver.create topo ~conn:1 ~node:b ~sender:a () in
  (e, snd, rcv)

let test_tfrc_slowstart_and_transfer () =
  let e, snd, rcv = tfrc_pair ~bottleneck_bps:1e6 ~loss:0. in
  Tfrc.Tfrc_sender.start snd ~at:0.;
  Netsim.Engine.run ~until:30. e;
  Alcotest.(check bool) "packets flowed" true (Tfrc.Tfrc_receiver.packets_received rcv > 500);
  Alcotest.(check bool) "feedback flowed" true (Tfrc.Tfrc_receiver.feedback_sent rcv > 10);
  match Tfrc.Tfrc_sender.rtt snd with
  | Some rtt -> Alcotest.(check bool) "plausible RTT" true (rtt > 0.03 && rtt < 0.8)
  | None -> Alcotest.fail "sender never measured RTT"

let test_tfrc_tracks_equation_rate () =
  let loss = 0.02 in
  let e, snd, rcv = tfrc_pair ~bottleneck_bps:50e6 ~loss in
  Tfrc.Tfrc_sender.start snd ~at:0.;
  Netsim.Engine.run ~until:120. e;
  let measured_p = Tfrc.Tfrc_receiver.loss_event_rate rcv in
  Alcotest.(check bool)
    (Printf.sprintf "measured p ~ configured (%.4f)" measured_p)
    true
    (measured_p > 0.01 && measured_p < 0.04);
  let rate = Tfrc.Tfrc_sender.rate_bytes_per_s snd in
  let expect = Tcp_model.Padhye.throughput ~s:1000 ~rtt:0.045 loss in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.0f within 3x of equation %.0f" rate expect)
    true
    (rate > expect /. 3. && rate < expect *. 3.)

let test_tfrc_halts_without_feedback () =
  (* 100% loss on the return path: the no-feedback timer must keep
     halving the rate down to the floor. *)
  let e = Netsim.Engine.create ~seed:13 () in
  let topo = Netsim.Topology.create e in
  let a = Netsim.Topology.add_node topo in
  let b = Netsim.Topology.add_node topo in
  ignore
    (Netsim.Topology.connect topo
       ~loss_ba:(Netsim.Loss_model.bernoulli ~rng:(Netsim.Engine.split_rng e) ~p:1.0)
       ~bandwidth_bps:1e6 ~delay_s:0.02 a b);
  let snd = Tfrc.Tfrc_sender.create topo ~conn:1 ~flow:1 ~src:a ~dst:b () in
  let _rcv = Tfrc.Tfrc_receiver.create topo ~conn:1 ~node:b ~sender:a () in
  Tfrc.Tfrc_sender.start snd ~at:0.;
  Netsim.Engine.run ~until:120. e;
  Alcotest.(check bool) "rate collapsed to floor" true
    (Tfrc.Tfrc_sender.rate_bytes_per_s snd <= 1000. /. 64. *. 4.)

(* ----------------------------------------------------------- Properties *)

let prop_loss_rate_bounded =
  QCheck.Test.make ~name:"loss event rate always in [0,1]" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 200) (int_range 0 300))
    (fun seqs ->
      let h = Tfrc.Loss_history.create () in
      List.iteri
        (fun i seq ->
          Tfrc.Loss_history.on_packet h ~seq ~now:(0.01 *. float_of_int i) ~rtt:0.05)
        seqs;
      let p = Tfrc.Loss_history.loss_event_rate h in
      p >= 0. && p <= 1.)

let prop_loss_events_monotone =
  QCheck.Test.make ~name:"loss events never decrease" ~count:100
    QCheck.(list_of_size Gen.(int_range 2 100) (int_range 0 500))
    (fun seqs ->
      let h = Tfrc.Loss_history.create () in
      let ok = ref true in
      let prev = ref 0 in
      List.iteri
        (fun i seq ->
          Tfrc.Loss_history.on_packet h ~seq ~now:(0.01 *. float_of_int i) ~rtt:0.01;
          let ev = Tfrc.Loss_history.loss_events h in
          if ev < !prev then ok := false;
          prev := ev)
        seqs;
      !ok)

let prop_meter_rate_nonneg =
  QCheck.Test.make ~name:"meter rate is non-negative" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 50) (pair (float_bound_inclusive 10.) (int_range 1 10_000)))
    (fun samples ->
      let m = Tfrc.Rate_meter.create ~window:2. () in
      let sorted = List.sort (fun (a, _) (b, _) -> compare a b) samples in
      List.iter (fun (now, bytes) -> Tfrc.Rate_meter.record m ~now ~bytes) sorted;
      Tfrc.Rate_meter.rate_bytes_per_s m ~now:11. >= 0.)

let prop_mean_interval_inverse_of_p =
  QCheck.Test.make ~name:"mean interval * p ~ 1 once loss exists" ~count:100
    QCheck.(list_of_size Gen.(int_range 10 150) (int_range 0 400))
    (fun seqs ->
      let h = Tfrc.Loss_history.create () in
      List.iteri
        (fun i seq ->
          Tfrc.Loss_history.on_packet h ~seq ~now:(0.01 *. float_of_int i) ~rtt:0.01)
        seqs;
      let p = Tfrc.Loss_history.loss_event_rate h in
      let m = Tfrc.Loss_history.mean_interval h in
      if not (Tfrc.Loss_history.has_loss h) then p = 0. && m = infinity
      else abs_float ((p *. m) -. 1.) < 1e-9 || (m < 1. && p = 1.))

let prop_seen_plus_lost_bounded =
  QCheck.Test.make ~name:"packets seen + lost consistent with seq span" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 100) (int_range 0 300))
    (fun seqs ->
      let h = Tfrc.Loss_history.create () in
      List.iteri
        (fun i seq ->
          Tfrc.Loss_history.on_packet h ~seq ~now:(0.01 *. float_of_int i) ~rtt:0.01)
        seqs;
      Tfrc.Loss_history.packets_seen h >= 1
      && Tfrc.Loss_history.packets_lost h >= 0)

let () =
  Alcotest.run "tfrc"
    [
      ( "loss_history",
        [
          Alcotest.test_case "no loss" `Quick test_no_loss;
          Alcotest.test_case "single gap" `Quick test_single_gap_is_loss;
          Alcotest.test_case "aggregation within RTT" `Quick test_aggregation_within_rtt;
          Alcotest.test_case "separate events" `Quick test_separate_events_beyond_rtt;
          Alcotest.test_case "interval lengths" `Quick test_interval_lengths;
          Alcotest.test_case "open interval reduces p" `Quick test_open_interval_reduces_p;
          Alcotest.test_case "history depth bounded" `Quick test_history_depth_bounded;
          Alcotest.test_case "WALI weights" `Quick test_weights_shape;
          Alcotest.test_case "synthetic fallback" `Quick test_synthetic_fallback;
          Alcotest.test_case "rescale synthetic" `Quick test_rescale_synthetic;
          Alcotest.test_case "rescale after aging" `Quick test_rescale_after_aging_is_noop;
          Alcotest.test_case "late join sync" `Quick test_late_join_sync;
          Alcotest.test_case "duplicates ignored" `Quick test_duplicates_ignored;
          Alcotest.test_case "p ~ 1/interval" `Quick test_p_matches_uniform_intervals;
          Alcotest.test_case "remodel merges events" `Quick test_remodel_merges_events;
          Alcotest.test_case "remodel splits events" `Quick test_remodel_splits_events;
          Alcotest.test_case "remodel no-op without gaps" `Quick test_remodel_noop_without_gaps;
          Alcotest.test_case "remodel preserves uncovered history" `Quick
            test_remodel_preserves_uncovered_history;
        ] );
      ( "rate_meter",
        [
          Alcotest.test_case "basic rate" `Quick test_meter_basic_rate;
          Alcotest.test_case "window expiry" `Quick test_meter_window_expiry;
          Alcotest.test_case "burst floor" `Quick test_meter_burst_floor;
          Alcotest.test_case "total" `Quick test_meter_total;
          Alcotest.test_case "set window" `Quick test_meter_set_window;
        ] );
      ( "agents",
        [
          Alcotest.test_case "slowstart + transfer" `Quick test_tfrc_slowstart_and_transfer;
          Alcotest.test_case "tracks equation rate" `Slow test_tfrc_tracks_equation_rate;
          Alcotest.test_case "halts without feedback" `Quick test_tfrc_halts_without_feedback;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_loss_rate_bounded; prop_loss_events_monotone;
            prop_meter_rate_nonneg; prop_mean_interval_inverse_of_p;
            prop_seen_plus_lost_bounded;
          ] );
    ]
