test/test_tear.mli:
