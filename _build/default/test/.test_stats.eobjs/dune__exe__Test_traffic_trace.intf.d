test/test_traffic_trace.mli:
