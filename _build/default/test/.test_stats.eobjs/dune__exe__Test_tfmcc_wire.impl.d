test/test_tfmcc_wire.ml: Alcotest Netsim Printf Tfmcc_core
