test/test_layered.ml: Alcotest Array Layered List Netsim Printf
