test/test_stats.ml: Alcotest Array Float Fun Gen List Printf QCheck QCheck_alcotest Stats
