test/test_tfmcc_wire.mli:
