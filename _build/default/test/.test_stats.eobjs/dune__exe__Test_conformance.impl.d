test/test_conformance.ml: Alcotest List Netsim Printf String Tcp_model Tfmcc_core
