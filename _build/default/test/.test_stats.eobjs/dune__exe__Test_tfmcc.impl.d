test/test_tfmcc.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Stats Tfmcc_core
