test/test_experiments.ml: Alcotest Array Experiments Float Format List Netsim Printf Stats String Tfmcc_core
