test/test_tear.ml: Alcotest Array Netsim Option Printf Stats Tear
