test/test_pgmcc.ml: Alcotest Array Netsim Option Pgmcc Printf Stats
