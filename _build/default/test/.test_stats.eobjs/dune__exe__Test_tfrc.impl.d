test/test_tfrc.ml: Alcotest Array Gen List Netsim Printf QCheck QCheck_alcotest Tcp_model Tfrc
