test/test_tfmcc.mli:
