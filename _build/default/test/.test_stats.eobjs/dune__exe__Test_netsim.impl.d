test/test_netsim.ml: Alcotest Array Fun Gen List Netsim Option Printf QCheck QCheck_alcotest Stats
