test/test_repair.ml: Alcotest Gen List Netsim Printf QCheck QCheck_alcotest Repair Tfmcc_core
