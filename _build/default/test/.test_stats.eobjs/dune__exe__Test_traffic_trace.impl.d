test/test_traffic_trace.ml: Alcotest List Netsim Printf String
