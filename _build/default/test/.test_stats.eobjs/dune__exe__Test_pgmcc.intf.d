test/test_pgmcc.mli:
