test/test_tcp.ml: Alcotest Array List Netsim Printf QCheck QCheck_alcotest Tcp Tcp_model
