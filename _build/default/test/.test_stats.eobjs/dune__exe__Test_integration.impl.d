test/test_integration.ml: Alcotest Array Experiments Float List Netsim Printf Stats Stdlib Tcp_model Tfmcc_core
