(* Tests for the TEAR window-emulation protocol (paper §5). *)

let path ~loss =
  let e = Netsim.Engine.create ~seed:53 () in
  let topo = Netsim.Topology.create e in
  let a = Netsim.Topology.add_node topo in
  let b = Netsim.Topology.add_node topo in
  let loss_ab =
    if loss > 0. then
      Some (Netsim.Loss_model.bernoulli ~rng:(Netsim.Engine.split_rng e) ~p:loss)
    else None
  in
  ignore (Netsim.Topology.connect topo ?loss_ab ~bandwidth_bps:20e6 ~delay_s:0.015 a b);
  (e, topo, a, b)

let session topo a b =
  let snd = Tear.Sender.create topo ~conn:1 ~flow:1 ~src:a ~dst:b () in
  let rcv = Tear.Receiver.create topo ~conn:1 ~node:b ~sender:a () in
  (snd, rcv)

let test_transfer_and_feedback () =
  let e, topo, a, b = path ~loss:0. in
  let snd, rcv = session topo a b in
  Tear.Sender.start snd ~at:0.;
  Netsim.Engine.run ~until:30. e;
  Alcotest.(check bool) "data flowed" true (Tear.Receiver.packets_received rcv > 200);
  Alcotest.(check bool) "feedback flowed" true (Tear.Receiver.feedback_sent rcv > 20);
  match Tear.Sender.rtt snd with
  | Some rtt -> Alcotest.(check bool) "plausible RTT" true (rtt > 0.02 && rtt < 0.5)
  | None -> Alcotest.fail "no RTT measured"

let test_window_grows_without_loss () =
  let e, topo, a, b = path ~loss:0. in
  let snd, rcv = session topo a b in
  Tear.Sender.start snd ~at:0.;
  (* Before the ramp saturates the 20 Mbit/s link there is no loss and
     the shadow window must open monotonically without closing an
     epoch. *)
  Netsim.Engine.run ~until:3. e;
  Alcotest.(check bool) "window opened" true (Tear.Receiver.window rcv > 10.);
  Alcotest.(check int) "no epochs before saturation" 0
    (Tear.Receiver.epochs_completed rcv);
  (* Left alone it saturates the link and starts real (self-induced)
     loss epochs. *)
  Netsim.Engine.run ~until:30. e;
  Alcotest.(check bool) "self-induced epochs at the bottleneck" true
    (Tear.Receiver.epochs_completed rcv > 0)

let test_loss_creates_epochs_and_bounds_rate () =
  let e, topo, a, b = path ~loss:0.02 in
  let snd, rcv = session topo a b in
  Tear.Sender.start snd ~at:0.;
  Netsim.Engine.run ~until:120. e;
  Alcotest.(check bool) "epochs completed" true (Tear.Receiver.epochs_completed rcv > 20);
  (* Mathis scale at p=0.02, rtt~0.035: W ~ 8.6 -> rate ~ 8.6*1000/0.035
     ~ 246 kB/s.  Accept a factor of 3. *)
  let rate = Tear.Sender.rate_bytes_per_s snd in
  Alcotest.(check bool)
    (Printf.sprintf "rate in TCP-equivalent range (got %.0f B/s)" rate)
    true
    (rate > 80_000. && rate < 750_000.)

let test_rate_responds_to_loss_change () =
  let e, topo, a, b = path ~loss:0.005 in
  let snd, rcv = session topo a b in
  ignore rcv;
  Tear.Sender.start snd ~at:0.;
  Netsim.Engine.run ~until:60. e;
  let before = Tear.Sender.rate_bytes_per_s snd in
  (* Loss increases 8x: the advertised rate must come down. *)
  let na = Netsim.Topology.node topo 0 and nb = Netsim.Topology.node topo 1 in
  let link = Option.get (Netsim.Topology.link_between topo na nb) in
  Netsim.Link.set_loss link
    (Netsim.Loss_model.bernoulli ~rng:(Netsim.Engine.split_rng e) ~p:0.04);
  Netsim.Engine.run ~until:150. e;
  let after = Tear.Sender.rate_bytes_per_s snd in
  Alcotest.(check bool)
    (Printf.sprintf "rate dropped (%.0f -> %.0f)" before after)
    true
    (after < 0.75 *. before)

let test_smoother_than_instantaneous_window () =
  (* The advertised rate must vary much less than the raw shadow window:
     sample both over time under steady loss. *)
  let e, topo, a, b = path ~loss:0.02 in
  let snd, rcv = session topo a b in
  Tear.Sender.start snd ~at:0.;
  let windows = ref [] and rates = ref [] in
  let rec poll t =
    if t < 120. then
      ignore
        (Netsim.Engine.at e ~time:t (fun () ->
             windows := Tear.Receiver.window rcv :: !windows;
             rates := Tear.Receiver.rate_bytes_per_s rcv :: !rates;
             poll (t +. 0.5)))
  in
  poll 30.;
  Netsim.Engine.run ~until:120. e;
  let cov l = Stats.Descriptive.coefficient_of_variation (Array.of_list l) in
  Alcotest.(check bool)
    (Printf.sprintf "rate smoother than window (%.2f < %.2f)" (cov !rates) (cov !windows))
    true
    (cov !rates < cov !windows)

let test_stop_halts () =
  let e, topo, a, b = path ~loss:0. in
  let snd, rcv = session topo a b in
  Tear.Sender.start snd ~at:0.;
  Netsim.Engine.run ~until:10. e;
  Tear.Sender.stop snd;
  let got = Tear.Receiver.packets_received rcv in
  Netsim.Engine.run ~until:20. e;
  (* At a saturated bottleneck, up to a queueful (50) plus the line can
     still be in flight. *)
  Alcotest.(check bool) "only in-flight afterwards" true
    (Tear.Receiver.packets_received rcv - got <= 60)

let () =
  Alcotest.run "tear"
    [
      ( "protocol",
        [
          Alcotest.test_case "transfer + feedback" `Quick test_transfer_and_feedback;
          Alcotest.test_case "window grows cleanly" `Quick test_window_grows_without_loss;
          Alcotest.test_case "loss epochs bound rate" `Slow test_loss_creates_epochs_and_bounds_rate;
          Alcotest.test_case "responds to loss change" `Slow test_rate_responds_to_loss_change;
          Alcotest.test_case "rate smoother than window" `Slow test_smoother_than_instantaneous_window;
          Alcotest.test_case "stop halts" `Quick test_stop_halts;
        ] );
    ]
