(* Unit and property tests for the Stats library. *)

let check_float = Alcotest.(check (float 1e-9))

let check_close eps name expected actual = Alcotest.(check (float eps)) name expected actual

(* ------------------------------------------------------------------ Rng *)

let test_rng_determinism () =
  let a = Stats.Rng.create 7 and b = Stats.Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Stats.Rng.bits64 a) (Stats.Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Stats.Rng.create 1 and b = Stats.Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true
    (Stats.Rng.bits64 a <> Stats.Rng.bits64 b)

let test_rng_split_independence () =
  let parent = Stats.Rng.create 3 in
  let child = Stats.Rng.split parent in
  let c1 = Stats.Rng.bits64 child in
  let p1 = Stats.Rng.bits64 parent in
  Alcotest.(check bool) "child differs from parent" true (c1 <> p1)

let test_rng_copy () =
  let a = Stats.Rng.create 11 in
  ignore (Stats.Rng.bits64 a);
  let b = Stats.Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Stats.Rng.bits64 a)
    (Stats.Rng.bits64 b)

let test_rng_uniform_range () =
  let rng = Stats.Rng.create 5 in
  for _ = 1 to 10_000 do
    let u = Stats.Rng.uniform rng in
    if u < 0. || u >= 1. then Alcotest.failf "uniform out of range: %f" u
  done

let test_rng_uniform_mean () =
  let rng = Stats.Rng.create 17 in
  let n = 100_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Stats.Rng.uniform rng
  done;
  check_close 0.01 "mean ~ 0.5" 0.5 (!acc /. float_of_int n)

let test_rng_int_bounds () =
  let rng = Stats.Rng.create 23 in
  for _ = 1 to 10_000 do
    let v = Stats.Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "int out of range: %d" v
  done

let test_rng_exponential_mean () =
  let rng = Stats.Rng.create 29 in
  let n = 100_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Stats.Rng.exponential rng ~mean:2.5
  done;
  check_close 0.1 "exponential mean" 2.5 (!acc /. float_of_int n)

let test_rng_shuffle_permutation () =
  let rng = Stats.Rng.create 31 in
  let a = Array.init 50 Fun.id in
  Stats.Rng.shuffle_in_place rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

(* -------------------------------------------------------------- Special *)

let test_log_gamma_factorials () =
  (* Γ(n) = (n-1)! *)
  let fact n =
    let rec go acc k = if k <= 1 then acc else go (acc *. float_of_int k) (k - 1) in
    go 1. n
  in
  List.iter
    (fun n ->
      check_close 1e-9 (Printf.sprintf "log_gamma %d" n)
        (log (fact (n - 1)))
        (Stats.Special.log_gamma (float_of_int n)))
    [ 1; 2; 3; 4; 5; 6; 10; 15 ]

let test_log_gamma_half () =
  (* Γ(1/2) = sqrt(pi) *)
  check_close 1e-9 "log_gamma 0.5" (log (sqrt Float.pi)) (Stats.Special.log_gamma 0.5)

let test_gamma_p_limits () =
  check_float "P(a,0) = 0" 0. (Stats.Special.gamma_p 2.5 0.);
  check_close 1e-6 "P(a,inf-ish) = 1" 1. (Stats.Special.gamma_p 2.5 200.)

let test_gamma_p_exponential_case () =
  (* P(1, x) = 1 - exp(-x) *)
  List.iter
    (fun x ->
      check_close 1e-9
        (Printf.sprintf "P(1,%g)" x)
        (1. -. exp (-.x))
        (Stats.Special.gamma_p 1. x))
    [ 0.1; 0.5; 1.; 2.; 5. ]

let test_erf_values () =
  check_close 1e-6 "erf 0" 0. (Stats.Special.erf 0.);
  check_close 1e-4 "erf 1" 0.8427007 (Stats.Special.erf 1.);
  check_close 1e-4 "erf -1" (-0.8427007) (Stats.Special.erf (-1.))

(* ----------------------------------------------------------------- Dist *)

let test_gamma_sample_moments () =
  let rng = Stats.Rng.create 101 in
  let shape = 3. and scale = 2. in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Stats.Dist.gamma_sample rng ~shape ~scale) in
  check_close 0.1 "gamma mean" (shape *. scale) (Stats.Descriptive.mean xs);
  check_close 0.5 "gamma variance" (shape *. scale *. scale) (Stats.Descriptive.variance xs)

let test_gamma_sample_small_shape () =
  let rng = Stats.Rng.create 103 in
  let shape = 0.5 and scale = 1. in
  let xs = Array.init 50_000 (fun _ -> Stats.Dist.gamma_sample rng ~shape ~scale) in
  check_close 0.05 "gamma mean (shape<1)" 0.5 (Stats.Descriptive.mean xs);
  Array.iter (fun x -> if x <= 0. then Alcotest.fail "gamma sample not positive") xs

let test_gamma_cdf_median () =
  (* CDF evaluated at empirical median should be ~0.5 *)
  let rng = Stats.Rng.create 107 in
  let xs = Array.init 20_000 (fun _ -> Stats.Dist.gamma_sample rng ~shape:4. ~scale:1.) in
  let med = Stats.Descriptive.median xs in
  check_close 0.02 "cdf at median" 0.5 (Stats.Dist.gamma_cdf ~shape:4. ~scale:1. med)

let test_exponential_cdf () =
  check_float "cdf 0" 0. (Stats.Dist.exponential_cdf ~mean:2. 0.);
  check_close 1e-9 "cdf mean" (1. -. exp (-1.)) (Stats.Dist.exponential_cdf ~mean:2. 2.)

let test_min_of_gamma_decreases () =
  let rng = Stats.Rng.create 109 in
  let m1 = Stats.Dist.gamma_mean_of_min ~shape:8. ~scale:1. ~n:1 ~samples:2000 rng in
  let m10 = Stats.Dist.gamma_mean_of_min ~shape:8. ~scale:1. ~n:10 ~samples:2000 rng in
  let m100 = Stats.Dist.gamma_mean_of_min ~shape:8. ~scale:1. ~n:100 ~samples:2000 rng in
  Alcotest.(check bool) "min decreases in n" true (m1 > m10 && m10 > m100)

let test_bernoulli_rate () =
  let rng = Stats.Rng.create 113 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Stats.Dist.bernoulli rng ~p:0.3 then incr hits
  done;
  check_close 0.01 "bernoulli rate" 0.3 (float_of_int !hits /. float_of_int n)

(* ---------------------------------------------------------- Descriptive *)

let test_mean_var () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "mean" 3. (Stats.Descriptive.mean xs);
  check_float "variance" 2.5 (Stats.Descriptive.variance xs);
  check_close 1e-9 "stddev" (sqrt 2.5) (Stats.Descriptive.stddev xs)

let test_mean_empty () = check_float "mean of empty" 0. (Stats.Descriptive.mean [||])

let test_percentiles () =
  let xs = [| 5.; 1.; 3.; 2.; 4. |] in
  check_float "median" 3. (Stats.Descriptive.median xs);
  check_float "p0" 1. (Stats.Descriptive.percentile xs 0.);
  check_float "p100" 5. (Stats.Descriptive.percentile xs 100.);
  check_float "p25" 2. (Stats.Descriptive.percentile xs 25.)

let test_percentile_interpolation () =
  let xs = [| 0.; 10. |] in
  check_float "p50 interpolates" 5. (Stats.Descriptive.percentile xs 50.)

let test_summarize () =
  let s = Stats.Descriptive.summarize [| 2.; 4.; 6.; 8. |] in
  Alcotest.(check int) "n" 4 s.Stats.Descriptive.n;
  check_float "mean" 5. s.Stats.Descriptive.mean;
  check_float "min" 2. s.Stats.Descriptive.min;
  check_float "max" 8. s.Stats.Descriptive.max

let test_cov () =
  check_float "cov of constant" 0.
    (Stats.Descriptive.coefficient_of_variation [| 3.; 3.; 3. |])

let test_jain_index () =
  check_float "equal shares are fair" 1. (Stats.Descriptive.jain_index [| 2.; 2.; 2. |]);
  check_close 1e-9 "one hog" (1. /. 4.)
    (Stats.Descriptive.jain_index [| 1.; 0.; 0.; 0. |]);
  (* sum = 5, sum of squares = 7: index = 25 / (4*7) *)
  check_close 1e-9 "known mixed case" (25. /. 28.)
    (Stats.Descriptive.jain_index [| 1.; 1.; 1.; 2. |])

(* ----------------------------------------------------------- Timeseries *)

let test_timeseries_binning () =
  let s = Stats.Timeseries.create () in
  Stats.Timeseries.add s ~time:0.5 ~value:10.;
  Stats.Timeseries.add s ~time:1.5 ~value:20.;
  Stats.Timeseries.add s ~time:1.7 ~value:5.;
  let bins = Stats.Timeseries.bin_sum s ~bin:1.0 ~t_end:3.0 in
  Alcotest.(check int) "3 bins" 3 (Array.length bins);
  check_float "bin0" 10. (snd bins.(0));
  check_float "bin1" 25. (snd bins.(1));
  check_float "bin2" 0. (snd bins.(2))

let test_timeseries_rate () =
  let s = Stats.Timeseries.create () in
  Stats.Timeseries.add s ~time:0.1 ~value:100.;
  let r = Stats.Timeseries.bin_rate s ~bin:0.5 ~t_end:0.5 in
  check_float "rate = sum / width" 200. (snd r.(0))

let test_timeseries_monotonic_guard () =
  let s = Stats.Timeseries.create () in
  Stats.Timeseries.add s ~time:1.0 ~value:1.;
  Alcotest.check_raises "rejects going backwards"
    (Invalid_argument "Timeseries.add: time must be non-decreasing") (fun () ->
      Stats.Timeseries.add s ~time:0.5 ~value:1.)

let test_counter_throughput () =
  let c = Stats.Timeseries.Counter.create () in
  Stats.Timeseries.Counter.record c ~time:1.0 ~bytes:1000;
  Stats.Timeseries.Counter.record c ~time:2.0 ~bytes:1000;
  Alcotest.(check int) "total" 2000 (Stats.Timeseries.Counter.total_bytes c);
  (* 2000 bytes in [0,4) -> 4000 bits/s *)
  check_float "bps" 4000.
    (Stats.Timeseries.Counter.throughput_bps c ~t_start:0. ~t_end:4.)

(* ------------------------------------------------------------------ Cdf *)

let test_cdf_eval () =
  let c = Stats.Cdf.of_samples [| 1.; 2.; 3.; 4. |] in
  check_float "below" 0. (Stats.Cdf.eval c 0.5);
  check_float "mid" 0.5 (Stats.Cdf.eval c 2.);
  check_float "mid2" 0.5 (Stats.Cdf.eval c 2.5);
  check_float "top" 1. (Stats.Cdf.eval c 4.)

let test_cdf_quantile () =
  let c = Stats.Cdf.of_samples [| 10.; 20.; 30.; 40.; 50. |] in
  check_float "q 0.2" 10. (Stats.Cdf.quantile c 0.2);
  check_float "q 1.0" 50. (Stats.Cdf.quantile c 1.0)

let test_cdf_points_monotone () =
  let rng = Stats.Rng.create 211 in
  let samples = Array.init 500 (fun _ -> Stats.Rng.uniform rng) in
  let c = Stats.Cdf.of_samples samples in
  let pts = Stats.Cdf.points c ~n:50 in
  Array.iteri
    (fun i (_, y) ->
      if i > 0 && y < snd pts.(i - 1) then Alcotest.fail "CDF not monotone")
    pts

(* -------------------------------------------------- more distributions *)

let test_pareto_bounds_and_mean () =
  let rng = Stats.Rng.create 401 in
  let shape = 3. and scale = 2. in
  let xs = Array.init 50_000 (fun _ -> Stats.Dist.pareto_sample rng ~shape ~scale) in
  Array.iter (fun x -> if x < scale then Alcotest.fail "pareto below scale") xs;
  (* mean = shape*scale/(shape-1) = 3 *)
  check_close 0.1 "pareto mean" 3. (Stats.Descriptive.mean xs)

let test_gamma_q_complement () =
  List.iter
    (fun (a, x) ->
      check_close 1e-9 "P + Q = 1" 1.
        (Stats.Special.gamma_p a x +. Stats.Special.gamma_q a x))
    [ (0.5, 0.2); (1., 1.); (3.5, 2.); (8., 20.) ]

let test_erf_odd () =
  List.iter
    (fun x -> check_close 1e-7 "erf odd" (-.Stats.Special.erf x) (Stats.Special.erf (-.x)))
    [ 0.2; 0.7; 1.5; 2.5 ]

let test_timeseries_between () =
  let s = Stats.Timeseries.create () in
  List.iter
    (fun (t, v) -> Stats.Timeseries.add s ~time:t ~value:v)
    [ (0.5, 1.); (1.5, 2.); (2.5, 3.); (3.5, 4.) ];
  let w = Stats.Timeseries.between s ~t_start:1.0 ~t_end:3.0 in
  Alcotest.(check int) "two points in window" 2 (Array.length w);
  check_float "first" 2. (snd w.(0));
  check_float "second" 3. (snd w.(1))

let test_counter_rate_series () =
  let c = Stats.Timeseries.Counter.create () in
  Stats.Timeseries.Counter.record c ~time:0.25 ~bytes:500;
  Stats.Timeseries.Counter.record c ~time:1.25 ~bytes:1500;
  let series = Stats.Timeseries.Counter.rate_series_bps c ~bin:1. ~t_end:2. in
  Alcotest.(check int) "two bins" 2 (Array.length series);
  check_float "bin0 bps" 4000. (snd series.(0));
  check_float "bin1 bps" 12000. (snd series.(1))

let test_shuffle_deterministic () =
  let mk () =
    let rng = Stats.Rng.create 77 in
    let a = Array.init 20 Fun.id in
    Stats.Rng.shuffle_in_place rng a;
    a
  in
  Alcotest.(check (array int)) "same seed, same shuffle" (mk ()) (mk ())

(* ----------------------------------------------------------- Properties *)

let prop_percentile_bounded =
  QCheck.Test.make ~name:"percentile lies within [min,max]" ~count:200
    QCheck.(pair (array_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.)) (float_bound_inclusive 100.))
    (fun (xs, q) ->
      QCheck.assume (Array.length xs > 0);
      let p = Stats.Descriptive.percentile xs q in
      p >= Stats.Descriptive.min xs -. 1e-9 && p <= Stats.Descriptive.max xs +. 1e-9)

let prop_cdf_monotone =
  QCheck.Test.make ~name:"empirical CDF is monotone" ~count:100
    QCheck.(array_of_size Gen.(int_range 1 100) (float_bound_exclusive 100.))
    (fun xs ->
      QCheck.assume (Array.length xs > 0);
      let c = Stats.Cdf.of_samples xs in
      let lo, hi = Stats.Cdf.support c in
      let n = 20 in
      let ok = ref true in
      let prev = ref (-1.) in
      for i = 0 to n do
        let x = lo +. ((hi -. lo) *. float_of_int i /. float_of_int n) in
        let y = Stats.Cdf.eval c x in
        if y < !prev then ok := false;
        prev := y
      done;
      !ok)

let prop_exponential_positive =
  QCheck.Test.make ~name:"exponential samples are positive" ~count:500
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let rng = Stats.Rng.create seed in
      Stats.Rng.exponential rng ~mean:1.0 > 0.)

let () =
  Alcotest.run "stats"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
          Alcotest.test_case "uniform mean" `Quick test_rng_uniform_mean;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "special",
        [
          Alcotest.test_case "log_gamma at integers" `Quick test_log_gamma_factorials;
          Alcotest.test_case "log_gamma at 1/2" `Quick test_log_gamma_half;
          Alcotest.test_case "gamma_p limits" `Quick test_gamma_p_limits;
          Alcotest.test_case "gamma_p a=1 is exponential" `Quick test_gamma_p_exponential_case;
          Alcotest.test_case "erf known values" `Quick test_erf_values;
        ] );
      ( "dist",
        [
          Alcotest.test_case "gamma moments" `Slow test_gamma_sample_moments;
          Alcotest.test_case "gamma shape<1" `Slow test_gamma_sample_small_shape;
          Alcotest.test_case "gamma cdf at median" `Slow test_gamma_cdf_median;
          Alcotest.test_case "exponential cdf" `Quick test_exponential_cdf;
          Alcotest.test_case "E[min of gammas] decreases" `Slow test_min_of_gamma_decreases;
          Alcotest.test_case "bernoulli rate" `Slow test_bernoulli_rate;
        ] );
      ( "descriptive",
        [
          Alcotest.test_case "mean/var" `Quick test_mean_var;
          Alcotest.test_case "mean of empty" `Quick test_mean_empty;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "percentile interpolation" `Quick test_percentile_interpolation;
          Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "cov of constant" `Quick test_cov;
          Alcotest.test_case "jain index" `Quick test_jain_index;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "binning" `Quick test_timeseries_binning;
          Alcotest.test_case "rate" `Quick test_timeseries_rate;
          Alcotest.test_case "monotonic guard" `Quick test_timeseries_monotonic_guard;
          Alcotest.test_case "counter throughput" `Quick test_counter_throughput;
        ] );
      ( "more-dist",
        [
          Alcotest.test_case "pareto bounds + mean" `Slow test_pareto_bounds_and_mean;
          Alcotest.test_case "gamma P+Q=1" `Quick test_gamma_q_complement;
          Alcotest.test_case "erf odd" `Quick test_erf_odd;
          Alcotest.test_case "timeseries between" `Quick test_timeseries_between;
          Alcotest.test_case "counter rate series" `Quick test_counter_rate_series;
          Alcotest.test_case "shuffle deterministic" `Quick test_shuffle_deterministic;
        ] );
      ( "cdf",
        [
          Alcotest.test_case "eval" `Quick test_cdf_eval;
          Alcotest.test_case "quantile" `Quick test_cdf_quantile;
          Alcotest.test_case "points monotone" `Quick test_cdf_points_monotone;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_percentile_bounded; prop_cdf_monotone; prop_exponential_positive ] );
    ]
