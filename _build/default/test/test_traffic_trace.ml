(* Tests for the background-traffic generators and the packet tracer. *)

let two_node ?(bandwidth_bps = 10e6) ?loss_p () =
  let e = Netsim.Engine.create ~seed:61 () in
  let topo = Netsim.Topology.create e in
  let a = Netsim.Topology.add_node topo in
  let b = Netsim.Topology.add_node topo in
  let loss_ab =
    match loss_p with
    | Some p -> Some (Netsim.Loss_model.bernoulli ~rng:(Netsim.Engine.split_rng e) ~p)
    | None -> None
  in
  let ab, _ =
    Netsim.Topology.connect topo ?loss_ab ~bandwidth_bps ~delay_s:0.005 a b
  in
  (e, topo, a, b, ab)

(* -------------------------------------------------------------- Traffic *)

let test_cbr_rate () =
  let e, topo, a, b, _ = two_node () in
  let mon = Netsim.Monitor.create e in
  Netsim.Monitor.watch_node mon b;
  let g = Netsim.Traffic.cbr topo ~flow:5 ~src:a ~dst:b ~rate_bps:1e6 () in
  Netsim.Traffic.start g ~at:0.;
  Netsim.Engine.run ~until:20. e;
  let bps = Netsim.Monitor.throughput_bps mon ~flow:5 ~t_start:1. ~t_end:20. in
  Alcotest.(check bool)
    (Printf.sprintf "CBR within 5%% of 1 Mbit/s (got %.0f)" bps)
    true
    (abs_float (bps -. 1e6) < 5e4)

let test_poisson_rate_and_variability () =
  let e, topo, a, b, _ = two_node () in
  let mon = Netsim.Monitor.create e in
  Netsim.Monitor.watch_node mon b;
  let g = Netsim.Traffic.poisson topo ~flow:5 ~src:a ~dst:b ~rate_bps:1e6 () in
  Netsim.Traffic.start g ~at:0.;
  Netsim.Engine.run ~until:40. e;
  let bps = Netsim.Monitor.throughput_bps mon ~flow:5 ~t_start:1. ~t_end:40. in
  Alcotest.(check bool)
    (Printf.sprintf "Poisson mean rate (got %.0f)" bps)
    true
    (abs_float (bps -. 1e6) < 1e5)

let test_on_off_average () =
  let e, topo, a, b, _ = two_node () in
  let mon = Netsim.Monitor.create e in
  Netsim.Monitor.watch_node mon b;
  let g =
    Netsim.Traffic.on_off topo ~flow:5 ~src:a ~dst:b ~rate_bps:2e6 ~on_mean:0.5
      ~off_mean:0.5 ()
  in
  Netsim.Traffic.start g ~at:0.;
  Netsim.Engine.run ~until:120. e;
  let bps = Netsim.Monitor.throughput_bps mon ~flow:5 ~t_start:0. ~t_end:120. in
  (* long-run average = 2 Mbit/s * 0.5 duty = 1 Mbit/s, generously bounded *)
  Alcotest.(check bool)
    (Printf.sprintf "on-off long-run average (got %.0f)" bps)
    true
    (bps > 0.6e6 && bps < 1.4e6)

let test_traffic_stop () =
  let e, topo, a, b, _ = two_node () in
  let g = Netsim.Traffic.cbr topo ~flow:5 ~src:a ~dst:b ~rate_bps:1e6 () in
  Netsim.Traffic.start g ~at:0.;
  Netsim.Engine.run ~until:5. e;
  Netsim.Traffic.stop g;
  let sent = Netsim.Traffic.packets_sent g in
  Netsim.Engine.run ~until:10. e;
  Alcotest.(check int) "no packets after stop" sent (Netsim.Traffic.packets_sent g)

let test_traffic_byte_accounting () =
  let e, topo, a, b, _ = two_node () in
  let g = Netsim.Traffic.cbr topo ~flow:5 ~src:a ~dst:b ~rate_bps:1e6 ~packet_size:500 () in
  Netsim.Traffic.start g ~at:0.;
  Netsim.Engine.run ~until:2. e;
  Alcotest.(check int) "bytes = packets * size"
    (500 * Netsim.Traffic.packets_sent g)
    (Netsim.Traffic.bytes_sent g)

(* ---------------------------------------------------------------- Trace *)

let test_trace_records_tx_and_deliver () =
  let e, topo, a, b, ab = two_node () in
  let tr = Netsim.Trace.create () in
  Netsim.Trace.attach tr ab;
  let g = Netsim.Traffic.cbr topo ~flow:5 ~src:a ~dst:b ~rate_bps:1e6 () in
  Netsim.Traffic.start g ~at:0.;
  Netsim.Engine.run ~until:1. e;
  let tx = Netsim.Trace.count tr ~kind:Netsim.Trace.Tx in
  let rx = Netsim.Trace.count tr ~kind:Netsim.Trace.Deliver in
  Alcotest.(check bool) "transmissions recorded" true (tx > 50);
  Alcotest.(check int) "all delivered on clean link" tx rx

let test_trace_records_loss () =
  let e, topo, a, b, ab = two_node ~loss_p:0.5 () in
  let tr = Netsim.Trace.create () in
  Netsim.Trace.attach tr ab;
  let g = Netsim.Traffic.cbr topo ~flow:5 ~src:a ~dst:b ~rate_bps:1e6 () in
  Netsim.Traffic.start g ~at:0.;
  Netsim.Engine.run ~until:5. e;
  let tx = Netsim.Trace.count tr ~kind:Netsim.Trace.Tx in
  let lost = Netsim.Trace.count tr ~kind:Netsim.Trace.Drop_loss in
  let rx = Netsim.Trace.count tr ~kind:Netsim.Trace.Deliver in
  Alcotest.(check int) "tx = lost + delivered" tx (lost + rx);
  Alcotest.(check bool) "roughly half lost" true
    (let frac = float_of_int lost /. float_of_int tx in
     frac > 0.35 && frac < 0.65)

let test_trace_records_queue_drops () =
  (* Overload a slow link: the queue must reject packets. *)
  let e, topo, a, b, ab = two_node ~bandwidth_bps:100e3 () in
  let tr = Netsim.Trace.create () in
  Netsim.Trace.attach tr ab;
  let g = Netsim.Traffic.cbr topo ~flow:5 ~src:a ~dst:b ~rate_bps:1e6 () in
  Netsim.Traffic.start g ~at:0.;
  Netsim.Engine.run ~until:10. e;
  Alcotest.(check bool) "queue drops recorded" true
    (Netsim.Trace.count tr ~kind:Netsim.Trace.Drop_queue > 0)

let test_trace_ring_buffer () =
  let e, topo, a, b, ab = two_node () in
  let tr = Netsim.Trace.create ~capacity:10 () in
  Netsim.Trace.attach tr ab;
  let g = Netsim.Traffic.cbr topo ~flow:5 ~src:a ~dst:b ~rate_bps:1e6 () in
  Netsim.Traffic.start g ~at:0.;
  Netsim.Engine.run ~until:1. e;
  Alcotest.(check int) "retains only capacity" 10
    (List.length (Netsim.Trace.events tr));
  Alcotest.(check bool) "total keeps counting" true
    (Netsim.Trace.total_recorded tr > 10);
  (* events are time-ordered *)
  let times = List.map (fun ev -> ev.Netsim.Trace.time) (Netsim.Trace.events tr) in
  Alcotest.(check (list (float 1e-9))) "sorted" (List.sort compare times) times

let test_trace_text_format () =
  let e, topo, a, b, ab = two_node () in
  let tr = Netsim.Trace.create () in
  Netsim.Trace.attach tr ab;
  let g = Netsim.Traffic.cbr topo ~flow:5 ~src:a ~dst:b ~rate_bps:1e6 () in
  Netsim.Traffic.start g ~at:0.;
  Netsim.Engine.run ~until:0.1 e;
  let text = Netsim.Trace.to_text tr in
  Alcotest.(check bool) "non-empty" true (String.length text > 0);
  let first_line = List.hd (String.split_on_char '\n' text) in
  Alcotest.(check bool) "starts with an event char" true
    (String.length first_line > 0
    && List.mem first_line.[0] [ '+'; 'd'; 'x'; 'r' ])

let test_trace_clear () =
  let e, topo, a, b, ab = two_node () in
  let tr = Netsim.Trace.create () in
  Netsim.Trace.attach tr ab;
  let g = Netsim.Traffic.cbr topo ~flow:5 ~src:a ~dst:b ~rate_bps:1e6 () in
  Netsim.Traffic.start g ~at:0.;
  Netsim.Engine.run ~until:1. e;
  Netsim.Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (List.length (Netsim.Trace.events tr))

let () =
  Alcotest.run "traffic_trace"
    [
      ( "traffic",
        [
          Alcotest.test_case "CBR rate" `Quick test_cbr_rate;
          Alcotest.test_case "Poisson rate" `Quick test_poisson_rate_and_variability;
          Alcotest.test_case "on-off average" `Slow test_on_off_average;
          Alcotest.test_case "stop" `Quick test_traffic_stop;
          Alcotest.test_case "byte accounting" `Quick test_traffic_byte_accounting;
        ] );
      ( "trace",
        [
          Alcotest.test_case "tx + deliver" `Quick test_trace_records_tx_and_deliver;
          Alcotest.test_case "loss drops" `Quick test_trace_records_loss;
          Alcotest.test_case "queue drops" `Quick test_trace_records_queue_drops;
          Alcotest.test_case "ring buffer" `Quick test_trace_ring_buffer;
          Alcotest.test_case "text format" `Quick test_trace_text_format;
          Alcotest.test_case "clear" `Quick test_trace_clear;
        ] );
    ]
