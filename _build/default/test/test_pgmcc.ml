(* Tests for the PGMCC comparison protocol (paper §5). *)

let star ~losses =
  let e = Netsim.Engine.create ~seed:41 () in
  let topo = Netsim.Topology.create e in
  let sender = Netsim.Topology.add_node topo in
  let hub = Netsim.Topology.add_node topo in
  ignore (Netsim.Topology.connect topo ~bandwidth_bps:50e6 ~delay_s:0.01 sender hub);
  let rxs =
    Array.map
      (fun loss ->
        let rx = Netsim.Topology.add_node topo in
        let loss_ab =
          if loss > 0. then
            Some (Netsim.Loss_model.bernoulli ~rng:(Netsim.Engine.split_rng e) ~p:loss)
          else None
        in
        ignore
          (Netsim.Topology.connect topo ?loss_ab ~bandwidth_bps:20e6 ~delay_s:0.01 hub rx);
        rx)
      losses
  in
  (e, topo, sender, rxs)

let session e topo sender rxs =
  let snd = Pgmcc.Sender.create topo ~session:9 ~node:sender () in
  let receivers =
    Array.map
      (fun rx ->
        let r = Pgmcc.Receiver.create topo ~session:9 ~node:rx ~sender () in
        Pgmcc.Receiver.join r;
        r)
      rxs
  in
  ignore e;
  (snd, receivers)

let test_elects_acker () =
  let e, topo, sender, rxs = star ~losses:[| 0.0; 0.04; 0.005 |] in
  let snd, _rcvs = session e topo sender rxs in
  Pgmcc.Sender.start snd ~at:0.;
  Netsim.Engine.run ~until:60. e;
  match Pgmcc.Sender.acker snd with
  | Some id -> Alcotest.(check int) "acker = worst receiver" (Netsim.Node.id rxs.(1)) id
  | None -> Alcotest.fail "no acker elected"

let test_data_flows_and_sawtooth () =
  let e, topo, sender, rxs = star ~losses:[| 0.0; 0.02 |] in
  let snd, rcvs = session e topo sender rxs in
  Pgmcc.Sender.start snd ~at:0.;
  Netsim.Engine.run ~until:60. e;
  Alcotest.(check bool) "receiver got data" true
    (Pgmcc.Receiver.packets_received rcvs.(0) > 500);
  Alcotest.(check bool) "window halvings occurred" true (Pgmcc.Sender.halvings snd > 5);
  Alcotest.(check bool) "acker acked" true (Pgmcc.Receiver.acks_sent rcvs.(1) > 100)

let test_window_bounded_by_loss () =
  (* With a 5% acker the window should stay small (TCP-equation scale:
     W ~ 1.22/sqrt(0.05) ~ 5.5). *)
  let e, topo, sender, rxs = star ~losses:[| 0.05 |] in
  let snd, _ = session e topo sender rxs in
  Pgmcc.Sender.start snd ~at:0.;
  let samples = ref [] in
  let rec poll t =
    if t < 120. then
      ignore
        (Netsim.Engine.at e ~time:t (fun () ->
             samples := Pgmcc.Sender.window snd :: !samples;
             poll (t +. 1.)))
  in
  poll 30.;
  Netsim.Engine.run ~until:120. e;
  let mean_w = Stats.Descriptive.mean (Array.of_list !samples) in
  Alcotest.(check bool)
    (Printf.sprintf "mean window ~ TCP scale (got %.1f)" mean_w)
    true
    (mean_w > 1.5 && mean_w < 15.)

let test_loss_estimate_tracks () =
  let e, topo, sender, rxs = star ~losses:[| 0.03 |] in
  let snd, rcvs = session e topo sender rxs in
  Pgmcc.Sender.start snd ~at:0.;
  Netsim.Engine.run ~until:120. e;
  let est = Pgmcc.Receiver.loss_estimate rcvs.(0) in
  Alcotest.(check bool)
    (Printf.sprintf "smoothed loss near 3%% (got %.3f)" est)
    true
    (est > 0.005 && est < 0.08)

let test_no_deadlock_on_total_loss () =
  (* If the acker's path dies completely, the idle timer must keep the
     session alive (probes), not deadlock. *)
  let e, topo, sender, rxs = star ~losses:[| 0.0 |] in
  let snd, _ = session e topo sender rxs in
  Pgmcc.Sender.start snd ~at:0.;
  Netsim.Engine.run ~until:20. e;
  let link = Option.get (Netsim.Topology.link_between topo (Netsim.Topology.node topo 1) rxs.(0)) in
  Netsim.Link.set_loss link
    (Netsim.Loss_model.bernoulli ~rng:(Netsim.Engine.split_rng e) ~p:1.0);
  let sent_at_cut = Pgmcc.Sender.packets_sent snd in
  Netsim.Engine.run ~until:60. e;
  let sent_after = Pgmcc.Sender.packets_sent snd in
  Alcotest.(check bool) "probes continue" true (sent_after > sent_at_cut);
  Alcotest.(check bool) "but rate collapsed" true (sent_after - sent_at_cut < 400)

let test_stop_halts () =
  let e, topo, sender, rxs = star ~losses:[| 0.0 |] in
  let snd, rcvs = session e topo sender rxs in
  Pgmcc.Sender.start snd ~at:0.;
  Netsim.Engine.run ~until:10. e;
  Pgmcc.Sender.stop snd;
  let got = Pgmcc.Receiver.packets_received rcvs.(0) in
  Netsim.Engine.run ~until:30. e;
  Alcotest.(check bool) "at most in-flight packets after stop" true
    (Pgmcc.Receiver.packets_received rcvs.(0) - got <= 64)

let () =
  Alcotest.run "pgmcc"
    [
      ( "protocol",
        [
          Alcotest.test_case "elects worst acker" `Quick test_elects_acker;
          Alcotest.test_case "data flows, sawtooth" `Quick test_data_flows_and_sawtooth;
          Alcotest.test_case "window ~ TCP scale" `Slow test_window_bounded_by_loss;
          Alcotest.test_case "loss estimate" `Slow test_loss_estimate_tracks;
          Alcotest.test_case "no deadlock on dead path" `Quick test_no_deadlock_on_total_loss;
          Alcotest.test_case "stop halts" `Quick test_stop_halts;
        ] );
    ]
