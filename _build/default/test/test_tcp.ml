(* Tests for the TCP Reno agent and the throughput models. *)

let check_float = Alcotest.(check (float 1e-9))

(* -------------------------------------------------------- Rto_estimator *)

let test_rto_initial () =
  let r = Tcp.Rto_estimator.create () in
  check_float "initial RTO" 3. (Tcp.Rto_estimator.rto r);
  Alcotest.(check (option (float 1e-9))) "no srtt yet" None (Tcp.Rto_estimator.srtt r)

let test_rto_first_sample () =
  let r = Tcp.Rto_estimator.create () in
  Tcp.Rto_estimator.observe r 0.1;
  Alcotest.(check (option (float 1e-9))) "srtt = sample" (Some 0.1)
    (Tcp.Rto_estimator.srtt r);
  (* srtt + 4*rttvar = 0.1 + 4*0.05 = 0.3, clamped to the 1 s minimum *)
  check_float "rto after first sample" 1.0 (Tcp.Rto_estimator.rto r);
  let r2 = Tcp.Rto_estimator.create ~min_rto:0.01 () in
  Tcp.Rto_estimator.observe r2 0.1;
  check_float "unclamped rto" 0.3 (Tcp.Rto_estimator.rto r2)

let test_rto_backoff () =
  let r = Tcp.Rto_estimator.create () in
  Tcp.Rto_estimator.observe r 0.5;
  let base = Tcp.Rto_estimator.rto r in
  Tcp.Rto_estimator.backoff r;
  check_float "doubled" (2. *. base) (Tcp.Rto_estimator.rto r);
  Tcp.Rto_estimator.backoff r;
  check_float "quadrupled" (4. *. base) (Tcp.Rto_estimator.rto r);
  Tcp.Rto_estimator.reset_backoff r;
  check_float "reset" base (Tcp.Rto_estimator.rto r)

let test_rto_min_clamp () =
  let r = Tcp.Rto_estimator.create () in
  Tcp.Rto_estimator.observe r 0.001;
  Alcotest.(check bool) "clamped to min" true (Tcp.Rto_estimator.rto r >= 1.0)

let test_rto_converges () =
  let r = Tcp.Rto_estimator.create () in
  for _ = 1 to 100 do
    Tcp.Rto_estimator.observe r 0.25
  done;
  (match Tcp.Rto_estimator.srtt r with
  | Some srtt -> Alcotest.(check (float 1e-3)) "srtt converges" 0.25 srtt
  | None -> Alcotest.fail "no srtt");
  match Tcp.Rto_estimator.rttvar r with
  | Some v -> Alcotest.(check bool) "rttvar shrinks" true (v < 0.01)
  | None -> Alcotest.fail "no rttvar"

(* ------------------------------------------------------------ Tcp_model *)

let test_padhye_monotone_in_p () =
  let prev = ref infinity in
  List.iter
    (fun p ->
      let x = Tcp_model.Padhye.throughput ~s:1000 ~rtt:0.1 p in
      Alcotest.(check bool) (Printf.sprintf "decreasing at p=%g" p) true (x < !prev);
      prev := x)
    [ 0.0001; 0.001; 0.01; 0.05; 0.1; 0.3 ]

let test_padhye_scales_inverse_rtt () =
  let a = Tcp_model.Padhye.throughput ~s:1000 ~rtt:0.05 0.01 in
  let b = Tcp_model.Padhye.throughput ~s:1000 ~rtt:0.1 0.01 in
  Alcotest.(check (float 1.)) "half RTT, double rate" (2. *. b) a

let test_padhye_inverse_roundtrip () =
  List.iter
    (fun p ->
      let rate = Tcp_model.Padhye.throughput ~s:1000 ~rtt:0.08 p in
      let p' = Tcp_model.Padhye.inverse_loss ~s:1000 ~rtt:0.08 rate in
      Alcotest.(check (float 1e-6)) (Printf.sprintf "roundtrip p=%g" p) p p')
    [ 0.0001; 0.001; 0.01; 0.05; 0.1 ]

let test_padhye_known_magnitude () =
  (* p=10%, RTT=50ms, s=1000B: the paper says the fair rate is around
     300 kbit/s (Section 3). *)
  let bytes_per_s = Tcp_model.Padhye.throughput ~s:1000 ~rtt:0.05 0.1 in
  let kbit = bytes_per_s *. 8. /. 1000. in
  Alcotest.(check bool)
    (Printf.sprintf "fair rate ~300 kbit/s (got %.0f)" kbit)
    true
    (kbit > 200. && kbit < 450.)

let test_loss_events_per_rtt_max () =
  (* Appendix A: the curve peaks at ~0.13 loss events per RTT (the paper's
     curve corresponds to b=2; with b=1 the peak is ~0.19). *)
  let peak b =
    let best = ref 0. in
    let p = ref 1e-4 in
    while !p <= 1.0 do
      let v = Tcp_model.Padhye.loss_events_per_rtt ~b !p in
      if v > !best then best := v;
      p := !p *. 1.05
    done;
    !best
  in
  let b2 = peak 2. and b1 = peak 1. in
  Alcotest.(check bool)
    (Printf.sprintf "b=2 max ~0.13 (got %.3f)" b2)
    true
    (b2 > 0.11 && b2 < 0.15);
  Alcotest.(check bool)
    (Printf.sprintf "b=1 max ~0.19 (got %.3f)" b1)
    true
    (b1 > 0.16 && b1 < 0.22)

let test_mathis_inverse_exact () =
  List.iter
    (fun p ->
      let rate = Tcp_model.Mathis.throughput ~s:1000 ~rtt:0.1 ~p in
      Alcotest.(check (float 1e-12)) "exact inverse" p
        (Tcp_model.Mathis.inverse_loss ~s:1000 ~rtt:0.1 ~rate))
    [ 0.001; 0.01; 0.1 ]

let test_mathis_more_conservative () =
  (* Mathis predicts a lower rate than Padhye at low p?  Actually Mathis
     ignores timeouts so it predicts HIGHER at high p is false...  What
     App. B uses: inverse of Mathis gives a *larger* p for a given rate at
     moderate rates, i.e. a smaller (more conservative) initial interval is
     false too.  We just check the two agree within 2x at p=1%. *)
  let a = Tcp_model.Padhye.throughput ~s:1000 ~rtt:0.1 0.01 in
  let b = Tcp_model.Mathis.throughput ~s:1000 ~rtt:0.1 ~p:0.01 in
  Alcotest.(check bool) "same ballpark" true (b /. a > 0.8 && b /. a < 2.5)

let test_initial_loss_interval () =
  let rate = 125_000. (* 1 Mbit/s *) in
  let l0 = Tcp_model.Mathis.initial_loss_interval ~s:1000 ~rtt:0.1 ~rate in
  Alcotest.(check bool) "positive" true (l0 > 1.);
  (* doubling the rate should give a ~4x longer interval *)
  let l1 = Tcp_model.Mathis.initial_loss_interval ~s:1000 ~rtt:0.1 ~rate:(2. *. rate) in
  Alcotest.(check (float 0.1)) "quadratic in rate" 4. (l1 /. l0)

let test_rescale_first_interval () =
  let i' =
    Tcp_model.Mathis.rescale_first_interval ~interval:100. ~rtt_initial:0.5
      ~rtt_measured:0.05
  in
  Alcotest.(check (float 1e-9)) "scaled by (R/R0)^2" 1. i';
  let i2 =
    Tcp_model.Mathis.rescale_first_interval ~interval:100. ~rtt_initial:0.5
      ~rtt_measured:0.25
  in
  Alcotest.(check (float 1e-9)) "quarter" 25. i2

(* ---------------------------------------------------- end-to-end TCP *)

let dumbbell ~bandwidth_bps ~delay_s ~n_pairs =
  let e = Netsim.Engine.create () in
  let topo = Netsim.Topology.create e in
  let r1 = Netsim.Topology.add_node topo in
  let r2 = Netsim.Topology.add_node topo in
  ignore (Netsim.Topology.connect topo ~bandwidth_bps ~delay_s r1 r2);
  let senders = Netsim.Topology.add_nodes topo n_pairs in
  let receivers = Netsim.Topology.add_nodes topo n_pairs in
  Array.iter
    (fun s -> ignore (Netsim.Topology.connect topo ~bandwidth_bps:(bandwidth_bps *. 10.) ~delay_s:0.001 s r1))
    senders;
  Array.iter
    (fun r -> ignore (Netsim.Topology.connect topo ~bandwidth_bps:(bandwidth_bps *. 10.) ~delay_s:0.001 r2 r))
    receivers;
  (e, topo, senders, receivers)

let test_tcp_transfers_data () =
  let e, topo, s, r = dumbbell ~bandwidth_bps:1e6 ~delay_s:0.01 ~n_pairs:1 in
  let src = Tcp.Tcp_source.create topo ~conn:1 ~flow:1 ~src:s.(0) ~dst:r.(0) () in
  let sink = Tcp.Tcp_sink.create topo ~conn:1 ~node:r.(0) () in
  Tcp.Tcp_source.start src ~at:0.;
  Netsim.Engine.run ~until:10. e;
  Alcotest.(check bool) "received many segments" true
    (Tcp.Tcp_sink.segments_received sink > 100);
  Alcotest.(check bool) "acks advance" true (Tcp.Tcp_source.highest_ack src > 100)

let test_tcp_utilizes_bottleneck () =
  let e, topo, s, r = dumbbell ~bandwidth_bps:1e6 ~delay_s:0.01 ~n_pairs:1 in
  let mon = Netsim.Monitor.create e in
  Netsim.Monitor.watch_node mon r.(0);
  let src = Tcp.Tcp_source.create topo ~conn:1 ~flow:1 ~src:s.(0) ~dst:r.(0) () in
  let _sink = Tcp.Tcp_sink.create topo ~conn:1 ~node:r.(0) () in
  Tcp.Tcp_source.start src ~at:0.;
  Netsim.Engine.run ~until:30. e;
  let bps = Netsim.Monitor.throughput_bps mon ~flow:1 ~t_start:5. ~t_end:30. in
  Alcotest.(check bool)
    (Printf.sprintf ">70%% utilization (got %.0f bps)" bps)
    true (bps > 0.7e6);
  Alcotest.(check bool)
    (Printf.sprintf "<=100%% of line rate (got %.0f bps)" bps)
    true (bps <= 1.01e6)

let test_tcp_experiences_loss_and_recovers () =
  let e, topo, s, r = dumbbell ~bandwidth_bps:1e6 ~delay_s:0.01 ~n_pairs:1 in
  let src = Tcp.Tcp_source.create topo ~conn:1 ~flow:1 ~src:s.(0) ~dst:r.(0) () in
  let sink = Tcp.Tcp_sink.create topo ~conn:1 ~node:r.(0) () in
  Tcp.Tcp_source.start src ~at:0.;
  Netsim.Engine.run ~until:30. e;
  (* The buffer is finite, so Reno must hit loss and retransmit; the sink
     must still end up with a contiguous prefix. *)
  Alcotest.(check bool) "some retransmits" true (Tcp.Tcp_source.retransmits src > 0);
  Alcotest.(check bool) "in-order prefix grows" true
    (Tcp.Tcp_sink.next_expected sink > 1000)

let test_tcp_two_flows_share () =
  let e, topo, s, r = dumbbell ~bandwidth_bps:2e6 ~delay_s:0.01 ~n_pairs:2 in
  let mon = Netsim.Monitor.create e in
  Netsim.Monitor.watch_node mon r.(0);
  Netsim.Monitor.watch_node mon r.(1);
  let src1 = Tcp.Tcp_source.create topo ~conn:1 ~flow:1 ~src:s.(0) ~dst:r.(0) () in
  let _s1 = Tcp.Tcp_sink.create topo ~conn:1 ~node:r.(0) () in
  let src2 = Tcp.Tcp_source.create topo ~conn:2 ~flow:2 ~src:s.(1) ~dst:r.(1) () in
  let _s2 = Tcp.Tcp_sink.create topo ~conn:2 ~node:r.(1) () in
  Tcp.Tcp_source.start src1 ~at:0.;
  Tcp.Tcp_source.start src2 ~at:0.1;
  Netsim.Engine.run ~until:60. e;
  let b1 = Netsim.Monitor.throughput_bps mon ~flow:1 ~t_start:10. ~t_end:60. in
  let b2 = Netsim.Monitor.throughput_bps mon ~flow:2 ~t_start:10. ~t_end:60. in
  let ratio = b1 /. b2 in
  Alcotest.(check bool)
    (Printf.sprintf "fair-ish share (ratio %.2f)" ratio)
    true
    (ratio > 0.4 && ratio < 2.5)

let test_tcp_stop_halts () =
  let e, topo, s, r = dumbbell ~bandwidth_bps:1e6 ~delay_s:0.01 ~n_pairs:1 in
  let src = Tcp.Tcp_source.create topo ~conn:1 ~flow:1 ~src:s.(0) ~dst:r.(0) () in
  let sink = Tcp.Tcp_sink.create topo ~conn:1 ~node:r.(0) () in
  Tcp.Tcp_source.start src ~at:0.;
  ignore (Netsim.Engine.at e ~time:5. (fun () -> Tcp.Tcp_source.stop src));
  Netsim.Engine.run ~until:6. e;
  let at_stop = Tcp.Tcp_sink.segments_received sink in
  Netsim.Engine.run ~until:20. e;
  Alcotest.(check int) "no segments after stop" at_stop
    (Tcp.Tcp_sink.segments_received sink)

let prop_padhye_inverse_monotone =
  QCheck.Test.make ~name:"padhye inverse decreasing in rate" ~count:100
    QCheck.(pair (float_range 1e3 1e7) (float_range 1.01 5.))
    (fun (rate, factor) ->
      let p1 = Tcp_model.Padhye.inverse_loss ~s:1000 ~rtt:0.1 rate in
      let p2 = Tcp_model.Padhye.inverse_loss ~s:1000 ~rtt:0.1 (rate *. factor) in
      p2 <= p1 +. 1e-12)

let () =
  Alcotest.run "tcp"
    [
      ( "rto",
        [
          Alcotest.test_case "initial" `Quick test_rto_initial;
          Alcotest.test_case "first sample" `Quick test_rto_first_sample;
          Alcotest.test_case "backoff" `Quick test_rto_backoff;
          Alcotest.test_case "min clamp" `Quick test_rto_min_clamp;
          Alcotest.test_case "converges" `Quick test_rto_converges;
        ] );
      ( "model",
        [
          Alcotest.test_case "padhye monotone in p" `Quick test_padhye_monotone_in_p;
          Alcotest.test_case "padhye ~ 1/RTT" `Quick test_padhye_scales_inverse_rtt;
          Alcotest.test_case "padhye inverse roundtrip" `Quick test_padhye_inverse_roundtrip;
          Alcotest.test_case "padhye known magnitude" `Quick test_padhye_known_magnitude;
          Alcotest.test_case "loss events per RTT peak" `Quick test_loss_events_per_rtt_max;
          Alcotest.test_case "mathis inverse exact" `Quick test_mathis_inverse_exact;
          Alcotest.test_case "mathis vs padhye ballpark" `Quick test_mathis_more_conservative;
          Alcotest.test_case "initial loss interval" `Quick test_initial_loss_interval;
          Alcotest.test_case "rescale first interval" `Quick test_rescale_first_interval;
        ] );
      ( "reno",
        [
          Alcotest.test_case "transfers data" `Quick test_tcp_transfers_data;
          Alcotest.test_case "utilizes bottleneck" `Slow test_tcp_utilizes_bottleneck;
          Alcotest.test_case "loss + recovery" `Slow test_tcp_experiences_loss_and_recovers;
          Alcotest.test_case "two flows share" `Slow test_tcp_two_flows_share;
          Alcotest.test_case "stop halts" `Quick test_tcp_stop_halts;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_padhye_inverse_monotone ]);
    ]
