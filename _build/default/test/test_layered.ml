(* Tests for the receiver-driven layered-multicast extension (§6.1). *)

let star ~bottlenecks =
  let e = Netsim.Engine.create ~seed:83 () in
  let topo = Netsim.Topology.create e in
  let sender = Netsim.Topology.add_node topo in
  let hub = Netsim.Topology.add_node topo in
  ignore (Netsim.Topology.connect topo ~bandwidth_bps:100e6 ~delay_s:0.005 sender hub);
  let rxs =
    Array.map
      (fun bw ->
        let rx = Netsim.Topology.add_node topo in
        ignore (Netsim.Topology.connect topo ~bandwidth_bps:bw ~delay_s:0.02 hub rx);
        rx)
      bottlenecks
  in
  (e, topo, sender, rxs)

let test_sender_layer_rates () =
  let _, topo, sender, _ = star ~bottlenecks:[| 1e6 |] in
  let snd =
    Layered.Sender.create topo ~session:1 ~node:sender ~layers:4
      ~base_rate:10_000. ~growth:2. ()
  in
  Alcotest.(check int) "layers" 4 (Layered.Sender.layers snd);
  Alcotest.(check (float 1e-9)) "cum 0" 10_000. (Layered.Sender.cumulative_rate snd ~layer:0);
  Alcotest.(check (float 1e-9)) "cum 3" 80_000. (Layered.Sender.cumulative_rate snd ~layer:3)

let test_layer_pacing_rates () =
  (* Subscribing to a prefix yields approximately its cumulative rate. *)
  let e, topo, sender, rxs = star ~bottlenecks:[| 100e6 |] in
  let snd =
    Layered.Sender.create topo ~session:1 ~node:sender ~layers:3
      ~base_rate:20_000. ()
  in
  (* Static subscription: join the groups directly, no controller. *)
  for l = 0 to 1 do
    Netsim.Topology.join topo ~group:(Layered.Wire.group_of ~session:1 ~layer:l) rxs.(0)
  done;
  let mon = Netsim.Monitor.create e in
  Netsim.Monitor.watch_node mon rxs.(0);
  Layered.Sender.start snd ~at:0.;
  Netsim.Engine.run ~until:20. e;
  let bytes_per_s =
    List.fold_left
      (fun acc l ->
        acc +. (Netsim.Monitor.throughput_bps mon ~flow:(64 + l) ~t_start:2. ~t_end:20. /. 8.))
      0. [ 0; 1; 2 ]
  in
  (* layers 0+1 = cumulative 40 kB/s; layer 2 not subscribed *)
  Alcotest.(check (float 4000.)) "prefix rate" 40_000. bytes_per_s

let test_receiver_climbs_to_bottleneck () =
  let e, topo, sender, rxs = star ~bottlenecks:[| 1e6 |] in
  let snd = Layered.Sender.create topo ~session:1 ~node:sender () in
  let r = Layered.Receiver.create topo ~session:1 ~node:rxs.(0) () in
  Layered.Receiver.join r;
  Layered.Sender.start snd ~at:0.;
  Netsim.Engine.run ~until:120. e;
  (* 1 Mbit/s = 125 kB/s: sustainable cumulative prefix is 64 kB/s
     (layer 3 of 16/32/64/128/256/512), possibly oscillating to 128. *)
  let sub = Layered.Receiver.subscription r in
  Alcotest.(check bool)
    (Printf.sprintf "subscription near capacity (got %d layers)" sub)
    true
    (sub >= 3 && sub <= 4);
  Alcotest.(check bool) "saw loss at the bottleneck" true
    (Layered.Receiver.loss_event_rate r > 0.)

let test_heterogeneous_receivers_differ () =
  let e, topo, sender, rxs = star ~bottlenecks:[| 0.25e6; 4e6 |] in
  let snd = Layered.Sender.create topo ~session:1 ~node:sender () in
  let slow = Layered.Receiver.create topo ~session:1 ~node:rxs.(0) () in
  let fast = Layered.Receiver.create topo ~session:1 ~node:rxs.(1) () in
  Layered.Receiver.join slow;
  Layered.Receiver.join fast;
  Layered.Sender.start snd ~at:0.;
  Netsim.Engine.run ~until:120. e;
  Alcotest.(check bool)
    (Printf.sprintf "fast (%d) holds more layers than slow (%d)"
       (Layered.Receiver.subscription fast)
       (Layered.Receiver.subscription slow))
    true
    (Layered.Receiver.subscription fast > Layered.Receiver.subscription slow)

let test_join_backoff_limits_thrash () =
  let e, topo, sender, rxs = star ~bottlenecks:[| 0.5e6 |] in
  let snd = Layered.Sender.create topo ~session:1 ~node:sender () in
  let r = Layered.Receiver.create topo ~session:1 ~node:rxs.(0) () in
  Layered.Receiver.join r;
  Layered.Sender.start snd ~at:0.;
  Netsim.Engine.run ~until:200. e;
  (* Exponential per-layer backoff must keep churn far below one
     join/leave per evaluation (evaluations run every 0.4 s). *)
  Alcotest.(check bool)
    (Printf.sprintf "bounded churn (%d joins, %d drops in 200s)"
       (Layered.Receiver.joins r) (Layered.Receiver.drops r))
    true
    (Layered.Receiver.joins r < 40 && Layered.Receiver.drops r < 40)

let test_leave_unsubscribes_everything () =
  let e, topo, sender, rxs = star ~bottlenecks:[| 4e6 |] in
  let snd = Layered.Sender.create topo ~session:1 ~node:sender () in
  let r = Layered.Receiver.create topo ~session:1 ~node:rxs.(0) () in
  Layered.Receiver.join r;
  Layered.Sender.start snd ~at:0.;
  Netsim.Engine.run ~until:30. e;
  Layered.Receiver.leave r;
  let got = Layered.Receiver.packets_received r in
  Alcotest.(check int) "unsubscribed" 0 (Layered.Receiver.subscription r);
  Netsim.Engine.run ~until:40. e;
  Alcotest.(check int) "no packets after leave" got (Layered.Receiver.packets_received r)

let () =
  Alcotest.run "layered"
    [
      ( "layered",
        [
          Alcotest.test_case "sender layer rates" `Quick test_sender_layer_rates;
          Alcotest.test_case "prefix pacing" `Quick test_layer_pacing_rates;
          Alcotest.test_case "climbs to bottleneck" `Slow test_receiver_climbs_to_bottleneck;
          Alcotest.test_case "heterogeneous receivers" `Slow test_heterogeneous_receivers_differ;
          Alcotest.test_case "join backoff bounds churn" `Slow test_join_backoff_limits_thrash;
          Alcotest.test_case "leave unsubscribes" `Quick test_leave_unsubscribes_everything;
        ] );
    ]
