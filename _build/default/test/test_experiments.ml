(* Tests for the experiments library: series utilities, the registry, and
   smoke runs of the cheap (analytic / Monte-Carlo) harnesses. *)

let check_float = Alcotest.(check (float 1e-9))

(* ---------------------------------------------------------------- Series *)

let test_series_validates_width () =
  Alcotest.(check bool) "mismatched row rejected" true
    (try
       ignore
         (Experiments.Series.make ~title:"t" ~xlabel:"x" ~ylabels:[ "a"; "b" ]
            [ (0., [ 1. ]) ]);
       false
     with Invalid_argument _ -> true)

let test_series_csv () =
  let s =
    Experiments.Series.make ~title:"t" ~xlabel:"x" ~ylabels:[ "a"; "b" ]
      [ (0., [ 1.; 2. ]); (1., [ 3.; 4.5 ]) ]
  in
  let csv = Experiments.Series.to_csv s in
  Alcotest.(check string) "csv" "x,a,b\n0,1,2\n1,3,4.5\n" csv

let test_series_summary () =
  let s =
    Experiments.Series.make ~title:"t" ~xlabel:"x" ~ylabels:[ "a" ]
      [ (0., [ 2. ]); (1., [ 4. ]); (2., [ 6. ]) ]
  in
  let sum = Experiments.Series.summary_stats s ~col:0 in
  check_float "mean" 4. sum.Stats.Descriptive.mean;
  Alcotest.(check int) "n" 3 sum.Stats.Descriptive.n

let test_series_summary_skips_nan () =
  let s =
    Experiments.Series.make ~title:"t" ~xlabel:"x" ~ylabels:[ "a" ]
      [ (0., [ 2. ]); (1., [ nan ]); (2., [ 6. ]) ]
  in
  let sum = Experiments.Series.summary_stats s ~col:0 in
  Alcotest.(check int) "nan dropped" 2 sum.Stats.Descriptive.n

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1)) in
  nn = 0 || loop 0

let test_series_pp_renders () =
  let s =
    Experiments.Series.make ~title:"render me" ~xlabel:"x" ~ylabels:[ "y" ]
      ~notes:[ "a note" ]
      [ (0.5, [ 1.25 ]) ]
  in
  let out = Format.asprintf "%a" Experiments.Series.pp s in
  Alcotest.(check bool) "title present" true (contains out "render me");
  Alcotest.(check bool) "note present" true (contains out "a note")

let test_series_render_ascii () =
  let s =
    Experiments.Series.make ~title:"t" ~xlabel:"x" ~ylabels:[ "y" ]
      (List.init 20 (fun i -> (float_of_int i, [ float_of_int (i * i) ])))
  in
  let out = Experiments.Series.render_ascii s ~col:0 in
  Alcotest.(check bool) "has points" true (String.contains out '*');
  Alcotest.(check bool) "has axis" true (String.contains out '+');
  Alcotest.(check bool) "mentions label" true (contains out "y vs x")

(* -------------------------------------------------------------- Registry *)

let test_registry_ids_unique () =
  let ids = Experiments.Registry.ids () in
  let sorted = List.sort_uniq compare ids in
  Alcotest.(check int) "no duplicate ids" (List.length ids) (List.length sorted)

let test_registry_covers_all_figures () =
  (* Every evaluation figure of the paper: 1-7, 9-21. *)
  let wanted =
    [ 1; 2; 3; 4; 5; 6; 7; 9; 10; 11; 12; 13; 14; 15; 16; 17; 18; 19; 20; 21 ]
  in
  List.iter
    (fun n ->
      let id = Printf.sprintf "fig%02d" n in
      match Experiments.Registry.find id with
      | Some _ -> ()
      | None -> Alcotest.failf "missing experiment %s" id)
    wanted

let test_registry_find_case_insensitive () =
  Alcotest.(check bool) "upper-case id found" true
    (Experiments.Registry.find "FIG09" <> None);
  Alcotest.(check bool) "unknown id" true (Experiments.Registry.find "fig99" = None)

(* -------------------------------------------------- smoke: cheap figures *)

let smoke id =
  match Experiments.Registry.find id with
  | None -> Alcotest.failf "experiment %s missing" id
  | Some e ->
      let series = e.Experiments.Registry.run ~mode:Experiments.Scenario.Quick ~seed:3 in
      Alcotest.(check bool) (id ^ " produced series") true (series <> []);
      List.iter
        (fun s ->
          Alcotest.(check bool)
            (id ^ " rows non-empty")
            true
            (s.Experiments.Series.rows <> []);
          List.iter
            (fun (x, ys) ->
              if Float.is_nan x then Alcotest.failf "%s: NaN x" id;
              ignore ys)
            s.Experiments.Series.rows)
        series

let test_smoke_fig01 () = smoke "fig01"

let test_smoke_fig04 () = smoke "fig04"

let test_smoke_fig07 () = smoke "fig07"

let test_smoke_fig17 () = smoke "fig17"

(* ---------------------------------------------------- scenario builders *)

let test_dumbbell_structure () =
  let d =
    Experiments.Scenario.dumbbell ~seed:1 ~bottleneck_bps:1e6 ~delay_s:0.01
      ~n_tfmcc_rx:3 ~n_tcp:2 ()
  in
  Alcotest.(check int) "tcp pairs" 2 (List.length d.Experiments.Scenario.tcp);
  Alcotest.(check int) "receivers" 3
    (List.length (Tfmcc_core.Session.receivers d.Experiments.Scenario.session));
  Alcotest.(check (float 1e-9)) "bottleneck rate" 1e6
    (Netsim.Link.bandwidth_bps d.Experiments.Scenario.bottleneck)

let test_star_structure () =
  let st =
    Experiments.Scenario.star ~seed:1 ~link_bps:1e6
      ~link_delays:[| 0.01; 0.02 |]
      ~link_losses:[| 0.; 0.5 |]
      ~with_tcp:true ()
  in
  Alcotest.(check int) "rx nodes" 2 (Array.length st.Experiments.Scenario.s_rx_nodes);
  Alcotest.(check int) "tcp per rx" 2 (Array.length st.Experiments.Scenario.s_tcp);
  let fwd, _ = st.Experiments.Scenario.s_rx_links.(1) in
  (* The lossy link actually drops packets. *)
  Alcotest.(check (float 1e-9)) "delay set" 0.02 (Netsim.Link.delay_s fwd)

let test_star_rejects_bad_losses () =
  Alcotest.(check bool) "length mismatch rejected" true
    (try
       ignore
         (Experiments.Scenario.star ~link_bps:1e6 ~link_delays:[| 0.01 |]
            ~link_losses:[| 0.1; 0.2 |] ());
       false
     with Invalid_argument _ -> true)

let test_scale_helper () =
  Alcotest.(check int) "quick" 1
    (Experiments.Scenario.scale Experiments.Scenario.Quick ~quick:1 ~full:2);
  Alcotest.(check int) "full" 2
    (Experiments.Scenario.scale Experiments.Scenario.Full ~quick:1 ~full:2)

let () =
  Alcotest.run "experiments"
    [
      ( "series",
        [
          Alcotest.test_case "validates width" `Quick test_series_validates_width;
          Alcotest.test_case "csv" `Quick test_series_csv;
          Alcotest.test_case "summary" `Quick test_series_summary;
          Alcotest.test_case "summary skips NaN" `Quick test_series_summary_skips_nan;
          Alcotest.test_case "pp renders" `Quick test_series_pp_renders;
          Alcotest.test_case "render ascii" `Quick test_series_render_ascii;
        ] );
      ( "registry",
        [
          Alcotest.test_case "unique ids" `Quick test_registry_ids_unique;
          Alcotest.test_case "covers all figures" `Quick test_registry_covers_all_figures;
          Alcotest.test_case "find" `Quick test_registry_find_case_insensitive;
        ] );
      ( "smoke",
        [
          Alcotest.test_case "fig01" `Quick test_smoke_fig01;
          Alcotest.test_case "fig04" `Quick test_smoke_fig04;
          Alcotest.test_case "fig07" `Quick test_smoke_fig07;
          Alcotest.test_case "fig17" `Quick test_smoke_fig17;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "dumbbell structure" `Quick test_dumbbell_structure;
          Alcotest.test_case "star structure" `Quick test_star_structure;
          Alcotest.test_case "star rejects bad losses" `Quick test_star_rejects_bad_losses;
          Alcotest.test_case "scale helper" `Quick test_scale_helper;
        ] );
    ]
