examples/video_stream.ml: Array List Netsim Printf String Tfmcc_core
