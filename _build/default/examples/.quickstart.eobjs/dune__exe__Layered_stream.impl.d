examples/layered_stream.ml: Layered List Netsim Option Printf
