examples/quickstart.ml: List Netsim Printf Tfmcc_core
