examples/layered_stream.mli:
