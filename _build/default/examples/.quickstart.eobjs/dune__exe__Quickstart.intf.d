examples/quickstart.mli:
