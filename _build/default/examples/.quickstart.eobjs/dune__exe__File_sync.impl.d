examples/file_sync.ml: Array Float List Netsim Printf Repair Tcp Tfmcc_core
