examples/stock_ticker.ml: List Netsim Printf Stats Tfmcc_core
