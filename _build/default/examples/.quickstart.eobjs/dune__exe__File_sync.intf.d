examples/file_sync.mli:
