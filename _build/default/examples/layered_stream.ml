(* Layered streaming: the paper's closing future-work idea in action.

   Where the single-rate examples pin every viewer to the slowest
   member's rate, this one streams six multiplicative layers
   (128 kbit/s .. 4 Mbit/s cumulative) and lets each viewer's
   equation-based controller pick its own layer prefix.  A mid-session
   congestion episode on one viewer's link shows the join-backoff
   dynamics: that viewer sheds layers and climbs back afterwards, without
   anyone else noticing.

   Run with: dune exec examples/layered_stream.exe *)

let () =
  let engine = Netsim.Engine.create ~seed:13 () in
  let topo = Netsim.Topology.create engine in
  let sender = Netsim.Topology.add_node topo in
  let hub = Netsim.Topology.add_node topo in
  ignore (Netsim.Topology.connect topo ~bandwidth_bps:100e6 ~delay_s:0.005 sender hub);
  let viewers = [ ("dsl-512k", 0.512e6); ("cable-2M", 2e6); ("fibre-8M", 8e6) ] in
  let nodes =
    List.map
      (fun (name, bw) ->
        let rx = Netsim.Topology.add_node topo in
        ignore (Netsim.Topology.connect topo ~bandwidth_bps:bw ~delay_s:0.02 hub rx);
        (name, rx))
      viewers
  in
  let snd = Layered.Sender.create topo ~session:1 ~node:sender () in
  let receivers =
    List.map
      (fun (name, rx) ->
        let r = Layered.Receiver.create topo ~session:1 ~node:rx () in
        Layered.Receiver.join r;
        (name, rx, r))
      nodes
  in
  Layered.Sender.start snd ~at:0.;
  (* At t=60 the cable viewer's link degrades to 0.4 Mbit/s worth of
     cross-loss for 30 s. *)
  let _, cable_node, _ = List.nth receivers 1 in
  ignore
    (Netsim.Engine.at engine ~time:60. (fun () ->
         print_endline "t= 60: congestion hits the cable viewer's link (5% loss)";
         let link = Option.get (Netsim.Topology.link_between topo hub cable_node) in
         Netsim.Link.set_loss link
           (Netsim.Loss_model.bernoulli ~rng:(Netsim.Engine.split_rng engine) ~p:0.05)));
  ignore
    (Netsim.Engine.at engine ~time:90. (fun () ->
         print_endline "t= 90: congestion clears";
         let link = Option.get (Netsim.Topology.link_between topo hub cable_node) in
         Netsim.Link.set_loss link Netsim.Loss_model.none));
  Printf.printf "%5s" "t(s)";
  List.iter (fun (name, _, _) -> Printf.printf " %20s" name) receivers;
  print_newline ();
  for sec = 1 to 150 do
    Netsim.Engine.run ~until:(float_of_int sec) engine;
    if sec mod 10 = 0 then begin
      Printf.printf "%5d" sec;
      List.iter
        (fun (_, _, r) ->
          Printf.printf " %9d layers/%4.0fk" (Layered.Receiver.subscription r)
            (Layered.Receiver.cumulative_rate r *. 8. /. 1000.))
        receivers;
      print_newline ()
    end
  done;
  print_newline ();
  List.iter
    (fun (name, _, r) ->
      Printf.printf "%-10s %6d packets, %2d joins, %2d sheds, p=%.4f\n" name
        (Layered.Receiver.packets_received r)
        (Layered.Receiver.joins r) (Layered.Receiver.drops r)
        (Layered.Receiver.loss_event_rate r))
    receivers
