lib/tcp/rto_estimator.ml: Float
