lib/tcp/tcp_sink.mli: Netsim
