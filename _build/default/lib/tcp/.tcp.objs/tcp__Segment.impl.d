lib/tcp/segment.ml: Netsim
