lib/tcp/tcp_source.ml: Float Netsim Rto_estimator Segment Stats Stdlib
