lib/tcp/tcp_source.mli: Netsim
