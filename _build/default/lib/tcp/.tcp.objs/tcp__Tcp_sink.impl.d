lib/tcp/tcp_sink.ml: Int Netsim Segment Set
