lib/tcp/rto_estimator.mli:
