lib/tcp/segment.mli: Netsim
