type Netsim.Packet.payload +=
  | Data of { conn : int; seq : int }
  | Ack of { conn : int; ack : int }

let data_size = 1000

let ack_size = 40
