(** TCP receiver: tracks in-order delivery and returns one cumulative ACK
    per arriving data segment (no delayed ACKs, matching the paper's
    setup where TCP sensitivity to nearly-full drop-tail queues stems
    from back-to-back sends). *)

type t

val create :
  Netsim.Topology.t ->
  conn:int ->
  node:Netsim.Node.t ->
  ?ack_flow:int ->
  unit ->
  t
(** Attaches the sink to [node].  ACK packets carry the accounting tag
    [ack_flow] (default -1, i.e. ignored by experiment monitors). *)

val next_expected : t -> int
(** Lowest sequence number not yet received in order. *)

val segments_received : t -> int
(** Total data segments that arrived (in or out of order). *)

val bytes_received : t -> int

val out_of_order : t -> int
(** Segments that arrived ahead of a hole. *)
