type t = {
  initial_rto : float;
  min_rto : float;
  max_rto : float;
  mutable srtt : float option;
  mutable rttvar : float;
  mutable backoff_exp : int;
}

let create ?(initial_rto = 3.) ?(min_rto = 1.0) ?(max_rto = 60.) () =
  if min_rto <= 0. || max_rto < min_rto then
    invalid_arg "Rto_estimator.create: invalid bounds";
  { initial_rto; min_rto; max_rto; srtt = None; rttvar = 0.; backoff_exp = 0 }

let observe t sample =
  if sample <= 0. then invalid_arg "Rto_estimator.observe: non-positive sample";
  (match t.srtt with
  | None ->
      t.srtt <- Some sample;
      t.rttvar <- sample /. 2.
  | Some srtt ->
      let err = sample -. srtt in
      t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. abs_float err);
      t.srtt <- Some (srtt +. (0.125 *. err)));
  t.backoff_exp <- 0

let rto t =
  let base =
    match t.srtt with
    | None -> t.initial_rto
    | Some srtt -> srtt +. (4. *. t.rttvar)
  in
  let scaled = base *. float_of_int (1 lsl t.backoff_exp) in
  Float.min t.max_rto (Float.max t.min_rto scaled)

let backoff t = if t.backoff_exp < 6 then t.backoff_exp <- t.backoff_exp + 1

let reset_backoff t = t.backoff_exp <- 0

let srtt t = t.srtt

let rttvar t = match t.srtt with None -> None | Some _ -> Some t.rttvar
