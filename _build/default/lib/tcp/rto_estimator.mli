(** Jacobson/Karels retransmission-timeout estimation with exponential
    backoff (as in BSD TCP / ns-2). *)

type t

val create : ?initial_rto:float -> ?min_rto:float -> ?max_rto:float -> unit -> t
(** Defaults: initial 3 s, min 1 s (RFC 2988), max 60 s. *)

val observe : t -> float -> unit
(** Feed one RTT sample (seconds).  First sample initializes
    srtt = sample, rttvar = sample/2; later samples use the standard
    EWMAs (gains 1/8 and 1/4).  Resets backoff. *)

val rto : t -> float
(** Current timeout: clamp(srtt + 4·rttvar) × 2^backoff, clamped to
    [min_rto, max_rto]. *)

val backoff : t -> unit
(** Doubles the timeout (cap 2^6). *)

val reset_backoff : t -> unit

val srtt : t -> float option
(** [None] before the first sample. *)

val rttvar : t -> float option
