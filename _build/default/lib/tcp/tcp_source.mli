(** TCP Reno sender with an infinite (FTP-like) data source.

    Implements slow start, congestion avoidance, 3-dupack fast retransmit
    with Reno fast recovery (window inflation), and RTO with
    Jacobson/Karels estimation and exponential backoff — the ns-2
    [Agent/TCP/Reno] behaviour the paper competes against. *)

type t

val create :
  Netsim.Topology.t ->
  conn:int ->
  flow:int ->
  src:Netsim.Node.t ->
  dst:Netsim.Node.t ->
  ?segment_size:int ->
  ?initial_cwnd:float ->
  ?max_cwnd:float ->
  ?overhead:float ->
  unit ->
  t
(** Builds a sender at [src] whose sink lives at [dst].  [conn]
    distinguishes parallel connections; [flow] is the accounting tag put
    on data packets.  The ACK handler is attached to [src]
    immediately; no packets flow until {!start}.  [overhead] (default
    1 ms) adds a uniform random delay to each transmission — ns-2's
    phase-effect breaker. *)

val start : t -> at:float -> unit
(** Schedules the first transmission at absolute time [at]. *)

val stop : t -> unit
(** Halts transmission and cancels the retransmit timer. *)

val cwnd : t -> float
(** Congestion window in segments. *)

val ssthresh : t -> float

val in_recovery : t -> bool

val segments_sent : t -> int
(** Count of data transmissions, including retransmissions. *)

val retransmits : t -> int

val timeouts : t -> int

val srtt : t -> float option

val highest_ack : t -> int
(** All segments with seq < highest_ack are acknowledged. *)
