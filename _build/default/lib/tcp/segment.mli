(** TCP packet payloads (extends {!Netsim.Packet.payload}).

    Sequence and acknowledgment numbers count whole segments, as in the
    ns-2 TCP agents: [ack = k] acknowledges all segments with seq < k. *)

type Netsim.Packet.payload +=
  | Data of { conn : int; seq : int }
  | Ack of { conn : int; ack : int }

val data_size : int
(** Wire size of a data segment in bytes (payload + headers): 1000. *)

val ack_size : int
(** Wire size of a pure ACK: 40. *)
