(** PGMCC sender.

    Runs a TCP-like window between itself and the acker: the window opens
    by 1 per ACK in slow start and 1/W per ACK in congestion avoidance,
    and halves (at most once per RTT) when the acker reports loss.
    Transmission is ack-clocked against the window.

    Acker election (Rizzo's throughput comparison): every ACK/NAK carries
    the receiver's smoothed loss fraction; the sender measures the RTT
    from the timestamp echo and compares receivers with the simplified
    model T ∝ 1/(R·√p), switching when a receiver's T falls a hysteresis
    margin below the acker's.

    This is congestion control only — like the TFMCC paper we separate
    reliability from congestion control, so losses are not retransmitted
    and sequence numbers always advance. *)

type t

val create :
  Netsim.Topology.t ->
  session:int ->
  node:Netsim.Node.t ->
  ?flow:int ->
  ?packet_size:int ->
  ?hysteresis:float ->
  unit ->
  t
(** [hysteresis] (default 0.75): switch acker when a candidate's modelled
    throughput is below this fraction of the acker's. *)

val start : t -> at:float -> unit

val stop : t -> unit

val window : t -> float

val acker : t -> int option

val rate_estimate_bytes_per_s : t -> float
(** W·s / RTT for the current acker (diagnostic). *)

val packets_sent : t -> int

val acker_changes : t -> int

val halvings : t -> int
