lib/pgmcc/receiver.ml: Netsim Stats Wire
