lib/pgmcc/wire.mli: Netsim
