lib/pgmcc/sender.ml: Float Hashtbl Netsim Option Wire
