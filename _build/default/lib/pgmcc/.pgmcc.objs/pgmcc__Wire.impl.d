lib/pgmcc/wire.ml: Netsim
