lib/pgmcc/sender.mli: Netsim
