lib/pgmcc/receiver.mli: Netsim
