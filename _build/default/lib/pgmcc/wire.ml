type Netsim.Packet.payload +=
  | Data of {
      session : int;
      seq : int;
      ts : float;
      acker : int;
      window : float;
    }
  | Ack of {
      session : int;
      rx_id : int;
      ack_seq : int;
      ts : float;
      echo_ts : float;
      loss : float;
    }
  | Nak of {
      session : int;
      rx_id : int;
      lost_seq : int;
      ts : float;
      echo_ts : float;
      loss : float;
    }

let ack_size = 40

let nak_size = 40
