(** PGMCC packet formats (extends {!Netsim.Packet.payload}).

    PGMCC (Rizzo, SIGCOMM 2000) is the single-rate scheme the TFMCC paper
    compares against in §5: the sender elects the worst receiver as the
    group representative ("acker") and runs a TCP-like window between
    itself and the acker; other receivers send occasional NAK-style
    reports carrying the loss/RTT state the acker election needs. *)

type Netsim.Packet.payload +=
  | Data of {
      session : int;
      seq : int;
      ts : float;  (** sender clock *)
      acker : int;  (** node id of the current acker; -1 if none *)
      window : float;  (** current window, for receiver-side report pacing *)
    }
  | Ack of {
      session : int;
      rx_id : int;
      ack_seq : int;  (** highest in-order sequence received *)
      ts : float;
      echo_ts : float;  (** data timestamp echoed for sender-side RTT *)
      loss : float;  (** receiver's smoothed loss fraction *)
    }
  | Nak of {
      session : int;
      rx_id : int;
      lost_seq : int;
      ts : float;
      echo_ts : float;
      loss : float;  (** smoothed loss fraction *)
    }

val ack_size : int

val nak_size : int
