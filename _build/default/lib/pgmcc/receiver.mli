(** PGMCC receiver.

    Tracks the multicast sequence space, maintains a smoothed per-packet
    loss fraction, and feeds the sender's acker election:
    - the elected acker ACKs every data packet (cumulative, with a
      timestamp echo so the sender can measure its RTT);
    - every receiver reports losses with NAKs (rate-limited and randomly
      delayed — we model the suppression PGMCC delegates to network
      elements or randomized timers);
    - every receiver answers the first data packet it sees with one
      initial ACK so the sender can elect a first acker. *)

type t

val create :
  Netsim.Topology.t ->
  session:int ->
  node:Netsim.Node.t ->
  sender:Netsim.Node.t ->
  ?nak_min_interval:float ->
  unit ->
  t
(** [nak_min_interval] rate-limits this receiver's NAKs (default 0.25 s). *)

val join : t -> unit

val leave : t -> unit

val node_id : t -> int

val is_acker : t -> bool

val loss_estimate : t -> float
(** Smoothed per-packet loss fraction. *)

val packets_received : t -> int

val naks_sent : t -> int

val acks_sent : t -> int
