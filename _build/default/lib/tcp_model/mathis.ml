let c = sqrt 1.5

let check ~s ~rtt =
  if s <= 0 then invalid_arg "Mathis: packet size must be positive";
  if rtt <= 0. then invalid_arg "Mathis: rtt must be positive"

let throughput ~s ~rtt ~p =
  check ~s ~rtt;
  if p < 0. || p > 1. then invalid_arg "Mathis.throughput: p out of range";
  if p = 0. then infinity else float_of_int s /. rtt *. c /. sqrt p

let inverse_loss ~s ~rtt ~rate =
  check ~s ~rtt;
  if rate <= 0. then invalid_arg "Mathis.inverse_loss: rate must be positive";
  let x = c *. float_of_int s /. (rtt *. rate) in
  Float.min 1. (Float.max 1e-12 (x *. x))

let initial_loss_interval ~s ~rtt ~rate = 1. /. inverse_loss ~s ~rtt ~rate

let rescale_first_interval ~interval ~rtt_initial ~rtt_measured =
  if rtt_initial <= 0. || rtt_measured <= 0. then
    invalid_arg "Mathis.rescale_first_interval: RTTs must be positive";
  let ratio = rtt_measured /. rtt_initial in
  Float.max 1. (interval *. ratio *. ratio)
