let t_rto_factor = 4.

let check_domain ~b ~s ~rtt ~p =
  if b <= 0. then invalid_arg "Padhye: b must be positive";
  if s <= 0 then invalid_arg "Padhye: packet size must be positive";
  if rtt <= 0. then invalid_arg "Padhye: rtt must be positive";
  if p < 0. || p > 1. then invalid_arg "Padhye: p must be in [0,1]"

(* Denominator divided by R:
   f(p) = sqrt(2bp/3) + t_rto_factor * 3*sqrt(3bp/8) * p * (1+32p^2) *)
let f ~b p =
  sqrt (2. *. b *. p /. 3.)
  +. (t_rto_factor *. 3. *. sqrt (3. *. b *. p /. 8.) *. p *. (1. +. (32. *. p *. p)))

let throughput ?(b = 1.) ~s ~rtt p =
  check_domain ~b ~s ~rtt ~p;
  if p = 0. then infinity else float_of_int s /. (rtt *. f ~b p)

let inverse_loss ?(b = 1.) ~s ~rtt rate =
  if rate <= 0. then invalid_arg "Padhye.inverse_loss: rate must be positive";
  if s <= 0 then invalid_arg "Padhye.inverse_loss: packet size must be positive";
  if rtt <= 0. then invalid_arg "Padhye.inverse_loss: rtt must be positive";
  let lo = 1e-12 and hi = 1. in
  if throughput ~b ~s ~rtt hi >= rate then hi
  else if throughput ~b ~s ~rtt lo <= rate then lo
  else begin
    (* throughput is strictly decreasing in p on (0,1]. *)
    let rec bisect lo hi iter =
      if iter = 0 then 0.5 *. (lo +. hi)
      else begin
        let mid = 0.5 *. (lo +. hi) in
        if throughput ~b ~s ~rtt mid > rate then bisect mid hi (iter - 1)
        else bisect lo mid (iter - 1)
      end
    in
    bisect lo hi 100
  end

let loss_events_per_rtt ?(b = 1.) p =
  if p < 0. || p > 1. then invalid_arg "Padhye.loss_events_per_rtt: p out of range";
  if p = 0. then 0. else p /. f ~b p
