lib/tcp_model/mathis.mli:
