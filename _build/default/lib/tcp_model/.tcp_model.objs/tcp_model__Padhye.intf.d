lib/tcp_model/padhye.mli:
