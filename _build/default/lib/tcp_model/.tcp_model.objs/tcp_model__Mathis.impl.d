lib/tcp_model/mathis.ml: Float
