lib/tcp_model/padhye.ml:
