(** The simplified TCP throughput model of Mathis et al. (paper Eq. (4)):

    T = (s / R) · (C / √p),  C = √(3/2)

    Easier to invert than the full Padhye model and slightly more
    conservative; the paper uses its inverse to initialize the loss
    history after the first loss event (App. B) and to rescale the first
    loss interval when the real RTT replaces the initial RTT. *)

val c : float
(** √(3/2). *)

val throughput : s:int -> rtt:float -> p:float -> float
(** Bytes/s; [infinity] when [p = 0]. *)

val inverse_loss : s:int -> rtt:float -> rate:float -> float
(** Exact inverse: p = (C·s / (R·T))², clamped to (0, 1]. *)

val initial_loss_interval : s:int -> rtt:float -> rate:float -> float
(** 1 / inverse_loss — the synthetic first loss interval in packets given
    the rate at which the first loss event occurred (the paper plugs in
    half that rate to discount slowstart overshoot). *)

val rescale_first_interval :
  interval:float -> rtt_initial:float -> rtt_measured:float -> float
(** Paper App. B: when the first real RTT measurement arrives while the
    synthetic interval is still in the history, scale it by
    (R_measured / R_initial)² so the rate the receiver computes stays
    unchanged under the simplified model. *)
