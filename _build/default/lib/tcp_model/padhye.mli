(** The full TCP-Reno throughput model of Padhye et al. (paper Eq. (1)):

    T(s, R, p) = s / (R·√(2p/3) + t_RTO·(3·√(3p/8))·p·(1 + 32p²))

    with the TFRC convention t_RTO = 4R.  This is the control equation of
    both TFRC and TFMCC: each receiver plugs its measured loss event rate
    and RTT in and obtains the rate a TCP flow would achieve on its path. *)

val throughput : ?b:float -> s:int -> rtt:float -> float -> float
(** Expected TCP throughput in bytes/s.  [s] packet size in bytes,
    [rtt] seconds, loss event rate [p] ∈ (0, 1].  [b] is the number of
    packets acknowledged per ACK (default 1; the paper's Fig. 17 curve
    corresponds to delayed ACKs, b = 2).  Returns [infinity] when
    [p = 0].  Raises [Invalid_argument] outside those domains. *)

val inverse_loss : ?b:float -> s:int -> rtt:float -> float -> float
(** [inverse_loss ~s ~rtt rate] is the loss event rate at which the model
    yields [rate] bytes/s — the numeric inverse of {!throughput} in [p]
    (bisection; the model is strictly decreasing in p).  Clamped to
    [1e-12, 1].  Used to initialize the loss history (paper App. B). *)

val loss_events_per_rtt : ?b:float -> float -> float
(** Number of loss events per RTT when sending at the model rate with
    loss event rate [p] (paper App. A, Fig. 17):
    L(p) = p · T · R / s, which is independent of s and R.
    With b = 2 its maximum is ≈ 0.13, matching the paper's figure — the
    basis of the argument that a too-high initial RTT stays conservative
    (with b = 1 the peak is ≈ 0.19, which only strengthens it). *)

val t_rto_factor : float
(** t_RTO = [t_rto_factor] × RTT (= 4, per TFRC). *)
