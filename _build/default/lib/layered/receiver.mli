(** Receiver-driven layered receiver with TFMCC's equation-based
    controller.

    The receiver always subscribes to layer 0, measures the loss event
    rate across everything it receives (the WALI filter over a combined
    arrival clock) and computes the TCP-friendly rate from the control
    equation using a configured RTT estimate (there is no feedback
    channel to measure one — the paper's suggestion inherits exactly this
    limitation, which we document rather than hide).

    Layer management:
    - leave immediately down to the highest prefix whose cumulative rate
      is at most the calculated rate;
    - join the next layer only when the calculated rate exceeds its
      cumulative rate *and* the join timer allows it — after a join gets
      undone, the next attempt for that layer waits twice as long
      (FLID-DL's dynamic join timers against join/leave thrash). *)

type t

val create :
  Netsim.Topology.t ->
  session:int ->
  node:Netsim.Node.t ->
  ?rtt_estimate:float ->
  ?min_join_interval:float ->
  ?b:float ->
  unit ->
  t
(** Defaults: RTT estimate 100 ms, initial per-layer join backoff 2 s,
    equation parameter b = 2 (as in the TFMCC config). *)

val join : t -> unit
(** Subscribes to layer 0 and starts the controller. *)

val leave : t -> unit

val subscription : t -> int
(** Number of layers currently subscribed (0 after {!leave}). *)

val cumulative_rate : t -> float
(** Bytes/s implied by the current subscription (0 before any data). *)

val calculated_rate : t -> float

val loss_event_rate : t -> float

val packets_received : t -> int

val joins : t -> int
(** Layer-join actions performed (diagnostic; excludes the initial
    layer-0 join). *)

val drops : t -> int
(** Layer-leave actions performed because the calculated rate fell. *)
