type t = {
  topo : Netsim.Topology.t;
  engine : Netsim.Engine.t;
  session : int;
  node : Netsim.Node.t;
  rtt : float;
  min_join_interval : float;
  b : float;
  history : Tfrc.Loss_history.t;
  (* Combined arrival clock: layer seq spaces are interleaved, so losses
     are detected per layer and folded into one synthetic sequence. *)
  mutable expected : int array;  (* per layer; -1 = not yet synced *)
  mutable clock : int;  (* synthetic combined sequence counter *)
  mutable subscribed : int;  (* number of layers joined *)
  mutable n_layers : int;  (* learned from packets *)
  mutable cum_rates : float array;  (* learned cumulative rates *)
  mutable join_backoff : float array;  (* per layer *)
  mutable next_join_ok : float array;
  mutable joined : bool;
  mutable received : int;
  mutable joins : int;
  mutable drops : int;
  mutable eval_timer : Netsim.Engine.handle option;
}

let subscription t = if t.joined then t.subscribed else 0

let packets_received t = t.received

let joins t = t.joins

let drops t = t.drops

let loss_event_rate t = Tfrc.Loss_history.loss_event_rate t.history

let cumulative_rate t =
  if (not t.joined) || t.subscribed = 0 || t.n_layers = 0 then 0.
  else t.cum_rates.(Stdlib.min (t.subscribed - 1) (t.n_layers - 1))

let calculated_rate t =
  let p = loss_event_rate t in
  if p <= 0. then infinity
  else Tcp_model.Padhye.throughput ~b:t.b ~s:Wire.data_size ~rtt:t.rtt p

let group t layer = Wire.group_of ~session:t.session ~layer

let join_layer t layer =
  Netsim.Topology.join t.topo ~group:(group t layer) t.node

let leave_layer t layer =
  Netsim.Topology.leave t.topo ~group:(group t layer) t.node

let ensure_arrays t n =
  if n > Array.length t.expected then begin
    let grow a default =
      let b = Array.make n default in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    t.expected <- grow t.expected (-1);
    t.cum_rates <- grow t.cum_rates 0.;
    t.join_backoff <- grow t.join_backoff t.min_join_interval;
    t.next_join_ok <- grow t.next_join_ok 0.
  end

(* Evaluate the subscription against the calculated rate. *)
let evaluate t =
  if t.joined && t.n_layers > 0 then begin
    let now = Netsim.Engine.now t.engine in
    let x = calculated_rate t in
    (* Leave while the top layer exceeds the budget (never below 1). *)
    let continue = ref true in
    while !continue && t.subscribed > 1 do
      let top = t.subscribed - 1 in
      if t.cum_rates.(top) > x then begin
        leave_layer t top;
        t.subscribed <- t.subscribed - 1;
        t.drops <- t.drops + 1;
        t.expected.(top) <- -1;
        (* A forced leave doubles the backoff for re-joining that layer. *)
        t.join_backoff.(top) <- Float.min 64. (2. *. t.join_backoff.(top));
        t.next_join_ok.(top) <- now +. t.join_backoff.(top)
      end
      else continue := false
    done;
    (* Join the next layer if the budget allows and the timer permits. *)
    if t.subscribed < t.n_layers then begin
      let next = t.subscribed in
      if t.cum_rates.(next) > 0.
         && x >= t.cum_rates.(next)
         && now >= t.next_join_ok.(next)
      then begin
        join_layer t next;
        t.subscribed <- t.subscribed + 1;
        t.joins <- t.joins + 1;
        t.next_join_ok.(next) <- now +. t.join_backoff.(next)
      end
    end
  end

let rec schedule_eval t =
  t.eval_timer <-
    Some
      (Netsim.Engine.after t.engine ~delay:(4. *. t.rtt) (fun () ->
           t.eval_timer <- None;
           if t.joined then begin
             evaluate t;
             schedule_eval t
           end))

let on_data t ~layer ~seq ~cumulative_rate ~next_cumulative =
  if t.joined && layer < t.subscribed then begin
    let now = Netsim.Engine.now t.engine in
    t.received <- t.received + 1;
    ensure_arrays t (layer + 2);
    if layer + 1 > t.n_layers then t.n_layers <- layer + 1;
    t.cum_rates.(layer) <- cumulative_rate;
    (* In-band announcement of the next layer's rate. *)
    if not (Float.is_nan next_cumulative) then begin
      t.cum_rates.(layer + 1) <- next_cumulative;
      if layer + 2 > t.n_layers then t.n_layers <- layer + 2
    end;
    (* Per-layer gap detection folded into the combined clock. *)
    let lost =
      if t.expected.(layer) < 0 then begin
        t.expected.(layer) <- seq + 1;
        0
      end
      else if seq >= t.expected.(layer) then begin
        let l = seq - t.expected.(layer) in
        t.expected.(layer) <- seq + 1;
        l
      end
      else 0
    in
    t.clock <- t.clock + 1 + lost;
    Tfrc.Loss_history.on_packet t.history ~seq:(t.clock - 1) ~now ~rtt:t.rtt
  end

let create topo ~session ~node ?(rtt_estimate = 0.1) ?(min_join_interval = 2.)
    ?(b = 2.) () =
  if rtt_estimate <= 0. then invalid_arg "Layered.Receiver.create: rtt_estimate";
  if min_join_interval <= 0. then
    invalid_arg "Layered.Receiver.create: min_join_interval";
  let engine = Netsim.Topology.engine topo in
  let t =
    {
      topo;
      engine;
      session;
      node;
      rtt = rtt_estimate;
      min_join_interval;
      b;
      history = Tfrc.Loss_history.create ();
      expected = Array.make 8 (-1);
      clock = 0;
      subscribed = 0;
      n_layers = 0;
      cum_rates = Array.make 8 0.;
      join_backoff = Array.make 8 min_join_interval;
      next_join_ok = Array.make 8 0.;
      joined = false;
      received = 0;
      joins = 0;
      drops = 0;
      eval_timer = None;
    }
  in
  Netsim.Node.attach node (fun p ->
      match p.Netsim.Packet.payload with
      | Wire.Data { session; layer; seq; ts = _; cumulative_rate; next_cumulative }
        when session = t.session ->
          on_data t ~layer ~seq ~cumulative_rate ~next_cumulative
      | _ -> ());
  t

let join t =
  if not t.joined then begin
    t.joined <- true;
    t.subscribed <- 1;
    join_layer t 0;
    schedule_eval t
  end

let leave t =
  if t.joined then begin
    for l = 0 to t.subscribed - 1 do
      leave_layer t l
    done;
    t.joined <- false;
    t.subscribed <- 0;
    match t.eval_timer with
    | Some h ->
        Netsim.Engine.cancel t.engine h;
        t.eval_timer <- None
    | None -> ()
  end
