lib/layered/wire.ml: Netsim
