lib/layered/receiver.mli: Netsim
