lib/layered/sender.mli: Netsim
