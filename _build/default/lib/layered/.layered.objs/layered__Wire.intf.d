lib/layered/wire.mli: Netsim
