lib/layered/sender.ml: Array Netsim Option Stats Wire
