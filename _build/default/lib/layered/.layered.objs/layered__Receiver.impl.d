lib/layered/receiver.ml: Array Float Netsim Stdlib Tcp_model Tfrc Wire
