(** Layered-multicast packet format (extends {!Netsim.Packet.payload}).

    The TFMCC paper closes by suggesting its equation-based rate
    controller "would also appear to be suitable for use in
    receiver-driven layered multicast" (§6.1).  This library is that
    sketch made concrete: the sender stripes data over L layers, each a
    multicast group of its own; receivers run the control equation
    locally and join or leave layers — there is no feedback channel at
    all. *)

type Netsim.Packet.payload +=
  | Data of {
      session : int;
      layer : int;  (** 0-based layer index *)
      seq : int;  (** per-layer sequence number *)
      ts : float;
      cumulative_rate : float;
          (** bytes/s received when subscribed up to this layer *)
      next_cumulative : float;
          (** bytes/s when also joining the next layer; nan at the top
              layer (in-band rate announcement, as in FLID-DL) *)
    }

val group_of : session:int -> layer:int -> int
(** The multicast group id carrying one layer. *)

val data_size : int
