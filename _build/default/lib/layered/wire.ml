type Netsim.Packet.payload +=
  | Data of {
      session : int;
      layer : int;
      seq : int;
      ts : float;
      cumulative_rate : float;
      next_cumulative : float;
    }

let group_of ~session ~layer = (session * 64) + layer

let data_size = 1000
