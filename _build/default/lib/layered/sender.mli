(** Layered-multicast sender: L open-loop layers with multiplicatively
    spaced cumulative rates (FLID-DL style).  Layer 0 carries [base_rate]
    bytes/s; subscribing to layers 0..l yields a cumulative rate of
    base_rate · g^l (default g = 2), so each extra layer roughly doubles
    the receive rate.  The sender never adapts — all control is at the
    receivers. *)

type t

val create :
  Netsim.Topology.t ->
  session:int ->
  node:Netsim.Node.t ->
  ?layers:int ->
  ?base_rate:float ->
  ?growth:float ->
  ?flow:int ->
  unit ->
  t
(** Defaults: 6 layers, base 16 kB/s, growth 2 — cumulative rates
    16/32/64/128/256/512 kB/s. *)

val start : t -> at:float -> unit

val stop : t -> unit

val layers : t -> int

val cumulative_rate : t -> layer:int -> float
(** Bytes/s when subscribed through [layer] (0-based). *)

val packets_sent : t -> int
