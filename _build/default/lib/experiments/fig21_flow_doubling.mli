(** Fig. 21 (App. D): responsiveness to increased congestion.  A TFMCC
    flow on a 16 Mbit/s, 60 ms-RTT link; at 50 s intervals 1, then 2,
    then 4, then 8 TCP flows start, doubling the total flow count each
    time.  TFMCC and TCP should settle at roughly half the previous
    bandwidth in each interval, TFMCC on a longer timescale. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
