let run ~mode ~seed =
  let data = Fig05_response_time.measure ~mode ~seed in
  [
    Series.make
      ~title:
        "Fig. 6: quality of the lowest reported rate (mean excess over the \
         true minimum) vs group size"
      ~xlabel:"receivers (n)"
      ~ylabels:(List.map fst Fig05_response_time.methods)
      ~notes:
        [
          "paper: plain exponential ~20% above the minimum; offset methods \
           within a few percent";
        ]
      (List.map (fun (n, per) -> (float_of_int n, List.map snd per)) data);
  ]
