(** Fig. 1: cumulative distribution of the feedback time under the
    different biasing methods (unbiased exponential, offset, modified N),
    for a receiver whose rate ratio is 0.5. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
