(** Extension (paper §6.1, Future Work): feedback aggregation tree versus
    pure end-to-end suppression.  The same two-level distribution tree is
    run twice: once with plain TFMCC (randomized suppression, reports
    straight to the sender) and once with an aggregator per first-level
    subtree and suppression disabled.  The tree must cut the report load
    at the sender without hurting rate control or CLR election. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
