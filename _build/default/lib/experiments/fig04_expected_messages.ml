let run ~mode ~seed:_ =
  let ns =
    Scenario.scale mode
      ~quick:[ 1; 10; 100; 1000; 10_000 ]
      ~full:[ 1; 3; 10; 30; 100; 300; 1000; 3000; 10_000; 30_000; 100_000 ]
  in
  let t_values = [ 2.; 3.; 4.; 5.; 6. ] in
  let rows =
    List.map
      (fun n ->
        let ys =
          List.map
            (fun t' ->
              Tfmcc_core.Feedback_timer.expected_messages ~n ~n_estimate:10_000
                ~delay:1. ~t_suppress:t')
            t_values
        in
        (float_of_int n, ys))
      ns
  in
  [
    Series.make
      ~title:
        "Fig. 4: expected feedback messages vs group size for suppression \
         windows T' (RTTs), N=10000, delay=1 RTT"
      ~xlabel:"receivers (n)"
      ~ylabels:(List.map (Printf.sprintf "T'=%.0f") t_values)
      ~notes:
        [
          "paper: T' of 3-4 RTTs yields a useful handful of responses for n \
           one to two orders of magnitude below N";
        ]
      rows;
  ]
