(** Ablation: TFMCC against non-TCP cross traffic.  The paper evaluates
    only against TCP; real paths also carry unresponsive and bursty
    flows.  One TFMCC session shares a bottleneck with (a) nothing,
    (b) a CBR flow at half the link, (c) an exponential on-off flow of
    the same average load, and (d) a Poisson stream — TFMCC must fill
    the leftover capacity and stay alive under burst-induced loss. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
