(** Ablation: drop-tail versus RED at the shared bottleneck.  §4 notes
    that both TCP-friendliness and intra-protocol fairness improve with
    active queue management; this runs the Fig. 9 scenario under both
    disciplines. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
