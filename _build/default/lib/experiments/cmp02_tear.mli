(** §5 comparison: TEAR versus TFRC (both unicast, as the paper notes
    only a unicast TEAR exists).  Same lossy path, one run each, plus a
    real TCP flow for reference: §5 expects TEAR's window emulation and
    TFRC's equation to land at similar rates with comparable
    smoothness. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
