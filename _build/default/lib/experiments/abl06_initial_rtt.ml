open Tfmcc_core

let run_one ~seed ~rtt_initial ~t_end =
  let cfg = { Config.default with rtt_initial } in
  let st =
    Scenario.star ~seed ~cfg ~link_bps:1e6 ~link_delays:(Array.make 4 0.02) ()
  in
  let sc = st.Scenario.s_sc in
  let eng = sc.Scenario.engine in
  let snd = Session.sender st.Scenario.s_session in
  Session.start st.Scenario.s_session ~at:0.;
  let fair = 125_000. in
  let reach = ref nan and peak = ref 0. in
  let rec poll t =
    if t <= t_end then
      ignore
        (Netsim.Engine.at eng ~time:t (fun () ->
             let x = Sender.rate_bytes_per_s snd in
             peak := Float.max !peak x;
             if Float.is_nan !reach && x >= 0.8 *. fair then reach := t;
             poll (t +. 0.1)))
  in
  poll 0.1;
  Scenario.run_until sc t_end;
  (!reach, !peak /. fair)

let run ~mode ~seed =
  let t_end = Scenario.scale mode ~quick:60. ~full:120. in
  let values = [ 0.1; 0.25; 0.5; 1.0; 2.0 ] in
  let rows =
    List.map
      (fun rtt_initial ->
        let reach, overshoot = run_one ~seed ~rtt_initial ~t_end in
        (rtt_initial, [ reach; overshoot ]))
      values
  in
  [
    Series.make
      ~title:
        "Ablation: initial RTT value (4 receivers, clean 1 Mbit/s \
         bottleneck)"
      ~xlabel:"initial RTT (s)"
      ~ylabels:[ "time to 80% fair rate (s)"; "peak/bottleneck" ]
      ~notes:
        [
          "paper (2.4.1, App. A): a too-high initial value is safe (it \
           only slows startup: feedback rounds scale with it); a too-low \
           one risks under-aggregating losses";
        ]
      rows;
  ]
