(** Fig. 14: maximum rate reached during slowstart versus the number of
    receivers, for three levels of statistical multiplexing (TFMCC alone,
    one competing TCP, high multiplexing), each sized so the fair rate is
    1 Mbit/s.  Alone, TFMCC peaks near twice the bottleneck; with
    competition the slowstart peak drops well below the fair rate as the
    receiver set grows. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
