open Tfmcc_core

let run ~mode ~seed =
  let t_end = Scenario.scale mode ~quick:80. ~full:120. in
  let warmup = 20. in
  let return_flows = [| 0; 1; 2; 4 |] in
  let st =
    Scenario.star ~seed ~uplink_bps:50e6 ~link_bps:2e6
      ~link_delays:(Array.make 4 0.015) ~with_tcp:true ()
  in
  let sc = st.Scenario.s_sc in
  let topo = sc.Scenario.topo in
  (* Return-path TCP flows: data from receiver i's side toward sinks
     behind the hub, congesting the rx -> hub direction. *)
  Array.iteri
    (fun i k ->
      for j = 0 to k - 1 do
        (* Each return flow exits through its own 0.4 Mbit/s link, so
           four of them load the 2 Mbit/s receiver->hub direction to
           ~80% without pinning its queue (a standing full reverse
           queue would delay ACKs for reasons unrelated to the report
           loss the figure studies). *)
        let dst = Netsim.Topology.add_node topo in
        ignore
          (Netsim.Topology.connect topo ~bandwidth_bps:0.4e6 ~delay_s:0.001
             st.Scenario.s_hub dst);
        ignore
          (Scenario.add_tcp sc
             ~conn:(5000 + (10 * i) + j)
             ~flow:(Scenario.tcp_flow (50 + (10 * i) + j))
             ~src:st.Scenario.s_rx_nodes.(i) ~dst ~at:0.)
      done)
    return_flows;
  Session.start st.Scenario.s_session ~at:0.;
  Scenario.run_until sc t_end;
  let bin = 1. in
  let tf =
    Scenario.throughput_series sc ~flow:Scenario.tfmcc_flow ~bin ~t_end
    |> Array.map (fun (t, v) -> (t, v /. 4.))
  in
  let tcps =
    Array.init 4 (fun i ->
        Scenario.throughput_series sc ~flow:(Scenario.tcp_flow i) ~bin ~t_end)
  in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i (t, v) ->
           ( t,
             v :: (Array.to_list tcps |> List.map (fun s -> snd s.(i))) ))
         tf)
  in
  let mean flow =
    Scenario.mean_throughput_kbps sc ~flow ~t_start:warmup ~t_end
  in
  [
    Series.make
      ~title:"Fig. 18: competing TCP traffic on return paths (kbit/s)"
      ~xlabel:"time (s)"
      ~ylabels:
        ("TFMCC" :: (Array.to_list return_flows |> List.map (Printf.sprintf "TCP (%d)")))
      ~notes:
        [
          Printf.sprintf
            "steady means (kbit/s): TFMCC/4rx %.0f; forward TCP with \
             0/1/2/4 return flows: %.0f %.0f %.0f %.0f — paper: none of \
             the simulations differ from the no-return-traffic case"
            (mean Scenario.tfmcc_flow /. 4.)
            (mean (Scenario.tcp_flow 0))
            (mean (Scenario.tcp_flow 1))
            (mean (Scenario.tcp_flow 2))
            (mean (Scenario.tcp_flow 3));
        ]
      rows;
  ]
