(** Fig. 13: responsiveness to changes in the RTT.  All receivers share
    the same independent loss probability; at a chosen time one
    receiver's link delay is increased sharply, making it the correct
    CLR; the measured reaction delay (until the sender elects it)
    decreases the later the change happens, because more receivers
    already hold valid RTT estimates. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
