(** Fig. 6: quality of the reported rate — the mean excess of the lowest
    rate reported in one round over the true minimum of the receiver set
    (in units of the normalized rate), per biasing method. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
