open Tfmcc_core

(* n receivers with mild independent loss; at t_change receiver 0's link
   degrades to heavy loss.  Reaction = delay until it becomes CLR. *)
let run_one ~seed ~bias ~n ~t_change ~t_limit =
  let cfg = { Config.default with bias } in
  let st =
    Scenario.star ~seed ~cfg ~link_bps:50e6 ~link_delays:(Array.make n 0.02)
      ~link_losses:(Array.make n 0.005) ()
  in
  let sc = st.Scenario.s_sc in
  let eng = sc.Scenario.engine in
  let target = Netsim.Node.id st.Scenario.s_rx_nodes.(0) in
  Session.start st.Scenario.s_session ~at:0.;
  ignore
    (Netsim.Engine.at eng ~time:t_change (fun () ->
         let fwd, _ = st.Scenario.s_rx_links.(0) in
         Netsim.Link.set_loss fwd
           (Netsim.Loss_model.bernoulli
              ~rng:(Netsim.Engine.split_rng eng)
              ~p:0.06)));
  let snd = Session.sender st.Scenario.s_session in
  let reaction = ref nan in
  let rec poll t =
    if t <= t_limit then
      ignore
        (Netsim.Engine.at eng ~time:t (fun () ->
             if Float.is_nan !reaction then begin
               match Sender.clr snd with
               | Some id when id = target ->
                   reaction := t -. t_change;
                   Netsim.Engine.stop eng
               | _ -> poll (t +. 0.1)
             end))
  in
  poll (t_change +. 0.1);
  Scenario.run_until sc t_limit;
  let rounds = Stdlib.max 1 (Sender.round snd) in
  let per_round = float_of_int (Sender.reports_received snd) /. float_of_int rounds in
  (!reaction, per_round)

let run ~mode ~seed =
  let n = Scenario.scale mode ~quick:40 ~full:200 in
  let t_change = 30. in
  let t_limit = t_change +. Scenario.scale mode ~quick:60. ~full:120. in
  let methods =
    [
      ("unbiased", Config.Unbiased);
      ("offset", Config.Offset);
      ("modified offset", Config.Modified_offset);
      ("modified N", Config.Modified_n);
    ]
  in
  let rows =
    List.mapi
      (fun i (_, bias) ->
        let reaction, per_round = run_one ~seed ~bias ~n ~t_change ~t_limit in
        (float_of_int i, [ reaction; per_round ]))
      methods
  in
  [
    Series.make
      ~title:
        (Printf.sprintf
           "Ablation: timer bias method at protocol level (%d receivers; \
            receiver 0 degrades to 6%% loss at t=%.0f)"
           n t_change)
      ~xlabel:"method (0=unbiased 1=offset 2=mod-offset 3=mod-N)"
      ~ylabels:[ "reaction delay (s)"; "reports/round" ]
      ~notes:
        [
          "the adopted modified offset should react at least as fast as \
           unbiased timers without a report-load explosion";
        ]
      rows;
  ]
