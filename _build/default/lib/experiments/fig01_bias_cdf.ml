let run ~mode ~seed =
  let samples = Scenario.scale mode ~quick:20_000 ~full:200_000 in
  let t_max = 6. (* RTTs *) and delta = 1. /. 3. and n_estimate = 10_000 in
  let ratio = 0.5 in
  let rng = Stats.Rng.create seed in
  let methods =
    [
      ("exponential", Tfmcc_core.Config.Unbiased);
      ("offset", Tfmcc_core.Config.Offset);
      ("modified N", Tfmcc_core.Config.Modified_n);
    ]
  in
  let cdfs =
    List.map
      (fun (_, bias) ->
        Stats.Cdf.of_samples
          (Tfmcc_core.Feedback_process.timer_samples rng ~bias ~t_max ~delta
             ~n_estimate ~ratio ~samples))
      methods
  in
  let n_points = 81 in
  let rows =
    List.init n_points (fun i ->
        let x = t_max *. float_of_int i /. float_of_int (n_points - 1) in
        (x, List.map (fun cdf -> Stats.Cdf.eval cdf x) cdfs))
  in
  [
    Series.make
      ~title:"Fig. 1: CDF of feedback time under different biasing methods"
      ~xlabel:"time (RTTs)"
      ~ylabels:(List.map fst methods)
      ~notes:
        [
          "paper: offset shifts mass earlier without raising P(t ~ 0); \
           modified N lifts the whole CDF (implosion-prone)";
        ]
      rows;
  ]
