(** Extension: TFMCC over a realistic transit-stub internet.  Section 3
    argues that on real multicast trees loss is correlated along shared
    paths and concentrated on last hops, which is what keeps single-rate
    control usable; this experiment runs a full session over a generated
    transit-stub topology (with a handful of congested stub links) and
    reports utilization of the worst receiver's bottleneck, feedback
    load, CLR placement, and the one-way delay spread across the
    receiver set. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
