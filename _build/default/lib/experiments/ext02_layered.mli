(** Extension (§6.1, Future Work): the paper's closing suggestion —
    TFMCC's equation-based rate controller driving receiver-driven
    layered multicast.  Heterogeneous receivers behind 0.25–4 Mbit/s
    bottlenecks must each settle on the layer prefix matching their own
    capacity (escaping the single-rate "slowest receiver sets everyone's
    quality" limitation), with dynamic join backoff keeping join/leave
    thrash bounded. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
