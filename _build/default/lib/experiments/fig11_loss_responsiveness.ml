open Tfmcc_core

let run ~mode ~seed =
  let interval = Scenario.scale mode ~quick:25. ~full:50. in
  let first_join = Scenario.scale mode ~quick:50. ~full:100. in
  (* join r1/r2/r3, then leave r3/r2/r1, then one more interval. *)
  let t_end = first_join +. (7. *. interval) in
  let losses = [| 0.001; 0.005; 0.025; 0.125 |] in
  let st =
    Scenario.star ~seed ~uplink_bps:500e6 ~link_bps:100e6
      ~link_delays:(Array.make 4 0.025) ~link_losses:losses ~with_tcp:true ()
  in
  (* Receiver 0 joins at start; the TFMCC series is measured at it since
     it stays for the whole run and loses only 0.1 % of packets. *)
  let receivers = Session.receivers st.s_session in
  let rx_of i = Session.receiver st.s_session ~node_id:(Netsim.Node.id st.s_rx_nodes.(i)) in
  ignore receivers;
  Receiver.join (rx_of 0);
  Session.start ~join_receivers:false st.s_session ~at:0.;
  let eng = st.s_sc.Scenario.engine in
  for i = 1 to 3 do
    ignore
      (Netsim.Engine.at eng
         ~time:(first_join +. (float_of_int (i - 1) *. interval))
         (fun () -> Receiver.join (rx_of i)))
  done;
  let leave_start = first_join +. (3. *. interval) in
  for k = 0 to 2 do
    let i = 3 - k in
    ignore
      (Netsim.Engine.at eng
         ~time:(leave_start +. (float_of_int k *. interval))
         (fun () -> Receiver.leave (rx_of i) ()))
  done;
  (* Dedicated monitor at receiver 0 so join/leave of others does not
     perturb the TFMCC throughput measurement. *)
  let mon0 = Netsim.Monitor.create eng in
  Netsim.Monitor.watch_node_flow mon0 st.s_rx_nodes.(0) ~flow:Scenario.tfmcc_flow;
  Scenario.run_until st.s_sc t_end;
  let bin = 1. in
  let tf =
    Netsim.Monitor.rate_series_bps mon0 ~flow:Scenario.tfmcc_flow ~bin ~t_end
    |> Array.map (fun (t, v) -> (t, v /. 1e6))
  in
  let tcp i =
    Scenario.throughput_series st.s_sc ~flow:(Scenario.tcp_flow i) ~bin ~t_end
    |> Array.map (fun (t, v) -> (t, v /. 1000.))
  in
  let tcps = Array.init 4 tcp in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i (t, v) ->
           (t, [ snd tcps.(0).(i); snd tcps.(1).(i); snd tcps.(2).(i); snd tcps.(3).(i); v ]))
         tf)
  in
  [
    Series.make
      ~title:
        "Fig. 11: responsiveness to loss-rate changes (Mbit/s); joins at \
         0.1/0.5/2.5/12.5% loss, then reverse leaves"
      ~xlabel:"time (s)"
      ~ylabels:[ "TCP 1 (0.1%)"; "TCP 2 (0.5%)"; "TCP 3 (2.5%)"; "TCP 4 (12.5%)"; "TFMCC" ]
      ~notes:
        [
          "paper: TFMCC steps down to the TCP level of each joining \
           higher-loss receiver within ~1-3 s, and recovers on leaves";
        ]
      rows;
  ]
