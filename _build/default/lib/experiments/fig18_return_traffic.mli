(** Fig. 18 (App. D): competing TCP traffic on the return paths.  Four
    receivers, each sharing its link with one forward TCP flow; 0, 1, 2
    and 4 additional TCP flows congest the respective receiver→sender
    directions.  Neither TFMCC (whose reports cross the congested
    direction) nor the forward TCPs should be affected. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
