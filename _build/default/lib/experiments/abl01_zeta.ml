open Tfmcc_core

let run_one ~seed ~zeta ~n ~t_end =
  let cfg = { Config.default with zeta } in
  let st =
    Scenario.star ~seed ~cfg ~link_bps:2e6 ~link_delays:(Array.make n 0.02) ()
  in
  let sc = st.Scenario.s_sc in
  Session.start st.Scenario.s_session ~at:0.;
  Scenario.run_until sc t_end;
  let snd = Session.sender st.Scenario.s_session in
  let rounds = Stdlib.max 1 (Sender.round snd) in
  let per_round =
    float_of_int (Sender.reports_received snd) /. float_of_int rounds
  in
  let kbps =
    Scenario.mean_throughput_kbps sc ~flow:Scenario.tfmcc_flow
      ~t_start:(t_end /. 3.) ~t_end
    /. float_of_int n
  in
  (per_round, kbps)

let run ~mode ~seed =
  let n = Scenario.scale mode ~quick:30 ~full:100 in
  let t_end = Scenario.scale mode ~quick:60. ~full:150. in
  let zetas = [ 0.0; 0.05; 0.1; 0.3; 1.0 ] in
  let rows =
    List.map
      (fun zeta ->
        let per_round, kbps = run_one ~seed ~zeta ~n ~t_end in
        (zeta, [ per_round; kbps ]))
      zetas
  in
  [
    Series.make
      ~title:
        (Printf.sprintf
           "Ablation: cancellation threshold zeta (%d receivers, shared 2 \
            Mbit/s bottleneck)"
           n)
      ~xlabel:"zeta"
      ~ylabels:[ "reports/round"; "throughput (kbit/s)" ]
      ~notes:
        [
          "paper's choice zeta = 0.1: report load close to the \
           cancel-on-any extreme while keeping the reported minimum \
           within ~10%";
        ]
      rows;
  ]
