(** §5 comparison: TFMCC versus PGMCC.

    The same scenario (a bottleneck shared with TCP, plus a lossy
    receiver that must be elected representative) run once under each
    protocol.  The paper's qualitative claim: both are viable and
    TCP-friendly, PGMCC's rate shows TCP's sawtooth while TFMCC's is
    smooth and predictable. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
