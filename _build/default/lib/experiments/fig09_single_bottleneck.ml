let run ~mode ~seed =
  let t_end = Scenario.scale mode ~quick:100. ~full:200. in
  let warmup = Scenario.scale mode ~quick:30. ~full:60. in
  let n_tcp = 15 in
  let d =
    Scenario.dumbbell ~seed ~bottleneck_bps:8e6 ~delay_s:0.02 ~n_tfmcc_rx:1
      ~n_tcp ()
  in
  Tfmcc_core.Session.start d.session ~at:0.;
  Scenario.run_until d.sc t_end;
  let bin = 1. in
  let tf = Scenario.throughput_series d.sc ~flow:Scenario.tfmcc_flow ~bin ~t_end in
  let tcp1 = Scenario.throughput_series d.sc ~flow:(Scenario.tcp_flow 0) ~bin ~t_end in
  let tcp2 = Scenario.throughput_series d.sc ~flow:(Scenario.tcp_flow 1) ~bin ~t_end in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i (t, v) -> (t, [ snd tcp1.(i); snd tcp2.(i); v ]))
         tf)
  in
  let mean_tfmcc =
    Scenario.mean_throughput_kbps d.sc ~flow:Scenario.tfmcc_flow ~t_start:warmup
      ~t_end
  in
  let mean_tcp =
    let acc = ref 0. in
    for i = 0 to n_tcp - 1 do
      acc :=
        !acc
        +. Scenario.mean_throughput_kbps d.sc ~flow:(Scenario.tcp_flow i)
             ~t_start:warmup ~t_end
    done;
    !acc /. float_of_int n_tcp
  in
  let cov flow =
    let series =
      Scenario.throughput_series d.sc ~flow ~bin ~t_end
      |> Array.to_list
      |> List.filter (fun (t, _) -> t >= warmup)
      |> List.map snd |> Array.of_list
    in
    Stats.Descriptive.coefficient_of_variation series
  in
  [
    Series.make
      ~title:"Fig. 9: 1 TFMCC + 15 TCP over a single 8 Mbit/s bottleneck"
      ~xlabel:"time (s)" ~ylabels:[ "TCP 1"; "TCP 2"; "TFMCC" ]
      ~notes:
        [
          Printf.sprintf
            "steady-state means (kbit/s): TFMCC %.0f vs TCP avg %.0f (fair \
             share 500); ratio %.2f"
            mean_tfmcc mean_tcp (mean_tfmcc /. mean_tcp);
          Printf.sprintf
            "smoothness (coeff. of variation): TFMCC %.2f vs TCP1 %.2f — \
             paper: TFMCC visibly smoother"
            (cov Scenario.tfmcc_flow)
            (cov (Scenario.tcp_flow 0));
        ]
      rows;
  ]
