(** Fig. 3: number of feedback messages in the first round of the
    worst-case scenario (every receiver suddenly congested) for the three
    cancellation policies: cancel on any echo, cancel within ζ = 10 %,
    cancel only on equal-or-lower echoes. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
