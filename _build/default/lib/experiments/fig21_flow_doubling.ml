open Tfmcc_core

let run ~mode ~seed =
  let interval = Scenario.scale mode ~quick:30. ~full:50. in
  let t_end = 5. *. interval in
  let d =
    Scenario.dumbbell ~seed ~bottleneck_bps:16e6 ~delay_s:0.025 ~n_tfmcc_rx:1
      ~n_tcp:0 ()
  in
  let sc = d.Scenario.sc in
  let topo = sc.Scenario.topo in
  (* Waves of TCP flows: 1 at t=interval, 2 at 2·interval, 4, then 8. *)
  let waves = [ (1, 1.); (2, 2.); (4, 3.); (8, 4.) ] in
  let flow_idx = ref 0 in
  let groups =
    List.map
      (fun (count, mult) ->
        let start = mult *. interval in
        let flows =
          List.init count (fun _ ->
              let i = !flow_idx in
              incr flow_idx;
              let src = Netsim.Topology.add_node topo in
              ignore
                (Netsim.Topology.connect topo ~bandwidth_bps:160e6 ~delay_s:0.001
                   src d.Scenario.left_router);
              let dst = Netsim.Topology.add_node topo in
              ignore
                (Netsim.Topology.connect topo ~bandwidth_bps:160e6 ~delay_s:0.001
                   d.Scenario.right_router dst);
              ignore
                (Scenario.add_tcp sc ~conn:(3000 + i) ~flow:(Scenario.tcp_flow i)
                   ~src ~dst ~at:start);
              Scenario.tcp_flow i)
        in
        (start, flows))
      waves
  in
  Session.start d.Scenario.session ~at:0.;
  Scenario.run_until sc t_end;
  let bin = 1. in
  let tf = Scenario.throughput_series sc ~flow:Scenario.tfmcc_flow ~bin ~t_end in
  let group_series =
    List.map
      (fun (_, flows) ->
        let per_flow =
          List.map
            (fun f -> Scenario.throughput_series sc ~flow:f ~bin ~t_end)
            flows
        in
        Array.init (Array.length tf) (fun i ->
            List.fold_left (fun acc s -> acc +. snd s.(i)) 0. per_flow))
      groups
  in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i (t, v) -> (t, List.map (fun g -> g.(i)) group_series @ [ v ]))
         tf)
  in
  [
    Series.make
      ~title:
        "Fig. 21: responsiveness to increased congestion (kbit/s); TCP flow \
         count doubles at each interval"
      ~xlabel:"time (s)"
      ~ylabels:[ "TCP wave 1 (x1)"; "TCP wave 2 (x2)"; "TCP wave 3 (x4)"; "TCP wave 4 (x8)"; "TFMCC" ]
      ~notes:
        [
          "paper: each doubling roughly halves the per-flow bandwidth; \
           TFMCC adapts on a longer timescale than TCP, slightly \
           aggressive overall";
        ]
      rows;
  ]
