(** Ablation: the initial RTT value (§2.4.1 recommends 500 ms as "larger
    than the highest RTT of any receiver"; App. A argues a too-high value
    stays safe).  Sweeps the initial value and measures startup speed
    (time to reach 80 % of the fair rate) and safety (peak rate during the
    first seconds relative to the bottleneck). *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
