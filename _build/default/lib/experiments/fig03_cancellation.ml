open Tfmcc_core

let run ~mode ~seed =
  let ns = Scenario.scale mode ~quick:[ 1; 10; 100; 1000 ] ~full:[ 1; 10; 100; 1000; 10_000 ] in
  let trials = Scenario.scale mode ~quick:15 ~full:50 in
  let rng = Stats.Rng.create seed in
  let policies =
    [
      ("all suppressed", Feedback_process.On_any);
      ("10% lower suppressed", Feedback_process.Rate_threshold 0.1);
      ("higher suppressed", Feedback_process.Rate_threshold 0.0);
    ]
  in
  let rows =
    List.map
      (fun n ->
        let ys =
          List.map
            (fun (_, cancel) ->
              let params =
                {
                  Feedback_process.n_estimate = 10_000;
                  t_max = 6.;
                  delay = 1.;
                  bias = Config.Modified_offset;
                  delta = 1. /. 3.;
                  cancel;
                }
              in
              let acc = ref 0 in
              for _ = 1 to trials do
                (* Worst case: everyone congested, similar low rates. *)
                let values =
                  Feedback_process.uniform_values rng ~n ~lo:0.3 ~hi:0.7
                in
                let o = Feedback_process.run_round rng params ~values in
                acc := !acc + o.responses
              done;
              float_of_int !acc /. float_of_int trials)
            policies
        in
        (float_of_int n, ys))
      ns
  in
  [
    Series.make
      ~title:
        "Fig. 3: feedback messages in the first worst-case round vs group \
         size, by cancellation policy"
      ~xlabel:"receivers (n)"
      ~ylabels:(List.map fst policies)
      ~notes:
        [
          "paper: zeta=0 grows ~log n; zeta=0.1 approximately constant and \
           only marginally above cancel-on-any";
        ]
      rows;
  ]
