let run ~mode ~seed =
  let t_end = Scenario.scale mode ~quick:120. ~full:300. in
  let bottlenecks = [| 0.25e6; 0.5e6; 1e6; 2e6; 4e6 |] in
  let sc = Scenario.base ~seed () in
  let topo = sc.Scenario.topo in
  let sender = Netsim.Topology.add_node topo in
  let hub = Netsim.Topology.add_node topo in
  ignore (Netsim.Topology.connect topo ~bandwidth_bps:100e6 ~delay_s:0.005 sender hub);
  let rx_nodes =
    Array.map
      (fun bw ->
        let rx = Netsim.Topology.add_node topo in
        ignore (Netsim.Topology.connect topo ~bandwidth_bps:bw ~delay_s:0.02 hub rx);
        rx)
      bottlenecks
  in
  (* 6 layers, cumulative 16..512 kB/s = 128 kbit .. 4 Mbit. *)
  let snd = Layered.Sender.create topo ~session:1 ~node:sender () in
  let receivers =
    Array.map
      (fun rx ->
        let r = Layered.Receiver.create topo ~session:1 ~node:rx () in
        Layered.Receiver.join r;
        r)
      rx_nodes
  in
  Layered.Sender.start snd ~at:0.;
  (* Mean subscription over the steady second half. *)
  let sub_sums = Array.make (Array.length receivers) 0. in
  let samples = ref 0 in
  Scenario.sample_every sc ~dt:1. ~t_end (fun t ->
      if t >= t_end /. 2. then begin
        incr samples;
        Array.iteri
          (fun i r ->
            sub_sums.(i) <- sub_sums.(i) +. float_of_int (Layered.Receiver.subscription r))
          receivers
      end);
  Scenario.run_until sc t_end;
  let rows =
    Array.to_list
      (Array.mapi
         (fun i bw ->
           let r = receivers.(i) in
           let mean_sub = sub_sums.(i) /. float_of_int !samples in
           ( bw /. 1e6,
             [
               mean_sub;
               Layered.Receiver.cumulative_rate r *. 8. /. 1000.;
               float_of_int (Layered.Receiver.joins r);
               float_of_int (Layered.Receiver.drops r);
             ] ))
         bottlenecks)
  in
  [
    Series.make
      ~title:
        "Extension (6.1): equation-driven layered multicast — per-receiver \
         subscription vs its bottleneck (layers at 128k..4Mbit cumulative)"
      ~xlabel:"bottleneck (Mbit/s)"
      ~ylabels:
        [ "mean layers subscribed"; "final cum. rate (kbit/s)"; "joins"; "drops" ]
      ~notes:
        [
          "each receiver should hold the largest layer prefix its own \
           bottleneck sustains — heterogeneity the single-rate protocol \
           cannot serve (its Fig. 15 pins everyone at 200 kbit/s)";
        ]
      rows;
  ]
