(** Fig. 20 (App. D): responsiveness to network delay.  Like Fig. 11 but
    the four receiver links differ in delay (RTTs 30/60/120/240 ms) at a
    common configured loss rate; receivers join in RTT order and leave in
    reverse, with a TCP flow to each receiver throughout.  TFMCC should
    track the TCP rate of the largest-RTT member. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
