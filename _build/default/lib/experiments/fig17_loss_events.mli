(** Fig. 17 (App. A): loss events per RTT as a function of the loss event
    rate, under the control equation — the analytic curve whose ≈0.13
    maximum justifies using a high initial RTT for loss aggregation. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
