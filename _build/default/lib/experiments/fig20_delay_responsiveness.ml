open Tfmcc_core

let run ~mode ~seed =
  let interval = Scenario.scale mode ~quick:25. ~full:50. in
  let first_join = Scenario.scale mode ~quick:50. ~full:100. in
  let t_end = first_join +. (7. *. interval) in
  (* One-way link delays for RTTs of 30/60/120/240 ms (uplink adds ~10 ms
     round trip). *)
  let delays = [| 0.010; 0.025; 0.055; 0.115 |] in
  let st =
    Scenario.star ~seed ~uplink_bps:500e6 ~link_bps:100e6 ~link_delays:delays
      ~link_losses:(Array.make 4 0.005) ~with_tcp:true ()
  in
  let sc = st.Scenario.s_sc in
  let eng = sc.Scenario.engine in
  let rx_of i =
    Session.receiver st.Scenario.s_session
      ~node_id:(Netsim.Node.id st.Scenario.s_rx_nodes.(i))
  in
  Receiver.join (rx_of 0);
  Session.start ~join_receivers:false st.Scenario.s_session ~at:0.;
  for i = 1 to 3 do
    ignore
      (Netsim.Engine.at eng
         ~time:(first_join +. (float_of_int (i - 1) *. interval))
         (fun () -> Receiver.join (rx_of i)))
  done;
  let leave_start = first_join +. (3. *. interval) in
  for k = 0 to 2 do
    let i = 3 - k in
    ignore
      (Netsim.Engine.at eng
         ~time:(leave_start +. (float_of_int k *. interval))
         (fun () -> Receiver.leave (rx_of i) ()))
  done;
  let mon0 = Netsim.Monitor.create eng in
  Netsim.Monitor.watch_node_flow mon0 st.Scenario.s_rx_nodes.(0)
    ~flow:Scenario.tfmcc_flow;
  Scenario.run_until sc t_end;
  let bin = 1. in
  let tf =
    Netsim.Monitor.rate_series_bps mon0 ~flow:Scenario.tfmcc_flow ~bin ~t_end
    |> Array.map (fun (t, v) -> (t, v /. 1e6))
  in
  let tcps =
    Array.init 4 (fun i ->
        Scenario.throughput_series sc ~flow:(Scenario.tcp_flow i) ~bin ~t_end
        |> Array.map (fun (t, v) -> (t, v /. 1000.)))
  in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i (t, v) ->
           ( t,
             [
               snd tcps.(0).(i); snd tcps.(1).(i); snd tcps.(2).(i);
               snd tcps.(3).(i); v;
             ] ))
         tf)
  in
  [
    Series.make
      ~title:
        "Fig. 20: responsiveness to network delay (Mbit/s); joins at RTT \
         30/60/120/240 ms, then reverse leaves"
      ~xlabel:"time (s)"
      ~ylabels:
        [ "TCP 1 (30ms)"; "TCP 2 (60ms)"; "TCP 3 (120ms)"; "TCP 4 (240ms)"; "TFMCC" ]
      ~notes:
        [
          "paper: behaviour mirrors Fig. 11 with the correct CLR chosen \
           almost instantaneously for this small receiver set";
        ]
      rows;
  ]
