open Tfmcc_core

(* Run one slowstart and return the maximum sending rate reached before
   slowstart ends (kbit/s). *)
let max_slowstart_rate ~seed ~n_rx ~n_tcp ~bottleneck_bps =
  let d =
    Scenario.dumbbell ~seed ~bottleneck_bps ~delay_s:0.02 ~n_tfmcc_rx:n_rx
      ~n_tcp ()
  in
  let sc = d.Scenario.sc in
  let eng = sc.Scenario.engine in
  let snd = Session.sender d.Scenario.session in
  (* Give competing TCP a head start so the link is in steady state. *)
  let tfmcc_start = if n_tcp > 0 then 10. else 0. in
  Session.start d.Scenario.session ~at:tfmcc_start;
  let peak = ref 0. in
  let rec poll t =
    ignore
      (Netsim.Engine.at eng ~time:t (fun () ->
           if Sender.in_slowstart snd then begin
             peak := Float.max !peak (Sender.rate_bytes_per_s snd);
             poll (t +. 0.02)
           end
           else Netsim.Engine.stop eng))
  in
  poll (tfmcc_start +. 0.02);
  Scenario.run_until sc (tfmcc_start +. 120.);
  !peak *. 8. /. 1000.

let run ~mode ~seed =
  let ns = Scenario.scale mode ~quick:[ 2; 8; 32 ] ~full:[ 2; 8; 32; 128; 512 ] in
  let trials = Scenario.scale mode ~quick:2 ~full:4 in
  let configs =
    [
      ("only TFMCC", 0, 1e6);
      ("one competing TCP", 1, 2e6);
      ("high stat. mux.", 8, 9e6);
    ]
  in
  let rows =
    List.map
      (fun n ->
        let ys =
          List.map
            (fun (_, n_tcp, bw) ->
              (* The slowstart peak is dominated by when the first loss
                 report lands: average a few seeds. *)
              let acc = ref 0. in
              for k = 0 to trials - 1 do
                acc :=
                  !acc
                  +. max_slowstart_rate ~seed:(seed + (100 * k)) ~n_rx:n ~n_tcp
                       ~bottleneck_bps:bw
              done;
              !acc /. float_of_int trials)
            configs
        in
        (float_of_int n, ys))
      ns
  in
  [
    Series.make
      ~title:
        "Fig. 14: maximum slowstart rate (kbit/s) vs receivers; fair rate 1 \
         Mbit/s in each configuration"
      ~xlabel:"receivers (n)"
      ~ylabels:(List.map (fun (l, _, _) -> l) configs)
      ~notes:
        [
          "paper: alone ~2x bottleneck; with competition the peak drops \
           below the fair rate and decreases with the receiver count";
        ]
      rows;
  ]
