(** Ablation: App. A's loss-history remodel.  A late-joining bottleneck
    receiver first aggregates losses with the 500 ms initial RTT (merging
    many into few events, i.e. underestimating p); once its real RTT is
    measured, the plain protocol only rescales the synthetic interval,
    while the remodel re-aggregates the logged loss gaps.  We compare the
    rate overshoot above the 200 kbit/s tail during the minute after the
    join, with the remodel off and on. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
