(** Fig. 4: expected number of feedback messages per round under plain
    exponential suppression, as a function of the suppression window T'
    (in RTTs) and the group size n, for N = 10,000 (the Fuhrmann–Widmer
    expectation evaluated by numerical integration). *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
