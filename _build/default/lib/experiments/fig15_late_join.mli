(** Figs. 15 and 16: late join of a low-rate receiver.  An eight-receiver
    TFMCC session competes with seven TCP flows on an 8 Mbit/s bottleneck
    (fair rate 1 Mbit/s); from t = 50 s to 100 s an extra receiver behind
    a separate 200 kbit/s bottleneck is in the group.  TFMCC must elect
    it as CLR within a few seconds, run at ~200 kbit/s, and recover after
    it leaves.  The Fig. 16 variant adds a TCP flow on the slow link for
    the whole run and checks that it recovers from the join-flood and
    shares the tail with TFMCC. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list

val run_with_tail_tcp : mode:Scenario.mode -> seed:int -> Series.t list
