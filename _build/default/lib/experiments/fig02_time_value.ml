open Tfmcc_core

let params bias =
  {
    Feedback_process.n_estimate = 10_000;
    t_max = 6.;
    delay = 1.;
    bias;
    delta = 1. /. 3.;
    cancel = Feedback_process.On_any;
  }

let scatter ~seed ~n ~bias =
  let rng = Stats.Rng.create seed in
  let values = Feedback_process.uniform_values rng ~n ~lo:0. ~hi:1. in
  let outcome = Feedback_process.run_round rng (params bias) ~values in
  Array.map
    (fun (e : Feedback_process.event) -> (e.timer, e.value, e.sent))
    outcome.events

let run ~mode ~seed =
  let n = Scenario.scale mode ~quick:500 ~full:2000 in
  let trials = Scenario.scale mode ~quick:20 ~full:100 in
  let rng = Stats.Rng.create seed in
  let methods =
    [ ("normal", Config.Unbiased); ("offset", Config.Modified_offset) ]
  in
  let rows =
    List.map
      (fun (_, bias) ->
        let responses = ref 0. and best = ref 0. and first = ref 0. in
        for _ = 1 to trials do
          let values = Feedback_process.uniform_values rng ~n ~lo:0. ~hi:1. in
          let o = Feedback_process.run_round rng (params bias) ~values in
          responses := !responses +. float_of_int o.responses;
          best := !best +. (o.best_value -. o.true_min);
          first := !first +. o.first_time
        done;
        let tf = float_of_int trials in
        (!responses /. tf, !best /. tf, !first /. tf))
      methods
  in
  let series =
    Series.make
      ~title:
        "Fig. 2 (summary): one feedback round, uniform values; offset bias \
         vs normal exponential timers"
      ~xlabel:"method (0=normal, 1=offset)"
      ~ylabels:[ "responses"; "best-minus-min"; "first response (RTTs)" ]
      ~notes:
        [
          "paper: biasing yields more responses but early feedback values \
           near the optimum; full scatter via `tfmcc-sim fig02 --csv'";
        ]
      (List.mapi (fun i (r, b, f) -> (float_of_int i, [ r; b; f ])) rows)
  in
  [ series ]
