open Tfmcc_core

let run_one ~seed ~remember ~t_end =
  let cfg = { Config.default with remember_clr = remember } in
  let st =
    Scenario.star ~seed ~cfg ~link_bps:50e6
      ~link_delays:[| 0.02; 0.02 |]
      ~link_losses:[| 0.02; 0.02 |]
      ()
  in
  let sc = st.Scenario.s_sc in
  let eng = sc.Scenario.engine in
  (* Alternate which receiver is worse every 10 s. *)
  let flip phase =
    let p0, p1 = if phase then (0.04, 0.01) else (0.01, 0.04) in
    let l0, _ = st.Scenario.s_rx_links.(0) in
    let l1, _ = st.Scenario.s_rx_links.(1) in
    Netsim.Link.set_loss l0
      (Netsim.Loss_model.bernoulli ~rng:(Netsim.Engine.split_rng eng) ~p:p0);
    Netsim.Link.set_loss l1
      (Netsim.Loss_model.bernoulli ~rng:(Netsim.Engine.split_rng eng) ~p:p1)
  in
  let rec schedule t phase =
    if t < t_end then
      ignore
        (Netsim.Engine.at eng ~time:t (fun () ->
             flip phase;
             schedule (t +. 10.) (not phase)))
  in
  schedule 10. true;
  Session.start st.Scenario.s_session ~at:0.;
  let snd = Session.sender st.Scenario.s_session in
  let rate_acc = ref 0. and samples = ref 0 in
  Scenario.sample_every sc ~dt:1. ~t_end (fun t ->
      if t > 20. then begin
        rate_acc := !rate_acc +. Sender.rate_bytes_per_s snd;
        incr samples
      end);
  Scenario.run_until sc t_end;
  let mean_rate = !rate_acc /. float_of_int !samples *. 8. /. 1000. in
  (mean_rate, Sender.clr_changes snd)

let run ~mode ~seed =
  let t_end = Scenario.scale mode ~quick:120. ~full:300. in
  let off_rate, off_changes = run_one ~seed ~remember:false ~t_end in
  let on_rate, on_changes = run_one ~seed ~remember:true ~t_end in
  [
    Series.make
      ~title:
        "Ablation: App. C previous-CLR memory under alternating worst \
         receivers (loss flips every 10 s)"
      ~xlabel:"remember_clr (0=off, 1=on)"
      ~ylabels:[ "mean rate (kbit/s)"; "CLR changes" ]
      ~notes:
        [
          Printf.sprintf
            "App. C predicts the memory makes behaviour (weakly) more \
             conservative; measured means are close (on %.0f vs off %.0f \
             kbit/s) because the memory only gates the increase path \
             briefly after a switch" on_rate off_rate;
        ]
      [
        (0., [ off_rate; float_of_int off_changes ]);
        (1., [ on_rate; float_of_int on_changes ]);
      ];
  ]
