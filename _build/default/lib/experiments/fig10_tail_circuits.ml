let run ~mode ~seed =
  let t_end = Scenario.scale mode ~quick:120. ~full:200. in
  let warmup = Scenario.scale mode ~quick:40. ~full:60. in
  let n = 16 in
  (* Separate 1 Mbit/s bottlenecks on the last hop to each receiver, a
     TCP flow competing on every tail circuit. *)
  let st =
    Scenario.star ~seed ~uplink_bps:100e6 ~link_bps:1e6
      ~link_delays:(Array.make n 0.02) ~with_tcp:true ()
  in
  Tfmcc_core.Session.start st.s_session ~at:0.;
  Scenario.run_until st.s_sc t_end;
  let bin = 1. in
  let tf =
    Scenario.throughput_series st.s_sc ~flow:Scenario.tfmcc_flow ~bin ~t_end
    (* 16 receivers tap the same flow tag; normalize per receiver. *)
    |> Array.map (fun (t, v) -> (t, v /. float_of_int n))
  in
  let tcp1 = Scenario.throughput_series st.s_sc ~flow:(Scenario.tcp_flow 0) ~bin ~t_end in
  let tcp2 = Scenario.throughput_series st.s_sc ~flow:(Scenario.tcp_flow 1) ~bin ~t_end in
  let rows =
    Array.to_list
      (Array.mapi (fun i (t, v) -> (t, [ snd tcp1.(i); snd tcp2.(i); v ])) tf)
  in
  let mean_tfmcc =
    Scenario.mean_throughput_kbps st.s_sc ~flow:Scenario.tfmcc_flow
      ~t_start:warmup ~t_end
    /. float_of_int n
  in
  let mean_tcp =
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc :=
        !acc
        +. Scenario.mean_throughput_kbps st.s_sc ~flow:(Scenario.tcp_flow i)
             ~t_start:warmup ~t_end
    done;
    !acc /. float_of_int n
  in
  [
    Series.make
      ~title:"Fig. 10: 1 TFMCC (16 rcvrs) vs 16 TCP on individual 1 Mbit/s tails"
      ~xlabel:"time (s)" ~ylabels:[ "TCP 1"; "TCP 2"; "TFMCC" ]
      ~notes:
        [
          Printf.sprintf
            "steady-state means (kbit/s): TFMCC %.0f vs TCP avg %.0f; ratio \
             %.2f — paper: ~0.7 from tracking the min of 16 independent \
             loss processes"
            mean_tfmcc mean_tcp (mean_tfmcc /. mean_tcp);
        ]
      rows;
  ]
