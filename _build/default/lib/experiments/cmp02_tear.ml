(* One lossy path per protocol run: src -- 20 Mbit/s, 30 ms RTT, 1% loss
   -- dst. *)
let build ~seed =
  let sc = Scenario.base ~seed () in
  let topo = sc.Scenario.topo in
  let a = Netsim.Topology.add_node topo in
  let b = Netsim.Topology.add_node topo in
  ignore
    (Netsim.Topology.connect topo
       ~loss_ab:
         (Netsim.Loss_model.bernoulli
            ~rng:(Netsim.Engine.split_rng sc.Scenario.engine)
            ~p:0.01)
       ~bandwidth_bps:20e6 ~delay_s:0.015 a b);
  Netsim.Monitor.watch_node sc.Scenario.monitor b;
  (sc, a, b)

let stats sc ~flow ~t_end =
  let xs =
    Scenario.throughput_series sc ~flow ~bin:1. ~t_end
    |> Array.to_list
    |> List.filter (fun (t, _) -> t >= t_end /. 4.)
    |> List.map snd |> Array.of_list
  in
  (Stats.Descriptive.mean xs, Stats.Descriptive.coefficient_of_variation xs)

let run ~mode ~seed =
  let t_end = Scenario.scale mode ~quick:120. ~full:300. in
  (* TFRC *)
  let sc1, a1, b1 = build ~seed in
  let tfrc = Tfrc.Tfrc_sender.create sc1.Scenario.topo ~conn:1 ~flow:1 ~src:a1 ~dst:b1 () in
  let _r1 = Tfrc.Tfrc_receiver.create sc1.Scenario.topo ~conn:1 ~node:b1 ~sender:a1 () in
  Tfrc.Tfrc_sender.start tfrc ~at:0.;
  Scenario.run_until sc1 t_end;
  let tfrc_mean, tfrc_cov = stats sc1 ~flow:1 ~t_end in
  (* TEAR *)
  let sc2, a2, b2 = build ~seed in
  let tear = Tear.Sender.create sc2.Scenario.topo ~conn:1 ~flow:1 ~src:a2 ~dst:b2 () in
  let tear_rx = Tear.Receiver.create sc2.Scenario.topo ~conn:1 ~node:b2 ~sender:a2 () in
  Tear.Sender.start tear ~at:0.;
  Scenario.run_until sc2 t_end;
  let tear_mean, tear_cov = stats sc2 ~flow:1 ~t_end in
  (* TCP reference *)
  let sc3, a3, b3 = build ~seed in
  let _tcp = Scenario.add_tcp sc3 ~conn:1 ~flow:1 ~src:a3 ~dst:b3 ~at:0. in
  Scenario.run_until sc3 t_end;
  let tcp_mean, tcp_cov = stats sc3 ~flow:1 ~t_end in
  [
    Series.make
      ~title:
        "Comparison (paper §5): TEAR vs TFRC vs TCP on a 1%-lossy 30 ms \
         path (kbit/s; mean and smoothness over the steady state)"
      ~xlabel:"protocol (0=TFRC, 1=TEAR, 2=TCP)"
      ~ylabels:[ "mean (kbit/s)"; "rate CoV" ]
      ~notes:
        [
          Printf.sprintf
            "TFRC %.0f (CoV %.2f) / TEAR %.0f (CoV %.2f) / TCP %.0f (CoV \
             %.2f) — paper: TEAR's emulation should do neither much \
             better nor much worse than the equation"
            tfrc_mean tfrc_cov tear_mean tear_cov tcp_mean tcp_cov;
          Printf.sprintf "TEAR completed %d window epochs"
            (Tear.Receiver.epochs_completed tear_rx);
        ]
      [
        (0., [ tfrc_mean; tfrc_cov ]);
        (1., [ tear_mean; tear_cov ]);
        (2., [ tcp_mean; tcp_cov ]);
      ];
  ]
