(** Fig. 19 (App. D): lossy return paths.  Four receivers whose
    receiver→sender directions lose 0 / 10 / 20 / 30 % of packets, a TCP
    flow to each receiver for comparison.  TFMCC is insensitive to lost
    receiver reports; TCP's cumulative ACKs keep it largely unaffected
    too. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
