(** Fig. 2: time–value distribution of one feedback round with uniform
    feedback values, offset-biased versus unbiased timers: when feedback
    is biased, the early responses (and hence the best value heard) are
    close to the true minimum. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list

val scatter :
  seed:int ->
  n:int ->
  bias:Tfmcc_core.Config.bias ->
  (float * float * bool) array
(** (time, value, sent) triples of one round — the raw points of the
    figure, used by the CSV dump of the CLI. *)
