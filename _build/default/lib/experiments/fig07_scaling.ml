open Tfmcc_core

let run ~mode ~seed =
  let ns =
    Scenario.scale mode ~quick:[ 1; 10; 100; 1000 ]
      ~full:[ 1; 3; 10; 30; 100; 300; 1000; 3000; 10_000 ]
  in
  let trials = Scenario.scale mode ~quick:60 ~full:300 in
  let rng = Stats.Rng.create seed in
  let run_profile profile =
    Scaling_model.series rng ~ns ~profile ~rtt:0.05 ~s:1000 ~n_intervals:8
      ~trials
  in
  let constant = run_profile (Scaling_model.Constant 0.1) in
  let realistic = run_profile (Scaling_model.Realistic { c = 1. }) in
  let to_kbit v = v *. 8. /. 1000. in
  let rows =
    List.map2
      (fun (n, c) (_, d) -> (float_of_int n, [ to_kbit c; to_kbit d ]))
      constant realistic
  in
  [
    Series.make
      ~title:
        "Fig. 7: throughput (kbit/s) vs receivers under independent loss \
         (10% constant vs realistic distribution), RTT 50 ms"
      ~xlabel:"receivers (n)" ~ylabels:[ "constant"; "distrib." ]
      ~notes:
        [
          "paper: ~300 kbit/s at n=1 dropping to ~1/6 at n=10000 for \
           constant loss; only ~30% degradation for the realistic \
           distribution";
          "this static E[min] Monte-Carlo is a pessimistic bound: the \
           protocol's capped increases between CLR switches keep the \
           time-averaged rate above the instantaneous minimum, so the \
           measured curve falls somewhat faster than the paper's \
           protocol-level one; the crossover ordering (distrib. >> \
           constant) is preserved";
        ]
      rows;
  ]
