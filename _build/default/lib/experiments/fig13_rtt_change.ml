open Tfmcc_core

(* One run: n receivers with iid 1% loss on their links, RTT ~60 ms; at
   [t_change], receiver 0's link delay jumps to 150 ms one-way.  Returns
   the delay until the sender elects receiver 0 as CLR. *)
let reaction_delay ~seed ~n ~t_change ~t_limit =
  let st =
    Scenario.star ~seed ~uplink_bps:500e6 ~link_bps:100e6
      ~link_delays:(Array.make n 0.025)
      ~link_losses:(Array.make n 0.01) ()
  in
  let sc = st.Scenario.s_sc in
  let eng = sc.Scenario.engine in
  let target = Netsim.Node.id st.Scenario.s_rx_nodes.(0) in
  Session.start st.Scenario.s_session ~at:0.;
  ignore
    (Netsim.Engine.at eng ~time:t_change (fun () ->
         let fwd, bwd = st.Scenario.s_rx_links.(0) in
         Netsim.Link.set_delay fwd 0.15;
         Netsim.Link.set_delay bwd 0.15));
  let reaction = ref nan in
  let rec poll t =
    if t <= t_limit then
      ignore
        (Netsim.Engine.at eng ~time:t (fun () ->
             if Float.is_nan !reaction then begin
               match Sender.clr (Session.sender st.Scenario.s_session) with
               | Some id when id = target && t >= t_change ->
                   reaction := t -. t_change;
                   Netsim.Engine.stop eng
               | _ -> poll (t +. 0.1)
             end))
  in
  poll (Float.max 0.1 t_change);
  Scenario.run_until sc t_limit;
  !reaction

let run ~mode ~seed =
  let ns = Scenario.scale mode ~quick:[ 40; 200 ] ~full:[ 40; 200; 1000 ] in
  let changes =
    Scenario.scale mode ~quick:[ 0.; 10.; 20.; 40. ]
      ~full:[ 0.; 10.; 20.; 40.; 80.; 160. ]
  in
  let rows =
    List.map
      (fun tc ->
        let ys =
          List.map
            (fun n ->
              reaction_delay ~seed ~n ~t_change:tc ~t_limit:(tc +. 200.))
            ns
        in
        (tc, ys))
      changes
  in
  [
    Series.make
      ~title:
        "Fig. 13: delay until the high-RTT receiver becomes CLR vs time of \
         the RTT change"
      ~xlabel:"time of change (s)"
      ~ylabels:(List.map (Printf.sprintf "%d receivers") ns)
      ~notes:
        [
          "paper: reaction delay shrinks for later changes (more receivers \
           already hold valid RTTs) and grows with the receiver count";
        ]
      rows;
  ]
