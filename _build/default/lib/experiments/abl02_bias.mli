(** Ablation: the feedback-timer biasing method at the protocol level
    (§2.5.1 adopts the modified offset).  Measures how quickly the
    correct CLR is found after a receiver's path degrades, and the
    feedback load, for each method. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
