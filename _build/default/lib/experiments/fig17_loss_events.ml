let run ~mode:_ ~seed:_ =
  let points = 81 in
  (* log-spaced p from 1e-4 to 1 *)
  let rows =
    List.init points (fun i ->
        let lg = -4. +. (4. *. float_of_int i /. float_of_int (points - 1)) in
        let p = 10. ** lg in
        let p = Float.min 1. p in
        ( p,
          [
            Tcp_model.Padhye.loss_events_per_rtt ~b:2. p;
            Tcp_model.Padhye.loss_events_per_rtt ~b:1. p;
          ] ))
  in
  [
    Series.make
      ~title:"Fig. 17: loss events per RTT vs loss event rate"
      ~xlabel:"loss event rate p"
      ~ylabels:[ "L(p), b=2 (paper)"; "L(p), b=1" ]
      ~notes:
        [
          "paper: maximum ~0.13 (curve matches the b=2 form of the \
           equation); with b=1 the peak is ~0.19";
        ]
      rows;
  ]
