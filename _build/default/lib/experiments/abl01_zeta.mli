(** Ablation: the feedback-cancellation threshold ζ at the protocol level
    (§2.5.2 fixes ζ = 0.1).  For a group that suddenly shares congestion,
    small ζ hears the true minimum but costs feedback messages; large ζ
    suppresses hard but can leave the sender tracking a non-minimal
    receiver.  We sweep ζ and measure reports per round and the achieved
    rate. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
