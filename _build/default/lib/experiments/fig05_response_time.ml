open Tfmcc_core

let methods =
  [
    ("unbiased exponential", Config.Unbiased);
    ("basic offset", Config.Offset);
    ("modified offset", Config.Modified_offset);
  ]

(* Shared Monte-Carlo for Figs 5 and 6: first-response time and quality of
   the best reported value, per biasing method. *)
let measure ~mode ~seed =
  let ns =
    Scenario.scale mode ~quick:[ 1; 10; 100; 1000 ]
      ~full:[ 1; 10; 100; 1000; 10_000 ]
  in
  let trials = Scenario.scale mode ~quick:30 ~full:100 in
  let rng = Stats.Rng.create seed in
  List.map
    (fun n ->
      let per_method =
        List.map
          (fun (_, bias) ->
            let params =
              {
                Feedback_process.n_estimate = 10_000;
                t_max = 6.;
                delay = 1.;
                bias;
                delta = 1. /. 3.;
                (* Figs 5/6 study the biasing methods under plain
                   cancel-on-first-echo suppression: with a rate
                   threshold the lowest-rate receiver always reports and
                   the quality comparison is trivially zero. *)
                cancel = Feedback_process.On_any;
              }
            in
            let time_acc = ref 0. and qual_acc = ref 0. in
            for _ = 1 to trials do
              (* Rate ratios uniform in [0.4, 1]: the regime after a
                 congestion change, where the modified offset's
                 truncation band is active. *)
              let values = Feedback_process.uniform_values rng ~n ~lo:0.4 ~hi:1. in
              let o = Feedback_process.run_round rng params ~values in
              time_acc := !time_acc +. o.first_time;
              qual_acc := !qual_acc +. (o.best_value -. o.true_min)
            done;
            let tf = float_of_int trials in
            (!time_acc /. tf, !qual_acc /. tf))
          methods
      in
      (n, per_method))
    ns

let run ~mode ~seed =
  let data = measure ~mode ~seed in
  [
    Series.make
      ~title:"Fig. 5: response time of the first feedback message vs group size"
      ~xlabel:"receivers (n)"
      ~ylabels:(List.map fst methods)
      ~notes:
        [
          "paper: all methods decrease ~logarithmically in n; modified \
           offset has a slight edge";
        ]
      (List.map
         (fun (n, per) -> (float_of_int n, List.map fst per))
         data);
  ]
