(** Fig. 7: throughput degradation with the number of receivers under
    independent loss (Section 3's loss-path-multiplicity model), for a
    constant 10 % per-receiver loss rate and for the skewed "realistic"
    distribution; RTT 50 ms, 1 kB packets. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
