(** Fig. 12: rate of initial RTT measurements.  A large receiver set
    behind one shared bottleneck (highly correlated loss, the worst case:
    everyone wants feedback), link RTTs spread over 60–140 ms, initial
    RTT 500 ms; the number of receivers holding a real RTT measurement
    grows by roughly the per-round feedback count and tails off to one
    new measurement per round. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
