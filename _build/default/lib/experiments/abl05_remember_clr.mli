(** Ablation: App. C's previous-CLR memory.  Two receivers whose loss
    rates alternate dominance force frequent CLR switching; remembering
    the previous CLR should make behaviour strictly more conservative
    (lower or equal rate, fewer or equal distinct CLR switches back and
    forth paid for by slower reaction to improvements). *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
