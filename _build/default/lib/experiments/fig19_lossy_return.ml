open Tfmcc_core

let run ~mode ~seed =
  let t_end = Scenario.scale mode ~quick:80. ~full:120. in
  let warmup = 20. in
  let return_losses = [| 0.; 0.10; 0.20; 0.30 |] in
  let st =
    Scenario.star ~seed ~uplink_bps:50e6 ~link_bps:4e6
      ~link_delays:(Array.make 4 0.015) ~return_losses ~with_tcp:true ()
  in
  let sc = st.Scenario.s_sc in
  Session.start st.Scenario.s_session ~at:0.;
  Scenario.run_until sc t_end;
  let bin = 1. in
  let tf =
    Scenario.throughput_series sc ~flow:Scenario.tfmcc_flow ~bin ~t_end
    |> Array.map (fun (t, v) -> (t, v /. 4.))
  in
  let tcps =
    Array.init 4 (fun i ->
        Scenario.throughput_series sc ~flow:(Scenario.tcp_flow i) ~bin ~t_end)
  in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i (t, v) ->
           (t, v :: (Array.to_list tcps |> List.map (fun s -> snd s.(i)))))
         tf)
  in
  let mean flow = Scenario.mean_throughput_kbps sc ~flow ~t_start:warmup ~t_end in
  [
    Series.make
      ~title:"Fig. 19: lossy return paths (kbit/s)"
      ~xlabel:"time (s)"
      ~ylabels:
        ("TFMCC"
        :: (Array.to_list return_losses
           |> List.map (fun l -> Printf.sprintf "TCP (%.0f%%)" (100. *. l))))
      ~notes:
        [
          Printf.sprintf
            "steady means (kbit/s): TFMCC/4rx %.0f; TCP at 0/10/20/30%% \
             return loss: %.0f %.0f %.0f %.0f — paper: TFMCC unaffected by \
             report loss; TCP degrades only at very high return loss"
            (mean Scenario.tfmcc_flow /. 4.)
            (mean (Scenario.tcp_flow 0))
            (mean (Scenario.tcp_flow 1))
            (mean (Scenario.tcp_flow 2))
            (mean (Scenario.tcp_flow 3));
        ]
      rows;
  ]
