(** Inter-protocol coexistence: one TFMCC session and one PGMCC session
    sharing the same bottleneck (a question §5 raises implicitly — both
    claim TCP-friendliness, so they should also coexist with each
    other).  Measures the long-run share each takes and Jain's index
    over the pair (plus a TCP reference flow). *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
