(** Fig. 11: responsiveness to changes in the loss rate.  A star of four
    receiver links (RTT 60 ms) with loss rates 0.1 / 0.5 / 2.5 / 12.5 %;
    receivers join in that order at fixed intervals, then leave in
    reverse; one TCP flow to each receiver runs throughout.  TFMCC should
    track the TCP throughput of the currently worst receiver at every
    stage. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
