(** Fig. 9: one TFMCC flow and 15 TCP flows sharing a single 8 Mbit/s
    bottleneck: TFMCC's average matches TCP's (fair share ≈ 500 kbit/s)
    with a visibly smoother rate. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
