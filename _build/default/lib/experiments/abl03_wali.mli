(** Ablation: WALI loss-history depth (§2.3 and §3: "values around 8 to
    32 appear to be a good compromise"; §3 notes a longer history
    alleviates the scaling degradation at the price of responsiveness).
    Two views: the Section-3 scaling model's throughput at various group
    sizes, and the protocol-level smoothness/responsiveness of a single
    receiver. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
