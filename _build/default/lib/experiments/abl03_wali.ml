open Tfmcc_core

let depths = [ 4; 8; 16; 32 ]

(* Protocol-level: one receiver at 2% loss; smoothness of the sending
   rate, plus responsiveness: time for the rate to halve after the loss
   rate quadruples. *)
let protocol_view ~seed ~n_intervals ~t_end =
  let cfg = { Config.default with n_intervals } in
  let st =
    Scenario.star ~seed ~cfg ~link_bps:100e6 ~link_delays:[| 0.02 |]
      ~link_losses:[| 0.02 |] ()
  in
  let sc = st.Scenario.s_sc in
  let eng = sc.Scenario.engine in
  let snd = Session.sender st.Scenario.s_session in
  Session.start st.Scenario.s_session ~at:0.;
  let t_change = t_end /. 2. in
  let rate_at_change = ref nan and reaction = ref nan in
  ignore
    (Netsim.Engine.at eng ~time:t_change (fun () ->
         rate_at_change := Sender.rate_bytes_per_s snd;
         let fwd, _ = st.Scenario.s_rx_links.(0) in
         Netsim.Link.set_loss fwd
           (Netsim.Loss_model.bernoulli
              ~rng:(Netsim.Engine.split_rng eng)
              ~p:0.08)));
  let rec poll t =
    if t <= t_end then
      ignore
        (Netsim.Engine.at eng ~time:t (fun () ->
             if
               Float.is_nan !reaction
               && (not (Float.is_nan !rate_at_change))
               && Sender.rate_bytes_per_s snd < !rate_at_change /. 2.
             then reaction := t -. t_change
             else poll (t +. 0.2)))
  in
  poll (t_change +. 0.2);
  (* Smoothness over the steady first half. *)
  let samples = ref [] in
  Scenario.sample_every sc ~dt:1. ~t_end (fun t ->
      if t > t_change /. 2. && t < t_change then
        samples := Sender.rate_bytes_per_s snd :: !samples);
  Scenario.run_until sc t_end;
  let cov = Stats.Descriptive.coefficient_of_variation (Array.of_list !samples) in
  (cov, !reaction)

let run ~mode ~seed =
  let t_end = Scenario.scale mode ~quick:120. ~full:240. in
  let scaling_trials = Scenario.scale mode ~quick:100 ~full:400 in
  let rng = Stats.Rng.create seed in
  let rows =
    List.map
      (fun n_intervals ->
        let cov, reaction = protocol_view ~seed ~n_intervals ~t_end in
        (* Section-3 scaling view: throughput at 100 receivers relative
           to 1 receiver, 10% loss. *)
        let t n =
          Scaling_model.expected_throughput rng ~n ~profile:(Constant 0.1)
            ~rtt:0.05 ~s:1000 ~n_intervals ~trials:scaling_trials
        in
        let retention = t 100 /. t 1 in
        (float_of_int n_intervals, [ cov; reaction; retention ]))
      depths
  in
  [
    Series.make
      ~title:"Ablation: WALI loss-history depth"
      ~xlabel:"loss intervals (n)"
      ~ylabels:
        [ "rate CoV (smoothness)"; "reaction to 4x loss (s)"; "min-tracking retention @n=100" ]
      ~notes:
        [
          "paper (2.3, 3): deeper history smooths the estimate and \
           softens the many-receiver degradation, at the price of \
           responsiveness — 8..32 is the compromise";
        ]
      rows;
  ]
