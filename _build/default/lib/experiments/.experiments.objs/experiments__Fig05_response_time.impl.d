lib/experiments/fig05_response_time.ml: Config Feedback_process List Scenario Series Stats Tfmcc_core
