lib/experiments/cmp01_pgmcc.mli: Scenario Series
