lib/experiments/cmp02_tear.mli: Scenario Series
