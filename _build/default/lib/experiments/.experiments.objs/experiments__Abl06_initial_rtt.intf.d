lib/experiments/abl06_initial_rtt.mli: Scenario Series
