lib/experiments/fig17_loss_events.mli: Scenario Series
