lib/experiments/fig20_delay_responsiveness.ml: Array Netsim Receiver Scenario Series Session Tfmcc_core
