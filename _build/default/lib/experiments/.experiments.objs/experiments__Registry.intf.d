lib/experiments/registry.mli: Scenario Series
