lib/experiments/fig10_tail_circuits.ml: Array Printf Scenario Series Tfmcc_core
