lib/experiments/fig10_tail_circuits.mli: Scenario Series
