lib/experiments/fig07_scaling.mli: Scenario Series
