lib/experiments/scenario.mli: Netsim Tcp Tfmcc_core
