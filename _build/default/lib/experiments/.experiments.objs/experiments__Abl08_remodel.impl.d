lib/experiments/abl08_remodel.ml: Config Float Netsim Receiver Scenario Sender Series Session Stdlib Tfmcc_core
