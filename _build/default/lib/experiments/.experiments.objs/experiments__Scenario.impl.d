lib/experiments/scenario.ml: Array List Netsim Option Stats Tcp Tfmcc_core
