lib/experiments/abl02_bias.mli: Scenario Series
