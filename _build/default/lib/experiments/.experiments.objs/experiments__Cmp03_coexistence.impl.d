lib/experiments/cmp03_coexistence.ml: Netsim Pgmcc Printf Scenario Series Stats Tfmcc_core
