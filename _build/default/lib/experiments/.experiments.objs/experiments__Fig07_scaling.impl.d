lib/experiments/fig07_scaling.ml: List Scaling_model Scenario Series Stats Tfmcc_core
