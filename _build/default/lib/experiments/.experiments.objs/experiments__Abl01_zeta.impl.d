lib/experiments/abl01_zeta.ml: Array Config List Printf Scenario Sender Series Session Stdlib Tfmcc_core
