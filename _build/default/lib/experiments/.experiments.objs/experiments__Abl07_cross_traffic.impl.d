lib/experiments/abl07_cross_traffic.ml: Array List Netsim Scenario Series Session Stats String Tfmcc_core
