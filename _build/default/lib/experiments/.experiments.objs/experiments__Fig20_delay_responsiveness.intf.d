lib/experiments/fig20_delay_responsiveness.mli: Scenario Series
