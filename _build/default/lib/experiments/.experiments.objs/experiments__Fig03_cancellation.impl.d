lib/experiments/fig03_cancellation.ml: Config Feedback_process List Scenario Series Stats Tfmcc_core
