lib/experiments/abl07_cross_traffic.mli: Scenario Series
