lib/experiments/fig13_rtt_change.mli: Scenario Series
