lib/experiments/ext02_layered.ml: Array Layered Netsim Scenario Series
