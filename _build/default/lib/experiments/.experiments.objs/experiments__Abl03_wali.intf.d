lib/experiments/abl03_wali.mli: Scenario Series
