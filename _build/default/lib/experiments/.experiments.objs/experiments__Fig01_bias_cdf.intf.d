lib/experiments/fig01_bias_cdf.mli: Scenario Series
