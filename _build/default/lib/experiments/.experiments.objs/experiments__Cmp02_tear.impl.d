lib/experiments/cmp02_tear.ml: Array List Netsim Printf Scenario Series Stats Tear Tfrc
