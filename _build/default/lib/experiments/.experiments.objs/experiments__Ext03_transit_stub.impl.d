lib/experiments/ext03_transit_stub.ml: Array Netsim Option Printf Scenario Sender Series Session Stats Stdlib Tfmcc_core
