lib/experiments/fig02_time_value.mli: Scenario Series Tfmcc_core
