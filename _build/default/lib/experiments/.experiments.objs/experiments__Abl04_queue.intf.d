lib/experiments/abl04_queue.mli: Scenario Series
