lib/experiments/fig13_rtt_change.ml: Array Float List Netsim Printf Scenario Sender Series Session Tfmcc_core
