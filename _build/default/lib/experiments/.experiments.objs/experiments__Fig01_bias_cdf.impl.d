lib/experiments/fig01_bias_cdf.ml: List Scenario Series Stats Tfmcc_core
