lib/experiments/ext02_layered.mli: Scenario Series
