lib/experiments/fig05_response_time.mli: Scenario Series Tfmcc_core
