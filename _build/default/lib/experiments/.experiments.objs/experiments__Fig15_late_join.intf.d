lib/experiments/fig15_late_join.mli: Scenario Series
