lib/experiments/abl04_queue.ml: Array Fun List Netsim Scenario Series Session Stats Tfmcc_core
