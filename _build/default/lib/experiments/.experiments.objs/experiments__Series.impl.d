lib/experiments/series.ml: Array Buffer Float Format List Printf Stats Stdlib String
