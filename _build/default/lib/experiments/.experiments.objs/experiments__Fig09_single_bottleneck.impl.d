lib/experiments/fig09_single_bottleneck.ml: Array List Printf Scenario Series Stats Tfmcc_core
