lib/experiments/fig18_return_traffic.mli: Scenario Series
