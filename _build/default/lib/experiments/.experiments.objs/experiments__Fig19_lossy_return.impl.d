lib/experiments/fig19_lossy_return.ml: Array List Printf Scenario Series Session Tfmcc_core
