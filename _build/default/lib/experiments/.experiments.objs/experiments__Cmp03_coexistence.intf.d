lib/experiments/cmp03_coexistence.mli: Scenario Series
