lib/experiments/abl08_remodel.mli: Scenario Series
