lib/experiments/fig18_return_traffic.ml: Array List Netsim Printf Scenario Series Session Tfmcc_core
