lib/experiments/ext01_aggregation.ml: Aggregator Array Config List Netsim Printf Receiver Scenario Sender Series Session Stdlib Tfmcc_core
