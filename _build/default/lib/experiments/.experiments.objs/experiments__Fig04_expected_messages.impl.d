lib/experiments/fig04_expected_messages.ml: List Printf Scenario Series Tfmcc_core
