lib/experiments/abl02_bias.ml: Array Config Float List Netsim Printf Scenario Sender Series Session Stdlib Tfmcc_core
