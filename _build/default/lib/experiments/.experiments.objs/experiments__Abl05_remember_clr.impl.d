lib/experiments/abl05_remember_clr.ml: Array Config Netsim Printf Scenario Sender Series Session Tfmcc_core
