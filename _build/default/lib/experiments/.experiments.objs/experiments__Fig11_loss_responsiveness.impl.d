lib/experiments/fig11_loss_responsiveness.ml: Array Netsim Receiver Scenario Series Session Tfmcc_core
