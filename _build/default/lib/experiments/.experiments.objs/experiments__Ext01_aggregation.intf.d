lib/experiments/ext01_aggregation.mli: Scenario Series
