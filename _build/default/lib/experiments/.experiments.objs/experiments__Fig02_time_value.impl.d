lib/experiments/fig02_time_value.ml: Array Config Feedback_process List Scenario Series Stats Tfmcc_core
