lib/experiments/fig19_lossy_return.mli: Scenario Series
