lib/experiments/fig12_rtt_measurements.mli: Scenario Series
