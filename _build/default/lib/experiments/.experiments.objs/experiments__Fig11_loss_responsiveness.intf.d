lib/experiments/fig11_loss_responsiveness.mli: Scenario Series
