lib/experiments/fig21_flow_doubling.mli: Scenario Series
