lib/experiments/fig21_flow_doubling.ml: Array List Netsim Scenario Series Session Tfmcc_core
