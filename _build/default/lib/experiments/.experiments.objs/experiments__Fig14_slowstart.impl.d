lib/experiments/fig14_slowstart.ml: Float List Netsim Scenario Sender Series Session Tfmcc_core
