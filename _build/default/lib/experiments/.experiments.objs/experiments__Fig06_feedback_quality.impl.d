lib/experiments/fig06_feedback_quality.ml: Fig05_response_time List Series
