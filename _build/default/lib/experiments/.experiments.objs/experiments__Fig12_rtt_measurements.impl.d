lib/experiments/fig12_rtt_measurements.ml: List Netsim Printf Scenario Series Session Stats Tfmcc_core
