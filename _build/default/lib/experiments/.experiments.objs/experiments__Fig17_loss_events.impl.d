lib/experiments/fig17_loss_events.ml: Float List Series Tcp_model
