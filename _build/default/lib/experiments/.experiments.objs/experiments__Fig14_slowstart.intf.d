lib/experiments/fig14_slowstart.mli: Scenario Series
