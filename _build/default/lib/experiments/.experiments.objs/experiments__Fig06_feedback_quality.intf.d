lib/experiments/fig06_feedback_quality.mli: Scenario Series
