lib/experiments/fig04_expected_messages.mli: Scenario Series
