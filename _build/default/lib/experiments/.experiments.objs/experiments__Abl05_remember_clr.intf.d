lib/experiments/abl05_remember_clr.mli: Scenario Series
