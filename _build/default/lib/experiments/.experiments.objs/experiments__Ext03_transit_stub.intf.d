lib/experiments/ext03_transit_stub.mli: Scenario Series
