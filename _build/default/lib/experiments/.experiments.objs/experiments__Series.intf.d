lib/experiments/series.mli: Format Stats
