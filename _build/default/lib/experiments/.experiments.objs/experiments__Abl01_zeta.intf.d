lib/experiments/abl01_zeta.mli: Scenario Series
