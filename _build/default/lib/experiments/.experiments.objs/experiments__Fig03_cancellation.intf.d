lib/experiments/fig03_cancellation.mli: Scenario Series
