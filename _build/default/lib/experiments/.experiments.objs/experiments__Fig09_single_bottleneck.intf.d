lib/experiments/fig09_single_bottleneck.mli: Scenario Series
