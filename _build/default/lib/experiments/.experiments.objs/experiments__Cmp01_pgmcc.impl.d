lib/experiments/cmp01_pgmcc.ml: Array List Netsim Pgmcc Printf Scenario Series Stats Tfmcc_core
