lib/experiments/abl03_wali.ml: Array Config Float List Netsim Scaling_model Scenario Sender Series Session Stats Tfmcc_core
