lib/experiments/abl06_initial_rtt.ml: Array Config Float List Netsim Scenario Sender Series Session Tfmcc_core
