lib/experiments/fig15_late_join.ml: Array Netsim Receiver Scenario Series Session Tfmcc_core
