(** Fig. 10: one TFMCC flow whose 16 receivers each sit behind their own
    1 Mbit/s tail circuit shared with one TCP flow: the
    loss-path-multiplicity effect (tracking the minimum of 16 independent
    loss processes) confines TFMCC to ≈ 70 % of TCP throughput. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
