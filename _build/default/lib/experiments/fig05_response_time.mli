(** Fig. 5: mean time of the first feedback response (in RTTs) versus
    group size, for unbiased exponential timers, the basic offset bias
    and the modified offset bias. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list

val methods : (string * Tfmcc_core.Config.bias) list
(** The three biasing methods compared in Figs 5 and 6. *)

val measure :
  mode:Scenario.mode -> seed:int -> (int * (float * float) list) list
(** Shared Monte-Carlo behind Figs 5 and 6: per group size, per method,
    (mean first-response time, mean best-minus-min value). *)
