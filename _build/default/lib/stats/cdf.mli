(** Empirical cumulative distribution functions (Figure 1 of the paper
    compares the CDFs of biased feedback-timer values). *)

type t

val of_samples : float array -> t
(** Builds the empirical CDF from samples.  Raises on the empty array. *)

val eval : t -> float -> float
(** [eval cdf x] = fraction of samples ≤ x. *)

val quantile : t -> float -> float
(** [quantile cdf q] with q in (0, 1]: smallest sample x with
    [eval cdf x >= q]. *)

val points : t -> n:int -> (float * float) array
(** [points cdf ~n] samples the CDF at [n] evenly spaced x positions
    spanning the sample range — the series a plot would draw. *)

val support : t -> float * float
(** (min sample, max sample). *)
