(** Summary statistics over float samples. *)

val mean : float array -> float
(** Arithmetic mean; 0 for the empty array. *)

val variance : float array -> float
(** Unbiased sample variance; 0 when fewer than two samples. *)

val stddev : float array -> float

val min : float array -> float
(** Raises [Invalid_argument] on the empty array. *)

val max : float array -> float
(** Raises [Invalid_argument] on the empty array. *)

val percentile : float array -> float -> float
(** [percentile xs q] with [q] in [0,100]; linear interpolation between
    order statistics.  Raises on the empty array. *)

val median : float array -> float

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  max : float;
}

val summarize : float array -> summary
(** Raises [Invalid_argument] on the empty array. *)

val pp_summary : Format.formatter -> summary -> unit

val coefficient_of_variation : float array -> float
(** stddev / mean; smoothness metric used when comparing TFMCC's rate to
    TCP's sawtooth. 0 when the mean is 0. *)

val jain_index : float array -> float
(** Jain's fairness index (Σx)²/(n·Σx²) over per-flow allocations:
    1 = perfectly fair, 1/n = one flow takes everything.  Raises on the
    empty array. *)
