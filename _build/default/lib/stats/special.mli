(** Special functions needed for the analytic parts of the reproduction
    (gamma order statistics of Section 3, feedback-message expectations). *)

val log_gamma : float -> float
(** [log_gamma x] is ln Γ(x) for x > 0 (Lanczos approximation, accurate to
    ~1e-13 over the range we use). *)

val gamma_p : float -> float -> float
(** [gamma_p a x] is the regularized lower incomplete gamma function
    P(a, x) = γ(a,x)/Γ(a), for a > 0, x ≥ 0. *)

val gamma_q : float -> float -> float
(** [gamma_q a x] = 1 - P(a, x). *)

val erf : float -> float
(** Error function (Abramowitz–Stegun 7.1.26 style rational approximation,
    |error| < 1.5e-7). *)
