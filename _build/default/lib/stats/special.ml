(* Lanczos approximation, g = 7, n = 9 coefficients. *)
let lanczos =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  if x <= 0. then invalid_arg "Special.log_gamma: x must be positive";
  if x < 0.5 then
    (* Reflection formula keeps accuracy near zero. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else begin
    let x = x -. 1. in
    let a = ref lanczos.(0) in
    let t = x +. 7.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    0.5 *. log (2. *. Float.pi) +. ((x +. 0.5) *. log t) -. t +. log !a
  end

(* Series expansion of P(a,x), converges quickly for x < a + 1. *)
let gamma_p_series a x =
  let rec loop n term sum =
    if abs_float term < abs_float sum *. 1e-15 || n > 500 then sum
    else
      let term = term *. x /. (a +. float_of_int n) in
      loop (n + 1) term (sum +. term)
  in
  let t0 = 1. /. a in
  let sum = loop 1 t0 t0 in
  sum *. exp ((a *. log x) -. x -. log_gamma a)

(* Continued fraction for Q(a,x), converges quickly for x >= a + 1.
   Modified Lentz algorithm. *)
let gamma_q_cf a x =
  let tiny = 1e-300 in
  let b = ref (x +. 1. -. a) in
  let c = ref (1. /. tiny) in
  let d = ref (1. /. !b) in
  let h = ref !d in
  (try
     for i = 1 to 500 do
       let an = -.float_of_int i *. (float_of_int i -. a) in
       b := !b +. 2.;
       d := (an *. !d) +. !b;
       if abs_float !d < tiny then d := tiny;
       c := !b +. (an /. !c);
       if abs_float !c < tiny then c := tiny;
       d := 1. /. !d;
       let del = !d *. !c in
       h := !h *. del;
       if abs_float (del -. 1.) < 1e-15 then raise Exit
     done
   with Exit -> ());
  exp ((a *. log x) -. x -. log_gamma a) *. !h

let gamma_p a x =
  if a <= 0. then invalid_arg "Special.gamma_p: a must be positive";
  if x < 0. then invalid_arg "Special.gamma_p: x must be non-negative";
  if x = 0. then 0.
  else if x < a +. 1. then gamma_p_series a x
  else 1. -. gamma_q_cf a x

let gamma_q a x = 1. -. gamma_p a x

let erf x =
  let sign = if x < 0. then -1. else 1. in
  let x = abs_float x in
  let t = 1. /. (1. +. (0.3275911 *. x)) in
  let a1 = 0.254829592
  and a2 = -0.284496736
  and a3 = 1.421413741
  and a4 = -1.453152027
  and a5 = 1.061405429 in
  let poly = ((((a5 *. t) +. a4) *. t +. a3) *. t +. a2) *. t +. a1 in
  sign *. (1. -. (poly *. t *. exp (-.x *. x)))
