(** Probability distributions: sampling and (where needed by the paper's
    analysis) distribution functions.

    Section 3 of the paper models loss intervals of independent receivers
    as exponential random variables and the TFMCC loss estimate as (a
    weighted average of n of them, hence approximately) gamma distributed;
    the scaling study needs the minimum of many gamma draws. *)

val exponential_sample : Rng.t -> mean:float -> float

val exponential_cdf : mean:float -> float -> float

val gamma_sample : Rng.t -> shape:float -> scale:float -> float
(** Marsaglia–Tsang squeeze method; works for any shape > 0. *)

val gamma_cdf : shape:float -> scale:float -> float -> float

val gamma_mean_of_min : shape:float -> scale:float -> n:int -> samples:int -> Rng.t -> float
(** Monte-Carlo estimate of E[min of n iid Gamma(shape, scale)] using
    [samples] rounds.  (No simple closed form exists: Gupta 1960, paper
    reference [8].) *)

val uniform_sample : Rng.t -> lo:float -> hi:float -> float

val bernoulli : Rng.t -> p:float -> bool

val pareto_sample : Rng.t -> shape:float -> scale:float -> float
(** Heavy-tailed sizes for background-traffic generators. *)
