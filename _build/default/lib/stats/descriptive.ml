let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let min xs =
  if Array.length xs = 0 then invalid_arg "Descriptive.min: empty array";
  Array.fold_left Stdlib.min xs.(0) xs

let max xs =
  if Array.length xs = 0 then invalid_arg "Descriptive.max: empty array";
  Array.fold_left Stdlib.max xs.(0) xs

let percentile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Descriptive.percentile: empty array";
  if q < 0. || q > 100. then invalid_arg "Descriptive.percentile: q out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = q /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 50.

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  max : float;
}

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Descriptive.summarize: empty array";
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = min xs;
    p25 = percentile xs 25.;
    median = median xs;
    p75 = percentile xs 75.;
    max = max xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.4g sd=%.4g min=%.4g p25=%.4g med=%.4g p75=%.4g max=%.4g" s.n
    s.mean s.stddev s.min s.p25 s.median s.p75 s.max

let coefficient_of_variation xs =
  let m = mean xs in
  if m = 0. then 0. else stddev xs /. m

let jain_index xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Descriptive.jain_index: empty array";
  let sum = Array.fold_left ( +. ) 0. xs in
  let sq = Array.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
  if sq = 0. then 1. else sum *. sum /. (float_of_int n *. sq)
