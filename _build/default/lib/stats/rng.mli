(** Deterministic pseudo-random number generator.

    A small, fast, splittable PRNG (splitmix64 core) so that every
    simulation run is exactly reproducible from a seed, independent of the
    OCaml stdlib [Random] state.  All simulator components draw from an
    explicit [t] value; there is no global state. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the generator state; the copy evolves
    independently. *)

val split : t -> t
(** [split t] derives a statistically independent generator from [t],
    advancing [t].  Use one split stream per flow / receiver so that adding
    components does not perturb the draws seen by others. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound] must be
    positive. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val uniform : t -> float
(** [uniform t] draws uniformly from [0, 1) with 53-bit resolution. *)

val uniform_pos : t -> float
(** [uniform_pos t] draws uniformly from (0, 1): never returns 0, so it is
    safe as the argument of [log]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** [exponential t ~mean] draws from Exp(1/mean). *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)
