(** Time-series collection for simulation output.

    The experiment harness records per-flow byte counts against simulated
    time and converts them into throughput-vs-time series exactly like the
    paper's plots (throughput averaged over fixed bins). *)

type t
(** A mutable, append-only series of (time, value) points.  Times must be
    appended in non-decreasing order. *)

val create : unit -> t

val add : t -> time:float -> value:float -> unit
(** Raises [Invalid_argument] if [time] precedes the last appended time. *)

val length : t -> int

val points : t -> (float * float) array
(** Snapshot of all points in append order. *)

val values : t -> float array

val times : t -> float array

val bin_sum : t -> bin:float -> t_end:float -> (float * float) array
(** [bin_sum s ~bin ~t_end] sums values into bins of width [bin] covering
    [0, t_end); each output point is (bin centre, sum of values in bin). *)

val bin_rate : t -> bin:float -> t_end:float -> (float * float) array
(** Like {!bin_sum} but divides each bin by its width: values are treated
    as increments (e.g. bytes) and the output is a rate (e.g. bytes/s). *)

val between : t -> t_start:float -> t_end:float -> (float * float) array
(** Points with [t_start <= time < t_end]. *)

(** Accumulating byte counters, used by flow monitors. *)
module Counter : sig
  type series := t
  type t

  val create : unit -> t

  val record : t -> time:float -> bytes:int -> unit

  val total_bytes : t -> int

  val throughput_bps : t -> t_start:float -> t_end:float -> float
  (** Average throughput in bits/s over the window. *)

  val rate_series_bps : t -> bin:float -> t_end:float -> (float * float) array
  (** Binned throughput in bits/s. *)

  val series : t -> series
end
