type t = { sorted : float array }

let of_samples xs =
  if Array.length xs = 0 then invalid_arg "Cdf.of_samples: empty array";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  { sorted }

(* Binary search: number of samples <= x. *)
let count_le sorted x =
  let n = Array.length sorted in
  let rec loop lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if sorted.(mid) <= x then loop (mid + 1) hi else loop lo mid
    end
  in
  loop 0 n

let eval t x =
  float_of_int (count_le t.sorted x) /. float_of_int (Array.length t.sorted)

let quantile t q =
  if q <= 0. || q > 1. then invalid_arg "Cdf.quantile: q must be in (0,1]";
  let n = Array.length t.sorted in
  let idx = int_of_float (ceil (q *. float_of_int n)) - 1 in
  t.sorted.(Stdlib.max 0 (Stdlib.min (n - 1) idx))

let support t = (t.sorted.(0), t.sorted.(Array.length t.sorted - 1))

let points t ~n =
  if n < 2 then invalid_arg "Cdf.points: need at least 2 points";
  let lo, hi = support t in
  let step = (hi -. lo) /. float_of_int (n - 1) in
  Array.init n (fun i ->
      let x = lo +. (float_of_int i *. step) in
      (x, eval t x))
