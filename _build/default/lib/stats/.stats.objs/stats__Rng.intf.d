lib/stats/rng.mli:
