lib/stats/timeseries.mli:
