lib/stats/cdf.mli:
