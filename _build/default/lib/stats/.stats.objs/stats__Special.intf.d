lib/stats/special.mli:
