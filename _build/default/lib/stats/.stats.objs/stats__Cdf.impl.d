lib/stats/cdf.ml: Array Stdlib
