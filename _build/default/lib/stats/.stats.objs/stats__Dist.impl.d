lib/stats/dist.ml: Float Rng Special
