let exponential_sample rng ~mean = Rng.exponential rng ~mean

let exponential_cdf ~mean x = if x <= 0. then 0. else 1. -. exp (-.x /. mean)

(* Marsaglia & Tsang (2000).  For shape >= 1 directly; for shape < 1 boost
   via Gamma(shape+1) * U^(1/shape). *)
let rec gamma_sample rng ~shape ~scale =
  if shape <= 0. then invalid_arg "Dist.gamma_sample: shape must be positive";
  if shape < 1. then begin
    let u = Rng.uniform_pos rng in
    gamma_sample rng ~shape:(shape +. 1.) ~scale *. (u ** (1. /. shape))
  end
  else begin
    let d = shape -. (1. /. 3.) in
    let c = 1. /. sqrt (9. *. d) in
    let rec normal () =
      (* Box–Muller; one value is enough here. *)
      let u1 = Rng.uniform_pos rng and u2 = Rng.uniform rng in
      let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
      if Float.is_nan z then normal () else z
    in
    let rec loop () =
      let x = normal () in
      let v = (1. +. (c *. x)) ** 3. in
      if v <= 0. then loop ()
      else
        let u = Rng.uniform_pos rng in
        let x2 = x *. x in
        if u < 1. -. (0.0331 *. x2 *. x2) then d *. v *. scale
        else if log u < (0.5 *. x2) +. (d *. (1. -. v +. log v)) then
          d *. v *. scale
        else loop ()
    in
    loop ()
  end

let gamma_cdf ~shape ~scale x =
  if x <= 0. then 0. else Special.gamma_p shape (x /. scale)

let gamma_mean_of_min ~shape ~scale ~n ~samples rng =
  if n <= 0 then invalid_arg "Dist.gamma_mean_of_min: n must be positive";
  let total = ref 0. in
  for _ = 1 to samples do
    let m = ref infinity in
    for _ = 1 to n do
      let x = gamma_sample rng ~shape ~scale in
      if x < !m then m := x
    done;
    total := !total +. !m
  done;
  !total /. float_of_int samples

let uniform_sample rng ~lo ~hi = lo +. Rng.float rng (hi -. lo)

let bernoulli rng ~p = Rng.uniform rng < p

let pareto_sample rng ~shape ~scale =
  let u = Rng.uniform_pos rng in
  scale /. (u ** (1. /. shape))
