type Netsim.Packet.payload +=
  | Data of { conn : int; seq : int; ts : float; rtt : float }
  | Feedback of {
      conn : int;
      ts : float;
      echo_ts : float;
      echo_delay : float;
      rate : float;
    }

let data_size = 1000

let feedback_size = 40
