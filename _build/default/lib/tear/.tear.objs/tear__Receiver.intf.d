lib/tear/receiver.mli: Netsim
