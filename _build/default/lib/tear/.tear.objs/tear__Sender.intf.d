lib/tear/sender.mli: Netsim
