lib/tear/receiver.ml: Array Float List Netsim Wire
