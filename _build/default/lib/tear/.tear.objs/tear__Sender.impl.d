lib/tear/sender.ml: Float Netsim Option Stats Wire
