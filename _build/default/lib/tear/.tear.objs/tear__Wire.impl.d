lib/tear/wire.ml: Netsim
