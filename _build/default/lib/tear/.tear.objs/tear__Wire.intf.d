lib/tear/wire.mli: Netsim
