(** TEAR packet formats (extends {!Netsim.Packet.payload}).

    TEAR — TCP Emulation At Receivers (Rhee, Ozdemir & Yi 2000) — is the
    §5 "window emulation" alternative: the receiver runs a shadow TCP
    congestion window driven by packet arrivals, converts the smoothed
    average window into a rate, and feeds that rate back; the sender
    simply paces at it.  Only the unicast variant exists (as the paper
    notes), which is what this library implements. *)

type Netsim.Packet.payload +=
  | Data of {
      conn : int;
      seq : int;
      ts : float;  (** sender clock *)
      rtt : float;  (** sender's RTT estimate, for receiver-side pacing *)
    }
  | Feedback of {
      conn : int;
      ts : float;
      echo_ts : float;
      echo_delay : float;
      rate : float;  (** receiver-computed sending rate, bytes/s *)
    }

val data_size : int

val feedback_size : int
