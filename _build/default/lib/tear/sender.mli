(** TEAR sender: a pure pacer.  All the intelligence lives at the
    receiver; the sender stamps packets, measures the RTT from feedback
    echoes (the receiver needs it to turn windows into rates and to pace
    its feedback), and sets its sending rate to the advertised value. *)

type t

val create :
  Netsim.Topology.t ->
  conn:int ->
  flow:int ->
  src:Netsim.Node.t ->
  dst:Netsim.Node.t ->
  ?initial_rate:float ->
  unit ->
  t

val start : t -> at:float -> unit

val stop : t -> unit

val rate_bytes_per_s : t -> float

val rtt : t -> float option

val packets_sent : t -> int
