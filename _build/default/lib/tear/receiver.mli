(** TEAR receiver: the shadow TCP window.

    Every arriving data packet clocks the emulated window exactly as an
    ACK would clock TCP's: +1 per packet in slow start, +1/W in
    congestion avoidance.  A loss event (sequence gap outside the current
    event's RTT window, reusing {!Tfrc.Loss_history}'s aggregation) ends
    the current *epoch*: the window halves and the epoch's mean window is
    pushed into a WALI-weighted history.  The rate fed back once per RTT
    is (weighted mean epoch window) · s / RTT — TCP's long-term share
    without TCP's instantaneous sawtooth. *)

type t

val create :
  Netsim.Topology.t ->
  conn:int ->
  node:Netsim.Node.t ->
  sender:Netsim.Node.t ->
  ?epochs:int ->
  unit ->
  t
(** [epochs] is the depth of the epoch-mean history (default 8). *)

val window : t -> float
(** Current emulated congestion window (packets). *)

val rate_bytes_per_s : t -> float
(** The rate the receiver currently advertises. *)

val epochs_completed : t -> int

val packets_received : t -> int

val feedback_sent : t -> int
