type kind = Tx | Drop_queue | Drop_loss | Deliver

type event = {
  time : float;
  kind : kind;
  link_src : int;
  link_dst : int;
  uid : int;
  flow : int;
  size : int;
}

type t = {
  capacity : int;
  buffer : event option array;
  mutable next : int;  (* write position *)
  mutable recorded : int;
}

let create ?(capacity = 100_000) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; buffer = Array.make capacity None; next = 0; recorded = 0 }

let record t ev =
  t.buffer.(t.next) <- Some ev;
  t.next <- (t.next + 1) mod t.capacity;
  t.recorded <- t.recorded + 1

let attach t link =
  let link_src = Node.id (Link.src link) and link_dst = Node.id (Link.dst link) in
  Link.set_tracer link (fun ~time ~kind:k (p : Packet.t) ->
      let kind =
        match k with
        | `Tx -> Tx
        | `Drop_queue -> Drop_queue
        | `Drop_loss -> Drop_loss
        | `Deliver -> Deliver
      in
      record t
        { time; kind; link_src; link_dst; uid = p.uid; flow = p.flow; size = p.size })

let events t =
  (* Oldest first: from [next] around the ring. *)
  let out = ref [] in
  for i = 0 to t.capacity - 1 do
    let idx = (t.next + i) mod t.capacity in
    match t.buffer.(idx) with Some ev -> out := ev :: !out | None -> ()
  done;
  List.rev !out

let count t ~kind =
  Array.fold_left
    (fun acc e -> match e with Some e when e.kind = kind -> acc + 1 | _ -> acc)
    0 t.buffer

let total_recorded t = t.recorded

let clear t =
  Array.fill t.buffer 0 t.capacity None;
  t.next <- 0

let kind_char = function Tx -> '+' | Drop_queue -> 'd' | Drop_loss -> 'x' | Deliver -> 'r'

let pp_event ppf e =
  Format.fprintf ppf "%c %.6f %d %d %d %d %d" (kind_char e.kind) e.time e.link_src
    e.link_dst e.flow e.size e.uid

let to_text t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Format.asprintf "%a" pp_event e);
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf
