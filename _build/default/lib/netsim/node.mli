(** Network nodes: endpoints and routers.

    A node holds local packet handlers (protocol agents attach here) and a
    receive hook.  The default hook delivers to local handlers only; the
    topology layer replaces it with routing-aware logic that both forwards
    in-transit packets and delivers local ones. *)

type t

val create : id:int -> t

val id : t -> int

val attach : t -> (Packet.t -> unit) -> unit
(** Registers a local handler.  Every packet delivered locally is passed
    to all handlers (in attachment order); handlers filter by payload. *)

val detach_all : t -> unit

val handler_count : t -> int

val deliver_local : t -> Packet.t -> unit
(** Passes the packet to the local handlers, bypassing routing. *)

val receive : t -> Packet.t -> unit
(** Entry point used by links when a packet arrives at this node. *)

val set_receive_hook : t -> (Packet.t -> unit) -> unit
(** Replaces the receive behaviour (installed by {!Topology}). *)

val packets_received : t -> int
(** Count of packets that arrived at this node (via {!receive}). *)
