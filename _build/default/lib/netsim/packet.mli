(** Network packets.

    The payload is an extensible variant: each protocol library adds its
    own constructors (TCP segments, TFMCC data/feedback, ...), keeping the
    simulator core protocol-agnostic. *)

type payload = ..
(** Protocol payloads.  Extended by [Tcp], [Tfrc] and [Tfmcc]. *)

type payload += Raw of int  (** Opaque filler traffic with a tag. *)

type dst =
  | Unicast of int  (** destination node id *)
  | Multicast of int  (** multicast group id *)

type t = {
  uid : int;  (** globally unique per packet copy *)
  flow : int;  (** accounting tag; monitors aggregate by flow *)
  size : int;  (** bytes on the wire, headers included *)
  src : int;  (** originating node id *)
  dst : dst;
  payload : payload;
  created : float;  (** send time at the origin *)
  mutable hops : int;  (** incremented per link traversal; TTL guard *)
}

val make :
  flow:int -> size:int -> src:int -> dst:dst -> created:float -> payload -> t
(** Allocates a packet with a fresh uid.  [size] must be positive. *)

val clone : t -> t
(** A copy with a fresh uid (multicast duplication at branch points). *)

val ttl_limit : int
(** Packets are dropped after this many hops (routing-loop guard). *)

val pp : Format.formatter -> t -> unit
