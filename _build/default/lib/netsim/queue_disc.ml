type red_state = {
  rng : Stats.Rng.t;
  min_thresh : float;
  max_thresh : float;
  max_p : float;
  weight : float;
  mutable avg : float;
  mutable count : int;  (* packets since last early drop *)
  mutable idle_since : float option;
}

type kind = Droptail | Droptail_bytes of int | Red of red_state

type t = {
  kind : kind;
  capacity : int;
  fifo : Packet.t Queue.t;
  mutable bytes : int;
  mutable drops : int;
  mutable enqueued : int;
}

let droptail ~capacity_pkts =
  if capacity_pkts <= 0 then invalid_arg "Queue_disc.droptail: capacity must be positive";
  {
    kind = Droptail;
    capacity = capacity_pkts;
    fifo = Queue.create ();
    bytes = 0;
    drops = 0;
    enqueued = 0;
  }

let droptail_bytes ~capacity_bytes =
  if capacity_bytes <= 0 then
    invalid_arg "Queue_disc.droptail_bytes: capacity must be positive";
  {
    kind = Droptail_bytes capacity_bytes;
    capacity = max_int;
    fifo = Queue.create ();
    bytes = 0;
    drops = 0;
    enqueued = 0;
  }

let red ~rng ~capacity_pkts ?min_thresh ?max_thresh ?(max_p = 0.1)
    ?(weight = 0.002) () =
  if capacity_pkts <= 0 then invalid_arg "Queue_disc.red: capacity must be positive";
  let cap = float_of_int capacity_pkts in
  let min_thresh = Option.value min_thresh ~default:(cap /. 4.) in
  let max_thresh = Option.value max_thresh ~default:(3. *. cap /. 4.) in
  if min_thresh >= max_thresh then
    invalid_arg "Queue_disc.red: min_thresh must be below max_thresh";
  {
    kind =
      Red
        {
          rng;
          min_thresh;
          max_thresh;
          max_p;
          weight;
          avg = 0.;
          count = -1;
          idle_since = None;
        };
    capacity = capacity_pkts;
    fifo = Queue.create ();
    bytes = 0;
    drops = 0;
    enqueued = 0;
  }

let accept q p =
  Queue.push p q.fifo;
  q.bytes <- q.bytes + p.Packet.size;
  q.enqueued <- q.enqueued + 1;
  true

let reject q =
  q.drops <- q.drops + 1;
  false

let red_enqueue q s p =
  let len = float_of_int (Queue.length q.fifo) in
  s.avg <- ((1. -. s.weight) *. s.avg) +. (s.weight *. len);
  if Queue.length q.fifo >= q.capacity then reject q
  else if s.avg < s.min_thresh then begin
    s.count <- -1;
    accept q p
  end
  else if s.avg >= s.max_thresh then begin
    s.count <- 0;
    reject q
  end
  else begin
    s.count <- s.count + 1;
    let pb = s.max_p *. (s.avg -. s.min_thresh) /. (s.max_thresh -. s.min_thresh) in
    let pa =
      let denom = 1. -. (float_of_int s.count *. pb) in
      if denom <= 0. then 1. else pb /. denom
    in
    if Stats.Rng.uniform s.rng < pa then begin
      s.count <- 0;
      reject q
    end
    else accept q p
  end

let enqueue q p =
  match q.kind with
  | Droptail ->
      if Queue.length q.fifo >= q.capacity then reject q else accept q p
  | Droptail_bytes cap ->
      if q.bytes + p.Packet.size > cap then reject q else accept q p
  | Red s -> red_enqueue q s p

let dequeue q =
  match Queue.pop q.fifo with
  | p ->
      q.bytes <- q.bytes - p.Packet.size;
      Some p
  | exception Queue.Empty -> None

let peek q = Queue.peek_opt q.fifo

let length q = Queue.length q.fifo

let byte_length q = q.bytes

let capacity q = q.capacity

let drops q = q.drops

let enqueued q = q.enqueued
