type event = {
  time : float;
  seq : int;
  callback : unit -> unit;
  mutable cancelled : bool;
}

type handle = event

type t = {
  mutable heap : event array;
  (* heap.(0) is unused padding when len = 0; we store the tree in
     indices [0, len). *)
  mutable len : int;
  mutable live : int;
  mutable next_seq : int;
}

let dummy_event = { time = 0.; seq = -1; callback = ignore; cancelled = true }

let create () = { heap = Array.make 64 dummy_event; len = 0; live = 0; next_seq = 0 }

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.len && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let ensure_capacity t =
  if t.len = Array.length t.heap then begin
    let heap = Array.make (2 * Array.length t.heap) dummy_event in
    Array.blit t.heap 0 heap 0 t.len;
    t.heap <- heap
  end

let add t ~time callback =
  if Float.is_nan time then invalid_arg "Event_heap.add: NaN time";
  ensure_capacity t;
  let ev = { time; seq = t.next_seq; callback; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  t.heap.(t.len) <- ev;
  t.len <- t.len + 1;
  t.live <- t.live + 1;
  sift_up t (t.len - 1);
  ev

let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    t.live <- t.live - 1
  end

let is_cancelled ev = ev.cancelled

(* Callers observe only live events; cancelled entries are discarded as
   they surface at the root. *)
let rec pop t =
  if t.len = 0 then None
  else begin
    let ev = t.heap.(0) in
    t.len <- t.len - 1;
    t.heap.(0) <- t.heap.(t.len);
    t.heap.(t.len) <- dummy_event;
    if t.len > 0 then sift_down t 0;
    if ev.cancelled then pop t
    else begin
      t.live <- t.live - 1;
      (* Mark fired events so cancelling them later is a no-op that does
         not disturb the live count. *)
      ev.cancelled <- true;
      Some (ev.time, ev.callback)
    end
  end

let rec peek_time t =
  if t.len = 0 then None
  else begin
    let ev = t.heap.(0) in
    if not ev.cancelled then Some ev.time
    else begin
      (* Drop the cancelled root and retry. *)
      t.len <- t.len - 1;
      t.heap.(0) <- t.heap.(t.len);
      t.heap.(t.len) <- dummy_event;
      if t.len > 0 then sift_down t 0;
      peek_time t
    end
  end

let size t = t.live

let is_empty t = t.live = 0
