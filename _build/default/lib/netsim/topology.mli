(** Network topology: nodes, duplex links, shortest-path unicast routing
    and source-rooted multicast distribution trees.

    Routing is hop-count shortest path (BFS) with deterministic
    tie-breaking, recomputed lazily and cached; caches are invalidated when
    links are added or group membership changes.  Multicast packets are
    duplicated at branch points of the tree formed by the union of
    shortest paths from the packet's source to every group member —
    exactly the behaviour the paper relies on for correlated loss upstream
    of a branch point. *)

type t

val create : Engine.t -> t

val engine : t -> Engine.t

val add_node : t -> Node.t
(** Creates a node with the next free id and installs the routing hook. *)

val add_nodes : t -> int -> Node.t array

val node : t -> int -> Node.t
(** Raises [Invalid_argument] for unknown ids. *)

val node_count : t -> int

val connect :
  t ->
  ?queue_capacity:int ->
  ?queue_ab:Queue_disc.t ->
  ?queue_ba:Queue_disc.t ->
  ?loss_ab:Loss_model.t ->
  ?loss_ba:Loss_model.t ->
  bandwidth_bps:float ->
  delay_s:float ->
  Node.t ->
  Node.t ->
  Link.t * Link.t
(** [connect t a b] creates the duplex link a<->b and returns
    (link a->b, link b->a).  Each direction gets its own drop-tail queue
    of [queue_capacity] packets (default 50) unless an explicit queue is
    supplied.  Raises if the nodes are already connected. *)

val link_between : t -> Node.t -> Node.t -> Link.t option
(** The directed link from the first node to the second, if any. *)

val join : t -> group:int -> Node.t -> unit
(** Idempotent. *)

val leave : t -> group:int -> Node.t -> unit
(** Idempotent. *)

val members : t -> group:int -> Node.t list

val is_member : t -> group:int -> Node.t -> bool

val inject : t -> Packet.t -> unit
(** Sends a packet originating at node [packet.src]: routes unicast
    packets toward their destination, fans multicast packets out along
    the group tree.  The sending node does not receive its own multicast
    packet even if it is a member. *)

val path : t -> src:Node.t -> dst:Node.t -> Node.t list option
(** Shortest path including both endpoints; [None] if unreachable. *)

val hop_count : t -> src:Node.t -> dst:Node.t -> int option

val multicast_tree_links : t -> group:int -> src:Node.t -> Link.t list
(** All directed links of the current distribution tree (for tests and
    monitors). *)
