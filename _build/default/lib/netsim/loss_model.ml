type ge_state = { mutable in_bad : bool }

type t =
  | None_
  | Bernoulli of { rng : Stats.Rng.t; p : float }
  | Gilbert of {
      rng : Stats.Rng.t;
      p_gb : float;
      p_bg : float;
      loss_good : float;
      loss_bad : float;
      state : ge_state;
    }

let none = None_

let check_prob name p =
  if p < 0. || p > 1. then invalid_arg (Printf.sprintf "Loss_model: %s out of [0,1]" name)

let bernoulli ~rng ~p =
  check_prob "p" p;
  Bernoulli { rng; p }

let gilbert_elliott ~rng ~p_good_to_bad ~p_bad_to_good ~loss_good ~loss_bad =
  check_prob "p_good_to_bad" p_good_to_bad;
  check_prob "p_bad_to_good" p_bad_to_good;
  check_prob "loss_good" loss_good;
  check_prob "loss_bad" loss_bad;
  Gilbert
    {
      rng;
      p_gb = p_good_to_bad;
      p_bg = p_bad_to_good;
      loss_good;
      loss_bad;
      state = { in_bad = false };
    }

let drops_packet = function
  | None_ -> false
  | Bernoulli { rng; p } -> p > 0. && Stats.Rng.uniform rng < p
  | Gilbert g ->
      (* Advance the chain, then draw loss for the current state. *)
      let flip = Stats.Rng.uniform g.rng in
      if g.state.in_bad then begin
        if flip < g.p_bg then g.state.in_bad <- false
      end
      else if flip < g.p_gb then g.state.in_bad <- true;
      let p = if g.state.in_bad then g.loss_bad else g.loss_good in
      p > 0. && Stats.Rng.uniform g.rng < p

let loss_rate_hint = function
  | None_ -> 0.
  | Bernoulli { p; _ } -> p
  | Gilbert g ->
      let denom = g.p_gb +. g.p_bg in
      if denom = 0. then g.loss_good
      else begin
        let pi_bad = g.p_gb /. denom in
        ((1. -. pi_bad) *. g.loss_good) +. (pi_bad *. g.loss_bad)
      end
