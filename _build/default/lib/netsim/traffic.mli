(** Background-traffic generators (the ns-2 CBR / Poisson / exponential
    on-off sources used as cross traffic in congestion-control studies).

    Generators inject unlabelled unicast packets ({!Packet.Raw}) between
    two nodes at a configured average rate; they do not react to
    congestion — that is their point. *)

type t

val cbr :
  Topology.t ->
  flow:int ->
  src:Node.t ->
  dst:Node.t ->
  rate_bps:float ->
  ?packet_size:int ->
  ?jitter:float ->
  unit ->
  t
(** Constant bit rate.  [jitter] (default 0.1) spreads each inter-packet
    gap uniformly over ±jitter/2 of its nominal value, avoiding simulator
    phase effects.  [packet_size] defaults to 1000 bytes. *)

val poisson :
  Topology.t ->
  flow:int ->
  src:Node.t ->
  dst:Node.t ->
  rate_bps:float ->
  ?packet_size:int ->
  unit ->
  t
(** Exponentially distributed inter-packet gaps with the given average
    rate. *)

val on_off :
  Topology.t ->
  flow:int ->
  src:Node.t ->
  dst:Node.t ->
  rate_bps:float ->
  ?packet_size:int ->
  ?on_mean:float ->
  ?off_mean:float ->
  unit ->
  t
(** Exponential on/off source: bursts at [rate_bps] during on-periods
    (mean [on_mean], default 1 s), silent during off-periods (mean
    [off_mean], default 1 s).  The long-run average rate is
    rate·on/(on+off). *)

val start : t -> at:float -> unit

val stop : t -> unit

val packets_sent : t -> int

val bytes_sent : t -> int
