(** Stochastic packet-loss models applied on link traversal, independent
    of queue overflow.  Used for the paper's lossy-link experiments
    (Figs 11, 19) where links have configured loss rates. *)

type t

val none : t
(** Never drops. *)

val bernoulli : rng:Stats.Rng.t -> p:float -> t
(** Drops each packet independently with probability [p] ∈ [0,1]. *)

val gilbert_elliott :
  rng:Stats.Rng.t ->
  p_good_to_bad:float ->
  p_bad_to_good:float ->
  loss_good:float ->
  loss_bad:float ->
  t
(** Two-state bursty loss: transition probabilities are evaluated per
    packet; each state has its own loss probability.  Gives correlated
    loss bursts (extension beyond the paper's iid model). *)

val drops_packet : t -> bool
(** Evaluates the model for one packet; [true] means drop. *)

val loss_rate_hint : t -> float
(** Long-run loss probability (exact for none/bernoulli, stationary
    average for Gilbert–Elliott); used in reports only. *)
