type payload = ..

type payload += Raw of int

type dst = Unicast of int | Multicast of int

type t = {
  uid : int;
  flow : int;
  size : int;
  src : int;
  dst : dst;
  payload : payload;
  created : float;
  mutable hops : int;
}

let next_uid = ref 0

let fresh_uid () =
  incr next_uid;
  !next_uid

let make ~flow ~size ~src ~dst ~created payload =
  if size <= 0 then invalid_arg "Packet.make: size must be positive";
  { uid = fresh_uid (); flow; size; src; dst; payload; created; hops = 0 }

let clone p = { p with uid = fresh_uid () }

let ttl_limit = 64

let pp ppf p =
  let dst =
    match p.dst with
    | Unicast n -> Printf.sprintf "n%d" n
    | Multicast g -> Printf.sprintf "g%d" g
  in
  Format.fprintf ppf "#%d flow=%d %dB n%d->%s hops=%d" p.uid p.flow p.size
    p.src dst p.hops
