(** Topology generators: the standard shapes used across the experiments
    plus a small transit-stub generator for "realistic multicast tree"
    studies (Section 3 argues the loss distribution over real trees is
    what saves single-rate protocols — these give such trees).

    All generators create fresh nodes inside the given topology and
    return them; links are duplex with per-call bandwidth/delay. *)

type link_spec = {
  bandwidth_bps : float;
  delay_s : float;
  queue_capacity : int;
}

val default_link : link_spec
(** 10 Mbit/s, 5 ms, 50 packets. *)

val chain : Topology.t -> n:int -> ?link:link_spec -> unit -> Node.t array
(** n nodes in a line. *)

val star : Topology.t -> leaves:int -> ?link:link_spec -> unit -> Node.t * Node.t array
(** (hub, leaves). *)

val binary_tree : Topology.t -> depth:int -> ?link:link_spec -> unit -> Node.t * Node.t array
(** (root, leaves); a complete binary tree with 2^depth leaves. *)

val random_tree :
  Topology.t ->
  Stats.Rng.t ->
  n:int ->
  ?max_children:int ->
  ?link:link_spec ->
  unit ->
  Node.t array
(** A random rooted tree over n nodes (node 0 of the result is the root):
    each new node attaches to a uniformly chosen existing node with fewer
    than [max_children] children (default 4). *)

(** A two-level transit-stub internet: a ring of transit routers, each
    with stub routers hanging off it, each stub with end hosts. *)
type transit_stub = {
  transits : Node.t array;
  stubs : Node.t array;
  hosts : Node.t array;
}

val transit_stub :
  Topology.t ->
  Stats.Rng.t ->
  ?transits:int ->
  ?stubs_per_transit:int ->
  ?hosts_per_stub:int ->
  ?core_link:link_spec ->
  ?stub_link:link_spec ->
  ?host_link:link_spec ->
  ?host_delay_jitter:float ->
  unit ->
  transit_stub
(** Defaults: 4 transits (ring, 45 Mbit/s / 10 ms core), 3 stubs each
    (10 Mbit/s / 5 ms), 4 hosts per stub (2 Mbit/s / 2 ms, plus up to
    [host_delay_jitter] = 8 ms of random extra delay per host link). *)
