lib/netsim/trace.ml: Array Buffer Format Link List Node Packet
