lib/netsim/link.ml: Engine Logs Loss_model Node Packet Queue_disc
