lib/netsim/topo_gen.mli: Node Stats Topology
