lib/netsim/traffic.mli: Node Topology
