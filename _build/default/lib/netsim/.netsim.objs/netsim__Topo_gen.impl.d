lib/netsim/topo_gen.ml: Array List Node Stats Topology
