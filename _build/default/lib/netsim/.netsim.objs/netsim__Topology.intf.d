lib/netsim/topology.mli: Engine Link Loss_model Node Packet Queue_disc
