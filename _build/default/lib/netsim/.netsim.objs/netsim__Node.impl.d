lib/netsim/node.ml: List Packet
