lib/netsim/packet.ml: Format Printf
