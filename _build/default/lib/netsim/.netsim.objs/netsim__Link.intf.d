lib/netsim/link.mli: Engine Loss_model Node Packet Queue_disc
