lib/netsim/loss_model.ml: Printf Stats
