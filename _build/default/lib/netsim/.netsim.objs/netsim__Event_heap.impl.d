lib/netsim/event_heap.ml: Array Float
