lib/netsim/queue_disc.ml: Option Packet Queue Stats
