lib/netsim/node.mli: Packet
