lib/netsim/loss_model.mli: Stats
