lib/netsim/traffic.ml: Engine Float Node Packet Stats Topology
