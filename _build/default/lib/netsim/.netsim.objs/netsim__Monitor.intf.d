lib/netsim/monitor.mli: Engine Node Packet Stats
