lib/netsim/monitor.ml: Array Engine Hashtbl List Node Packet Stats Stdlib
