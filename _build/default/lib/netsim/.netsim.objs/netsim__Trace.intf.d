lib/netsim/trace.mli: Format Link
