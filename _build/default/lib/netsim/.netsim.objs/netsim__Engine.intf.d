lib/netsim/engine.mli: Stats
