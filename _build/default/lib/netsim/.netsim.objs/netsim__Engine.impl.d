lib/netsim/engine.ml: Event_heap Printf Stats
