lib/netsim/topology.ml: Array Engine Hashtbl Int Link List Logs Node Option Packet Printf Queue Queue_disc Seq
