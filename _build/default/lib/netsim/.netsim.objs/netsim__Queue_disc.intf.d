lib/netsim/queue_disc.mli: Packet Stats
