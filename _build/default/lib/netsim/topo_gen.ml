type link_spec = {
  bandwidth_bps : float;
  delay_s : float;
  queue_capacity : int;
}

let default_link = { bandwidth_bps = 10e6; delay_s = 0.005; queue_capacity = 50 }

let connect topo link a b =
  ignore
    (Topology.connect topo ~queue_capacity:link.queue_capacity
       ~bandwidth_bps:link.bandwidth_bps ~delay_s:link.delay_s a b)

let chain topo ~n ?(link = default_link) () =
  if n < 1 then invalid_arg "Topo_gen.chain: n must be positive";
  let nodes = Topology.add_nodes topo n in
  for i = 0 to n - 2 do
    connect topo link nodes.(i) nodes.(i + 1)
  done;
  nodes

let star topo ~leaves ?(link = default_link) () =
  if leaves < 1 then invalid_arg "Topo_gen.star: need at least one leaf";
  let hub = Topology.add_node topo in
  let ls = Topology.add_nodes topo leaves in
  Array.iter (fun l -> connect topo link hub l) ls;
  (hub, ls)

let binary_tree topo ~depth ?(link = default_link) () =
  if depth < 1 then invalid_arg "Topo_gen.binary_tree: depth must be positive";
  let root = Topology.add_node topo in
  let rec grow parent level acc =
    if level = depth then parent :: acc
    else begin
      let l = Topology.add_node topo and r = Topology.add_node topo in
      connect topo link parent l;
      connect topo link parent r;
      grow r (level + 1) (grow l (level + 1) acc)
    end
  in
  let leaves = grow root 0 [] |> List.rev |> Array.of_list in
  (root, leaves)

let random_tree topo rng ~n ?(max_children = 4) ?(link = default_link) () =
  if n < 1 then invalid_arg "Topo_gen.random_tree: n must be positive";
  if max_children < 1 then invalid_arg "Topo_gen.random_tree: max_children";
  let nodes = Array.make n (Topology.add_node topo) in
  let children = Array.make n 0 in
  for i = 1 to n - 1 do
    nodes.(i) <- Topology.add_node topo;
    (* Pick an attachment point with spare child slots. *)
    let rec pick tries =
      let candidate = Stats.Rng.int rng i in
      if children.(candidate) < max_children || tries > 50 then candidate
      else pick (tries + 1)
    in
    let parent = pick 0 in
    children.(parent) <- children.(parent) + 1;
    connect topo link nodes.(parent) nodes.(i)
  done;
  nodes

type transit_stub = {
  transits : Node.t array;
  stubs : Node.t array;
  hosts : Node.t array;
}

let transit_stub topo rng ?(transits = 4) ?(stubs_per_transit = 3)
    ?(hosts_per_stub = 4)
    ?(core_link = { bandwidth_bps = 45e6; delay_s = 0.01; queue_capacity = 100 })
    ?(stub_link = { bandwidth_bps = 10e6; delay_s = 0.005; queue_capacity = 50 })
    ?(host_link = { bandwidth_bps = 2e6; delay_s = 0.002; queue_capacity = 50 })
    ?(host_delay_jitter = 0.008) () =
  if transits < 1 || stubs_per_transit < 1 || hosts_per_stub < 1 then
    invalid_arg "Topo_gen.transit_stub: all counts must be positive";
  let ts = Topology.add_nodes topo transits in
  (* Transit ring (a single link for transits = 2, nothing for 1). *)
  if transits = 2 then connect topo core_link ts.(0) ts.(1)
  else if transits > 2 then
    for i = 0 to transits - 1 do
      connect topo core_link ts.(i) ts.((i + 1) mod transits)
    done;
  let stubs = ref [] and hosts = ref [] in
  Array.iter
    (fun transit ->
      for _ = 1 to stubs_per_transit do
        let stub = Topology.add_node topo in
        connect topo stub_link transit stub;
        stubs := stub :: !stubs;
        for _ = 1 to hosts_per_stub do
          let host = Topology.add_node topo in
          let jitter = Stats.Rng.float rng host_delay_jitter in
          connect topo { host_link with delay_s = host_link.delay_s +. jitter }
            stub host;
          hosts := host :: !hosts
        done
      done)
    ts;
  {
    transits = ts;
    stubs = Array.of_list (List.rev !stubs);
    hosts = Array.of_list (List.rev !hosts);
  }
