(** Binary min-heap of timed events with O(log n) insert / pop and O(1)
    cancellation (lazy deletion).  Ties in time are broken by insertion
    order so simulations are deterministic. *)

type t

type handle
(** Identifies a scheduled event for cancellation. *)

val create : unit -> t

val add : t -> time:float -> (unit -> unit) -> handle
(** Schedules a callback.  [time] may equal the current minimum. *)

val cancel : t -> handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val is_cancelled : handle -> bool

val pop : t -> (float * (unit -> unit)) option
(** Removes and returns the earliest live event, skipping cancelled ones.
    [None] when no live events remain. *)

val peek_time : t -> float option
(** Time of the earliest live event without removing it. *)

val size : t -> int
(** Number of live (non-cancelled) events. *)

val is_empty : t -> bool
