(** Per-flow accounting: records bytes received against simulated time and
    exposes the binned throughput series the paper's plots are made of. *)

type t

val create : Engine.t -> t

val tap : t -> Packet.t -> unit
(** Records the packet against its flow tag at the current time. *)

val watch_node : t -> Node.t -> unit
(** Attaches a handler so every packet delivered locally at the node is
    recorded. *)

val watch_node_flow : t -> Node.t -> flow:int -> unit
(** Like {!watch_node} but records only the given flow. *)

val bytes : t -> flow:int -> int
(** Total bytes recorded for the flow (0 if never seen). *)

val packets : t -> flow:int -> int

val throughput_bps : t -> flow:int -> t_start:float -> t_end:float -> float

val rate_series_bps : t -> flow:int -> bin:float -> t_end:float -> (float * float) array

val flows : t -> int list
(** Flow tags seen so far, ascending. *)

val delays : t -> flow:int -> float array
(** One-way delays (creation to recording) of the flow's packets, in
    arrival order; at most the most recent 100,000 are retained. *)

val delay_summary : t -> flow:int -> Stats.Descriptive.summary option
(** [None] when the flow has no recorded packets. *)
