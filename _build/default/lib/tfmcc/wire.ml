type echo = { rx_id : int; rx_ts : float; echo_delay : float }

type fb_echo = { fb_rx_id : int; fb_rate : float; fb_has_loss : bool }

type Netsim.Packet.payload +=
  | Data of {
      session : int;
      seq : int;
      ts : float;
      rate : float;
      round : int;
      round_duration : float;
      max_rtt : float;
      clr : int;
      in_slowstart : bool;
      echo : echo option;
      fb : fb_echo option;
      app : int;
    }
  | Report of {
      session : int;
      rx_id : int;
      ts : float;
      echo_ts : float;
      echo_delay : float;
      rate : float;
      have_rtt : bool;
      rtt : float;
      p : float;
      x_recv : float;
      round : int;
      has_loss : bool;
      leaving : bool;
    }

let report_size = 40
