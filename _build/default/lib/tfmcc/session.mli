(** Convenience wrapper: one TFMCC sender plus its receiver set on a
    topology, with aggregate views used by the experiments. *)

type t

val create :
  Netsim.Topology.t ->
  ?cfg:Config.t ->
  session:int ->
  sender_node:Netsim.Node.t ->
  receiver_nodes:Netsim.Node.t list ->
  ?clock_offsets:float list ->
  unit ->
  t
(** Builds the sender and one receiver per node.  Receivers are created
    but not joined; {!start} joins them all.  [clock_offsets], when
    given, must match [receiver_nodes] in length. *)

val start : ?join_receivers:bool -> t -> at:float -> unit
(** Starts the sender at [at]; joins every receiver first unless
    [join_receivers] is false (experiments that stage joins manually). *)

val stop : t -> unit

val sender : t -> Sender.t

val receivers : t -> Receiver.t list

val receiver : t -> node_id:int -> Receiver.t
(** Raises [Not_found] for unknown ids. *)

val add_receiver :
  t -> node:Netsim.Node.t -> ?clock_offset:float -> join_now:bool -> unit -> Receiver.t
(** Late join (paper §4.5). *)

val receivers_with_rtt : t -> int
(** How many receivers hold a real RTT measurement (Fig. 12's metric). *)

val min_calculated_rate : t -> float
(** Minimum of the receivers' calculated rates; infinity if none has
    loss. *)

val current_rate : t -> float
