(** Abstract single-round model of the feedback process (paper §2.5,
    Figs 1–6).

    Strips the protocol down to what those figures study: [n] receivers
    hold feedback values (rate ratios in [0,1]); each draws a (possibly
    biased) exponential timer over one round of duration [t_max]; a
    response sent at time t is echoed to everyone at t + [delay]; already
    -echoed responses cancel pending timers according to the cancellation
    policy.  Time is in whatever unit [t_max]/[delay] use (the paper uses
    RTTs). *)

type cancel_policy =
  | On_any  (** cancel on the first echo heard (ζ = 1 extreme) *)
  | Rate_threshold of float
      (** ζ: cancel iff echoed − own ≤ ζ·echoed; ζ = 0 means only
          equal-or-lower echoes suppress *)

type params = {
  n_estimate : int;  (** N used by the timers *)
  t_max : float;  (** round duration T *)
  delay : float;  (** one-way echo delay Δ *)
  bias : Config.bias;
  delta : float;  (** δ offset fraction *)
  cancel : cancel_policy;
}

(** One receiver's fate in the round. *)
type event = {
  value : float;  (** its feedback value *)
  timer : float;  (** when its timer would fire *)
  sent : bool;  (** false = suppressed *)
}

type outcome = {
  responses : int;
  first_time : float;  (** time of the first response; nan if none *)
  best_value : float;  (** lowest value among sent responses; nan if none *)
  true_min : float;  (** lowest value in the receiver set *)
  events : event array;  (** per receiver, in timer order (Fig. 2's scatter) *)
}

val run_round : Stats.Rng.t -> params -> values:float array -> outcome
(** Raises on an empty receiver set. *)

val uniform_values : Stats.Rng.t -> n:int -> lo:float -> hi:float -> float array

val timer_samples :
  Stats.Rng.t ->
  bias:Config.bias ->
  t_max:float ->
  delta:float ->
  n_estimate:int ->
  ratio:float ->
  samples:int ->
  float array
(** iid draws of the timer for a fixed rate ratio — the ingredients of
    Fig. 1's CDFs. *)
