type loss_profile = Constant of float | Realistic of { c : float }

let assign_loss_rates rng ~n ~profile =
  if n <= 0 then invalid_arg "Scaling_model.assign_loss_rates: n must be positive";
  match profile with
  | Constant p ->
      if p <= 0. || p >= 1. then
        invalid_arg "Scaling_model.assign_loss_rates: p out of (0,1)";
      Array.make n p
  | Realistic { c } ->
      let high = Stdlib.max 1 (int_of_float (ceil (c *. log (float_of_int n)))) in
      let mid = Stdlib.max 1 (int_of_float (ceil (2. *. c *. log (float_of_int n)))) in
      Array.init n (fun i ->
          if i < Stdlib.min n high then Stats.Dist.uniform_sample rng ~lo:0.05 ~hi:0.10
          else if i < Stdlib.min n (high + mid) then
            Stats.Dist.uniform_sample rng ~lo:0.02 ~hi:0.05
          else Stats.Dist.uniform_sample rng ~lo:0.005 ~hi:0.02)

let wali_weights n_intervals =
  Array.init n_intervals (fun i ->
      Float.min 1.
        (2. *. float_of_int (n_intervals - i) /. float_of_int (n_intervals + 2)))

let expected_throughput rng ~n ~profile ~rtt ~s ~n_intervals ~trials =
  if trials <= 0 then invalid_arg "Scaling_model.expected_throughput: trials";
  let weights = wali_weights n_intervals in
  let wsum = Array.fold_left ( +. ) 0. weights in
  let total = ref 0. in
  for _ = 1 to trials do
    let rates = assign_loss_rates rng ~n ~profile in
    let min_rate = ref infinity in
    Array.iter
      (fun p_true ->
        (* WALI estimate from n_intervals iid exponential intervals with
           mean 1/p_true, plus TFMCC's open-interval rule: the interval
           since the most recent loss event (elapsed time of the current
           interval, itself exponential by memorylessness) is included
           when doing so lowers the estimate. *)
        let draw () =
          Float.max 1. (Stats.Rng.exponential rng ~mean:(1. /. p_true))
        in
        let intervals = Array.init n_intervals (fun _ -> draw ()) in
        let avg offset_open =
          let num = ref 0. in
          (match offset_open with
          | Some open_iv ->
              num := weights.(0) *. open_iv;
              for k = 1 to n_intervals - 1 do
                num := !num +. (weights.(k) *. intervals.(k - 1))
              done
          | None ->
              for k = 0 to n_intervals - 1 do
                num := !num +. (weights.(k) *. intervals.(k))
              done);
          !num /. wsum
        in
        let open_iv = draw () in
        let avg_interval = Float.max (avg None) (avg (Some open_iv)) in
        let p_hat = Float.min 1. (1. /. avg_interval) in
        let rate = Tcp_model.Padhye.throughput ~s ~rtt p_hat in
        if rate < !min_rate then min_rate := rate)
      rates;
    total := !total +. !min_rate
  done;
  !total /. float_of_int trials

let series rng ~ns ~profile ~rtt ~s ~n_intervals ~trials =
  List.map
    (fun n -> (n, expected_throughput rng ~n ~profile ~rtt ~s ~n_intervals ~trials))
    ns
