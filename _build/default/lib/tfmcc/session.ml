type t = {
  topo : Netsim.Topology.t;
  cfg : Config.t;
  session : int;
  sender : Sender.t;
  sender_node : Netsim.Node.t;
  mutable receivers : Receiver.t list;
}

let create topo ?(cfg = Config.default) ~session ~sender_node ~receiver_nodes
    ?clock_offsets () =
  let offsets =
    match clock_offsets with
    | None -> List.map (fun _ -> 0.) receiver_nodes
    | Some l ->
        if List.length l <> List.length receiver_nodes then
          invalid_arg "Session.create: clock_offsets length mismatch";
        l
  in
  let sender = Sender.create topo ~cfg ~session ~node:sender_node () in
  let receivers =
    List.map2
      (fun node clock_offset ->
        Receiver.create topo ~cfg ~session ~node ~sender:sender_node
          ~clock_offset ())
      receiver_nodes offsets
  in
  { topo; cfg; session; sender; sender_node; receivers }

let start ?(join_receivers = true) t ~at =
  if join_receivers then List.iter Receiver.join t.receivers;
  Sender.start t.sender ~at

let stop t = Sender.stop t.sender

let sender t = t.sender

let receivers t = t.receivers

let receiver t ~node_id =
  List.find (fun r -> Receiver.node_id r = node_id) t.receivers

let add_receiver t ~node ?(clock_offset = 0.) ~join_now () =
  let r =
    Receiver.create t.topo ~cfg:t.cfg ~session:t.session ~node
      ~sender:t.sender_node ~clock_offset ()
  in
  t.receivers <- r :: t.receivers;
  if join_now then Receiver.join r;
  r

let receivers_with_rtt t =
  List.length (List.filter Receiver.has_rtt_measurement t.receivers)

let min_calculated_rate t =
  List.fold_left
    (fun acc r -> Float.min acc (Receiver.calculated_rate r))
    infinity t.receivers

let current_rate t = Sender.rate_bytes_per_s t.sender
