(** The loss-path-multiplicity scaling model of Section 3 (Fig. 7).

    With n receivers seeing independent loss, loss intervals are
    exponentially distributed; TFMCC's WALI filter averages
    [n_intervals] of them (approximately gamma), and the protocol tracks
    the minimum calculated rate over receivers — so throughput degrades
    with n even at a fixed loss probability.  This module Monte-Carlos
    that minimum, for a constant per-receiver loss rate and for the
    paper's more realistic skewed distribution (a few high-loss
    receivers, a majority at low loss). *)

type loss_profile =
  | Constant of float  (** every receiver at this loss probability *)
  | Realistic of { c : float }
      (** ⌈c·ln n⌉ receivers at 5–10 % loss, ⌈2c·ln n⌉ at 2–5 %, the rest
          at 0.5–2 % (Section 3's illustrative distribution) *)

val assign_loss_rates : Stats.Rng.t -> n:int -> profile:loss_profile -> float array

val expected_throughput :
  Stats.Rng.t ->
  n:int ->
  profile:loss_profile ->
  rtt:float ->
  s:int ->
  n_intervals:int ->
  trials:int ->
  float
(** Average over [trials] of min over receivers of the equation rate
    when each receiver's p estimate is the WALI average of
    [n_intervals] iid exponential loss intervals at its true loss rate.
    Bytes/s. *)

val series :
  Stats.Rng.t ->
  ns:int list ->
  profile:loss_profile ->
  rtt:float ->
  s:int ->
  n_intervals:int ->
  trials:int ->
  (int * float) list
(** (n, expected throughput) for each receiver count. *)
