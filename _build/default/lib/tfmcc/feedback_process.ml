type cancel_policy = On_any | Rate_threshold of float

type params = {
  n_estimate : int;
  t_max : float;
  delay : float;
  bias : Config.bias;
  delta : float;
  cancel : cancel_policy;
}

type event = { value : float; timer : float; sent : bool }

type outcome = {
  responses : int;
  first_time : float;
  best_value : float;
  true_min : float;
  events : event array;
}

let uniform_values rng ~n ~lo ~hi =
  if n <= 0 then invalid_arg "Feedback_process.uniform_values: n must be positive";
  Array.init n (fun _ -> Stats.Dist.uniform_sample rng ~lo ~hi)

let timer_samples rng ~bias ~t_max ~delta ~n_estimate ~ratio ~samples =
  Array.init samples (fun _ ->
      Feedback_timer.draw rng ~bias ~t_max ~delta ~n_estimate ~ratio)

let run_round rng params ~values =
  let n = Array.length values in
  if n = 0 then invalid_arg "Feedback_process.run_round: empty receiver set";
  let timers =
    Array.map
      (fun v ->
        Feedback_timer.draw rng ~bias:params.bias ~t_max:params.t_max
          ~delta:params.delta ~n_estimate:params.n_estimate ~ratio:v)
      values
  in
  let order = Array.init n Fun.id in
  Array.sort
    (fun i j ->
      match compare timers.(i) timers.(j) with 0 -> compare i j | c -> c)
    order;
  (* Echoes from already-sent responses: (arrival time, value), kept in
     send order (arrival order too, as delay is constant). *)
  let echoes = ref [] in
  let suppressed_by v t =
    List.exists
      (fun (arrival, ev) ->
        arrival <= t
        &&
        match params.cancel with
        | On_any -> true
        | Rate_threshold zeta ->
            Feedback_timer.should_cancel ~zeta ~own_rate:v ~echoed_rate:ev)
      !echoes
  in
  let events =
    Array.map
      (fun i ->
        let v = values.(i) and tm = timers.(i) in
        let sent = not (suppressed_by v tm) in
        if sent then echoes := (tm +. params.delay, v) :: !echoes;
        { value = v; timer = tm; sent })
      order
  in
  let sent = Array.to_list events |> List.filter (fun e -> e.sent) in
  let responses = List.length sent in
  let first_time = match sent with [] -> nan | e :: _ -> e.timer in
  let best_value =
    if responses = 0 then nan
    else List.fold_left (fun acc e -> Float.min acc e.value) infinity sent
  in
  let true_min = Array.fold_left Float.min values.(0) values in
  { responses; first_time; best_value; true_min; events }
