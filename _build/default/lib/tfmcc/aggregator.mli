(** In-network feedback aggregation (paper §6.1, Future Work).

    An aggregator sits on an interior node of the distribution tree.
    Receivers in its subtree unicast their reports to it (via the
    receiver's [report_to]); the aggregator retains only the most
    restrictive report seen within a hold interval — loss reports
    dominate rate-only reports, lower rates dominate higher — and
    forwards that single report to its parent (another aggregator or the
    sender).  Leave reports pass through immediately.

    The forwarded report keeps the originating receiver's identity and
    timestamps, so the sender's CLR election, echo-based RTT measurement
    and rate rescaling work end-to-end unchanged.  With a tree in place,
    end-to-end timer suppression becomes unnecessary
    ([Config.use_suppression = false]). *)

type t

val create :
  Netsim.Topology.t ->
  session:int ->
  node:Netsim.Node.t ->
  parent:Netsim.Node.t ->
  ?hold:float ->
  unit ->
  t
(** [hold] is the aggregation interval (default 0.2 s): the best report
    collected during it is forwarded when it expires.  The interval
    should be well below the feedback round duration. *)

val reports_in : t -> int
(** Reports received from the subtree. *)

val reports_out : t -> int
(** Aggregated reports forwarded to the parent. *)

val node_id : t -> int
