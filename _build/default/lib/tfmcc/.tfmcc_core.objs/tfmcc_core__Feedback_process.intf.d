lib/tfmcc/feedback_process.mli: Config Stats
