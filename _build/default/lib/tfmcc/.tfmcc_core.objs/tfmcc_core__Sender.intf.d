lib/tfmcc/sender.mli: Config Netsim
