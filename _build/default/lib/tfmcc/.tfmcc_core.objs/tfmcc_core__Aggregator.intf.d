lib/tfmcc/aggregator.mli: Netsim
