lib/tfmcc/scaling_model.ml: Array Float List Stats Stdlib Tcp_model
