lib/tfmcc/session.mli: Config Netsim Receiver Sender
