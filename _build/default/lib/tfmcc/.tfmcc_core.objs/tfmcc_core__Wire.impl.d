lib/tfmcc/wire.ml: Netsim
