lib/tfmcc/session.ml: Config Float List Netsim Receiver Sender
