lib/tfmcc/scaling_model.mli: Stats
