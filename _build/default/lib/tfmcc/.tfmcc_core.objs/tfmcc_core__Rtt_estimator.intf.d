lib/tfmcc/rtt_estimator.mli: Config
