lib/tfmcc/config.ml: Printf
