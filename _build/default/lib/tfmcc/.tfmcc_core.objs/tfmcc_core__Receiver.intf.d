lib/tfmcc/receiver.mli: Config Netsim
