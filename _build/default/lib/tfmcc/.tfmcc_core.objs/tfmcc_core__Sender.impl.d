lib/tfmcc/sender.ml: Config Feedback_timer Float Hashtbl List Netsim Option Stats Wire
