lib/tfmcc/feedback_timer.ml: Config Float Stats
