lib/tfmcc/receiver.ml: Config Feedback_timer Float Lazy Netsim Option Rtt_estimator Stats Tcp_model Tfrc Wire
