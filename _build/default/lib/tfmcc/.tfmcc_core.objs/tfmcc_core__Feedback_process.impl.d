lib/tfmcc/feedback_process.ml: Array Config Feedback_timer Float Fun List Stats
