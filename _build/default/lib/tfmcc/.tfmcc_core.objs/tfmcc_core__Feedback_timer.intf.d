lib/tfmcc/feedback_timer.mli: Config Stats
