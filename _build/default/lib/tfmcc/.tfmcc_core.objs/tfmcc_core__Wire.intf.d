lib/tfmcc/wire.mli: Netsim
