lib/tfmcc/aggregator.ml: Netsim Stdlib Wire
