lib/tfmcc/config.mli:
