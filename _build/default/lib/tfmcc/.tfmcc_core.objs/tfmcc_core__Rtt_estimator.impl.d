lib/tfmcc/rtt_estimator.ml: Config Float
