(** NAK-based reliable block transfer over a TFMCC session — the paper's
    intended first deployment ("a multicast filesystem synchronization
    application (e.g. rdist)", §6.1), with congestion control and
    reliability kept separate exactly as §2 prescribes: TFMCC decides
    when packets are sent; this layer decides which block rides in each
    one.

    Sender side: a first pass streams blocks 0..N-1 in order; receiver
    NAKs (bounded lists of missing ids, rate-limited and jittered) feed a
    repair queue that takes precedence over fresh data; once the first
    pass is done and the repair queue is empty, packets carry filler
    until new NAKs arrive.

    Receiver side: a bitset over the N expected blocks (the block count
    is known out-of-band, as a file manifest would be), NAKing missing
    blocks that are provably transmitted (id below the highest block
    seen) — or all missing ones when progress has stalled. *)

type Netsim.Packet.payload +=
  | Nak of { session : int; rx_id : int; missing : int list }
        (** Receiver→sender negative acknowledgment: a bounded list of
            missing block ids. *)

module Sender : sig
  type t

  val create :
    Tfmcc_core.Sender.t ->
    node:Netsim.Node.t ->
    session:int ->
    blocks:int ->
    t
  (** Installs itself as the TFMCC sender's block source and attaches the
      NAK handler at [node] (the node hosting the TFMCC sender). *)

  val blocks : t -> int

  val first_pass_done : t -> bool

  val repair_queue_length : t -> int

  val repairs_sent : t -> int

  val naks_received : t -> int
end

module Receiver : sig
  type t

  val create :
    Netsim.Topology.t ->
    Tfmcc_core.Receiver.t ->
    sender:Netsim.Node.t ->
    session:int ->
    blocks:int ->
    ?nak_interval:float ->
    ?max_nak_ids:int ->
    unit ->
    t
  (** Hooks into the TFMCC receiver's block callback.  [nak_interval]
      (default 0.5 s) rate-limits NAKs; [max_nak_ids] (default 64) bounds
      the ids per NAK. *)

  val received_blocks : t -> int

  val complete : t -> bool

  val completion_time : t -> float option

  val naks_sent : t -> int

  val missing : t -> int list
  (** Currently missing block ids, ascending. *)
end
