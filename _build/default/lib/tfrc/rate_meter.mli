(** Sliding-window receive-rate measurement (X_recv in TFRC/TFMCC).
    Keeps the arrivals of the last [window] seconds and reports their
    average rate.  The window is adjustable at runtime because TFMCC
    measures the receive rate over a few RTTs and the RTT estimate
    changes. *)

type t

val create : ?window:float -> unit -> t
(** Default window 1 s. *)

val set_window : t -> float -> unit
(** Raises on non-positive windows. *)

val window : t -> float

val record : t -> now:float -> bytes:int -> unit
(** Times must be non-decreasing. *)

val rate_bytes_per_s : t -> now:float -> float
(** Bytes/s over min(window, time since first arrival), floored at half
    the window so that a burst of back-to-back arrivals cannot read as an
    arbitrarily high rate; 0 before any arrival. *)

val total_bytes : t -> int
