type Netsim.Packet.payload +=
  | Data of {
      conn : int;
      seq : int;
      ts : float;
      rtt : float;
      echo_ts : float;
      echo_delay : float;
    }
  | Feedback of {
      conn : int;
      ts : float;
      echo_ts : float;
      echo_delay : float;
      p : float;
      x_recv : float;
    }

let data_size = 1000

let feedback_size = 40
