(** Loss-event measurement by the weighted average loss interval (WALI)
    method of TFRC (paper §2.3, App. B; RFC 3448 §5).

    The receiver feeds every arriving data packet's sequence number in;
    gaps in the sequence space are losses.  Losses within one RTT of the
    start of the current loss event are aggregated into that event.  The
    loss event rate p is the inverse of the weighted average of the n
    most recent loss intervals, where the interval since the most recent
    loss event (the "open" interval) is counted only if doing so reduces
    p.

    The first loss interval has no preceding loss event; following the
    paper's Appendix B it is seeded synthetically from the receive rate
    at the time of the first loss via the [first_interval] callback, and
    may later be rescaled when the first real RTT measurement replaces
    the 500 ms initial RTT (see {!rescale_synthetic}). *)

type t

val create :
  ?n_intervals:int ->
  ?first_interval:(unit -> float option) ->
  unit ->
  t
(** [n_intervals] defaults to 8 (the paper recommends 8–32).
    [first_interval] is consulted when the first loss event occurs; it
    should return the synthetic initial interval in packets ([None] falls
    back to the count of packets received before the loss). *)

val on_packet : t -> seq:int -> now:float -> rtt:float -> unit
(** Processes the arrival of packet [seq] at time [now], with [rtt] the
    receiver's current RTT estimate used to aggregate losses into loss
    events.  Sequence numbers start at 0 and gaps are interpreted as
    losses (links are FIFO, so there is no reordering to tolerate).
    Duplicates and late packets are ignored. *)

val loss_event_rate : t -> float
(** p ∈ [0, 1]; 0 before the first loss event. *)

val mean_interval : t -> float
(** 1/p, i.e. the governing weighted average interval; [infinity] before
    the first loss event. *)

val has_loss : t -> bool

val loss_events : t -> int
(** Number of distinct loss events seen. *)

val packets_seen : t -> int
(** Count of data packets that actually arrived. *)

val packets_lost : t -> int

val closed_intervals : t -> float list
(** Most recent first; at most [n_intervals] values. *)

val open_interval : t -> float
(** Packets since the start of the current loss event (0 before any
    loss). *)

val remodel : t -> rtt:float -> unit
(** App. A's full correction: re-aggregates the retained log of recent
    loss gaps (up to 64) into loss events under a different RTT and
    rebuilds the interval history from them — "storing information about
    some of the more recently lost packets and approximating the correct
    distribution of loss intervals", as the paper puts it.  Intervals
    older than the retained gap log are kept as they were.  Call this
    when the first real RTT measurement replaces the initial estimate
    used for aggregation. *)

val rescale_synthetic : t -> factor:float -> unit
(** Multiplies the synthetic first interval by [factor] (clamped below at
    1 packet) if it is still present in the history; no-op otherwise.
    Used when the first real RTT measurement arrives (paper App. B:
    factor = (R_real / R_initial)²). *)

val weights : t -> float array
(** The WALI weights in use, most recent interval first (for tests). *)
