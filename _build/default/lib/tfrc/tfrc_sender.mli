(** Unicast TFRC sender (RFC 3448 style, paper §1.1).

    Paces data packets at rate X.  On each feedback packet it measures the
    RTT from the echoed timestamp, computes the allowed rate from the
    Padhye equation and sets
    X = max(min(X_calc, 2·X_recv), s/t_mbi); while the receiver reports
    p = 0 it instead slow-starts, X = min(2·X, 2·X_recv).  A no-feedback
    timer (4 RTT) halves the rate in the absence of reports. *)

type t

val create :
  Netsim.Topology.t ->
  conn:int ->
  flow:int ->
  src:Netsim.Node.t ->
  dst:Netsim.Node.t ->
  ?packet_size:int ->
  ?initial_rate:float ->
  unit ->
  t
(** [initial_rate] in bytes/s; default one packet per second until the
    first feedback arrives (RFC 3448 §4.2 spirit). *)

val start : t -> at:float -> unit

val stop : t -> unit

val rate_bytes_per_s : t -> float

val rtt : t -> float option
(** Smoothed RTT; [None] before the first feedback. *)

val packets_sent : t -> int

val in_slowstart : t -> bool
