(** TFRC packet payloads (extends {!Netsim.Packet.payload}). *)

type Netsim.Packet.payload +=
  | Data of {
      conn : int;
      seq : int;
      ts : float;  (** sender clock at transmission *)
      rtt : float;  (** sender's current RTT estimate (feedback-timer seed) *)
      echo_ts : float;  (** receiver timestamp being echoed; nan if none *)
      echo_delay : float;  (** sender hold time between report and echo *)
    }
  | Feedback of {
      conn : int;
      ts : float;  (** receiver clock at transmission *)
      echo_ts : float;  (** data-packet timestamp being echoed *)
      echo_delay : float;  (** receiver hold time since that packet *)
      p : float;  (** measured loss event rate *)
      x_recv : float;  (** receive rate in bytes/s *)
    }

val data_size : int
(** 1000 bytes on the wire. *)

val feedback_size : int
(** 40 bytes. *)
