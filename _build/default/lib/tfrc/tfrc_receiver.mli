(** Unicast TFRC receiver: measures the loss event rate with the WALI
    filter and the receive rate, and sends one feedback packet per RTT
    (seeded with the sender's RTT estimate carried in data packets). *)

type t

val create :
  Netsim.Topology.t ->
  conn:int ->
  node:Netsim.Node.t ->
  sender:Netsim.Node.t ->
  ?feedback_flow:int ->
  unit ->
  t

val loss_event_rate : t -> float

val x_recv_bytes_per_s : t -> float

val packets_received : t -> int

val feedback_sent : t -> int
