lib/tfrc/tfrc_receiver.mli: Netsim
