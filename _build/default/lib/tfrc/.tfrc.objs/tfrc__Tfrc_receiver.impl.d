lib/tfrc/tfrc_receiver.ml: Float Lazy Loss_history Netsim Rate_meter Tcp_model Wire
