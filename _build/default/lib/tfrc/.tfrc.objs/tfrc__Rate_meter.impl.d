lib/tfrc/rate_meter.ml: Float Queue
