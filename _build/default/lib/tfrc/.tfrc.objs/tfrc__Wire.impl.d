lib/tfrc/wire.ml: Netsim
