lib/tfrc/wire.mli: Netsim
