lib/tfrc/tfrc_sender.ml: Float Netsim Option Tcp_model Wire
