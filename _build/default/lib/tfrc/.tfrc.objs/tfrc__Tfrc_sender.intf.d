lib/tfrc/tfrc_sender.mli: Netsim
