lib/tfrc/loss_history.ml: Array Float List Stdlib
