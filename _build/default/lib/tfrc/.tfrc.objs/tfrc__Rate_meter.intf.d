lib/tfrc/rate_meter.mli:
