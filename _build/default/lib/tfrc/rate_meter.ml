type sample = { time : float; bytes : int }

type t = {
  mutable window : float;
  samples : sample Queue.t;  (* oldest at front *)
  mutable in_window_bytes : int;
  mutable total : int;
  mutable first_time : float option;
  mutable last_time : float;
}

let create ?(window = 1.) () =
  if window <= 0. then invalid_arg "Rate_meter.create: window must be positive";
  {
    window;
    samples = Queue.create ();
    in_window_bytes = 0;
    total = 0;
    first_time = None;
    last_time = neg_infinity;
  }

let set_window t w =
  if w <= 0. then invalid_arg "Rate_meter.set_window: window must be positive";
  t.window <- w

let window t = t.window

let expire t ~now =
  let horizon = now -. t.window in
  let rec loop () =
    match Queue.peek_opt t.samples with
    | Some s when s.time < horizon ->
        ignore (Queue.pop t.samples);
        t.in_window_bytes <- t.in_window_bytes - s.bytes;
        loop ()
    | _ -> ()
  in
  loop ()

let record t ~now ~bytes =
  if now < t.last_time then invalid_arg "Rate_meter.record: time went backwards";
  t.last_time <- now;
  if t.first_time = None then t.first_time <- Some now;
  Queue.push { time = now; bytes } t.samples;
  t.in_window_bytes <- t.in_window_bytes + bytes;
  t.total <- t.total + bytes;
  expire t ~now

let rate_bytes_per_s t ~now =
  match t.first_time with
  | None -> 0.
  | Some first ->
      expire t ~now;
      (* Floor the averaging span at half the window: a couple of
         back-to-back arrivals must not read as an enormous rate (the
         slowstart target is twice this measurement). *)
      let span =
        Float.max (Float.min t.window (now -. first)) (t.window /. 2.)
      in
      float_of_int t.in_window_bytes /. span

let total_bytes t = t.total
