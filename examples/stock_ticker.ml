(* Stock ticker: the paper's "many receivers, long-lived low-rate stream"
   workload (its Conclusions name stock-price tickers explicitly).

   A single sender multicasts quotes to hundreds of receivers.  The
   interesting part is the feedback machinery at scale: this example
   prints how many receiver reports the sender actually sees per feedback
   round (suppression at work) and how initial RTT measurements spread
   through the group (the Fig. 12 effect).

   Run with: dune exec examples/stock_ticker.exe *)

let () =
  let n = 300 in
  let engine = Netsim.Engine.create ~seed:17 () in
  let topo = Netsim.Topology.create engine in
  let sender = Netsim.Topology.add_node topo in
  let backbone = Netsim.Topology.add_node topo in
  (* A modest shared uplink bounds the ticker's rate. *)
  ignore
    (Netsim.Topology.connect topo ~bandwidth_bps:2e6 ~delay_s:0.002 sender backbone);
  let rng = Netsim.Engine.rng engine in
  let receivers =
    List.init n (fun _ ->
        let rx = Netsim.Topology.add_node topo in
        let delay = 0.01 +. Stats.Rng.float rng 0.06 in
        ignore
          (Netsim.Topology.connect topo ~bandwidth_bps:10e6 ~delay_s:delay
             backbone rx);
        rx)
  in
  let session =
    Netsim_env.Session.create topo ~session:1 ~sender_node:sender
      ~receiver_nodes:receivers ()
  in
  Tfmcc_core.Session.start session ~at:0.;
  let snd = Tfmcc_core.Session.sender session in
  Printf.printf "%d receivers; watching the feedback machinery:\n\n" n;
  Printf.printf "%5s %12s %7s %14s %14s %9s\n" "t(s)" "rate(kbit/s)" "round"
    "reports-total" "reports/round" "with-RTT";
  let last_reports = ref 0 and last_round = ref 0 in
  for sec = 1 to 120 do
    Netsim.Engine.run ~until:(float_of_int sec) engine;
    if sec mod 10 = 0 then begin
      let reports = Tfmcc_core.Sender.reports_received snd in
      let round = Tfmcc_core.Sender.round snd in
      let per_round =
        if round > !last_round then
          float_of_int (reports - !last_reports) /. float_of_int (round - !last_round)
        else 0.
      in
      Printf.printf "%5d %12.0f %7d %14d %14.1f %9d\n" sec
        (Tfmcc_core.Sender.rate_bytes_per_s snd *. 8. /. 1000.)
        round reports per_round
        (Tfmcc_core.Session.receivers_with_rtt session);
      last_reports := reports;
      last_round := round
    end
  done;
  let suppressed =
    List.fold_left
      (fun acc r -> acc + Tfmcc_core.Receiver.timers_suppressed r)
      0
      (Tfmcc_core.Session.receivers session)
  in
  Printf.printf
    "\nfeedback summary: %d reports reached the sender across %d rounds;\n\
     %d feedback timers were suppressed by echoed feedback —\n\
     an implosion (%d receivers all reporting every round) never happens.\n"
    (Tfmcc_core.Sender.reports_received snd)
    (Tfmcc_core.Sender.round snd)
    suppressed n
