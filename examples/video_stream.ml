(* Video streaming: the paper's motivating "long-lived stream" workload.

   A sender streams to a heterogeneous audience whose members join and
   leave over time.  The application caps the rate at the stream's top
   encoding (3 Mbit/s, via Config.max_rate) and we track which quality
   tier the current TFMCC rate would sustain — the classic single-rate
   multicast trade-off: the slowest active viewer sets everyone's
   quality.

   Run with: dune exec examples/video_stream.exe *)

let tiers = [ (2500., "1080p"); (1200., "720p"); (600., "480p"); (250., "240p") ]

let tier_of kbps =
  let rec pick = function
    | [] -> "audio-only"
    | (min_kbps, name) :: rest -> if kbps >= min_kbps then name else pick rest
  in
  pick tiers

let () =
  let engine = Netsim.Engine.create ~seed:3 () in
  let topo = Netsim.Topology.create engine in
  let sender = Netsim.Topology.add_node topo in
  let hub = Netsim.Topology.add_node topo in
  ignore (Netsim.Topology.connect topo ~bandwidth_bps:1e9 ~delay_s:0.005 sender hub);
  (* Audience link profiles: fibre, cable, DSL, congested wifi. *)
  let profiles =
    [|
      ("fibre", 50e6, 0.01, 0.0);
      ("cable", 10e6, 0.02, 0.0);
      ("dsl", 4e6, 0.03, 0.001);
      ("wifi", 2e6, 0.025, 0.01);
    |]
  in
  let mk_viewer i =
    let name, bw, delay, loss = profiles.(i mod Array.length profiles) in
    let rx = Netsim.Topology.add_node topo in
    let loss_ab =
      if loss > 0. then
        Some
          (Netsim.Loss_model.bernoulli
             ~rng:(Netsim.Engine.split_rng engine)
             ~p:loss)
      else None
    in
    ignore (Netsim.Topology.connect topo ?loss_ab ~bandwidth_bps:bw ~delay_s:delay hub rx);
    (Printf.sprintf "%s-%d" name i, rx)
  in
  let viewers = List.init 8 mk_viewer in
  (* Cap the stream at its top encoding rate. *)
  let cfg =
    { Tfmcc_core.Config.default with max_rate = 3e6 /. 8. (* bytes/s *) }
  in
  let session =
    Netsim_env.Session.create topo ~cfg ~session:1 ~sender_node:sender
      ~receiver_nodes:(List.map snd viewers) ()
  in
  (* Staggered joins; the wifi viewers leave midway through. *)
  let receivers =
    List.map
      (fun (name, node) ->
        (name, Tfmcc_core.Session.receiver session ~node_id:(Netsim.Node.id node)))
      viewers
  in
  List.iteri
    (fun i (name, r) ->
      let at = 1. +. (8. *. float_of_int i) in
      ignore
        (Netsim.Engine.at engine ~time:at (fun () ->
             Printf.printf "t=%3.0f: %s joins\n" at name;
             Tfmcc_core.Receiver.join r)))
    receivers;
  List.iter
    (fun (name, r) ->
      if String.length name >= 4 && String.sub name 0 4 = "wifi" then
        ignore
          (Netsim.Engine.at engine ~time:120. (fun () ->
               Printf.printf "t=120: %s leaves\n" name;
               Tfmcc_core.Receiver.leave r ())))
    receivers;
  Tfmcc_core.Session.start ~join_receivers:false session ~at:0.;
  let snd = Tfmcc_core.Session.sender session in
  Printf.printf "%5s %12s %10s %s\n" "t(s)" "rate(kbit/s)" "quality" "CLR";
  for sec = 1 to 180 do
    Netsim.Engine.run ~until:(float_of_int sec) engine;
    if sec mod 10 = 0 then begin
      let kbps = Tfmcc_core.Sender.rate_bytes_per_s snd *. 8. /. 1000. in
      Printf.printf "%5d %12.0f %10s %s\n" sec kbps (tier_of kbps)
        (match Tfmcc_core.Sender.clr snd with
        | Some id -> (
            match
              List.find_opt
                (fun (_, r) -> Tfmcc_core.Receiver.node_id r = id)
                receivers
            with
            | Some (name, _) -> name
            | None -> string_of_int id)
        | None -> "-")
    end
  done;
  Printf.printf "\nviewer goodput over the session:\n";
  List.iter
    (fun (name, r) ->
      Printf.printf "  %-10s %7d packets  p=%.4f  rtt=%3.0f ms\n" name
        (Tfmcc_core.Receiver.packets_received r)
        (Tfmcc_core.Receiver.loss_event_rate r)
        (1000. *. Tfmcc_core.Receiver.rtt r))
    receivers
