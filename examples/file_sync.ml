(* Multicast file synchronisation: the paper's Future Work names a
   multicast rdist-style filesystem-sync deployment as the intended first
   real application.

   A 10 MB file (10,000 blocks of 1 kB) is pushed to 12 mirrors over
   TFMCC with the NAK-based repair layer (tfmcc.repair) providing real
   reliability on top — every mirror ends with every block, not just a
   byte count.  Each mirror's link also carries an interfering TCP
   download; we report true completion times, the repair overhead, and
   how TFMCC shared the links with TCP.

   Run with: dune exec examples/file_sync.exe *)

let blocks = 10_000 (* x 1 kB packets = 10 MB *)

let () =
  let n = 12 in
  let engine = Netsim.Engine.create ~seed:23 () in
  let topo = Netsim.Topology.create engine in
  let monitor = Netsim.Monitor.create engine in
  let sender = Netsim.Topology.add_node topo in
  let hub = Netsim.Topology.add_node topo in
  ignore (Netsim.Topology.connect topo ~bandwidth_bps:1e9 ~delay_s:0.002 sender hub);
  let mirrors =
    Array.init n (fun _ ->
        let rx = Netsim.Topology.add_node topo in
        ignore
          (Netsim.Topology.connect topo ~bandwidth_bps:8e6 ~delay_s:0.015 hub rx);
        rx)
  in
  (* Interfering TCP download on every mirror link. *)
  Array.iteri
    (fun i rx ->
      let src = Netsim.Topology.add_node topo in
      ignore (Netsim.Topology.connect topo ~bandwidth_bps:1e9 ~delay_s:0.001 src hub);
      let source =
        Tcp.Tcp_source.create topo ~conn:(100 + i) ~flow:(1000 + i) ~src ~dst:rx ()
      in
      let _sink = Tcp.Tcp_sink.create topo ~conn:(100 + i) ~node:rx () in
      Netsim.Monitor.watch_node_flow monitor rx ~flow:(1000 + i);
      Tcp.Tcp_source.start source ~at:0.)
    mirrors;
  let session =
    Netsim_env.Session.create topo ~session:1 ~sender_node:sender
      ~receiver_nodes:(Array.to_list mirrors) ()
  in
  let repair_sender =
    Repair.Sender.create (Tfmcc_core.Session.sender session) ~node:sender
      ~session:1 ~blocks
  in
  let repairs =
    List.map
      (fun rx -> Repair.Receiver.create topo rx ~sender ~session:1 ~blocks ())
      (Tfmcc_core.Session.receivers session)
  in
  Tfmcc_core.Session.start session ~at:0.;
  (* Stop as soon as every mirror holds every block. *)
  let rec watch t =
    ignore
      (Netsim.Engine.at engine ~time:t (fun () ->
           if List.for_all Repair.Receiver.complete repairs then
             Netsim.Engine.stop engine
           else watch (t +. 0.5)))
  in
  watch 0.5;
  Netsim.Engine.run ~until:3600. engine;
  Printf.printf
    "synchronised %d blocks (10 MB) to %d mirrors over TFMCC + NAK repair\n"
    blocks n;
  Printf.printf "(8 Mbit/s links, one competing TCP each; fair share 4 Mbit/s)\n\n";
  List.iteri
    (fun i rep ->
      match Repair.Receiver.completion_time rep with
      | Some t ->
          let tcp_kbps =
            Netsim.Monitor.throughput_bps monitor ~flow:(1000 + i) ~t_start:10.
              ~t_end:t
            /. 1000.
          in
          Printf.printf
            "  mirror %2d: complete at t=%6.1fs (%d NAKs; competing TCP %4.0f kbit/s)\n"
            i t (Repair.Receiver.naks_sent rep) tcp_kbps
      | None -> Printf.printf "  mirror %2d: did not finish!\n" i)
    repairs;
  let times = List.filter_map Repair.Receiver.completion_time repairs in
  (match times with
  | [] -> print_endline "no mirror finished"
  | _ ->
      let first = List.fold_left Float.min infinity times in
      let last = List.fold_left Float.max neg_infinity times in
      Printf.printf
        "\ncompletion skew (multicast: everyone finishes ~together): %.1fs\n"
        (last -. first));
  Printf.printf
    "repair overhead: %d retransmitted blocks (%.1f%% of the file) for %d NAKs\n"
    (Repair.Sender.repairs_sent repair_sender)
    (100.
    *. float_of_int (Repair.Sender.repairs_sent repair_sender)
    /. float_of_int blocks)
    (Repair.Sender.naks_received repair_sender)
