(* Quickstart: the smallest complete TFMCC session.

   One sender multicasts to three receivers behind links of different
   capacity; TFMCC finds the slowest receiver's fair rate and adapts when
   that receiver leaves.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A simulation engine and a topology. *)
  let engine = Netsim.Engine.create ~seed:7 () in
  let topo = Netsim.Topology.create engine in

  (* 2. Star topology: sender -- hub -- three receivers at 4, 2 and
     0.5 Mbit/s. *)
  let sender = Netsim.Topology.add_node topo in
  let hub = Netsim.Topology.add_node topo in
  ignore (Netsim.Topology.connect topo ~bandwidth_bps:100e6 ~delay_s:0.005 sender hub);
  let mk_receiver bandwidth_bps =
    let rx = Netsim.Topology.add_node topo in
    ignore (Netsim.Topology.connect topo ~bandwidth_bps ~delay_s:0.02 hub rx);
    rx
  in
  let rx_fast = mk_receiver 4e6 in
  let rx_mid = mk_receiver 2e6 in
  let rx_slow = mk_receiver 0.5e6 in

  (* 3. A TFMCC session: sender plus receivers, all with default
     (paper) parameters. *)
  let session =
    Netsim_env.Session.create topo ~session:1 ~sender_node:sender
      ~receiver_nodes:[ rx_fast; rx_mid; rx_slow ] ()
  in
  Tfmcc_core.Session.start session ~at:0.;

  (* 4. After 60 s the slow receiver leaves; TFMCC speeds up to the next
     bottleneck. *)
  let slow = Tfmcc_core.Session.receiver session ~node_id:(Netsim.Node.id rx_slow) in
  ignore
    (Netsim.Engine.at engine ~time:60. (fun () ->
         print_endline "t=60: slow receiver leaves";
         Tfmcc_core.Receiver.leave slow ()));

  (* 5. Run, printing the sender's rate once per second. *)
  let snd = Tfmcc_core.Session.sender session in
  Printf.printf "%5s %12s %8s %s\n" "t(s)" "rate(kbit/s)" "CLR" "slowstart";
  for sec = 1 to 120 do
    Netsim.Engine.run ~until:(float_of_int sec) engine;
    if sec mod 5 = 0 then
      Printf.printf "%5d %12.0f %8s %b\n" sec
        (Tfmcc_core.Sender.rate_bytes_per_s snd *. 8. /. 1000.)
        (match Tfmcc_core.Sender.clr snd with
        | Some id -> Printf.sprintf "node %d" id
        | None -> "-")
        (Tfmcc_core.Sender.in_slowstart snd)
  done;
  Printf.printf "\nreceiver summary:\n";
  List.iter
    (fun r ->
      Printf.printf
        "  node %d: %6d packets, loss event rate %.4f, RTT %.0f ms%s\n"
        (Tfmcc_core.Receiver.node_id r)
        (Tfmcc_core.Receiver.packets_received r)
        (Tfmcc_core.Receiver.loss_event_rate r)
        (1000. *. Tfmcc_core.Receiver.rtt r)
        (if Tfmcc_core.Receiver.is_clr r then "  <- CLR" else ""))
    (Tfmcc_core.Session.receivers session)
