type t = {
  topo : Netsim.Topology.t;
  engine : Netsim.Engine.t;
  conn : int;
  flow : int;
  src : Netsim.Node.t;
  dst : Netsim.Node.t;
  rng : Stats.Rng.t;
  mutable running : bool;
  mutable rate : float;
  mutable srtt : float option;
  mutable seq : int;
  mutable send_timer : Netsim.Engine.handle option;
  mutable nofeedback : Netsim.Engine.handle option;
  mutable sent : int;
  obs : Obs.Sink.t;
  scope : Obs.Journal.scope;
  m_sent : Obs.Metrics.Counter.t;
  m_feedback : Obs.Metrics.Counter.t;
  m_nofeedback : Obs.Metrics.Counter.t;
  m_rate : Obs.Metrics.Gauge.t;
}

let jnl t ?severity ev =
  Obs.Sink.event t.obs ~time:(Netsim.Engine.now t.engine) ?severity t.scope ev

let min_rate = float_of_int Wire.data_size /. 64.

let rtt_or_default t = Option.value t.srtt ~default:0.5

let cancel t h =
  match h with
  | Some hd ->
      Netsim.Engine.cancel t.engine hd;
      None
  | None -> None

let rec send_packet t =
  t.send_timer <- None;
  if t.running then begin
    let now = Netsim.Engine.now t.engine in
    let payload =
      Wire.Data { conn = t.conn; seq = t.seq; ts = now; rtt = rtt_or_default t }
    in
    t.seq <- t.seq + 1;
    t.sent <- t.sent + 1;
    Obs.Metrics.Counter.inc t.m_sent;
    Obs.Metrics.Gauge.set t.m_rate t.rate;
    let p =
      Netsim.Packet.alloc ~flow:t.flow ~size:Wire.data_size
        ~src:(Netsim.Node.id t.src)
        ~dst:(Netsim.Packet.Unicast (Netsim.Node.id t.dst))
        ~created:now payload
    in
    Netsim.Topology.inject t.topo p;
    (* Pacing jitter, as for the other rate-based senders. *)
    let jitter = 0.75 +. (0.5 *. Stats.Rng.uniform t.rng) in
    let delay = jitter *. float_of_int Wire.data_size /. t.rate in
    t.send_timer <- Some (Netsim.Engine.after t.engine ~delay (fun () -> send_packet t))
  end

let rec restart_nofeedback t =
  t.nofeedback <- cancel t t.nofeedback;
  let delay = Float.max (4. *. rtt_or_default t) (2. *. float_of_int Wire.data_size /. t.rate) in
  t.nofeedback <-
    Some
      (Netsim.Engine.after t.engine ~delay (fun () ->
           t.nofeedback <- None;
           if t.running then begin
             let from_bps = t.rate in
             t.rate <- Float.max min_rate (t.rate /. 2.);
             Obs.Metrics.Counter.inc t.m_nofeedback;
             jnl t ~severity:Obs.Journal.Warn
               (Obs.Journal.Timeout { what = "nofeedback" });
             if t.rate <> from_bps then
               jnl t ~severity:Obs.Journal.Debug
                 (Obs.Journal.Rate_change
                    { from_bps; to_bps = t.rate; reason = "nofeedback-halve" });
             restart_nofeedback t
           end))

let on_feedback t ~ts:_ ~echo_ts ~echo_delay ~rate =
  let now = Netsim.Engine.now t.engine in
  (if not (Float.is_nan echo_ts) then begin
     let sample = now -. echo_ts -. echo_delay in
     if sample > 0. then
       t.srtt <-
         (match t.srtt with
         | None -> Some sample
         | Some srtt -> Some ((0.9 *. srtt) +. (0.1 *. sample)))
   end);
  Obs.Metrics.Counter.inc t.m_feedback;
  if rate > 0. then begin
    let from_bps = t.rate in
    t.rate <- Float.max min_rate rate;
    if t.rate <> from_bps then
      jnl t ~severity:Obs.Journal.Debug
        (Obs.Journal.Rate_change
           { from_bps; to_bps = t.rate; reason = "receiver-rate" })
  end;
  restart_nofeedback t

let create topo ~conn ~flow ~src ~dst ?initial_rate () =
  let engine = Netsim.Topology.engine topo in
  let initial_rate =
    Option.value initial_rate ~default:(float_of_int Wire.data_size)
  in
  let obs = Netsim.Engine.obs engine in
  let metrics = obs.Obs.Sink.metrics in
  let labels = [ ("conn", string_of_int conn) ] in
  let t =
    {
      topo;
      engine;
      conn;
      flow;
      src;
      dst;
      rng = Netsim.Engine.split_rng engine;
      running = false;
      rate = initial_rate;
      srtt = None;
      seq = 0;
      send_timer = None;
      nofeedback = None;
      sent = 0;
      obs;
      scope =
        Obs.Journal.scope ~session:conn ~node:(Netsim.Node.id src) "tear.sender";
      m_sent = Obs.Metrics.counter metrics ~labels "tear_sender_packets_sent_total";
      m_feedback = Obs.Metrics.counter metrics ~labels "tear_sender_feedback_total";
      m_nofeedback =
        Obs.Metrics.counter metrics ~labels "tear_sender_nofeedback_timeouts_total";
      m_rate = Obs.Metrics.gauge metrics ~labels "tear_sender_rate_bytes_per_s";
    }
  in
  Netsim.Node.attach src (fun p ->
      match p.Netsim.Packet.payload with
      | Wire.Feedback { conn; ts; echo_ts; echo_delay; rate } when conn = t.conn
        ->
          if t.running then on_feedback t ~ts ~echo_ts ~echo_delay ~rate
      | _ -> ());
  t

let start t ~at =
  t.running <- true;
  ignore
    (Netsim.Engine.at t.engine ~time:at (fun () ->
         send_packet t;
         restart_nofeedback t))

let stop t =
  t.running <- false;
  t.send_timer <- cancel t t.send_timer;
  t.nofeedback <- cancel t t.nofeedback

let rate_bytes_per_s t = t.rate

let rtt t = t.srtt

let packets_sent t = t.sent
