type t = {
  topo : Netsim.Topology.t;
  engine : Netsim.Engine.t;
  conn : int;
  node : Netsim.Node.t;
  sender : Netsim.Node.t;
  n_epochs : int;
  weights : float array;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable expected : int;
  mutable synced : bool;
  mutable last_event_time : float;
  mutable rtt : float;  (* sender's estimate from data packets *)
  (* Current epoch accumulation. *)
  mutable epoch_sum : float;
  mutable epoch_packets : int;
  mutable epoch_means : float list;  (* newest first, <= n_epochs *)
  mutable epochs : int;
  mutable last_ts : float;
  mutable last_arrival : float;
  mutable have_data : bool;
  mutable fb_timer : Netsim.Engine.handle option;
  mutable received : int;
  mutable fb_sent : int;
}

let wali_weights n =
  Array.init n (fun i ->
      Float.min 1. (2. *. float_of_int (n - i) /. float_of_int (n + 2)))

let window t = t.cwnd

let epochs_completed t = t.epochs

let packets_received t = t.received

let feedback_sent t = t.fb_sent

(* Weighted mean of epoch means, folding the running epoch in as the
   newest sample (like the open loss interval in WALI). *)
let smoothed_window t =
  let current =
    if t.epoch_packets > 0 then
      Some (t.epoch_sum /. float_of_int t.epoch_packets)
    else None
  in
  let samples =
    match current with Some c -> c :: t.epoch_means | None -> t.epoch_means
  in
  if samples = [] then t.cwnd
  else begin
    let num = ref 0. and den = ref 0. in
    List.iteri
      (fun i v ->
        if i < t.n_epochs then begin
          num := !num +. (t.weights.(i) *. v);
          den := !den +. t.weights.(i)
        end)
      samples;
    !num /. !den
  end

let rate_bytes_per_s t =
  smoothed_window t *. float_of_int Wire.data_size /. Float.max 1e-3 t.rtt

let send_feedback t =
  if t.have_data then begin
    let now = Netsim.Engine.now t.engine in
    let payload =
      Wire.Feedback
        {
          conn = t.conn;
          ts = now;
          echo_ts = t.last_ts;
          echo_delay = now -. t.last_arrival;
          rate = rate_bytes_per_s t;
        }
    in
    let p =
      Netsim.Packet.alloc ~flow:(-1) ~size:Wire.feedback_size
        ~src:(Netsim.Node.id t.node)
        ~dst:(Netsim.Packet.Unicast (Netsim.Node.id t.sender))
        ~created:now payload
    in
    Netsim.Topology.inject t.topo p;
    t.fb_sent <- t.fb_sent + 1
  end

let rec schedule_feedback t =
  let delay = Float.max 1e-3 t.rtt in
  t.fb_timer <-
    Some
      (Netsim.Engine.after t.engine ~delay (fun () ->
           send_feedback t;
           schedule_feedback t))

let end_epoch t =
  if t.epoch_packets > 0 then begin
    let mean = t.epoch_sum /. float_of_int t.epoch_packets in
    t.epoch_means <- mean :: t.epoch_means;
    if List.length t.epoch_means > t.n_epochs then
      t.epoch_means <- List.filteri (fun i _ -> i < t.n_epochs) t.epoch_means;
    t.epochs <- t.epochs + 1
  end;
  t.epoch_sum <- 0.;
  t.epoch_packets <- 0

let on_data t ~seq ~ts ~rtt =
  let now = Netsim.Engine.now t.engine in
  t.received <- t.received + 1;
  t.have_data <- true;
  t.last_ts <- ts;
  t.last_arrival <- now;
  t.rtt <- rtt;
  let lost =
    if not t.synced then begin
      t.synced <- true;
      t.expected <- seq + 1;
      0
    end
    else if seq >= t.expected then begin
      let l = seq - t.expected in
      t.expected <- seq + 1;
      l
    end
    else 0
  in
  (if lost > 0 && now -. t.last_event_time > rtt then begin
     (* Loss event: end the epoch and halve, as TCP would. *)
     t.last_event_time <- now;
     end_epoch t;
     t.ssthresh <- Float.max 2. (t.cwnd /. 2.);
     t.cwnd <- t.ssthresh
   end);
  (* The arrival clocks the shadow window like an ACK. *)
  if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. 1.
  else t.cwnd <- t.cwnd +. (1. /. t.cwnd);
  t.epoch_sum <- t.epoch_sum +. t.cwnd;
  t.epoch_packets <- t.epoch_packets + 1;
  if t.fb_timer = None then begin
    send_feedback t;
    schedule_feedback t
  end

let create topo ~conn ~node ~sender ?(epochs = 8) () =
  if epochs < 1 then invalid_arg "Tear.Receiver.create: epochs must be >= 1";
  let t =
    {
      topo;
      engine = Netsim.Topology.engine topo;
      conn;
      node;
      sender;
      n_epochs = epochs;
      weights = wali_weights epochs;
      cwnd = 1.;
      ssthresh = 64.;
      expected = 0;
      synced = false;
      last_event_time = neg_infinity;
      rtt = 0.5;
      epoch_sum = 0.;
      epoch_packets = 0;
      epoch_means = [];
      epochs = 0;
      last_ts = nan;
      last_arrival = nan;
      have_data = false;
      fb_timer = None;
      received = 0;
      fb_sent = 0;
    }
  in
  Netsim.Node.attach node (fun p ->
      match p.Netsim.Packet.payload with
      | Wire.Data { conn; seq; ts; rtt } when conn = t.conn ->
          on_data t ~seq ~ts ~rtt
      | _ -> ());
  t
