(** Deterministic-simulator environment for the TFMCC protocol core.

    Implements {!Tfmcc_core.Env} on top of [Netsim.Engine] /
    [Netsim.Topology]: simulated time, engine-scheduled timers, packets
    injected into the topology, multicast membership via the topology's
    group tables, and the engine's master RNG / observability sink.

    Messages travel through the simulator {e by value} (as
    [Netsim.Packet.payload] extensions), not as bytes: the simulator
    models on-the-wire size through [Packet.size] while keeping payload
    inspection free, exactly as before the Env refactor, so every golden
    trace digest is preserved.  The byte codec ({!Tfmcc_core.Wire}) is
    exercised by the real-time runtime ([Rt]) and the wire tests.

    The [Sender]/[Receiver]/[Session]/[Adversary]/[Aggregator]
    sub-modules re-export the protocol core under the pre-refactor
    node-based constructor signatures, so simulator call sites read
    unchanged modulo the module path. *)

open Tfmcc_core

type Netsim.Packet.payload +=
  | Data of Wire.data  (** multicast TFMCC data-packet header *)
  | Report of Wire.report  (** unicast receiver report *)

val payload_of_msg : Wire.msg -> Netsim.Packet.payload

val msg_of_payload : Netsim.Packet.payload -> Wire.msg option
(** [None] for non-TFMCC payloads. *)

val env : Netsim.Topology.t -> session:int -> Netsim.Node.t -> Env.t
(** The environment of one endpoint: [now]/[after]/[at] delegate to the
    topology's engine, [send] wraps the message in a packet (multicast
    to group [session], or unicast) and injects it, [join]/[leave]
    manage the node's membership of group [session], [split_rng]/[obs]
    come from the engine.  Inbound delivery is separate: attach a node
    handler that feeds [deliver] (the sub-module constructors below do
    this). *)

val attach :
  Netsim.Node.t -> (size:int -> Wire.msg -> unit) -> unit
(** Attaches a handler passing every local TFMCC payload (with its
    on-the-wire packet size) to [f]; other payloads are ignored. *)

val corrupt_packet : Stats.Rng.t -> Netsim.Packet.t -> Netsim.Packet.t
(** {!Tfmcc_core.Wire.corrupt_msg} lifted to simulator packets for
    [Netsim.Fault.corrupt]: mangles one field of a TFMCC payload into a
    hostile value; non-TFMCC payloads pass through without consuming
    randomness. *)

module Sender : sig
  include module type of Tfmcc_core.Sender

  val create :
    Netsim.Topology.t ->
    cfg:Config.t ->
    session:int ->
    node:Netsim.Node.t ->
    ?flow:int ->
    ?initial_rate:float ->
    unit ->
    t
  (** Builds the node's environment, creates the sender and attaches
      the inbound handler at [node]. *)
end

module Receiver : sig
  include module type of Tfmcc_core.Receiver

  val create :
    Netsim.Topology.t ->
    cfg:Config.t ->
    session:int ->
    node:Netsim.Node.t ->
    sender:Netsim.Node.t ->
    ?report_to:Netsim.Node.t ->
    ?clock_offset:float ->
    ?ntp_error:float ->
    ?report_flow:int ->
    unit ->
    t
end

module Session : sig
  include module type of Tfmcc_core.Session

  val create :
    Netsim.Topology.t ->
    ?cfg:Config.t ->
    session:int ->
    sender_node:Netsim.Node.t ->
    receiver_nodes:Netsim.Node.t list ->
    ?clock_offsets:float list ->
    unit ->
    t

  val add_receiver :
    Netsim.Topology.t ->
    t ->
    node:Netsim.Node.t ->
    ?clock_offset:float ->
    join_now:bool ->
    unit ->
    Receiver.t
  (** Late join (paper §4.5).  Takes the topology explicitly: the
      session value no longer holds a simulator reference. *)
end

module Adversary : sig
  include module type of Tfmcc_core.Adversary

  val create :
    Netsim.Topology.t ->
    cfg:Config.t ->
    session:int ->
    node:Netsim.Node.t ->
    sender:Netsim.Node.t ->
    strategy:strategy ->
    unit ->
    t
end

module Aggregator : sig
  include module type of Tfmcc_core.Aggregator

  val create :
    Netsim.Topology.t ->
    session:int ->
    node:Netsim.Node.t ->
    parent:Netsim.Node.t ->
    ?hold:float ->
    ?cfg:Config.t ->
    unit ->
    t
end
