open Tfmcc_core

type Netsim.Packet.payload += Data of Wire.data | Report of Wire.report

let payload_of_msg = function
  | Wire.Data d -> Data d
  | Wire.Report r -> Report r

let msg_of_payload = function
  | Data d -> Some (Wire.Data d)
  | Report r -> Some (Wire.Report r)
  | _ -> None

let env topo ~session node =
  let eng = Netsim.Topology.engine topo in
  let id = Netsim.Node.id node in
  let timer h = { Env.cancel = (fun () -> Netsim.Engine.cancel eng h) } in
  {
    Env.id;
    now = (fun () -> Netsim.Engine.now eng);
    after = (fun ~delay f -> timer (Netsim.Engine.after eng ~delay f));
    at = (fun ~time f -> timer (Netsim.Engine.at eng ~time f));
    send =
      (fun ~dest ~flow ~size msg ->
        let dst =
          match dest with
          | Env.To_group -> Netsim.Packet.Multicast session
          | Env.To_node n -> Netsim.Packet.Unicast n
        in
        Netsim.Topology.inject topo
          (Netsim.Packet.make ~flow ~size ~src:id ~dst
             ~created:(Netsim.Engine.now eng)
             (payload_of_msg msg)));
    join = (fun () -> Netsim.Topology.join topo ~group:session node);
    leave = (fun () -> Netsim.Topology.leave topo ~group:session node);
    split_rng = (fun () -> Netsim.Engine.split_rng eng);
    obs = Netsim.Engine.obs eng;
  }

let attach node f =
  Netsim.Node.attach node (fun p ->
      match msg_of_payload p.Netsim.Packet.payload with
      | Some msg -> f ~size:p.Netsim.Packet.size msg
      | None -> ())

let corrupt_packet rng (pkt : Netsim.Packet.t) =
  match msg_of_payload pkt.Netsim.Packet.payload with
  | Some msg ->
      { pkt with Netsim.Packet.payload = payload_of_msg (Wire.corrupt_msg rng msg) }
  | None -> pkt

module Sender = struct
  include Tfmcc_core.Sender

  let create topo ~cfg ~session ~node ?flow ?initial_rate () =
    let t =
      Tfmcc_core.Sender.create ~env:(env topo ~session node) ~cfg ~session
        ?flow ?initial_rate ()
    in
    attach node (fun ~size:_ msg -> deliver t msg);
    t
end

module Receiver = struct
  include Tfmcc_core.Receiver

  let create topo ~cfg ~session ~node ~sender ?report_to ?clock_offset
      ?ntp_error ?report_flow () =
    let t =
      Tfmcc_core.Receiver.create ~env:(env topo ~session node) ~cfg ~session
        ~sender:(Netsim.Node.id sender)
        ?report_to:(Option.map Netsim.Node.id report_to)
        ?clock_offset ?ntp_error ?report_flow ()
    in
    attach node (fun ~size msg -> deliver t ~size msg);
    t
end

module Session = struct
  include Tfmcc_core.Session

  let create topo ?cfg ~session ~sender_node ~receiver_nodes ?clock_offsets ()
      =
    let t =
      Tfmcc_core.Session.create
        ~sender_env:(env topo ~session sender_node)
        ?cfg ~session
        ~receiver_envs:(List.map (env topo ~session) receiver_nodes)
        ?clock_offsets ()
    in
    attach sender_node (fun ~size:_ msg ->
        Tfmcc_core.Sender.deliver (sender t) msg);
    (* [Tfmcc_core.Session.create] builds receivers in node-list order. *)
    List.iter2
      (fun node r ->
        attach node (fun ~size msg -> Tfmcc_core.Receiver.deliver r ~size msg))
      receiver_nodes (receivers t);
    t

  let add_receiver topo t ~node ?clock_offset ~join_now () =
    let r =
      Tfmcc_core.Session.add_receiver t
        ~env:(env topo ~session:(session_id t) node)
        ?clock_offset ~join_now ()
    in
    attach node (fun ~size msg -> Tfmcc_core.Receiver.deliver r ~size msg);
    r
end

module Adversary = struct
  include Tfmcc_core.Adversary

  let create topo ~cfg ~session ~node ~sender ~strategy () =
    let t =
      Tfmcc_core.Adversary.create ~env:(env topo ~session node) ~cfg ~session
        ~sender:(Netsim.Node.id sender) ~strategy ()
    in
    attach node (fun ~size:_ msg -> deliver t msg);
    t
end

module Aggregator = struct
  include Tfmcc_core.Aggregator

  let create topo ~session ~node ~parent ?hold ?cfg () =
    let t =
      Tfmcc_core.Aggregator.create ~env:(env topo ~session node) ~session
        ~parent:(Netsim.Node.id parent) ?hold ?cfg ()
    in
    attach node (fun ~size:_ msg -> deliver t msg);
    t
end
