open Tfmcc_core

type Netsim.Packet.payload += Data of Wire.data | Report of Wire.report

let payload_of_msg = function
  | Wire.Data d -> Data d
  | Wire.Report r -> Report r

let msg_of_payload = function
  | Data d -> Some (Wire.Data d)
  | Report r -> Some (Wire.Report r)
  | _ -> None

let env topo ~session node =
  let eng = Netsim.Topology.engine topo in
  let id = Netsim.Node.id node in
  let timer h = { Env.cancel = (fun () -> Netsim.Engine.cancel eng h) } in
  (* Shared by every multicast send of this endpoint: the constructor is
     immutable, so allocating it per packet would be pure garbage. *)
  let group_dst = Netsim.Packet.Multicast session in
  {
    Env.id;
    now = (fun () -> Netsim.Engine.now eng);
    after = (fun ~delay f -> timer (Netsim.Engine.after eng ~delay f));
    after_unit = (fun ~delay f -> Netsim.Engine.after_unit eng ~delay f);
    at = (fun ~time f -> timer (Netsim.Engine.at eng ~time f));
    send =
      (fun ~dest ~flow ~size msg ->
        let dst =
          match dest with
          | Env.To_group -> group_dst
          | Env.To_node n -> Netsim.Packet.Unicast n
        in
        Netsim.Topology.inject topo
          (Netsim.Packet.alloc ~flow ~size ~src:id ~dst
             ~created:(Netsim.Engine.now eng)
             (payload_of_msg msg)));
    join = (fun () -> Netsim.Topology.join topo ~group:session node);
    leave = (fun () -> Netsim.Topology.leave topo ~group:session node);
    split_rng = (fun () -> Netsim.Engine.split_rng eng);
    obs = Netsim.Engine.obs eng;
  }

let attach node f =
  Netsim.Node.attach node (fun p ->
      match msg_of_payload p.Netsim.Packet.payload with
      | Some msg -> f ~size:p.Netsim.Packet.size msg
      | None -> ())

(* Per-packet attaches for the sender/receiver hot paths: dispatch on the
   payload constructor directly, so a delivery re-boxes neither an option
   nor a [Wire.msg]. *)
let attach_receiver node r =
  Netsim.Node.attach node (fun p ->
      match p.Netsim.Packet.payload with
      | Data d -> Tfmcc_core.Receiver.deliver_data r ~size:p.Netsim.Packet.size d
      | _ -> ())

let attach_sender node s =
  Netsim.Node.attach node (fun p ->
      match p.Netsim.Packet.payload with
      | Report r -> Tfmcc_core.Sender.deliver_report s r
      | _ -> ())

let corrupt_packet rng (pkt : Netsim.Packet.t) =
  match msg_of_payload pkt.Netsim.Packet.payload with
  | Some msg ->
      Netsim.Packet.with_payload pkt (payload_of_msg (Wire.corrupt_msg rng msg))
  | None -> pkt

module Sender = struct
  include Tfmcc_core.Sender

  let create topo ~cfg ~session ~node ?flow ?initial_rate () =
    let t =
      Tfmcc_core.Sender.create ~env:(env topo ~session node) ~cfg ~session
        ?flow ?initial_rate ()
    in
    attach_sender node t;
    t
end

module Receiver = struct
  include Tfmcc_core.Receiver

  let create topo ~cfg ~session ~node ~sender ?report_to ?clock_offset
      ?ntp_error ?report_flow () =
    let t =
      Tfmcc_core.Receiver.create ~env:(env topo ~session node) ~cfg ~session
        ~sender:(Netsim.Node.id sender)
        ?report_to:(Option.map Netsim.Node.id report_to)
        ?clock_offset ?ntp_error ?report_flow ()
    in
    attach_receiver node t;
    t
end

module Session = struct
  include Tfmcc_core.Session

  let create topo ?cfg ~session ~sender_node ~receiver_nodes ?clock_offsets ()
      =
    let t =
      Tfmcc_core.Session.create
        ~sender_env:(env topo ~session sender_node)
        ?cfg ~session
        ~receiver_envs:(List.map (env topo ~session) receiver_nodes)
        ?clock_offsets ()
    in
    attach_sender sender_node (sender t);
    (* [Tfmcc_core.Session.create] builds receivers in node-list order. *)
    List.iter2
      (fun node r -> attach_receiver node r)
      receiver_nodes (receivers t);
    t

  let add_receiver topo t ~node ?clock_offset ~join_now () =
    let r =
      Tfmcc_core.Session.add_receiver t
        ~env:(env topo ~session:(session_id t) node)
        ?clock_offset ~join_now ()
    in
    attach_receiver node r;
    r
end

module Adversary = struct
  include Tfmcc_core.Adversary

  let create topo ~cfg ~session ~node ~sender ~strategy () =
    let t =
      Tfmcc_core.Adversary.create ~env:(env topo ~session node) ~cfg ~session
        ~sender:(Netsim.Node.id sender) ~strategy ()
    in
    attach node (fun ~size:_ msg -> deliver t msg);
    t
end

module Aggregator = struct
  include Tfmcc_core.Aggregator

  let create topo ~session ~node ~parent ?hold ?cfg () =
    let t =
      Tfmcc_core.Aggregator.create ~env:(env topo ~session node) ~session
        ~parent:(Netsim.Node.id parent) ?hold ?cfg ()
    in
    attach node (fun ~size:_ msg -> deliver t msg);
    t
end
