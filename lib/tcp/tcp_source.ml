type t = {
  topo : Netsim.Topology.t;
  engine : Netsim.Engine.t;
  conn : int;
  flow : int;
  src : Netsim.Node.t;
  dst : Netsim.Node.t;
  segment_size : int;
  max_cwnd : float;
  initial_cwnd : float;
  overhead : float;
  rng : Stats.Rng.t;
  mutable last_emit : float;  (* keeps jittered sends in order *)
  rto : Rto_estimator.t;
  mutable running : bool;
  mutable cwnd : float;  (* segments *)
  mutable ssthresh : float;
  mutable snd_una : int;  (* lowest unacknowledged seq *)
  mutable snd_nxt : int;  (* next seq to send *)
  mutable dupacks : int;
  mutable in_recovery : bool;
  mutable recover : int;  (* snd_nxt when recovery entered *)
  mutable rtt_seq : int;  (* segment currently being timed; -1 if none *)
  mutable rtt_sent_at : float;
  mutable retx_timer : Netsim.Engine.handle option;
  mutable sent : int;
  mutable retransmits : int;
  mutable timeouts : int;
  obs : Obs.Sink.t;
  scope : Obs.Journal.scope;
  m_sent : Obs.Metrics.Counter.t;
  m_retransmits : Obs.Metrics.Counter.t;
  m_timeouts : Obs.Metrics.Counter.t;
}

let jnl t ?severity ev =
  Obs.Sink.event t.obs ~time:(Netsim.Engine.now t.engine) ?severity t.scope ev

let journal_cwnd t ~from_pkts ~reason =
  jnl t ~severity:Obs.Journal.Debug
    (Obs.Journal.Cwnd_change { from_pkts; to_pkts = t.cwnd; reason })

let cancel_timer t =
  match t.retx_timer with
  | Some h ->
      Netsim.Engine.cancel t.engine h;
      t.retx_timer <- None
  | None -> ()

let rec restart_timer t =
  cancel_timer t;
  let delay = Rto_estimator.rto t.rto in
  t.retx_timer <- Some (Netsim.Engine.after t.engine ~delay (fun () -> on_timeout t))

and send_segment t seq =
  t.sent <- t.sent + 1;
  Obs.Metrics.Counter.inc t.m_sent;
  (* Time one segment at a time, Karn's rule: never a retransmission. *)
  if t.rtt_seq < 0 && seq >= t.snd_nxt then begin
    t.rtt_seq <- seq;
    t.rtt_sent_at <- Netsim.Engine.now t.engine
  end;
  (* ns-2's "overhead": a small random send delay that breaks the
     deterministic phase-locking between ack-clocked sources and the
     bottleneck's service clock. *)
  let emit () =
    let payload = Segment.Data { conn = t.conn; seq } in
    let p =
      Netsim.Packet.alloc ~flow:t.flow ~size:t.segment_size
        ~src:(Netsim.Node.id t.src)
        ~dst:(Netsim.Packet.Unicast (Netsim.Node.id t.dst))
        ~created:(Netsim.Engine.now t.engine)
        payload
    in
    Netsim.Topology.inject t.topo p
  in
  if t.overhead <= 0. then emit ()
  else begin
    let now = Netsim.Engine.now t.engine in
    let target = now +. Stats.Rng.float t.rng t.overhead in
    (* Never reorder segments of the same connection: a swap would look
       like out-of-order delivery and trigger spurious dupacks. *)
    let target = if target <= t.last_emit then t.last_emit +. 1e-6 else target in
    t.last_emit <- target;
    Netsim.Engine.at_unit t.engine ~time:target emit
  end

and send_available t =
  if t.running then begin
    let window = int_of_float (Float.min t.cwnd t.max_cwnd) in
    let limit = t.snd_una + Stdlib.max 1 window in
    let sent_any = ref false in
    while t.snd_nxt < limit do
      send_segment t t.snd_nxt;
      t.snd_nxt <- t.snd_nxt + 1;
      sent_any := true
    done;
    if !sent_any && t.retx_timer = None then restart_timer t
  end

and on_timeout t =
  t.retx_timer <- None;
  if t.running then begin
    t.timeouts <- t.timeouts + 1;
    Obs.Metrics.Counter.inc t.m_timeouts;
    jnl t ~severity:Obs.Journal.Warn (Obs.Journal.Timeout { what = "rto" });
    let from_pkts = t.cwnd in
    t.ssthresh <- Float.max 2. (t.cwnd /. 2.);
    t.cwnd <- 1.;
    journal_cwnd t ~from_pkts ~reason:"rto";
    t.dupacks <- 0;
    t.in_recovery <- false;
    t.rtt_seq <- -1;
    Rto_estimator.backoff t.rto;
    (* RFC 2582 "bugfix": dupacks for data sent before this timeout must
       not trigger fast retransmit (they would re-inflate the window over
       the rewound snd_nxt and burst thousands of segments). *)
    t.recover <- t.snd_nxt;
    (* Go-back-N from the first hole. *)
    t.snd_nxt <- t.snd_una;
    t.retransmits <- t.retransmits + 1;
    Obs.Metrics.Counter.inc t.m_retransmits;
    send_segment t t.snd_una;
    t.snd_nxt <- t.snd_una + 1;
    restart_timer t
  end

let fast_retransmit t =
  let from_pkts = t.cwnd in
  t.ssthresh <- Float.max 2. (t.cwnd /. 2.);
  t.in_recovery <- true;
  t.recover <- t.snd_nxt;
  t.retransmits <- t.retransmits + 1;
  Obs.Metrics.Counter.inc t.m_retransmits;
  t.rtt_seq <- -1;
  send_segment t t.snd_una;
  t.cwnd <- t.ssthresh +. 3.;
  journal_cwnd t ~from_pkts ~reason:"fast-retransmit";
  restart_timer t

let on_new_ack t ack =
  (* RTT sample if the timed segment is covered and was never
     retransmitted (rtt_seq is invalidated on retransmission). *)
  if t.rtt_seq >= 0 && ack > t.rtt_seq then begin
    let sample = Netsim.Engine.now t.engine -. t.rtt_sent_at in
    if sample > 0. then Rto_estimator.observe t.rto sample;
    t.rtt_seq <- -1
  end;
  t.snd_una <- ack;
  t.dupacks <- 0;
  if t.in_recovery then begin
    (* Reno: deflate to ssthresh on the first new ACK. *)
    t.in_recovery <- false;
    let from_pkts = t.cwnd in
    t.cwnd <- t.ssthresh;
    journal_cwnd t ~from_pkts ~reason:"recovery-exit"
  end
  else if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. 1.
  else t.cwnd <- t.cwnd +. (1. /. t.cwnd);
  if t.cwnd > t.max_cwnd then t.cwnd <- t.max_cwnd;
  if t.snd_nxt > t.snd_una then restart_timer t else cancel_timer t;
  send_available t

let on_dupack t =
  t.dupacks <- t.dupacks + 1;
  if (not t.in_recovery) && t.dupacks = 3 then begin
    (* RFC 2582 bugfix: only data sent after the last recovery episode
       may trigger a new fast retransmit. *)
    if t.snd_una > t.recover then begin
      fast_retransmit t;
      send_available t
    end
  end
  else if t.in_recovery then begin
    (* Window inflation: each further dupack signals a departed packet. *)
    t.cwnd <- t.cwnd +. 1.;
    send_available t
  end

let on_ack t ack =
  if t.running then begin
    if ack > t.snd_una then on_new_ack t ack
    else if ack = t.snd_una && t.snd_nxt > t.snd_una then on_dupack t
  end

let create topo ~conn ~flow ~src ~dst ?(segment_size = Segment.data_size)
    ?(initial_cwnd = 1.) ?(max_cwnd = 10000.) ?(overhead = 0.001) () =
  if segment_size <= 0 then invalid_arg "Tcp_source.create: segment size";
  let obs = Netsim.Engine.obs (Netsim.Topology.engine topo) in
  let metrics = obs.Obs.Sink.metrics in
  let labels = [ ("conn", string_of_int conn) ] in
  let t =
    {
      topo;
      engine = Netsim.Topology.engine topo;
      conn;
      flow;
      src;
      dst;
      segment_size;
      max_cwnd;
      initial_cwnd;
      overhead;
      rng = Netsim.Engine.split_rng (Netsim.Topology.engine topo);
      last_emit = neg_infinity;
      rto = Rto_estimator.create ();
      running = false;
      cwnd = initial_cwnd;
      ssthresh = max_cwnd;
      snd_una = 0;
      snd_nxt = 0;
      dupacks = 0;
      in_recovery = false;
      recover = 0;
      rtt_seq = -1;
      rtt_sent_at = 0.;
      retx_timer = None;
      sent = 0;
      retransmits = 0;
      timeouts = 0;
      obs;
      scope =
        Obs.Journal.scope ~session:conn ~node:(Netsim.Node.id src) "tcp.source";
      m_sent = Obs.Metrics.counter metrics ~labels "tcp_segments_sent_total";
      m_retransmits = Obs.Metrics.counter metrics ~labels "tcp_retransmits_total";
      m_timeouts = Obs.Metrics.counter metrics ~labels "tcp_timeouts_total";
    }
  in
  Netsim.Node.attach src (fun p ->
      match p.Netsim.Packet.payload with
      | Segment.Ack { conn; ack } when conn = t.conn -> on_ack t ack
      | _ -> ());
  t

let start t ~at =
  t.running <- true;
  ignore
    (Netsim.Engine.at t.engine ~time:at (fun () ->
         t.cwnd <- t.initial_cwnd;
         send_available t))

let stop t =
  t.running <- false;
  cancel_timer t

let cwnd t = t.cwnd

let ssthresh t = t.ssthresh

let in_recovery t = t.in_recovery

let segments_sent t = t.sent

let retransmits t = t.retransmits

let timeouts t = t.timeouts

let srtt t = Rto_estimator.srtt t.rto

let highest_ack t = t.snd_una
