module Int_set = Set.Make (Int)

type t = {
  topo : Netsim.Topology.t;
  engine : Netsim.Engine.t;
  conn : int;
  node : Netsim.Node.t;
  ack_flow : int;
  mutable next_expected : int;
  mutable buffered : Int_set.t;  (* received above the hole *)
  mutable received : int;
  mutable bytes : int;
  mutable out_of_order : int;
}

let advance t =
  while Int_set.mem t.next_expected t.buffered do
    t.buffered <- Int_set.remove t.next_expected t.buffered;
    t.next_expected <- t.next_expected + 1
  done

let send_ack t ~to_node =
  let payload = Segment.Ack { conn = t.conn; ack = t.next_expected } in
  let p =
    Netsim.Packet.alloc ~flow:t.ack_flow ~size:Segment.ack_size
      ~src:(Netsim.Node.id t.node)
      ~dst:(Netsim.Packet.Unicast to_node)
      ~created:(Netsim.Engine.now t.engine)
      payload
  in
  Netsim.Topology.inject t.topo p

let on_data t (p : Netsim.Packet.t) seq =
  t.received <- t.received + 1;
  t.bytes <- t.bytes + p.size;
  if seq = t.next_expected then begin
    t.next_expected <- t.next_expected + 1;
    advance t
  end
  else if seq > t.next_expected then begin
    if not (Int_set.mem seq t.buffered) then begin
      t.buffered <- Int_set.add seq t.buffered;
      t.out_of_order <- t.out_of_order + 1
    end
  end;
  (* else: duplicate of an already-delivered segment; ack anyway *)
  send_ack t ~to_node:p.src

let create topo ~conn ~node ?(ack_flow = -1) () =
  let t =
    {
      topo;
      engine = Netsim.Topology.engine topo;
      conn;
      node;
      ack_flow;
      next_expected = 0;
      buffered = Int_set.empty;
      received = 0;
      bytes = 0;
      out_of_order = 0;
    }
  in
  Netsim.Node.attach node (fun p ->
      match p.Netsim.Packet.payload with
      | Segment.Data { conn; seq } when conn = t.conn -> on_data t p seq
      | _ -> ());
  t

let next_expected t = t.next_expected

let segments_received t = t.received

let bytes_received t = t.bytes

let out_of_order t = t.out_of_order
