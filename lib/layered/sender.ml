type t = {
  topo : Netsim.Topology.t;
  engine : Netsim.Engine.t;
  session : int;
  node : Netsim.Node.t;
  n_layers : int;
  cumulative : float array;  (* bytes/s through layer l *)
  layer_rate : float array;  (* bytes/s of layer l alone *)
  flow : int;
  rng : Stats.Rng.t;
  mutable running : bool;
  mutable seqs : int array;
  mutable timers : Netsim.Engine.handle option array;
  mutable sent : int;
}

let layers t = t.n_layers

let cumulative_rate t ~layer =
  if layer < 0 || layer >= t.n_layers then invalid_arg "Layered.Sender.cumulative_rate";
  t.cumulative.(layer)

let packets_sent t = t.sent

let send_layer t layer =
  let now = Netsim.Engine.now t.engine in
  let payload =
    Wire.Data
      {
        session = t.session;
        layer;
        seq = t.seqs.(layer);
        ts = now;
        cumulative_rate = t.cumulative.(layer);
        next_cumulative =
          (if layer + 1 < t.n_layers then t.cumulative.(layer + 1) else nan);
      }
  in
  t.seqs.(layer) <- t.seqs.(layer) + 1;
  t.sent <- t.sent + 1;
  let p =
    Netsim.Packet.alloc ~flow:(t.flow + layer) ~size:Wire.data_size
      ~src:(Netsim.Node.id t.node)
      ~dst:(Netsim.Packet.Multicast (Wire.group_of ~session:t.session ~layer))
      ~created:now payload
  in
  Netsim.Topology.inject t.topo p

let rec schedule_layer t layer =
  if t.running then begin
    let jitter = 0.75 +. (0.5 *. Stats.Rng.uniform t.rng) in
    let delay = jitter *. float_of_int Wire.data_size /. t.layer_rate.(layer) in
    t.timers.(layer) <-
      Some
        (Netsim.Engine.after t.engine ~delay (fun () ->
             t.timers.(layer) <- None;
             if t.running then begin
               send_layer t layer;
               schedule_layer t layer
             end))
  end

let create topo ~session ~node ?(layers = 6) ?(base_rate = 16_000.)
    ?(growth = 2.) ?flow () =
  if layers < 1 then invalid_arg "Layered.Sender.create: need at least one layer";
  if base_rate <= 0. then invalid_arg "Layered.Sender.create: base_rate";
  if growth <= 1. then invalid_arg "Layered.Sender.create: growth must exceed 1";
  let cumulative =
    Array.init layers (fun l -> base_rate *. (growth ** float_of_int l))
  in
  let layer_rate =
    Array.init layers (fun l ->
        if l = 0 then cumulative.(0) else cumulative.(l) -. cumulative.(l - 1))
  in
  let engine = Netsim.Topology.engine topo in
  {
    topo;
    engine;
    session;
    node;
    n_layers = layers;
    cumulative;
    layer_rate;
    flow = Option.value flow ~default:(session * 64);
    rng = Netsim.Engine.split_rng engine;
    running = false;
    seqs = Array.make layers 0;
    timers = Array.make layers None;
    sent = 0;
  }

let start t ~at =
  t.running <- true;
  ignore
    (Netsim.Engine.at t.engine ~time:at (fun () ->
         for l = 0 to t.n_layers - 1 do
           send_layer t l;
           schedule_layer t l
         done))

let stop t =
  t.running <- false;
  Array.iteri
    (fun i h ->
      match h with
      | Some hd ->
          Netsim.Engine.cancel t.engine hd;
          t.timers.(i) <- None
      | None -> ())
    t.timers
