(* EWMA gain for the per-packet loss indicator. *)
let loss_gain = 0.02

type t = {
  topo : Netsim.Topology.t;
  engine : Netsim.Engine.t;
  session : int;
  node : Netsim.Node.t;
  sender : Netsim.Node.t;
  nak_min_interval : float;
  rng : Stats.Rng.t;
  mutable joined : bool;
  mutable expected : int;
  mutable synced : bool;
  mutable loss : float;
  mutable is_acker : bool;
  mutable last_ts : float;
  mutable greeted : bool;  (* initial ACK sent *)
  mutable last_nak : float;
  mutable received : int;
  mutable naks : int;
  mutable acks : int;
}

let node_id t = Netsim.Node.id t.node

let is_acker t = t.is_acker

let loss_estimate t = t.loss

let packets_received t = t.received

let naks_sent t = t.naks

let acks_sent t = t.acks

let send_ack t ~ack_seq =
  let now = Netsim.Engine.now t.engine in
  let payload =
    Wire.Ack
      {
        session = t.session;
        rx_id = node_id t;
        ack_seq;
        ts = now;
        echo_ts = t.last_ts;
        loss = t.loss;
      }
  in
  let p =
    Netsim.Packet.alloc ~flow:(-1) ~size:Wire.ack_size ~src:(node_id t)
      ~dst:(Netsim.Packet.Unicast (Netsim.Node.id t.sender))
      ~created:now payload
  in
  Netsim.Topology.inject t.topo p;
  t.acks <- t.acks + 1

let send_nak t ~lost_seq =
  let now = Netsim.Engine.now t.engine in
  let payload =
    Wire.Nak
      {
        session = t.session;
        rx_id = node_id t;
        lost_seq;
        ts = now;
        echo_ts = t.last_ts;
        loss = t.loss;
      }
  in
  let p =
    Netsim.Packet.alloc ~flow:(-1) ~size:Wire.nak_size ~src:(node_id t)
      ~dst:(Netsim.Packet.Unicast (Netsim.Node.id t.sender))
      ~created:now payload
  in
  Netsim.Topology.inject t.topo p;
  t.naks <- t.naks + 1;
  t.last_nak <- now

let on_data t ~seq ~ts ~acker =
  let now = Netsim.Engine.now t.engine in
  t.received <- t.received + 1;
  t.last_ts <- ts;
  t.is_acker <- acker = node_id t;
  let lost =
    if not t.synced then begin
      t.synced <- true;
      t.expected <- seq + 1;
      0
    end
    else if seq >= t.expected then begin
      let l = seq - t.expected in
      t.expected <- seq + 1;
      l
    end
    else 0
  in
  (* Smoothed loss fraction: fold in [lost] misses and one hit. *)
  for _ = 1 to lost do
    t.loss <- ((1. -. loss_gain) *. t.loss) +. loss_gain
  done;
  t.loss <- (1. -. loss_gain) *. t.loss;
  if not t.greeted then begin
    (* Initial report, randomly delayed, so the sender can elect a first
       acker. *)
    t.greeted <- true;
    ignore
      (Netsim.Engine.after t.engine
         ~delay:(Stats.Rng.float t.rng 0.2)
         (fun () -> if t.joined then send_ack t ~ack_seq:(t.expected - 1)))
  end;
  if t.is_acker then begin
    (* The acker signals loss immediately (the sender's halving trigger)
       and acks every arrival. *)
    if lost > 0 then send_nak t ~lost_seq:(t.expected - 1);
    send_ack t ~ack_seq:(t.expected - 1)
  end
  else if lost > 0 && now -. t.last_nak >= t.nak_min_interval then begin
    (* Non-acker loss report, randomly delayed a little to decorrelate
       (stands in for PGMCC's NAK suppression/aggregation). *)
    let seq0 = t.expected - 1 in
    ignore
      (Netsim.Engine.after t.engine
         ~delay:(Stats.Rng.float t.rng 0.05)
         (fun () -> if t.joined then send_nak t ~lost_seq:seq0))
  end

let create topo ~session ~node ~sender ?(nak_min_interval = 0.25) () =
  let engine = Netsim.Topology.engine topo in
  let t =
    {
      topo;
      engine;
      session;
      node;
      sender;
      nak_min_interval;
      rng = Netsim.Engine.split_rng engine;
      joined = false;
      expected = 0;
      synced = false;
      loss = 0.;
      is_acker = false;
      last_ts = nan;
      greeted = false;
      last_nak = neg_infinity;
      received = 0;
      naks = 0;
      acks = 0;
    }
  in
  Netsim.Node.attach node (fun p ->
      match p.Netsim.Packet.payload with
      | Wire.Data { session; seq; ts; acker; window = _ } when session = t.session
        ->
          if t.joined then on_data t ~seq ~ts ~acker
      | _ -> ());
  t

let join t =
  if not t.joined then begin
    t.joined <- true;
    Netsim.Topology.join t.topo ~group:t.session t.node
  end

let leave t =
  if t.joined then begin
    t.joined <- false;
    Netsim.Topology.leave t.topo ~group:t.session t.node
  end
