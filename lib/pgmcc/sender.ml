type peer = { mutable p_rtt : float; mutable p_loss : float; mutable p_seen : float }

type t = {
  topo : Netsim.Topology.t;
  engine : Netsim.Engine.t;
  session : int;
  node : Netsim.Node.t;
  flow : int;
  s : int;
  hysteresis : float;
  peers : (int, peer) Hashtbl.t;
  mutable running : bool;
  mutable seq : int;
  mutable acked : int;  (* highest seq the acker has acked *)
  mutable window : float;
  mutable ssthresh : float;
  mutable acker : int;  (* -1 none *)
  mutable acker_rtt : float;
  mutable last_halving : float;
  mutable idle_timer : Netsim.Engine.handle option;
  mutable sent : int;
  mutable acker_changes : int;
  mutable halvings : int;
  obs : Obs.Sink.t;
  scope : Obs.Journal.scope;
  m_sent : Obs.Metrics.Counter.t;
  m_acker_changes : Obs.Metrics.Counter.t;
  m_halvings : Obs.Metrics.Counter.t;
}

let jnl t ?severity ev =
  Obs.Sink.event t.obs ~time:(Netsim.Engine.now t.engine) ?severity t.scope ev

(* PGMCC's acker is the group's limiting receiver, the analogue of
   TFMCC's CLR, so its election reuses the Clr_change event. *)
let note_acker_change t ~prev ~acker =
  t.acker_changes <- t.acker_changes + 1;
  Obs.Metrics.Counter.inc t.m_acker_changes;
  jnl t (Obs.Journal.Clr_change { prev; clr = acker })

let window t = t.window

let acker t = if t.acker < 0 then None else Some t.acker

let packets_sent t = t.sent

let acker_changes t = t.acker_changes

let halvings t = t.halvings

let rate_estimate_bytes_per_s t =
  if t.acker < 0 then 0.
  else t.window *. float_of_int t.s /. Float.max 1e-3 t.acker_rtt

(* Simplified model used for the election: T ∝ 1 / (R √p).  A receiver
   with no measured loss is treated as very fast. *)
let modelled_throughput ~rtt ~loss =
  let rtt = Float.max 1e-3 rtt in
  if loss <= 1e-6 then 1e12 else 1. /. (rtt *. sqrt loss)

let cancel_idle t =
  match t.idle_timer with
  | Some h ->
      Netsim.Engine.cancel t.engine h;
      t.idle_timer <- None
  | None -> ()

let send_packet t =
  let now = Netsim.Engine.now t.engine in
  let payload =
    Wire.Data { session = t.session; seq = t.seq; ts = now; acker = t.acker; window = t.window }
  in
  let p =
    Netsim.Packet.alloc ~flow:t.flow ~size:t.s ~src:(Netsim.Node.id t.node)
      ~dst:(Netsim.Packet.Multicast t.session) ~created:now payload
  in
  t.seq <- t.seq + 1;
  t.sent <- t.sent + 1;
  Obs.Metrics.Counter.inc t.m_sent;
  Netsim.Topology.inject t.topo p

(* Idle/timeout guard: with no acks for a while (acker silent or not yet
   elected), collapse the window and emit a probe so the session cannot
   deadlock. *)
let rec restart_idle t =
  cancel_idle t;
  let delay = Float.max 0.2 (4. *. t.acker_rtt) in
  t.idle_timer <-
    Some
      (Netsim.Engine.after t.engine ~delay (fun () ->
           t.idle_timer <- None;
           if t.running then begin
             if t.acker >= 0 then begin
               jnl t ~severity:Obs.Journal.Warn
                 (Obs.Journal.Timeout { what = "idle" });
               let from_pkts = t.window in
               t.ssthresh <- Float.max 2. (t.window /. 2.);
               t.window <- 1.;
               jnl t ~severity:Obs.Journal.Debug
                 (Obs.Journal.Cwnd_change
                    { from_pkts; to_pkts = t.window; reason = "idle-collapse" })
             end;
             t.acked <- t.seq - 1;
             send_packet t;
             restart_idle t
           end))

let send_window t =
  let inflight () = t.seq - 1 - t.acked in
  while t.running && float_of_int (inflight ()) < t.window do
    send_packet t
  done

let update_peer t ~rx ~echo_ts ~loss =
  let now = Netsim.Engine.now t.engine in
  let rtt = now -. echo_ts in
  if rtt > 0. then begin
    let peer =
      match Hashtbl.find_opt t.peers rx with
      | Some p -> p
      | None ->
          let p = { p_rtt = rtt; p_loss = loss; p_seen = now } in
          Hashtbl.add t.peers rx p;
          p
    in
    peer.p_rtt <- (0.7 *. peer.p_rtt) +. (0.3 *. rtt);
    peer.p_loss <- loss;
    peer.p_seen <- now
  end

let maybe_switch_acker t ~rx =
  if rx <> t.acker then begin
    match (Hashtbl.find_opt t.peers rx, Hashtbl.find_opt t.peers t.acker) with
    | Some cand, Some cur ->
        let t_cand = modelled_throughput ~rtt:cand.p_rtt ~loss:cand.p_loss in
        let t_cur = modelled_throughput ~rtt:cur.p_rtt ~loss:cur.p_loss in
        if t_cand < t.hysteresis *. t_cur then begin
          let prev = t.acker in
          t.acker <- rx;
          t.acker_rtt <- cand.p_rtt;
          note_acker_change t ~prev ~acker:rx;
          (* Catch up the ack clock so the new acker's acks take over. *)
          t.acked <- t.seq - 1
        end
    | Some cand, None ->
        let prev = t.acker in
        t.acker <- rx;
        t.acker_rtt <- cand.p_rtt;
        note_acker_change t ~prev ~acker:rx
    | None, _ -> ()
  end

let halve t =
  let now = Netsim.Engine.now t.engine in
  if now -. t.last_halving >= t.acker_rtt then begin
    let from_pkts = t.window in
    t.ssthresh <- Float.max 2. (t.window /. 2.);
    t.window <- t.ssthresh;
    t.last_halving <- now;
    t.halvings <- t.halvings + 1;
    Obs.Metrics.Counter.inc t.m_halvings;
    jnl t ~severity:Obs.Journal.Debug
      (Obs.Journal.Cwnd_change
         { from_pkts; to_pkts = t.window; reason = "nak-halve" })
  end

let on_ack t ~rx ~ack_seq ~echo_ts ~loss =
  update_peer t ~rx ~echo_ts ~loss;
  if t.acker < 0 then begin
    (* First report elects the first acker. *)
    t.acker <- rx;
    t.acker_rtt <- (Hashtbl.find t.peers rx).p_rtt;
    note_acker_change t ~prev:(-1) ~acker:rx
  end
  else maybe_switch_acker t ~rx;
  if rx = t.acker then begin
    (match Hashtbl.find_opt t.peers rx with
    | Some p -> t.acker_rtt <- p.p_rtt
    | None -> ());
    if ack_seq > t.acked then begin
      let newly = ack_seq - t.acked in
      t.acked <- ack_seq;
      for _ = 1 to newly do
        if t.window < t.ssthresh then t.window <- t.window +. 1.
        else t.window <- t.window +. (1. /. t.window)
      done;
      restart_idle t;
      send_window t
    end
  end

let on_nak t ~rx ~echo_ts ~loss =
  update_peer t ~rx ~echo_ts ~loss;
  if t.acker < 0 then on_ack t ~rx ~ack_seq:(-1) ~echo_ts ~loss
  else begin
    maybe_switch_acker t ~rx;
    if rx = t.acker then begin
      halve t;
      send_window t
    end
  end

let create topo ~session ~node ?flow ?(packet_size = 1000) ?(hysteresis = 0.75)
    () =
  let obs = Netsim.Engine.obs (Netsim.Topology.engine topo) in
  let metrics = obs.Obs.Sink.metrics in
  let labels = [ ("session", string_of_int session) ] in
  let t =
    {
      topo;
      engine = Netsim.Topology.engine topo;
      session;
      node;
      flow = Option.value flow ~default:session;
      s = packet_size;
      hysteresis;
      peers = Hashtbl.create 32;
      running = false;
      seq = 0;
      acked = -1;
      window = 1.;
      ssthresh = 64.;
      acker = -1;
      acker_rtt = 0.2;
      last_halving = neg_infinity;
      idle_timer = None;
      sent = 0;
      acker_changes = 0;
      halvings = 0;
      obs;
      scope =
        Obs.Journal.scope ~session ~node:(Netsim.Node.id node) "pgmcc.sender";
      m_sent = Obs.Metrics.counter metrics ~labels "pgmcc_packets_sent_total";
      m_acker_changes =
        Obs.Metrics.counter metrics ~labels "pgmcc_acker_changes_total";
      m_halvings = Obs.Metrics.counter metrics ~labels "pgmcc_halvings_total";
    }
  in
  Netsim.Node.attach node (fun p ->
      match p.Netsim.Packet.payload with
      | Wire.Ack { session; rx_id; ack_seq; ts = _; echo_ts; loss }
        when session = t.session ->
          if t.running then on_ack t ~rx:rx_id ~ack_seq ~echo_ts ~loss
      | Wire.Nak { session; rx_id; lost_seq = _; ts = _; echo_ts; loss }
        when session = t.session ->
          if t.running then on_nak t ~rx:rx_id ~echo_ts ~loss
      | _ -> ());
  t

let start t ~at =
  t.running <- true;
  ignore
    (Netsim.Engine.at t.engine ~time:at (fun () ->
         send_packet t;
         restart_idle t))

let stop t =
  t.running <- false;
  cancel_idle t
