(** Hashed timer wheel.

    The real-time event loop schedules hundreds of thousands of protocol
    timers (packet pacing, feedback rounds, impairment-delayed
    deliveries); a wheel gives O(1) schedule/cancel where the
    simulator's binary heap pays O(log n) per event.  Near timers (due
    within [slots] x [slot_s] of the cursor) hash into per-tick buckets;
    far timers wait in an overflow heap and migrate into the wheel as
    the cursor approaches.

    Determinism: callbacks fire in nondecreasing deadline order, ties
    broken by insertion sequence — two runs that schedule identically
    fire identically, which the time-translation property test and the
    turbo (virtual-time) loop mode rely on. *)

type t

type timer
(** Handle for {!cancel}.  Cancellation is O(1) (a tombstone flag); the
    slot is reclaimed when its tick is processed. *)

val create : ?slot_s:float -> ?slots:int -> start:float -> unit -> t
(** [slot_s] is the tick granularity in seconds (default 1 ms) — timers
    still fire at their exact deadline, the granularity only sizes the
    buckets.  [slots] is the wheel size (default 4096, giving a ~4 s
    near horizon).  [start] is the initial clock value; deadlines
    earlier than the cursor fire on the next {!advance}. *)

val schedule : t -> at:float -> (unit -> unit) -> timer

val cancel : timer -> unit
(** Idempotent; cancelling an already-fired timer is a no-op. *)

val next_due : t -> float option
(** Earliest pending (non-cancelled) deadline, or [None] when the wheel
    is empty.  The turbo loop jumps the virtual clock here; the
    realtime loop sleeps until it. *)

val advance : t -> now:float -> ?late:(float -> unit) -> unit -> int
(** Fires every pending callback with deadline <= [now], in order, and
    moves the cursor to [now].  Callbacks may schedule or cancel timers
    freely; newly scheduled timers already due fire within the same
    advance, after the batch that spawned them (zero-delay chains must
    be finite — TFMCC's timers are paced, and a runaway chain fails
    loudly rather than hanging).  [late] is called with [now - deadline]
    for each fired timer, letting the loop count real-clock tardiness.
    Returns the number of callbacks fired. *)

val pending : t -> int
(** Live (scheduled, not yet fired or cancelled) timers. *)

val fired : t -> int
(** Total callbacks fired over the wheel's lifetime. *)
