(** In-process loopback datagram fabric.

    The scalable transport for the real-time runtime: endpoints exchange
    real codec frames ({!Tfmcc_core.Wire.encode_report} /
    [encode_data] on send, {!Tfmcc_core.Wire.decode} on receive) over
    an in-memory switch instead of kernel sockets, so one process can
    carry thousands of concurrent sessions without file-descriptor
    limits (see {!Udp} for the socket-backed sibling).  Multicast is
    modelled as per-session group membership: [To_group] fans a frame
    out to every joined member except the sender, [To_node] unicasts.

    A netem-style impairment shim sits on every delivery: independent
    Bernoulli loss, fixed base delay, and uniform jitter, drawn from one
    RNG stream split off the loop's master seed — so a turbo-mode run
    is reproducible end to end.

    Frames that fail to encode (non-finite field escaping the protocol
    core) are dropped and counted under [tfmcc_rt_frame_drop_total
    {reason="encode"}] rather than crashing the loop; undecodable
    frames count [reason="decode"]. *)

type t

type endpoint

type impairment = {
  loss : float;
  delay : float;
  jitter : float;
  warmup : float;
}
(** [loss] is a per-frame drop probability in [0,1]; [delay] a fixed
    one-way latency in seconds; [jitter] the width of a uniform extra
    delay in seconds.  [warmup] holds the loss dice until that many
    seconds after fabric creation (netem-style staged impairment):
    random loss during the first slowstart rounds seeds WALI with a
    pathologically high p (App. B inverts a tiny x_recv), which is
    faithful protocol behavior but makes a short soak unreadable —
    real paths lose packets once rates approach capacity, not on the
    first packet. *)

val impairment :
  ?loss:float -> ?delay:float -> ?jitter:float -> ?warmup:float -> unit -> impairment

val create : Loop.t -> ?impair:impairment -> unit -> t
(** Default impairment: lossless, zero delay. *)

val endpoint : t -> session:int -> endpoint
(** Allocates an endpoint (fresh id) bound to the given session's
    multicast group.  It receives nothing until its deliver hook is set
    and — for group traffic — its environment's [join] runs. *)

val env : endpoint -> Tfmcc_core.Env.t
(** The {!Tfmcc_core.Env.t} handing this endpoint's IO to the fabric.
    [split_rng] draws from the loop's master RNG in call order, like the
    simulator's engine. *)

val set_deliver : endpoint -> (size:int -> Tfmcc_core.Wire.msg -> unit) -> unit
(** Installs the inbound hook ([Sender.deliver] / [Receiver.deliver]).
    [size] is the on-the-wire frame length in bytes (data frames are
    padded up to the [size] the sender passed, mirroring the simulated
    packet size). *)

val endpoint_id : endpoint -> int

(* Fabric-wide counters (also exported as [tfmcc_rt_*] metrics). *)

val frames_sent : t -> int
(** Frames offered to the fabric times destinations (a group send to
    [n] members counts [n]). *)

val frames_delivered : t -> int

val frames_lost : t -> int
(** Dropped by the impairment shim's loss draw. *)

val encode_drops : t -> int

val decode_errors : t -> int
