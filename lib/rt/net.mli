(** In-process loopback datagram fabric.

    The scalable transport for the real-time runtime: endpoints exchange
    real codec frames ({!Tfmcc_core.Wire.encode_report} /
    [encode_data] on send, {!Tfmcc_core.Wire.decode} on receive) over
    an in-memory switch instead of kernel sockets, so one process can
    carry thousands of concurrent sessions without file-descriptor
    limits (see {!Udp} for the socket-backed sibling).  Multicast is
    modelled as per-session group membership: [To_group] fans a frame
    out to every joined member except the sender, [To_node] unicasts.

    A netem-style impairment shim sits on every delivery: independent
    Bernoulli loss, fixed base delay, and uniform jitter, drawn from one
    RNG stream split off the loop's master seed — so a turbo-mode run
    is reproducible end to end.

    Frames that fail to encode (non-finite field escaping the protocol
    core) are dropped and counted under [tfmcc_rt_frame_drop_total
    {reason="encode"}] rather than crashing the loop; undecodable
    frames count [reason="decode"].

    The fabric also exposes chaos hooks (driven by {!Chaos} plans,
    DESIGN.md §15): the whole fabric can flap down/up, individual
    endpoints can be blocked (partitioned/churned — frames to {e or}
    from a blocked endpoint are dropped at send time, counted under
    [reason="partition"]; fabric-down drops count [reason="flap"]),
    and the impairment profile can be rewritten mid-run.  All chaos
    mutations happen from loop timers, so a turbo-mode chaos run is
    as deterministic as a clean one. *)

type t

type endpoint

type impairment = {
  loss : float;
  delay : float;
  jitter : float;
  warmup : float;
}
(** [loss] is a per-frame drop probability in [0,1]; [delay] a fixed
    one-way latency in seconds; [jitter] the width of a uniform extra
    delay in seconds.  [warmup] holds the loss dice until that many
    seconds after fabric creation (netem-style staged impairment):
    random loss during the first slowstart rounds seeds WALI with a
    pathologically high p (App. B inverts a tiny x_recv), which is
    faithful protocol behavior but makes a short soak unreadable —
    real paths lose packets once rates approach capacity, not on the
    first packet. *)

val impairment :
  ?loss:float -> ?delay:float -> ?jitter:float -> ?warmup:float -> unit -> impairment

val create : Loop.t -> ?impair:impairment -> unit -> t
(** Default impairment: lossless, zero delay. *)

val endpoint : t -> session:int -> endpoint
(** Allocates an endpoint (fresh id) bound to the given session's
    multicast group.  It receives nothing until its deliver hook is set
    and — for group traffic — its environment's [join] runs. *)

val env : endpoint -> Tfmcc_core.Env.t
(** The {!Tfmcc_core.Env.t} handing this endpoint's IO to the fabric.
    [split_rng] draws from the loop's master RNG in call order, like the
    simulator's engine. *)

val set_deliver : endpoint -> (size:int -> Tfmcc_core.Wire.msg -> unit) -> unit
(** Installs the inbound hook ([Sender.deliver] / [Receiver.deliver]).
    [size] is the on-the-wire frame length in bytes (data frames are
    padded up to the [size] the sender passed, mirroring the simulated
    packet size). *)

val endpoint_id : endpoint -> int

val loop : t -> Loop.t

val sessions : t -> int list
(** Session ids with at least one group (joined) member, sorted. *)

val members : t -> int -> int list
(** Joined endpoint ids of a session's group, sorted.  Receivers only:
    the sender unicasts into the group without joining it, so chaos
    churn drawn from this list never takes a sender down. *)

(* Chaos hooks.  These are the primitives {!Chaos} plans compile to;
   they can also be driven directly (the harness uses [block] to
   partition a session's CLR).  In-flight frames are not recalled:
   a block/flap only affects frames offered after it lands. *)

val set_fabric_up : t -> bool -> unit
(** [false] drops every subsequently offered frame
    ([tfmcc_rt_frame_drop_total{reason="flap"}]) until set back. *)

val fabric_up : t -> bool

val block : t -> int -> unit
(** Partitions endpoint [id]: frames from or to it are dropped
    ([reason="partition"]).  Refcounted — overlapping chaos windows may
    block the same endpoint more than once, and it only resurfaces when
    every window has called {!unblock}. *)

val unblock : t -> int -> unit

val is_blocked : t -> int -> bool

val blocked_count : t -> int
(** Endpoints currently blocked (distinct ids, not refcounts). *)

val set_impair : t -> impairment -> unit
(** Replaces the impairment profile mid-run (time-varying loss/delay
    schedules).  The warmup hold-off keeps its original absolute
    deadline — it is a property of the fabric's first seconds, not of
    the current profile. *)

val current_impair : t -> impairment

val base_impair : t -> impairment
(** The profile the fabric was created with (what chaos windows restore). *)

(* Fabric-wide counters (also exported as [tfmcc_rt_*] metrics). *)

val frames_sent : t -> int
(** Frames offered to the fabric times destinations (a group send to
    [n] members counts [n]). *)

val frames_delivered : t -> int

val frames_lost : t -> int
(** Dropped by the impairment shim's loss draw. *)

val encode_drops : t -> int

val decode_errors : t -> int

val partition_drops : t -> int
(** Frames dropped because an endpoint on the path was blocked. *)

val flap_drops : t -> int
(** Frames dropped while the fabric was down. *)
