(** Declarative chaos plans for the real-time loopback fabric.

    The rt port of the {!Netsim.Fault} repertoire (DESIGN.md §15): a
    [plan] is a list of timed impairment windows that {!apply} compiles
    into ordinary loop timers against a {!Net.t}'s chaos hooks.  Because
    every mutation fires from the wheel and every random choice (churn
    victim selection) draws from a stream split off the loop's master
    RNG at [apply] time, a turbo-mode chaos run is exactly as
    deterministic as a clean one — two runs with the same seed and the
    same plan are byte-identical.

    All times in a [plan] are {e relative to the moment [apply] is
    called}, which preserves the runtime's time-translation invariance:
    shifting the loop epoch shifts every chaos event with it.

    Each fired event is journaled under component ["rt.chaos"]
    ({!Obs.Journal.Fault}, kinds [flap_down]/[flap_up], [partition]/
    [partition_heal], [churn_down]/[churn_up], [loss_burst]/
    [loss_burst_end], [delay_shift]/[delay_shift_end]) and counted under
    [tfmcc_rt_chaos_events_total{kind}]. *)

type spec =
  | Flap of { down_at : float; up_at : float }
      (** The whole fabric drops every frame in [down_at, up_at). *)
  | Partition of { endpoints : int list; from_ : float; until : float }
      (** The listed endpoints are unreachable (frames from {e or} to
          them are dropped) for the window.  Blocks are refcounted by
          {!Net.block}, so overlapping windows compose. *)
  | Loss_burst of { from_ : float; until : float; loss : float }
      (** Raises the fabric's Bernoulli loss to [loss] for the window,
          then restores the creation-time rate. *)
  | Delay_shift of { from_ : float; until : float; delay : float; jitter : float }
      (** Replaces base delay/jitter for the window (path migration,
          bufferbloat episodes), then restores. *)
  | Churn of {
      sessions : int list;  (** [[]] means every session on the fabric. *)
      fraction : float;  (** fraction of joined members hit per cycle *)
      from_ : float;
      until : float;
      period : float;  (** one churn cycle every [period] seconds *)
      down_for : float;  (** how long each victim stays unreachable *)
    }
      (** Receiver join/leave churn: every [period], a seeded sample of
          [fraction] of each targeted session's joined members (at least
          one) goes dark for [down_for] seconds (clamped to the window
          end).  Membership is sampled at cycle time, and only group
          members — receivers — are ever picked, never a sender. *)

type plan = spec list

type t
(** An applied plan: the handle holds the live event counters. *)

val validate : plan -> unit
(** @raise Invalid_argument on an empty window, a probability outside
    [0,1], a non-positive period, or a non-finite time. *)

val apply : Net.t -> plan -> t
(** Validates and arms the plan against the fabric, relative to the
    loop's current time.  Chaos events then fire as the loop runs. *)

val describe : plan -> string
(** One-line human summary, e.g. for the CLI banner. *)

(* Events fired so far (start-of-window events; heals are not counted). *)

val flaps : t -> int

val partitions : t -> int

val churn_blocks : t -> int
(** Individual endpoint take-downs across all churn cycles. *)

val profile_shifts : t -> int
(** Loss-burst plus delay-shift windows entered. *)
