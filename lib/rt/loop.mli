(** Single-process, single-thread event loop for the real-time runtime.

    One loop owns one {!Wheel.t}, one clock, one {!Obs.Sink.t} and one
    master RNG; every TFMCC endpoint hosted on it runs its timers and
    datagram callbacks on this loop, run-to-completion, with no other
    thread touching protocol state (DESIGN.md §13).

    Two modes:

    - {b Turbo} (virtual time): the clock jumps straight to the next
      timer deadline.  Deterministic — given the same seed and the same
      schedule of work, two runs fire identical callbacks in identical
      order — and fast enough to soak thousands of sessions for
      simulated minutes in wall-seconds.  The CI soak and the
      time-translation property test run in this mode.
    - {b Realtime} (wall clock): [now] comes from
      {!Tfmcc_core.Env.monotonic_clock} over [Unix.gettimeofday];
      the loop sleeps in [Unix.select] until the next deadline, waking
      early for watched file descriptors (the UDP transport).  Backward
      clock steps and late timer callbacks are clamped/tolerated and
      counted under [tfmcc_rt_clock_anomaly_total]. *)

type mode = Turbo | Realtime

type t

val create :
  ?mode:mode -> ?epoch:float -> ?obs:Obs.Sink.t -> ?seed:int -> ?late_tolerance_s:float -> unit -> t
(** [epoch] is the initial clock value (default 0): turbo time starts
    there; realtime maps wall time onto [epoch +. elapsed].  [seed]
    (default 42) feeds the master RNG that {!split_rng} derives streams
    from.  [late_tolerance_s] (default 50 ms) is how tardy a realtime
    timer callback may fire before it counts as a clock anomaly. *)

val mode : t -> mode

val now : t -> float

val obs : t -> Obs.Sink.t

val split_rng : t -> Stats.Rng.t

val after : t -> delay:float -> (unit -> unit) -> Tfmcc_core.Env.timer
(** Non-finite or negative delays are clamped to zero and counted as a
    clock anomaly (kind ["bad-delay"]) rather than corrupting the
    wheel. *)

val at : t -> time:float -> (unit -> unit) -> Tfmcc_core.Env.timer

val every : t -> interval:float -> (unit -> unit) -> Tfmcc_core.Env.timer
(** Periodic timer: first fires [interval] seconds from now, then every
    [interval] after, until the returned timer is cancelled.  The chain
    survives a callback exception when {!set_exn_handler} is installed.
    @raise Invalid_argument on a non-finite or non-positive interval. *)

val set_exn_handler : t -> (exn -> Printexc.raw_backtrace -> unit) -> unit
(** Installs the crash backstop: an exception escaping a timer or fd
    callback is caught, counted under [tfmcc_rt_loop_exceptions_total],
    and handed to the handler instead of tearing down {!run}.  Without a
    handler (the default) exceptions propagate as before — and, because
    the wheel processes due timers in batches, may silently cancel
    same-tick siblings; supervised harnesses should always install one.
    Consulted at fire time, so timers scheduled before installation are
    covered too. *)

val exceptions_caught : t -> int

val watch_fd : t -> Unix.file_descr -> (unit -> unit) -> unit
(** Registers a readable-callback (realtime mode only; the turbo clock
    outruns any real socket). *)

val unwatch_fd : t -> Unix.file_descr -> unit

val run : ?until:float -> t -> unit
(** Runs until no timers remain, [stop] is called, or the loop clock
    reaches [until] (absolute).  In turbo mode the clock lands exactly
    on [until] when given. *)

val run_for : t -> duration:float -> unit

val stop : t -> unit

val timers_fired : t -> int

val timers_pending : t -> int

val clock_anomalies : t -> int
(** Total anomalies (backward clock steps, late callbacks, bad delays)
    observed; same count as the [tfmcc_rt_clock_anomaly_total] metric
    family, which is registered lazily on first anomaly. *)
