(* Hashed timer wheel with an overflow heap (see wheel.mli).

   Invariant: the wheel proper only holds entries whose tick lies in
   [cur_tick, cur_tick + nslots), so every bucket holds at most one tick
   value and processing a bucket never has to filter other rounds.
   Entries further out wait in a binary min-heap ordered by (at, seq)
   and migrate in as the cursor approaches.  Cancellation tombstones the
   entry in place; bucket slots are reclaimed when their tick is
   processed, heap slots when the entry surfaces. *)

type state = In_wheel | In_heap | Dead

type entry = {
  at : float;
  seq : int;
  fn : unit -> unit;
  mutable tick : int;
  mutable state : state;
}

type timer = entry

type t = {
  slot_s : float;
  nslots : int;
  buckets : entry list array;
  mutable cur_tick : int;
  mutable heap : entry array; (* min-heap by (at, seq) *)
  mutable heap_n : int;
  mutable wheel_live : int; (* wheel entries not yet fired/swept; >= live *)
  mutable seq : int;
  mutable fired_total : int;
}

let entry_before a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

(* ------------------------------------------------------------- heap *)

let heap_push t e =
  if t.heap_n = Array.length t.heap then begin
    let a = Array.make (max 16 (2 * t.heap_n)) e in
    Array.blit t.heap 0 a 0 t.heap_n;
    t.heap <- a
  end;
  let a = t.heap in
  let i = ref t.heap_n in
  t.heap_n <- t.heap_n + 1;
  a.(!i) <- e;
  while !i > 0 && entry_before a.(!i) a.((!i - 1) / 2) do
    let p = (!i - 1) / 2 in
    let tmp = a.(p) in
    a.(p) <- a.(!i);
    a.(!i) <- tmp;
    i := p
  done

let heap_pop t =
  if t.heap_n = 0 then None
  else begin
    let a = t.heap in
    let top = a.(0) in
    t.heap_n <- t.heap_n - 1;
    if t.heap_n > 0 then begin
      a.(0) <- a.(t.heap_n);
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let s = ref !i in
        if l < t.heap_n && entry_before a.(l) a.(!s) then s := l;
        if r < t.heap_n && entry_before a.(r) a.(!s) then s := r;
        if !s = !i then continue_ := false
        else begin
          let tmp = a.(!s) in
          a.(!s) <- a.(!i);
          a.(!i) <- tmp;
          i := !s
        end
      done
    end;
    Some top
  end

(* Drop tombstoned entries off the top so the peek is a live entry. *)
let rec heap_peek t =
  if t.heap_n = 0 then None
  else if t.heap.(0).state = Dead then begin
    ignore (heap_pop t);
    heap_peek t
  end
  else Some t.heap.(0)

(* ------------------------------------------------------------ wheel *)

let tick_of t at = int_of_float (Float.floor (at /. t.slot_s))

let create ?(slot_s = 0.001) ?(slots = 4096) ~start () =
  if slot_s <= 0. then invalid_arg "Wheel.create: slot_s must be positive";
  if slots < 2 then invalid_arg "Wheel.create: need at least 2 slots";
  let t =
    {
      slot_s;
      nslots = slots;
      buckets = Array.make slots [];
      cur_tick = 0;
      heap = [||];
      heap_n = 0;
      wheel_live = 0;
      seq = 0;
      fired_total = 0;
    }
  in
  t.cur_tick <- tick_of t start;
  t

let bucket_index t tick =
  let i = tick mod t.nslots in
  if i < 0 then i + t.nslots else i

let add_to_wheel t e =
  let idx = bucket_index t e.tick in
  t.buckets.(idx) <- e :: t.buckets.(idx);
  t.wheel_live <- t.wheel_live + 1

let schedule t ~at fn =
  if Float.is_nan at then invalid_arg "Wheel.schedule: NaN deadline";
  let seq = t.seq in
  t.seq <- seq + 1;
  let tick = max (tick_of t at) t.cur_tick in
  if tick < t.cur_tick + t.nslots then begin
    let e = { at; seq; fn; tick; state = In_wheel } in
    add_to_wheel t e;
    e
  end
  else begin
    let e = { at; seq; fn; tick; state = In_heap } in
    heap_push t e;
    e
  end

let cancel e = match e.state with Dead -> () | In_wheel | In_heap -> e.state <- Dead

let pending t =
  (* Exact live count; tombstones make the cheap counters upper bounds
     only.  This is a test/diagnostic hook, not a hot-path call. *)
  let n = ref 0 in
  Array.iter (List.iter (fun e -> if e.state <> Dead then incr n)) t.buckets;
  for i = 0 to t.heap_n - 1 do
    if t.heap.(i).state <> Dead then incr n
  done;
  !n

let fired t = t.fired_total

(* Pull heap entries now inside the near horizon into their buckets. *)
let migrate t =
  let rec go () =
    match heap_peek t with
    | Some e when e.tick < t.cur_tick + t.nslots ->
        ignore (heap_pop t);
        (* A long cursor jump may have passed the entry's tick; clamp so
           it lands in a still-live bucket. *)
        if e.tick < t.cur_tick then e.tick <- t.cur_tick;
        e.state <- In_wheel;
        add_to_wheel t e;
        go ()
    | _ -> ()
  in
  go ()

(* Fire everything due at [tick].  Callbacks may schedule more timers;
   zero-delay ones land back in this bucket (their [at] can't precede
   the loop's [now]) and are drained in follow-up rounds, preserving
   global (at, seq) order.  TFMCC's timers are paced, so chains of
   zero-delay events are finite; the round cap turns a runaway into a
   crash instead of a hang. *)
let process_tick t tick ~now ~late =
  let idx = bucket_index t tick in
  let rounds = ref 0 in
  let rec drain () =
    if t.buckets.(idx) <> [] then begin
      incr rounds;
      if !rounds > 1_000_000 then
        failwith "Wheel.advance: runaway zero-delay timer chain";
      let b = t.buckets.(idx) in
      t.buckets.(idx) <- [];
      let due = ref [] and stay = ref [] in
      List.iter
        (fun e ->
          match e.state with
          | Dead -> t.wheel_live <- t.wheel_live - 1
          | In_wheel when e.tick <= tick && e.at <= now -> due := e :: !due
          | _ -> stay := e :: !stay)
        b;
      (* Reinstall the survivors before firing, so callbacks scheduling
         into this bucket prepend onto a live list. *)
      t.buckets.(idx) <- !stay;
      match !due with
      | [] -> ()
      | due ->
          let due =
            List.sort (fun a b -> if entry_before a b then -1 else 1) due
          in
          List.iter
            (fun e ->
              e.state <- Dead;
              t.wheel_live <- t.wheel_live - 1;
              t.fired_total <- t.fired_total + 1;
              (match late with Some f -> f (now -. e.at) | None -> ());
              e.fn ())
            due;
          (* Anything a callback scheduled due at this tick fires now. *)
          if
            List.exists
              (fun e -> e.state = In_wheel && e.tick <= tick && e.at <= now)
              t.buckets.(idx)
          then drain ()
    end
  in
  drain ()

let advance t ~now ?late () =
  let fired0 = t.fired_total in
  let target = max t.cur_tick (tick_of t now) in
  migrate t;
  while t.cur_tick < target do
    (* Hop over stretches the wheel provably has nothing in. *)
    if t.wheel_live <= 0 then begin
      let hop =
        match heap_peek t with
        | Some e -> min target (max t.cur_tick e.tick)
        | None -> target
      in
      t.cur_tick <- hop;
      migrate t
    end;
    if t.cur_tick < target then begin
      (match heap_peek t with
      | Some e when e.tick < t.cur_tick + t.nslots -> migrate t
      | _ -> ());
      if t.buckets.(bucket_index t t.cur_tick) <> [] then
        process_tick t t.cur_tick ~now ~late;
      t.cur_tick <- t.cur_tick + 1
    end
  done;
  migrate t;
  process_tick t target ~now ~late;
  t.fired_total - fired0

let next_due t =
  migrate t;
  let best = ref None in
  let better e = match !best with None -> true | Some b -> entry_before e b in
  (try
     for k = 0 to t.nslots - 1 do
       let idx = bucket_index t (t.cur_tick + k) in
       if t.buckets.(idx) <> [] then begin
         List.iter
           (fun e -> if e.state <> Dead && better e then best := Some e)
           t.buckets.(idx);
         if !best <> None then raise Exit
       end
     done
   with Exit -> ());
  (match heap_peek t with
  | Some e when better e -> best := Some e
  | _ -> ());
  match !best with None -> None | Some e -> Some e.at
