(* Declarative chaos plans for the loopback fabric (see chaos.mli). *)

type spec =
  | Flap of { down_at : float; up_at : float }
  | Partition of { endpoints : int list; from_ : float; until : float }
  | Loss_burst of { from_ : float; until : float; loss : float }
  | Delay_shift of { from_ : float; until : float; delay : float; jitter : float }
  | Churn of {
      sessions : int list;
      fraction : float;
      from_ : float;
      until : float;
      period : float;
      down_for : float;
    }

type plan = spec list

let check_window name ~from_ ~until =
  if not (Float.is_finite from_ && from_ >= 0.) then
    invalid_arg (Printf.sprintf "Chaos.%s: start must be finite and >= 0" name);
  if not (Float.is_finite until && until > from_) then
    invalid_arg (Printf.sprintf "Chaos.%s: end must follow start" name)

let validate_spec = function
  | Flap { down_at; up_at } ->
      check_window "flap" ~from_:down_at ~until:up_at
  | Partition { endpoints; from_; until } ->
      check_window "partition" ~from_ ~until;
      if endpoints = [] then invalid_arg "Chaos.partition: empty endpoint set"
  | Loss_burst { from_; until; loss } ->
      check_window "loss_burst" ~from_ ~until;
      if not (Float.is_finite loss && loss >= 0. && loss <= 1.) then
        invalid_arg "Chaos.loss_burst: loss must be in [0,1]"
  | Delay_shift { from_; until; delay; jitter } ->
      check_window "delay_shift" ~from_ ~until;
      if not (Float.is_finite delay && delay >= 0.) then
        invalid_arg "Chaos.delay_shift: delay must be finite and >= 0";
      if not (Float.is_finite jitter && jitter >= 0.) then
        invalid_arg "Chaos.delay_shift: jitter must be finite and >= 0"
  | Churn { sessions = _; fraction; from_; until; period; down_for } ->
      check_window "churn" ~from_ ~until;
      if not (Float.is_finite fraction && fraction > 0. && fraction <= 1.) then
        invalid_arg "Chaos.churn: fraction must be in (0,1]";
      if not (Float.is_finite period && period > 0.) then
        invalid_arg "Chaos.churn: period must be positive";
      if not (Float.is_finite down_for && down_for > 0.) then
        invalid_arg "Chaos.churn: down_for must be positive"

let validate plan = List.iter validate_spec plan

let describe_spec = function
  | Flap { down_at; up_at } ->
      Printf.sprintf "flap down@%gs up@%gs" down_at up_at
  | Partition { endpoints; from_; until } ->
      Printf.sprintf "partition %d endpoint(s) %g..%gs" (List.length endpoints)
        from_ until
  | Loss_burst { from_; until; loss } ->
      Printf.sprintf "loss-burst p=%g %g..%gs" loss from_ until
  | Delay_shift { from_; until; delay; jitter } ->
      Printf.sprintf "delay-shift %gms+/-%gms %g..%gs" (delay *. 1e3)
        (jitter *. 1e3) from_ until
  | Churn { sessions; fraction; from_; until; period; down_for } ->
      Printf.sprintf "churn %g%% of %s every %gs (down %gs) %g..%gs"
        (fraction *. 100.)
        (match sessions with
        | [] -> "all sessions"
        | l -> Printf.sprintf "%d session(s)" (List.length l))
        period down_for from_ until

let describe plan = String.concat "; " (List.map describe_spec plan)

type t = {
  net : Net.t;
  rng : Stats.Rng.t; (* churn victim selection, split off the loop master *)
  mutable flaps : int;
  mutable partitions : int;
  mutable churn_blocks : int;
  mutable profile_shifts : int;
}

let scope = Obs.Journal.scope "rt.chaos"

let event t ?severity ~kind ~detail () =
  let loop = Net.loop t.net in
  Obs.Metrics.Counter.inc
    (Obs.Metrics.counter (Loop.obs loop).Obs.Sink.metrics
       ~labels:[ ("kind", kind) ]
       "tfmcc_rt_chaos_events_total");
  Obs.Sink.event (Loop.obs loop) ~time:(Loop.now loop) ?severity scope
    (Obs.Journal.Fault { kind; detail })

let schedule t ~at:time fn =
  ignore (Loop.at (Net.loop t.net) ~time fn : Tfmcc_core.Env.timer)

let arm_flap t ~base ~down_at ~up_at =
  schedule t ~at:(base +. down_at) (fun () ->
      t.flaps <- t.flaps + 1;
      Net.set_fabric_up t.net false;
      event t ~severity:Obs.Journal.Warn ~kind:"flap_down" ~detail:"" ());
  schedule t ~at:(base +. up_at) (fun () ->
      Net.set_fabric_up t.net true;
      event t ~kind:"flap_up" ~detail:"" ())

let arm_partition t ~base ~endpoints ~from_ ~until =
  let detail =
    String.concat "," (List.map string_of_int endpoints)
  in
  schedule t ~at:(base +. from_) (fun () ->
      t.partitions <- t.partitions + 1;
      List.iter (Net.block t.net) endpoints;
      event t ~severity:Obs.Journal.Error ~kind:"partition" ~detail ());
  schedule t ~at:(base +. until) (fun () ->
      List.iter (Net.unblock t.net) endpoints;
      event t ~kind:"partition_heal" ~detail ())

let arm_loss_burst t ~base ~from_ ~until ~loss =
  schedule t ~at:(base +. from_) (fun () ->
      t.profile_shifts <- t.profile_shifts + 1;
      Net.set_impair t.net { (Net.current_impair t.net) with Net.loss };
      event t ~severity:Obs.Journal.Warn ~kind:"loss_burst"
        ~detail:(Printf.sprintf "p=%g" loss)
        ());
  schedule t ~at:(base +. until) (fun () ->
      Net.set_impair t.net
        { (Net.base_impair t.net) with
          Net.delay = (Net.current_impair t.net).Net.delay;
          jitter = (Net.current_impair t.net).Net.jitter;
        };
      event t ~kind:"loss_burst_end" ~detail:"" ())

let arm_delay_shift t ~base ~from_ ~until ~delay ~jitter =
  schedule t ~at:(base +. from_) (fun () ->
      t.profile_shifts <- t.profile_shifts + 1;
      Net.set_impair t.net
        { (Net.current_impair t.net) with Net.delay; jitter };
      event t ~severity:Obs.Journal.Warn ~kind:"delay_shift"
        ~detail:(Printf.sprintf "delay=%gms jitter=%gms" (delay *. 1e3) (jitter *. 1e3))
        ());
  schedule t ~at:(base +. until) (fun () ->
      let base_i = Net.base_impair t.net in
      Net.set_impair t.net
        { (Net.current_impair t.net) with
          Net.delay = base_i.Net.delay;
          jitter = base_i.Net.jitter;
        };
      event t ~kind:"delay_shift_end" ~detail:"" ())

(* One churn cycle: for every targeted session, take a seeded sample of
   the currently joined members down, then heal them [down_for] later
   (clamped to the window end so the plan leaves no standing block).
   Membership is read at cycle time, not plan time, so churn follows
   sessions that started after [apply]. *)
let churn_cycle t ~sessions ~fraction ~heal_at =
  let sessions = match sessions with [] -> Net.sessions t.net | l -> l in
  List.iter
    (fun sid ->
      let members = Array.of_list (Net.members t.net sid) in
      let n = Array.length members in
      if n > 0 then begin
        let k = max 1 (int_of_float (Float.round (fraction *. float n))) in
        let k = min k n in
        Stats.Rng.shuffle_in_place t.rng members;
        for i = 0 to k - 1 do
          let id = members.(i) in
          t.churn_blocks <- t.churn_blocks + 1;
          Net.block t.net id;
          event t ~severity:Obs.Journal.Warn ~kind:"churn_down"
            ~detail:(Printf.sprintf "session=%d endpoint=%d" sid id)
            ();
          schedule t ~at:heal_at (fun () ->
              Net.unblock t.net id;
              event t ~kind:"churn_up"
                ~detail:(Printf.sprintf "session=%d endpoint=%d" sid id)
                ())
        done
      end)
    sessions

let arm_churn t ~base ~sessions ~fraction ~from_ ~until ~period ~down_for =
  let tc = ref from_ in
  while !tc < until do
    let cycle = !tc in
    let heal_at = base +. Float.min until (cycle +. down_for) in
    schedule t ~at:(base +. cycle) (fun () ->
        churn_cycle t ~sessions ~fraction ~heal_at);
    tc := !tc +. period
  done

let apply net plan =
  validate plan;
  let loop = Net.loop net in
  let t =
    {
      net;
      rng = Loop.split_rng loop;
      flaps = 0;
      partitions = 0;
      churn_blocks = 0;
      profile_shifts = 0;
    }
  in
  let base = Loop.now loop in
  List.iter
    (function
      | Flap { down_at; up_at } -> arm_flap t ~base ~down_at ~up_at
      | Partition { endpoints; from_; until } ->
          arm_partition t ~base ~endpoints ~from_ ~until
      | Loss_burst { from_; until; loss } ->
          arm_loss_burst t ~base ~from_ ~until ~loss
      | Delay_shift { from_; until; delay; jitter } ->
          arm_delay_shift t ~base ~from_ ~until ~delay ~jitter
      | Churn { sessions; fraction; from_; until; period; down_for } ->
          arm_churn t ~base ~sessions ~fraction ~from_ ~until ~period ~down_for)
    plan;
  t

let flaps t = t.flaps

let partitions t = t.partitions

let churn_blocks t = t.churn_blocks

let profile_shifts t = t.profile_shifts
