(* Many-session soak driver (see harness.mli). *)

open Tfmcc_core

type transport = Loopback | Udp_sockets

type config = {
  sessions : int;
  receivers : int;
  duration : float;
  impair : Net.impairment;
  cfg : Config.t;
  mode : Loop.mode;
  transport : transport;
  epoch : float;
  seed : int;
}

let default =
  {
    sessions = 4;
    receivers = 1;
    duration = 8.;
    impair = Net.impairment ~loss:0.02 ~delay:0.025 ~jitter:0.005 ~warmup:2. ();
    cfg = Config.default;
    mode = Loop.Turbo;
    transport = Loopback;
    epoch = 0.;
    seed = 42;
  }

type session_stat = {
  session : int;
  rate : float;
  packets : int;
  reports : int;
  starved : bool;
  loss_rate : float;
  rtt : float;
  rtt_measured : bool;
}

type result = {
  stats : session_stat list;
  wall_s : float;
  end_time : float;
  timers_fired : int;
  clock_anomalies : int;
  frames_sent : int;
  frames_delivered : int;
  frames_lost : int;
  encode_drops : int;
  decode_errors : int;
}

(* One vtable per transport so the session-building code below is
   written once. *)
type ops = {
  new_ep : session:int -> Env.t * ((size:int -> Wire.msg -> unit) -> unit);
  totals : unit -> int * int * int * int * int;
  shutdown : unit -> unit;
}

let loopback_ops loop ~impair =
  let net = Net.create loop ~impair () in
  {
    new_ep =
      (fun ~session ->
        let ep = Net.endpoint net ~session in
        (Net.env ep, Net.set_deliver ep));
    totals =
      (fun () ->
        ( Net.frames_sent net,
          Net.frames_delivered net,
          Net.frames_lost net,
          Net.encode_drops net,
          Net.decode_errors net ));
    shutdown = (fun () -> ());
  }

let udp_ops loop =
  let net = Udp.create loop () in
  {
    new_ep =
      (fun ~session ->
        let ep = Udp.endpoint net ~session in
        (Udp.env ep, Udp.set_deliver ep));
    totals =
      (fun () ->
        ( Udp.frames_sent net,
          Udp.frames_delivered net,
          0,
          Udp.send_errors net,
          Udp.decode_errors net ));
    shutdown = (fun () -> Udp.close net);
  }

let run ?obs c =
  if c.sessions < 1 then invalid_arg "Harness.run: need at least one session";
  if c.receivers < 1 then invalid_arg "Harness.run: need at least one receiver";
  let obs = match obs with Some s -> s | None -> Obs.Sink.create () in
  let loop = Loop.create ~mode:c.mode ~epoch:c.epoch ~obs ~seed:c.seed () in
  let ops =
    match c.transport with
    | Loopback -> loopback_ops loop ~impair:c.impair
    | Udp_sockets -> udp_ops loop
  in
  Obs.Metrics.Gauge.set
    (Obs.Metrics.gauge obs.Obs.Sink.metrics "tfmcc_rt_sessions")
    (float_of_int c.sessions);
  let sessions =
    List.init c.sessions (fun i ->
        let sid = i + 1 in
        let sender_env, set_sender_deliver = ops.new_ep ~session:sid in
        let rx = List.init c.receivers (fun _ -> ops.new_ep ~session:sid) in
        let s =
          Session.create ~sender_env ~cfg:c.cfg ~session:sid
            ~receiver_envs:(List.map fst rx) ()
        in
        let snd = Session.sender s in
        set_sender_deliver (fun ~size:_ msg -> Sender.deliver snd msg);
        List.iter2
          (fun (_, set_deliver) r ->
            set_deliver (fun ~size msg -> Receiver.deliver r ~size msg))
          rx (Session.receivers s);
        (* Stagger the starts so a thousand senders don't share one
           feedback-round phase. *)
        Session.start s ~at:(c.epoch +. (0.01 *. float_of_int (i mod 128)));
        (sid, s))
  in
  let t0 = Unix.gettimeofday () in
  Loop.run ~until:(c.epoch +. c.duration) loop;
  let wall_s = Unix.gettimeofday () -. t0 in
  let stats =
    List.map
      (fun (sid, s) ->
        let snd = Session.sender s in
        let rxs = Session.receivers s in
        let n = float_of_int (List.length rxs) in
        let mean f = List.fold_left (fun a r -> a +. f r) 0. rxs /. n in
        {
          session = sid;
          rate = Sender.rate_bytes_per_s snd;
          packets = Sender.packets_sent snd;
          reports = Sender.reports_received snd;
          starved = Sender.is_starved snd;
          loss_rate = mean Receiver.loss_event_rate;
          rtt = mean Receiver.rtt;
          rtt_measured = List.for_all Receiver.has_rtt_measurement rxs;
        })
      sessions
  in
  let sent, delivered, lost, enc, dec = ops.totals () in
  ops.shutdown ();
  {
    stats;
    wall_s;
    end_time = Loop.now loop;
    timers_fired = Loop.timers_fired loop;
    clock_anomalies = Loop.clock_anomalies loop;
    frames_sent = sent;
    frames_delivered = delivered;
    frames_lost = lost;
    encode_drops = enc;
    decode_errors = dec;
  }

let converged stat ~cfg =
  (* "Converged" per the acceptance bar: non-zero goodput and not parked
     on a degenerate floor.  One packet per measured RTT is the
     protocol's working floor; the absolute minimum (one packet per 64 s)
     and the starvation decay both sit far below it. *)
  let per_rtt =
    stat.rate *. Float.max stat.rtt 1e-3 /. float_of_int cfg.Config.packet_size
  in
  stat.packets > 0 && (not stat.starved) && per_rtt >= 1.
