(* Many-session soak driver (see harness.mli). *)

open Tfmcc_core

type transport = Loopback | Udp_sockets

type supervision = {
  probe_interval : float;
  stall_probes : int;
  max_restarts : int;
  restart_backoff : float;
  restart_on_stall : bool;
}

let default_supervision =
  {
    probe_interval = 1.0;
    stall_probes = 20;
    max_restarts = 3;
    restart_backoff = 0.25;
    restart_on_stall = true;
  }

type fault =
  | Kill_session of { session : int; at : float }
  | Kill_session_every of { session : int; at : float; period : float; until : float }
  | Stop_sender of { session : int; at : float }
  | Partition_clr of { at : float; until : float }

type config = {
  sessions : int;
  receivers : int;
  duration : float;
  impair : Net.impairment;
  cfg : Config.t;
  mode : Loop.mode;
  transport : transport;
  epoch : float;
  seed : int;
  supervise : supervision;
  chaos : Chaos.plan;
  faults : fault list;
}

let default =
  {
    sessions = 4;
    receivers = 1;
    duration = 8.;
    impair = Net.impairment ~loss:0.02 ~delay:0.025 ~jitter:0.005 ~warmup:2. ();
    cfg = Config.default;
    mode = Loop.Turbo;
    transport = Loopback;
    epoch = 0.;
    seed = 42;
    supervise = default_supervision;
    chaos = [];
    faults = [];
  }

type session_stat = {
  session : int;
  rate : float;
  packets : int;
  reports : int;
  starved : bool;
  loss_rate : float;
  rtt : float;
  rtt_measured : bool;
  failovers : int;
  starvations : int;
}

type result = {
  stats : session_stat list;
  outcomes : (int * session_stat Par.outcome) list;
  wall_s : float;
  end_time : float;
  timers_fired : int;
  clock_anomalies : int;
  frames_sent : int;
  frames_delivered : int;
  frames_lost : int;
  frames_blocked : int;
  encode_drops : int;
  decode_errors : int;
  crashes : int;
  restarts : int;
  stalls : int;
  sessions_failed : int;
  loop_exceptions : int;
  clr_partitioned : int;
  chaos : Chaos.t option;
}

(* One vtable per transport so the session-building code below is
   written once. *)
type ops = {
  new_ep : session:int -> Env.t * ((size:int -> Wire.msg -> unit) -> unit);
  totals : unit -> int * int * int * int * int * int;
  block : int -> unit;  (* Partition_clr; loopback only *)
  unblock : int -> unit;
  set_on_fatal : (session:int -> endpoint:int -> exn -> unit) -> unit;
  net : Net.t option;  (* chaos plans need the fabric; None on udp *)
  shutdown : unit -> unit;
}

let loopback_ops loop ~impair =
  let net = Net.create loop ~impair () in
  {
    new_ep =
      (fun ~session ->
        let ep = Net.endpoint net ~session in
        (Net.env ep, Net.set_deliver ep));
    totals =
      (fun () ->
        ( Net.frames_sent net,
          Net.frames_delivered net,
          Net.frames_lost net,
          Net.encode_drops net,
          Net.decode_errors net,
          Net.partition_drops net + Net.flap_drops net ));
    block = Net.block net;
    unblock = Net.unblock net;
    set_on_fatal = (fun _ -> ());
    net = Some net;
    shutdown = (fun () -> ());
  }

let udp_ops loop =
  let net = Udp.create loop () in
  {
    new_ep =
      (fun ~session ->
        let ep = Udp.endpoint net ~session in
        (Udp.env ep, Udp.set_deliver ep));
    totals =
      (fun () ->
        ( Udp.frames_sent net,
          Udp.frames_delivered net,
          0,
          Udp.send_errors net,
          Udp.decode_errors net,
          Udp.send_shed net ));
    block = (fun _ -> invalid_arg "Harness: Partition_clr needs the loopback fabric");
    unblock = (fun _ -> ());
    set_on_fatal = Udp.set_on_fatal net;
    net = None;
    shutdown = (fun () -> Udp.close net);
  }

(* Per-session supervision state (DESIGN.md §15).  [gen] is the crash
   generation: every timer, callback and delivery hook captures the
   generation it was installed under and mutes itself once the
   supervisor has moved on — a restarted session can never be poked by
   its dead predecessor's timers. *)
type sup = {
  sid : int;
  mutable gen : int;
  mutable sess : Session.t option;
  mutable guarded_env : Env.t option;  (* current sender env; kill faults inject here *)
  mutable state : [ `Running | `Backoff | `Failed ];
  mutable crashes : int;
  mutable restarts : int;
  mutable stalls : int;
  mutable last_packets : int;
  mutable idle_probes : int;
  mutable fail : [ `Crash of exn * Printexc.raw_backtrace | `Stall of string ] option;
}

let validate_faults c =
  List.iter
    (fun f ->
      let need_session sid name =
        if sid < 1 || sid > c.sessions then
          invalid_arg (Printf.sprintf "Harness: %s names unknown session %d" name sid)
      in
      match f with
      | Kill_session { session; at } ->
          need_session session "Kill_session";
          if not (Float.is_finite at && at >= 0.) then
            invalid_arg "Harness: Kill_session.at must be finite and >= 0"
      | Kill_session_every { session; at; period; until } ->
          need_session session "Kill_session_every";
          if not (Float.is_finite period && period > 0.) then
            invalid_arg "Harness: Kill_session_every.period must be positive";
          if not (Float.is_finite at && at >= 0. && Float.is_finite until) then
            invalid_arg "Harness: Kill_session_every window must be finite"
      | Stop_sender { session; at } ->
          need_session session "Stop_sender";
          if not (Float.is_finite at && at >= 0.) then
            invalid_arg "Harness: Stop_sender.at must be finite and >= 0"
      | Partition_clr { at; until } ->
          if c.transport <> Loopback then
            invalid_arg "Harness: Partition_clr needs the loopback fabric";
          if not (Float.is_finite at && at >= 0. && Float.is_finite until && until > at)
          then invalid_arg "Harness: Partition_clr window must be finite with until > at")
    c.faults

let run ?obs c =
  if c.sessions < 1 then invalid_arg "Harness.run: need at least one session";
  if c.receivers < 1 then invalid_arg "Harness.run: need at least one receiver";
  if not (Float.is_finite c.supervise.probe_interval && c.supervise.probe_interval > 0.)
  then invalid_arg "Harness.run: probe_interval must be positive";
  if c.supervise.stall_probes < 1 then
    invalid_arg "Harness.run: stall_probes must be >= 1";
  if c.supervise.max_restarts < 0 then
    invalid_arg "Harness.run: max_restarts must be >= 0";
  if c.chaos <> [] && c.transport <> Loopback then
    invalid_arg "Harness.run: chaos plans need the loopback fabric";
  Chaos.validate c.chaos;
  validate_faults c;
  let obs = match obs with Some s -> s | None -> Obs.Sink.create () in
  let loop = Loop.create ~mode:c.mode ~epoch:c.epoch ~obs ~seed:c.seed () in
  let ops =
    match c.transport with
    | Loopback -> loopback_ops loop ~impair:c.impair
    | Udp_sockets -> udp_ops loop
  in
  let m = obs.Obs.Sink.metrics in
  let m_crashes = Obs.Metrics.counter m "tfmcc_rt_session_crashes_total" in
  let m_restarted = Obs.Metrics.counter m "tfmcc_rt_sessions_restarted_total" in
  let m_failed = Obs.Metrics.counter m "tfmcc_rt_sessions_failed_total" in
  let m_stalls = Obs.Metrics.counter m "tfmcc_rt_session_stalls_total" in
  Obs.Metrics.Gauge.set
    (Obs.Metrics.gauge m "tfmcc_rt_sessions")
    (float_of_int c.sessions);
  let journal sup ~severity ~kind ~detail =
    Obs.Sink.event obs ~time:(Loop.now loop) ~severity
      (Obs.Journal.scope ~session:sup.sid "rt.harness")
      (Obs.Journal.Fault { kind; detail })
  in
  (* Backstop: nothing should reach this (every session path is guarded
     below), but a bug in the harness itself must not kill the other
     199 sessions.  [Loop.exceptions_caught] stays 0 on a healthy run
     and the CI soak asserts exactly that. *)
  Loop.set_exn_handler loop (fun e _bt ->
      Obs.Sink.event obs ~time:(Loop.now loop) ~severity:Obs.Journal.Error
        (Obs.Journal.scope "rt.harness")
        (Obs.Journal.Fault
           { kind = "loop-exception"; detail = Printexc.to_string e }));
  let sups =
    List.init c.sessions (fun i ->
        {
          sid = i + 1;
          gen = 0;
          sess = None;
          guarded_env = None;
          state = `Running;
          crashes = 0;
          restarts = 0;
          stalls = 0;
          last_packets = -1;
          idle_probes = 0;
          fail = None;
        })
  in
  let sup_for sid = List.nth sups (sid - 1) in
  let clr_partitioned = ref 0 in
  (* [guard] captures the generation a callback was installed under:
     stale generations are muted, and an exception in a live one is a
     session crash, not a loop crash. *)
  let rec guard sup ~gen fn () =
    if sup.gen = gen then
      try fn ()
      with e -> on_crash sup e (Printexc.get_raw_backtrace ())
  and guard_env sup ~gen (env : Env.t) =
    {
      env with
      Env.after = (fun ~delay fn -> env.Env.after ~delay (guard sup ~gen fn));
      after_unit = (fun ~delay fn -> env.Env.after_unit ~delay (guard sup ~gen fn));
      at = (fun ~time fn -> env.Env.at ~time (guard sup ~gen fn));
    }
  and build_session sup ~start_at =
    let gen = sup.gen in
    let sender_env, set_sender_deliver = ops.new_ep ~session:sup.sid in
    let rx = List.init c.receivers (fun _ -> ops.new_ep ~session:sup.sid) in
    let genv = guard_env sup ~gen sender_env in
    let s =
      Session.create ~sender_env:genv ~cfg:c.cfg ~session:sup.sid
        ~receiver_envs:(List.map (fun (e, _) -> guard_env sup ~gen e) rx)
        ()
    in
    let snd = Session.sender s in
    set_sender_deliver (fun ~size:_ msg ->
        if sup.gen = gen then
          try Sender.deliver snd msg
          with e -> on_crash sup e (Printexc.get_raw_backtrace ()));
    List.iter2
      (fun (_, set_deliver) r ->
        set_deliver (fun ~size msg ->
            if sup.gen = gen then
              try Receiver.deliver r ~size msg
              with e -> on_crash sup e (Printexc.get_raw_backtrace ())))
      rx (Session.receivers s);
    sup.sess <- Some s;
    sup.guarded_env <- Some genv;
    Session.start s ~at:start_at
  and teardown sup =
    (* Advance the generation first: everything the dead incarnation
       scheduled is mute from here on.  Then stop the sender and pull
       the receivers out of the group so fan-out stops feeding them. *)
    sup.gen <- sup.gen + 1;
    match sup.sess with
    | None -> ()
    | Some s ->
        (try Session.stop s with _ -> ());
        List.iter
          (fun r -> try Receiver.leave r ~explicit_leave:false () with _ -> ())
          (Session.receivers s)
  and retire sup ~cause =
    teardown sup;
    sup.fail <- Some cause;
    if sup.restarts >= c.supervise.max_restarts then begin
      sup.state <- `Failed;
      Obs.Metrics.Counter.inc m_failed;
      journal sup ~severity:Obs.Journal.Error ~kind:"session-failed"
        ~detail:(Printf.sprintf "gave up after %d restarts" sup.restarts)
    end
    else begin
      sup.state <- `Backoff;
      let delay = c.supervise.restart_backoff *. (2. ** float_of_int sup.restarts) in
      sup.restarts <- sup.restarts + 1;
      Obs.Metrics.Counter.inc m_restarted;
      journal sup ~severity:Obs.Journal.Warn ~kind:"session-restart"
        ~detail:(Printf.sprintf "restart %d in %.3fs" sup.restarts delay);
      ignore
        (Loop.after loop ~delay (fun () ->
             if sup.state = `Backoff then begin
               sup.state <- `Running;
               sup.idle_probes <- 0;
               sup.last_packets <- -1;
               build_session sup ~start_at:(Loop.now loop)
             end)
          : Env.timer)
    end
  and on_crash sup e bt =
    match sup.state with
    | `Backoff | `Failed -> ()
    | `Running ->
        sup.crashes <- sup.crashes + 1;
        Obs.Metrics.Counter.inc m_crashes;
        journal sup ~severity:Obs.Journal.Error ~kind:"session-crash"
          ~detail:(Printexc.to_string e);
        retire sup ~cause:(`Crash (e, bt))
  in
  (* A fatal transport error is not restartable: the incarnation's
     socket is gone and every retry would rebuild state the kernel
     already refused.  Fail the session immediately. *)
  ops.set_on_fatal (fun ~session ~endpoint e ->
      let sup = sup_for session in
      match sup.state with
      | `Failed -> ()
      | `Running | `Backoff ->
          teardown sup;
          sup.fail <- Some (`Crash (e, Printexc.get_callstack 0));
          sup.state <- `Failed;
          Obs.Metrics.Counter.inc m_failed;
          journal sup ~severity:Obs.Journal.Error ~kind:"session-failed"
            ~detail:
              (Printf.sprintf "fatal transport error on endpoint %d: %s" endpoint
                 (Printexc.to_string e)));
  List.iteri
    (fun i sup ->
      (* Stagger the starts so a thousand senders don't share one
         feedback-round phase. *)
      build_session sup ~start_at:(c.epoch +. (0.01 *. float_of_int (i mod 128))))
    sups;
  (* Stall watchdog: one probe sweep over every running session.  A
     session that has not sent a packet for [stall_probes] consecutive
     probes is stalled (the rt mirror of [Netsim.Watchdog]'s
     no-progress rule; [<>] not [>] because a restarted sender's count
     begins again at zero). *)
  ignore
    (Loop.every loop ~interval:c.supervise.probe_interval (fun () ->
         List.iter
           (fun sup ->
             match (sup.state, sup.sess) with
             | `Running, Some s ->
                 let p = Sender.packets_sent (Session.sender s) in
                 if p <> sup.last_packets then begin
                   sup.last_packets <- p;
                   sup.idle_probes <- 0
                 end
                 else begin
                   sup.idle_probes <- sup.idle_probes + 1;
                   if sup.idle_probes >= c.supervise.stall_probes then begin
                     let reason =
                       Printf.sprintf "no packets for %d probes (%.1fs)"
                         sup.idle_probes
                         (float_of_int sup.idle_probes *. c.supervise.probe_interval)
                     in
                     sup.stalls <- sup.stalls + 1;
                     sup.idle_probes <- 0;
                     Obs.Metrics.Counter.inc m_stalls;
                     journal sup ~severity:Obs.Journal.Warn ~kind:"session-stall"
                       ~detail:reason;
                     if c.supervise.restart_on_stall then
                       retire sup ~cause:(`Stall reason)
                   end
                 end
             | _ -> ())
           sups)
      : Env.timer);
  (* Fault injection (times relative to the epoch, like chaos plans).
     Kills are injected through the session's own guarded env so the
     exception exercises the real crash path, not a shortcut. *)
  let inject_kill sup =
    match (sup.state, sup.guarded_env) with
    | `Running, Some env ->
        env.Env.after_unit ~delay:0. (fun () ->
            failwith "chaos: injected session kill")
    | _ -> ()
  in
  let blocked_clrs = ref [] in
  List.iter
    (fun f ->
      let arm ~at fn =
        ignore (Loop.at loop ~time:(c.epoch +. at) fn : Env.timer)
      in
      match f with
      | Kill_session { session; at } ->
          arm ~at (fun () -> inject_kill (sup_for session))
      | Kill_session_every { session; at; period; until } ->
          let t = ref at in
          while !t < until do
            let at = !t in
            arm ~at (fun () -> inject_kill (sup_for session));
            t := !t +. period
          done
      | Stop_sender { session; at } ->
          arm ~at (fun () ->
              let sup = sup_for session in
              match (sup.state, sup.sess) with
              | `Running, Some s -> Sender.stop (Session.sender s)
              | _ -> ())
      | Partition_clr { at; until } ->
          arm ~at (fun () ->
              List.iter
                (fun sup ->
                  match (sup.state, sup.sess) with
                  | `Running, Some s -> (
                      match Sender.clr (Session.sender s) with
                      | Some node ->
                          ops.block node;
                          incr clr_partitioned;
                          blocked_clrs := node :: !blocked_clrs;
                          journal sup ~severity:Obs.Journal.Error
                            ~kind:"clr-partitioned"
                            ~detail:(Printf.sprintf "endpoint %d" node)
                      | None -> ())
                  | _ -> ())
                sups);
          arm ~at:until (fun () ->
              List.iter ops.unblock !blocked_clrs;
              blocked_clrs := []))
    c.faults;
  let chaos =
    match (c.chaos, ops.net) with
    | [], _ | _, None -> None
    | plan, Some net -> Some (Chaos.apply net plan)
  in
  let t0 = Unix.gettimeofday () in
  Loop.run ~until:(c.epoch +. c.duration) loop;
  let wall_s = Unix.gettimeofday () -. t0 in
  let stat_of sup s =
    let snd = Session.sender s in
    let rxs = Session.receivers s in
    let n = float_of_int (List.length rxs) in
    let mean f = List.fold_left (fun a r -> a +. f r) 0. rxs /. n in
    {
      session = sup.sid;
      rate = Sender.rate_bytes_per_s snd;
      packets = Sender.packets_sent snd;
      reports = Sender.reports_received snd;
      starved = Sender.is_starved snd;
      loss_rate = mean Receiver.loss_event_rate;
      rtt = mean Receiver.rtt;
      rtt_measured = List.for_all Receiver.has_rtt_measurement rxs;
      failovers = Sender.clr_failovers snd;
      starvations = Sender.feedback_starvations snd;
    }
  in
  let outcomes =
    List.map
      (fun sup ->
        let outcome =
          match (sup.state, sup.sess, sup.fail) with
          | `Running, Some s, _ -> Par.Ok (stat_of sup s)
          | (`Failed | `Backoff), _, Some (`Crash (exn, backtrace)) ->
              Par.Failed { exn; backtrace }
          | (`Failed | `Backoff), _, Some (`Stall reason) -> Par.Stalled { reason }
          | _ ->
              Par.Failed
                {
                  exn = Failure "session lost without a recorded cause";
                  backtrace = Printexc.get_callstack 0;
                }
        in
        (sup.sid, outcome))
      sups
  in
  let stats =
    List.filter_map
      (fun sup -> Option.map (stat_of sup) sup.sess)
      sups
  in
  let sent, delivered, lost, enc, dec, blocked = ops.totals () in
  ops.shutdown ();
  {
    stats;
    outcomes;
    wall_s;
    end_time = Loop.now loop;
    timers_fired = Loop.timers_fired loop;
    clock_anomalies = Loop.clock_anomalies loop;
    frames_sent = sent;
    frames_delivered = delivered;
    frames_lost = lost;
    frames_blocked = blocked;
    encode_drops = enc;
    decode_errors = dec;
    crashes = List.fold_left (fun a s -> a + s.crashes) 0 sups;
    restarts = List.fold_left (fun a s -> a + s.restarts) 0 sups;
    stalls = List.fold_left (fun a s -> a + s.stalls) 0 sups;
    sessions_failed =
      List.length (List.filter (fun s -> s.state = `Failed) sups);
    loop_exceptions = Loop.exceptions_caught loop;
    clr_partitioned = !clr_partitioned;
    chaos;
  }

let converged stat ~cfg =
  (* "Converged" per the acceptance bar: non-zero goodput and not parked
     on a degenerate floor.  One packet per measured RTT is the
     protocol's working floor; the absolute minimum (one packet per 64 s)
     and the starvation decay both sit far below it. *)
  let per_rtt =
    stat.rate *. Float.max stat.rtt 1e-3 /. float_of_int cfg.Config.packet_size
  in
  stat.packets > 0 && (not stat.starved) && per_rtt >= 1.
