(** Real-UDP transport for the real-time runtime.

    Each endpoint owns a nonblocking UDP socket bound to an ephemeral
    port on 127.0.0.1; the loop's [select] watches every socket and
    drains it on readability.  Multicast is emulated by unicast fan-out
    over the per-session membership registry (the fabric knows every
    member's bound address), which keeps the transport runnable in
    plain CI containers — no IGMP or routable multicast needed.

    This is the "prove it's real" transport: frames cross the kernel.
    It pays one file descriptor per endpoint, so thousand-session soaks
    belong on {!Net}; this one is for small live runs
    ([tfmcc-sim loopback --udp]).  Realtime loop mode only — virtual
    time outruns any socket. *)

type t

type endpoint

val create : Loop.t -> unit -> t
(** Raises [Invalid_argument] on a turbo-mode loop. *)

val endpoint : t -> session:int -> endpoint
(** Binds a socket and registers it with the loop.  Raises
    [Unix.Unix_error] if the container forbids sockets. *)

val env : endpoint -> Tfmcc_core.Env.t

val set_deliver : endpoint -> (size:int -> Tfmcc_core.Wire.msg -> unit) -> unit

val endpoint_id : endpoint -> int

val close : t -> unit
(** Closes every socket and unregisters the fds from the loop. *)

val frames_sent : t -> int

val frames_delivered : t -> int

val send_errors : t -> int
(** [sendto] failures (buffer pressure, shrunk datagrams); the frame is
    dropped, mirroring UDP semantics. *)

val decode_errors : t -> int
