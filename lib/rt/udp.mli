(** Real-UDP transport for the real-time runtime.

    Each endpoint owns a nonblocking UDP socket bound to an ephemeral
    port on 127.0.0.1; the loop's [select] watches every socket and
    drains it on readability.  Multicast is emulated by unicast fan-out
    over the per-session membership registry (the fabric knows every
    member's bound address), which keeps the transport runnable in
    plain CI containers — no IGMP or routable multicast needed.

    This is the "prove it's real" transport: frames cross the kernel.
    It pays one file descriptor per endpoint, so thousand-session soaks
    belong on {!Net}; this one is for small live runs
    ([tfmcc-sim loopback --udp]).  Realtime loop mode only — virtual
    time outruns any socket. *)

type t

type endpoint

type error_class = Transient | Degraded | Fatal
(** Transport-error taxonomy (DESIGN.md §15).  [Transient] (EAGAIN,
    EINTR, ENOBUFS, ENOMEM): momentary pressure, worth a bounded retry.
    [Degraded] (ECONNREFUSED, EHOSTUNREACH, EMSGSIZE, ...): this
    datagram or peer is lost but the socket still works — drop and move
    on, which is what UDP promises anyway.  [Fatal] (EBADF, ...): the
    socket itself is broken; the endpoint is marked dead, unwatched, and
    the {!set_on_fatal} hook fires so the owning session can be failed. *)

val classify : Unix.error -> error_class

val kind_of_error : Unix.error -> string
(** The [kind] label this error is counted under in
    [tfmcc_rt_send_error_total] / [tfmcc_rt_recv_error_total]. *)

val create :
  ?max_retries:int ->
  ?retry_backoff_s:float ->
  ?shed_threshold:int ->
  ?shed_window_s:float ->
  Loop.t ->
  unit ->
  t
(** Raises [Invalid_argument] on a turbo-mode loop.  Transient send
    failures are retried up to [max_retries] times (default 2) with a
    [retry_backoff_s] sleep between attempts (default 0.5 ms).  A streak
    of [shed_threshold] consecutive ENOBUFS failures (default 16) opens
    a [shed_window_s]-second load-shedding window (default 50 ms) in
    which every offered frame is dropped without a syscall — counted
    under [tfmcc_rt_send_error_total{kind="shed"}] — giving the kernel
    queue room to drain. *)

val set_on_fatal : t -> (session:int -> endpoint:int -> exn -> unit) -> unit
(** Called (at most once per endpoint) when a fatal socket error kills
    an endpoint; the harness uses it to surface the owning session as
    [Failed] instead of letting it starve silently. *)

val endpoint : t -> session:int -> endpoint
(** Binds a socket and registers it with the loop.  Raises
    [Unix.Unix_error] if the container forbids sockets. *)

val env : endpoint -> Tfmcc_core.Env.t

val set_deliver : endpoint -> (size:int -> Tfmcc_core.Wire.msg -> unit) -> unit

val endpoint_id : endpoint -> int

val endpoint_dead : endpoint -> bool
(** True once a fatal socket error has retired this endpoint. *)

val close : t -> unit
(** Closes every socket and unregisters the fds from the loop. *)

val frames_sent : t -> int

val frames_delivered : t -> int

val send_errors : t -> int
(** Frames dropped on the send path after retries (every kind, shedding
    included); per-kind breakdown in [tfmcc_rt_send_error_total{kind}],
    first occurrence per (endpoint, kind) journaled under ["rt.udp"]. *)

val send_retries : t -> int

val send_shed : t -> int
(** Frames dropped inside a load-shedding window (subset of
    {!send_errors}). *)

val recv_errors : t -> int
(** [recvfrom] failures other than the EAGAIN/EINTR fast path. *)

val decode_errors : t -> int
