(** Many-session soak driver for the real-time runtime: builds [n]
    TFMCC sessions (one sender, [receivers] receivers each) as fabric
    endpoints on one loop, starts them staggered to decorrelate
    feedback rounds, runs for [duration] loop-seconds and reports
    per-session outcomes.  This is what [tfmcc-sim loopback],
    [tfmcc-sim chaos-rt] and the CI soaks run.

    Sessions run {e supervised} (DESIGN.md §15): every timer, callback
    and delivery hook is wrapped so an exception in one session is a
    session crash — counted, journaled, and answered with
    restart-with-exponential-backoff — never a loop crash.  A stall
    watchdog (the rt mirror of [Netsim.Watchdog]'s no-progress rule)
    catches sessions that stop sending without raising.  Each session
    ends the run with a structured {!Par.outcome}. *)

type transport =
  | Loopback  (** in-process fabric ({!Net}); scales to thousands *)
  | Udp_sockets
      (** kernel UDP ({!Udp}); one fd per endpoint, realtime mode only *)

type supervision = {
  probe_interval : float;  (** seconds between health-probe sweeps *)
  stall_probes : int;
      (** consecutive probes with no new packets before a session
          counts as stalled *)
  max_restarts : int;  (** per session; exceeded -> [Failed] *)
  restart_backoff : float;
      (** first restart delay, seconds; doubles per restart *)
  restart_on_stall : bool;
      (** false: stalls are counted and journaled but not restarted *)
}

val default_supervision : supervision
(** 1 s probes, stalled after 20 idle probes, 3 restarts starting at
    0.25 s backoff, stalls restarted. *)

(** Deterministic fault injection, the harness-level complement of a
    {!Chaos.plan} (which impairs the fabric; these target sessions).
    Times are relative to the config epoch. *)
type fault =
  | Kill_session of { session : int; at : float }
      (** Injects an exception into the session's timer path at [at] —
          exercises the full crash/restart machinery. *)
  | Kill_session_every of { session : int; at : float; period : float; until : float }
      (** Repeated kills; enough of them exhaust [max_restarts] and
          drive the session to [Failed]. *)
  | Stop_sender of { session : int; at : float }
      (** Stops the sender without an exception — the session goes
          quiet, which only the stall watchdog can notice. *)
  | Partition_clr of { at : float; until : float }
      (** At [at], looks up every session's current CLR and blocks that
          endpoint on the fabric until [until] — the rt twin of the
          simulator's CLR-partition scenario.  Loopback only. *)

type config = {
  sessions : int;
  receivers : int;  (** receivers per session *)
  duration : float;  (** loop-seconds (virtual in turbo mode) *)
  impair : Net.impairment;  (** ignored by [Udp_sockets] (the kernel is the shim) *)
  cfg : Tfmcc_core.Config.t;
  mode : Loop.mode;
  transport : transport;
  epoch : float;
  seed : int;
  supervise : supervision;
  chaos : Chaos.plan;  (** fabric impairment schedule; loopback only *)
  faults : fault list;  (** session-targeted fault schedule *)
}

val default : config
(** 4 sessions x 1 receiver, 8 s turbo, 2% loss, 25 ms delay, 5 ms
    jitter — an impairment under which the equation rate is a few
    hundred packets per second, so rates visibly converge within the
    run.  Default supervision, no chaos, no faults. *)

type session_stat = {
  session : int;
  rate : float;  (** final sender rate, bytes/s *)
  packets : int;
  reports : int;
  starved : bool;  (** sender sits in the starvation decay at the end *)
  loss_rate : float;  (** mean receiver loss-event rate *)
  rtt : float;  (** mean receiver RTT estimate *)
  rtt_measured : bool;  (** every receiver holds a real RTT sample *)
  failovers : int;  (** CLR failovers the sender performed *)
  starvations : int;  (** feedback starvation episodes *)
}

type result = {
  stats : session_stat list;
      (** final stats of each session's last incarnation (failed
          sessions report the state they died with) *)
  outcomes : (int * session_stat Par.outcome) list;
      (** per-session structured outcome, PR 6 shape: [Ok stat] for a
          session alive at the end (restarts allowed), [Failed] for a
          crash that exhausted its restarts (or a fatal transport
          error), [Stalled] for a watchdog retirement *)
  wall_s : float;  (** host wall-clock spent inside the loop *)
  end_time : float;  (** loop clock when the run stopped *)
  timers_fired : int;
  clock_anomalies : int;
  frames_sent : int;
  frames_delivered : int;
  frames_lost : int;
  frames_blocked : int;
      (** loopback: partition + flap chaos drops; udp: frames shed *)
  encode_drops : int;
  decode_errors : int;
  crashes : int;  (** session crashes caught across the run *)
  restarts : int;  (** session restarts performed *)
  stalls : int;  (** stall-watchdog firings *)
  sessions_failed : int;  (** sessions in the [Failed] state at the end *)
  loop_exceptions : int;
      (** exceptions that escaped every session guard and hit the loop
          backstop — zero on a healthy run, asserted by the CI soak *)
  clr_partitioned : int;  (** CLR endpoints blocked by [Partition_clr] *)
  chaos : Chaos.t option;  (** applied-plan handle with event counters *)
}

val run : ?obs:Obs.Sink.t -> config -> result
(** Builds its own loop/fabric; [obs] (default a fresh sink) receives
    the live metrics registry, including the [tfmcc_rt_*] transport
    counters, the supervision counters
    ([tfmcc_rt_session_crashes_total], [tfmcc_rt_sessions_restarted_total],
    [tfmcc_rt_sessions_failed_total], [tfmcc_rt_session_stalls_total])
    and a [tfmcc_rt_sessions] gauge.  Raises [Invalid_argument] for a
    chaos plan or [Partition_clr] fault on the UDP transport, or a
    fault naming an unknown session. *)

val converged : session_stat -> cfg:Tfmcc_core.Config.t -> bool
(** Non-zero goodput, not in the starvation decay, and at least one
    packet per measured RTT — i.e. the session ended the run with
    congestion control actually operating, not parked on a degenerate
    floor (the absolute minimum is one packet per 64 s). *)
