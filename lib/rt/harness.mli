(** Many-session soak driver for the real-time runtime: builds [n]
    TFMCC sessions (one sender, [receivers] receivers each) as fabric
    endpoints on one loop, starts them staggered to decorrelate
    feedback rounds, runs for [duration] loop-seconds and reports
    per-session outcomes.  This is what [tfmcc-sim loopback] and the CI
    soak smoke run. *)

type transport =
  | Loopback  (** in-process fabric ({!Net}); scales to thousands *)
  | Udp_sockets
      (** kernel UDP ({!Udp}); one fd per endpoint, realtime mode only *)

type config = {
  sessions : int;
  receivers : int;  (** receivers per session *)
  duration : float;  (** loop-seconds (virtual in turbo mode) *)
  impair : Net.impairment;  (** ignored by [Udp_sockets] (the kernel is the shim) *)
  cfg : Tfmcc_core.Config.t;
  mode : Loop.mode;
  transport : transport;
  epoch : float;
  seed : int;
}

val default : config
(** 4 sessions x 1 receiver, 8 s turbo, 2% loss, 25 ms delay, 5 ms
    jitter — an impairment under which the equation rate is a few
    hundred packets per second, so rates visibly converge within the
    run. *)

type session_stat = {
  session : int;
  rate : float;  (** final sender rate, bytes/s *)
  packets : int;
  reports : int;
  starved : bool;  (** sender sits in the starvation decay at the end *)
  loss_rate : float;  (** mean receiver loss-event rate *)
  rtt : float;  (** mean receiver RTT estimate *)
  rtt_measured : bool;  (** every receiver holds a real RTT sample *)
}

type result = {
  stats : session_stat list;
  wall_s : float;  (** host wall-clock spent inside the loop *)
  end_time : float;  (** loop clock when the run stopped *)
  timers_fired : int;
  clock_anomalies : int;
  frames_sent : int;
  frames_delivered : int;
  frames_lost : int;
  encode_drops : int;
  decode_errors : int;
}

val run : ?obs:Obs.Sink.t -> config -> result
(** Builds its own loop/fabric; [obs] (default a fresh sink) receives
    the live metrics registry, including the [tfmcc_rt_*] transport
    counters and a [tfmcc_rt_sessions] gauge. *)

val converged : session_stat -> cfg:Tfmcc_core.Config.t -> bool
(** Non-zero goodput, not in the starvation decay, and at least one
    packet per measured RTT — i.e. the session ended the run with
    congestion control actually operating, not parked on a degenerate
    floor (the absolute minimum is one packet per 64 s). *)
