(* Real-UDP transport (see udp.mli). *)

open Tfmcc_core

type endpoint = {
  ep_id : int;
  session : int;
  fd : Unix.file_descr;
  addr : Unix.sockaddr;
  net : t;
  mutable deliver : (size:int -> Wire.msg -> unit) option;
}

and t = {
  loop : Loop.t;
  endpoints : (int, endpoint) Hashtbl.t;
  groups : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  buf : Bytes.t;
  sendbuf : Bytes.t;  (* shared scratch datagram; see [send] *)
  mutable next_id : int;
  mutable sent : int;
  mutable delivered : int;
  mutable send_errs : int;
  mutable dec_errors : int;
}

let create loop () =
  if Loop.mode loop = Loop.Turbo then
    invalid_arg "Udp.create: needs a realtime loop (virtual time outruns sockets)";
  {
    loop;
    endpoints = Hashtbl.create 16;
    groups = Hashtbl.create 16;
    buf = Bytes.create 65536;
    sendbuf = Bytes.make 65536 '\000';
    next_id = 0;
    sent = 0;
    delivered = 0;
    send_errs = 0;
    dec_errors = 0;
  }

let drain ep =
  let t = ep.net in
  let rec go () =
    match Unix.recvfrom ep.fd t.buf 0 (Bytes.length t.buf) [] with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | len, _from ->
        (match ep.deliver with
        | None -> ()
        | Some f -> (
            match Wire.decode (Bytes.sub t.buf 0 len) with
            | Ok msg ->
                t.delivered <- t.delivered + 1;
                f ~size:len msg
            | Error _ -> t.dec_errors <- t.dec_errors + 1));
        go ()
  in
  go ()

let endpoint t ~session =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.set_nonblock fd;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let addr = Unix.getsockname fd in
  let ep = { ep_id = t.next_id; session; fd; addr; net = t; deliver = None } in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.endpoints ep.ep_id ep;
  Loop.watch_fd t.loop fd (fun () -> drain ep);
  ep

let set_deliver ep f = ep.deliver <- Some f

let endpoint_id ep = ep.ep_id

let join ep =
  let g =
    match Hashtbl.find_opt ep.net.groups ep.session with
    | Some g -> g
    | None ->
        let g = Hashtbl.create 16 in
        Hashtbl.replace ep.net.groups ep.session g;
        g
  in
  Hashtbl.replace g ep.ep_id ()

let leave ep =
  match Hashtbl.find_opt ep.net.groups ep.session with
  | None -> ()
  | Some g -> Hashtbl.remove g ep.ep_id

let members t session =
  match Hashtbl.find_opt t.groups session with
  | None -> []
  | Some g -> List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) g [])

let send ep ~dest ~flow:_ ~size msg =
  let t = ep.net in
  (* Encode into the fabric's shared scratch datagram: [Unix.sendto]
     copies the bytes into the kernel synchronously, so — unlike the
     loopback fabric, whose frames sit in timer closures until delivery
     — the buffer is free again the moment each sendto returns.  Zero
     allocation per frame.  Only the codec header region is ever
     written, so the padding tail stays all-zero across reuses; data
     frames pad to the configured packet size, report frames go out at
     their exact wire size. *)
  let enc_len =
    match msg with
    | Wire.Report _ -> Wire.encoded_report_size
    | Wire.Data _ -> Wire.encoded_data_size
  in
  let frame_len = if size > enc_len then size else enc_len in
  let frame =
    if frame_len <= Bytes.length t.sendbuf then t.sendbuf
    else Bytes.make frame_len '\000' (* > 64 KiB: exceeds UDP anyway *)
  in
  match
    match msg with
    | Wire.Report r -> Wire.encode_report_into frame r
    | Wire.Data d -> Wire.encode_data_into frame d
  with
  | exception Invalid_argument _ -> t.send_errs <- t.send_errs + 1
  | (_ : int) ->
      let dests =
        match dest with
        | Env.To_node id -> if id = ep.ep_id then [] else [ id ]
        | Env.To_group ->
            List.filter (fun id -> id <> ep.ep_id) (members t ep.session)
      in
      List.iter
        (fun dst ->
          match Hashtbl.find_opt t.endpoints dst with
          | None -> ()
          | Some peer -> (
              t.sent <- t.sent + 1;
              match Unix.sendto ep.fd frame 0 frame_len [] peer.addr with
              | n when n = frame_len -> ()
              | _ -> t.send_errs <- t.send_errs + 1
              | exception Unix.Unix_error (_, _, _) ->
                  t.send_errs <- t.send_errs + 1))
        dests

let env ep =
  {
    Env.id = ep.ep_id;
    now = (fun () -> Loop.now ep.net.loop);
    after = (fun ~delay fn -> Loop.after ep.net.loop ~delay fn);
    after_unit =
      (fun ~delay fn ->
        ignore (Loop.after ep.net.loop ~delay fn : Tfmcc_core.Env.timer));
    at = (fun ~time fn -> Loop.at ep.net.loop ~time fn);
    send = (fun ~dest ~flow ~size msg -> send ep ~dest ~flow ~size msg);
    join = (fun () -> join ep);
    leave = (fun () -> leave ep);
    split_rng = (fun () -> Loop.split_rng ep.net.loop);
    obs = Loop.obs ep.net.loop;
  }

let close t =
  Hashtbl.iter
    (fun _ ep ->
      Loop.unwatch_fd t.loop ep.fd;
      try Unix.close ep.fd with Unix.Unix_error (_, _, _) -> ())
    t.endpoints;
  Hashtbl.reset t.endpoints

let frames_sent t = t.sent

let frames_delivered t = t.delivered

let send_errors t = t.send_errs

let decode_errors t = t.dec_errors
