(* Real-UDP transport (see udp.mli). *)

open Tfmcc_core

type error_class = Transient | Degraded | Fatal

(* The taxonomy (DESIGN.md §15): Transient errors are pressure that a
   bounded retry can ride out; Degraded means this datagram (or this
   peer) is lost but the socket is fine — drop and move on, which is
   what UDP promises anyway; anything else is Fatal: the socket itself
   is broken and the session owning it cannot make progress. *)
let classify = function
  | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ENOBUFS | Unix.ENOMEM ->
      Transient
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.EHOSTUNREACH | Unix.EHOSTDOWN
  | Unix.ENETUNREACH | Unix.ENETDOWN | Unix.EMSGSIZE | Unix.EPIPE ->
      Degraded
  | _ -> Fatal

let kind_of_error = function
  | Unix.EAGAIN | Unix.EWOULDBLOCK -> "eagain"
  | Unix.EINTR -> "eintr"
  | Unix.ENOBUFS -> "enobufs"
  | Unix.ENOMEM -> "enomem"
  | Unix.ECONNREFUSED -> "refused"
  | Unix.ECONNRESET -> "reset"
  | Unix.EHOSTUNREACH | Unix.EHOSTDOWN -> "host-unreach"
  | Unix.ENETUNREACH | Unix.ENETDOWN -> "net-unreach"
  | Unix.EMSGSIZE -> "msgsize"
  | Unix.EPIPE -> "pipe"
  | _ -> "fatal"

type endpoint = {
  ep_id : int;
  session : int;
  fd : Unix.file_descr;
  addr : Unix.sockaddr;
  net : t;
  mutable deliver : (size:int -> Wire.msg -> unit) option;
  mutable dead : bool; (* fatal socket error observed; no further IO *)
}

and t = {
  loop : Loop.t;
  endpoints : (int, endpoint) Hashtbl.t;
  groups : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  buf : Bytes.t;
  sendbuf : Bytes.t;  (* shared scratch datagram; see [send] *)
  max_retries : int;
  retry_backoff_s : float;
  shed_threshold : int;
  shed_window_s : float;
  mutable next_id : int;
  mutable sent : int;
  mutable delivered : int;
  mutable send_errs : int;
  mutable send_retries : int;
  mutable send_shed : int;
  mutable recv_errs : int;
  mutable dec_errors : int;
  mutable enobufs_streak : int;
  mutable shed_until : float;
  mutable on_fatal : (session:int -> endpoint:int -> exn -> unit) option;
  (* First-occurrence-per-(endpoint,kind) journal dedup: a saturated
     socket can fail thousands of times a second, and the journal ring
     is bounded — one entry per failure mode per endpoint is the signal,
     the counters carry the volume. *)
  journaled : (int * string, unit) Hashtbl.t;
  kind_counters : (string * string, Obs.Metrics.Counter.t) Hashtbl.t;
}

let scope_for ep =
  Obs.Journal.scope ~session:ep.session ~node:ep.ep_id "rt.udp"

let counter t family kind =
  match Hashtbl.find_opt t.kind_counters (family, kind) with
  | Some c -> c
  | None ->
      let c =
        Obs.Metrics.counter (Loop.obs t.loop).Obs.Sink.metrics
          ~labels:[ ("kind", kind) ]
          family
      in
      Hashtbl.replace t.kind_counters (family, kind) c;
      c

let journal_first t ep ~severity ~kind ~detail =
  if not (Hashtbl.mem t.journaled (ep.ep_id, kind)) then begin
    Hashtbl.replace t.journaled (ep.ep_id, kind) ();
    Obs.Sink.event (Loop.obs t.loop) ~time:(Loop.now t.loop) ~severity
      (scope_for ep)
      (Obs.Journal.Fault { kind; detail })
  end

let send_error t ep ~kind ~detail =
  t.send_errs <- t.send_errs + 1;
  Obs.Metrics.Counter.inc (counter t "tfmcc_rt_send_error_total" kind);
  journal_first t ep ~severity:Obs.Journal.Warn ~kind:("send-" ^ kind) ~detail

let recv_error t ep ~kind ~detail =
  t.recv_errs <- t.recv_errs + 1;
  Obs.Metrics.Counter.inc (counter t "tfmcc_rt_recv_error_total" kind);
  journal_first t ep ~severity:Obs.Journal.Warn ~kind:("recv-" ^ kind) ~detail

let fatal t ep ~dir exn ~kind =
  ep.dead <- true;
  Loop.unwatch_fd t.loop ep.fd;
  journal_first t ep ~severity:Obs.Journal.Error ~kind:(dir ^ "-fatal")
    ~detail:(kind ^ ": " ^ Printexc.to_string exn);
  match t.on_fatal with
  | None -> ()
  | Some f -> f ~session:ep.session ~endpoint:ep.ep_id exn

let create ?(max_retries = 2) ?(retry_backoff_s = 0.0005)
    ?(shed_threshold = 16) ?(shed_window_s = 0.05) loop () =
  if Loop.mode loop = Loop.Turbo then
    invalid_arg "Udp.create: needs a realtime loop (virtual time outruns sockets)";
  if max_retries < 0 then invalid_arg "Udp.create: max_retries must be >= 0";
  if not (Float.is_finite retry_backoff_s && retry_backoff_s >= 0.) then
    invalid_arg "Udp.create: retry_backoff_s must be finite and >= 0";
  if shed_threshold < 1 then invalid_arg "Udp.create: shed_threshold must be >= 1";
  if not (Float.is_finite shed_window_s && shed_window_s >= 0.) then
    invalid_arg "Udp.create: shed_window_s must be finite and >= 0";
  {
    loop;
    endpoints = Hashtbl.create 16;
    groups = Hashtbl.create 16;
    buf = Bytes.create 65536;
    sendbuf = Bytes.make 65536 '\000';
    max_retries;
    retry_backoff_s;
    shed_threshold;
    shed_window_s;
    next_id = 0;
    sent = 0;
    delivered = 0;
    send_errs = 0;
    send_retries = 0;
    send_shed = 0;
    recv_errs = 0;
    dec_errors = 0;
    enobufs_streak = 0;
    shed_until = neg_infinity;
    on_fatal = None;
    journaled = Hashtbl.create 16;
    kind_counters = Hashtbl.create 8;
  }

let set_on_fatal t f = t.on_fatal <- Some f

let drain ep =
  let t = ep.net in
  let rec go () =
    if ep.dead then ()
    else
      match Unix.recvfrom ep.fd t.buf 0 (Bytes.length t.buf) [] with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception (Unix.Unix_error (err, _, _) as e) -> (
          let kind = kind_of_error err in
          match classify err with
          | Transient ->
              (* Pressure (ENOBUFS/ENOMEM): count it and yield; select
                 will call us back, retrying here would spin. *)
              recv_error t ep ~kind ~detail:"recv"
          | Degraded ->
              (* e.g. ECONNREFUSED surfaced from a peer's ICMP
                 unreachable — that datagram is gone, the socket is
                 fine; keep draining. *)
              recv_error t ep ~kind ~detail:"recv";
              go ()
          | Fatal ->
              recv_error t ep ~kind ~detail:"recv";
              fatal t ep ~dir:"recv" e ~kind)
      | len, _from ->
          (match ep.deliver with
          | None -> ()
          | Some f -> (
              match Wire.decode (Bytes.sub t.buf 0 len) with
              | Ok msg ->
                  t.delivered <- t.delivered + 1;
                  f ~size:len msg
              | Error _ -> t.dec_errors <- t.dec_errors + 1));
          go ()
  in
  go ()

let endpoint t ~session =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.set_nonblock fd;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let addr = Unix.getsockname fd in
  let ep =
    { ep_id = t.next_id; session; fd; addr; net = t; deliver = None; dead = false }
  in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.endpoints ep.ep_id ep;
  Loop.watch_fd t.loop fd (fun () -> drain ep);
  ep

let set_deliver ep f = ep.deliver <- Some f

let endpoint_id ep = ep.ep_id

let endpoint_dead ep = ep.dead

let join ep =
  let g =
    match Hashtbl.find_opt ep.net.groups ep.session with
    | Some g -> g
    | None ->
        let g = Hashtbl.create 16 in
        Hashtbl.replace ep.net.groups ep.session g;
        g
  in
  Hashtbl.replace g ep.ep_id ()

let leave ep =
  match Hashtbl.find_opt ep.net.groups ep.session with
  | None -> ()
  | Some g -> Hashtbl.remove g ep.ep_id

let members t session =
  match Hashtbl.find_opt t.groups session with
  | None -> []
  | Some g -> List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) g [])

(* One datagram to one peer, with bounded retry for transient pressure.
   A sustained ENOBUFS streak opens a shedding window: for
   [shed_window_s] every frame is dropped without a syscall, giving the
   kernel queue room to drain instead of hammering it — classic
   load-shed, counted under kind="shed". *)
let send_one t ep peer frame frame_len =
  let rec attempt tries =
    match Unix.sendto ep.fd frame 0 frame_len [] peer.addr with
    | n when n = frame_len -> t.enobufs_streak <- 0
    | _ -> send_error t ep ~kind:"short_write" ~detail:"sendto"
    | exception Unix.Unix_error (err, _, _) -> (
        let kind = kind_of_error err in
        match classify err with
        | Transient ->
            if err = Unix.ENOBUFS then begin
              t.enobufs_streak <- t.enobufs_streak + 1;
              if t.enobufs_streak >= t.shed_threshold then begin
                t.enobufs_streak <- 0;
                t.shed_until <- Loop.now t.loop +. t.shed_window_s;
                journal_first t ep ~severity:Obs.Journal.Warn ~kind:"send-shed"
                  ~detail:
                    (Printf.sprintf "enobufs streak >= %d, shedding %.0fms"
                       t.shed_threshold (t.shed_window_s *. 1e3))
              end
            end;
            if tries < t.max_retries && Loop.now t.loop >= t.shed_until then begin
              t.send_retries <- t.send_retries + 1;
              Obs.Metrics.Counter.inc (counter t "tfmcc_rt_send_retries_total" kind);
              if t.retry_backoff_s > 0. then Unix.sleepf t.retry_backoff_s;
              attempt (tries + 1)
            end
            else send_error t ep ~kind ~detail:"sendto"
        | Degraded -> send_error t ep ~kind ~detail:"sendto"
        | Fatal ->
            send_error t ep ~kind ~detail:"sendto";
            fatal t ep ~dir:"send" (Unix.Unix_error (err, "sendto", "")) ~kind)
  in
  attempt 0

let send ep ~dest ~flow:_ ~size msg =
  let t = ep.net in
  if ep.dead then ()
  else if Loop.now t.loop < t.shed_until then begin
    (* Shedding window open: drop at the door, no syscall. *)
    let n =
      match dest with
      | Env.To_node id -> if id = ep.ep_id then 0 else 1
      | Env.To_group ->
          List.length (List.filter (fun id -> id <> ep.ep_id) (members t ep.session))
    in
    if n > 0 then begin
      t.send_shed <- t.send_shed + n;
      Obs.Metrics.Counter.add (counter t "tfmcc_rt_send_error_total" "shed") n
    end
  end
  else begin
    (* Encode into the fabric's shared scratch datagram: [Unix.sendto]
       copies the bytes into the kernel synchronously, so — unlike the
       loopback fabric, whose frames sit in timer closures until delivery
       — the buffer is free again the moment each sendto returns.  Zero
       allocation per frame.  Only the codec header region is ever
       written, so the padding tail stays all-zero across reuses; data
       frames pad to the configured packet size, report frames go out at
       their exact wire size. *)
    let enc_len =
      match msg with
      | Wire.Report _ -> Wire.encoded_report_size
      | Wire.Data _ -> Wire.encoded_data_size
    in
    let frame_len = if size > enc_len then size else enc_len in
    let frame =
      if frame_len <= Bytes.length t.sendbuf then t.sendbuf
      else Bytes.make frame_len '\000' (* > 64 KiB: exceeds UDP anyway *)
    in
    match
      match msg with
      | Wire.Report r -> Wire.encode_report_into frame r
      | Wire.Data d -> Wire.encode_data_into frame d
    with
    | exception Invalid_argument _ -> send_error t ep ~kind:"encode" ~detail:"encode"
    | (_ : int) ->
        let dests =
          match dest with
          | Env.To_node id -> if id = ep.ep_id then [] else [ id ]
          | Env.To_group ->
              List.filter (fun id -> id <> ep.ep_id) (members t ep.session)
        in
        List.iter
          (fun dst ->
            match Hashtbl.find_opt t.endpoints dst with
            | None -> ()
            | Some peer ->
                if not (ep.dead || peer.dead) then begin
                  t.sent <- t.sent + 1;
                  send_one t ep peer frame frame_len
                end)
          dests
  end

let env ep =
  {
    Env.id = ep.ep_id;
    now = (fun () -> Loop.now ep.net.loop);
    after = (fun ~delay fn -> Loop.after ep.net.loop ~delay fn);
    after_unit =
      (fun ~delay fn ->
        ignore (Loop.after ep.net.loop ~delay fn : Tfmcc_core.Env.timer));
    at = (fun ~time fn -> Loop.at ep.net.loop ~time fn);
    send = (fun ~dest ~flow ~size msg -> send ep ~dest ~flow ~size msg);
    join = (fun () -> join ep);
    leave = (fun () -> leave ep);
    split_rng = (fun () -> Loop.split_rng ep.net.loop);
    obs = Loop.obs ep.net.loop;
  }

let close t =
  Hashtbl.iter
    (fun _ ep ->
      Loop.unwatch_fd t.loop ep.fd;
      try Unix.close ep.fd with Unix.Unix_error (_, _, _) -> ())
    t.endpoints;
  Hashtbl.reset t.endpoints

let frames_sent t = t.sent

let frames_delivered t = t.delivered

let send_errors t = t.send_errs

let send_retries t = t.send_retries

let send_shed t = t.send_shed

let recv_errors t = t.recv_errs

let decode_errors t = t.dec_errors
