(* Event loop for the real-time runtime (see loop.mli). *)

type mode = Turbo | Realtime

type t = {
  mode : mode;
  wheel : Wheel.t;
  mutable vnow : float; (* turbo clock; realtime: last sampled value *)
  mutable clock : unit -> float; (* realtime monotonic clock *)
  obs : Obs.Sink.t;
  rng : Stats.Rng.t;
  late_tolerance : float;
  mutable running : bool;
  mutable fds : (Unix.file_descr * (unit -> unit)) list;
  mutable anomalies : int;
  (* Exception backstop (DESIGN.md §15): without a handler, an exception
     escaping a timer or fd callback propagates out of [run] — the
     pre-chaos behavior, and the right one for tests that want to see
     their own bugs.  With a handler installed (the supervised harness
     does), the loop survives: the exception is counted, handed to the
     handler, and the remaining timers keep firing. *)
  mutable exn_handler : (exn -> Printexc.raw_backtrace -> unit) option;
  mutable exns_caught : int;
}

(* Same metric family as Tfmcc_core.Env.clock_anomaly, registered
   lazily for the same reason: an anomaly-free run leaves the registry
   untouched. *)
let anomaly t ~kind =
  t.anomalies <- t.anomalies + 1;
  Obs.Metrics.Counter.inc
    (Obs.Metrics.counter t.obs.Obs.Sink.metrics
       ~labels:[ ("kind", kind) ]
       "tfmcc_rt_clock_anomaly_total")

let create ?(mode = Turbo) ?(epoch = 0.) ?obs ?(seed = 42)
    ?(late_tolerance_s = 0.05) () =
  let obs = match obs with Some s -> s | None -> Obs.Sink.create () in
  let t =
    {
      mode;
      wheel = Wheel.create ~start:epoch ();
      vnow = epoch;
      clock = (fun () -> epoch);
      obs;
      rng = Stats.Rng.create seed;
      late_tolerance = late_tolerance_s;
      running = false;
      fds = [];
      anomalies = 0;
      exn_handler = None;
      exns_caught = 0;
    }
  in
  (match mode with
  | Turbo -> ()
  | Realtime ->
      let t0 = Unix.gettimeofday () in
      let raw () = epoch +. (Unix.gettimeofday () -. t0) in
      t.clock <-
        Tfmcc_core.Env.monotonic_clock
          ~on_anomaly:(fun _magnitude -> anomaly t ~kind:"clock-backstep")
          raw);
  t

let mode t = t.mode

let now t =
  match t.mode with
  | Turbo -> t.vnow
  | Realtime ->
      let n = t.clock () in
      t.vnow <- n;
      n

let obs t = t.obs

let split_rng t = Stats.Rng.split t.rng

let timer_of e = { Tfmcc_core.Env.cancel = (fun () -> Wheel.cancel e) }

(* The handler is consulted at fire time, not schedule time: installing
   it after timers are queued still protects them.  The metric is
   registered lazily so an exception-free run leaves the registry
   untouched. *)
let protect t fn () =
  match t.exn_handler with
  | None -> fn ()
  | Some handler -> (
      try fn ()
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        t.exns_caught <- t.exns_caught + 1;
        Obs.Metrics.Counter.inc
          (Obs.Metrics.counter t.obs.Obs.Sink.metrics
             "tfmcc_rt_loop_exceptions_total");
        handler e bt)

let set_exn_handler t h = t.exn_handler <- Some h

let exceptions_caught t = t.exns_caught

let after t ~delay fn =
  let delay =
    if Float.is_finite delay && delay >= 0. then delay
    else begin
      anomaly t ~kind:"bad-delay";
      0.
    end
  in
  timer_of (Wheel.schedule t.wheel ~at:(now t +. delay) (protect t fn))

let at t ~time fn =
  let time =
    if Float.is_finite time then time
    else begin
      anomaly t ~kind:"bad-delay";
      now t
    end
  in
  timer_of (Wheel.schedule t.wheel ~at:time (protect t fn))

(* Self-rescheduling periodic timer.  The chain survives a callback
   exception when an exn handler is installed ([protect] runs inside the
   scheduled closure, after the next occurrence is queued), and cancel
   works mid-chain: the [cancelled] flag mutes whichever wheel entry is
   current. *)
let every t ~interval fn =
  if not (Float.is_finite interval && interval > 0.) then
    invalid_arg "Loop.every: interval must be finite and positive";
  let cancelled = ref false in
  let cur = ref None in
  let rec arm ~time =
    let e =
      Wheel.schedule t.wheel ~at:time (fun () ->
          if not !cancelled then begin
            arm ~time:(time +. interval);
            protect t fn ()
          end)
    in
    cur := Some e
  in
  arm ~time:(now t +. interval);
  {
    Tfmcc_core.Env.cancel =
      (fun () ->
        cancelled := true;
        match !cur with None -> () | Some e -> Wheel.cancel e);
  }

let watch_fd t fd cb = t.fds <- (fd, cb) :: List.remove_assoc fd t.fds

let unwatch_fd t fd = t.fds <- List.remove_assoc fd t.fds

let stop t = t.running <- false

let run_turbo ?until t =
  let continue_ = ref true in
  while !continue_ && t.running do
    match Wheel.next_due t.wheel with
    | None ->
        (match until with Some u -> t.vnow <- max t.vnow u | None -> ());
        continue_ := false
    | Some due -> (
        match until with
        | Some u when due > u ->
            t.vnow <- max t.vnow u;
            continue_ := false
        | _ ->
            t.vnow <- max t.vnow due;
            ignore (Wheel.advance t.wheel ~now:t.vnow ()))
  done

let run_realtime ?until t =
  let stop_at = match until with Some u -> u | None -> infinity in
  let late d = if d > t.late_tolerance then anomaly t ~kind:"late-timer" in
  let continue_ = ref true in
  while !continue_ && t.running do
    let nw = now t in
    if nw >= stop_at then continue_ := false
    else begin
      ignore (Wheel.advance t.wheel ~now:nw ~late ());
      match (Wheel.next_due t.wheel, t.fds) with
      | None, [] -> continue_ := false
      | next, fds -> (
          let target =
            match next with Some a -> Float.min a stop_at | None -> stop_at
          in
          (* Cap the sleep so a far-off deadline still re-samples the
             clock (and anomaly counters) at a human timescale. *)
          let timeout = Float.max 0. (Float.min 0.25 (target -. now t)) in
          match fds with
          | [] -> if timeout > 0. then Unix.sleepf timeout
          | fds -> (
              match Unix.select (List.map fst fds) [] [] timeout with
              | ready, _, _ ->
                  List.iter
                    (fun fd ->
                      match List.assoc_opt fd t.fds with
                      | Some cb -> protect t cb ()
                      | None -> ())
                    ready
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
    end
  done

let run ?until t =
  t.running <- true;
  (match t.mode with
  | Turbo -> run_turbo ?until t
  | Realtime -> run_realtime ?until t);
  t.running <- false

let run_for t ~duration = run ~until:(now t +. duration) t

let timers_fired t = Wheel.fired t.wheel

let timers_pending t = Wheel.pending t.wheel

let clock_anomalies t = t.anomalies
