(* In-process loopback datagram fabric (see net.mli). *)

open Tfmcc_core

type impairment = { loss : float; delay : float; jitter : float; warmup : float }

let impairment ?(loss = 0.) ?(delay = 0.) ?(jitter = 0.) ?(warmup = 0.) () =
  if loss < 0. || loss > 1. || not (Float.is_finite loss) then
    invalid_arg "Net.impairment: loss must be in [0,1]";
  if delay < 0. || not (Float.is_finite delay) then
    invalid_arg "Net.impairment: delay must be finite and non-negative";
  if jitter < 0. || not (Float.is_finite jitter) then
    invalid_arg "Net.impairment: jitter must be finite and non-negative";
  if warmup < 0. || not (Float.is_finite warmup) then
    invalid_arg "Net.impairment: warmup must be finite and non-negative";
  { loss; delay; jitter; warmup }

type endpoint = {
  ep_id : int;
  session : int;
  net : t;
  mutable deliver : (size:int -> Wire.msg -> unit) option;
}

and t = {
  loop : Loop.t;
  mutable impair : impairment; (* current shim; chaos plans rewrite it *)
  base_impair : impairment; (* as configured at creation (chaos restores to it) *)
  rng : Stats.Rng.t; (* impairment draws, split off the loop's master *)
  endpoints : (int, endpoint) Hashtbl.t;
  groups : (int, (int, unit) Hashtbl.t) Hashtbl.t; (* session -> member ids *)
  last_arrival : (int * int, float) Hashtbl.t; (* (src,dst) -> FIFO horizon *)
  loss_from : float; (* loop time the loss dice start rolling *)
  (* Chaos state (DESIGN.md §15).  [blocked] refcounts endpoints taken
     out by partitions/churn — overlapping windows may block the same
     endpoint twice, and it only resurfaces once every window heals.
     [blocked_n] caches the live entry count so the clean-path send
     pays two int compares, not hash lookups. *)
  blocked : (int, int) Hashtbl.t;
  mutable blocked_n : int;
  mutable fabric_up : bool;
  mutable next_id : int;
  mutable sent : int;
  mutable delivered : int;
  mutable lost : int;
  mutable enc_drops : int;
  mutable dec_errors : int;
  mutable partition_drops : int;
  mutable flap_drops : int;
  m_sent : Obs.Metrics.Counter.t;
  m_delivered : Obs.Metrics.Counter.t;
  m_lost : Obs.Metrics.Counter.t;
  m_enc : Obs.Metrics.Counter.t;
  m_dec : Obs.Metrics.Counter.t;
  m_partition : Obs.Metrics.Counter.t;
  m_flap : Obs.Metrics.Counter.t;
}

let create loop ?(impair = impairment ()) () =
  let m = (Loop.obs loop).Obs.Sink.metrics in
  {
    loop;
    impair;
    base_impair = impair;
    rng = Loop.split_rng loop;
    endpoints = Hashtbl.create 64;
    groups = Hashtbl.create 16;
    last_arrival = Hashtbl.create 64;
    loss_from = Loop.now loop +. impair.warmup;
    blocked = Hashtbl.create 16;
    blocked_n = 0;
    fabric_up = true;
    next_id = 0;
    sent = 0;
    delivered = 0;
    lost = 0;
    enc_drops = 0;
    dec_errors = 0;
    partition_drops = 0;
    flap_drops = 0;
    m_sent = Obs.Metrics.counter m "tfmcc_rt_frames_sent_total";
    m_delivered = Obs.Metrics.counter m "tfmcc_rt_frames_delivered_total";
    m_lost =
      Obs.Metrics.counter m ~labels:[ ("reason", "loss") ] "tfmcc_rt_frame_drop_total";
    m_enc =
      Obs.Metrics.counter m ~labels:[ ("reason", "encode") ]
        "tfmcc_rt_frame_drop_total";
    m_dec =
      Obs.Metrics.counter m ~labels:[ ("reason", "decode") ]
        "tfmcc_rt_frame_drop_total";
    m_partition =
      Obs.Metrics.counter m ~labels:[ ("reason", "partition") ]
        "tfmcc_rt_frame_drop_total";
    m_flap =
      Obs.Metrics.counter m ~labels:[ ("reason", "flap") ]
        "tfmcc_rt_frame_drop_total";
  }

let loop t = t.loop

let sessions t =
  List.sort compare (Hashtbl.fold (fun sid _ acc -> sid :: acc) t.groups [])

(* ----------------------------------------------------------- chaos hooks *)

let set_impair t impair = t.impair <- impair

let current_impair t = t.impair

let base_impair t = t.base_impair

let set_fabric_up t up = t.fabric_up <- up

let fabric_up t = t.fabric_up

let block t id =
  (match Hashtbl.find_opt t.blocked id with
  | None ->
      Hashtbl.replace t.blocked id 1;
      t.blocked_n <- t.blocked_n + 1
  | Some n -> Hashtbl.replace t.blocked id (n + 1))

let unblock t id =
  match Hashtbl.find_opt t.blocked id with
  | None -> ()
  | Some 1 ->
      Hashtbl.remove t.blocked id;
      t.blocked_n <- t.blocked_n - 1
  | Some n -> Hashtbl.replace t.blocked id (n - 1)

let is_blocked t id = t.blocked_n > 0 && Hashtbl.mem t.blocked id

let blocked_count t = t.blocked_n

let endpoint t ~session =
  let ep = { ep_id = t.next_id; session; net = t; deliver = None } in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.endpoints ep.ep_id ep;
  ep

let set_deliver ep f = ep.deliver <- Some f

let endpoint_id ep = ep.ep_id

let members t session =
  match Hashtbl.find_opt t.groups session with
  | None -> []
  | Some g -> List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) g [])

let join ep =
  let t = ep.net in
  let g =
    match Hashtbl.find_opt t.groups ep.session with
    | Some g -> g
    | None ->
        let g = Hashtbl.create 16 in
        Hashtbl.replace t.groups ep.session g;
        g
  in
  Hashtbl.replace g ep.ep_id ()

let leave ep =
  match Hashtbl.find_opt ep.net.groups ep.session with
  | None -> ()
  | Some g -> Hashtbl.remove g ep.ep_id

let deliver_frame t dst frame =
  match Hashtbl.find_opt t.endpoints dst with
  | None -> ()
  | Some ep -> (
      match ep.deliver with
      | None -> ()
      | Some f -> (
          match Wire.decode frame with
          | Ok msg ->
              t.delivered <- t.delivered + 1;
              Obs.Metrics.Counter.inc t.m_delivered;
              f ~size:(Bytes.length frame) msg
          | Error _ ->
              t.dec_errors <- t.dec_errors + 1;
              Obs.Metrics.Counter.inc t.m_dec))

let send ep ~dest ~flow:_ ~size msg =
  let t = ep.net in
  (* Encode straight into the final padded datagram: data frames ride
     datagrams of the configured packet size with the codec header as a
     prefix (decode ignores the tail), report frames are never padded —
     their wire size is exact.  One allocation per frame, no
     encode-then-pad blit.  The buffer cannot be a reusable scratch
     here: it is captured by the delivery timer closure (shared by every
     multicast destination) and must stay immutable until the last
     in-flight copy lands. *)
  let enc_len =
    match msg with
    | Wire.Report _ -> Wire.encoded_report_size
    | Wire.Data _ -> Wire.encoded_data_size
  in
  let frame = Bytes.make (if size > enc_len then size else enc_len) '\000' in
  match
    match msg with
    | Wire.Report r -> Wire.encode_report_into frame r
    | Wire.Data d -> Wire.encode_data_into frame d
  with
  | exception Invalid_argument _ ->
      (* A non-finite field slipped past the protocol core: drop the
         frame, as a real transport would, and make it visible. *)
      t.enc_drops <- t.enc_drops + 1;
      Obs.Metrics.Counter.inc t.m_enc
  | (_ : int) ->
      let dests =
        match dest with
        | Env.To_node id -> if id = ep.ep_id then [] else [ id ]
        | Env.To_group ->
            List.filter (fun id -> id <> ep.ep_id) (members t ep.session)
      in
      (* Chaos checks happen at send time: frames already in flight when
         a partition or flap begins still land, like packets on the wire
         when a real link goes down behind them. *)
      let src_blocked = is_blocked t ep.ep_id in
      List.iter
        (fun dst ->
          t.sent <- t.sent + 1;
          Obs.Metrics.Counter.inc t.m_sent;
          if not t.fabric_up then begin
            t.flap_drops <- t.flap_drops + 1;
            Obs.Metrics.Counter.inc t.m_flap
          end
          else if src_blocked || is_blocked t dst then begin
            t.partition_drops <- t.partition_drops + 1;
            Obs.Metrics.Counter.inc t.m_partition
          end
          else if
            t.impair.loss > 0.
            && Loop.now t.loop >= t.loss_from
            && Stats.Rng.uniform t.rng < t.impair.loss
          then begin
            t.lost <- t.lost + 1;
            Obs.Metrics.Counter.inc t.m_lost
          end
          else begin
            let extra =
              if t.impair.jitter > 0. then t.impair.jitter *. Stats.Rng.uniform t.rng
              else 0.
            in
            (* Jitter must not reorder a path: like a netem-shaped FIFO
               link (and like the simulator's queues), an arrival never
               precedes the previous arrival on the same (src,dst). *)
            let now = Loop.now t.loop in
            let arrival = now +. t.impair.delay +. extra in
            let key = (ep.ep_id, dst) in
            let arrival =
              match Hashtbl.find_opt t.last_arrival key with
              | Some prev when prev > arrival -> prev
              | _ -> arrival
            in
            Hashtbl.replace t.last_arrival key arrival;
            ignore
              (Loop.at t.loop ~time:arrival (fun () -> deliver_frame t dst frame))
          end)
        dests

let env ep =
  {
    Env.id = ep.ep_id;
    now = (fun () -> Loop.now ep.net.loop);
    after = (fun ~delay fn -> Loop.after ep.net.loop ~delay fn);
    after_unit =
      (fun ~delay fn ->
        ignore (Loop.after ep.net.loop ~delay fn : Tfmcc_core.Env.timer));
    at = (fun ~time fn -> Loop.at ep.net.loop ~time fn);
    send = (fun ~dest ~flow ~size msg -> send ep ~dest ~flow ~size msg);
    join = (fun () -> join ep);
    leave = (fun () -> leave ep);
    split_rng = (fun () -> Loop.split_rng ep.net.loop);
    obs = Loop.obs ep.net.loop;
  }

let frames_sent t = t.sent

let frames_delivered t = t.delivered

let frames_lost t = t.lost

let encode_drops t = t.enc_drops

let decode_errors t = t.dec_errors

let partition_drops t = t.partition_drops

let flap_drops t = t.flap_drops
