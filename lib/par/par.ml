(* Worker domains carry a DLS marker recording which task index they are
   currently running, so nested submission (a pool task calling back into
   [map]) can be rejected with a message naming the offending task
   instead of deadlocking.  [None] between tasks and outside workers. *)
let running_task : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

type cancel_reason = Timeout of float | Stall of string

exception Cancelled of cancel_reason

let describe_cancel = function
  | Timeout after -> Printf.sprintf "wall-clock timeout after %gs" after
  | Stall reason -> reason

(* ------------------------------------------------------------- control *)

module Control = struct
  type t = {
    live : bool;  (* the shared [none] control never cancels *)
    mutable started : float;  (* Unix time the current attempt was armed *)
    mutable timeout : float option;  (* seconds of wall clock per attempt *)
    mutable reason : cancel_reason option;  (* sticky until re-armed *)
  }

  let none = { live = false; started = 0.; timeout = None; reason = None }

  let create ?timeout () =
    { live = true; started = Unix.gettimeofday (); timeout; reason = None }

  let arm t ?timeout () =
    if t.live then begin
      t.started <- Unix.gettimeofday ();
      t.timeout <- timeout;
      t.reason <- None
    end

  let cancel t reason = if t.live && t.reason = None then t.reason <- Some reason

  let cancelled t = t.reason

  let elapsed t = if t.live then Unix.gettimeofday () -. t.started else 0.

  let check t =
    if t.live then begin
      (match t.reason with Some r -> raise (Cancelled r) | None -> ());
      match t.timeout with
      | Some s when Unix.gettimeofday () -. t.started > s ->
          let r = Timeout s in
          t.reason <- Some r;
          raise (Cancelled r)
      | _ -> ()
    end
end

(* ------------------------------------------------------------ outcomes *)

type 'a outcome =
  | Ok of 'a
  | Failed of { exn : exn; backtrace : Printexc.raw_backtrace }
  | Timed_out of { after : float }
  | Stalled of { reason : string }

let outcome_label = function
  | Ok _ -> "ok"
  | Failed _ -> "failed"
  | Timed_out _ -> "timeout"
  | Stalled _ -> "stalled"

let outcome_detail = function
  | Ok _ -> ""
  | Failed { exn; _ } -> Printexc.to_string exn
  | Timed_out { after } -> describe_cancel (Timeout after)
  | Stalled { reason } -> reason

(* Run [tasks.(i)] with a fresh control, storing a structured outcome per
   slot.  Shared by the serial and pool paths so both have identical
   semantics.  Never raises: the task's exception (with backtrace) is
   captured in the slot. *)
let collect ?timeout outcomes tasks i =
  let control = Control.create ?timeout () in
  outcomes.(i) <-
    (match tasks.(i) control with
    | v -> Ok v
    | exception Cancelled (Timeout after) -> Timed_out { after }
    | exception Cancelled (Stall reason) -> Stalled { reason }
    | exception exn -> Failed { exn; backtrace = Printexc.get_raw_backtrace () })

(* Legacy [map] semantics on top of outcomes: every task ran; re-raise
   the lowest-indexed failure (with its backtrace) if any, else unwrap.
   [Timed_out]/[Stalled] cannot occur without a timeout or an external
   cancel, but are re-raised faithfully if a task leaks a [Cancelled]. *)
let finish outcomes =
  Array.iter
    (function
      | Failed { exn; backtrace } -> Printexc.raise_with_backtrace exn backtrace
      | Timed_out { after } -> raise (Cancelled (Timeout after))
      | Stalled { reason } -> raise (Cancelled (Stall reason))
      | Ok _ -> ())
    outcomes;
  Array.map (function Ok v -> v | _ -> assert false) outcomes |> Array.to_list

(* ---------------------------------------------------------------- deque *)

(* Work-stealing double-ended queue: the owning worker pushes and pops at
   the bottom (LIFO — freshly submitted work stays cache-warm), thieves
   take from the top (FIFO — the oldest, and under LPT submission the
   longest, task migrates first).  All operations happen under the pool
   mutex — the unit of work here is a whole simulation run, so per-task
   locking cost is noise and the lock-free Chase–Lev dance (atomics,
   fences, ABA counters) would buy nothing but risk.  Indices grow
   monotonically; slot [i] lives at [buf.(i land (len - 1))] with [len] a
   power of two, so grow is a straight re-index copy. *)
module Deque = struct
  type 'a t = {
    dummy : 'a;  (* slot filler: consumed entries are overwritten so the
                    deque never retains a task (and its closure) *)
    mutable buf : 'a array;
    mutable top : int;  (* next slot thieves take *)
    mutable bottom : int;  (* next free slot at the owner's end *)
  }

  let create dummy = { dummy; buf = Array.make 16 dummy; top = 0; bottom = 0 }
  let size t = t.bottom - t.top
  let is_empty t = size t = 0

  let grow t =
    let old = t.buf in
    let old_mask = Array.length old - 1 in
    let buf = Array.make (2 * Array.length old) t.dummy in
    let mask = Array.length buf - 1 in
    for i = t.top to t.bottom - 1 do
      buf.(i land mask) <- old.(i land old_mask)
    done;
    t.buf <- buf

  let push_bottom t x =
    if size t = Array.length t.buf then grow t;
    t.buf.(t.bottom land (Array.length t.buf - 1)) <- x;
    t.bottom <- t.bottom + 1

  let pop_bottom t =
    if is_empty t then None
    else begin
      t.bottom <- t.bottom - 1;
      let i = t.bottom land (Array.length t.buf - 1) in
      let x = t.buf.(i) in
      t.buf.(i) <- t.dummy;
      Some x
    end

  let steal_top t =
    if is_empty t then None
    else begin
      let i = t.top land (Array.length t.buf - 1) in
      let x = t.buf.(i) in
      t.buf.(i) <- t.dummy;
      t.top <- t.top + 1;
      Some x
    end
end

type mode = Fifo | Steal

module Pool = struct
  type t = {
    jobs : int;
    mode : mode;
    m : Mutex.t;
    work_available : Condition.t;  (* workers: queue non-empty or stopping *)
    batch_done : Condition.t;  (* map callers: a task of theirs finished *)
    queue : (unit -> unit) Queue.t;  (* Fifo: the single shared queue *)
    deques : (unit -> unit) Deque.t array;  (* Steal: one per worker *)
    mutable next_worker : int;  (* Steal: round-robin submission cursor *)
    mutable stopping : bool;
    mutable workers : unit Domain.t array;
  }

  let jobs t = t.jobs
  let mode t = t.mode

  (* Called with the pool mutex held.  Worker [i] prefers the bottom of
     its own deque, then sweeps the others starting after itself (so
     thieves spread instead of all hammering deque 0), stealing from the
     top.  In Fifo mode all workers share one queue. *)
  let take_work pool i =
    match pool.mode with
    | Fifo -> if Queue.is_empty pool.queue then None else Some (Queue.pop pool.queue)
    | Steal -> (
        match Deque.pop_bottom pool.deques.(i) with
        | Some _ as r -> r
        | None ->
            let n = Array.length pool.deques in
            let rec scan k =
              if k = n then None
              else
                match Deque.steal_top pool.deques.((i + 1 + k) mod n) with
                | Some _ as r -> r
                | None -> scan (k + 1)
            in
            scan 0)

  let worker pool i () =
    let rec loop () =
      Mutex.lock pool.m;
      wait ()
    and wait () =
      match take_work pool i with
      | Some task ->
          Mutex.unlock pool.m;
          (* [task] is a wrapper built by [map_outcomes]: it never raises
             and does its own completion bookkeeping under the pool
             mutex. *)
          task ();
          loop ()
      | None ->
          if pool.stopping then Mutex.unlock pool.m
          else begin
            Condition.wait pool.work_available pool.m;
            wait ()
          end
    in
    loop ()

  let create ?(mode = Fifo) ~jobs () =
    if jobs < 1 || jobs > 256 then
      invalid_arg (Printf.sprintf "Par.Pool.create: jobs %d not in [1, 256]" jobs);
    let pool =
      {
        jobs;
        mode;
        m = Mutex.create ();
        work_available = Condition.create ();
        batch_done = Condition.create ();
        queue = Queue.create ();
        deques = Array.init jobs (fun _ -> Deque.create ignore);
        next_worker = 0;
        stopping = false;
        workers = [||];
      }
    in
    pool.workers <- Array.init jobs (fun i -> Domain.spawn (worker pool i));
    pool

  let reject_nested who =
    match Domain.DLS.get running_task with
    | Some i ->
        invalid_arg
          (Printf.sprintf
             "%s: nested submission from inside pool task #%d — a worker \
              blocking on a sub-batch can deadlock the pool that feeds it; \
              use Par.map ~jobs:1 inside tasks instead"
             who i)
    | None -> ()

  let map_outcomes pool ?timeout tasks =
    reject_nested "Par.Pool.map_outcomes";
    let tasks = Array.of_list tasks in
    let n = Array.length tasks in
    if n = 0 then []
    else begin
      let outcomes =
        Array.make n (Stalled { reason = "task never ran" })
      in
      let remaining = ref n in
      let wrap i () =
        Domain.DLS.set running_task (Some i);
        collect ?timeout outcomes tasks i;
        Domain.DLS.set running_task None;
        Mutex.lock pool.m;
        decr remaining;
        if !remaining = 0 then Condition.broadcast pool.batch_done;
        Mutex.unlock pool.m
      in
      Mutex.lock pool.m;
      if pool.stopping then begin
        Mutex.unlock pool.m;
        invalid_arg "Par.Pool.map_outcomes: pool is shut down"
      end;
      (match pool.mode with
      | Fifo ->
          for i = 0 to n - 1 do
            Queue.push (wrap i) pool.queue
          done
      | Steal ->
          (* Deal tasks round-robin across the worker deques, preserving
             submission order within each deque.  Thieves drain from the
             top, so the earliest-submitted (under LPT: costliest) tasks
             migrate first — the load balancer the schedule relies on. *)
          for i = 0 to n - 1 do
            Deque.push_bottom pool.deques.(pool.next_worker) (wrap i);
            pool.next_worker <- (pool.next_worker + 1) mod pool.jobs
          done);
      Condition.broadcast pool.work_available;
      while !remaining > 0 do
        Condition.wait pool.batch_done pool.m
      done;
      Mutex.unlock pool.m;
      (* All writes to [outcomes] happened-before the final [batch_done]
         signal we just synchronized with. *)
      Array.to_list outcomes
    end

  let map pool tasks =
    reject_nested "Par.Pool.map";
    let outcomes =
      map_outcomes pool (List.map (fun task _control -> task ()) tasks)
    in
    finish (Array.of_list outcomes)

  let shutdown pool =
    let joinable =
      Mutex.lock pool.m;
      let first = not pool.stopping in
      pool.stopping <- true;
      Condition.broadcast pool.work_available;
      Mutex.unlock pool.m;
      first
    in
    if joinable then Array.iter Domain.join pool.workers
end

let map_outcomes ?mode ~jobs ?timeout tasks =
  let n = List.length tasks in
  if n = 0 then []
  else if jobs <= 1 then begin
    (* Serial path: run in the calling domain, identical bookkeeping.
       [running_task] is deliberately not set — a serial map inside a
       pool task is the documented escape hatch for nested fan-out. *)
    let tasks = Array.of_list tasks in
    let outcomes = Array.make n (Stalled { reason = "task never ran" }) in
    for i = 0 to n - 1 do
      collect ?timeout outcomes tasks i
    done;
    Array.to_list outcomes
  end
  else begin
    let pool = Pool.create ?mode ~jobs:(min jobs n) () in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Pool.map_outcomes pool ?timeout tasks)
  end

let map ?mode ~jobs tasks =
  let outcomes =
    map_outcomes ?mode ~jobs (List.map (fun task _control -> task ()) tasks)
  in
  finish (Array.of_list outcomes)
