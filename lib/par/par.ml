(* Worker domains carry a DLS marker so nested submission (a pool task
   calling back into [map]) can be rejected instead of deadlocking. *)
let inside_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Run [tasks.(i)] for every i, storing either the result or the first
   exception (with backtrace) per slot.  Shared by the serial and pool
   paths so both have identical semantics. *)
let collect results errors tasks i =
  match tasks.(i) () with
  | v -> results.(i) <- Some v
  | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ())

let finish results errors =
  Array.iteri
    (fun _ slot ->
      match slot with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    errors;
  Array.map Option.get results |> Array.to_list

module Pool = struct
  type t = {
    jobs : int;
    m : Mutex.t;
    work_available : Condition.t;  (* workers: queue non-empty or stopping *)
    batch_done : Condition.t;  (* map callers: a task of theirs finished *)
    queue : (unit -> unit) Queue.t;
    mutable stopping : bool;
    mutable workers : unit Domain.t array;
  }

  let jobs t = t.jobs

  let worker pool () =
    Domain.DLS.set inside_worker true;
    let rec loop () =
      Mutex.lock pool.m;
      while Queue.is_empty pool.queue && not pool.stopping do
        Condition.wait pool.work_available pool.m
      done;
      if Queue.is_empty pool.queue then Mutex.unlock pool.m (* stopping *)
      else begin
        let task = Queue.pop pool.queue in
        Mutex.unlock pool.m;
        (* [task] is a wrapper built by [map]: it never raises and does
           its own completion bookkeeping under the pool mutex. *)
        task ();
        loop ()
      end
    in
    loop ()

  let create ~jobs =
    if jobs < 1 || jobs > 256 then
      invalid_arg (Printf.sprintf "Par.Pool.create: jobs %d not in [1, 256]" jobs);
    let pool =
      {
        jobs;
        m = Mutex.create ();
        work_available = Condition.create ();
        batch_done = Condition.create ();
        queue = Queue.create ();
        stopping = false;
        workers = [||];
      }
    in
    pool.workers <- Array.init jobs (fun _ -> Domain.spawn (worker pool));
    pool

  let map pool tasks =
    if Domain.DLS.get inside_worker then
      invalid_arg "Par.Pool.map: nested submission from inside a pool task";
    let tasks = Array.of_list tasks in
    let n = Array.length tasks in
    if n = 0 then []
    else begin
      let results = Array.make n None in
      let errors = Array.make n None in
      let remaining = ref n in
      let wrap i () =
        collect results errors tasks i;
        Mutex.lock pool.m;
        decr remaining;
        if !remaining = 0 then Condition.broadcast pool.batch_done;
        Mutex.unlock pool.m
      in
      Mutex.lock pool.m;
      if pool.stopping then begin
        Mutex.unlock pool.m;
        invalid_arg "Par.Pool.map: pool is shut down"
      end;
      for i = 0 to n - 1 do
        Queue.push (wrap i) pool.queue
      done;
      Condition.broadcast pool.work_available;
      while !remaining > 0 do
        Condition.wait pool.batch_done pool.m
      done;
      Mutex.unlock pool.m;
      (* All writes to [results]/[errors] happened-before the final
         [batch_done] signal we just synchronized with. *)
      finish results errors
    end

  let shutdown pool =
    let joinable =
      Mutex.lock pool.m;
      let first = not pool.stopping in
      pool.stopping <- true;
      Condition.broadcast pool.work_available;
      Mutex.unlock pool.m;
      first
    in
    if joinable then Array.iter Domain.join pool.workers
end

let map ~jobs tasks =
  let n = List.length tasks in
  if n = 0 then []
  else if jobs <= 1 then begin
    let tasks = Array.of_list tasks in
    let results = Array.make n None in
    let errors = Array.make n None in
    for i = 0 to n - 1 do
      collect results errors tasks i
    done;
    finish results errors
  end
  else begin
    let pool = Pool.create ~jobs:(min jobs n) in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Pool.map pool tasks)
  end
