(* Worker domains carry a DLS marker recording which task index they are
   currently running, so nested submission (a pool task calling back into
   [map]) can be rejected with a message naming the offending task
   instead of deadlocking.  [None] between tasks and outside workers. *)
let running_task : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

type cancel_reason = Timeout of float | Stall of string

exception Cancelled of cancel_reason

let describe_cancel = function
  | Timeout after -> Printf.sprintf "wall-clock timeout after %gs" after
  | Stall reason -> reason

(* ------------------------------------------------------------- control *)

module Control = struct
  type t = {
    live : bool;  (* the shared [none] control never cancels *)
    mutable started : float;  (* Unix time the current attempt was armed *)
    mutable timeout : float option;  (* seconds of wall clock per attempt *)
    mutable reason : cancel_reason option;  (* sticky until re-armed *)
  }

  let none = { live = false; started = 0.; timeout = None; reason = None }

  let create ?timeout () =
    { live = true; started = Unix.gettimeofday (); timeout; reason = None }

  let arm t ?timeout () =
    if t.live then begin
      t.started <- Unix.gettimeofday ();
      t.timeout <- timeout;
      t.reason <- None
    end

  let cancel t reason = if t.live && t.reason = None then t.reason <- Some reason

  let cancelled t = t.reason

  let elapsed t = if t.live then Unix.gettimeofday () -. t.started else 0.

  let check t =
    if t.live then begin
      (match t.reason with Some r -> raise (Cancelled r) | None -> ());
      match t.timeout with
      | Some s when Unix.gettimeofday () -. t.started > s ->
          let r = Timeout s in
          t.reason <- Some r;
          raise (Cancelled r)
      | _ -> ()
    end
end

(* ------------------------------------------------------------ outcomes *)

type 'a outcome =
  | Ok of 'a
  | Failed of { exn : exn; backtrace : Printexc.raw_backtrace }
  | Timed_out of { after : float }
  | Stalled of { reason : string }

let outcome_label = function
  | Ok _ -> "ok"
  | Failed _ -> "failed"
  | Timed_out _ -> "timeout"
  | Stalled _ -> "stalled"

let outcome_detail = function
  | Ok _ -> ""
  | Failed { exn; _ } -> Printexc.to_string exn
  | Timed_out { after } -> describe_cancel (Timeout after)
  | Stalled { reason } -> reason

(* Run [tasks.(i)] with a fresh control, storing a structured outcome per
   slot.  Shared by the serial and pool paths so both have identical
   semantics.  Never raises: the task's exception (with backtrace) is
   captured in the slot. *)
let collect ?timeout outcomes tasks i =
  let control = Control.create ?timeout () in
  outcomes.(i) <-
    (match tasks.(i) control with
    | v -> Ok v
    | exception Cancelled (Timeout after) -> Timed_out { after }
    | exception Cancelled (Stall reason) -> Stalled { reason }
    | exception exn -> Failed { exn; backtrace = Printexc.get_raw_backtrace () })

(* Legacy [map] semantics on top of outcomes: every task ran; re-raise
   the lowest-indexed failure (with its backtrace) if any, else unwrap.
   [Timed_out]/[Stalled] cannot occur without a timeout or an external
   cancel, but are re-raised faithfully if a task leaks a [Cancelled]. *)
let finish outcomes =
  Array.iter
    (function
      | Failed { exn; backtrace } -> Printexc.raise_with_backtrace exn backtrace
      | Timed_out { after } -> raise (Cancelled (Timeout after))
      | Stalled { reason } -> raise (Cancelled (Stall reason))
      | Ok _ -> ())
    outcomes;
  Array.map (function Ok v -> v | _ -> assert false) outcomes |> Array.to_list

module Pool = struct
  type t = {
    jobs : int;
    m : Mutex.t;
    work_available : Condition.t;  (* workers: queue non-empty or stopping *)
    batch_done : Condition.t;  (* map callers: a task of theirs finished *)
    queue : (unit -> unit) Queue.t;
    mutable stopping : bool;
    mutable workers : unit Domain.t array;
  }

  let jobs t = t.jobs

  let worker pool () =
    let rec loop () =
      Mutex.lock pool.m;
      while Queue.is_empty pool.queue && not pool.stopping do
        Condition.wait pool.work_available pool.m
      done;
      if Queue.is_empty pool.queue then Mutex.unlock pool.m (* stopping *)
      else begin
        let task = Queue.pop pool.queue in
        Mutex.unlock pool.m;
        (* [task] is a wrapper built by [map_outcomes]: it never raises
           and does its own completion bookkeeping under the pool
           mutex. *)
        task ();
        loop ()
      end
    in
    loop ()

  let create ~jobs =
    if jobs < 1 || jobs > 256 then
      invalid_arg (Printf.sprintf "Par.Pool.create: jobs %d not in [1, 256]" jobs);
    let pool =
      {
        jobs;
        m = Mutex.create ();
        work_available = Condition.create ();
        batch_done = Condition.create ();
        queue = Queue.create ();
        stopping = false;
        workers = [||];
      }
    in
    pool.workers <- Array.init jobs (fun _ -> Domain.spawn (worker pool));
    pool

  let reject_nested who =
    match Domain.DLS.get running_task with
    | Some i ->
        invalid_arg
          (Printf.sprintf
             "%s: nested submission from inside pool task #%d — a worker \
              blocking on a sub-batch can deadlock the pool that feeds it; \
              use Par.map ~jobs:1 inside tasks instead"
             who i)
    | None -> ()

  let map_outcomes pool ?timeout tasks =
    reject_nested "Par.Pool.map_outcomes";
    let tasks = Array.of_list tasks in
    let n = Array.length tasks in
    if n = 0 then []
    else begin
      let outcomes =
        Array.make n (Stalled { reason = "task never ran" })
      in
      let remaining = ref n in
      let wrap i () =
        Domain.DLS.set running_task (Some i);
        collect ?timeout outcomes tasks i;
        Domain.DLS.set running_task None;
        Mutex.lock pool.m;
        decr remaining;
        if !remaining = 0 then Condition.broadcast pool.batch_done;
        Mutex.unlock pool.m
      in
      Mutex.lock pool.m;
      if pool.stopping then begin
        Mutex.unlock pool.m;
        invalid_arg "Par.Pool.map_outcomes: pool is shut down"
      end;
      for i = 0 to n - 1 do
        Queue.push (wrap i) pool.queue
      done;
      Condition.broadcast pool.work_available;
      while !remaining > 0 do
        Condition.wait pool.batch_done pool.m
      done;
      Mutex.unlock pool.m;
      (* All writes to [outcomes] happened-before the final [batch_done]
         signal we just synchronized with. *)
      Array.to_list outcomes
    end

  let map pool tasks =
    reject_nested "Par.Pool.map";
    let outcomes =
      map_outcomes pool (List.map (fun task _control -> task ()) tasks)
    in
    finish (Array.of_list outcomes)

  let shutdown pool =
    let joinable =
      Mutex.lock pool.m;
      let first = not pool.stopping in
      pool.stopping <- true;
      Condition.broadcast pool.work_available;
      Mutex.unlock pool.m;
      first
    in
    if joinable then Array.iter Domain.join pool.workers
end

let map_outcomes ~jobs ?timeout tasks =
  let n = List.length tasks in
  if n = 0 then []
  else if jobs <= 1 then begin
    (* Serial path: run in the calling domain, identical bookkeeping.
       [running_task] is deliberately not set — a serial map inside a
       pool task is the documented escape hatch for nested fan-out. *)
    let tasks = Array.of_list tasks in
    let outcomes = Array.make n (Stalled { reason = "task never ran" }) in
    for i = 0 to n - 1 do
      collect ?timeout outcomes tasks i
    done;
    Array.to_list outcomes
  end
  else begin
    let pool = Pool.create ~jobs:(min jobs n) in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Pool.map_outcomes pool ?timeout tasks)
  end

let map ~jobs tasks =
  let outcomes =
    map_outcomes ~jobs (List.map (fun task _control -> task ()) tasks)
  in
  finish (Array.of_list outcomes)
