(** Deterministic fan-out over a fixed-size pool of OCaml 5 domains,
    with optional supervision (cooperative cancellation, per-task
    wall-clock timeouts, structured outcomes).

    Built only on stdlib [Domain] / [Mutex] / [Condition] (+ [Unix] for
    wall-clock deadlines).  The unit of work is a thunk; {!Pool.map}
    runs a batch of thunks across the pool and returns their results
    *in input order*, so a parallel run is observationally identical to
    a serial one whenever the tasks themselves are independent and
    deterministic (the experiment sweep: every run owns its engine, RNG
    and sink).

    {2 Ownership rule}

    A task must not share mutable simulator state (engines, sinks,
    scenarios, RNGs) with any other task or with the caller — tasks
    communicate only through their return values.  A worker domain runs
    one task at a time; everything a task allocates is domain-private
    until it is returned.  Corollary: a task must not submit a
    sub-batch to the pool that is running it ({!Pool.map} from inside a
    task raises [Invalid_argument] naming the offending task index,
    because a worker blocking on its own pool deadlocks it).  Nested
    fan-out inside a task is allowed only through the serial path,
    [map ~jobs:1].

    {2 Supervision model}

    Cancellation is {e cooperative}: OCaml domains cannot be killed, so
    a task is handed a {!Control.t} and is expected to poll
    {!Control.check} at a bounded interval (simulation tasks do this
    from the engine watchdog, [Netsim.Watchdog]).  A poll past the
    wall-clock deadline, or after {!Control.cancel}, raises
    {!Cancelled}; {!map_outcomes} converts that into a structured
    {!outcome} instead of killing the batch.  A task that never polls
    can exceed its timeout — bound such tasks by construction. *)

(** Why a task was cancelled: it exceeded its wall-clock budget, or a
    watchdog diagnosed a stall (livelock, event storm, no progress). *)
type cancel_reason = Timeout of float | Stall of string

exception Cancelled of cancel_reason
(** Raised by {!Control.check} from inside a cancelled task.  Tasks
    should let it propagate (cleanup via [Fun.protect]); the supervised
    map converts it into {!Timed_out} / {!Stalled}. *)

val describe_cancel : cancel_reason -> string

(** Per-task cancellation handle. *)
module Control : sig
  type t

  val none : t
  (** The inert control: {!check} never raises, {!cancel} is a no-op.
      For running supervised code unsupervised. *)

  val create : ?timeout:float -> unit -> t
  (** A live control armed now; [timeout] is wall-clock seconds from
      now. *)

  val arm : t -> ?timeout:float -> unit -> unit
  (** Re-arms the control for a new attempt: resets the start-of-attempt
      clock, replaces the timeout, and clears any pending cancellation
      (a retry must not inherit the previous attempt's abort).  No-op on
      {!none}. *)

  val cancel : t -> cancel_reason -> unit
  (** Requests cancellation; the next {!check} raises.  First reason
      wins; idempotent; no-op on {!none}. *)

  val cancelled : t -> cancel_reason option

  val elapsed : t -> float
  (** Wall-clock seconds since the control was created or last
      re-armed (0 for {!none}). *)

  val check : t -> unit
  (** Raises {!Cancelled} if cancellation was requested or the deadline
      has passed (recording the timeout as the sticky reason).  O(1);
      safe to call at high frequency. *)
end

(** The terminal state of one supervised task. *)
type 'a outcome =
  | Ok of 'a
  | Failed of { exn : exn; backtrace : Printexc.raw_backtrace }
      (** The task raised; re-raisable with its original backtrace. *)
  | Timed_out of { after : float }
      (** Cancelled by its wall-clock deadline ([after] seconds). *)
  | Stalled of { reason : string }
      (** Cancelled by a watchdog ({!cancel_reason.Stall}). *)

val outcome_label : _ outcome -> string
(** ["ok"] / ["failed"] / ["timeout"] / ["stalled"] — stable tags used
    in metrics labels and failure reports. *)

val outcome_detail : _ outcome -> string
(** Human-readable cause (exception text, timeout, stall reason); [""]
    for [Ok]. *)

(** How a pool distributes a batch across its workers.

    - [Fifo]: one shared queue; workers dequeue strictly in submission
      order.  The historical default, and the mode LPT submission
      ordering relies on (first submitted = first started).
    - [Steal]: per-worker double-ended queues.  Tasks are dealt
      round-robin at submission; a worker pops its own deque LIFO and,
      when empty, steals the oldest task from another worker's deque.
      Under skewed task costs this keeps every domain busy until the
      batch drains without a central queue hand-off per task.

    Both modes run every task exactly once and report outcomes in
    submission-slot order, so results — and anything deterministic
    derived from them — are byte-identical across modes; only the
    execution interleaving differs. *)
type mode = Fifo | Steal

module Pool : sig
  type t
  (** A fixed set of worker domains fed from one FIFO queue ([Fifo]
      mode) or per-worker work-stealing deques ([Steal] mode). *)

  val create : ?mode:mode -> jobs:int -> unit -> t
  (** Spawns [jobs] worker domains (1 ≤ jobs ≤ 256; raises
      [Invalid_argument] otherwise).  Workers idle on a condition
      variable until work arrives.  [mode] defaults to [Fifo]. *)

  val jobs : t -> int

  val mode : t -> mode

  val map : t -> (unit -> 'a) list -> 'a list
  (** [map pool tasks] runs every task on the pool and blocks until all
      have finished, returning results in input order.  Tasks are
      dequeued FIFO, so a 1-worker pool executes them exactly in input
      order.

      If one or more tasks raise, every task still runs to completion
      and the exception of the lowest-indexed failing task is re-raised
      (with its backtrace) after the batch drains.

      Nested submission — calling [map] from inside a pool task — is
      rejected with [Invalid_argument] naming the offending task index
      (see the ownership rule above).  Use {!val-map} with [~jobs:1]
      inside tasks instead.  Raises [Invalid_argument] after
      {!shutdown}. *)

  val map_outcomes :
    t -> ?timeout:float -> (Control.t -> 'a) list -> 'a outcome list
  (** Supervised variant: every task gets a fresh {!Control.t} (armed
      with [timeout] wall-clock seconds when given) and runs to a
      structured {!outcome} — no exception from a task ever escapes the
      batch, and slots come back in input order.  The deadline clock of
      task [i] starts when a worker dequeues it, not at submission. *)

  val shutdown : t -> unit
  (** Asks the workers to exit once the queue drains and joins them.
      Idempotent. *)
end

val map : ?mode:mode -> jobs:int -> (unit -> 'a) list -> 'a list
(** One-shot convenience.  [jobs <= 1] runs the tasks sequentially in
    the calling domain — no domains are spawned, but the ordering and
    run-every-task-then-raise-the-lowest-index-failure semantics of
    {!Pool.map} are preserved, so callers can treat [~jobs:1] as the
    serial reference for determinism checks.  [jobs > 1] creates a
    pool of [min jobs (List.length tasks)] workers, maps, and shuts it
    down. *)

val map_outcomes :
  ?mode:mode -> jobs:int -> ?timeout:float -> (Control.t -> 'a) list ->
  'a outcome list
(** One-shot supervised map, same serial/parallel split as {!val-map}.
    [jobs <= 1] runs in the calling domain with identical outcome
    semantics (and permits nested fan-out, serving as the in-task
    escape hatch). *)
