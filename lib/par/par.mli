(** Deterministic fan-out over a fixed-size pool of OCaml 5 domains.

    Built only on stdlib [Domain] / [Mutex] / [Condition].  The unit of
    work is a thunk; {!Pool.map} runs a batch of thunks across the pool
    and returns their results *in input order*, so a parallel run is
    observationally identical to a serial one whenever the tasks
    themselves are independent and deterministic (the experiment sweep:
    every run owns its engine, RNG and sink).

    Ownership rule: a task must not share mutable simulator state
    (engines, sinks, scenarios) with any other task or with the caller —
    tasks communicate only through their return values. *)

module Pool : sig
  type t
  (** A fixed set of worker domains fed from one FIFO queue. *)

  val create : jobs:int -> t
  (** Spawns [jobs] worker domains (1 ≤ jobs ≤ 256; raises
      [Invalid_argument] otherwise).  Workers idle on a condition
      variable until work arrives. *)

  val jobs : t -> int

  val map : t -> (unit -> 'a) list -> 'a list
  (** [map pool tasks] runs every task on the pool and blocks until all
      have finished, returning results in input order.  Tasks are
      dequeued FIFO, so a 1-worker pool executes them exactly in input
      order.

      If one or more tasks raise, every task still runs to completion
      and the exception of the lowest-indexed failing task is re-raised
      (with its backtrace) after the batch drains.

      Nested submission — calling [map] from inside a pool task — is
      rejected with [Invalid_argument]: a worker blocking on a sub-batch
      could deadlock the pool that feeds it.  Use {!val-map} with
      [~jobs:1] inside tasks instead.  Raises [Invalid_argument] after
      {!shutdown}. *)

  val shutdown : t -> unit
  (** Asks the workers to exit once the queue drains and joins them.
      Idempotent. *)
end

val map : jobs:int -> (unit -> 'a) list -> 'a list
(** One-shot convenience.  [jobs <= 1] runs the tasks sequentially in
    the calling domain — no domains are spawned, but the ordering and
    run-every-task-then-raise-the-lowest-index-failure semantics of
    {!Pool.map} are preserved, so callers can treat [~jobs:1] as the
    serial reference for determinism checks.  [jobs > 1] creates a
    pool of [min jobs (List.length tasks)] workers, maps, and shuts it
    down. *)
