(* Robustness: the spammer — immediate forged feedback on every data
   packet, always slightly below the sender's advertised rate.

   The attack has two edges: the rate undercutting itself, and feedback
   suppression — the sender echoes the lowest report of each round, and
   honest receivers cancel their feedback timers when the echoed rate is
   close to their own (§2.5.4's ζ rule), so a spammed low report silences
   the honest population.  The defenses that catch it: the per-round
   report limit (honest receivers report at most about once per round,
   and even the CLR only about once per RTT, so both budgets are finite),
   the suspicion score the violations feed (a sustained spammer is
   quarantined outright, and a quarantined CLR is dropped immediately
   rather than waited out), and the rule that non-admitted reports are
   never echoed as the round minimum — so the suppression edge is
   blunted even before quarantine. *)

let run ~mode ~seed =
  Rob_common.attack_series ~id:"rob06" ~attack:Rob_common.Spammer ~mode ~seed
