type experiment = {
  id : string;
  figure : string;
  title : string;
  run : mode:Scenario.mode -> seed:int -> Series.t list;
}

let all =
  [
    {
      id = "fig01";
      figure = "Figure 1";
      title = "CDF of feedback time under different biasing methods";
      run = Fig01_bias_cdf.run;
    };
    {
      id = "fig02";
      figure = "Figure 2";
      title = "Time-value distribution of one feedback round";
      run = Fig02_time_value.run;
    };
    {
      id = "fig03";
      figure = "Figure 3";
      title = "Feedback cancellation methods (worst-case round)";
      run = Fig03_cancellation.run;
    };
    {
      id = "fig04";
      figure = "Figure 4";
      title = "Expected number of feedback messages";
      run = Fig04_expected_messages.run;
    };
    {
      id = "fig05";
      figure = "Figure 5";
      title = "Response time of feedback biasing methods";
      run = Fig05_response_time.run;
    };
    {
      id = "fig06";
      figure = "Figure 6";
      title = "Quality of the reported rate";
      run = Fig06_feedback_quality.run;
    };
    {
      id = "fig07";
      figure = "Figure 7";
      title = "Throughput scaling under independent loss";
      run = Fig07_scaling.run;
    };
    {
      id = "fig09";
      figure = "Figure 9";
      title = "1 TFMCC + 15 TCP over a single 8 Mbit/s bottleneck";
      run = Fig09_single_bottleneck.run;
    };
    {
      id = "fig10";
      figure = "Figure 10";
      title = "1 TFMCC + 16 TCP on individual 1 Mbit/s bottlenecks";
      run = Fig10_tail_circuits.run;
    };
    {
      id = "fig11";
      figure = "Figure 11";
      title = "Responsiveness to changes in the loss rate";
      run = Fig11_loss_responsiveness.run;
    };
    {
      id = "fig12";
      figure = "Figure 12";
      title = "Rate of initial RTT measurements";
      run = Fig12_rtt_measurements.run;
    };
    {
      id = "fig13";
      figure = "Figure 13";
      title = "Responsiveness to changes in the RTT";
      run = Fig13_rtt_change.run;
    };
    {
      id = "fig14";
      figure = "Figure 14";
      title = "Maximum slowstart rate";
      run = Fig14_slowstart.run;
    };
    {
      id = "fig15";
      figure = "Figure 15";
      title = "Late join of a low-rate receiver";
      run = Fig15_late_join.run;
    };
    {
      id = "fig16";
      figure = "Figure 16";
      title = "Late join with an additional TCP on the slow link";
      run = Fig15_late_join.run_with_tail_tcp;
    };
    {
      id = "fig17";
      figure = "Figure 17";
      title = "Loss events per RTT (App. A)";
      run = Fig17_loss_events.run;
    };
    {
      id = "fig18";
      figure = "Figure 18";
      title = "Competing TCP traffic on return paths (App. D)";
      run = Fig18_return_traffic.run;
    };
    {
      id = "fig19";
      figure = "Figure 19";
      title = "Lossy return paths (App. D)";
      run = Fig19_lossy_return.run;
    };
    {
      id = "fig20";
      figure = "Figure 20";
      title = "Responsiveness to network delay (App. D)";
      run = Fig20_delay_responsiveness.run;
    };
    {
      id = "fig21";
      figure = "Figure 21";
      title = "Responsiveness to increased congestion (App. D)";
      run = Fig21_flow_doubling.run;
    };
    {
      id = "cmp01";
      figure = "Section 5";
      title = "TFMCC vs PGMCC: smoothness and fairness";
      run = Cmp01_pgmcc.run;
    };
    {
      id = "cmp02";
      figure = "Section 5";
      title = "TEAR vs TFRC vs TCP on a lossy path";
      run = Cmp02_tear.run;
    };
    {
      id = "cmp03";
      figure = "Section 5";
      title = "TFMCC + PGMCC + TCP coexistence";
      run = Cmp03_coexistence.run;
    };
    {
      id = "abl01";
      figure = "Ablation";
      title = "Cancellation threshold zeta";
      run = Abl01_zeta.run;
    };
    {
      id = "abl02";
      figure = "Ablation";
      title = "Timer bias method (protocol level)";
      run = Abl02_bias.run;
    };
    {
      id = "abl03";
      figure = "Ablation";
      title = "WALI loss-history depth";
      run = Abl03_wali.run;
    };
    {
      id = "abl04";
      figure = "Ablation";
      title = "Drop-tail vs RED bottleneck";
      run = Abl04_queue.run;
    };
    {
      id = "abl05";
      figure = "Ablation";
      title = "Previous-CLR memory (App. C)";
      run = Abl05_remember_clr.run;
    };
    {
      id = "abl07";
      figure = "Ablation";
      title = "TFMCC vs non-TCP cross traffic";
      run = Abl07_cross_traffic.run;
    };
    {
      id = "ext01";
      figure = "Section 6.1";
      title = "Feedback aggregation tree vs end-to-end suppression";
      run = Ext01_aggregation.run;
    };
    {
      id = "ext02";
      figure = "Section 6.1";
      title = "Equation-driven receiver-driven layered multicast";
      run = Ext02_layered.run;
    };
    {
      id = "abl08";
      figure = "Ablation";
      title = "App. A loss-history remodel";
      run = Abl08_remodel.run;
    };
    {
      id = "ext03";
      figure = "Extension";
      title = "TFMCC over a transit-stub internet";
      run = Ext03_transit_stub.run;
    };
    {
      id = "abl06";
      figure = "Ablation";
      title = "Initial RTT value";
      run = Abl06_initial_rtt.run;
    };
    {
      id = "rob01";
      figure = "Robustness";
      title = "CLR crash (silent leave) and sender failover";
      run = Rob01_clr_crash.run;
    };
    {
      id = "rob02";
      figure = "Robustness";
      title = "Subtree partition: starvation decay and recovery";
      run = Rob02_partition.run;
    };
    {
      id = "rob03";
      figure = "Robustness";
      title = "Corrupted / duplicated / reordered packets";
      run = Rob03_corruption.run;
    };
    {
      id = "rob04";
      figure = "Robustness";
      title = "Byzantine understater: group capture via a tiny consistent rate";
      run = Rob04_understater.run;
    };
    {
      id = "rob05";
      figure = "Robustness";
      title = "Byzantine RTT liar: forged tiny RTT to win the CLR election";
      run = Rob05_rtt_liar.run;
    };
    {
      id = "rob06";
      figure = "Robustness";
      title = "Byzantine spammer: feedback flooding and honest-report suppression";
      run = Rob06_spam_suppression.run;
    };
    {
      id = "rob07";
      figure = "Robustness";
      title = "Defense ablation scorecard: every attack, defenses off vs on";
      run = Rob07_defense_ablation.run;
    };
    {
      id = "chk01";
      figure = "Checker";
      title = "Differential oracle: TFMCC with one receiver vs unicast TFRC";
      run = Chk01_differential.run;
    };
    {
      id = "chk02";
      figure = "Checker";
      title = "Equation oracle: sender rate vs Padhye model at the receiver";
      run = Chk02_equation.run;
    };
  ]

(* Fault-injecting supervisor probes (Fault_inject): reachable by id so
   tests and the CI resilience smoke can sweep them, but excluded from
   [all] — and therefore from default sweeps, golden digests and
   `tfmcc-sim list` — because they fail by design. *)
let hidden =
  [
    {
      id = "xcrash";
      figure = "Supervisor";
      title = "Fault injection: task crashes deterministically";
      run = Fault_inject.run_crash;
    };
    {
      id = "xflaky";
      figure = "Supervisor";
      title = "Fault injection: task fails once, succeeds on retry";
      run = Fault_inject.run_flaky;
    };
    {
      id = "xstall";
      figure = "Supervisor";
      title = "Fault injection: simulated time livelocks";
      run = Fault_inject.run_stall;
    };
    {
      id = "xsleep";
      figure = "Supervisor";
      title = "Fault injection: task burns wall clock on few events";
      run = Fault_inject.run_sleep;
    };
  ]

let find id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun e -> e.id = id) (all @ hidden)

let ids () = List.map (fun e -> e.id) all
