(** Robustness: transient full partition of the receiver subtree; the
    sender must enter the feedback-starvation decay down to the one-packet
    floor and recover cleanly after the heal. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
