(** Differential oracle: TFMCC with a single receiver must track unicast
    TFRC on the same dumbbell (DESIGN.md §11). *)

type comparison = {
  label : string;
  tfmcc_kbps : float;
  tfrc_kbps : float;
  rel_err : float;  (** relative to the TFRC throughput *)
}

val compare_pair :
  ?seed:int ->
  bottleneck_bps:float ->
  delay_s:float ->
  ?queue_capacity:int ->
  t_end:float ->
  unit ->
  comparison
(** One oracle cell: runs TFMCC (1 receiver, no TCP) and a geometrically
    identical TFRC dumbbell for [t_end] seconds and compares mean
    throughput after a [t_end]/3 warmup.  Also the body of the QCheck
    property over randomized configurations. *)

val tolerance : float
(** Acceptance threshold on {!comparison.rel_err} (0.10). *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
