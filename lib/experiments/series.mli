(** Experiment output: a named table of x versus one or more y columns —
    exactly the data behind one paper figure (or one panel of it). *)

type t = {
  title : string;  (** e.g. "Fig. 9: 1 TFMCC + 15 TCP, 8 Mbit/s bottleneck" *)
  xlabel : string;
  ylabels : string list;  (** one per y column *)
  rows : (float * float list) list;  (** (x, ys); ys length = ylabels *)
  notes : string list;  (** paper-vs-measured commentary *)
}

val make :
  title:string ->
  xlabel:string ->
  ylabels:string list ->
  ?notes:string list ->
  (float * float list) list ->
  t
(** Validates that every row has as many ys as there are labels. *)

val pp : Format.formatter -> t -> unit
(** Aligned, human-readable table. *)

val to_csv : t -> string

val to_json : t -> Obs.Json.t
(** [{"title", "xlabel", "ylabels", "rows" (x then ys per row), "notes"}];
    NaN/infinite cells serialize as JSON [null]. *)

val render_ascii :
  ?width:int -> ?height:int -> t -> col:int -> string
(** A terminal plot of one y column against x: [height] text rows
    (default 12) by [width] columns (default 72), with a y-axis scale.
    NaN points are skipped. *)

val summary_stats : t -> col:int -> Stats.Descriptive.summary
(** Summary of one y column (raises on an empty series or an
    out-of-range column). *)
