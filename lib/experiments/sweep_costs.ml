(* Measured per-figure serial cost, the input to the LPT (longest
   processing time first) sweep schedule.  Values are wall-clock
   milliseconds of one quick-mode serial run (seed 42) on the reference
   container; only their *relative* order matters, so they need
   re-measuring only when an experiment's workload changes shape, not
   when the host changes speed.  Unknown ids (new experiments not yet
   measured) get the median cost, which parks them mid-schedule instead
   of at either extreme. *)

let table =
  [
    ("fig01", 32.);
    ("fig02", 16.);
    ("fig03", 35.);
    ("fig04", 10.);
    ("fig05", 51.);
    ("fig06", 55.);
    ("fig07", 57.);
    ("fig09", 699.);
    ("fig10", 1160.);
    ("fig11", 1327.);
    ("fig12", 2593.);
    ("fig13", 2076.);
    ("fig14", 801.);
    ("fig15", 1013.);
    ("fig16", 1155.);
    ("fig17", 6.);
    ("fig18", 601.);
    ("fig19", 847.);
    ("fig20", 1560.);
    ("fig21", 1285.);
    ("cmp01", 514.);
    ("cmp02", 165.);
    ("cmp03", 438.);
    ("abl01", 1967.);
    ("abl02", 448.);
    ("abl03", 104.);
    ("abl04", 1077.);
    ("abl05", 53.);
    ("abl06", 162.);
    ("abl07", 144.);
    ("abl08", 84.);
    ("ext01", 346.);
    ("ext02", 104.);
    ("ext03", 326.);
    ("rob01", 23.);
    ("rob02", 20.);
    ("rob03", 14.);
    ("rob04", 278.);
    ("rob05", 585.);
    ("rob06", 481.);
    ("rob07", 1729.);
    ("chk01", 266.);
    ("chk02", 26.);
  ]

let median =
  let sorted = List.sort compare (List.map snd table) in
  List.nth sorted (List.length sorted / 2)

let cost id = match List.assoc_opt id table with Some c -> c | None -> median
