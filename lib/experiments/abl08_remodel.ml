open Tfmcc_core
open Netsim_env

let run_one ~seed ~remodel ~t_end ~join_at =
  let cfg = { Config.default with remodel_on_first_rtt = remodel } in
  let sc = Scenario.base ~seed () in
  let topo = sc.Scenario.topo in
  let eng = sc.Scenario.engine in
  let sender = Netsim.Topology.add_node topo in
  let hub = Netsim.Topology.add_node topo in
  ignore (Netsim.Topology.connect topo ~bandwidth_bps:8e6 ~delay_s:0.02 sender hub);
  let fast = Netsim.Topology.add_node topo in
  ignore (Netsim.Topology.connect topo ~bandwidth_bps:8e6 ~delay_s:0.005 hub fast);
  let slow = Netsim.Topology.add_node topo in
  ignore (Netsim.Topology.connect topo ~bandwidth_bps:200e3 ~delay_s:0.005 hub slow);
  let session =
    Session.create topo ~cfg ~session:Scenario.tfmcc_flow ~sender_node:sender
      ~receiver_nodes:[ fast ] ()
  in
  Session.start session ~at:0.;
  let late = Session.add_receiver topo session ~node:slow ~join_now:false () in
  ignore (Netsim.Engine.at eng ~time:join_at (fun () -> Receiver.join late));
  (* Integrate the rate excess above the 200 kbit/s tail capacity over
     the post-join window. *)
  let snd = Session.sender session in
  let excess = ref 0. and samples = ref 0 in
  Scenario.sample_every sc ~dt:0.5 ~t_end (fun t ->
      if t > join_at +. 5. then begin
        let kbit = Sender.rate_bytes_per_s snd *. 8. /. 1000. in
        excess := !excess +. Float.max 0. (kbit -. 200.);
        incr samples
      end);
  Scenario.run_until sc t_end;
  let mean_excess = !excess /. float_of_int (Stdlib.max 1 !samples) in
  (mean_excess, Receiver.loss_event_rate late)

let run ~mode ~seed =
  let join_at = 40. in
  let t_end = join_at +. Scenario.scale mode ~quick:60. ~full:120. in
  let off_excess, off_p = run_one ~seed ~remodel:false ~t_end ~join_at in
  let on_excess, on_p = run_one ~seed ~remodel:true ~t_end ~join_at in
  [
    Series.make
      ~title:
        "Ablation: App. A loss-history remodel on first RTT measurement \
         (200 kbit/s late joiner; mean sender-rate excess above the tail)"
      ~xlabel:"remodel (0=off, 1=on)"
      ~ylabels:[ "mean excess (kbit/s)"; "joiner's final p" ]
      ~notes:
        [
          "App. A: aggregating with the too-high initial RTT \
           under-estimates p; the remodel re-aggregates with the measured \
           RTT.  In this scenario the joiner measures its RTT within a \
           couple of rounds, so few gaps accumulate under the initial \
           estimate and the two variants measure alike — consistent with \
           App. A's own argument that the initial-RTT optimism is \
           transient and self-limiting";
        ]
      [ (0., [ off_excess; off_p ]); (1., [ on_excess; on_p ]) ];
  ]
