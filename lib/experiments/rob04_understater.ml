(* Robustness: the understater — a single Byzantine receiver reporting a
   tiny, TCP-equation-consistent calculated rate every feedback round.

   This is the canonical attack on single-rate multicast congestion
   control (RFC 4654's security considerations): the protocol follows its
   most-limited receiver by design, so one consistent liar captures the
   group.  Because the forged (rate, rtt, p) triple satisfies the control
   equation, per-report plausibility cannot reject it; the defense that
   catches it is the cross-receiver outlier screen (median/MAD over the
   recent honest reports), which refuses to let the lone low report
   lower the rate or win the CLR election. *)

let run ~mode ~seed =
  Rob_common.attack_series ~id:"rob04" ~attack:Rob_common.Understater ~mode
    ~seed
