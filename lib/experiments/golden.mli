(** Golden-trace regression: a per-figure digest of everything an
    experiment produces (every series rendered to CSV, plus the full
    observability sink as JSON), checked into [test/golden/digests.txt]
    and verified by [tfmcc-sim verify-golden].

    The digests lean on the determinism contract: a (figure, mode, seed)
    cell is a pure function of its inputs, byte-identical between serial
    and [-j N] sweeps, so any digest change is a behavioural change —
    intended (regenerate with [--regen]) or a regression (fix it). *)

val digest_experiment :
  Registry.experiment -> mode:Scenario.mode -> seed:int -> string
(** Runs the experiment on a fresh private sink and returns the 16-hex
    FNV-1a digest of its id, series CSVs and sink JSON. *)

val compute :
  ?experiments:Registry.experiment list ->
  jobs:int ->
  mode:Scenario.mode ->
  seed:int ->
  unit ->
  (string * string) list
(** Digests for [experiments] (default {!Registry.all}) computed as one
    {!Par.map} batch, in registry order: [(id, digest)] pairs. *)

val to_file_format : (string * string) list -> string
(** One ["id digest\n"] line per pair (the checked-in file format). *)

val parse_file_format : string -> (string * string) list
(** Inverse of {!to_file_format}; ignores blank lines and [#] comments. *)

val diff :
  expected:(string * string) list ->
  actual:(string * string) list ->
  (string * [ `Missing | `Extra | `Mismatch of string * string ]) list
(** Per-id comparison: ids present only in [expected] are [`Missing]
    from the run, ids present only in [actual] are [`Extra] (not yet
    recorded), and differing digests are [`Mismatch (expected,
    actual)].  Empty when the sets agree. *)
