(** Parallel experiment sweeps and multi-seed replication.

    Every experiment run is seed-deterministic and owns its engine, RNG
    and observability sink, so the (experiment × seed) grid fans out
    over a {!Par.Pool} with no shared mutable state.  Results come back
    in deterministic (registry, seed) order regardless of the job count:
    a [~jobs:8] sweep prints byte-identically to a [~jobs:1] one. *)

type replicate = { seed : int; series : Series.t list }

type result = {
  experiment : Registry.experiment;
  replicates : replicate list;  (** one per requested seed, in seed order *)
  aggregate : Series.t list option;
      (** Per-cell mean/stddev across seeds; [Some] only when at least
          two replicates exist and every seed produced shape-compatible
          series (same titles, labels and x columns). *)
}

val seeds : base:int -> count:int -> int list
(** [base; base+1; …; base+count-1].  Raises [Invalid_argument] when
    [count < 1]. *)

val run_one :
  ?strict:bool -> Registry.experiment -> mode:Scenario.mode -> seed:int ->
  replicate
(** Runs one experiment with a fresh private sink installed
    ({!Scenario.with_obs}), so concurrent runs never share metrics or
    journals.  With [strict] (default false) a fresh strict
    {!Check.Invariant} checker is installed too
    ({!Scenario.with_checks}); an invariant violation then raises
    {!Check.Invariant.Violation} out of this cell. *)

val aggregate : Series.t list list -> Series.t list option
(** Combine per-seed series lists (outer list = seeds, in seed order)
    into mean/stddev series: each y column [l] becomes [l mean] and
    [l sd] (sample stddev; NaN cells are skipped per point).  [None]
    when fewer than two replicates are given or any shapes disagree. *)

val run :
  ?experiments:Registry.experiment list ->
  ?strict:bool ->
  jobs:int ->
  mode:Scenario.mode ->
  seed:int ->
  ?seeds:int ->
  unit ->
  result list
(** Sweeps [experiments] (default {!Registry.all}) × [seeds] replicate
    seeds (default 1; seed list is [seed, seed+1, …]) as one flat task
    batch over [jobs] workers ({!Par.map}; [jobs <= 1] runs serially in
    the calling domain).  Results preserve the input experiment order.
    [strict] (default false) runs every cell under a strict invariant
    checker ({!run_one}); the first violating cell's
    {!Check.Invariant.Violation} propagates out of the sweep. *)
