(** Parallel experiment sweeps and multi-seed replication.

    Every experiment run is seed-deterministic and owns its engine, RNG
    and observability sink, so the (experiment × seed) grid fans out
    over a {!Par.Pool} with no shared mutable state.  Results come back
    in deterministic (registry, seed) order regardless of the job count:
    a [~jobs:8] sweep prints byte-identically to a [~jobs:1] one. *)

type replicate = { seed : int; series : Series.t list }

type result = {
  experiment : Registry.experiment;
  replicates : replicate list;  (** one per requested seed, in seed order *)
  aggregate : Series.t list option;
      (** Per-cell mean/stddev across seeds; [Some] only when at least
          two replicates exist and every seed produced shape-compatible
          series (same titles, labels and x columns). *)
}

val seeds : base:int -> count:int -> int list
(** [base; base+1; …; base+count-1].  Raises [Invalid_argument] when
    [count < 1]. *)

val run_one :
  ?strict:bool -> Registry.experiment -> mode:Scenario.mode -> seed:int ->
  replicate
(** Runs one experiment with a fresh private sink installed
    ({!Scenario.with_obs}), so concurrent runs never share metrics or
    journals.  With [strict] (default false) a fresh strict
    {!Check.Invariant} checker is installed too
    ({!Scenario.with_checks}); an invariant violation then raises
    {!Check.Invariant.Violation} out of this cell. *)

val aggregate : Series.t list list -> Series.t list option
(** Combine per-seed series lists (outer list = seeds, in seed order)
    into mean/stddev series: each y column [l] becomes [l mean] and
    [l sd] (sample stddev; NaN cells are skipped per point).  [None]
    when fewer than two replicates are given or any shapes disagree. *)

(** How the (experiment × seed) task grid is laid onto the worker pool.
    Pure wall-clock policy: every schedule runs every task exactly once
    and returns results in grid order, so sweep output is byte-identical
    across schedules and job counts — the determinism tests assert
    exactly this.

    - [Fifo]: submit in grid order to one shared queue (the historical
      behaviour).
    - [Lpt]: longest processing time first — submit in descending
      measured per-figure serial cost ({!Sweep_costs}), the classic
      greedy makespan heuristic.  Keeps a multi-minute figure from
      starting last and pinning the sweep's tail on one domain.
    - [Steal]: grid-order submission dealt round-robin onto per-worker
      work-stealing deques ({!Par.mode}); idle workers steal the oldest
      task from a busy one. *)
type schedule = Fifo | Lpt | Steal

val schedule_label : schedule -> string
(** ["fifo" | "lpt" | "steal"]. *)

val run :
  ?experiments:Registry.experiment list ->
  ?strict:bool ->
  ?schedule:schedule ->
  jobs:int ->
  mode:Scenario.mode ->
  seed:int ->
  ?seeds:int ->
  unit ->
  result list
(** Sweeps [experiments] (default {!Registry.all}) × [seeds] replicate
    seeds (default 1; seed list is [seed, seed+1, …]) as one flat task
    batch over [jobs] workers ({!Par.map}; [jobs <= 1] runs serially in
    the calling domain).  Results preserve the input experiment order
    whatever the [schedule] (default [Fifo]).  [strict] (default false)
    runs every cell under a strict invariant checker ({!run_one}); a
    violating cell's {!Check.Invariant.Violation} propagates out of the
    sweep (under [Lpt] the lowest *submission*-indexed failure wins the
    re-raise race, i.e. the costliest failing cell rather than the
    grid-first one). *)

(** {1 Supervised sweeps (DESIGN.md §12)}

    {!run} has seed semantics: the lowest-indexed failing task's
    exception kills the whole sweep.  {!run_supervised} instead gives
    every (experiment × seed) cell its own supervised lifecycle —
    wall-clock timeout, stall/event-storm watchdog
    ({!Netsim.Watchdog}), retry with exponential backoff, per-task
    checkpointing — and always returns a complete {!report}: every
    successful figure's series plus one structured {!failure} per cell
    that exhausted its attempts.  Determinism is preserved: a
    supervised all-success sweep renders byte-identically to {!run},
    whatever [jobs], and a resumed sweep renders byte-identically to an
    uninterrupted one. *)

type cause =
  | Crashed  (** the experiment raised *)
  | Timeout  (** wall-clock deadline ({!policy.task_timeout}) *)
  | Stall  (** watchdog abort: livelock or event storm *)
  | Violation
      (** strict {!Check.Invariant.Violation} — deterministic, never
          retried *)

val cause_label : cause -> string
(** ["crashed" | "timeout" | "stalled" | "violation"]. *)

type failure = {
  f_experiment : string;
  f_seed : int;
  f_attempts : int;  (** attempts consumed (>= 1) *)
  f_cause : cause;
  f_detail : string;
  f_journal : string;
      (** the failing attempt's journal window, PR 5 strict-mode shape
          ({!Check.Invariant.journal_window}) *)
}

type policy = {
  task_timeout : float option;
      (** per-attempt wall-clock budget in seconds; detection is
          cooperative (watchdog polls), so a task that schedules no
          events can overrun it *)
  retries : int;  (** extra attempts after the first (0 = fail fast) *)
  retry_delay : float;
      (** backoff before attempt [n+1] is [retry_delay * 2^(n-1)] s *)
  stall_events : int;
      (** abort after this many events without sim-time progress *)
  max_events : int option;  (** per-attempt total event budget *)
  checkpoint : string option;
      (** persist each completed task into this directory as it
          finishes ({!Checkpoint}) *)
  resume : bool;
      (** load valid checkpoints from [checkpoint] and skip those
          cells; requires [checkpoint] *)
  budget : int option;
      (** run at most this many (non-resumed) cells, skip the rest —
          deterministic mid-sweep interruption for resume tests *)
}

val default_policy : policy
(** No timeout, no retries, no checkpointing; 1M-event stall window. *)

type report = {
  results : result list;
      (** experiments with at least one successful replicate, in input
          order; aggregates cover the successful seeds only *)
  failures : failure list;  (** in (experiment, seed) grid order *)
  tasks : int;  (** total grid cells *)
  executed : int;  (** cells actually run (not resumed, not skipped) *)
  resumed : int;  (** cells satisfied from checkpoints *)
  skipped : int;  (** cells dropped by the task budget *)
  retried : int;  (** total extra attempts across all cells *)
}

val run_supervised :
  ?experiments:Registry.experiment list ->
  ?strict:bool ->
  ?policy:policy ->
  ?obs:Obs.Sink.t ->
  ?schedule:schedule ->
  jobs:int ->
  mode:Scenario.mode ->
  seed:int ->
  ?seeds:int ->
  unit ->
  report
(** Like {!run} but fault-tolerant (see above).  Each attempt gets a
    fresh sink, watchdog config and {!Scenario.with_attempt} number;
    the per-task {!Par.Control} is re-armed per attempt.  Completed
    tasks checkpoint before the sweep finishes, so a killed sweep
    resumes.  [obs] (default {!Obs.Sink.null}) receives sweep-level
    [sweep_task_*] counters and one journal [Task] entry per failed or
    skipped cell.  [schedule] (default [Fifo]) only reorders execution;
    the report — results, failures, counters — is byte-identical across
    schedules.  Raises [Invalid_argument] on nonsensical policies
    (negative retries/delay/budget, non-positive timeout, [resume]
    without [checkpoint]). *)

val exit_code : report -> int
(** The CLI contract: 0 all cells ok; 2 if any failure is a strict
    invariant {!Violation}; 3 if there are other failures or skipped
    cells. *)

val render : ?csv:bool -> ?replicates:bool -> seeds:int -> result list -> string
(** Exactly the bytes the CLI prints for a sweep: a
    ["--- figure: title ---"] header per experiment, then aggregate
    series (or per-seed replicates, with ["-- seed N --"] markers when
    [seeds > 1]).  Shared by `tfmcc-sim sweep` and the resume tests so
    byte-identity is checked against the real output format. *)

val render_failures : report -> string
(** Human-readable failure block (stderr material), one entry per
    {!failure} with its journal window. *)

val report_to_json : report -> Obs.Json.t
(** [{"results": …, "failures": [{"task", "experiment", "seed",
    "attempts", "cause", "detail", "journal_window"}…], "summary":
    {"tasks", "executed", "resumed", "skipped", "retried", "failed",
    "exit_code"}}]. *)
