open Netsim_env

let run_one ~seed ~red ~t_end ~n_tcp =
  let sc = Scenario.base ~seed () in
  let topo = sc.Scenario.topo in
  let eng = sc.Scenario.engine in
  let left = Netsim.Topology.add_node topo in
  let right = Netsim.Topology.add_node topo in
  let mk_queue () =
    if red then
      Netsim.Queue_disc.red ~rng:(Netsim.Engine.split_rng eng) ~capacity_pkts:50 ()
    else Netsim.Queue_disc.droptail ~capacity_pkts:50
  in
  ignore
    (Netsim.Topology.connect topo ~queue_ab:(mk_queue ()) ~queue_ba:(mk_queue ())
       ~bandwidth_bps:8e6 ~delay_s:0.02 left right);
  let mk_left () =
    let n = Netsim.Topology.add_node topo in
    ignore (Netsim.Topology.connect topo ~bandwidth_bps:80e6 ~delay_s:0.001 n left);
    n
  in
  let mk_right () =
    let n = Netsim.Topology.add_node topo in
    ignore (Netsim.Topology.connect topo ~bandwidth_bps:80e6 ~delay_s:0.001 right n);
    n
  in
  let sender = mk_left () in
  let rx = mk_right () in
  Netsim.Monitor.watch_node_flow sc.Scenario.monitor rx ~flow:Scenario.tfmcc_flow;
  let session =
    Session.create topo ~session:Scenario.tfmcc_flow ~sender_node:sender
      ~receiver_nodes:[ rx ] ()
  in
  for i = 0 to n_tcp - 1 do
    let src = mk_left () and dst = mk_right () in
    ignore (Scenario.add_tcp sc ~conn:(100 + i) ~flow:(Scenario.tcp_flow i) ~src ~dst ~at:0.)
  done;
  Session.start session ~at:0.;
  Scenario.run_until sc t_end;
  let warmup = t_end /. 3. in
  let tfmcc =
    Scenario.mean_throughput_kbps sc ~flow:Scenario.tfmcc_flow ~t_start:warmup ~t_end
  in
  let tcp =
    List.fold_left
      (fun acc i ->
        acc
        +. Scenario.mean_throughput_kbps sc ~flow:(Scenario.tcp_flow i)
             ~t_start:warmup ~t_end)
      0.
      (List.init n_tcp Fun.id)
    /. float_of_int n_tcp
  in
  let cov =
    Scenario.throughput_series sc ~flow:Scenario.tfmcc_flow ~bin:1. ~t_end
    |> Array.to_list
    |> List.filter (fun (t, _) -> t >= warmup)
    |> List.map snd |> Array.of_list
    |> Stats.Descriptive.coefficient_of_variation
  in
  (tfmcc /. tcp, cov)

let run ~mode ~seed =
  let t_end = Scenario.scale mode ~quick:100. ~full:200. in
  let n_tcp = 15 in
  let dt_ratio, dt_cov = run_one ~seed ~red:false ~t_end ~n_tcp in
  let red_ratio, red_cov = run_one ~seed ~red:true ~t_end ~n_tcp in
  [
    Series.make
      ~title:"Ablation: drop-tail vs RED at the Fig. 9 bottleneck"
      ~xlabel:"queue (0=drop-tail, 1=RED)"
      ~ylabels:[ "TFMCC/TCP ratio"; "TFMCC rate CoV" ]
      ~notes:
        [
          "paper (4): both TCP-fairness and intra-protocol fairness \
           generally improve with RED instead of drop-tail";
        ]
      [ (0., [ dt_ratio; dt_cov ]); (1., [ red_ratio; red_cov ]) ];
  ]
