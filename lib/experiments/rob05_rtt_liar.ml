(* Robustness: the RTT liar — a Byzantine receiver that forges a 1 ms
   RTT and undercuts the advertised rate by 20% every round.

   The compounding per-round decay captures the CLR election and drags
   the group's rate down geometrically.  The claimed (rate, rtt, p) is
   again equation-consistent, but the lie is physically detectable: the
   sender measures a round trip of its own from the report's echo fields
   (now - echo_ts - echo_delay), and a claimed RTT far below that floor
   is impossible — a receiver cannot echo a timestamp before receiving
   it.  The RTT-floor plausibility check rejects every forged report
   before it touches the rate machinery. *)

let run ~mode ~seed =
  Rob_common.attack_series ~id:"rob05" ~attack:Rob_common.Rtt_liar ~mode ~seed
