(** Shared topology builders and helpers for the paper's packet-level
    experiments (§4, App. D). *)

(** Fidelity level: [Quick] runs shrunken receiver counts / durations so
    the whole suite finishes in minutes; [Full] uses the paper's
    parameters. *)
type mode = Quick | Full

val scale : mode -> quick:'a -> full:'a -> 'a

type t = {
  engine : Netsim.Engine.t;
  topo : Netsim.Topology.t;
  monitor : Netsim.Monitor.t;
  obs : Obs.Sink.t;  (** the sink every component of this scenario reports into *)
}

val with_obs : Obs.Sink.t -> (unit -> 'a) -> 'a
(** [with_obs sink f] runs [f]; scenarios built inside it (without an
    explicit [?obs]) attach [sink] to their engine.  Lets callers with a
    fixed entry-point signature (e.g. {!Registry.run}) collect metrics
    and journal entries without widening every experiment.  Restores the
    previous installation on return or exception.

    The installation is domain-local: each {!Par} sweep worker installs
    and observes only its own sink.  Sinks are single-domain objects —
    never install one domain's sink from another. *)

val ambient_obs : unit -> Obs.Sink.t option
(** The sink installed by the innermost active {!with_obs}, if any.
    For experiments that deliberately run sub-scenarios on private
    sinks (the Byzantine robustness cells) and still want to surface
    summary counters through the CLI's [--json] / [--metrics-out]
    export. *)

val with_checks : Check.Invariant.t -> (unit -> 'a) -> 'a
(** Same ambient-install pattern as {!with_obs}, for the runtime
    invariant checker: scenarios built inside [f] register their engine
    ({!Check.Invariant.watch_engine}), their key links and their TFMCC
    session with [checker].  Domain-local, restored on return or
    exception.  The CLI's [--strict] flag threads a strict checker
    through here. *)

val ambient_checks : unit -> Check.Invariant.t option
(** The checker installed by the innermost active {!with_checks}. *)

val with_watchdog : Netsim.Watchdog.config -> (unit -> 'a) -> 'a
(** Ambient-install pattern for the sweep supervisor's progress
    watchdog: every engine built by {!base} inside [f] gets the
    config's probes armed ({!Netsim.Watchdog.install}) — wall-clock
    deadline polls, livelock and event-storm detection.  Domain-local,
    restored on return or exception.  {!Sweep.run_supervised} threads a
    per-task config through here. *)

val ambient_watchdog : unit -> Netsim.Watchdog.config option

val with_attempt : int -> (unit -> 'a) -> 'a
(** Installs the 1-based retry-attempt number of the enclosing
    supervised task (default 1 when none is installed).  Raises
    [Invalid_argument] for [n < 1].  Read by the deterministic
    fault-injection experiments ({!Fault_inject}) to fail on early
    attempts and succeed on retry. *)

val ambient_attempt : unit -> int

val base : ?seed:int -> ?obs:Obs.Sink.t -> unit -> t
(** Fresh engine + topology + monitor.  [obs] defaults to the sink
    installed by {!with_obs}, else a private enabled sink (so protocol
    journals and registry metrics are always being collected; pass
    [Obs.Sink.null] explicitly to opt out, e.g. in benchmarks). *)

val tfmcc_flow : int
(** Accounting tag of TFMCC data in all scenarios (= session id). *)

val tcp_flow : int -> int
(** Accounting tag of the i-th TCP flow (0-based). *)

(** A TCP connection bundled with its sink. *)
type tcp_pair = { source : Tcp.Tcp_source.t; sink : Tcp.Tcp_sink.t; flow : int }

val add_tcp :
  t -> conn:int -> flow:int -> src:Netsim.Node.t -> dst:Netsim.Node.t ->
  at:float -> tcp_pair
(** Creates source+sink, watches the sink node for [flow], starts at
    [at]. *)

(** Dumbbell: TFMCC sender and [n_tcp] TCP senders on the left, the TFMCC
    receivers and TCP sinks on the right, one shared bottleneck.  Access
    links are 10× the bottleneck with 1 ms delay. *)
type dumbbell = {
  sc : t;
  session : Tfmcc_core.Session.t;
  tcp : tcp_pair list;
  bottleneck : Netsim.Link.t;
  left_router : Netsim.Node.t;
  right_router : Netsim.Node.t;
  sender_node : Netsim.Node.t;  (** the TFMCC sender's access node *)
}

val dumbbell :
  ?seed:int ->
  ?obs:Obs.Sink.t ->
  ?cfg:Tfmcc_core.Config.t ->
  bottleneck_bps:float ->
  delay_s:float ->
  ?queue_capacity:int ->
  n_tfmcc_rx:int ->
  n_tcp:int ->
  ?tcp_start:float ->
  unit ->
  dumbbell
(** TCP flows start at [tcp_start] (default 0); TFMCC is created but not
    started — call [Tfmcc_core.Session.start]. *)

(** Star of per-receiver links: TFMCC sender behind a fat uplink to a hub;
    receiver i sits behind its own link with the given loss model /
    delay / bandwidth.  Optionally one TCP crosses each receiver link
    (its source on a per-receiver side node). *)
type star = {
  s_sc : t;
  s_session : Tfmcc_core.Session.t;
  s_hub : Netsim.Node.t;
  s_rx_nodes : Netsim.Node.t array;
  s_rx_links : (Netsim.Link.t * Netsim.Link.t) array;  (** (hub→rx, rx→hub) *)
  s_tcp : tcp_pair array;  (** empty if [with_tcp] is false *)
}

val star :
  ?seed:int ->
  ?obs:Obs.Sink.t ->
  ?cfg:Tfmcc_core.Config.t ->
  ?uplink_bps:float ->
  ?uplink_delay:float ->
  link_bps:float ->
  link_delays:float array ->
  ?link_losses:float array ->
  ?return_losses:float array ->
  ?queue_capacity:int ->
  ?with_tcp:bool ->
  ?tcp_start:float ->
  unit ->
  star
(** One receiver per entry of [link_delays].  [link_losses] (same length)
    puts Bernoulli loss on the hub→receiver direction; [return_losses] on
    the receiver→hub direction (lossy report/ACK paths, Fig. 19).  TFMCC
    receivers are created but not joined. *)

val run_until : t -> float -> unit

val sample_every :
  t -> dt:float -> t_end:float -> (float -> unit) -> unit
(** Schedules [f now] at dt, 2dt, … ≤ t_end (call before running). *)

val throughput_series :
  t -> flow:int -> bin:float -> t_end:float -> (float * float) array
(** Binned throughput in kbit/s (the unit of the paper's plots). *)

val mean_throughput_kbps : t -> flow:int -> t_start:float -> t_end:float -> float
