(** Deterministic fault-injecting experiments for the sweep supervisor
    (test and CI only — hidden from {!Registry.all} but reachable
    through {!Registry.find}, so `tfmcc-sim sweep xcrash …` works).

    Each entry point has the {!Registry.experiment} run signature.  On
    success they return a tiny series derived from the seed alone, so
    retried / resumed runs are byte-identical to first-try successes. *)

exception Boom of string
(** The injected failure. *)

val run_crash : mode:Scenario.mode -> seed:int -> Series.t list
(** Always raises {!Boom}: exercises the crash → structured-failure
    path. *)

val run_flaky : mode:Scenario.mode -> seed:int -> Series.t list
(** Raises {!Boom} on attempt 1 ({!Scenario.ambient_attempt}), succeeds
    from attempt 2 on: exercises retry-success. *)

val run_stall : mode:Scenario.mode -> seed:int -> Series.t list
(** Livelocks: reschedules at a frozen simulated instant (capped at 2M
    events so an unsupervised run still terminates): exercises the
    watchdog's livelock abort. *)

val run_sleep : mode:Scenario.mode -> seed:int -> Series.t list
(** Sleeps ~2 ms of wall clock per simulated event (capped at ~3 s
    total): exercises the wall-clock timeout via the watchdog's
    sim-time poll. *)
