(** Per-task sweep checkpoints (DESIGN.md §12).

    A supervised sweep persists each completed (experiment, seed) task
    into a checkpoint directory {e as it finishes} — one atomic
    (tmp-then-rename) [<id>-s<seed>.task] file holding the task's
    identity, an FNV-1a digest, and its series, plus a human-readable
    [.json] sidecar with the digest and series CSVs.  A later
    [sweep --resume DIR] loads the completed tasks, skips them, and
    re-runs only failed / missing ones; because the series round-trip
    exactly, the resumed sweep's rendered output is byte-identical to a
    from-scratch run ({!Check.Oracle.first_divergence} is the oracle).

    Integrity: {!load} re-derives the digest from the loaded series and
    rejects any file that is truncated, corrupted, or names a different
    task — such checkpoints degrade to "missing" and the task re-runs. *)

type entry = {
  c_experiment : string;
  c_seed : int;
  c_digest : string;  (** {!digest} of the identity + series CSVs *)
  c_series : Series.t list;
}

val task_name : experiment:string -> seed:int -> string
(** ["<experiment>/s<seed>"] — the task id used in failure reports,
    metrics and journal entries. *)

val task_file : dir:string -> experiment:string -> seed:int -> string
(** The checkpoint path for one task. *)

val digest : experiment:string -> seed:int -> Series.t list -> string

val make : experiment:string -> seed:int -> Series.t list -> entry

val save : dir:string -> entry -> unit
(** Creates [dir] if needed (one level); atomic per task; safe to call
    concurrently from distinct worker domains for distinct tasks. *)

val load : dir:string -> experiment:string -> seed:int -> entry option
(** [None] when absent or failing the integrity check. *)
