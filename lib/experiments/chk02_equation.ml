(* Equation-consistency oracle (DESIGN.md §11): in steady state with a
   single lossy receiver, the sender's rate is the CLR's calculated
   rate, which in turn is the Padhye throughput at the receiver's
   measured loss-event rate and RTT.  Re-deriving that throughput from
   the receiver's own state and comparing it against the sender's
   actual rate closes the loop over the entire report/election/rate
   pipeline: a persistent gap means some stage drifted from Eq. (1). *)

type sample = { time : float; rate_kbps : float; model_kbps : float; gap : float }

let measure ?(seed = 42) ?(loss = 0.01) ?(delay = 0.04) ~t_end () =
  let cfg = Tfmcc_core.Config.default in
  let st =
    Scenario.star ~seed ~cfg ~link_bps:8e6 ~link_delays:[| delay |]
      ~link_losses:[| loss |] ()
  in
  Tfmcc_core.Session.start st.Scenario.s_session ~at:0.;
  let warmup = t_end /. 3. in
  let samples = ref [] in
  Scenario.sample_every st.Scenario.s_sc ~dt:1. ~t_end (fun now ->
      if now >= warmup then begin
        let sender = Tfmcc_core.Session.sender st.Scenario.s_session in
        let rx = List.hd (Tfmcc_core.Session.receivers st.Scenario.s_session) in
        let p = Tfmcc_core.Receiver.loss_event_rate rx in
        let rtt = Tfmcc_core.Receiver.rtt rx in
        let rate = Tfmcc_core.Sender.rate_bytes_per_s sender in
        if p > 0. && Tfmcc_core.Receiver.has_rtt_measurement rx then begin
          let model =
            Tcp_model.Padhye.throughput ~b:cfg.Tfmcc_core.Config.b
              ~s:cfg.Tfmcc_core.Config.packet_size ~rtt p
          in
          let gap =
            Check.Oracle.equation_gap ~b:cfg.Tfmcc_core.Config.b
              ~s:cfg.Tfmcc_core.Config.packet_size ~rtt ~p ~rate
          in
          samples :=
            {
              time = now;
              rate_kbps = rate *. 8. /. 1000.;
              model_kbps = model *. 8. /. 1000.;
              gap;
            }
            :: !samples
        end
      end);
  Scenario.run_until st.Scenario.s_sc t_end;
  List.rev !samples

let mean_gap samples =
  match List.filter (fun s -> Float.is_finite s.gap) samples with
  | [] -> infinity
  | l ->
      List.fold_left (fun acc s -> acc +. s.gap) 0. l
      /. float_of_int (List.length l)

let tolerance = 0.15

let run ~mode ~seed =
  let t_end = Scenario.scale mode ~quick:120. ~full:300. in
  let samples = measure ~seed ~t_end () in
  let rows =
    List.map (fun s -> (s.time, [ s.rate_kbps; s.model_kbps; s.gap ])) samples
  in
  let mg = mean_gap samples in
  [
    Series.make
      ~title:
        "Chk 2: equation oracle — sender rate vs Padhye model at the \
         receiver's (p, RTT)"
      ~xlabel:"time (s)"
      ~ylabels:[ "sender rate (kbit/s)"; "model rate (kbit/s)"; "relative gap" ]
      ~notes:
        [
          Printf.sprintf
            "mean relative gap after warmup: %.1f%% vs %.0f%% tolerance — %s \
             (the sender tracks the CLR's smoothed, capped report, so a \
             bounded instantaneous gap is expected; a diverging one is \
             drift)"
            (100. *. mg) (100. *. tolerance)
            (if mg <= tolerance then "PASS" else "FAIL");
        ]
      rows;
  ]
