open Netsim_env

(* Robustness: corrupted, duplicated and reordered packets on every
   receiver link, both directions.

   Five percent of data packets and five percent of reports get one
   field mangled (Wire.corrupt_packet: NaN rates, negative RTTs, p > 1,
   bogus rounds, wrong session ids ...), some packets are duplicated and
   some reports reordered.  The required behaviour is containment: every
   malformed packet is rejected at validation before touching protocol
   state (the drop counters account for all of them), the sender's rate
   stays finite and positive throughout, and throughput stays in the
   band the surviving valid feedback supports. *)

let run ~mode ~seed =
  let t_end = Scenario.scale mode ~quick:60. ~full:150. in
  let st =
    Scenario.star ~seed ~link_bps:20e6
      ~link_delays:[| 0.02; 0.03; 0.04 |]
      ~link_losses:[| 0.005; 0.01; 0.02 |]
      ()
  in
  let sess = st.Scenario.s_session in
  let eng = st.Scenario.s_sc.Scenario.engine in
  let fault = Netsim.Fault.create eng in
  Session.start sess ~at:0.;
  Array.iter
    (fun (fwd, rev) ->
      Netsim.Fault.corrupt fault fwd ~rate:0.05 ~mangle:Netsim_env.corrupt_packet ();
      Netsim.Fault.corrupt fault rev ~rate:0.05 ~mangle:Netsim_env.corrupt_packet ();
      Netsim.Fault.duplicate fault fwd ~rate:0.01 ();
      Netsim.Fault.reorder fault rev ~rate:0.02 ~extra_delay:0.05 ())
    st.Scenario.s_rx_links;
  let samples = ref [] in
  let rate_ok = ref true in
  Scenario.sample_every st.Scenario.s_sc ~dt:0.25 ~t_end (fun now ->
      let s = Session.sender sess in
      let rate = Sender.rate_bytes_per_s s in
      if not (Float.is_finite rate && rate > 0.) then rate_ok := false;
      samples := (now, [ rate *. 8. /. 1e6 ]) :: !samples);
  Scenario.run_until st.Scenario.s_sc t_end;
  let metrics = st.Scenario.s_sc.Scenario.obs.Obs.Sink.metrics in
  let journal = st.Scenario.s_sc.Scenario.obs.Obs.Sink.journal in
  [
    Series.make
      ~title:"rob03: corrupted / duplicated / reordered packets"
      ~xlabel:"time (s)"
      ~ylabels:[ "X_send (Mbit/s)" ]
      ~notes:
        [
          Obs.Metrics.describe ~prefix:"netsim_fault_" metrics;
          Printf.sprintf
            "rejected at validation: %d reports (sender), %d data packets \
             (receivers)"
            (Obs.Metrics.sum_counters metrics "tfmcc_sender_malformed_drops_total")
            (Obs.Metrics.sum_counters metrics
               "tfmcc_receiver_malformed_drops_total");
          Printf.sprintf "journal: %d malformed-drop entries retained"
            (Obs.Journal.count_events journal (function
              | Obs.Journal.Malformed_drop _ -> true
              | _ -> false));
          (if !rate_ok then "sender rate stayed finite and positive throughout"
           else "FAIL: sender rate went non-finite or non-positive");
        ]
      (List.rev !samples);
  ]
