open Tfmcc_core
open Netsim_env

(* Two-level tree: sender -- hub -- k branch nodes -- m receivers each.
   Receiver 0 of branch 0 has the worst loss and must end up CLR. *)
type built = {
  sc : Scenario.t;
  sender : Netsim.Node.t;
  branches : Netsim.Node.t array;
  rx_nodes : Netsim.Node.t array array;
  worst : Netsim.Node.t;
}

let build ~seed ~k ~m =
  let sc = Scenario.base ~seed () in
  let topo = sc.Scenario.topo in
  let eng = sc.Scenario.engine in
  let sender = Netsim.Topology.add_node topo in
  let hub = Netsim.Topology.add_node topo in
  ignore (Netsim.Topology.connect topo ~bandwidth_bps:10e6 ~delay_s:0.005 sender hub);
  let branches =
    Array.init k (fun _ ->
        let b = Netsim.Topology.add_node topo in
        ignore (Netsim.Topology.connect topo ~bandwidth_bps:10e6 ~delay_s:0.01 hub b);
        b)
  in
  let rx_nodes =
    Array.mapi
      (fun bi branch ->
        Array.init m (fun ri ->
            let rx = Netsim.Topology.add_node topo in
            let p = if bi = 0 && ri = 0 then 0.04 else 0.01 in
            ignore
              (Netsim.Topology.connect topo
                 ~loss_ab:
                   (Netsim.Loss_model.bernoulli ~rng:(Netsim.Engine.split_rng eng) ~p)
                 ~bandwidth_bps:10e6 ~delay_s:0.01 branch rx);
            rx))
      branches
  in
  { sc; sender; branches; rx_nodes; worst = rx_nodes.(0).(0) }

type outcome = {
  o_reports_at_sender : float;  (* per round *)
  o_rate_kbps : float;
  o_clr_correct : bool;
}

let measure b ~t_end snd =
  Scenario.run_until b.sc t_end;
  let rounds = Stdlib.max 1 (Sender.round snd) in
  {
    o_reports_at_sender =
      float_of_int (Sender.reports_received snd) /. float_of_int rounds;
    o_rate_kbps = Sender.rate_bytes_per_s snd *. 8. /. 1000.;
    o_clr_correct = Sender.clr snd = Some (Netsim.Node.id b.worst);
  }

let run_plain ~seed ~k ~m ~t_end =
  let b = build ~seed ~k ~m in
  let receivers = Array.to_list b.rx_nodes |> List.concat_map Array.to_list in
  let session =
    Session.create b.sc.Scenario.topo ~session:Scenario.tfmcc_flow
      ~sender_node:b.sender ~receiver_nodes:receivers ()
  in
  Session.start session ~at:0.;
  measure b ~t_end (Session.sender session)

let run_aggregated ~seed ~k ~m ~t_end =
  let b = build ~seed ~k ~m in
  let cfg = { Config.default with use_suppression = false } in
  let sender_agent =
    Sender.create b.sc.Scenario.topo ~cfg ~session:Scenario.tfmcc_flow
      ~node:b.sender ()
  in
  let aggs =
    Array.map
      (fun branch ->
        Aggregator.create b.sc.Scenario.topo ~session:Scenario.tfmcc_flow
          ~node:branch ~parent:b.sender ())
      b.branches
  in
  let receivers =
    Array.mapi
      (fun bi row ->
        Array.map
          (fun rx ->
            let r =
              Receiver.create b.sc.Scenario.topo ~cfg
                ~session:Scenario.tfmcc_flow ~node:rx ~sender:b.sender
                ~report_to:b.branches.(bi) ()
            in
            Receiver.join r;
            r)
          row)
      b.rx_nodes
  in
  Sender.start sender_agent ~at:0.;
  let o = measure b ~t_end sender_agent in
  let reports_sent =
    Array.fold_left
      (fun acc row ->
        Array.fold_left (fun acc r -> acc + Receiver.reports_sent r) acc row)
      0 receivers
  in
  let agg_in = Array.fold_left (fun acc a -> acc + Aggregator.reports_in a) 0 aggs in
  (o, reports_sent, agg_in)

let run ~mode ~seed =
  let k = 4 in
  let m = Scenario.scale mode ~quick:10 ~full:25 in
  let t_end = Scenario.scale mode ~quick:80. ~full:200. in
  let plain = run_plain ~seed ~k ~m ~t_end in
  let agg, agg_reports_sent, agg_in = run_aggregated ~seed ~k ~m ~t_end in
  [
    Series.make
      ~title:
        (Printf.sprintf
           "Extension (6.1): aggregation tree vs end-to-end suppression \
            (%d branches x %d receivers)"
           k m)
      ~xlabel:"variant (0=end-to-end, 1=aggregation tree)"
      ~ylabels:[ "reports/round at sender"; "rate (kbit/s)"; "CLR correct" ]
      ~notes:
        [
          Printf.sprintf
            "aggregation: receivers sent %d reports, aggregators absorbed \
             %d and forwarded %.1f/round to the sender"
            agg_reports_sent agg_in agg.o_reports_at_sender;
          "paper: a tree solves implosion outright but moves the hard \
           problem to scalable tree construction";
        ]
      [
        ( 0.,
          [
            plain.o_reports_at_sender;
            plain.o_rate_kbps;
            (if plain.o_clr_correct then 1. else 0.);
          ] );
        ( 1.,
          [
            agg.o_reports_at_sender;
            agg.o_rate_kbps;
            (if agg.o_clr_correct then 1. else 0.);
          ] );
      ];
  ]
