open Tfmcc_core

(* Robustness: transient full partition of the receiver subtree.

   Every per-receiver link is cut in both directions for a window in the
   middle of the run, so the sender hears nothing at all — no reports,
   no leave, nothing.  The required behaviour is the feedback-starvation
   degradation: after starvation_rounds feedback rounds of total silence
   the sender decays its rate multiplicatively down to the one-packet
   floor instead of free-running at the last CLR-approved rate, and
   recovers cleanly (starved flag cleared, normal rate control resumes)
   once the partition heals and the first valid report gets through. *)

let run ~mode ~seed =
  let t_end = Scenario.scale mode ~quick:90. ~full:180. in
  let part_from = t_end /. 3. in
  let part_until = 2. *. t_end /. 3. in
  let st =
    Scenario.star ~seed ~link_bps:20e6
      ~link_delays:[| 0.02; 0.03; 0.04 |]
      ~link_losses:[| 0.005; 0.01; 0.02 |]
      ()
  in
  let sess = st.Scenario.s_session in
  let eng = st.Scenario.s_sc.Scenario.engine in
  let fault = Netsim.Fault.create eng in
  Session.start sess ~at:0.;
  let links =
    Array.to_list st.Scenario.s_rx_links
    |> List.concat_map (fun (fwd, rev) -> [ fwd; rev ])
  in
  Netsim.Fault.partition fault ~links ~from_:part_from ~until:part_until;
  let samples = ref [] in
  let min_rate_in_partition = ref infinity in
  let recovered_at = ref nan in
  let pre_partition_rate = ref 0. in
  Scenario.sample_every st.Scenario.s_sc ~dt:0.25 ~t_end (fun now ->
      let s = Session.sender sess in
      let rate = Sender.rate_bytes_per_s s in
      if now < part_from then pre_partition_rate := rate;
      if now >= part_from && now <= part_until then
        min_rate_in_partition := Float.min !min_rate_in_partition rate;
      if now > part_until && Float.is_nan !recovered_at
         && (not (Sender.is_starved s))
         && rate >= 0.5 *. !pre_partition_rate
      then recovered_at := now;
      samples :=
        ( now,
          [ rate *. 8. /. 1e6; (if Sender.is_starved s then 1. else 0.) ] )
        :: !samples);
  Scenario.run_until st.Scenario.s_sc t_end;
  let metrics = st.Scenario.s_sc.Scenario.obs.Obs.Sink.metrics in
  let journal = st.Scenario.s_sc.Scenario.obs.Obs.Sink.journal in
  [
    Series.make
      ~title:"rob02: subtree partition, starvation decay and recovery"
      ~xlabel:"time (s)"
      ~ylabels:[ "X_send (Mbit/s)"; "starved (0/1)" ]
      ~notes:
        [
          Printf.sprintf
            "partition [%.0f, %.0f]s: starvations=%d, min rate inside = %.1f \
             kbit/s (floor = one packet per 64 s)"
            part_from part_until
            (Obs.Metrics.sum_counters metrics "tfmcc_sender_starvations_total")
            (!min_rate_in_partition *. 8. /. 1e3);
          (if Float.is_nan !recovered_at then
             "did NOT recover to 50% of the pre-partition rate"
           else
             Printf.sprintf
               "recovered to 50%% of the pre-partition rate %.1f s after heal"
               (!recovered_at -. part_until));
          Obs.Metrics.describe ~prefix:"netsim_fault_" metrics;
          Printf.sprintf "journal: %d starvation entries, %d fault events"
            (Obs.Journal.count_events journal (function
              | Obs.Journal.Starvation _ -> true
              | _ -> false))
            (Obs.Journal.count_events journal (function
              | Obs.Journal.Fault _ -> true
              | _ -> false));
        ]
      (List.rev !samples);
  ]
