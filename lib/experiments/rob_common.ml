open Tfmcc_core
open Netsim_env

(* Shared harness of the Byzantine robustness suite (rob04–rob07).

   One attack matrix cell = a fig09-style dumbbell (8 Mbit/s bottleneck,
   32 honest receivers, no TCP cross traffic so the honest-goodput signal
   is clean) with at most one adversarial receiver attached behind the
   right router.  The adversary starts after slowstart has settled; the
   honest goodput is measured from shortly after the attack starts to the
   end of the run, so a successful attack shows up directly as lost
   goodput.  Every cell runs on a private observability sink so defense
   counters never leak between cells. *)

type attack = Understater | Overstater | Rtt_liar | Spammer

let attacks = [ Understater; Overstater; Rtt_liar; Spammer ]

let attack_name = function
  | Understater -> "understater"
  | Overstater -> "overstater"
  | Rtt_liar -> "rtt-liar"
  | Spammer -> "spammer"

(* Calibrated attack strengths: the understater claims 2% of the
   advertised rate (equation-consistent, so only the outlier screen can
   catch it); the rtt-liar shaves 20% per round with a 1 ms claimed RTT;
   the spammer undercuts by 30% on every data packet. *)
let strategy = function
  | Understater -> Adversary.Understater { factor = 0.02 }
  | Overstater -> Adversary.Overstater { factor = 50. }
  | Rtt_liar -> Adversary.Rtt_liar { rtt = 0.001; factor = 0.8 }
  | Spammer -> Adversary.Spammer { factor = 0.7 }

type cell = {
  c_attack : string;  (* "none" for the no-attacker baseline *)
  c_defense : bool;
  c_goodput_kbps : float;  (* mean per-receiver goodput over the window *)
  c_forged_reports : int;
  c_rejects : int;  (* defense rejections of any kind *)
  c_outlier_rejects : int;
  c_quarantines : int;
  c_damped : int;
  c_clr_changes : int;
  c_failovers : int;
  c_starvations : int;
  c_samples : (float * float) list;  (* (t, X_send in Mbit/s) *)
}

let n_receivers = 32

let bottleneck_bps = 8e6

let attack_start = 6.

let measure_start = 10.

let horizon mode = Scenario.scale mode ~quick:30. ~full:90.

let run_cell ~mode ~seed ?attack ~defense () =
  let t_end = horizon mode in
  let cfg = { Config.default with Config.defense_enabled = defense } in
  let obs = Obs.Sink.create () in
  let d =
    Scenario.dumbbell ~seed ~obs ~cfg ~bottleneck_bps ~delay_s:0.02
      ~n_tfmcc_rx:n_receivers ~n_tcp:0 ()
  in
  let sc = d.Scenario.sc in
  let adversary =
    match attack with
    | None -> None
    | Some a ->
        let node = Netsim.Topology.add_node sc.Scenario.topo in
        ignore
          (Netsim.Topology.connect sc.Scenario.topo
             ~bandwidth_bps:(10. *. bottleneck_bps) ~delay_s:0.001
             d.Scenario.right_router node);
        let adv =
          Adversary.create sc.Scenario.topo ~cfg ~session:Scenario.tfmcc_flow
            ~node ~sender:d.Scenario.sender_node ~strategy:(strategy a) ()
        in
        Adversary.start adv ~at:attack_start;
        Some adv
  in
  Session.start d.Scenario.session ~at:0.;
  let rxs = Session.receivers d.Scenario.session in
  let counts_at_start = ref [] in
  ignore
    (Netsim.Engine.at sc.Scenario.engine ~time:measure_start (fun () ->
         counts_at_start := List.map Receiver.packets_received rxs));
  let samples = ref [] in
  Scenario.sample_every sc ~dt:0.25 ~t_end (fun now ->
      let x = Sender.rate_bytes_per_s (Session.sender d.Scenario.session) in
      samples := (now, x *. 8. /. 1e6) :: !samples);
  Scenario.run_until sc t_end;
  let window = t_end -. measure_start in
  let goodput_kbps =
    if !counts_at_start = [] then 0.
    else
      let per_rx =
        List.map2
          (fun rx c0 ->
            float_of_int (Receiver.packets_received rx - c0)
            *. float_of_int cfg.Config.packet_size *. 8. /. window /. 1000.)
          rxs !counts_at_start
      in
      List.fold_left ( +. ) 0. per_rx /. float_of_int (List.length per_rx)
  in
  let metrics = obs.Obs.Sink.metrics in
  let cnt = Obs.Metrics.sum_counters metrics in
  (* Cells run on private sinks so counters never leak between matrix
     cells — but the CLI's [--json] / [--metrics-out] export reads the
     installed sink.  Mirror the per-cell protocol verdicts there,
     labeled by cell, so chaos runs export their defense counters too. *)
  (match Scenario.ambient_obs () with
  | Some amb when amb != obs ->
      let labels =
        [
          ( "attack",
            match attack with Some a -> attack_name a | None -> "none" );
          ("defense", if defense then "on" else "off");
        ]
      in
      List.iter
        (fun name ->
          Obs.Metrics.Counter.add
            (Obs.Metrics.counter amb.Obs.Sink.metrics ~labels name)
            (cnt name))
        [
          "tfmcc_defense_implausible_total";
          "tfmcc_defense_outliers_total";
          "tfmcc_defense_spam_drops_total";
          "tfmcc_defense_quarantined_drops_total";
          "tfmcc_defense_quarantines_total";
          "tfmcc_defense_clr_damped_total";
          "tfmcc_sender_clr_changes_total";
          "tfmcc_sender_clr_failovers_total";
          "tfmcc_sender_clr_timeouts_total";
          "tfmcc_sender_starvations_total";
        ]
  | _ -> ());
  {
    c_attack = (match attack with Some a -> attack_name a | None -> "none");
    c_defense = defense;
    c_goodput_kbps = goodput_kbps;
    c_forged_reports =
      (match adversary with Some a -> Adversary.reports_sent a | None -> 0);
    c_rejects =
      cnt "tfmcc_defense_implausible_total"
      + cnt "tfmcc_defense_outliers_total"
      + cnt "tfmcc_defense_spam_drops_total"
      + cnt "tfmcc_defense_quarantined_drops_total";
    c_outlier_rejects = cnt "tfmcc_defense_outliers_total";
    c_quarantines = cnt "tfmcc_defense_quarantines_total";
    c_damped = cnt "tfmcc_defense_clr_damped_total";
    c_clr_changes = cnt "tfmcc_sender_clr_changes_total";
    c_failovers = cnt "tfmcc_sender_clr_failovers_total";
    c_starvations = cnt "tfmcc_sender_starvations_total";
    c_samples = List.rev !samples;
  }

(* Goodput lost to the attack, percent, against the matching
   (same-defense-setting) no-attacker baseline. *)
let degradation ~baseline cell =
  if baseline.c_goodput_kbps <= 0. then 0.
  else
    100.
    *. (baseline.c_goodput_kbps -. cell.c_goodput_kbps)
    /. baseline.c_goodput_kbps

(* ------------------------------------------------------------ scorecard *)

type row = {
  r_attack : string;
  r_off : cell;
  r_on : cell;
  r_off_deg : float;  (* percent degradation, defenses off *)
  r_on_deg : float;  (* percent degradation, defenses on *)
}

type scorecard = { base_off : cell; base_on : cell; rows : row list }

let scorecard ~mode ~seed =
  let base_off = run_cell ~mode ~seed ~defense:false () in
  let base_on = run_cell ~mode ~seed ~defense:true () in
  let rows =
    List.map
      (fun a ->
        let off = run_cell ~mode ~seed ~attack:a ~defense:false () in
        let on = run_cell ~mode ~seed ~attack:a ~defense:true () in
        {
          r_attack = attack_name a;
          r_off = off;
          r_on = on;
          r_off_deg = degradation ~baseline:base_off off;
          r_on_deg = degradation ~baseline:base_on on;
        })
      attacks
  in
  { base_off; base_on; rows }

let scorecard_lines s =
  let header =
    Printf.sprintf "%-12s %10s %10s %9s %9s %8s %6s %7s" "attack"
      "off (kbps)" "on (kbps)" "off deg%" "on deg%" "rejects" "quar" "damped"
  in
  let baseline =
    Printf.sprintf
      "baseline (no attacker): %.0f kbps defenses off, %.0f kbps on \
       (32 honest receivers, %.0f Mbit/s bottleneck)"
      s.base_off.c_goodput_kbps s.base_on.c_goodput_kbps
      (bottleneck_bps /. 1e6)
  in
  baseline :: header
  :: List.map
       (fun r ->
         Printf.sprintf "%-12s %10.0f %10.0f %9.1f %9.1f %8d %6d %7d"
           r.r_attack r.r_off.c_goodput_kbps r.r_on.c_goodput_kbps
           r.r_off_deg r.r_on_deg r.r_on.c_rejects r.r_on.c_quarantines
           r.r_on.c_damped)
       s.rows

(* Shared shape of rob04–rob06: one attack, defenses off vs on, sender
   rate over time plus a goodput/defense summary. *)
let attack_series ~id ~attack ~mode ~seed =
  let base = run_cell ~mode ~seed ~defense:false () in
  let off = run_cell ~mode ~seed ~attack ~defense:false () in
  let on = run_cell ~mode ~seed ~attack ~defense:true () in
  let rows =
    List.map2
      (fun (t, x_off) (_, x_on) -> (t, [ x_off; x_on ]))
      off.c_samples on.c_samples
  in
  let name = attack_name attack in
  [
    Series.make
      ~title:
        (Printf.sprintf "%s: single %s among %d honest receivers" id name
           n_receivers)
      ~xlabel:"time (s)"
      ~ylabels:
        [ "X_send, defenses off (Mbit/s)"; "X_send, defenses on (Mbit/s)" ]
      ~notes:
        [
          Printf.sprintf
            "attack starts at t=%.0fs; goodput window [%.0fs, %.0fs]"
            attack_start measure_start (horizon mode);
          Printf.sprintf
            "honest goodput: baseline %.0f kbps | %s w/o defenses %.0f kbps \
             (%.1f%% degradation) | with defenses %.0f kbps (%.1f%%)"
            base.c_goodput_kbps name off.c_goodput_kbps
            (degradation ~baseline:base off)
            on.c_goodput_kbps
            (degradation ~baseline:base on);
          Printf.sprintf
            "forged reports: %d sent, defenses rejected %d (%d outlier, %d \
             quarantines, %d damped switches)"
            on.c_forged_reports on.c_rejects on.c_outlier_rejects
            on.c_quarantines on.c_damped;
          Printf.sprintf
            "CLR churn: %d changes / %d failovers w/o defenses vs %d / %d \
             with"
            off.c_clr_changes off.c_failovers on.c_clr_changes on.c_failovers;
        ]
      rows;
  ]
