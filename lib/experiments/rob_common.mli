(** Shared harness of the Byzantine robustness suite (rob04–rob07,
    DESIGN.md §10): a fig09-style dumbbell with 32 honest receivers and
    at most one adversarial receiver, measured as mean honest goodput
    over the post-attack window, with and without the {!Tfmcc_core.Defense}
    layer. *)

type attack = Understater | Overstater | Rtt_liar | Spammer

val attacks : attack list

val attack_name : attack -> string

val strategy : attack -> Tfmcc_core.Adversary.strategy
(** The calibrated strategy parameters used across the suite. *)

(** One run of the attack matrix. *)
type cell = {
  c_attack : string;
  c_defense : bool;
  c_goodput_kbps : float;
  c_forged_reports : int;
  c_rejects : int;
  c_outlier_rejects : int;
  c_quarantines : int;
  c_damped : int;
  c_clr_changes : int;
  c_failovers : int;
  c_starvations : int;
  c_samples : (float * float) list;
}

val n_receivers : int

val run_cell :
  mode:Scenario.mode ->
  seed:int ->
  ?attack:attack ->
  defense:bool ->
  unit ->
  cell
(** Runs one cell on a private observability sink (no attacker when
    [attack] is omitted — the baseline). *)

val degradation : baseline:cell -> cell -> float
(** Percent of honest goodput lost versus the matching baseline. *)

type row = {
  r_attack : string;
  r_off : cell;
  r_on : cell;
  r_off_deg : float;
  r_on_deg : float;
}

type scorecard = { base_off : cell; base_on : cell; rows : row list }

val scorecard : mode:Scenario.mode -> seed:int -> scorecard
(** The full matrix: both baselines plus every attack with defenses off
    and on (10 runs). *)

val scorecard_lines : scorecard -> string list
(** Human-readable per-attack degradation table (the chaos scorecard). *)

val attack_series :
  id:string -> attack:attack -> mode:Scenario.mode -> seed:int -> Series.t list
(** The rob04–rob06 experiment body: one attack, defenses off vs on. *)
