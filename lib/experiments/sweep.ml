type replicate = { seed : int; series : Series.t list }

type result = {
  experiment : Registry.experiment;
  replicates : replicate list;
  aggregate : Series.t list option;
}

let seeds ~base ~count =
  if count < 1 then invalid_arg "Sweep.seeds: count must be >= 1";
  List.init count (fun i -> base + i)

let run_one ?(strict = false) (e : Registry.experiment) ~mode ~seed =
  let sink = Obs.Sink.create () in
  let series =
    Scenario.with_obs sink (fun () ->
        if strict then
          (* Fresh checker per task: probes hold engine references, and
             a strict violation must abort exactly this (experiment,
             seed) cell with its own journal window. *)
          let checker = Check.Invariant.create ~strict:true () in
          Scenario.with_checks checker (fun () -> e.Registry.run ~mode ~seed)
        else e.Registry.run ~mode ~seed)
  in
  { seed; series }

(* ------------------------------------------------------------ aggregate *)

let column_stats values =
  let finite = List.filter (fun v -> not (Float.is_nan v)) values in
  match finite with
  | [] -> (Float.nan, Float.nan)
  | _ ->
      let a = Array.of_list finite in
      (Stats.Descriptive.mean a, Stats.Descriptive.stddev a)

exception Shape_mismatch

(* One series position across all seeds -> a mean/sd series. *)
let aggregate_group (group : Series.t list) =
  let s0 = List.hd group in
  let compatible (s : Series.t) =
    s.Series.title = s0.Series.title
    && s.Series.xlabel = s0.Series.xlabel
    && s.Series.ylabels = s0.Series.ylabels
    && List.length s.Series.rows = List.length s0.Series.rows
    && List.for_all2
         (fun (x, _) (x0, _) -> Float.equal x x0)
         s.Series.rows s0.Series.rows
  in
  if not (List.for_all compatible group) then raise Shape_mismatch;
  let ylabels =
    List.concat_map (fun l -> [ l ^ " mean"; l ^ " sd" ]) s0.Series.ylabels
  in
  let n_cols = List.length s0.Series.ylabels in
  let rows =
    List.mapi
      (fun ri (x, _) ->
        let cells =
          List.concat_map
            (fun ci ->
              let values =
                List.map
                  (fun (s : Series.t) ->
                    let _, ys = List.nth s.Series.rows ri in
                    List.nth ys ci)
                  group
              in
              let mean, sd = column_stats values in
              [ mean; sd ])
            (List.init n_cols Fun.id)
        in
        (x, cells))
      s0.Series.rows
  in
  let note =
    Printf.sprintf "per-cell mean and sample stddev over %d seeds"
      (List.length group)
  in
  Series.make ~title:s0.Series.title ~xlabel:s0.Series.xlabel ~ylabels
    ~notes:(s0.Series.notes @ [ note ])
    rows

let aggregate per_seed =
  match per_seed with
  | [] | [ _ ] -> None
  | first :: rest ->
      let n_series = List.length first in
      if List.exists (fun l -> List.length l <> n_series) rest then None
      else begin
        try
          Some
            (List.mapi
               (fun i _ -> aggregate_group (List.map (fun l -> List.nth l i) per_seed))
               first)
        with Shape_mismatch -> None
      end

(* ------------------------------------------------------------------ run *)

let rec chunk n = function
  | [] -> []
  | l ->
      let rec take k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> take (k - 1) (x :: acc) rest
      in
      let head, rest = take n [] l in
      head :: chunk n rest

let run ?(experiments = Registry.all) ?(strict = false) ~jobs ~mode ~seed
    ?(seeds = 1) () =
  if seeds < 1 then invalid_arg "Sweep.run: seeds must be >= 1";
  let seed_list = List.init seeds (fun i -> seed + i) in
  let tasks =
    List.concat_map
      (fun e -> List.map (fun s () -> run_one ~strict e ~mode ~seed:s) seed_list)
      experiments
  in
  let replicates = chunk seeds (Par.map ~jobs tasks) in
  List.map2
    (fun experiment replicates ->
      {
        experiment;
        replicates;
        aggregate = aggregate (List.map (fun r -> r.series) replicates);
      })
    experiments replicates
