type replicate = { seed : int; series : Series.t list }

type result = {
  experiment : Registry.experiment;
  replicates : replicate list;
  aggregate : Series.t list option;
}

let seeds ~base ~count =
  if count < 1 then invalid_arg "Sweep.seeds: count must be >= 1";
  List.init count (fun i -> base + i)

let run_one ?(strict = false) (e : Registry.experiment) ~mode ~seed =
  let sink = Obs.Sink.create () in
  let series =
    Scenario.with_obs sink (fun () ->
        if strict then
          (* Fresh checker per task: probes hold engine references, and
             a strict violation must abort exactly this (experiment,
             seed) cell with its own journal window. *)
          let checker = Check.Invariant.create ~strict:true () in
          Scenario.with_checks checker (fun () -> e.Registry.run ~mode ~seed)
        else e.Registry.run ~mode ~seed)
  in
  { seed; series }

(* ------------------------------------------------------------ aggregate *)

let column_stats values =
  let finite = List.filter (fun v -> not (Float.is_nan v)) values in
  match finite with
  | [] -> (Float.nan, Float.nan)
  | _ ->
      let a = Array.of_list finite in
      (Stats.Descriptive.mean a, Stats.Descriptive.stddev a)

exception Shape_mismatch

(* One series position across all seeds -> a mean/sd series. *)
let aggregate_group (group : Series.t list) =
  let s0 = List.hd group in
  let compatible (s : Series.t) =
    s.Series.title = s0.Series.title
    && s.Series.xlabel = s0.Series.xlabel
    && s.Series.ylabels = s0.Series.ylabels
    && List.length s.Series.rows = List.length s0.Series.rows
    && List.for_all2
         (fun (x, _) (x0, _) -> Float.equal x x0)
         s.Series.rows s0.Series.rows
  in
  if not (List.for_all compatible group) then raise Shape_mismatch;
  let ylabels =
    List.concat_map (fun l -> [ l ^ " mean"; l ^ " sd" ]) s0.Series.ylabels
  in
  let n_cols = List.length s0.Series.ylabels in
  let rows =
    List.mapi
      (fun ri (x, _) ->
        let cells =
          List.concat_map
            (fun ci ->
              let values =
                List.map
                  (fun (s : Series.t) ->
                    let _, ys = List.nth s.Series.rows ri in
                    List.nth ys ci)
                  group
              in
              let mean, sd = column_stats values in
              [ mean; sd ])
            (List.init n_cols Fun.id)
        in
        (x, cells))
      s0.Series.rows
  in
  let note =
    Printf.sprintf "per-cell mean and sample stddev over %d seeds"
      (List.length group)
  in
  Series.make ~title:s0.Series.title ~xlabel:s0.Series.xlabel ~ylabels
    ~notes:(s0.Series.notes @ [ note ])
    rows

let aggregate per_seed =
  match per_seed with
  | [] | [ _ ] -> None
  | first :: rest ->
      let n_series = List.length first in
      if List.exists (fun l -> List.length l <> n_series) rest then None
      else begin
        try
          Some
            (List.mapi
               (fun i _ -> aggregate_group (List.map (fun l -> List.nth l i) per_seed))
               first)
        with Shape_mismatch -> None
      end

(* ------------------------------------------------------------ schedule *)

type schedule = Fifo | Lpt | Steal

let schedule_label = function Fifo -> "fifo" | Lpt -> "lpt" | Steal -> "steal"

let par_mode = function Fifo | Lpt -> Par.Fifo | Steal -> Par.Steal

(* LPT permutation over task slots: [order.(k)] is the original index of
   the k-th task to submit.  Descending measured cost ({!Sweep_costs}),
   ties broken by original index, so the permutation is a pure function
   of the task list — no clocks, no racing. *)
let lpt_order ids =
  let n = Array.length ids in
  let cost = Array.map Sweep_costs.cost ids in
  let order = Array.init n Fun.id in
  Array.sort
    (fun i j -> match compare cost.(j) cost.(i) with 0 -> compare i j | c -> c)
    order;
  order

let inverse order =
  let inv = Array.make (Array.length order) 0 in
  Array.iteri (fun k i -> inv.(i) <- k) order;
  inv

(* Run [tasks] under [schedule] and hand results back in the tasks' own
   (grid) order whatever permutation was submitted — the schedule moves
   wall-clock time around, never bytes.  [ids] names each task's
   experiment (same length as [tasks]) for the LPT cost lookup. *)
let scheduled_map ~schedule ~jobs ids tasks =
  match schedule with
  | Fifo | Steal -> Par.map ~mode:(par_mode schedule) ~jobs tasks
  | Lpt ->
      let arr = Array.of_list tasks in
      let order = lpt_order (Array.of_list ids) in
      let results =
        Array.of_list (Par.map ~jobs (List.map (fun i -> arr.(i)) (Array.to_list order)))
      in
      let inv = inverse order in
      List.init (Array.length arr) (fun i -> results.(inv.(i)))

let scheduled_map_outcomes ~schedule ~jobs ids tasks =
  match schedule with
  | Fifo | Steal -> Par.map_outcomes ~mode:(par_mode schedule) ~jobs tasks
  | Lpt ->
      let arr = Array.of_list tasks in
      let order = lpt_order (Array.of_list ids) in
      let outcomes =
        Array.of_list
          (Par.map_outcomes ~jobs (List.map (fun i -> arr.(i)) (Array.to_list order)))
      in
      let inv = inverse order in
      List.init (Array.length arr) (fun i -> outcomes.(inv.(i)))

(* ------------------------------------------------------------------ run *)

let rec chunk n = function
  | [] -> []
  | l ->
      let rec take k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> take (k - 1) (x :: acc) rest
      in
      let head, rest = take n [] l in
      head :: chunk n rest

let run ?(experiments = Registry.all) ?(strict = false) ?(schedule = Fifo)
    ~jobs ~mode ~seed ?(seeds = 1) () =
  if seeds < 1 then invalid_arg "Sweep.run: seeds must be >= 1";
  let seed_list = List.init seeds (fun i -> seed + i) in
  let tasks =
    List.concat_map
      (fun e -> List.map (fun s () -> run_one ~strict e ~mode ~seed:s) seed_list)
      experiments
  in
  let ids =
    List.concat_map
      (fun e -> List.map (fun _ -> e.Registry.id) seed_list)
      experiments
  in
  let replicates = chunk seeds (scheduled_map ~schedule ~jobs ids tasks) in
  List.map2
    (fun experiment replicates ->
      {
        experiment;
        replicates;
        aggregate = aggregate (List.map (fun r -> r.series) replicates);
      })
    experiments replicates

(* ------------------------------------------------------- supervision *)

type cause = Crashed | Timeout | Stall | Violation

let cause_label = function
  | Crashed -> "crashed"
  | Timeout -> "timeout"
  | Stall -> "stalled"
  | Violation -> "violation"

type failure = {
  f_experiment : string;
  f_seed : int;
  f_attempts : int;
  f_cause : cause;
  f_detail : string;
  f_journal : string;
}

type policy = {
  task_timeout : float option;
  retries : int;
  retry_delay : float;
  stall_events : int;
  max_events : int option;
  checkpoint : string option;
  resume : bool;
  budget : int option;
}

let default_policy =
  {
    task_timeout = None;
    retries = 0;
    retry_delay = 0.;
    stall_events = Netsim.Watchdog.default.Netsim.Watchdog.stall_events;
    max_events = None;
    checkpoint = None;
    resume = false;
    budget = None;
  }

type report = {
  results : result list;
  failures : failure list;
  tasks : int;
  executed : int;
  resumed : int;
  skipped : int;
  retried : int;
}

type task_status = T_ok of replicate * int | T_failed of failure | T_skipped

let task_label f = Checkpoint.task_name ~experiment:f.f_experiment ~seed:f.f_seed

(* One attempt of one (experiment, seed) cell: re-arm the task's control
   (fresh deadline, cleared cancellation), then run the experiment under
   a fresh private sink + watchdog config + attempt number.  Everything
   the attempt observes is attempt-local, so a retry is indistinguishable
   from a first try except for {!Scenario.ambient_attempt}. *)
let attempt_cell ~strict ~policy ~control ~attempt (e : Registry.experiment)
    ~mode ~seed =
  Par.Control.arm control ?timeout:policy.task_timeout ();
  let sink = Obs.Sink.create () in
  let wd =
    let d = Netsim.Watchdog.default in
    {
      d with
      Netsim.Watchdog.control;
      stall_events = policy.stall_events;
      max_events = policy.max_events;
    }
  in
  match
    Scenario.with_obs sink (fun () ->
        Scenario.with_watchdog wd (fun () ->
            Scenario.with_attempt attempt (fun () ->
                if strict then
                  let checker = Check.Invariant.create ~strict:true () in
                  Scenario.with_checks checker (fun () ->
                      e.Registry.run ~mode ~seed)
                else e.Registry.run ~mode ~seed)))
  with
  | series -> Ok { seed; series }
  | exception exn ->
      let cause, detail =
        match exn with
        | Check.Invariant.Violation msg -> (Violation, msg)
        | Par.Cancelled (Par.Timeout s) ->
            (Timeout, Printf.sprintf "wall-clock timeout after %gs" s)
        | Par.Cancelled (Par.Stall reason) -> (Stall, reason)
        | exn -> (Crashed, Printexc.to_string exn)
      in
      Error
        {
          f_experiment = e.Registry.id;
          f_seed = seed;
          f_attempts = attempt;
          f_cause = cause;
          f_detail = detail;
          f_journal = Check.Invariant.journal_window sink.Obs.Sink.journal;
        }

let retryable = function Crashed | Timeout | Stall -> true | Violation -> false

(* The whole retry loop runs inside the worker task, so the pool sees one
   outcome per task whatever the attempt count.  Invariant violations are
   deterministic (same seed, same series) and are never retried.  A
   successful attempt checkpoints immediately — before the sweep as a
   whole finishes — which is what makes --resume after a mid-sweep kill
   work. *)
let run_task ~strict ~policy (e : Registry.experiment) ~mode ~seed control =
  let rec go attempt =
    match attempt_cell ~strict ~policy ~control ~attempt e ~mode ~seed with
    | Ok rep ->
        (match policy.checkpoint with
        | Some dir ->
            Checkpoint.save ~dir
              (Checkpoint.make ~experiment:e.Registry.id ~seed rep.series)
        | None -> ());
        T_ok (rep, attempt)
    | Error f ->
        if attempt <= policy.retries && retryable f.f_cause then begin
          if policy.retry_delay > 0. then
            Unix.sleepf (policy.retry_delay *. (2. ** float_of_int (attempt - 1)));
          go (attempt + 1)
        end
        else T_failed f
  in
  go 1

type task_tag = Tag_run | Tag_resumed of Series.t list | Tag_skipped

(* Defensive only: [run_task] catches every exception itself, so the
   pool-level outcome is [Ok] unless the supervisor plumbing raised. *)
let pool_failure (e : Registry.experiment) seed cause detail =
  T_failed
    {
      f_experiment = e.Registry.id;
      f_seed = seed;
      f_attempts = 0;
      f_cause = cause;
      f_detail = detail;
      f_journal = "(journal unavailable)\n";
    }

let run_supervised ?(experiments = Registry.all) ?(strict = false)
    ?(policy = default_policy) ?(obs = Obs.Sink.null) ?(schedule = Fifo) ~jobs
    ~mode ~seed ?(seeds = 1) () =
  if seeds < 1 then invalid_arg "Sweep.run_supervised: seeds must be >= 1";
  if policy.retries < 0 then
    invalid_arg "Sweep.run_supervised: retries must be >= 0";
  if policy.retry_delay < 0. then
    invalid_arg "Sweep.run_supervised: retry_delay must be >= 0";
  (match policy.task_timeout with
  | Some t when t <= 0. ->
      invalid_arg "Sweep.run_supervised: task_timeout must be > 0"
  | _ -> ());
  (match policy.budget with
  | Some b when b < 0 -> invalid_arg "Sweep.run_supervised: budget must be >= 0"
  | _ -> ());
  if policy.resume && policy.checkpoint = None then
    invalid_arg "Sweep.run_supervised: resume requires a checkpoint directory";
  let seed_list = List.init seeds (fun i -> seed + i) in
  let cells =
    List.concat_map (fun e -> List.map (fun s -> (e, s)) seed_list) experiments
  in
  (* Resume pass (coordinator-side, before any fan-out): a cell with a
     valid checkpoint is satisfied from disk; the task budget then caps
     how many of the remaining cells actually run. *)
  let budget = ref (match policy.budget with Some b -> b | None -> max_int) in
  let tagged =
    List.map
      (fun (e, s) ->
        let resumed =
          match policy.checkpoint with
          | Some dir when policy.resume ->
              Checkpoint.load ~dir ~experiment:e.Registry.id ~seed:s
          | _ -> None
        in
        match resumed with
        | Some entry -> (e, s, Tag_resumed entry.Checkpoint.c_series)
        | None ->
            if !budget > 0 then begin
              decr budget;
              (e, s, Tag_run)
            end
            else (e, s, Tag_skipped))
      cells
  in
  let to_run =
    List.filter_map
      (fun (e, s, tag) -> match tag with Tag_run -> Some (e, s) | _ -> None)
      tagged
  in
  let outcomes =
    scheduled_map_outcomes ~schedule ~jobs
      (List.map (fun (e, _) -> e.Registry.id) to_run)
      (List.map
         (fun (e, s) control -> run_task ~strict ~policy e ~mode ~seed:s control)
         to_run)
  in
  (* Stitch pool outcomes back into grid order; [scheduled_map_outcomes]
     returns slots in [to_run] order whatever the submission permutation
     or pool mode, so one pass over [tagged] consumes them in
     sequence. *)
  let rem = ref outcomes in
  let statuses =
    List.map
      (fun (e, s, tag) ->
        match tag with
        | Tag_resumed series -> (e, s, T_ok ({ seed = s; series }, 0))
        | Tag_skipped -> (e, s, T_skipped)
        | Tag_run ->
            let o =
              match !rem with
              | [] -> assert false
              | o :: tl ->
                  rem := tl;
                  o
            in
            let status =
              match o with
              | Par.Ok st -> st
              | Par.Failed { exn; _ } ->
                  pool_failure e s Crashed
                    ("supervisor: " ^ Printexc.to_string exn)
              | Par.Timed_out { after } ->
                  pool_failure e s Timeout
                    (Printf.sprintf "wall-clock timeout after %gs" after)
              | Par.Stalled { reason } -> pool_failure e s Stall reason
            in
            (e, s, status))
      tagged
  in
  let failures =
    List.filter_map
      (fun (_, _, st) -> match st with T_failed f -> Some f | _ -> None)
      statuses
  in
  let resumed =
    List.length
      (List.filter (fun (_, _, t) -> t <> Tag_run && t <> Tag_skipped) tagged)
  in
  let skipped =
    List.length (List.filter (fun (_, _, t) -> t = Tag_skipped) tagged)
  in
  let retried =
    List.fold_left
      (fun acc (_, _, st) ->
        match st with
        | T_ok (_, a) when a > 1 -> acc + (a - 1)
        | T_failed f when f.f_attempts > 1 -> acc + (f.f_attempts - 1)
        | _ -> acc)
      0 statuses
  in
  (* Sweep-level observability: counters plus one journal Task entry per
     non-ok task, recorded into the coordinator's sink (default null). *)
  let m = obs.Obs.Sink.metrics in
  let bump ?labels name n =
    if n > 0 then Obs.Metrics.Counter.add (Obs.Metrics.counter m ?labels name) n
  in
  bump "sweep_tasks_total" (List.length cells);
  bump "sweep_task_ok_total"
    (List.length statuses - List.length failures - skipped - resumed);
  bump "sweep_task_resumed_total" resumed;
  bump "sweep_task_skipped_total" skipped;
  bump "sweep_task_retried_total" retried;
  List.iter
    (fun f ->
      bump ~labels:[ ("cause", cause_label f.f_cause) ] "sweep_task_failed_total"
        1;
      Obs.Sink.event obs ~time:0. ~severity:Obs.Journal.Error
        (Obs.Journal.scope "sweep")
        (Obs.Journal.Task
           {
             id = task_label f;
             outcome = cause_label f.f_cause;
             attempts = f.f_attempts;
             detail = f.f_detail;
           }))
    failures;
  List.iter
    (fun (e, s, st) ->
      match st with
      | T_skipped ->
          Obs.Sink.event obs ~time:0. ~severity:Obs.Journal.Warn
            (Obs.Journal.scope "sweep")
            (Obs.Journal.Task
               {
                 id = Checkpoint.task_name ~experiment:e.Registry.id ~seed:s;
                 outcome = "skipped";
                 attempts = 0;
                 detail = "task budget exhausted";
               })
      | _ -> ())
    statuses;
  let results =
    List.concat_map
      (fun group ->
        match group with
        | [] -> []
        | (e, _, _) :: _ ->
            let reps =
              List.filter_map
                (fun (_, _, st) ->
                  match st with T_ok (rep, _) -> Some rep | _ -> None)
                group
            in
            if reps = [] then []
            else
              [
                {
                  experiment = e;
                  replicates = reps;
                  aggregate = aggregate (List.map (fun r -> r.series) reps);
                };
              ])
      (chunk seeds statuses)
  in
  {
    results;
    failures;
    tasks = List.length cells;
    executed = List.length to_run;
    resumed;
    skipped;
    retried;
  }

(* -------------------------------------------------------- reporting *)

let exit_code report =
  if List.exists (fun f -> f.f_cause = Violation) report.failures then 2
  else if report.failures <> [] || report.skipped > 0 then 3
  else 0

let render ?(csv = false) ?(replicates = false) ~seeds results =
  let buf = Buffer.create (64 * 1024) in
  let add_series s =
    if csv then Buffer.add_string buf (Series.to_csv s)
    else Buffer.add_string buf (Format.asprintf "%a@." Series.pp s)
  in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "--- %s: %s ---\n" r.experiment.Registry.figure
           r.experiment.Registry.title);
      let add_replicates () =
        List.iter
          (fun rep ->
            if seeds > 1 then
              Buffer.add_string buf (Printf.sprintf "-- seed %d --\n" rep.seed);
            List.iter add_series rep.series)
          r.replicates
      in
      match r.aggregate with
      | Some agg ->
          if replicates then add_replicates ();
          List.iter add_series agg
      | None -> add_replicates ())
    results;
  Buffer.contents buf

let render_failure f =
  match f.f_cause with
  | Violation ->
      (* The Violation message already carries its own journal window
         (the PR 5 strict-mode shape); don't print it twice. *)
      Printf.sprintf "sweep: task %s: invariant violation (attempt %d):\n%s\n"
        (task_label f) f.f_attempts f.f_detail
  | _ ->
      Printf.sprintf
        "sweep: task %s failed (%s) after %d attempt(s): %s\n\
         --- journal window (most recent entries) ---\n\
         %s"
        (task_label f) (cause_label f.f_cause) f.f_attempts f.f_detail
        f.f_journal

let render_failures report =
  String.concat "" (List.map render_failure report.failures)

let failure_to_json f =
  Obs.Json.Obj
    [
      ("task", Obs.Json.Str (task_label f));
      ("experiment", Obs.Json.Str f.f_experiment);
      ("seed", Obs.Json.Int f.f_seed);
      ("attempts", Obs.Json.Int f.f_attempts);
      ("cause", Obs.Json.Str (cause_label f.f_cause));
      ("detail", Obs.Json.Str f.f_detail);
      ("journal_window", Obs.Json.Str f.f_journal);
    ]

let result_to_json r =
  Obs.Json.Obj
    [
      ("id", Obs.Json.Str r.experiment.Registry.id);
      ("figure", Obs.Json.Str r.experiment.Registry.figure);
      ("title", Obs.Json.Str r.experiment.Registry.title);
      ( "replicates",
        Obs.Json.Arr
          (List.map
             (fun rep ->
               Obs.Json.Obj
                 [
                   ("seed", Obs.Json.Int rep.seed);
                   ( "series",
                     Obs.Json.Arr (List.map Series.to_json rep.series) );
                 ])
             r.replicates) );
      ( "aggregate",
        match r.aggregate with
        | None -> Obs.Json.Null
        | Some a -> Obs.Json.Arr (List.map Series.to_json a) );
    ]

let report_to_json report =
  Obs.Json.Obj
    [
      ("results", Obs.Json.Arr (List.map result_to_json report.results));
      ("failures", Obs.Json.Arr (List.map failure_to_json report.failures));
      ( "summary",
        Obs.Json.Obj
          [
            ("tasks", Obs.Json.Int report.tasks);
            ("executed", Obs.Json.Int report.executed);
            ("resumed", Obs.Json.Int report.resumed);
            ("skipped", Obs.Json.Int report.skipped);
            ("retried", Obs.Json.Int report.retried);
            ("failed", Obs.Json.Int (List.length report.failures));
            ("exit_code", Obs.Json.Int (exit_code report));
          ] );
    ]
