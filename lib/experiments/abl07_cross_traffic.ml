open Netsim_env

type cross = No_cross | Cbr | On_off | Poisson

let label = function
  | No_cross -> "none"
  | Cbr -> "CBR 1Mb"
  | On_off -> "on-off 1Mb avg"
  | Poisson -> "Poisson 1Mb"

let run_one ~seed ~cross ~t_end =
  let sc = Scenario.base ~seed () in
  let topo = sc.Scenario.topo in
  let sender = Netsim.Topology.add_node topo in
  let right = Netsim.Topology.add_node topo in
  ignore (Netsim.Topology.connect topo ~bandwidth_bps:2e6 ~delay_s:0.02 sender right);
  let rx = Netsim.Topology.add_node topo in
  ignore (Netsim.Topology.connect topo ~bandwidth_bps:20e6 ~delay_s:0.005 right rx);
  Netsim.Monitor.watch_node_flow sc.Scenario.monitor rx ~flow:Scenario.tfmcc_flow;
  (* Cross traffic shares the 2 Mbit/s bottleneck. *)
  (match cross with
  | No_cross -> ()
  | Cbr | On_off | Poisson ->
      let csrc = Netsim.Topology.add_node topo in
      ignore (Netsim.Topology.connect topo ~bandwidth_bps:20e6 ~delay_s:0.001 csrc sender);
      let cdst = Netsim.Topology.add_node topo in
      ignore (Netsim.Topology.connect topo ~bandwidth_bps:20e6 ~delay_s:0.001 right cdst);
      let g =
        match cross with
        | Cbr -> Netsim.Traffic.cbr topo ~flow:99 ~src:csrc ~dst:cdst ~rate_bps:1e6 ()
        | On_off ->
            Netsim.Traffic.on_off topo ~flow:99 ~src:csrc ~dst:cdst ~rate_bps:2e6
              ~on_mean:1. ~off_mean:1. ()
        | Poisson ->
            Netsim.Traffic.poisson topo ~flow:99 ~src:csrc ~dst:cdst ~rate_bps:1e6 ()
        | No_cross -> assert false
      in
      Netsim.Traffic.start g ~at:0.);
  let session =
    Session.create topo ~session:Scenario.tfmcc_flow ~sender_node:sender
      ~receiver_nodes:[ rx ] ()
  in
  Session.start session ~at:0.;
  Scenario.run_until sc t_end;
  let warmup = t_end /. 3. in
  let mean =
    Scenario.mean_throughput_kbps sc ~flow:Scenario.tfmcc_flow ~t_start:warmup ~t_end
  in
  let cov =
    Scenario.throughput_series sc ~flow:Scenario.tfmcc_flow ~bin:1. ~t_end
    |> Array.to_list
    |> List.filter (fun (t, _) -> t >= warmup)
    |> List.map snd |> Array.of_list
    |> Stats.Descriptive.coefficient_of_variation
  in
  (mean, cov)

let run ~mode ~seed =
  let t_end = Scenario.scale mode ~quick:90. ~full:200. in
  let cases = [ No_cross; Cbr; On_off; Poisson ] in
  let rows =
    List.mapi
      (fun i cross ->
        let mean, cov = run_one ~seed ~cross ~t_end in
        (float_of_int i, [ mean; cov ]))
      cases
  in
  [
    Series.make
      ~title:
        "Ablation: TFMCC vs non-TCP cross traffic on a 2 Mbit/s bottleneck \
         (cross load ~1 Mbit/s where present)"
      ~xlabel:"cross traffic (0=none 1=CBR 2=on-off 3=Poisson)"
      ~ylabels:[ "TFMCC (kbit/s)"; "rate CoV" ]
      ~notes:
        [
          String.concat "; " (List.map label cases);
          "TFMCC should take ~2 Mbit/s alone and ~the leftover ~1 Mbit/s \
           against each unresponsive flow, with the on-off case costing \
           the most smoothness";
        ]
      rows;
  ]
