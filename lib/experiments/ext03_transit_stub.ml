open Netsim_env

let run ~mode ~seed =
  let t_end = Scenario.scale mode ~quick:90. ~full:240. in
  let stubs_per_transit = Scenario.scale mode ~quick:3 ~full:5 in
  let hosts_per_stub = Scenario.scale mode ~quick:4 ~full:10 in
  let sc = Scenario.base ~seed () in
  let topo = sc.Scenario.topo in
  let rng = Netsim.Engine.rng sc.Scenario.engine in
  let ts =
    Netsim.Topo_gen.transit_stub topo (Stats.Rng.split rng) ~transits:4
      ~stubs_per_transit ~hosts_per_stub ()
  in
  (* The sender is the first host; everyone else receives.  One stub link
     is congested (0.5 Mbit/s worth of CBR cross traffic on a 10 Mbit/s
     link would be invisible; instead, degrade one HOST link to
     0.4 Mbit/s to create the worst receiver). *)
  let sender_node = ts.Netsim.Topo_gen.hosts.(0) in
  let receivers_nodes =
    Array.sub ts.Netsim.Topo_gen.hosts 1 (Array.length ts.Netsim.Topo_gen.hosts - 1)
  in
  let n = Array.length receivers_nodes in
  (* Worst receiver: squeeze the link from its stub. *)
  let worst = receivers_nodes.(n - 1) in
  let worst_stub =
    (* its only neighbour is its stub; find it by probing the links *)
    let found = ref None in
    Array.iter
      (fun stub ->
        if Netsim.Topology.link_between topo stub worst <> None then found := Some stub)
      ts.Netsim.Topo_gen.stubs;
    Option.get !found
  in
  (* Replace by adding cross traffic that eats most of the host link. *)
  let cross_src = Netsim.Topology.add_node topo in
  ignore
    (Netsim.Topology.connect topo ~bandwidth_bps:10e6 ~delay_s:0.001 cross_src worst_stub);
  let cross =
    Netsim.Traffic.cbr topo ~flow:99 ~src:cross_src ~dst:worst ~rate_bps:1.6e6 ()
  in
  Netsim.Traffic.start cross ~at:0.;
  let session =
    Session.create topo ~session:Scenario.tfmcc_flow ~sender_node
      ~receiver_nodes:(Array.to_list receivers_nodes) ()
  in
  Netsim.Monitor.watch_node_flow sc.Scenario.monitor worst ~flow:Scenario.tfmcc_flow;
  Session.start session ~at:0.;
  Scenario.run_until sc t_end;
  let sender_agent = Session.sender session in
  let rounds = Stdlib.max 1 (Sender.round sender_agent) in
  let reports_per_round =
    float_of_int (Sender.reports_received sender_agent) /. float_of_int rounds
  in
  let worst_goodput =
    Scenario.mean_throughput_kbps sc ~flow:Scenario.tfmcc_flow
      ~t_start:(t_end /. 3.) ~t_end
  in
  let clr_at_worst = Sender.clr sender_agent = Some (Netsim.Node.id worst) in
  let delay_spread =
    match Netsim.Monitor.delay_summary sc.Scenario.monitor ~flow:Scenario.tfmcc_flow with
    | Some s -> (s.Stats.Descriptive.p25, s.Stats.Descriptive.p75)
    | None -> (nan, nan)
  in
  [
    Series.make
      ~title:
        (Printf.sprintf
           "Extension: TFMCC over a transit-stub internet (%d receivers; \
            one host link congested to ~0.4 Mbit/s residual)"
           n)
      ~xlabel:"metric"
      ~ylabels:[ "value" ]
      ~notes:
        [
          "rows: 0 = goodput at the worst receiver (kbit/s; its residual \
           capacity is ~400), 1 = reports/round at the sender, 2 = CLR \
           sits at the congested receiver (1/0), 3/4 = p25/p75 one-way \
           delay at the worst receiver (ms)";
          "Section 3's claim in action: correlated tree loss keeps the \
           equation honest and the feedback sparse even on a real-shaped \
           topology";
        ]
      [
        (0., [ worst_goodput ]);
        (1., [ reports_per_round ]);
        (2., [ (if clr_at_worst then 1. else 0.) ]);
        (3., [ 1000. *. fst delay_spread ]);
        (4., [ 1000. *. snd delay_spread ]);
      ];
  ]
