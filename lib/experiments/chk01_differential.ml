(* Differential oracle (DESIGN.md §11): TFMCC degenerates to TFRC when
   the group holds exactly one receiver — the sole receiver is the CLR,
   every report is CLR feedback, and the rate machinery reduces to the
   unicast equation-tracking loop.  Running both protocols over the
   same dumbbell must therefore land within a small tolerance of each
   other; a growing gap means one of the two implementations drifted. *)

type comparison = {
  label : string;
  tfmcc_kbps : float;
  tfrc_kbps : float;
  rel_err : float;
}

let tfrc_flow = 7

(* A TFRC dumbbell geometrically identical to Scenario.dumbbell with
   n_tfmcc_rx = 1, n_tcp = 0: same bottleneck, same 10x access links. *)
let run_tfrc ~seed ~bottleneck_bps ~delay_s ~queue_capacity ~t_end =
  let sc = Scenario.base ~seed () in
  let left = Netsim.Topology.add_node sc.Scenario.topo in
  let right = Netsim.Topology.add_node sc.Scenario.topo in
  ignore
    (Netsim.Topology.connect sc.Scenario.topo ~queue_capacity
       ~bandwidth_bps:bottleneck_bps ~delay_s left right);
  let access_bps = 10. *. bottleneck_bps in
  let src = Netsim.Topology.add_node sc.Scenario.topo in
  ignore
    (Netsim.Topology.connect sc.Scenario.topo ~bandwidth_bps:access_bps
       ~delay_s:0.001 src left);
  let dst = Netsim.Topology.add_node sc.Scenario.topo in
  ignore
    (Netsim.Topology.connect sc.Scenario.topo ~bandwidth_bps:access_bps
       ~delay_s:0.001 right dst);
  let sender =
    Tfrc.Tfrc_sender.create sc.Scenario.topo ~conn:1 ~flow:tfrc_flow ~src ~dst ()
  in
  let _receiver =
    Tfrc.Tfrc_receiver.create sc.Scenario.topo ~conn:1 ~node:dst ~sender:src ()
  in
  Netsim.Monitor.watch_node_flow sc.Scenario.monitor dst ~flow:tfrc_flow;
  Tfrc.Tfrc_sender.start sender ~at:0.;
  Scenario.run_until sc t_end;
  sc

let compare_pair ?(seed = 42) ~bottleneck_bps ~delay_s ?(queue_capacity = 20)
    ~t_end () =
  let warmup = t_end /. 3. in
  let d =
    Scenario.dumbbell ~seed ~bottleneck_bps ~delay_s ~queue_capacity
      ~n_tfmcc_rx:1 ~n_tcp:0 ()
  in
  Tfmcc_core.Session.start d.Scenario.session ~at:0.;
  Scenario.run_until d.Scenario.sc t_end;
  let tfmcc_kbps =
    Scenario.mean_throughput_kbps d.Scenario.sc ~flow:Scenario.tfmcc_flow
      ~t_start:warmup ~t_end
  in
  let tfrc_sc = run_tfrc ~seed ~bottleneck_bps ~delay_s ~queue_capacity ~t_end in
  let tfrc_kbps =
    Scenario.mean_throughput_kbps tfrc_sc ~flow:tfrc_flow ~t_start:warmup ~t_end
  in
  let rel_err =
    Check.Oracle.relative_error ~expected:tfrc_kbps ~actual:tfmcc_kbps
  in
  {
    label =
      Printf.sprintf "%.1f Mbit/s, %.0f ms" (bottleneck_bps /. 1e6)
        (delay_s *. 1000.);
    tfmcc_kbps;
    tfrc_kbps;
    rel_err;
  }

let tolerance = 0.10

let run ~mode ~seed =
  let t_end = Scenario.scale mode ~quick:120. ~full:300. in
  let cells =
    [ (1e6, 0.02); (1e6, 0.04); (2e6, 0.04) ]
    @ Scenario.scale mode ~quick:[] ~full:[ (2e6, 0.08); (4e6, 0.02) ]
  in
  let results =
    List.map
      (fun (bps, delay) ->
        compare_pair ~seed ~bottleneck_bps:bps ~delay_s:delay ~t_end ())
      cells
  in
  let rows =
    List.mapi
      (fun i r -> (float_of_int i, [ r.tfmcc_kbps; r.tfrc_kbps; r.rel_err ]))
      results
  in
  let worst =
    List.fold_left (fun acc r -> Float.max acc r.rel_err) 0. results
  in
  let notes =
    List.map
      (fun r ->
        Printf.sprintf "%s: TFMCC %.0f vs TFRC %.0f kbit/s (gap %.1f%%)"
          r.label r.tfmcc_kbps r.tfrc_kbps (100. *. r.rel_err))
      results
    @ [
        Printf.sprintf
          "worst gap %.1f%% vs %.0f%% tolerance — %s" (100. *. worst)
          (100. *. tolerance)
          (if worst <= tolerance then "PASS" else "FAIL");
      ]
  in
  [
    Series.make
      ~title:
        "Chk 1: differential oracle — TFMCC with one receiver vs unicast TFRC"
      ~xlabel:"configuration #"
      ~ylabels:[ "TFMCC (kbit/s)"; "TFRC (kbit/s)"; "relative gap" ]
      ~notes rows;
  ]
