exception Boom of string

(* Success payload shared by every injector: a tiny series that depends
   only on the seed, never on the attempt number or wall clock, so a
   retried or resumed task renders byte-identically to one that
   succeeded first try. *)
let ok_series ~id ~seed =
  [
    Series.make
      ~title:(Printf.sprintf "%s: fault-injection probe (seed %d)" id seed)
      ~xlabel:"step" ~ylabels:[ "value" ]
      ~notes:[ "test-only experiment; exercises the sweep supervisor" ]
      [ (0., [ float_of_int seed ]); (1., [ float_of_int (seed * 2) ]) ];
  ]

let run_crash ~mode:_ ~seed:_ =
  raise (Boom "xcrash: injected deterministic task failure")

let run_flaky ~mode:_ ~seed =
  let attempt = Scenario.ambient_attempt () in
  if attempt < 2 then
    raise (Boom (Printf.sprintf "xflaky: injected failure on attempt %d" attempt))
  else ok_series ~id:"xflaky" ~seed

(* Livelock: a callback that reschedules itself at the current simulated
   instant, freezing the clock while the event count climbs.  The spin
   is capped so the experiment terminates even unsupervised (a raw
   `tfmcc-sim run xstall` finishes after ~2M events); any watchdog with
   a smaller stall window aborts it first. *)
let spin_cap = 2_000_000

let run_stall ~mode:_ ~seed =
  let sc = Scenario.base ~seed () in
  let e = sc.Scenario.engine in
  let spun = ref 0 in
  let rec spin () =
    incr spun;
    if !spun < spin_cap then
      ignore (Netsim.Engine.at e ~time:(Netsim.Engine.now e) spin)
  in
  ignore (Netsim.Engine.at e ~time:0.1 spin);
  Netsim.Engine.run ~until:1.0 e;
  ok_series ~id:"xstall" ~seed

(* Wall-clock hog with few events: each event sleeps 2 ms and advances
   simulated time, so only the watchdog's sim-time poll (or a generous
   event-count window) can catch it.  Capped at ~3 s of wall clock so an
   unsupervised run still terminates. *)
let sleep_events = 1_500

let run_sleep ~mode:_ ~seed =
  let sc = Scenario.base ~seed () in
  let e = sc.Scenario.engine in
  let n = ref 0 in
  let rec tick () =
    incr n;
    Unix.sleepf 0.002;
    if !n < sleep_events then ignore (Netsim.Engine.after e ~delay:0.001 tick)
  in
  ignore (Netsim.Engine.after e ~delay:0.001 tick);
  Netsim.Engine.run ~until:5.0 e;
  ok_series ~id:"xsleep" ~seed
