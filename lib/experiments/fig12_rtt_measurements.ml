open Netsim_env

let run ~mode ~seed =
  let n = Scenario.scale mode ~quick:200 ~full:1000 in
  let t_end = Scenario.scale mode ~quick:100. ~full:200. in
  let sc = Scenario.base ~seed () in
  let topo = sc.Scenario.topo in
  (* sender -- 1 Mbit/s bottleneck -- hub -- n receiver links with
     one-way delays 27..67 ms (link RTTs 60..140 ms incl. the 3 ms of
     sender-side hops). *)
  let sender = Netsim.Topology.add_node topo in
  let r1 = Netsim.Topology.add_node topo in
  let hub = Netsim.Topology.add_node topo in
  ignore (Netsim.Topology.connect topo ~bandwidth_bps:100e6 ~delay_s:0.001 sender r1);
  ignore (Netsim.Topology.connect topo ~bandwidth_bps:1e6 ~delay_s:0.002 r1 hub);
  let rng = Netsim.Engine.rng sc.Scenario.engine in
  let rx_nodes =
    List.init n (fun _ ->
        let rx = Netsim.Topology.add_node topo in
        let delay = 0.027 +. Stats.Rng.float rng 0.04 in
        ignore (Netsim.Topology.connect topo ~bandwidth_bps:100e6 ~delay_s:delay hub rx);
        rx)
  in
  let session =
    Session.create topo ~session:Scenario.tfmcc_flow ~sender_node:sender
      ~receiver_nodes:rx_nodes ()
  in
  let samples = ref [] in
  Scenario.sample_every sc ~dt:2. ~t_end (fun t ->
      samples := (t, [ float_of_int (Session.receivers_with_rtt session) ]) :: !samples);
  Session.start session ~at:0.;
  Scenario.run_until sc t_end;
  [
    Series.make
      ~title:
        (Printf.sprintf
           "Fig. 12: receivers with a valid RTT measurement over time (n=%d, \
            shared 1 Mbit/s bottleneck, initial RTT 500 ms)"
           n)
      ~xlabel:"time (s)" ~ylabels:[ "receivers with valid RTT" ]
      ~notes:
        [
          "paper: fast initial growth (~feedback count per round), tailing \
           off to ~1 new measurement per round; 700/1000 after 200 s";
        ]
      (List.rev !samples);
  ]
