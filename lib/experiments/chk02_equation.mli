(** Equation-consistency oracle: the sender's rate against the Padhye
    throughput recomputed from the receiver's own loss-event rate and
    RTT (DESIGN.md §11). *)

type sample = {
  time : float;
  rate_kbps : float;
  model_kbps : float;
  gap : float;  (** {!Check.Oracle.equation_gap} at this instant *)
}

val measure :
  ?seed:int -> ?loss:float -> ?delay:float -> t_end:float -> unit -> sample list
(** One-receiver star with Bernoulli loss (default 1%, 40 ms);
    per-second samples after a [t_end]/3 warmup, kept only once the
    receiver has loss and a real RTT measurement.  Also the body of the
    QCheck property. *)

val mean_gap : sample list -> float
(** Mean of the finite gaps; [infinity] when no usable samples. *)

val tolerance : float
(** Acceptance threshold on {!mean_gap} (0.15 — the sender tracks a
    smoothed, capped version of the receiver's calculated rate, so the
    instantaneous equation gap is bounded but not zero; observed steady
    state sits under 1%). *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
