open Netsim_env

let setup ~seed ~with_tail_tcp ~join_at ~leave_at =
  let d =
    Scenario.dumbbell ~seed ~bottleneck_bps:8e6 ~delay_s:0.02 ~n_tfmcc_rx:8
      ~n_tcp:7 ()
  in
  let sc = d.Scenario.sc in
  let topo = sc.Scenario.topo in
  let eng = sc.Scenario.engine in
  (* The slow tail: right router -- 200 kbit/s -- slow node. *)
  let slow = Netsim.Topology.add_node topo in
  ignore
    (Netsim.Topology.connect topo ~bandwidth_bps:200e3 ~delay_s:0.005
       d.Scenario.right_router slow);
  (* Start (and join) the permanent receivers first: the late receiver
     must not be swept up by Session.start's join. *)
  Session.start d.Scenario.session ~at:0.;
  let late =
    Session.add_receiver topo d.Scenario.session ~node:slow ~join_now:false ()
  in
  ignore (Netsim.Engine.at eng ~time:join_at (fun () -> Receiver.join late));
  ignore (Netsim.Engine.at eng ~time:leave_at (fun () -> Receiver.leave late ()));
  let tail_tcp =
    if with_tail_tcp then begin
      let src = Netsim.Topology.add_node topo in
      ignore
        (Netsim.Topology.connect topo ~bandwidth_bps:80e6 ~delay_s:0.001 src
           d.Scenario.left_router);
      Some (Scenario.add_tcp sc ~conn:9000 ~flow:(Scenario.tcp_flow 90) ~src ~dst:slow ~at:0.)
    end
    else None
  in
  (d, late, tail_tcp)

let series_of ~seed ~with_tail_tcp ~mode =
  let t_end = Scenario.scale mode ~quick:140. ~full:140. in
  let join_at = 50. and leave_at = 100. in
  let d, _late, _tail = setup ~seed ~with_tail_tcp ~join_at ~leave_at in
  let sc = d.Scenario.sc in
  (* Track the sending rate through the whole run (receiver-side
     throughput at a fast receiver mirrors it). *)
  Scenario.run_until sc t_end;
  let bin = 1. in
  (* TFMCC measured at one fast receiver: total across the 8 receivers
     divided by 8 would hide the join; a single fast receiver shows the
     rate directly. *)
  let tf =
    Scenario.throughput_series sc ~flow:Scenario.tfmcc_flow ~bin ~t_end
    |> Array.map (fun (t, v) -> (t, v /. 8.))
    (* the monitor sums the 8 permanent receivers *)
  in
  let tcp_series =
    Array.init 7 (fun k ->
        Scenario.throughput_series sc ~flow:(Scenario.tcp_flow k) ~bin ~t_end)
  in
  let tcp_sum =
    Array.init (Array.length tf) (fun i ->
        let t = fst tf.(i) in
        let acc = ref 0. in
        for k = 0 to 6 do
          acc := !acc +. snd tcp_series.(k).(i)
        done;
        (t, !acc))
  in
  let tail_series =
    if with_tail_tcp then
      Some (Scenario.throughput_series sc ~flow:(Scenario.tcp_flow 90) ~bin ~t_end)
    else None
  in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i (t, v) ->
           let base = [ snd tcp_sum.(i); v ] in
           match tail_series with
           | Some ts -> (t, base @ [ snd ts.(i) ])
           | None -> (t, base))
         tf)
  in
  (rows, d)

let run ~mode ~seed =
  let rows, _ = series_of ~seed ~with_tail_tcp:false ~mode in
  [
    Series.make
      ~title:
        "Fig. 15: late join of a 200 kbit/s receiver (t=50..100 s); kbit/s"
      ~xlabel:"time (s)" ~ylabels:[ "aggregated TCP"; "TFMCC" ]
      ~notes:
        [
          "paper: TFMCC drops to ~200 kbit/s within a very few seconds of \
           the join and recovers to the 1 Mbit/s fair rate after the leave";
        ]
      rows;
  ]

let run_with_tail_tcp ~mode ~seed =
  let rows, _ = series_of ~seed ~with_tail_tcp:true ~mode in
  [
    Series.make
      ~title:
        "Fig. 16: late join with an additional TCP flow on the 200 kbit/s \
         link; kbit/s"
      ~xlabel:"time (s)"
      ~ylabels:[ "aggregated TCP"; "TFMCC"; "TCP on 200kbit/s link" ]
      ~notes:
        [
          "paper: the tail TCP times out when the link floods at the join, \
           then recovers and shares the tail roughly fairly with TFMCC";
        ]
      rows;
  ]
