type entry = {
  c_experiment : string;
  c_seed : int;
  c_digest : string;
  c_series : Series.t list;
}

let task_name ~experiment ~seed = Printf.sprintf "%s/s%d" experiment seed

let task_file ~dir ~experiment ~seed =
  Filename.concat dir (Printf.sprintf "%s-s%d.task" experiment seed)

(* The digest covers everything resume reproduces: identity plus every
   series rendered to CSV (the FNV-1a digest from lib/check, the same
   primitive the golden-trace regression uses). *)
let digest ~experiment ~seed series =
  let d = Check.Digest.create () in
  Check.Digest.add_string d experiment;
  Check.Digest.add_char d '\n';
  Check.Digest.add_string d (string_of_int seed);
  Check.Digest.add_char d '\n';
  List.iter
    (fun s ->
      Check.Digest.add_string d (Series.to_csv s);
      Check.Digest.add_char d '\n')
    series;
  Check.Digest.to_hex d

let make ~experiment ~seed series =
  {
    c_experiment = experiment;
    c_seed = seed;
    c_digest = digest ~experiment ~seed series;
    c_series = series;
  }

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
(* lost a concurrent-creation race: fine *)

(* One Marshal'd [entry] per task, written tmp-then-rename so a sweep
   killed mid-write leaves either a complete checkpoint or a stray .tmp
   that resume ignores.  Workers write distinct files, so parallel tasks
   never contend.  A human-readable JSON sidecar carries the same
   identity, digest and series CSVs for inspection; only the .task file
   is read back. *)
let save ~dir entry =
  ensure_dir dir;
  let file =
    task_file ~dir ~experiment:entry.c_experiment ~seed:entry.c_seed
  in
  let tmp = file ^ ".tmp" in
  let oc = open_out_bin tmp in
  Marshal.to_channel oc entry [];
  close_out oc;
  Sys.rename tmp file;
  let json =
    Obs.Json.Obj
      [
        ("experiment", Obs.Json.Str entry.c_experiment);
        ("seed", Obs.Json.Int entry.c_seed);
        ("digest", Obs.Json.Str entry.c_digest);
        ( "series_csv",
          Obs.Json.Arr
            (List.map (fun s -> Obs.Json.Str (Series.to_csv s)) entry.c_series)
        );
      ]
  in
  let jtmp = file ^ ".json.tmp" in
  let oc = open_out jtmp in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Sys.rename jtmp (file ^ ".json")

(* A checkpoint is trusted only if it unmarshals, names the task we
   asked for, and its recorded digest matches a recomputation from the
   loaded series — a truncated, corrupted or misnamed file degrades to
   "missing" and the task re-runs. *)
let load ~dir ~experiment ~seed =
  let file = task_file ~dir ~experiment ~seed in
  if not (Sys.file_exists file) then None
  else
    match
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> (Marshal.from_channel ic : entry))
    with
    | exception _ -> None
    | e ->
        if
          String.equal e.c_experiment experiment
          && e.c_seed = seed
          && String.equal e.c_digest
               (digest ~experiment ~seed e.c_series)
        then Some e
        else None
