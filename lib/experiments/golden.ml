let digest_experiment (e : Registry.experiment) ~mode ~seed =
  let sink = Obs.Sink.create () in
  let series =
    Scenario.with_obs sink (fun () -> e.Registry.run ~mode ~seed)
  in
  let d = Check.Digest.create () in
  Check.Digest.add_string d e.Registry.id;
  Check.Digest.add_char d '\n';
  List.iter
    (fun s ->
      Check.Digest.add_string d (Series.to_csv s);
      Check.Digest.add_char d '\n')
    series;
  Check.Digest.add_string d (Obs.Json.to_string (Obs.Sink.to_json sink));
  Check.Digest.to_hex d

let compute ?(experiments = Registry.all) ~jobs ~mode ~seed () =
  let tasks =
    List.map
      (fun e () -> (e.Registry.id, digest_experiment e ~mode ~seed))
      experiments
  in
  Par.map ~jobs tasks

let to_file_format pairs =
  String.concat ""
    (List.map (fun (id, hex) -> Printf.sprintf "%s %s\n" id hex) pairs)

let parse_file_format text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.index_opt line ' ' with
           | None -> None
           | Some i ->
               Some
                 ( String.sub line 0 i,
                   String.trim
                     (String.sub line (i + 1) (String.length line - i - 1)) ))

let diff ~expected ~actual =
  let mismatches =
    List.filter_map
      (fun (id, want) ->
        match List.assoc_opt id actual with
        | None -> Some (id, `Missing)
        | Some got when got <> want -> Some (id, `Mismatch (want, got))
        | Some _ -> None)
      expected
  in
  let extras =
    List.filter_map
      (fun (id, _) ->
        if List.mem_assoc id expected then None else Some (id, `Extra))
      actual
  in
  mismatches @ extras
