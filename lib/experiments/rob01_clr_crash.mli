(** Robustness: silent crash of the current limiting receiver; the sender
    must time the CLR out and fail over to the next limiting receiver. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
