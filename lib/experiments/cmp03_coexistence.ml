let run ~mode ~seed =
  let t_end = Scenario.scale mode ~quick:120. ~full:300. in
  let sc = Scenario.base ~seed () in
  let topo = sc.Scenario.topo in
  let left = Netsim.Topology.add_node topo in
  let right = Netsim.Topology.add_node topo in
  ignore (Netsim.Topology.connect topo ~bandwidth_bps:6e6 ~delay_s:0.02 left right);
  let mk_left () =
    let n = Netsim.Topology.add_node topo in
    ignore (Netsim.Topology.connect topo ~bandwidth_bps:60e6 ~delay_s:0.001 n left);
    n
  in
  let mk_right () =
    let n = Netsim.Topology.add_node topo in
    ignore (Netsim.Topology.connect topo ~bandwidth_bps:60e6 ~delay_s:0.001 right n);
    n
  in
  (* TFMCC session (flow 1). *)
  let tf_sender = mk_left () and tf_rx = mk_right () in
  let session =
    Netsim_env.Session.create topo ~session:1 ~sender_node:tf_sender
      ~receiver_nodes:[ tf_rx ] ()
  in
  Netsim.Monitor.watch_node_flow sc.Scenario.monitor tf_rx ~flow:1;
  (* PGMCC session (flow 2). *)
  let pg_sender = mk_left () and pg_rx = mk_right () in
  let pg_snd = Pgmcc.Sender.create topo ~session:2 ~node:pg_sender () in
  let pg_r = Pgmcc.Receiver.create topo ~session:2 ~node:pg_rx ~sender:pg_sender () in
  Pgmcc.Receiver.join pg_r;
  Netsim.Monitor.watch_node_flow sc.Scenario.monitor pg_rx ~flow:2;
  (* TCP reference (flow 100). *)
  let tcp_src = mk_left () and tcp_dst = mk_right () in
  ignore (Scenario.add_tcp sc ~conn:1 ~flow:(Scenario.tcp_flow 0) ~src:tcp_src ~dst:tcp_dst ~at:0.);
  Tfmcc_core.Session.start session ~at:0.;
  Pgmcc.Sender.start pg_snd ~at:0.;
  Scenario.run_until sc t_end;
  let warmup = t_end /. 4. in
  let mean flow = Scenario.mean_throughput_kbps sc ~flow ~t_start:warmup ~t_end in
  let tfmcc = mean 1 and pgmcc = mean 2 and tcp = mean (Scenario.tcp_flow 0) in
  let jain = Stats.Descriptive.jain_index [| tfmcc; pgmcc; tcp |] in
  [
    Series.make
      ~title:
        "Coexistence: TFMCC + PGMCC + TCP sharing a 6 Mbit/s bottleneck \
         (fair share 2 Mbit/s each)"
      ~xlabel:"flow (0=TFMCC 1=PGMCC 2=TCP)"
      ~ylabels:[ "mean (kbit/s)" ]
      ~notes:
        [
          Printf.sprintf
            "TFMCC %.0f / PGMCC %.0f / TCP %.0f kbit/s; Jain index %.2f — \
             both multicast schemes claim TCP-friendliness, so all three \
             should hold a viable share (TFMCC's b=2 equation makes it \
             the most conservative of the three)"
            tfmcc pgmcc tcp jain;
        ]
      [ (0., [ tfmcc ]); (1., [ pgmcc ]); (2., [ tcp ]) ];
  ]
