(** Measured per-figure serial cost for the LPT sweep schedule.

    One quick-mode serial run per experiment, wall-clock milliseconds on
    the reference container (see the table in the implementation for the
    measurement protocol).  Only the relative ordering matters. *)

val table : (string * float) list
(** [(experiment id, cost)] in registry order. *)

val cost : string -> float
(** Cost of one experiment id; unknown ids get the median of {!table}
    (mid-schedule placement for not-yet-measured experiments). *)
