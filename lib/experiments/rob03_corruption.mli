(** Robustness: corrupted / duplicated / reordered packets on every
    receiver link; malformed packets must all be contained at validation
    and the sender's rate stay finite. *)

val run : mode:Scenario.mode -> seed:int -> Series.t list
