type mode = Quick | Full

let scale mode ~quick ~full = match mode with Quick -> quick | Full -> full

type t = {
  engine : Netsim.Engine.t;
  topo : Netsim.Topology.t;
  monitor : Netsim.Monitor.t;
  obs : Obs.Sink.t;
}

(* Sink installed for scenarios built while a [with_obs] callback runs.
   Experiment entry points have a fixed signature (Registry.run), so the
   CLI threads its sink through here instead of through every builder.
   Domain-local: each parallel sweep worker installs its own sink for
   its own runs without seeing (or racing with) any other domain's —
   sinks are single-domain objects and must never be shared. *)
let installed_obs : Obs.Sink.t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let with_obs sink f =
  let saved = Domain.DLS.get installed_obs in
  Domain.DLS.set installed_obs (Some sink);
  Fun.protect ~finally:(fun () -> Domain.DLS.set installed_obs saved) f

let ambient_obs () = Domain.DLS.get installed_obs

(* Same ambient-install pattern for the runtime invariant checker
   (Check.Invariant): the CLI's --strict flag installs a checker here
   and every scenario built under it self-registers its engine, links
   and TFMCC session.  Domain-local for the same reason as the sink. *)
let installed_checks : Check.Invariant.t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let with_checks checker f =
  let saved = Domain.DLS.get installed_checks in
  Domain.DLS.set installed_checks (Some checker);
  Fun.protect ~finally:(fun () -> Domain.DLS.set installed_checks saved) f

let ambient_checks () = Domain.DLS.get installed_checks

(* And again for the sweep supervisor's progress watchdog: every engine
   built under [with_watchdog] gets the config's stall/deadline probes
   installed ({!Netsim.Watchdog.install}), so a supervised task is
   bounded no matter how many scenarios the experiment builds. *)
let installed_watchdog : Netsim.Watchdog.config option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let with_watchdog cfg f =
  let saved = Domain.DLS.get installed_watchdog in
  Domain.DLS.set installed_watchdog (Some cfg);
  Fun.protect ~finally:(fun () -> Domain.DLS.set installed_watchdog saved) f

let ambient_watchdog () = Domain.DLS.get installed_watchdog

(* Retry attempt number of the enclosing supervised task (1-based).
   Exists so deterministic fault-injection experiments (Fault_inject)
   can fail on attempt 1 and succeed on retry without wall-clock or
   cross-domain state. *)
let installed_attempt : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 1)

let with_attempt n f =
  if n < 1 then invalid_arg "Scenario.with_attempt: attempt must be >= 1";
  let saved = Domain.DLS.get installed_attempt in
  Domain.DLS.set installed_attempt n;
  Fun.protect ~finally:(fun () -> Domain.DLS.set installed_attempt saved) f

let ambient_attempt () = Domain.DLS.get installed_attempt

let base ?(seed = 42) ?obs () =
  let obs =
    match obs with
    | Some s -> s
    | None -> (
        match Domain.DLS.get installed_obs with
        | Some s -> s
        | None -> Obs.Sink.create ())
  in
  let engine = Netsim.Engine.create ~seed ~obs () in
  let topo = Netsim.Topology.create engine in
  let monitor = Netsim.Monitor.create engine in
  (match Domain.DLS.get installed_checks with
  | Some checker -> Check.Invariant.watch_engine checker engine
  | None -> ());
  (match Domain.DLS.get installed_watchdog with
  | Some cfg -> Netsim.Watchdog.install cfg engine
  | None -> ());
  { engine; topo; monitor; obs }

let tfmcc_flow = 1

let tcp_flow i = 100 + i

type tcp_pair = { source : Tcp.Tcp_source.t; sink : Tcp.Tcp_sink.t; flow : int }

let add_tcp sc ~conn ~flow ~src ~dst ~at =
  let source = Tcp.Tcp_source.create sc.topo ~conn ~flow ~src ~dst () in
  let sink = Tcp.Tcp_sink.create sc.topo ~conn ~node:dst () in
  Netsim.Monitor.watch_node_flow sc.monitor dst ~flow;
  Tcp.Tcp_source.start source ~at;
  { source; sink; flow }

(* ------------------------------------------------------------- dumbbell *)

type dumbbell = {
  sc : t;
  session : Tfmcc_core.Session.t;
  tcp : tcp_pair list;
  bottleneck : Netsim.Link.t;
  left_router : Netsim.Node.t;
  right_router : Netsim.Node.t;
  sender_node : Netsim.Node.t;
}

let dumbbell ?seed ?obs ?(cfg = Tfmcc_core.Config.default) ~bottleneck_bps
    ~delay_s ?(queue_capacity = 50) ~n_tfmcc_rx ~n_tcp ?(tcp_start = 0.) () =
  let sc = base ?seed ?obs () in
  let left = Netsim.Topology.add_node sc.topo in
  let right = Netsim.Topology.add_node sc.topo in
  let bottleneck, _ =
    Netsim.Topology.connect sc.topo ~queue_capacity ~bandwidth_bps:bottleneck_bps
      ~delay_s left right
  in
  let access_bps = 10. *. bottleneck_bps in
  let mk_left () =
    let n = Netsim.Topology.add_node sc.topo in
    ignore
      (Netsim.Topology.connect sc.topo ~bandwidth_bps:access_bps ~delay_s:0.001 n left);
    n
  in
  let mk_right () =
    let n = Netsim.Topology.add_node sc.topo in
    ignore
      (Netsim.Topology.connect sc.topo ~bandwidth_bps:access_bps ~delay_s:0.001 right n);
    n
  in
  let tfmcc_sender = mk_left () in
  let rx_nodes = List.init n_tfmcc_rx (fun _ -> mk_right ()) in
  let session =
    Netsim_env.Session.create sc.topo ~cfg ~session:tfmcc_flow
      ~sender_node:tfmcc_sender ~receiver_nodes:rx_nodes ()
  in
  List.iter (fun n -> Netsim.Monitor.watch_node_flow sc.monitor n ~flow:tfmcc_flow)
    rx_nodes;
  let tcp =
    List.init n_tcp (fun i ->
        let src = mk_left () and dst = mk_right () in
        add_tcp sc ~conn:(1000 + i) ~flow:(tcp_flow i) ~src ~dst ~at:tcp_start)
  in
  (match Domain.DLS.get installed_checks with
  | Some checker ->
      Check.Invariant.watch_link checker sc.engine ~name:"bottleneck" bottleneck;
      Check.Invariant.watch_session checker sc.engine ~cfg session
  | None -> ());
  {
    sc;
    session;
    tcp;
    bottleneck;
    left_router = left;
    right_router = right;
    sender_node = tfmcc_sender;
  }

(* ----------------------------------------------------------------- star *)

type star = {
  s_sc : t;
  s_session : Tfmcc_core.Session.t;
  s_hub : Netsim.Node.t;
  s_rx_nodes : Netsim.Node.t array;
  s_rx_links : (Netsim.Link.t * Netsim.Link.t) array;
  s_tcp : tcp_pair array;
}

let star ?seed ?obs ?(cfg = Tfmcc_core.Config.default) ?uplink_bps
    ?(uplink_delay = 0.005) ~link_bps ~link_delays ?link_losses ?return_losses
    ?(queue_capacity = 50) ?(with_tcp = false) ?(tcp_start = 0.) () =
  let n = Array.length link_delays in
  if n = 0 then invalid_arg "Scenario.star: need at least one receiver";
  (match link_losses with
  | Some l when Array.length l <> n ->
      invalid_arg "Scenario.star: link_losses length mismatch"
  | _ -> ());
  (match return_losses with
  | Some l when Array.length l <> n ->
      invalid_arg "Scenario.star: return_losses length mismatch"
  | _ -> ());
  let sc = base ?seed ?obs () in
  let uplink_bps = Option.value uplink_bps ~default:(10. *. link_bps) in
  let sender = Netsim.Topology.add_node sc.topo in
  let hub = Netsim.Topology.add_node sc.topo in
  ignore
    (Netsim.Topology.connect sc.topo ~queue_capacity ~bandwidth_bps:uplink_bps
       ~delay_s:uplink_delay sender hub);
  let rng = Netsim.Engine.rng sc.engine in
  let rx_nodes = Array.make n sender and rx_links = Array.make n None in
  for i = 0 to n - 1 do
    let rx = Netsim.Topology.add_node sc.topo in
    let mk_loss = function
      | Some l when l > 0. ->
          Some (Netsim.Loss_model.bernoulli ~rng:(Stats.Rng.split rng) ~p:l)
      | _ -> None
    in
    let loss_ab = mk_loss (Option.map (fun l -> l.(i)) link_losses) in
    let loss_ba = mk_loss (Option.map (fun l -> l.(i)) return_losses) in
    let ab, ba =
      Netsim.Topology.connect sc.topo ~queue_capacity ?loss_ab ?loss_ba
        ~bandwidth_bps:link_bps ~delay_s:link_delays.(i) hub rx
    in
    rx_nodes.(i) <- rx;
    rx_links.(i) <- Some (ab, ba)
  done;
  let rx_links = Array.map Option.get rx_links in
  let session =
    Netsim_env.Session.create sc.topo ~cfg ~session:tfmcc_flow ~sender_node:sender
      ~receiver_nodes:(Array.to_list rx_nodes) ()
  in
  Array.iter
    (fun nd -> Netsim.Monitor.watch_node_flow sc.monitor nd ~flow:tfmcc_flow)
    rx_nodes;
  let tcp =
    if not with_tcp then [||]
    else
      Array.init n (fun i ->
          (* Each TCP source sits on its own node at the hub so its path
             shares the receiver link. *)
          let src = Netsim.Topology.add_node sc.topo in
          ignore
            (Netsim.Topology.connect sc.topo ~bandwidth_bps:uplink_bps
               ~delay_s:0.001 src hub);
          add_tcp sc ~conn:(2000 + i) ~flow:(tcp_flow i) ~src ~dst:rx_nodes.(i)
            ~at:tcp_start)
  in
  (match Domain.DLS.get installed_checks with
  | Some checker ->
      Array.iteri
        (fun i (ab, ba) ->
          Check.Invariant.watch_link checker sc.engine
            ~name:(Printf.sprintf "hub->rx%d" i) ab;
          Check.Invariant.watch_link checker sc.engine
            ~name:(Printf.sprintf "rx%d->hub" i) ba)
        rx_links;
      Check.Invariant.watch_session checker sc.engine ~cfg session
  | None -> ());
  {
    s_sc = sc;
    s_session = session;
    s_hub = hub;
    s_rx_nodes = rx_nodes;
    s_rx_links = rx_links;
    s_tcp = tcp;
  }

(* -------------------------------------------------------------- helpers *)

let run_until sc t = Netsim.Engine.run ~until:t sc.engine

let sample_every sc ~dt ~t_end f =
  let rec schedule t =
    if t <= t_end then
      ignore
        (Netsim.Engine.at sc.engine ~time:t (fun () ->
             f t;
             schedule (t +. dt)))
  in
  schedule dt

let throughput_series sc ~flow ~bin ~t_end =
  Netsim.Monitor.rate_series_bps sc.monitor ~flow ~bin ~t_end
  |> Array.map (fun (t, bps) -> (t, bps /. 1000.))

let mean_throughput_kbps sc ~flow ~t_start ~t_end =
  Netsim.Monitor.throughput_bps sc.monitor ~flow ~t_start ~t_end /. 1000.
