(* Topology for both runs: sender -- 4 Mbit/s bottleneck -- hub, one clean
   receiver and one 1%-lossy receiver, one competing TCP to the clean
   receiver. *)

type built = {
  b_sc : Scenario.t;
  b_sender : Netsim.Node.t;
  b_rx_clean : Netsim.Node.t;
  b_rx_lossy : Netsim.Node.t;
}

let build ~seed =
  let sc = Scenario.base ~seed () in
  let topo = sc.Scenario.topo in
  let sender = Netsim.Topology.add_node topo in
  let hub = Netsim.Topology.add_node topo in
  ignore (Netsim.Topology.connect topo ~bandwidth_bps:4e6 ~delay_s:0.02 sender hub);
  let rx_clean = Netsim.Topology.add_node topo in
  ignore (Netsim.Topology.connect topo ~bandwidth_bps:40e6 ~delay_s:0.005 hub rx_clean);
  let rx_lossy = Netsim.Topology.add_node topo in
  ignore
    (Netsim.Topology.connect topo
       ~loss_ab:
         (Netsim.Loss_model.bernoulli
            ~rng:(Netsim.Engine.split_rng sc.Scenario.engine)
            ~p:0.01)
       ~bandwidth_bps:40e6 ~delay_s:0.005 hub rx_lossy);
  (* Competing TCP through the same bottleneck. *)
  let tcp_src = Netsim.Topology.add_node topo in
  ignore (Netsim.Topology.connect topo ~bandwidth_bps:40e6 ~delay_s:0.001 tcp_src sender);
  let tcp_dst = Netsim.Topology.add_node topo in
  ignore (Netsim.Topology.connect topo ~bandwidth_bps:40e6 ~delay_s:0.001 hub tcp_dst);
  ignore
    (Scenario.add_tcp sc ~conn:1 ~flow:(Scenario.tcp_flow 0) ~src:tcp_src
       ~dst:tcp_dst ~at:0.);
  Netsim.Monitor.watch_node_flow sc.Scenario.monitor rx_clean ~flow:Scenario.tfmcc_flow;
  { b_sc = sc; b_sender = sender; b_rx_clean = rx_clean; b_rx_lossy = rx_lossy }

let series_stats sc ~t_end ~warmup =
  let xs =
    Scenario.throughput_series sc ~flow:Scenario.tfmcc_flow ~bin:1. ~t_end
    |> Array.to_list
    |> List.filter (fun (t, _) -> t >= warmup)
    |> List.map snd |> Array.of_list
  in
  (Stats.Descriptive.mean xs, Stats.Descriptive.coefficient_of_variation xs)

let run_tfmcc ~seed ~t_end =
  let b = build ~seed in
  let session =
    Netsim_env.Session.create b.b_sc.Scenario.topo ~session:Scenario.tfmcc_flow
      ~sender_node:b.b_sender
      ~receiver_nodes:[ b.b_rx_clean; b.b_rx_lossy ]
      ()
  in
  Tfmcc_core.Session.start session ~at:0.;
  Scenario.run_until b.b_sc t_end;
  ( Scenario.throughput_series b.b_sc ~flow:Scenario.tfmcc_flow ~bin:1. ~t_end,
    series_stats b.b_sc ~t_end ~warmup:(t_end /. 4.),
    Scenario.mean_throughput_kbps b.b_sc ~flow:(Scenario.tcp_flow 0)
      ~t_start:(t_end /. 4.) ~t_end )

let run_pgmcc ~seed ~t_end =
  let b = build ~seed in
  let snd =
    Pgmcc.Sender.create b.b_sc.Scenario.topo ~session:Scenario.tfmcc_flow
      ~node:b.b_sender ()
  in
  let r1 =
    Pgmcc.Receiver.create b.b_sc.Scenario.topo ~session:Scenario.tfmcc_flow
      ~node:b.b_rx_clean ~sender:b.b_sender ()
  in
  let r2 =
    Pgmcc.Receiver.create b.b_sc.Scenario.topo ~session:Scenario.tfmcc_flow
      ~node:b.b_rx_lossy ~sender:b.b_sender ()
  in
  Pgmcc.Receiver.join r1;
  Pgmcc.Receiver.join r2;
  Pgmcc.Sender.start snd ~at:0.;
  Scenario.run_until b.b_sc t_end;
  ( Scenario.throughput_series b.b_sc ~flow:Scenario.tfmcc_flow ~bin:1. ~t_end,
    series_stats b.b_sc ~t_end ~warmup:(t_end /. 4.),
    Scenario.mean_throughput_kbps b.b_sc ~flow:(Scenario.tcp_flow 0)
      ~t_start:(t_end /. 4.) ~t_end,
    Pgmcc.Sender.acker snd = Some (Netsim.Node.id b.b_rx_lossy) )

let run ~mode ~seed =
  let t_end = Scenario.scale mode ~quick:120. ~full:300. in
  let tf_series, (tf_mean, tf_cov), tf_tcp = run_tfmcc ~seed ~t_end in
  let pg_series, (pg_mean, pg_cov), pg_tcp, acker_ok = run_pgmcc ~seed ~t_end in
  let rows =
    Array.to_list
      (Array.mapi (fun i (t, v) -> (t, [ v; snd pg_series.(i) ])) tf_series)
  in
  [
    Series.make
      ~title:
        "Comparison (paper §5): TFMCC vs PGMCC on a shared 4 Mbit/s \
         bottleneck with a 1%-lossy representative (kbit/s, measured at \
         the clean receiver)"
      ~xlabel:"time (s)" ~ylabels:[ "TFMCC"; "PGMCC" ]
      ~notes:
        [
          Printf.sprintf
            "means (kbit/s): TFMCC %.0f (CoV %.2f) vs PGMCC %.0f (CoV %.2f) \
             — paper: similar averages, PGMCC visibly sawtooth-like"
            tf_mean tf_cov pg_mean pg_cov;
          Printf.sprintf
            "competing TCP got %.0f kbit/s alongside TFMCC and %.0f \
             alongside PGMCC" tf_tcp pg_tcp;
          Printf.sprintf "PGMCC elected the lossy receiver as acker: %b" acker_ok;
        ]
      rows;
  ]
