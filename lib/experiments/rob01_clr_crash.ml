open Tfmcc_core

(* Robustness: silent crash of the current limiting receiver.

   Three receivers behind per-receiver links of increasing loss; the
   lossiest one becomes the CLR.  A third into the run a Fault.churn
   event makes the current CLR vanish without a leave report (crash —
   the hard case: the sender only learns through its CLR timeout).  The
   sender must (a) notice the silence within clr_timeout_rounds feedback
   rounds, (b) fail over to the next limiting receiver, and (c) never
   free-run above what the survivors report. *)

let run ~mode ~seed =
  let t_end = Scenario.scale mode ~quick:60. ~full:150. in
  let crash_at = t_end /. 3. in
  let st =
    Scenario.star ~seed ~link_bps:20e6
      ~link_delays:[| 0.02; 0.04; 0.03 |]
      ~link_losses:[| 0.002; 0.04; 0.01 |]
      ()
  in
  let sess = st.Scenario.s_session in
  let eng = st.Scenario.s_sc.Scenario.engine in
  let fault = Netsim.Fault.create eng in
  Session.start sess ~at:0.;
  (* Crash whoever is CLR at the time, not a hard-coded node: if the
     election went another way the experiment still kills the right
     receiver. *)
  let crashed = ref (-1) in
  Netsim.Fault.churn fault ~at:crash_at ~kind:Netsim.Fault.Crash (fun _ ->
      match Sender.clr (Session.sender sess) with
      | Some id ->
          crashed := id;
          Receiver.leave (Session.receiver sess ~node_id:id) ~explicit_leave:false ()
      | None -> ());
  let samples = ref [] in
  Scenario.sample_every st.Scenario.s_sc ~dt:0.25 ~t_end (fun now ->
      let s = Session.sender sess in
      let clr = match Sender.clr s with Some id -> float_of_int id | None -> -1. in
      samples :=
        (now, [ Sender.rate_bytes_per_s s *. 8. /. 1e6; clr ]) :: !samples);
  Scenario.run_until st.Scenario.s_sc t_end;
  let s = Session.sender sess in
  let failover_note =
    Printf.sprintf
      "crashed CLR node %d at t=%.0fs: clr_timeouts=%d clr_failovers=%d \
       (timeout bound: %.0f feedback rounds)"
      !crashed crash_at (Sender.clr_timeouts s) (Sender.clr_failovers s)
      Config.default.Config.clr_timeout_rounds
  in
  (* Summaries come from the shared observability plane, not per-object
     accessors: the same counters any other consumer of the sink sees. *)
  let metrics = st.Scenario.s_sc.Scenario.obs.Obs.Sink.metrics in
  let journal = st.Scenario.s_sc.Scenario.obs.Obs.Sink.journal in
  [
    Series.make
      ~title:"rob01: CLR crash (silent leave) and sender failover"
      ~xlabel:"time (s)"
      ~ylabels:[ "X_send (Mbit/s)"; "CLR node id (-1 = none)" ]
      ~notes:
        [
          failover_note;
          Obs.Metrics.describe ~prefix:"netsim_fault_" metrics;
          Printf.sprintf "malformed reports dropped: %d"
            (Obs.Metrics.sum_counters metrics "tfmcc_sender_malformed_drops_total");
          Printf.sprintf "journal: %d CLR changes, %d CLR drops"
            (Obs.Journal.count_events journal (function
              | Obs.Journal.Clr_change _ -> true
              | _ -> false))
            (Obs.Journal.count_events journal (function
              | Obs.Journal.Clr_drop _ -> true
              | _ -> false));
        ]
      (List.rev !samples);
  ]
