(* Robustness: the defense ablation scorecard — every attack of the
   suite (understater, overstater, rtt-liar, spammer) against the same
   32-receiver dumbbell, with the defense layer off and on, reported as
   percent honest-goodput degradation versus the matching no-attacker
   baseline.

   This is the acceptance gate of DESIGN.md §10: with defenses off the
   understater and rtt-liar each capture the group (>70% degradation);
   with defenses on every attack is held under 20%.  The same matrix
   backs the `tfmcc-sim chaos` scorecard. *)

let run ~mode ~seed =
  let s = Rob_common.scorecard ~mode ~seed in
  let rows =
    List.mapi
      (fun i (r : Rob_common.row) ->
        (float_of_int i, [ r.Rob_common.r_off_deg; r.Rob_common.r_on_deg ]))
      s.Rob_common.rows
  in
  [
    Series.make
      ~title:
        "rob07: defense ablation — honest-goodput degradation per attack"
      ~xlabel:"attack index (0=understater 1=overstater 2=rtt-liar 3=spammer)"
      ~ylabels:[ "degradation, defenses off (%)"; "degradation, defenses on (%)" ]
      ~notes:(Rob_common.scorecard_lines s)
      rows;
  ]
