type t = {
  title : string;
  xlabel : string;
  ylabels : string list;
  rows : (float * float list) list;
  notes : string list;
}

let make ~title ~xlabel ~ylabels ?(notes = []) rows =
  let width = List.length ylabels in
  List.iter
    (fun (_, ys) ->
      if List.length ys <> width then
        invalid_arg
          (Printf.sprintf "Series.make (%s): row width %d, expected %d" title
             (List.length ys) width))
    rows;
  { title; xlabel; ylabels; rows; notes }

let fmt_cell v =
  if Float.is_nan v then "-"
  else if Float.is_integer v && abs_float v < 1e9 then
    Printf.sprintf "%.0f" v
  else if abs_float v >= 1000. then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.4g" v

let pp ppf t =
  Format.fprintf ppf "== %s ==@." t.title;
  let headers = t.xlabel :: t.ylabels in
  let rows_txt =
    List.map (fun (x, ys) -> List.map fmt_cell (x :: ys)) t.rows
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> Stdlib.max acc (String.length (List.nth row i)))
          (String.length h) rows_txt)
      headers
  in
  let print_row cells =
    List.iteri
      (fun i c ->
        let w = List.nth widths i in
        Format.fprintf ppf "%s%s  " (String.make (w - String.length c) ' ') c)
      cells;
    Format.fprintf ppf "@."
  in
  print_row headers;
  List.iter print_row rows_txt;
  List.iter (fun n -> Format.fprintf ppf "note: %s@." n) t.notes

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," (t.xlabel :: t.ylabels));
  Buffer.add_char buf '\n';
  List.iter
    (fun (x, ys) ->
      Buffer.add_string buf
        (String.concat "," (List.map (Printf.sprintf "%.6g") (x :: ys)));
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf

let to_json t =
  Obs.Json.Obj
    [
      ("title", Obs.Json.Str t.title);
      ("xlabel", Obs.Json.Str t.xlabel);
      ("ylabels", Obs.Json.Arr (List.map (fun l -> Obs.Json.Str l) t.ylabels));
      ( "rows",
        Obs.Json.Arr
          (List.map
             (fun (x, ys) ->
               Obs.Json.Arr (List.map (fun v -> Obs.Json.Float v) (x :: ys)))
             t.rows) );
      ("notes", Obs.Json.Arr (List.map (fun n -> Obs.Json.Str n) t.notes));
    ]

let render_ascii ?(width = 72) ?(height = 12) t ~col =
  if col < 0 || col >= List.length t.ylabels then
    invalid_arg "Series.render_ascii: column out of range";
  if width < 8 || height < 2 then invalid_arg "Series.render_ascii: too small";
  let pts =
    List.filter_map
      (fun (x, ys) ->
        let y = List.nth ys col in
        if Float.is_nan y then None else Some (x, y))
      t.rows
  in
  match pts with
  | [] -> "(no data)\n"
  | _ ->
      let xs = List.map fst pts and ys = List.map snd pts in
      let xmin = List.fold_left Float.min (List.hd xs) xs in
      let xmax = List.fold_left Float.max (List.hd xs) xs in
      let ymin = Float.min 0. (List.fold_left Float.min (List.hd ys) ys) in
      let ymax = List.fold_left Float.max (List.hd ys) ys in
      let yspan = if ymax -. ymin <= 0. then 1. else ymax -. ymin in
      let xspan = if xmax -. xmin <= 0. then 1. else xmax -. xmin in
      let grid = Array.make_matrix height width ' ' in
      List.iter
        (fun (x, y) ->
          let cx =
            int_of_float ((x -. xmin) /. xspan *. float_of_int (width - 1))
          in
          let cy =
            int_of_float ((y -. ymin) /. yspan *. float_of_int (height - 1))
          in
          grid.(height - 1 - cy).(cx) <- '*')
        pts;
      let buf = Buffer.create ((width + 16) * height) in
      Buffer.add_string buf
        (Printf.sprintf "%s vs %s\n" (List.nth t.ylabels col) t.xlabel);
      Array.iteri
        (fun r row ->
          let yv = ymax -. (float_of_int r /. float_of_int (height - 1) *. yspan) in
          Buffer.add_string buf (Printf.sprintf "%10s |" (fmt_cell yv));
          Array.iter (Buffer.add_char buf) row;
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_string buf (String.make 11 ' ');
      Buffer.add_char buf '+';
      Buffer.add_string buf (String.make width '-');
      Buffer.add_char buf '\n';
      Buffer.add_string buf
        (Printf.sprintf "%11s%-10s%*s\n" "" (fmt_cell xmin)
           (width - 8) (fmt_cell xmax));
      Buffer.contents buf

let summary_stats t ~col =
  if col < 0 || col >= List.length t.ylabels then
    invalid_arg "Series.summary_stats: column out of range";
  let values =
    List.filter_map
      (fun (_, ys) ->
        let v = List.nth ys col in
        if Float.is_nan v then None else Some v)
      t.rows
    |> Array.of_list
  in
  Stats.Descriptive.summarize values
