(** Index of every reproduced figure: one entry per figure of the paper,
    with a uniform run signature.  This is what both the benchmark
    harness and the CLI iterate over. *)

type experiment = {
  id : string;  (** e.g. "fig09" *)
  figure : string;  (** e.g. "Figure 9" *)
  title : string;
  run : mode:Scenario.mode -> seed:int -> Series.t list;
}

val all : experiment list
(** In figure order. *)

val hidden : experiment list
(** Fault-injecting supervisor probes ({!Fault_inject}): excluded from
    {!all} (they fail by design, so default sweeps, golden digests and
    the listing must not include them) but resolvable by {!find} so
    tests and CI can sweep them explicitly. *)

val find : string -> experiment option
(** Lookup by id (case-insensitive), over {!all} and {!hidden}. *)

val ids : unit -> string list
